package bastion_test

import (
	"fmt"

	"bastion"
)

// ExampleCompile builds a minimal guest program, compiles it with the
// BASTION pass, and reports what the analysis found.
func ExampleCompile() {
	p := bastion.NewGuestProgram()
	b := bastion.NewBuilder("main", 0)
	b.Local("prot", 8)
	pa := b.Lea("prot", 0)
	b.Store(pa, 0, bastion.Imm(1), 8) // PROT_READ
	pv := b.Load(b.Lea("prot", 0), 0, 8)
	b.Call("mprotect", bastion.Imm(0x10000000), bastion.Imm(4096), bastion.R(pv))
	b.Ret(bastion.Imm(0))
	p.AddFunc(b.Build())

	art, err := bastion.Compile(p, bastion.CompileOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("sensitive callsites: %d\n", art.Stats.SensitiveCallsites)
	fmt.Printf("ctx_write_mem sites: %d\n", art.Stats.CtxWriteMem)
	fmt.Printf("ctx_bind sites:      %d\n", art.Stats.CtxBindMem+art.Stats.CtxBindConst)
	// Output:
	// sensitive callsites: 1
	// ctx_write_mem sites: 1
	// ctx_bind sites:      3
}

// ExampleLaunch runs a protected guest and shows the monitor's verdict on
// a legitimate execution.
func ExampleLaunch() {
	p := bastion.NewGuestProgram()
	b := bastion.NewBuilder("main", 0)
	b.Call("getpid")
	b.Call("exit_group", bastion.Imm(0))
	b.Ret(bastion.Imm(0))
	p.AddFunc(b.Build())

	art, _ := bastion.Compile(p, bastion.CompileOptions{})
	prot, err := bastion.Launch(art, bastion.NewKernel(), bastion.DefaultMonitorConfig(),
		bastion.WithMaxSteps(1<<16))
	if err != nil {
		fmt.Println(err)
		return
	}
	prot.Machine.Run()
	fmt.Printf("violations: %d\n", len(prot.Monitor.Violations))
	// Output:
	// violations: 0
}

// ExampleEvaluateAttack shows one Table 6 verdict end to end.
func ExampleEvaluateAttack() {
	for _, s := range bastion.AttackCatalog() {
		if s.ID != "ind-aocr-nginx2" {
			continue
		}
		v, err := bastion.EvaluateAttack(s)
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("completes unprotected: %v\n", v.BaselineCompleted)
		fmt.Printf("CT blocks: %v, CF blocks: %v, AI blocks: %v\n", v.CT, v.CF, v.AI)
		fmt.Printf("full BASTION blocks: %v\n", v.FullBlocked)
	}
	// Output:
	// completes unprotected: true
	// CT blocks: false, CF blocks: false, AI blocks: true
	// full BASTION blocks: true
}
