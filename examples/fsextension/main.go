// Fsextension: reproduce the §11.2 experiment — extend BASTION's coverage
// to file-system system calls and decompose where the overhead comes from
// (Table 7's three checkpoints: seccomp hook, ptrace state fetch, full
// context checking).
package main

import (
	"fmt"
	"log"

	"bastion"
	"bastion/internal/bench"
	"bastion/internal/core/monitor"
)

func main() {
	const units = 60
	app := "nginx"

	base, err := bastion.RunBench(bastion.BenchSpec{App: app, Units: units, Mitigation: bench.MitFull})
	if err != nil {
		log.Fatal(err)
	}
	vanilla, err := bastion.RunBench(bastion.BenchSpec{App: app, Units: units, Mitigation: bench.MitVanilla})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: sensitive-only protection traps %d times for %d requests\n",
		app, base.Workload.Traps, units)

	configs := []struct {
		label string
		mode  monitor.Mode
	}{
		{"seccomp hook only", monitor.ModeHookOnly},
		{"fetch process state", monitor.ModeFetchOnly},
		{"full context checking", monitor.ModeFull},
	}
	fmt.Println("\nwith file-system syscalls protected (§11.2):")
	for _, cfg := range configs {
		r, err := bastion.RunBench(bastion.BenchSpec{
			App: app, Units: units, Mitigation: bench.MitFull,
			ExtendFS: true, Mode: cfg.mode,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s traps=%-5d monitor=%8.0f cyc/req  overhead=%.2f%%\n",
			cfg.label, r.Workload.Traps, r.Workload.PerUnitMonitor(),
			bench.Overhead(vanilla, r))
	}
	fmt.Println("\nFetching guest state through ptrace dominates — the paper's")
	fmt.Println("motivation for moving the monitor into the kernel (eBPF).")
}
