// Attackdemo: walk three representative Table 6 attacks — one per
// category — through every defense configuration, showing which context
// stops what (the paper's §10 case-study narrative).
package main

import (
	"fmt"
	"log"

	"bastion"
)

func main() {
	picks := map[string]string{
		"rop-exec-01":  "ROP chain into the exec path (CET-era payload)",
		"direct-cscfi": "NEWTON CsCFI: pointer to a never-used syscall",
		"ind-jujutsu":  "Control Jujutsu: full-function reuse, CFI-clean",
	}
	for _, s := range bastion.AttackCatalog() {
		note, ok := picks[s.ID]
		if !ok {
			continue
		}
		v, err := bastion.EvaluateAttack(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n  %s [%s on %s]\n", note, s.Name, s.Category, s.App)
		fmt.Printf("  unprotected completes: %v\n", v.BaselineCompleted)
		mark := func(b bool) string {
			if b {
				return "✓ blocks"
			}
			return "× bypassed"
		}
		fmt.Printf("  Call-Type:          %s\n", mark(v.CT))
		fmt.Printf("  Control-Flow:       %s\n", mark(v.CF))
		fmt.Printf("  Argument-Integrity: %s\n", mark(v.AI))
		fmt.Printf("  All three together: %s\n\n", mark(v.FullBlocked))
	}
	fmt.Println("Even when one context is bypassed, another compensates —")
	fmt.Println("the defense-in-depth claim of the paper's Table 6.")
}
