// Quickstart: build a tiny guest program, compile it with BASTION, run it
// protected, then corrupt a system call argument the way an attacker with
// arbitrary memory write would — and watch the argument-integrity context
// kill the process.
package main

import (
	"fmt"
	"log"

	"bastion"
)

func buildGuest() *bastion.Program {
	p := bastion.NewGuestProgram() // syscall wrappers + string helpers

	// harden(): prot = PROT_READ; mprotect(region, 4096, prot)
	// The prot variable is memory-backed, so the compiler shadows its
	// stores and binds it at the callsite.
	b := bastion.NewBuilder("harden", 1)
	b.Local("prot", 8)
	pa := b.Lea("prot", 0)
	b.Store(pa, 0, bastion.Imm(1), 8) // PROT_READ
	region := b.LoadLocal("p0")
	pv := b.Load(b.Lea("prot", 0), 0, 8)
	r := b.Call("mprotect", bastion.R(region), bastion.Imm(4096), bastion.R(pv))
	b.Ret(bastion.R(r))
	p.AddFunc(b.Build())

	// main(): map a page, harden it, exit.
	m := bastion.NewBuilder("main", 0)
	addr := m.Call("mmap", bastion.Imm(0), bastion.Imm(4096),
		bastion.Imm(3 /*RW*/), bastion.Imm(0x22 /*ANON|PRIV*/), bastion.Imm(-1), bastion.Imm(0))
	m.Call("harden", bastion.R(addr))
	m.Call("exit_group", bastion.Imm(0))
	m.Ret(bastion.Imm(0))
	p.AddFunc(m.Build())
	return p
}

func main() {
	// Compile: analysis + instrumentation + metadata.
	art, err := bastion.Compile(buildGuest(), bastion.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d instrumentation sites, %d sensitive callsites\n",
		art.Stats.Total(), art.Stats.SensitiveCallsites)

	// Legitimate run under full protection.
	prot, err := bastion.Launch(art, bastion.NewKernel(), bastion.DefaultMonitorConfig(),
		bastion.WithMaxSteps(1<<20))
	if err != nil {
		log.Fatal(err)
	}
	if err := prot.Machine.Run(); err != nil {
		log.Fatalf("legitimate run failed: %v", err)
	}
	fmt.Printf("legitimate run: %d monitor hooks, %d violations\n",
		prot.Monitor.Hooks, len(prot.Monitor.Violations))

	// Attack run: corrupt the spilled prot argument at the mprotect stub
	// boundary (PROT_READ -> PROT_READ|WRITE|EXEC), bypassing the
	// instrumentation that keeps the shadow copy fresh.
	art2, err := bastion.Compile(buildGuest(), bastion.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	prot2, err := bastion.Launch(art2, bastion.NewKernel(), bastion.DefaultMonitorConfig(),
		bastion.WithMaxSteps(1<<20))
	if err != nil {
		log.Fatal(err)
	}
	if err := prot2.Machine.HookFunc("mprotect", 0, func(m *bastion.Machine) error {
		slot, err := m.SlotAddr("p2")
		if err != nil {
			return err
		}
		return m.Mem.WriteUint(slot, 7, 8) // PROT_RWX
	}); err != nil {
		log.Fatal(err)
	}
	err = prot2.Machine.Run()
	fmt.Printf("attack run:   %v\n", err)
	for _, v := range prot2.Monitor.Violations {
		fmt.Printf("  detected: %s\n", v)
	}
}
