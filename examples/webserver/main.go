// Webserver: protect the NGINX-analog with BASTION, serve live HTTP
// requests through the simulated network, and report the monitor's view —
// the deployment scenario of the paper's §9.
package main

import (
	"fmt"
	"log"

	"bastion"
)

func main() {
	// One measured run via the bench harness: full protection, the paper's
	// wrk-like workload.
	res, err := bastion.RunBench(bastion.BenchSpec{App: "nginx", Units: 50, Mitigation: bastion.MitFull})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("NGINX-analog under full BASTION (50 requests):")
	fmt.Printf("  served:         %d bytes\n", res.Workload.Bytes)
	fmt.Printf("  monitor hooks:  %d (accept4 once per request)\n", res.Workload.Traps)
	fmt.Printf("  violations:     %d\n", len(res.Protected.Monitor.Violations))
	fmt.Printf("  per request:    %.0f cycles total, %.0f in the monitor\n",
		res.Workload.PerUnitTotal(), res.Workload.PerUnitMonitor())

	// Compare against the unprotected baseline.
	base, err := bastion.RunBench(bastion.BenchSpec{App: "nginx", Units: 50, Mitigation: bastion.MitVanilla})
	if err != nil {
		log.Fatal(err)
	}
	loss := (1 - res.Workload.PerUnitTotal()/base.Workload.PerUnitTotal()) * -100
	fmt.Printf("  request-time overhead vs vanilla: %.2f%%\n", loss)

	// Now the attack: CVE-2013-2028-style stack smash diverting into the
	// execve stub. Unprotected it pops a shell; protected it dies at the
	// system call.
	for _, s := range bastion.AttackCatalog() {
		if s.ID != "cve-2013-2028" {
			continue
		}
		v, err := bastion.EvaluateAttack(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s (%s):\n", s.Name, s.ID)
		fmt.Printf("  unprotected:   shell executed = %v\n", v.BaselineCompleted)
		fmt.Printf("  call-type:     blocked = %v\n", v.CT)
		fmt.Printf("  control-flow:  blocked = %v\n", v.CF)
		fmt.Printf("  arg-integrity: blocked = %v\n", v.AI)
		fmt.Printf("  full BASTION:  blocked = %v\n", v.FullBlocked)
	}
}
