// Package bastion is the public API of the BASTION reproduction: a
// from-scratch implementation of "Protect the System Call, Protect (Most
// of) the World with BASTION" (ASPLOS 2023) over a simulated substrate.
//
// BASTION enforces System Call Integrity on a protected program through
// three contexts, checked by a runtime monitor at every sensitive system
// call invocation:
//
//   - Call-Type: the system call may only be invoked the way the program
//     invokes it (directly, indirectly, or not at all).
//   - Control-Flow: the runtime stack that reached the call must follow
//     the statically derived callee→caller relations.
//   - Argument-Integrity: every argument must match its compiler-traced
//     legitimate value held in shadow memory.
//
// The pipeline mirrors the paper: Compile runs the analysis/instrumentation
// pass over a guest program and emits context metadata; Launch starts the
// program on a simulated kernel with the monitor attached (seccomp-BPF
// filter + ptrace-style state fetching). Guest programs are written in a
// small IR (package-level re-exports below) against a libc-like wrapper
// layer; three full applications (an NGINX-, SQLite-, and vsFTPd-analog)
// ship in internal/apps and back the paper's evaluation.
//
// A minimal protected program:
//
//	p := bastion.NewGuestProgram()            // libc wrappers preloaded
//	b := bastion.NewBuilder("main", 0)
//	... build guest code ...
//	p.AddFunc(b.Build())
//	art, _ := bastion.Compile(p, bastion.CompileOptions{})
//	k := bastion.NewKernel()
//	prot, _ := bastion.Launch(art, k, bastion.DefaultMonitorConfig())
//	prot.Machine.CallFunction("main")
package bastion

import (
	"bastion/internal/apps/guestlibc"
	"bastion/internal/apps/nginx"
	"bastion/internal/apps/sqlitedb"
	"bastion/internal/apps/vsftpd"
	"bastion/internal/attacks"
	"bastion/internal/bench"
	"bastion/internal/core"
	"bastion/internal/core/monitor"
	"bastion/internal/ir"
	"bastion/internal/kernel"
	"bastion/internal/vm"
	"bastion/internal/workload"
)

// --- IR surface for building guest programs ---

// Program is a guest program under construction or compiled.
type Program = ir.Program

// Builder assembles one guest function.
type Builder = ir.Builder

// Operand is an instruction operand (register or immediate).
type Operand = ir.Operand

// Reg names a virtual register.
type Reg = ir.Reg

// Global declares a guest global variable.
type Global = ir.Global

// R wraps a register as an operand.
func R(r Reg) Operand { return ir.R(r) }

// Imm wraps an immediate as an operand.
func Imm(v int64) Operand { return ir.Imm(v) }

// Binary operators for Builder.Bin.
const (
	OpAdd = ir.OpAdd
	OpSub = ir.OpSub
	OpMul = ir.OpMul
	OpDiv = ir.OpDiv
	OpMod = ir.OpMod
	OpAnd = ir.OpAnd
	OpOr  = ir.OpOr
	OpXor = ir.OpXor
	OpShl = ir.OpShl
	OpShr = ir.OpShr
	OpEq  = ir.OpEq
	OpNe  = ir.OpNe
	OpLt  = ir.OpLt
	OpLe  = ir.OpLe
	OpGt  = ir.OpGt
	OpGe  = ir.OpGe
)

// NewProgram returns an empty guest program (no libc).
func NewProgram() *Program { return ir.NewProgram() }

// NewGuestProgram returns a program preloaded with the libc-like system
// call wrappers and string helpers every application starts from.
func NewGuestProgram() *Program { return guestlibc.NewProgram() }

// NewBuilder starts a guest function with the given parameter count.
func NewBuilder(name string, params int) *Builder { return ir.NewBuilder(name, params) }

// --- Compilation ---

// Artifact is a compiled, instrumented program plus its context metadata.
type Artifact = core.Artifact

// CompileOptions configures compilation.
type CompileOptions = core.CompileOptions

// Compile runs the BASTION compiler pass: call-type classification,
// control-flow graph extraction, argument-integrity analysis, and
// instrumentation (§6 of the paper).
func Compile(p *Program, opts CompileOptions) (*Artifact, error) { return core.Compile(p, opts) }

// SensitiveSyscalls is Table 1's default protected set.
func SensitiveSyscalls() []uint32 {
	out := make([]uint32, len(kernel.SensitiveSyscalls))
	copy(out, kernel.SensitiveSyscalls)
	return out
}

// --- Launching ---

// Kernel is the simulated operating system.
type Kernel = kernel.Kernel

// Protected is a launched guest with (optionally) an attached monitor.
type Protected = core.Protected

// Machine is the guest virtual machine.
type Machine = vm.Machine

// MonitorConfig selects enforcement contexts and monitor behavior.
type MonitorConfig = monitor.Config

// Context is a bitmask of enforcement contexts.
type Context = monitor.Context

// Enforcement contexts.
const (
	CallType     = monitor.CallType
	ControlFlow  = monitor.ControlFlow
	ArgIntegrity = monitor.ArgIntegrity
	AllContexts  = monitor.AllContexts
)

// NewKernel creates a kernel with an empty filesystem and network stack.
func NewKernel() *Kernel { return kernel.New(nil) }

// DefaultMonitorConfig enables all three contexts with the paper's
// accept/accept4 fast path.
func DefaultMonitorConfig() MonitorConfig { return monitor.DefaultConfig() }

// Launch starts a compiled artifact under the monitor (§7.1).
func Launch(a *Artifact, k *Kernel, cfg MonitorConfig, opts ...vm.Option) (*Protected, error) {
	return core.Launch(a, k, cfg, opts...)
}

// LaunchUnprotected starts the artifact with no filter and no monitor —
// the evaluation's vanilla baseline.
func LaunchUnprotected(a *Artifact, k *Kernel, opts ...vm.Option) (*Protected, error) {
	return core.LaunchUnprotected(a, k, opts...)
}

// WithMaxSteps bounds guest execution (runaway protection).
func WithMaxSteps(n uint64) vm.Option { return vm.WithMaxSteps(n) }

// --- Evaluation applications ---

// BuildNginx assembles the paper's NGINX-analog web server.
func BuildNginx() *Program { return nginx.Build() }

// BuildSQLite assembles the SQLite-analog transactional database.
func BuildSQLite() *Program { return sqlitedb.Build() }

// BuildVsftpd assembles the vsFTPd-analog FTP server.
func BuildVsftpd() *Program { return vsftpd.Build() }

// --- Workloads and experiments ---

// WorkloadTarget drives one application through its paper benchmark.
type WorkloadTarget = workload.Target

// NewWorkload returns the named benchmark driver ("nginx", "sqlite",
// "vsftpd").
func NewWorkload(name string) (WorkloadTarget, error) { return workload.NewTarget(name) }

// BenchSpec describes one performance measurement.
type BenchSpec = bench.RunSpec

// Mitigation stacks for BenchSpec, in the paper's Figure 3 order.
const (
	MitVanilla = bench.MitVanilla
	MitCFI     = bench.MitCFI
	MitCET     = bench.MitCET
	MitCETCT   = bench.MitCETCT
	MitCETCTCF = bench.MitCETCTCF
	MitFull    = bench.MitFull
)

// BenchResult couples a measurement with its launch context.
type BenchResult = bench.RunResult

// RunBench executes one measurement from scratch.
func RunBench(spec BenchSpec) (*BenchResult, error) { return bench.Run(spec) }

// --- Security case studies ---

// AttackScenario is one Table 6 attack.
type AttackScenario = attacks.Scenario

// AttackVerdict is a scenario's per-context outcome.
type AttackVerdict = attacks.Verdict

// AttackCatalog returns all 36 Table 6 scenarios (the paper's 32 plus
// the syscall-ordering family).
func AttackCatalog() []AttackScenario { return attacks.Catalog() }

// EvaluateAttack runs one scenario against each context in isolation and
// the full configuration.
func EvaluateAttack(s AttackScenario) (AttackVerdict, error) { return attacks.Evaluate(s) }
