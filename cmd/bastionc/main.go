// bastionc is the BASTION compiler front end: it assembles one of the
// bundled guest applications, runs the analysis/instrumentation pass, and
// reports call-type classification, instrumentation statistics, and
// (optionally) the generated context metadata and instrumented IR listing.
//
// Usage:
//
//	bastionc -app nginx [-meta out.json] [-dump-ir] [-summary] [-audit]
//	bastionc -app nginx -binary-only [-meta out.json]
//
// With -binary-only the compiler pass is skipped entirely: the program is
// linked uninstrumented and the policy artifact is recovered by the
// B-Side static extractor (internal/core/binscan), exactly as for a guest
// whose build system offers no compiler cooperation.
package main

import (
	"flag"
	"fmt"
	"os"

	"bastion/internal/apps/nginx"
	"bastion/internal/apps/sqlitedb"
	"bastion/internal/apps/vsftpd"
	"bastion/internal/audit"
	"bastion/internal/core"
	"bastion/internal/core/binscan"
	"bastion/internal/ir"
	"bastion/internal/ir/irtext"
)

func main() {
	app := flag.String("app", "nginx", "guest application: nginx | sqlite | vsftpd")
	metaOut := flag.String("meta", "", "write context metadata JSON to this file")
	dumpIR := flag.Bool("dump-ir", false, "print the instrumented IR listing")
	irOut := flag.String("o", "", "write the instrumented IR listing (.bir) to this file")
	summary := flag.Bool("summary", true, "print the call-type summary")
	doAudit := flag.Bool("audit", false, "audit the generated metadata against the instrumented program; exit 1 on any error-severity finding")
	binaryOnly := flag.Bool("binary-only", false, "skip the compiler pass; extract the policy from the uninstrumented binary (B-Side mode)")
	flag.Parse()

	var prog *ir.Program
	switch *app {
	case "nginx":
		prog = nginx.Build()
	case "sqlite":
		prog = sqlitedb.Build()
	case "vsftpd":
		prog = vsftpd.Build()
	default:
		fmt.Fprintf(os.Stderr, "bastionc: unknown app %q\n", *app)
		os.Exit(2)
	}

	var art *core.Artifact
	if *binaryOnly {
		res, err := binscan.Extract(prog, binscan.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "bastionc: extract: %v\n", err)
			os.Exit(1)
		}
		art = &core.Artifact{Prog: prog, Meta: res.Meta}
		es := res.Stats
		fmt.Printf("bastionc: extracted %s (binary-only, no instrumentation)\n", *app)
		fmt.Printf(" functions: %d (%d syscall wrappers, %d sensitive)\n",
			es.Funcs, es.Wrappers, es.SensitiveWrappers)
		fmt.Printf(" callsites: %d total (%d direct, %d indirect), %d sensitive\n",
			es.TotalCallsites, es.DirectCallsites, es.IndirectCallsites, es.SensitiveCallsites)
		fmt.Printf(" arguments: %d constants recovered, %d abandoned to top\n",
			es.ConstArgs, es.TopArgs)
		fmt.Printf(" control flow: %d coarse indirect edges, %d address-taken targets; flow graph %d nodes, %d edges\n",
			es.CoarseEdges, es.AddressTaken, es.FlowNodes, es.FlowEdges)
	} else {
		var err error
		art, err = core.Compile(prog, core.CompileOptions{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "bastionc: %v\n", err)
			os.Exit(1)
		}
	}

	if !*binaryOnly {
		s := art.Stats
		fmt.Printf("bastionc: compiled %s\n", *app)
		fmt.Printf(" callsites: %d total (%d direct, %d indirect), %d sensitive\n",
			s.TotalCallsites, s.DirectCallsites, s.IndirectCallsites, s.SensitiveCallsites)
		fmt.Printf(" instrumentation: %d ctx_write_mem, %d ctx_bind_mem, %d ctx_bind_const (%d total)\n",
			s.CtxWriteMem, s.CtxBindMem, s.CtxBindConst, s.Total())
		fmt.Printf(" untraced arguments: %d\n", s.UntracedArgs)
		fmt.Printf(" indirect refinement: edges %d -> %d, allowed pairs %d -> %d (%d exact, %d escaped sites)\n",
			s.IndirectEdgesCoarse, s.IndirectEdgesRefined,
			s.AllowedPairsCoarse, s.AllowedPairsRefined,
			s.ExactIndirectSites, s.EscapedIndirectSites)
	}

	if *summary {
		fmt.Print(art.Meta.Summary())
	}
	if *metaOut != "" {
		data, err := art.Meta.Marshal()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bastionc: marshal: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*metaOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bastionc: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("metadata written to %s (%d bytes)\n", *metaOut, len(data))
	}
	if *dumpIR {
		fmt.Println(art.Prog.String())
	}
	if *irOut != "" {
		listing := art.Prog.String()
		// Self-check: the listing must reparse to a fixed point before it
		// is handed to anyone.
		if _, err := irtext.Parse(listing); err != nil {
			fmt.Fprintf(os.Stderr, "bastionc: listing does not round-trip: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*irOut, []byte(listing), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bastionc: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("instrumented listing written to %s\n", *irOut)
	}
	if *doAudit {
		rep := audit.Run(*app, art.Prog, art.Meta)
		fmt.Print(rep.Render())
		if n := rep.Errors(); n != 0 {
			fmt.Fprintf(os.Stderr, "bastionc: audit found %d error(s)\n", n)
			os.Exit(1)
		}
	}
}
