// bastion-extract is the B-Side front end: it links one (or all) of the
// bundled guest applications WITHOUT the compiler pass, recovers a policy
// artifact from the bare binary with the static extractor
// (internal/core/binscan), and optionally writes the artifact and the
// precision/recall audit against the compiler-traced ground truth.
//
// Usage:
//
//	bastion-extract [-app nginx|sqlite|vsftpd|all] [-meta out.json] [-facts] [-report out.txt] [-strict]
//
// -meta requires a single -app. The report compiles the same program with
// the compiler pass and diffs the two artifacts per context; with -strict
// the exit status is 1 when any error-severity finding is present (a
// traced CT/CF/SF fact the extraction failed to recover).
//
// Exit status: 0 on success, 1 on extraction/compile errors or -strict
// findings, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bastion/internal/apps/nginx"
	"bastion/internal/apps/sqlitedb"
	"bastion/internal/apps/vsftpd"
	"bastion/internal/audit"
	"bastion/internal/core"
	"bastion/internal/core/binscan"
	"bastion/internal/ir"
)

var builders = map[string]func() *ir.Program{
	"nginx":  nginx.Build,
	"sqlite": sqlitedb.Build,
	"vsftpd": vsftpd.Build,
}

func main() {
	app := flag.String("app", "all", "guest application: nginx | sqlite | vsftpd | all")
	metaOut := flag.String("meta", "", "write the extracted metadata JSON to this file (single app only)")
	facts := flag.Bool("facts", false, "print the per-fact extraction provenance log")
	reportOut := flag.String("report", "", "write the precision/recall report to this file ('-' for stdout)")
	strict := flag.Bool("strict", false, "exit 1 when the report contains any error-severity finding")
	flag.Parse()

	var apps []string
	switch *app {
	case "all":
		apps = []string{"nginx", "sqlite", "vsftpd"}
	default:
		if builders[*app] == nil {
			fmt.Fprintf(os.Stderr, "bastion-extract: unknown app %q\n", *app)
			os.Exit(2)
		}
		apps = []string{*app}
	}
	if *metaOut != "" && len(apps) != 1 {
		fmt.Fprintln(os.Stderr, "bastion-extract: -meta requires a single -app")
		os.Exit(2)
	}

	var report strings.Builder
	failed := false
	for _, name := range apps {
		res, err := binscan.Extract(builders[name](), binscan.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "bastion-extract: %s: %v\n", name, err)
			os.Exit(1)
		}
		st := res.Stats
		fmt.Printf("bastion-extract: %s: %d funcs (%d wrappers), %d callsites, %d consts, %d top, flow %d/%d\n",
			name, st.Funcs, st.Wrappers, st.TotalCallsites, st.ConstArgs, st.TopArgs,
			st.FlowNodes, st.FlowEdges)
		if *facts {
			for _, f := range res.Facts {
				fmt.Printf("  %s\n", f)
			}
		}
		if *metaOut != "" {
			data, err := res.Meta.Marshal()
			if err != nil {
				fmt.Fprintf(os.Stderr, "bastion-extract: marshal: %v\n", err)
				os.Exit(1)
			}
			if err := os.WriteFile(*metaOut, data, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "bastion-extract: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("extracted metadata written to %s (%d bytes)\n", *metaOut, len(data))
		}
		if *reportOut != "" || *strict {
			art, err := core.Compile(builders[name](), core.CompileOptions{})
			if err != nil {
				fmt.Fprintf(os.Stderr, "bastion-extract: compile %s: %v\n", name, err)
				os.Exit(1)
			}
			rep := audit.DiffExtracted(name, art.Meta, res.Meta)
			report.WriteString(rep.Render())
			if rep.Errors() != 0 {
				fmt.Fprintf(os.Stderr, "bastion-extract: %s: %d error-severity finding(s)\n", name, rep.Errors())
				failed = true
			}
		}
	}
	if *reportOut == "-" {
		fmt.Print(report.String())
	} else if *reportOut != "" {
		if err := os.WriteFile(*reportOut, []byte(report.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bastion-extract: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("precision/recall report written to %s\n", *reportOut)
	}
	if *strict && failed {
		os.Exit(1)
	}
}
