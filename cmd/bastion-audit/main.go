// bastion-audit is the whole-program policy auditor: it compiles one (or
// all) of the bundled guest applications, cross-validates the generated
// context metadata against the instrumented program, and prints a
// deterministic findings report plus the per-syscall residual attack
// surface before and after points-to refinement.
//
// Usage:
//
//	bastion-audit [-app nginx|sqlite|vsftpd|all] [-format text|json] [-allowlist file] [-strict] [-residual=false]
//
// With -format json each app's report is emitted as one machine-readable
// JSON document (stable key order, byte-identical across runs); -residual
// is folded into the document and the findings list is always included.
//
// Exit status: 0 when the audit is clean, 1 when any error-severity
// finding is present (or, with -strict, when any finding survives the
// allowlist), 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"bastion/internal/apps/nginx"
	"bastion/internal/apps/sqlitedb"
	"bastion/internal/apps/vsftpd"
	"bastion/internal/audit"
	"bastion/internal/core"
	"bastion/internal/ir"
)

var builders = map[string]func() *ir.Program{
	"nginx":  nginx.Build,
	"sqlite": sqlitedb.Build,
	"vsftpd": vsftpd.Build,
}

func main() {
	app := flag.String("app", "all", "guest application: nginx | sqlite | vsftpd | all")
	allowFile := flag.String("allowlist", "", "allowlist file: one \"CODE location\" key per line, '#' comments")
	strict := flag.Bool("strict", false, "fail on any finding not covered by the allowlist (warnings included)")
	residual := flag.Bool("residual", true, "print the per-syscall residual-surface table")
	format := flag.String("format", "text", "report format: text | json")
	flag.Parse()

	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "bastion-audit: unknown format %q\n", *format)
		os.Exit(2)
	}

	var apps []string
	switch *app {
	case "all":
		apps = []string{"nginx", "sqlite", "vsftpd"}
	default:
		if builders[*app] == nil {
			fmt.Fprintf(os.Stderr, "bastion-audit: unknown app %q\n", *app)
			os.Exit(2)
		}
		apps = []string{*app}
	}

	allow := map[string]bool{}
	if *allowFile != "" {
		data, err := os.ReadFile(*allowFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bastion-audit: %v\n", err)
			os.Exit(2)
		}
		allow = audit.ParseAllowlist(data)
	}

	failed := false
	for _, name := range apps {
		art, err := core.Compile(builders[name](), core.CompileOptions{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "bastion-audit: compile %s: %v\n", name, err)
			os.Exit(1)
		}
		rep := audit.Run(name, art.Prog, art.Meta)
		if *format == "json" {
			data, err := rep.RenderJSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "bastion-audit: render %s: %v\n", name, err)
				os.Exit(1)
			}
			os.Stdout.Write(data)
		} else {
			fmt.Fprintf(os.Stdout, "audit %s: %d finding(s), %d error(s)\n", rep.App, len(rep.Findings), rep.Errors())
			for _, f := range rep.Findings {
				fmt.Printf("  %s\n", f)
			}
			if *residual {
				fmt.Print(rep.RenderResidual())
			}
		}
		if *strict {
			if left := rep.Unallowed(allow); len(left) > 0 {
				fmt.Fprintf(os.Stderr, "bastion-audit: %s: %d finding(s) not in allowlist:\n", name, len(left))
				for _, f := range left {
					fmt.Fprintf(os.Stderr, "  %s\n", f.Key())
				}
				failed = true
			}
		} else if rep.Errors() != 0 {
			fmt.Fprintf(os.Stderr, "bastion-audit: %s: %d error(s)\n", name, rep.Errors())
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
