// bastion-attack runs the security case studies of §10: the 36 attacks of
// Table 6 (the paper's 32 plus the syscall-ordering family), each against
// the unprotected baseline, each BASTION context in isolation, and the
// full configuration.
//
// Usage:
//
//	bastion-attack              # whole catalog, Table 6 layout
//	bastion-attack -id rop-exec-01 -v
package main

import (
	"flag"
	"fmt"
	"os"

	"bastion/internal/attacks"
	"bastion/internal/bench"
)

func main() {
	id := flag.String("id", "", "run a single scenario by id")
	verbose := flag.Bool("v", false, "print per-defense outcomes")
	flag.Parse()

	if *id != "" {
		s, ok := attacks.ByID(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "bastion-attack: no scenario %q\n", *id)
			os.Exit(2)
		}
		runOne(s, *verbose)
		return
	}

	rows, err := bench.Table6()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bastion-attack: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(bench.RenderTable6(rows))
	blocked := 0
	for _, r := range rows {
		if r.Verdict.FullBlocked {
			blocked++
		}
	}
	fmt.Printf("full BASTION blocked %d/%d attacks\n", blocked, len(rows))
}

func runOne(s attacks.Scenario, verbose bool) {
	fmt.Printf("%s — %s (%s, %s)\n", s.ID, s.Name, s.Category, s.App)
	for _, d := range []attacks.Defense{
		attacks.DefNone, attacks.DefCT, attacks.DefCF, attacks.DefAI,
		attacks.DefAll, attacks.DefCET, attacks.DefCFI,
	} {
		out, err := attacks.Execute(s, d)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bastion-attack: %s under %s: %v\n", s.ID, d.Name, err)
			os.Exit(1)
		}
		status := "COMPLETED"
		if out.Blocked() {
			status = "blocked by " + out.KilledBy
		} else if !out.Completed {
			status = "failed"
		}
		fmt.Printf("  %-12s %s", d.Name, status)
		if verbose && out.Reason != "" {
			fmt.Printf("  (%s)", out.Reason)
		}
		fmt.Println()
	}
}
