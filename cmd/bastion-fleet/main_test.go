package main

import (
	"strings"
	"testing"
)

func TestParseSLO(t *testing.T) {
	cfg, err := parseSLO("p99=16000,viol=1,rejects=0.5,warn=0.9")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.TrapP99Cycles != 16000 || cfg.ViolationsPerKUnit != 1 ||
		cfg.RejectsPerTenant != 0.5 || cfg.WarnFraction != 0.9 {
		t.Fatalf("parsed %+v", cfg)
	}

	// Unlisted budgets stay disabled; listed zero-tolerance sticks.
	cfg, err = parseSLO("viol=0")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.TrapP99Cycles != 0 || cfg.ViolationsPerKUnit != 0 || cfg.RejectsPerTenant != -1 {
		t.Fatalf("partial spec parsed %+v", cfg)
	}

	// Spaces are tolerated, anomaly knobs land.
	cfg, err = parseSLO("p99=4000, factor=8, warmup=4")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.AnomalyFactor != 8 || cfg.AnomalyWarmup != 4 {
		t.Fatalf("anomaly knobs parsed %+v", cfg)
	}

	bad := map[string]string{
		"p99":           "key=value",
		"p99=0":         "positive",
		"p99=fast":      "positive",
		"viol=-1":       "non-negative",
		"rejects=-0.5":  "non-negative",
		"latency=5":     "unknown budget",
		"warn=1":        "warn fraction",
		"factor=1":      "anomaly factor",
		"warmup=-1":     "warmup",
		"warn=notafrac": "fraction",
	}
	for in, want := range bad {
		if _, err := parseSLO(in); err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("parseSLO(%q) = %v, want error containing %q", in, err, want)
		}
	}
}
