// bastion-fleet runs the multi-tenant fleet supervisor: N protected guest
// instances executing their workloads concurrently from one shared set of
// compiled artifacts, with per-tenant restart policy and an aggregated
// fleet report.
//
// Usage:
//
//	bastion-fleet [-tenants N] [-app nginx,sqlite,vsftpd] [-units N]
//	              [-mode full|fetch-only|hook-only] [-contexts ct,cf,ai,sf]
//	              [-restarts N] [-seed N]
//	              [-det] [-workers N] [-share=false] [-cache] [-extendfs]
//	              [-offload] [-tree] [-malicious IDX] [-attack ID] [-md]
//	              [-shards N] [-reload-at N] [-reload-to SPEC]
//	              [-trace out.jsonl] [-trace-format jsonl|chrome]
//	              [-metrics out.txt] [-metrics-format text|openmetrics]
//	              [-flight N] [-slo p99=N,viol=R,rejects=R,warn=F]
//
// Example: inject the vsftpd CVE into tenant 2 of a six-tenant fleet and
// watch it get killed and restarted while its siblings run undisturbed:
//
//	bastion-fleet -tenants 6 -units 20 -malicious 2 -attack cve-2012-0809
//
// Example: run 256 tenants under an 8-shard control plane (consistent-hash
// placement, per-shard admission with backpressure) and hot-reload every
// tenant onto a tree-filter + verdict-cache policy after its 10th unit,
// with zero guest downtime:
//
//	bastion-fleet -tenants 256 -units 20 -shards 8 -reload-at 10 -reload-to cache,tree -md
//
// Example: score every shard against service budgets (p99 trap latency
// 16k cycles, one violation per thousand units, half an admission reject
// per tenant) and export the merged registry for a Prometheus scrape:
//
//	bastion-fleet -tenants 64 -shards 4 -slo p99=16000,viol=1,rejects=0.5 \
//	              -metrics fleet.om -metrics-format openmetrics -md
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"bastion/internal/core/monitor"
	"bastion/internal/fleet"
	"bastion/internal/obs"
)

// parseSLO turns a comma list of budget tokens into an SLOConfig. All
// budgets start disabled; each token enables one: p99=N (trap-latency
// p99 in cycles), viol=R (violations per 1000 units), rejects=R
// (admission rejects per tenant), warn=F (PASS→WARN utilization,
// default 0.8), factor=F / warmup=N (EWMA anomaly tuning).
func parseSLO(s string) (*fleet.SLOConfig, error) {
	cfg := &fleet.SLOConfig{ViolationsPerKUnit: -1, RejectsPerTenant: -1}
	for _, tok := range strings.Split(strings.ReplaceAll(s, " ", ""), ",") {
		if tok == "" {
			continue
		}
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			return nil, fmt.Errorf("token %q is not key=value", tok)
		}
		switch key {
		case "p99":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil || n == 0 {
				return nil, fmt.Errorf("p99 wants a positive cycle count, got %q", val)
			}
			cfg.TrapP99Cycles = n
		case "viol":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 {
				return nil, fmt.Errorf("viol wants a non-negative rate, got %q", val)
			}
			cfg.ViolationsPerKUnit = f
		case "rejects":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 {
				return nil, fmt.Errorf("rejects wants a non-negative rate, got %q", val)
			}
			cfg.RejectsPerTenant = f
		case "warn":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("warn wants a fraction, got %q", val)
			}
			cfg.WarnFraction = f
		case "factor":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("factor wants a number, got %q", val)
			}
			cfg.AnomalyFactor = f
		case "warmup":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("warmup wants an integer, got %q", val)
			}
			cfg.AnomalyWarmup = n
		default:
			return nil, fmt.Errorf("unknown budget %q (want p99, viol, rejects, warn, factor, warmup)", key)
		}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

func parseMode(s string) (monitor.Mode, error) {
	switch s {
	case "full":
		return monitor.ModeFull, nil
	case "fetch-only":
		return monitor.ModeFetchOnly, nil
	case "hook-only":
		return monitor.ModeHookOnly, nil
	}
	return 0, fmt.Errorf("unknown mode %q (want full, fetch-only, or hook-only)", s)
}

// parseContexts turns a comma list of ct/cf/ai/sf (or "all") into a
// context mask.
func parseContexts(s string) (monitor.Context, error) {
	if strings.EqualFold(strings.TrimSpace(s), "all") {
		return monitor.AllContexts, nil
	}
	var ctx monitor.Context
	for _, tok := range strings.Split(strings.ToLower(strings.ReplaceAll(s, " ", "")), ",") {
		switch tok {
		case "ct":
			ctx |= monitor.CallType
		case "cf":
			ctx |= monitor.ControlFlow
		case "ai":
			ctx |= monitor.ArgIntegrity
		case "sf":
			ctx |= monitor.SyscallFlow
		case "":
		default:
			return 0, fmt.Errorf("must be all or a comma list of ct,cf,ai,sf, got %q", tok)
		}
	}
	if ctx == 0 {
		return 0, fmt.Errorf("list %q enables nothing", s)
	}
	return ctx, nil
}

// parseReloadSpec turns a comma list of policy tokens into the hot-reload
// generation's PolicySpec: cache, tree, extendfs, offload toggle the
// corresponding knobs on (everything unlisted is off), and any of
// ct/cf/ai/sf narrows the context mask (omit them all to keep every
// context enforced).
func parseReloadSpec(s string) (*fleet.PolicySpec, error) {
	spec := &fleet.PolicySpec{}
	for _, tok := range strings.Split(strings.ToLower(strings.ReplaceAll(s, " ", "")), ",") {
		switch tok {
		case "cache":
			spec.VerdictCache = true
		case "tree":
			spec.TreeFilter = true
		case "extendfs":
			spec.ExtendFS = true
		case "offload":
			spec.Offload = true
		case "ct":
			spec.Contexts |= monitor.CallType
			spec.UseContexts = true
		case "cf":
			spec.Contexts |= monitor.ControlFlow
			spec.UseContexts = true
		case "ai":
			spec.Contexts |= monitor.ArgIntegrity
			spec.UseContexts = true
		case "sf":
			spec.Contexts |= monitor.SyscallFlow
			spec.UseContexts = true
		case "":
		default:
			return nil, fmt.Errorf("unknown reload token %q (want cache, tree, extendfs, offload, ct, cf, ai, sf)", tok)
		}
	}
	return spec, nil
}

func splitApps(s string) []string {
	var apps []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			apps = append(apps, a)
		}
	}
	return apps
}

func main() {
	tenants := flag.Int("tenants", 4, "number of protected guest tenants")
	appList := flag.String("app", "nginx,sqlite,vsftpd", "comma-separated workloads, assigned round-robin by tenant index")
	units := flag.Int("units", 20, "work units per tenant")
	modeStr := flag.String("mode", "full", "monitor mode: full | fetch-only | hook-only")
	ctxFlag := flag.String("contexts", "all", "enabled contexts: all, or a comma list of ct,cf,ai,sf")
	restarts := flag.Int("restarts", 3, "max restarts per tenant before it is declared dead")
	seed := flag.Int64("seed", 0, "tenant-interleaving schedule seed")
	det := flag.Bool("det", false, "deterministic mode: run tenants serially in schedule order")
	workers := flag.Int("workers", 0, "goroutine pool size for concurrent dispatch (0 = NumCPU)")
	share := flag.Bool("share", true, "compile artifacts once per app and share across tenants")
	cache := flag.Bool("cache", true, "enable the monitor verdict cache")
	extendFS := flag.Bool("extendfs", false, "extend protection to file-system syscalls (Table 7)")
	offload := flag.Bool("offload", false, "answer in-filter-decidable verdicts inside the seccomp program (requires -extendfs, full mode, no control-flow context)")
	tree := flag.Bool("tree", false, "binary-search seccomp filter compilation")
	malicious := flag.Int("malicious", -1, "tenant index to inject an attack into (-1 = none)")
	attackID := flag.String("attack", "", "attack scenario ID for -malicious (must match the tenant's app)")
	md := flag.Bool("md", false, "print the full markdown report instead of the summary line")
	shards := flag.Int("shards", 0, "shard-supervisor count for the sharded control plane (0 = flat supervisor)")
	reloadAt := flag.Int("reload-at", 0, "hot-reload every tenant's policy after this many units (0 = off; needs -reload-to)")
	reloadTo := flag.String("reload-to", "", "policy to hot-reload to: comma list of cache,tree,extendfs,offload,ct,cf,ai,sf")
	traceOut := flag.String("trace", "", "write the fleet-wide decision trace (tenant-stamped) to this file")
	traceFormat := flag.String("trace-format", "jsonl", "trace format: jsonl | chrome")
	metricsOut := flag.String("metrics", "", "write the merged metrics registry to this file")
	metricsFormat := flag.String("metrics-format", "text", "merged-metrics format: text | openmetrics")
	flightN := flag.Int("flight", 0, "per-tenant flight-recorder depth (0 = off)")
	sloFlag := flag.String("slo", "", "service budgets as a comma list of p99=N,viol=R,rejects=R,warn=F (adds the SLO report section; implies tracing)")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "bastion-fleet: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	if *tenants < 1 {
		fail("-tenants must be at least 1, got %d", *tenants)
	}
	if *units < 1 {
		fail("-units must be at least 1, got %d", *units)
	}
	if *restarts < 0 {
		fail("-restarts must be non-negative, got %d", *restarts)
	}
	if *workers < 0 {
		fail("-workers must be non-negative, got %d", *workers)
	}
	mode, err := parseMode(*modeStr)
	if err != nil {
		fail("%v", err)
	}
	ctxMask, err := parseContexts(*ctxFlag)
	if err != nil {
		fail("-contexts: %v", err)
	}
	// AllContexts is the fleet default; an explicit mask (including the
	// pre-SF ct,cf,ai shape or the verdict-offload ct,ai shape) overrides.
	useCtx := ctxMask != monitor.AllContexts
	apps := splitApps(*appList)
	if len(apps) == 0 {
		fail("-app must name at least one workload")
	}
	if (*malicious >= 0) != (*attackID != "") {
		fail("-malicious and -attack must be used together")
	}
	if *flightN < 0 {
		fail("-flight must be non-negative, got %d", *flightN)
	}
	if *traceFormat != "jsonl" && *traceFormat != "chrome" {
		fail("-trace-format must be jsonl or chrome, got %q", *traceFormat)
	}
	if *metricsFormat != "text" && *metricsFormat != "openmetrics" {
		fail("-metrics-format must be text or openmetrics, got %q", *metricsFormat)
	}
	var sloCfg *fleet.SLOConfig
	if *sloFlag != "" {
		if sloCfg, err = parseSLO(*sloFlag); err != nil {
			fail("-slo: %v", err)
		}
	}
	if *shards < 0 {
		fail("-shards must be non-negative, got %d", *shards)
	}
	if (*reloadAt > 0) != (*reloadTo != "") {
		fail("-reload-at and -reload-to must be used together")
	}
	var reloadSpec *fleet.PolicySpec
	if *reloadTo != "" {
		if reloadSpec, err = parseReloadSpec(*reloadTo); err != nil {
			fail("-reload-to: %v", err)
		}
	}

	cfg := fleet.Config{
		Tenants:        *tenants,
		Apps:           apps,
		Units:          *units,
		Mode:           mode,
		Contexts:       ctxMask,
		UseContexts:    useCtx,
		ExtendFS:       *extendFS,
		Offload:        *offload,
		VerdictCache:   *cache,
		TreeFilter:     *tree,
		ShareArtifacts: *share,
		MaxRestarts:    *restarts,
		Seed:           *seed,
		Deterministic:  *det,
		Workers:        *workers,
		Shards:         *shards,
		ReloadAt:       *reloadAt,
		ReloadSpec:     reloadSpec,
		Trace:          *traceOut != "" || *metricsOut != "",
		FlightN:        *flightN,
		SLO:            sloCfg,
	}
	if *malicious >= 0 {
		cfg.Malicious = map[int]string{*malicious: *attackID}
	}

	rep, err := fleet.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bastion-fleet: %v\n", err)
		os.Exit(1)
	}
	if *md {
		fmt.Print(rep.Markdown())
	} else {
		fmt.Println(rep.String())
		for i := range rep.Results {
			tr := &rep.Results[i]
			if tr.Attack != nil {
				verdict := "blocked"
				if tr.Attack.Completed {
					verdict = "COMPLETED — tenant quarantined"
				} else if tr.Attack.Killed {
					verdict = "blocked, killed by " + tr.Attack.KilledBy
				}
				fmt.Printf("tenant %d (%s): attack %s %s\n", tr.Index, tr.App, tr.Attack.ID, verdict)
			}
			if tr.Dead {
				fmt.Printf("tenant %d (%s): dead after %d restarts (%d units done)\n",
					tr.Index, tr.App, tr.Restarts, tr.Units)
			}
			if tr.Flight != "" {
				fmt.Printf("tenant %d (%s): flight recorder\n%s", tr.Index, tr.App, tr.Flight)
			}
		}
	}

	runFail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "bastion-fleet: "+format+"\n", args...)
		os.Exit(1)
	}
	if *traceOut != "" {
		// Tenant order, each tenant's events in sequence: stable across
		// runs, and the tenant stamp keeps the streams separable (Chrome
		// renders them as one process track per tenant).
		var events []obs.TrapEvent
		for i := range rep.Results {
			events = append(events, rep.Results[i].Events...)
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			runFail("%v", err)
		}
		if *traceFormat == "chrome" {
			err = obs.WriteChrome(f, events)
		} else {
			err = obs.WriteJSONL(f, events)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			runFail("writing trace: %v", err)
		}
		fmt.Printf("%d trace events written to %s (%s)\n", len(events), *traceOut, *traceFormat)
	}
	if *metricsOut != "" {
		render := rep.MergedMetrics().Render
		if *metricsFormat == "openmetrics" {
			render = rep.MergedMetrics().RenderOpenMetrics
		}
		if err := os.WriteFile(*metricsOut, []byte(render()), 0o644); err != nil {
			runFail("%v", err)
		}
		fmt.Printf("merged metrics written to %s (%s)\n", *metricsOut, *metricsFormat)
	}
}
