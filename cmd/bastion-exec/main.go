// bastion-exec loads a textual IR listing (.bir, as written by
// bastionc -o), optionally compiles it with BASTION, and executes a guest
// function — completing the compile → dump → reload → run toolchain.
//
// Usage:
//
//	bastion-exec -in prog.bir [-fn main] [-args 1,2] [-unprotected]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"bastion/internal/core"
	"bastion/internal/core/monitor"
	"bastion/internal/ir/irtext"
	"bastion/internal/kernel"
	"bastion/internal/vm"
)

func main() {
	in := flag.String("in", "", "input .bir listing")
	fn := flag.String("fn", "main", "guest function to invoke")
	argsFlag := flag.String("args", "", "comma-separated integer arguments")
	unprotected := flag.Bool("unprotected", false, "run without BASTION")
	maxSteps := flag.Uint64("max-steps", 1<<26, "instruction budget")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "bastion-exec: -in is required")
		os.Exit(2)
	}
	src, err := os.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	prog, err := irtext.Parse(string(src))
	if err != nil {
		fatal(fmt.Errorf("parsing %s: %w", *in, err))
	}

	var args []uint64
	if *argsFlag != "" {
		for _, part := range strings.Split(*argsFlag, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(part), 0, 64)
			if err != nil {
				fatal(fmt.Errorf("argument %q: %w", part, err))
			}
			args = append(args, uint64(v))
		}
	}

	k := kernel.New(nil)
	var prot *core.Protected
	if *unprotected {
		if err := prog.Link(); err != nil {
			fatal(err)
		}
		if err := prog.Validate(); err != nil {
			fatal(err)
		}
		prot, err = core.LaunchUnprotected(&core.Artifact{Prog: prog}, k, vm.WithMaxSteps(*maxSteps))
	} else {
		var art *core.Artifact
		art, err = core.Compile(prog, core.CompileOptions{})
		if err != nil {
			fatal(err)
		}
		prot, err = core.Launch(art, k, monitor.DefaultConfig(), vm.WithMaxSteps(*maxSteps))
	}
	if err != nil {
		fatal(err)
	}

	ret, err := prot.Machine.CallFunction(*fn, args...)
	fmt.Printf("%s(%s) = %d", *fn, *argsFlag, int64(ret))
	if err != nil {
		fmt.Printf("  [terminated: %v]", err)
	}
	fmt.Println()
	if out := prot.Proc.Stdout.String(); out != "" {
		fmt.Printf("guest stdout: %q\n", out)
	}
	if prot.Monitor != nil {
		fmt.Printf("monitor: %d hooks, %d violations\n", prot.Monitor.Hooks, len(prot.Monitor.Violations))
		for _, v := range prot.Monitor.Violations {
			fmt.Printf("  %s\n", v)
		}
	}
	for _, e := range prot.Proc.Events {
		fmt.Printf("kernel event: %s\n", e)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bastion-exec: %v\n", err)
	os.Exit(1)
}
