// bastion-run launches one of the bundled applications under a chosen
// protection configuration and drives its paper workload, printing runtime
// statistics — the interactive analog of the paper's §9 runs.
//
// Usage:
//
//	bastion-run -app nginx -units 200 [-contexts ct,cf,ai,sf] [-unprotected]
//	            [-extend-fs] [-offload] [-no-accept-fastpath]
//	            [-trace out.jsonl] [-trace-format jsonl|chrome]
//	            [-metrics out.txt] [-flight N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bastion/internal/bench"
	"bastion/internal/core/monitor"
	"bastion/internal/obs"
)

func main() {
	app := flag.String("app", "nginx", "application: nginx | sqlite | vsftpd")
	units := flag.Int("units", 100, "work units to drive")
	ctxFlag := flag.String("contexts", "ct,cf,ai,sf", "enabled contexts (comma list of ct,cf,ai,sf)")
	unprotected := flag.Bool("unprotected", false, "run without BASTION")
	extendFS := flag.Bool("extend-fs", false, "also protect file-system syscalls (§11.2)")
	offload := flag.Bool("offload", false, "answer in-filter-decidable verdicts inside the seccomp program (needs -extend-fs and a context set without cf)")
	noFast := flag.Bool("no-accept-fastpath", false, "disable the accept/accept4 fast path")
	showMaps := flag.Bool("maps", false, "print the final process memory map")
	traceOut := flag.String("trace", "", "write the per-trap decision trace to this file")
	traceFormat := flag.String("trace-format", "jsonl", "trace format: jsonl | chrome")
	metricsOut := flag.String("metrics", "", "write the metrics registry (text render) to this file")
	flightN := flag.Int("flight", 0, "flight-recorder depth (last N traps attached to violations; 0 = off)")
	flag.Parse()

	spec := bench.RunSpec{
		App:                   *app,
		Units:                 *units,
		ExtendFS:              *extendFS,
		Offload:               *offload,
		DisableAcceptFastPath: *noFast,
	}
	if *unprotected {
		spec.Mitigation = bench.MitVanilla
	} else {
		ctx, err := parseContexts(*ctxFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bastion-run: %v\n", err)
			os.Exit(2)
		}
		switch ctx {
		case monitor.CallType:
			spec.Mitigation = bench.MitCETCT
		case monitor.CallType | monitor.ControlFlow:
			spec.Mitigation = bench.MitCETCTCF
		case monitor.AllContexts:
			spec.Mitigation = bench.MitFull
		default:
			// Any other combination (ct,ai for the verdict-offload shape,
			// ct,cf,ai for pre-SF behavior, sf alone for the flow ablation)
			// runs full mode with an explicit context mask.
			spec.Mitigation = bench.MitFull
			spec.UseContexts = true
			spec.Contexts = ctx
		}
	}

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "bastion-run: "+format+"\n", args...)
		os.Exit(1)
	}
	if *flightN < 0 {
		fail("-flight must be non-negative, got %d", *flightN)
	}
	var sink *obs.BufferSink
	if *traceOut != "" {
		if *traceFormat != "jsonl" && *traceFormat != "chrome" {
			fail("-trace-format must be jsonl or chrome, got %q", *traceFormat)
		}
		sink = &obs.BufferSink{}
		spec.Sink = sink
	}
	spec.FlightN = *flightN

	res, err := bench.Run(spec)
	if err != nil {
		fail("%v", err)
	}

	if sink != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail("%v", err)
		}
		if *traceFormat == "chrome" {
			err = obs.WriteChrome(f, sink.Events)
		} else {
			err = obs.WriteJSONL(f, sink.Events)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fail("writing trace: %v", err)
		}
		fmt.Printf("bastion-run: %d trace events written to %s (%s)\n", len(sink.Events), *traceOut, *traceFormat)
	}
	if *metricsOut != "" {
		if res.Protected.Monitor == nil {
			fail("-metrics requires a monitored run (drop -unprotected)")
		}
		if err := os.WriteFile(*metricsOut, []byte(res.Protected.Monitor.Metrics.Render()), 0o644); err != nil {
			fail("%v", err)
		}
		fmt.Printf("bastion-run: metrics written to %s\n", *metricsOut)
	}

	wl := res.Workload
	fmt.Printf("bastion-run: %s under %s\n", *app, spec.Mitigation)
	fmt.Printf(" units:           %d %ss, %d bytes\n", wl.Units, res.Target.UnitLabel(), wl.Bytes)
	fmt.Printf(" init phase:      %d cycles (%.2f ms)\n", wl.InitCycles, float64(wl.InitCycles)/bench.SimHz*1000)
	fmt.Printf(" steady state:    %d cycles (%.0f per unit)\n", wl.TotalCycles, wl.PerUnitTotal())
	fmt.Printf(" monitor share:   %d cycles (%.0f per unit), %d hooks\n",
		wl.MonitorCycles, wl.PerUnitMonitor(), wl.Traps)
	fmt.Printf(" throughput:      %.1f %ss/sec (modeled, %d workers)\n",
		bench.Throughput(res), res.Target.UnitLabel(), res.Target.Workers())

	if res.Protected.Monitor != nil {
		mon := res.Protected.Monitor
		fmt.Printf(" monitor init:    %.2f ms\n", float64(mon.InitCycles)/bench.SimHz*1000)
		fmt.Print(mon.Report())
		if mon.Recorder != nil && len(mon.Violations) > 0 {
			fmt.Printf(" flight recorder (last %d traps):\n%s", mon.Recorder.Len(), mon.Recorder.DumpJSONL())
		}
	}
	m := res.Protected.Machine
	if m.DepthN > 0 {
		fmt.Printf(" syscall depth:   avg %.1f, min %d, max %d\n", m.AvgSyscallDepth(), m.MinDepth, m.MaxDepth)
	}
	if *showMaps {
		fmt.Printf(" memory map:\n%s", res.Protected.Proc.Maps())
	}
}

// parseContexts turns a comma list of ct/cf/ai/sf (or "all") into a
// context mask.
func parseContexts(s string) (monitor.Context, error) {
	if strings.EqualFold(strings.TrimSpace(s), "all") {
		return monitor.AllContexts, nil
	}
	var ctx monitor.Context
	for _, tok := range strings.Split(strings.ToLower(strings.ReplaceAll(s, " ", "")), ",") {
		switch tok {
		case "ct":
			ctx |= monitor.CallType
		case "cf":
			ctx |= monitor.ControlFlow
		case "ai":
			ctx |= monitor.ArgIntegrity
		case "sf":
			ctx |= monitor.SyscallFlow
		case "":
		default:
			return 0, fmt.Errorf("contexts must be a comma list of ct,cf,ai,sf (or all), got %q", tok)
		}
	}
	if ctx == 0 {
		return 0, fmt.Errorf("contexts list %q enables nothing", s)
	}
	return ctx, nil
}
