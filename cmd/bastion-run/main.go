// bastion-run launches one of the bundled applications under a chosen
// protection configuration and drives its paper workload, printing runtime
// statistics — the interactive analog of the paper's §9 runs.
//
// Usage:
//
//	bastion-run -app nginx -units 200 [-contexts ct,cf,ai] [-unprotected]
//	            [-extend-fs] [-no-accept-fastpath]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bastion/internal/bench"
)

func main() {
	app := flag.String("app", "nginx", "application: nginx | sqlite | vsftpd")
	units := flag.Int("units", 100, "work units to drive")
	ctxFlag := flag.String("contexts", "ct,cf,ai", "enabled contexts (comma list of ct,cf,ai)")
	unprotected := flag.Bool("unprotected", false, "run without BASTION")
	extendFS := flag.Bool("extend-fs", false, "also protect file-system syscalls (§11.2)")
	noFast := flag.Bool("no-accept-fastpath", false, "disable the accept/accept4 fast path")
	showMaps := flag.Bool("maps", false, "print the final process memory map")
	flag.Parse()

	spec := bench.RunSpec{
		App:                   *app,
		Units:                 *units,
		ExtendFS:              *extendFS,
		DisableAcceptFastPath: *noFast,
	}
	if *unprotected {
		spec.Mitigation = bench.MitVanilla
	} else {
		switch normalize(*ctxFlag) {
		case "ct":
			spec.Mitigation = bench.MitCETCT
		case "ct,cf":
			spec.Mitigation = bench.MitCETCTCF
		case "ct,cf,ai":
			spec.Mitigation = bench.MitFull
		default:
			fmt.Fprintf(os.Stderr, "bastion-run: contexts must be ct / ct,cf / ct,cf,ai\n")
			os.Exit(2)
		}
	}

	res, err := bench.Run(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bastion-run: %v\n", err)
		os.Exit(1)
	}

	wl := res.Workload
	fmt.Printf("bastion-run: %s under %s\n", *app, spec.Mitigation)
	fmt.Printf(" units:           %d %ss, %d bytes\n", wl.Units, res.Target.UnitLabel(), wl.Bytes)
	fmt.Printf(" init phase:      %d cycles (%.2f ms)\n", wl.InitCycles, float64(wl.InitCycles)/bench.SimHz*1000)
	fmt.Printf(" steady state:    %d cycles (%.0f per unit)\n", wl.TotalCycles, wl.PerUnitTotal())
	fmt.Printf(" monitor share:   %d cycles (%.0f per unit), %d hooks\n",
		wl.MonitorCycles, wl.PerUnitMonitor(), wl.Traps)
	fmt.Printf(" throughput:      %.1f %ss/sec (modeled, %d workers)\n",
		bench.Throughput(res), res.Target.UnitLabel(), res.Target.Workers())

	if res.Protected.Monitor != nil {
		mon := res.Protected.Monitor
		fmt.Printf(" monitor init:    %.2f ms\n", float64(mon.InitCycles)/bench.SimHz*1000)
		fmt.Print(mon.Report())
	}
	m := res.Protected.Machine
	if m.DepthN > 0 {
		fmt.Printf(" syscall depth:   avg %.1f, min %d, max %d\n", m.AvgSyscallDepth(), m.MinDepth, m.MaxDepth)
	}
	if *showMaps {
		fmt.Printf(" memory map:\n%s", res.Protected.Proc.Maps())
	}
}

func normalize(s string) string {
	parts := strings.Split(strings.ToLower(strings.ReplaceAll(s, " ", "")), ",")
	return strings.Join(parts, ",")
}
