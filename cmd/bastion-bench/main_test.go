package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bastion/internal/obs/perf"
)

// defaults mirrors the flag defaults for building test cases.
func defaults() options {
	return options{exp: "all", units: 120, format: "md", label: "bench", tolerance: 5}
}

func TestValidateFlagCombinations(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*options)
		wantErr string // substring; "" means valid
	}{
		{"defaults", func(o *options) {}, ""},
		{"single experiment", func(o *options) { o.exp = "offload" }, ""},
		{"json artifact", func(o *options) { o.format = "json"; o.out = "a.json" }, ""},
		{"gate while emitting", func(o *options) {
			o.format = "json"
			o.out = "a.json"
			o.baseline = "b.json"
		}, ""},
		{"offline compare", func(o *options) { o.baseline = "b.json"; o.compare = "a.json" }, ""},
		{"zero tolerance", func(o *options) { o.baseline = "b.json"; o.tolerance = 0 }, ""},

		{"bad units", func(o *options) { o.units = 0 }, "-units"},
		{"bad workers", func(o *options) { o.workers = 0; o.workersSet = true }, "-workers"},
		{"exp typo", func(o *options) { o.exp = "ofload" }, `unknown -exp "ofload"`},
		{"bad format", func(o *options) { o.format = "yaml" }, "-format"},
		{"json without out", func(o *options) { o.format = "json" }, "-out"},
		{"out without json", func(o *options) { o.out = "a.json" }, "-format json"},
		{"json with report", func(o *options) {
			o.format = "json"
			o.out = "a.json"
			o.report = "r.md"
		}, "mutually exclusive"},
		{"negative tolerance", func(o *options) { o.baseline = "b.json"; o.tolerance = -1 }, "-tolerance"},
		{"compare without baseline", func(o *options) { o.compare = "a.json" }, "-baseline"},
		{"partial artifact", func(o *options) {
			o.exp = "fig3"
			o.format = "json"
			o.out = "a.json"
		}, "full report"},
		{"partial gate", func(o *options) { o.exp = "cache"; o.baseline = "b.json" }, "full report"},
	}
	for _, tc := range cases {
		o := defaults()
		tc.mutate(&o)
		err := o.validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestExpTypoNamesValidSet: the error for an unknown experiment must list
// the valid names so the fix is in the message.
func TestExpTypoNamesValidSet(t *testing.T) {
	o := defaults()
	o.exp = "tables"
	err := o.validate()
	if err == nil {
		t.Fatal("typo accepted")
	}
	for _, name := range []string{"fig3", "offload", "shard", "extras"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error does not list %q: %v", name, err)
		}
	}
}

// TestExperimentListMatchesRunner: every name in the experiments list
// (beyond "all") must be a name main's run() dispatch knows, and vice
// versa — kept in lockstep by grepping main.go for run("name", ...).
func TestExperimentListMatchesRunner(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range experiments[1:] {
		if !strings.Contains(string(src), `run("`+name+`"`) {
			t.Errorf("experiment %q in the valid list has no run(%q, ...) dispatch", name, name)
		}
	}
}

func TestWorkerCount(t *testing.T) {
	o := defaults()
	if o.workerCount() != 1 {
		t.Fatal("serial default")
	}
	o.parallel = true
	o.workers = 3
	if o.workerCount() != 3 {
		t.Fatal("explicit workers")
	}
	o.workers = 0
	if o.workerCount() < 1 {
		t.Fatal("NumCPU fallback")
	}
}

// TestDiffArtifacts drives the offline-compare path against real files:
// self-compare passes, an injected regression gates, and load errors
// surface with the file path.
func TestDiffArtifacts(t *testing.T) {
	dir := t.TempDir()
	base := perf.New("base", 8)
	base.Add("cost", 100, perf.LowerIsBetter)
	basePath := filepath.Join(dir, "base.json")
	if err := os.WriteFile(basePath, []byte(base.JSON()), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := diffArtifacts(basePath, basePath, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("self-compare regressed:\n%s", res.Render())
	}

	worse := perf.New("worse", 8)
	worse.Add("cost", 120, perf.LowerIsBetter)
	worsePath := filepath.Join(dir, "worse.json")
	if err := os.WriteFile(worsePath, []byte(worse.JSON()), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err = diffArtifacts(basePath, worsePath, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("regression not gated")
	}

	badPath := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badPath, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := diffArtifacts(basePath, badPath, 5); err == nil || !strings.Contains(err.Error(), "bad.json") {
		t.Fatalf("load error does not name the file: %v", err)
	}
	if _, err := diffArtifacts(filepath.Join(dir, "absent.json"), basePath, 5); err == nil {
		t.Fatal("missing baseline accepted")
	}
}
