// bastion-bench regenerates the paper's evaluation artifacts: Figure 3 and
// Tables 3-7, plus the §9.2 extras (monitor init latency, call-depth
// statistics, the accept fast-path ablation, and the linear-vs-tree
// seccomp filter ablation).
//
// Usage:
//
//	bastion-bench [-exp all|fig3|table3|table4|table5|table6|table7|filter|cache|sf|offload|refine|bside|obs|fleet|shard|extras] [-units N]
//	bastion-bench -report out.md [-parallel] [-workers N]
//
// The shard experiment sweeps the sharded control plane across 256/1k/4k
// tenants × shard counts; it defaults to bench.ShardScalingUnits per
// tenant (control-plane cost dominates) unless -units is set explicitly.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"bastion/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all | fig3 | table3 | table4 | table5 | table6 | table7 | filter | cache | sf | offload | refine | bside | obs | fleet | shard | extras")
	units := flag.Int("units", bench.DefaultUnits, "work units per measurement")
	reportOut := flag.String("report", "", "write a complete markdown report to this file")
	parallel := flag.Bool("parallel", false, "fan report experiments out across CPU cores (same output, less wall clock)")
	workers := flag.Int("workers", 0, "worker pool size for -parallel (0 = NumCPU)")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "bastion-bench: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	if *units < 1 {
		fail("-units must be at least 1, got %d", *units)
	}
	unitsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "workers" && *workers < 1 {
			fail("-workers must be at least 1 when set, got %d", *workers)
		}
		if f.Name == "units" {
			unitsSet = true
		}
	})

	if *reportOut != "" {
		n := 1
		if *parallel {
			n = *workers
			if n <= 0 {
				n = runtime.NumCPU()
			}
		}
		rep, err := bench.CollectReportParallel(*units, n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bastion-bench: report: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*reportOut, []byte(rep.Markdown()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bastion-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("report written to %s (%d worker(s))\n", *reportOut, n)
		fmt.Print(rep.TimingSummary())
		return
	}

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "bastion-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("fig3", func() error {
		rows, err := bench.Figure3(*units)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderFigure3(rows))
		return nil
	})
	run("table3", func() error {
		rows, err := bench.Table3(*units)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderTable3(rows))
		return nil
	})
	run("table4", func() error {
		res, err := bench.Table4(*units)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderTable4(res, *units))
		return nil
	})
	run("table5", func() error {
		rows, err := bench.Table5()
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderTable5(rows))
		return nil
	})
	run("table6", func() error {
		rows, err := bench.Table6()
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderTable6(rows))
		return nil
	})
	run("table7", func() error {
		rows, err := bench.Table7(*units)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderTable7(rows))
		return nil
	})
	run("filter", func() error {
		var rows []*bench.FilterAblationResult
		for _, app := range bench.Apps {
			r, err := bench.FilterAblation(app, *units)
			if err != nil {
				return err
			}
			rows = append(rows, r)
		}
		fmt.Println(bench.RenderFilterAblation(rows))
		return nil
	})
	run("cache", func() error {
		var rows []*bench.CacheAblationResult
		for _, app := range bench.Apps {
			r, err := bench.CacheAblation(app, *units)
			if err != nil {
				return err
			}
			rows = append(rows, r)
		}
		fmt.Println(bench.RenderCacheAblation(rows))
		return nil
	})
	run("sf", func() error {
		var rows []*bench.SFAblationResult
		for _, app := range bench.Apps {
			r, err := bench.SFAblation(app, *units)
			if err != nil {
				return err
			}
			rows = append(rows, r)
		}
		fmt.Println(bench.RenderSFAblation(rows))
		return nil
	})
	run("offload", func() error {
		var rows []*bench.OffloadAblationResult
		for _, app := range bench.Apps {
			r, err := bench.OffloadAblation(app, *units)
			if err != nil {
				return err
			}
			rows = append(rows, r)
		}
		fmt.Println(bench.RenderOffloadAblation(rows))
		return nil
	})
	run("refine", func() error {
		var rows []*bench.RefineAblationResult
		for _, app := range bench.Apps {
			r, err := bench.RefineAblation(app, *units)
			if err != nil {
				return err
			}
			rows = append(rows, r)
		}
		fmt.Println(bench.RenderRefineAblation(rows))
		return nil
	})
	run("bside", func() error {
		var rows []*bench.BsideAblationResult
		for _, app := range bench.Apps {
			r, err := bench.BsideAblation(app, *units)
			if err != nil {
				return err
			}
			rows = append(rows, r)
		}
		fmt.Println(bench.RenderBsideAblation(rows))
		return nil
	})
	run("obs", func() error {
		var rows []*bench.ObsAblationResult
		for _, app := range bench.Apps {
			r, err := bench.ObsAblation(app, *units)
			if err != nil {
				return err
			}
			rows = append(rows, r)
		}
		fmt.Println(bench.RenderObsAblation(rows))
		return nil
	})
	run("fleet", func() error {
		res, err := bench.FleetScaling(*units)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderFleetScaling(res))
		return nil
	})
	run("shard", func() error {
		u := bench.ShardScalingUnits
		if unitsSet {
			u = *units
		}
		res, err := bench.DefaultShardScaling(u)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderShardScaling(res))
		return nil
	})
	run("extras", func() error {
		for _, app := range bench.Apps {
			st, err := bench.InitAndDepth(app, *units)
			if err != nil {
				return err
			}
			fmt.Printf("%s: monitor init %.2f ms; syscall depth avg %.1f min %d max %d\n",
				st.App, st.InitMillis, st.AvgDepth, st.MinDepth, st.MaxDepth)
		}
		res, err := bench.AblationAcceptFastPath("nginx", *units)
		if err != nil {
			return err
		}
		fmt.Printf("accept4 fast-path ablation (nginx): %.2f%% with fast path, %.2f%% with full walk\n",
			res.FastPathOverhead, res.FullWalkOverhead)
		return nil
	})
}
