// bastion-bench regenerates the paper's evaluation artifacts: Figure 3 and
// Tables 3-7, plus the §9.2 extras (monitor init latency, call-depth
// statistics, the accept fast-path ablation, and the linear-vs-tree
// seccomp filter ablation).
//
// Usage:
//
//	bastion-bench [-exp all|fig3|table3|table4|table5|table6|table7|filter|cache|sf|offload|refine|bside|obs|fleet|shard|extras] [-units N]
//	bastion-bench -report out.md [-parallel] [-workers N]
//	bastion-bench -format json -out BENCH_<label>.json [-label L] [-parallel]
//	bastion-bench -baseline old.json [-tolerance 5] [-format json -out new.json]
//	bastion-bench -baseline old.json -compare new.json [-tolerance 5]
//
// The shard experiment sweeps the sharded control plane across 256/1k/4k
// tenants × shard counts; it defaults to bench.ShardScalingUnits per
// tenant (control-plane cost dominates) unless -units is set explicitly.
//
// -format json renders the full report as a deterministic perf artifact
// (the repo's performance trajectory; see DESIGN.md). -baseline gates the
// current run — or, with -compare, a previously written artifact, without
// re-running the bench — against an older artifact metric-by-metric and
// exits 1 on regressions beyond -tolerance percent.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"bastion/internal/bench"
	"bastion/internal/obs/perf"
)

// experiments is the authoritative -exp value list ("all" plus each
// single experiment). validate rejects anything else by name so a typo
// errors instead of silently running nothing.
var experiments = []string{
	"all", "fig3", "table3", "table4", "table5", "table6", "table7",
	"filter", "cache", "sf", "offload", "refine", "bside", "obs",
	"fleet", "shard", "extras",
}

// options carries the parsed flag set; validate holds every
// flag-combination rule so it can be tested without exec-ing the binary.
type options struct {
	exp        string
	units      int
	unitsSet   bool
	report     string
	parallel   bool
	workers    int
	workersSet bool
	format     string
	out        string
	label      string
	baseline   string
	compare    string
	tolerance  float64
}

// validate returns the first flag-combination error, or nil.
func (o *options) validate() error {
	if o.units < 1 {
		return fmt.Errorf("-units must be at least 1, got %d", o.units)
	}
	if o.workersSet && o.workers < 1 {
		return fmt.Errorf("-workers must be at least 1 when set, got %d", o.workers)
	}
	known := false
	for _, name := range experiments {
		if o.exp == name {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("unknown -exp %q; valid: %s", o.exp, strings.Join(experiments, "|"))
	}
	switch o.format {
	case "md", "json":
	default:
		return fmt.Errorf("unknown -format %q; valid: md|json", o.format)
	}
	if o.format == "json" && o.out == "" {
		return fmt.Errorf("-format json requires -out FILE")
	}
	if o.out != "" && o.format != "json" {
		return fmt.Errorf("-out requires -format json")
	}
	if o.format == "json" && o.report != "" {
		return fmt.Errorf("-format json and -report are mutually exclusive")
	}
	if o.tolerance < 0 {
		return fmt.Errorf("-tolerance must be non-negative, got %v", o.tolerance)
	}
	if o.compare != "" && o.baseline == "" {
		return fmt.Errorf("-compare requires -baseline")
	}
	if (o.format == "json" || o.baseline != "") && o.exp != "all" {
		// An artifact always covers the full report; a partial artifact
		// would gate-fail on every metric the skipped experiments own.
		return fmt.Errorf("-exp %s cannot be combined with -format json or -baseline (artifacts cover the full report)", o.exp)
	}
	return nil
}

// workerCount resolves the report worker-pool size from the flags.
func (o *options) workerCount() int {
	if !o.parallel {
		return 1
	}
	if o.workers > 0 {
		return o.workers
	}
	return runtime.NumCPU()
}

func main() {
	var o options
	flag.StringVar(&o.exp, "exp", "all", "experiment: "+strings.Join(experiments, " | "))
	flag.IntVar(&o.units, "units", bench.DefaultUnits, "work units per measurement")
	flag.StringVar(&o.report, "report", "", "write a complete markdown report to this file")
	flag.BoolVar(&o.parallel, "parallel", false, "fan report experiments out across CPU cores (same output, less wall clock)")
	flag.IntVar(&o.workers, "workers", 0, "worker pool size for -parallel (0 = NumCPU)")
	flag.StringVar(&o.format, "format", "md", "output format: md | json (json renders the full report as a perf artifact)")
	flag.StringVar(&o.out, "out", "", "artifact output file for -format json")
	flag.StringVar(&o.label, "label", "bench", "artifact label (a git ref, \"ci\", a date)")
	flag.StringVar(&o.baseline, "baseline", "", "gate against this perf artifact; exit 1 on regressions beyond -tolerance")
	flag.StringVar(&o.compare, "compare", "", "with -baseline: diff this artifact instead of running the bench")
	flag.Float64Var(&o.tolerance, "tolerance", 5, "allowed relative worsening in percent for gated metrics")
	flag.Parse()
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "units":
			o.unitsSet = true
		case "workers":
			o.workersSet = true
		}
	})

	if err := o.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "bastion-bench: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	fatal := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "bastion-bench: "+format+"\n", args...)
		os.Exit(1)
	}

	// Offline diff: two existing artifacts, no bench run.
	if o.compare != "" {
		res, err := diffArtifacts(o.baseline, o.compare, o.tolerance)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Print(res.Render())
		if !res.OK() {
			os.Exit(1)
		}
		return
	}

	// Artifact emission and/or gating: collect the full report once.
	if o.format == "json" || o.baseline != "" {
		rep, err := bench.CollectReportParallel(o.units, o.workerCount())
		if err != nil {
			fatal("report: %v", err)
		}
		artifact := rep.PerfArtifact(o.label)
		if o.out != "" {
			if err := os.WriteFile(o.out, []byte(artifact.JSON()), 0o644); err != nil {
				fatal("%v", err)
			}
			fmt.Fprintf(os.Stderr, "artifact written to %s (%d metrics, %d worker(s))\n",
				o.out, len(artifact.Metrics), o.workerCount())
		}
		if o.baseline != "" {
			base, err := loadArtifact(o.baseline)
			if err != nil {
				fatal("%v", err)
			}
			res, err := perf.Compare(base, artifact, o.tolerance)
			if err != nil {
				fatal("%v", err)
			}
			fmt.Print(res.Render())
			if !res.OK() {
				os.Exit(1)
			}
		}
		return
	}

	if o.report != "" {
		n := o.workerCount()
		rep, err := bench.CollectReportParallel(o.units, n)
		if err != nil {
			fatal("report: %v", err)
		}
		if err := os.WriteFile(o.report, []byte(rep.Markdown()), 0o644); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("report written to %s (%d worker(s))\n", o.report, n)
		fmt.Print(rep.TimingSummary())
		return
	}

	run := func(name string, f func() error) {
		if o.exp != "all" && o.exp != name {
			return
		}
		if err := f(); err != nil {
			fatal("%s: %v", name, err)
		}
	}

	run("fig3", func() error {
		rows, err := bench.Figure3(o.units)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderFigure3(rows))
		return nil
	})
	run("table3", func() error {
		rows, err := bench.Table3(o.units)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderTable3(rows))
		return nil
	})
	run("table4", func() error {
		res, err := bench.Table4(o.units)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderTable4(res, o.units))
		return nil
	})
	run("table5", func() error {
		rows, err := bench.Table5()
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderTable5(rows))
		return nil
	})
	run("table6", func() error {
		rows, err := bench.Table6()
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderTable6(rows))
		return nil
	})
	run("table7", func() error {
		rows, err := bench.Table7(o.units)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderTable7(rows))
		return nil
	})
	run("filter", func() error {
		var rows []*bench.FilterAblationResult
		for _, app := range bench.Apps {
			r, err := bench.FilterAblation(app, o.units)
			if err != nil {
				return err
			}
			rows = append(rows, r)
		}
		fmt.Println(bench.RenderFilterAblation(rows))
		return nil
	})
	run("cache", func() error {
		var rows []*bench.CacheAblationResult
		for _, app := range bench.Apps {
			r, err := bench.CacheAblation(app, o.units)
			if err != nil {
				return err
			}
			rows = append(rows, r)
		}
		fmt.Println(bench.RenderCacheAblation(rows))
		return nil
	})
	run("sf", func() error {
		var rows []*bench.SFAblationResult
		for _, app := range bench.Apps {
			r, err := bench.SFAblation(app, o.units)
			if err != nil {
				return err
			}
			rows = append(rows, r)
		}
		fmt.Println(bench.RenderSFAblation(rows))
		return nil
	})
	run("offload", func() error {
		var rows []*bench.OffloadAblationResult
		for _, app := range bench.Apps {
			r, err := bench.OffloadAblation(app, o.units)
			if err != nil {
				return err
			}
			rows = append(rows, r)
		}
		fmt.Println(bench.RenderOffloadAblation(rows))
		return nil
	})
	run("refine", func() error {
		var rows []*bench.RefineAblationResult
		for _, app := range bench.Apps {
			r, err := bench.RefineAblation(app, o.units)
			if err != nil {
				return err
			}
			rows = append(rows, r)
		}
		fmt.Println(bench.RenderRefineAblation(rows))
		return nil
	})
	run("bside", func() error {
		var rows []*bench.BsideAblationResult
		for _, app := range bench.Apps {
			r, err := bench.BsideAblation(app, o.units)
			if err != nil {
				return err
			}
			rows = append(rows, r)
		}
		fmt.Println(bench.RenderBsideAblation(rows))
		return nil
	})
	run("obs", func() error {
		var rows []*bench.ObsAblationResult
		for _, app := range bench.Apps {
			r, err := bench.ObsAblation(app, o.units)
			if err != nil {
				return err
			}
			rows = append(rows, r)
		}
		fmt.Println(bench.RenderObsAblation(rows))
		return nil
	})
	run("fleet", func() error {
		res, err := bench.FleetScaling(o.units)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderFleetScaling(res))
		return nil
	})
	run("shard", func() error {
		u := bench.ShardScalingUnits
		if o.unitsSet {
			u = o.units
		}
		res, err := bench.DefaultShardScaling(u)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderShardScaling(res))
		return nil
	})
	run("extras", func() error {
		for _, app := range bench.Apps {
			st, err := bench.InitAndDepth(app, o.units)
			if err != nil {
				return err
			}
			fmt.Printf("%s: monitor init %.2f ms; syscall depth avg %.1f min %d max %d\n",
				st.App, st.InitMillis, st.AvgDepth, st.MinDepth, st.MaxDepth)
		}
		res, err := bench.AblationAcceptFastPath("nginx", o.units)
		if err != nil {
			return err
		}
		fmt.Printf("accept4 fast-path ablation (nginx): %.2f%% with fast path, %.2f%% with full walk\n",
			res.FastPathOverhead, res.FullWalkOverhead)
		return nil
	})
}

// loadArtifact reads and parses one perf artifact file.
func loadArtifact(path string) (*perf.Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	a, err := perf.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}

// diffArtifacts loads two artifacts and compares them.
func diffArtifacts(basePath, curPath string, tolerance float64) (*perf.Result, error) {
	base, err := loadArtifact(basePath)
	if err != nil {
		return nil, err
	}
	cur, err := loadArtifact(curPath)
	if err != nil {
		return nil, err
	}
	return perf.Compare(base, cur, tolerance)
}
