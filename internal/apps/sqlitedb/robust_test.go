package sqlitedb_test

import (
	"testing"

	"bastion/internal/apps/sqlitedb"
)

// TestMalformedQueries: the parser must survive garbage without faulting
// or tripping the monitor on the legitimate path.
func TestMalformedQueries(t *testing.T) {
	prot := launch(t, false)
	cfd := setup(t, prot)
	conn := connOf(t, prot, cfd)
	for _, q := range []string{
		"",                    // empty read
		"GARBAGE",             // no digits
		"NEWORDER",            // truncated
		"NEWORDER abc def",    // non-numeric
		"NEWORDER 5",          // missing qty
		"NEWORDER 00007 0009", // leading zeros
	} {
		conn.ClientWrite([]byte(q))
		if _, err := prot.Machine.CallFunction(sqlitedb.FnTxn, cfd); err != nil {
			t.Fatalf("query %q: %v", q, err)
		}
	}
	if len(prot.Monitor.Violations) != 0 {
		t.Fatalf("violations on malformed input: %v", prot.Monitor.Violations)
	}
	// Each transaction still answered OK.
	resp := conn.ClientReadAll()
	if len(resp) != 2*6 {
		t.Fatalf("responses = %q", resp)
	}
}

// TestHashTableCollisions: keys that collide in the row table probe to
// distinct slots and keep independent totals.
func TestHashTableCollisions(t *testing.T) {
	prot := launch(t, true)
	setup(t, prot)
	// tableCap is 4096; craft keys k and k+4096·inverse… simpler: hammer
	// many distinct keys and verify a sample of totals.
	for i := 0; i < 200; i++ {
		if _, err := prot.Machine.CallFunction(sqlitedb.FnUpsert, uint64(10_000+i), 2); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i += 17 {
		got, err := prot.Machine.CallFunction(sqlitedb.FnUpsert, uint64(10_000+i), 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != 2 {
			t.Fatalf("key %d total = %d, want 2", 10_000+i, got)
		}
	}
}
