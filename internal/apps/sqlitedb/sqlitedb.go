// Package sqlitedb builds the guest transactional database engine used in
// the paper's evaluation (SQLite under the DBT2 new-order workload). The
// storage engine is an open-addressing row table in an mmap'd region; each
// transaction parses a NEWORDER command, upserts order/orderline/stock
// rows, appends a journal record, and periodically re-protects page-cache
// pages — giving the mprotect-heavy steady-state profile Table 4 reports
// for SQLite.
package sqlitedb

import (
	"bastion/internal/apps/guestlibc"
	"bastion/internal/ir"
	"bastion/internal/kernel"
)

// Port is the database server port.
const Port = 5432

// Table geometry: 32-byte rows in a 128 KiB region.
const (
	rowSize   = 32
	tableCap  = 4096
	tableSize = rowSize * tableCap
)

// MprotectPeriod: one page-cache reprotect cycle every N transactions,
// producing SQLite's characteristic mprotect density.
const MprotectPeriod = 4

// Function names for drivers and attacks.
const (
	FnInit   = "db_init"
	FnAccept = "db_accept"
	FnTxn    = "db_txn"
	FnUpsert = "db_upsert"
)

// Build assembles the guest program.
func Build() *ir.Program {
	p := guestlibc.NewProgram()
	// db_state: [0]=listen fd, [8]=table base, [16]=journal fd,
	// [24]=page cache base, [32]=txn counter.
	p.AddGlobal(&ir.Global{Name: "db_state", Size: 40})

	addUpsert(p)
	addInit(p)
	addAccept(p)
	addTxn(p)
	addMain(p)
	return p
}

func sockaddrStores(b *ir.Builder, local string, port int64) ir.Reg {
	sa := b.Lea(local, 0)
	b.Store(sa, 0, ir.Imm(2), 2)
	b.Store(sa, 2, ir.Imm(port>>8), 1)
	b.Store(sa, 3, ir.Imm(port&0xff), 1)
	return sa
}

func storeBytes(b *ir.Builder, addr ir.Reg, off int64, s string) {
	for i := 0; i < len(s); i++ {
		b.Store(addr, off+int64(i), ir.Imm(int64(s[i])), 1)
	}
	b.Store(addr, off+int64(len(s)), ir.Imm(0), 1)
}

// addUpsert defines db_upsert(key, qty): linear-probe insert/update into
// the row table; returns the row's new total.
func addUpsert(p *ir.Program) {
	b := ir.NewBuilder(FnUpsert, 2)
	b.Local("slot", 8)
	st := b.GlobalLea("db_state", 0)
	base := b.Load(st, 8, 8)
	b.Local("base", 8)
	b.StoreLocal("base", ir.R(base))

	key := b.LoadLocal("p0")
	h := b.Bin(ir.OpMul, ir.R(key), ir.Imm(0x9e3779b1))
	slot0 := b.Bin(ir.OpMod, ir.R(h), ir.Imm(tableCap))
	b.StoreLocal("slot", ir.R(slot0))

	b.Label("probe")
	sl := b.LoadLocal("slot")
	off := b.Bin(ir.OpMul, ir.R(sl), ir.Imm(rowSize))
	bse := b.LoadLocal("base")
	rowp := b.Bin(ir.OpAdd, ir.R(bse), ir.R(off))
	rkey := b.Load(rowp, 0, 8)
	k2 := b.LoadLocal("p0")
	hit := b.Bin(ir.OpEq, ir.R(rkey), ir.R(k2))
	b.BranchNZ(ir.R(hit), "update")
	empty := b.Bin(ir.OpEq, ir.R(rkey), ir.Imm(0))
	b.BranchNZ(ir.R(empty), "insert")
	sl2 := b.LoadLocal("slot")
	next := b.Bin(ir.OpAdd, ir.R(sl2), ir.Imm(1))
	wrap := b.Bin(ir.OpMod, ir.R(next), ir.Imm(tableCap))
	b.StoreLocal("slot", ir.R(wrap))
	b.Jump("probe")

	b.Label("insert")
	k3 := b.LoadLocal("p0")
	b.Store(rowp, 0, ir.R(k3), 8)
	b.Store(rowp, 8, ir.Imm(0), 8)
	b.Store(rowp, 16, ir.Imm(0), 8)

	b.Label("update")
	qty := b.LoadLocal("p1")
	oldq := b.Load(rowp, 8, 8)
	newq := b.Bin(ir.OpAdd, ir.R(oldq), ir.R(qty))
	b.Store(rowp, 8, ir.R(newq), 8)
	oldt := b.Load(rowp, 16, 8)
	newt := b.Bin(ir.OpAdd, ir.R(oldt), ir.Imm(1))
	b.Store(rowp, 16, ir.R(newt), 8)
	b.Ret(ir.R(newq))
	p.AddFunc(b.Build())
}

// addInit defines db_init(workers): page cache + row table mappings, the
// journal file, the listener, and worker clones.
func addInit(p *ir.Program) {
	b := ir.NewBuilder(FnInit, 1)
	b.Local("sa", 16)
	b.Local("jpath", 32)
	b.Local("i", 8)
	b.Local("lfd", 8)

	// Row table region.
	tbl := b.Call("mmap", ir.Imm(0), ir.Imm(tableSize), ir.Imm(kernel.ProtRead|kernel.ProtWrite),
		ir.Imm(kernel.MapPrivate|kernel.MapAnonymous), ir.Imm(-1), ir.Imm(0))
	st := b.GlobalLea("db_state", 0)
	b.Store(st, 8, ir.R(tbl), 8)

	// Page cache: 8 mappings; remember the first.
	b.StoreLocal("i", ir.Imm(0))
	b.Label("cache")
	iv := b.LoadLocal("i")
	c := b.Bin(ir.OpLt, ir.R(iv), ir.Imm(8))
	done := b.Bin(ir.OpEq, ir.R(c), ir.Imm(0))
	b.BranchNZ(ir.R(done), "cache_done")
	pc := b.Call("mmap", ir.Imm(0), ir.Imm(32768), ir.Imm(kernel.ProtRead|kernel.ProtWrite),
		ir.Imm(kernel.MapPrivate|kernel.MapAnonymous), ir.Imm(-1), ir.Imm(0))
	iv1 := b.LoadLocal("i")
	first := b.Bin(ir.OpNe, ir.R(iv1), ir.Imm(0))
	b.BranchNZ(ir.R(first), "not_first")
	st2 := b.GlobalLea("db_state", 0)
	b.Store(st2, 24, ir.R(pc), 8)
	b.Label("not_first")
	iv2 := b.LoadLocal("i")
	inc := b.Bin(ir.OpAdd, ir.R(iv2), ir.Imm(1))
	b.StoreLocal("i", ir.R(inc))
	b.Jump("cache")
	b.Label("cache_done")

	// Journal.
	jp := b.Lea("jpath", 0)
	storeBytes(b, jp, 0, "/var/db/journal")
	jp2 := b.Lea("jpath", 0)
	jfd := b.Call("open", ir.R(jp2), ir.Imm(0x42 /*O_RDWR|O_CREAT*/), ir.Imm(6))
	st3 := b.GlobalLea("db_state", 0)
	b.Store(st3, 16, ir.R(jfd), 8)

	// Listener.
	lfd := b.Call("socket", ir.Imm(2), ir.Imm(1), ir.Imm(0))
	b.StoreLocal("lfd", ir.R(lfd))
	sa := sockaddrStores(b, "sa", Port)
	lfd1 := b.LoadLocal("lfd")
	b.Call("bind", ir.R(lfd1), ir.R(sa), ir.Imm(16))
	lfd2 := b.LoadLocal("lfd")
	b.Call("listen", ir.R(lfd2), ir.Imm(128))
	st4 := b.GlobalLea("db_state", 0)
	lfd3 := b.LoadLocal("lfd")
	b.Store(st4, 0, ir.R(lfd3), 8)

	// Worker threads.
	b.StoreLocal("i", ir.Imm(0))
	b.Label("workers")
	iv3 := b.LoadLocal("i")
	nw := b.LoadLocal("p0")
	c2 := b.Bin(ir.OpLt, ir.R(iv3), ir.R(nw))
	done2 := b.Bin(ir.OpEq, ir.R(c2), ir.Imm(0))
	b.BranchNZ(ir.R(done2), "workers_done")
	b.Call("clone", ir.Imm(0x11))
	iv4 := b.LoadLocal("i")
	inc2 := b.Bin(ir.OpAdd, ir.R(iv4), ir.Imm(1))
	b.StoreLocal("i", ir.R(inc2))
	b.Jump("workers")
	b.Label("workers_done")
	lfd4 := b.LoadLocal("lfd")
	b.Ret(ir.R(lfd4))
	p.AddFunc(b.Build())
}

// addAccept defines db_accept(lfd) -> connection fd.
func addAccept(p *ir.Program) {
	b := ir.NewBuilder(FnAccept, 1)
	b.Local("peer", 16)
	lfd := b.LoadLocal("p0")
	peer := b.Lea("peer", 0)
	cfd := b.Call("accept", ir.R(lfd), ir.R(peer), ir.Imm(0))
	b.Ret(ir.R(cfd))
	p.AddFunc(b.Build())
}

// addTxn defines db_txn(cfd): parse "NEWORDER <id> <qty>", upsert three
// rows, journal the transaction, periodically recycle page-cache
// protection, respond "OK".
func addTxn(p *ir.Program) {
	b := ir.NewBuilder(FnTxn, 1)
	b.Local("query", 128)
	b.Local("resp", 8)
	b.Local("jrec", 24)
	b.Local("id", 8)
	b.Local("qty", 8)
	b.Local("i", 8)
	b.Local("prot", 8)

	cfd := b.LoadLocal("p0")
	q := b.Lea("query", 0)
	b.Call("read", ir.R(cfd), ir.R(q), ir.Imm(127))

	// Parse the id after "NEWORDER " (offset 9) and qty after the space.
	b.StoreLocal("id", ir.Imm(0))
	b.StoreLocal("qty", ir.Imm(0))
	b.StoreLocal("i", ir.Imm(9))
	b.Label("pid")
	q1 := b.Lea("query", 0)
	iv := b.LoadLocal("i")
	ca := b.Bin(ir.OpAdd, ir.R(q1), ir.R(iv))
	ch := b.Load(ca, 0, 1)
	isD := b.Bin(ir.OpGe, ir.R(ch), ir.Imm('0'))
	b.BranchNZ(ir.R(isD), "pid_digit")
	b.Jump("pid_done")
	b.Label("pid_digit")
	isD2 := b.Bin(ir.OpLe, ir.R(ch), ir.Imm('9'))
	notD := b.Bin(ir.OpEq, ir.R(isD2), ir.Imm(0))
	b.BranchNZ(ir.R(notD), "pid_done")
	idv := b.LoadLocal("id")
	m := b.Bin(ir.OpMul, ir.R(idv), ir.Imm(10))
	d := b.Bin(ir.OpSub, ir.R(ch), ir.Imm('0'))
	sum := b.Bin(ir.OpAdd, ir.R(m), ir.R(d))
	b.StoreLocal("id", ir.R(sum))
	iv2 := b.LoadLocal("i")
	inc := b.Bin(ir.OpAdd, ir.R(iv2), ir.Imm(1))
	b.StoreLocal("i", ir.R(inc))
	b.Jump("pid")
	b.Label("pid_done")
	// qty after one separator char.
	iv3 := b.LoadLocal("i")
	inc2 := b.Bin(ir.OpAdd, ir.R(iv3), ir.Imm(1))
	b.StoreLocal("i", ir.R(inc2))
	b.Label("pq")
	q2 := b.Lea("query", 0)
	iv4 := b.LoadLocal("i")
	ca2 := b.Bin(ir.OpAdd, ir.R(q2), ir.R(iv4))
	ch2 := b.Load(ca2, 0, 1)
	ge := b.Bin(ir.OpGe, ir.R(ch2), ir.Imm('0'))
	le := b.Bin(ir.OpLe, ir.R(ch2), ir.Imm('9'))
	both := b.Bin(ir.OpAnd, ir.R(ge), ir.R(le))
	nd := b.Bin(ir.OpEq, ir.R(both), ir.Imm(0))
	b.BranchNZ(ir.R(nd), "pq_done")
	qv := b.LoadLocal("qty")
	m2 := b.Bin(ir.OpMul, ir.R(qv), ir.Imm(10))
	d2 := b.Bin(ir.OpSub, ir.R(ch2), ir.Imm('0'))
	sum2 := b.Bin(ir.OpAdd, ir.R(m2), ir.R(d2))
	b.StoreLocal("qty", ir.R(sum2))
	iv5 := b.LoadLocal("i")
	inc3 := b.Bin(ir.OpAdd, ir.R(iv5), ir.Imm(1))
	b.StoreLocal("i", ir.R(inc3))
	b.Jump("pq")
	b.Label("pq_done")

	// Upserts: order row, order-line row, stock row.
	id1 := b.LoadLocal("id")
	q3 := b.LoadLocal("qty")
	b.Call(FnUpsert, ir.R(id1), ir.R(q3))
	id2 := b.LoadLocal("id")
	ol := b.Bin(ir.OpAdd, ir.R(id2), ir.Imm(1_000_000))
	q4 := b.LoadLocal("qty")
	b.Call(FnUpsert, ir.R(ol), ir.R(q4))
	id3 := b.LoadLocal("id")
	stk := b.Bin(ir.OpAdd, ir.R(id3), ir.Imm(2_000_000))
	b.Call(FnUpsert, ir.R(stk), ir.Imm(1))

	// Journal record {id, qty, marker}.
	jr := b.Lea("jrec", 0)
	id4 := b.LoadLocal("id")
	b.Store(jr, 0, ir.R(id4), 8)
	jr2 := b.Lea("jrec", 0)
	q5 := b.LoadLocal("qty")
	b.Store(jr2, 8, ir.R(q5), 8)
	jr3 := b.Lea("jrec", 0)
	b.Store(jr3, 16, ir.Imm(0x5a5a), 8)
	st := b.GlobalLea("db_state", 0)
	jfd := b.Load(st, 16, 8)
	jr4 := b.Lea("jrec", 0)
	b.Call("write", ir.R(jfd), ir.R(jr4), ir.Imm(24))

	// Periodic page-cache protection cycle: every MprotectPeriod txns,
	// harden a cache page read-only and release it again.
	st2 := b.GlobalLea("db_state", 0)
	cnt := b.Load(st2, 32, 8)
	cnt2 := b.Bin(ir.OpAdd, ir.R(cnt), ir.Imm(1))
	st3 := b.GlobalLea("db_state", 0)
	b.Store(st3, 32, ir.R(cnt2), 8)
	rem := b.Bin(ir.OpMod, ir.R(cnt2), ir.Imm(MprotectPeriod))
	skip := b.Bin(ir.OpNe, ir.R(rem), ir.Imm(0))
	b.BranchNZ(ir.R(skip), "no_protect")
	b.StoreLocal("prot", ir.Imm(kernel.ProtRead))
	st4 := b.GlobalLea("db_state", 0)
	pcb := b.Load(st4, 24, 8)
	b.Local("pcb", 8)
	b.StoreLocal("pcb", ir.R(pcb))
	pr := b.LoadLocal("prot")
	b.Call("mprotect", ir.R(pcb), ir.Imm(4096), ir.R(pr))
	b.StoreLocal("prot", ir.Imm(kernel.ProtRead|kernel.ProtWrite))
	pcb2 := b.LoadLocal("pcb")
	pr2 := b.LoadLocal("prot")
	b.Call("mprotect", ir.R(pcb2), ir.Imm(4096), ir.R(pr2))
	b.Label("no_protect")

	// Respond.
	rp := b.Lea("resp", 0)
	b.Store(rp, 0, ir.Imm('O'), 1)
	b.Store(rp, 1, ir.Imm('K'), 1)
	cfd2 := b.LoadLocal("p0")
	rp2 := b.Lea("resp", 0)
	b.Call("write", ir.R(cfd2), ir.R(rp2), ir.Imm(2))
	id5 := b.LoadLocal("id")
	b.Ret(ir.R(id5))
	p.AddFunc(b.Build())
}

// addMain encodes the server lifecycle the drivers exercise: an accept
// loop whose body runs zero or more transactions before accepting again,
// so the syscall-flow graph admits the benign orderings accept→accept
// (terminal pre-registration), accept→txn, txn→txn, and txn→accept — and
// nothing that re-enters db_init after serving. The runtime path is the
// historical one (init, one accept, one txn, exit): both loop counters
// start at 1.
func addMain(p *ir.Program) {
	b := ir.NewBuilder("main", 0)
	b.Local("lfd", 8)
	b.Local("conns", 8)
	b.Local("txns", 8)
	lfd := b.Call(FnInit, ir.Imm(2))
	b.StoreLocal("lfd", ir.R(lfd))
	b.StoreLocal("conns", ir.Imm(1))

	b.Label("accept_loop")
	lf := b.LoadLocal("lfd")
	cfd := b.Call(FnAccept, ir.R(lf))
	b.StoreLocal("txns", ir.Imm(1))
	b.Label("txn_loop")
	tv := b.LoadLocal("txns")
	done := b.Bin(ir.OpEq, ir.R(tv), ir.Imm(0))
	b.BranchNZ(ir.R(done), "txn_done")
	b.Call(FnTxn, ir.R(cfd))
	tv2 := b.LoadLocal("txns")
	tdec := b.Bin(ir.OpAdd, ir.R(tv2), ir.Imm(-1))
	b.StoreLocal("txns", ir.R(tdec))
	b.Jump("txn_loop")
	b.Label("txn_done")
	cv := b.LoadLocal("conns")
	cdec := b.Bin(ir.OpAdd, ir.R(cv), ir.Imm(-1))
	b.StoreLocal("conns", ir.R(cdec))
	b.BranchNZ(ir.R(cdec), "accept_loop")

	b.Call("exit_group", ir.Imm(0))
	b.Ret(ir.Imm(0))
	p.AddFunc(b.Build())
}
