package sqlitedb_test

import (
	"fmt"
	"testing"

	"bastion/internal/apps/sqlitedb"
	"bastion/internal/core"
	"bastion/internal/core/monitor"
	"bastion/internal/kernel"
	"bastion/internal/kernel/fs"
	"bastion/internal/vm"
)

func launch(t *testing.T, bare bool) *core.Protected {
	t.Helper()
	art, err := core.Compile(sqlitedb.Build(), core.CompileOptions{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	k := kernel.New(nil)
	if err := k.FS.MkdirAll("/var/db", fs.ModeRead|fs.ModeWrite|fs.ModeExec); err != nil {
		t.Fatal(err)
	}
	var prot *core.Protected
	if bare {
		prot, err = core.LaunchUnprotected(art, k, vm.WithMaxSteps(1<<26))
	} else {
		prot, err = core.Launch(art, k, monitor.DefaultConfig(), vm.WithMaxSteps(1<<26))
	}
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	return prot
}

func runTxn(t *testing.T, prot *core.Protected, cfd uint64, id, qty int) uint64 {
	t.Helper()
	// The transaction reads its query from the accepted connection; queue
	// it via the kernel-side connection object.
	conn := connOf(t, prot, cfd)
	conn.ClientWrite([]byte(fmt.Sprintf("NEWORDER %d %d", id, qty)))
	got, err := prot.Machine.CallFunction(sqlitedb.FnTxn, cfd)
	if err != nil {
		t.Fatalf("txn: %v", err)
	}
	return got
}

// connOf digs the netstack connection out of the process FD table by
// dialing before accept; tests instead keep the conn from Dial.
var conns = map[uint64]interface {
	ClientWrite([]byte) (int, error)
	ClientReadAll() []byte
}{}

func connOf(t *testing.T, prot *core.Protected, cfd uint64) interface {
	ClientWrite([]byte) (int, error)
	ClientReadAll() []byte
} {
	c, ok := conns[cfd]
	if !ok {
		t.Fatalf("no client conn for fd %d", cfd)
	}
	return c
}

func setup(t *testing.T, prot *core.Protected) uint64 {
	t.Helper()
	lfd, err := prot.Machine.CallFunction(sqlitedb.FnInit, 2)
	if err != nil {
		t.Fatalf("init: %v", err)
	}
	conn, err := prot.Kernel.Net.Dial(sqlitedb.Port)
	if err != nil {
		t.Fatal(err)
	}
	cfd, err := prot.Machine.CallFunction(sqlitedb.FnAccept, lfd)
	if err != nil {
		t.Fatalf("accept: %v", err)
	}
	conns[cfd] = conn
	return cfd
}

func TestTransactionsProtected(t *testing.T) {
	prot := launch(t, false)
	cfd := setup(t, prot)
	for i := 1; i <= 10; i++ {
		id := runTxn(t, prot, cfd, 100+i, 5)
		if id != uint64(100+i) {
			t.Fatalf("txn %d returned %d", i, id)
		}
	}
	if got := string(connOf(t, prot, cfd).ClientReadAll()); got != "OKOKOKOKOKOKOKOKOKOK" {
		t.Fatalf("responses = %q", got)
	}
	if len(prot.Monitor.Violations) != 0 {
		t.Fatalf("violations: %v", prot.Monitor.Violations)
	}
	// mprotect fires twice per MprotectPeriod transactions (harden +
	// release); db_init performs none.
	want := uint64(10/sqlitedb.MprotectPeriod) * 2
	if got := prot.Monitor.ChecksByNr[kernel.SysMprotect]; got != want {
		t.Fatalf("mprotect checks = %d, want %d", got, want)
	}
}

func TestUpsertAccumulates(t *testing.T) {
	prot := launch(t, true)
	cfd := setup(t, prot)
	runTxn(t, prot, cfd, 500, 7)
	runTxn(t, prot, cfd, 500, 3)
	// Row total for key 500 should be qty 10 after two upserts; verify via
	// a third upsert of 0 returning the accumulated quantity.
	got, err := prot.Machine.CallFunction(sqlitedb.FnUpsert, 500, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Fatalf("accumulated qty = %d, want 10", got)
	}
}

func TestJournalWritten(t *testing.T) {
	prot := launch(t, true)
	cfd := setup(t, prot)
	runTxn(t, prot, cfd, 42, 9)
	data, err := prot.Kernel.FS.ReadFile("/var/db/journal")
	if err != nil {
		t.Fatalf("journal: %v", err)
	}
	if len(data) != 24 {
		t.Fatalf("journal size = %d", len(data))
	}
	if data[0] != 42 || data[8] != 9 || data[16] != 0x5a {
		t.Fatalf("journal record = %v", data[:24])
	}
}

func TestInitProfile(t *testing.T) {
	prot := launch(t, true)
	if _, err := prot.Machine.CallFunction(sqlitedb.FnInit, 4); err != nil {
		t.Fatal(err)
	}
	c := prot.Proc.SyscallCounts
	if c[kernel.SysMmap] != 9 { // table + 8 cache regions
		t.Errorf("mmap = %d", c[kernel.SysMmap])
	}
	if c[kernel.SysClone] != 4 {
		t.Errorf("clone = %d", c[kernel.SysClone])
	}
	if c[kernel.SysBind] != 1 || c[kernel.SysListen] != 1 || c[kernel.SysSocket] != 1 {
		t.Errorf("net setup = %d/%d/%d", c[kernel.SysSocket], c[kernel.SysBind], c[kernel.SysListen])
	}
}
