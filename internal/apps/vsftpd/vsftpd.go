// Package vsftpd builds the guest FTP server of the paper's evaluation:
// session-oriented control connections with per-transfer passive-mode data
// sockets, giving the socket/bind/listen/accept-heavy steady-state profile
// Table 4 reports for vsFTPd, plus the dkftpbench-style file downloads the
// benchmark drives.
package vsftpd

import (
	"bastion/internal/apps/guestlibc"
	"bastion/internal/ir"
	"bastion/internal/kernel"
)

// ControlPort is the FTP control port.
const ControlPort = 21

// DataPortBase is the first passive-mode data port.
const DataPortBase = 30000

// Function names for drivers and attacks.
const (
	FnInit    = "ftp_init"
	FnSession = "ftp_session_open"
	FnPasv    = "ftp_pasv"
	FnRetr    = "ftp_retr"
	FnPort    = "ftp_port_retr"
)

// Build assembles the guest program.
func Build() *ir.Program {
	p := guestlibc.NewProgram()
	// ftp_state: [0]=control lfd, [8]=data lfd, [16]=session uid counter.
	p.AddGlobal(&ir.Global{Name: "ftp_state", Size: 24})
	// File served to clients; path built at init.
	p.AddGlobal(&ir.Global{Name: "pub_path", Size: 32})

	addInit(p)
	addSession(p)
	addPasv(p)
	addRetr(p)
	addPortRetr(p)
	addMain(p)
	return p
}

func sockaddrStores(b *ir.Builder, local string, portReg ir.Reg) ir.Reg {
	sa := b.Lea(local, 0)
	b.Store(sa, 0, ir.Imm(2), 2)
	hi := b.Bin(ir.OpShr, ir.R(portReg), ir.Imm(8))
	b.Store(sa, 2, ir.R(hi), 1)
	lo := b.Bin(ir.OpAnd, ir.R(portReg), ir.Imm(0xff))
	b.Store(sa, 3, ir.R(lo), 1)
	return sa
}

func storeBytes(b *ir.Builder, addr ir.Reg, off int64, s string) {
	for i := 0; i < len(s); i++ {
		b.Store(addr, off+int64(i), ir.Imm(int64(s[i])), 1)
	}
	b.Store(addr, off+int64(len(s)), ir.Imm(0), 1)
}

// addInit defines ftp_init(): control listener, privilege drop, pools.
func addInit(p *ir.Program) {
	b := ir.NewBuilder(FnInit, 0)
	b.Local("sa", 16)
	b.Local("lfd", 8)

	// Session pools.
	b.Call("mmap", ir.Imm(0), ir.Imm(32768), ir.Imm(kernel.ProtRead|kernel.ProtWrite),
		ir.Imm(kernel.MapPrivate|kernel.MapAnonymous), ir.Imm(-1), ir.Imm(0))
	cfgp := b.Call("mmap", ir.Imm(0), ir.Imm(8192), ir.Imm(kernel.ProtRead|kernel.ProtWrite),
		ir.Imm(kernel.MapPrivate|kernel.MapAnonymous), ir.Imm(-1), ir.Imm(0))
	b.Call("mprotect", ir.R(cfgp), ir.Imm(4096), ir.Imm(kernel.ProtRead))

	// Served file path.
	pp := b.GlobalLea("pub_path", 0)
	storeBytes(b, pp, 0, "/pub/file.bin")

	// Control listener.
	lfd := b.Call("socket", ir.Imm(2), ir.Imm(1), ir.Imm(0))
	b.StoreLocal("lfd", ir.R(lfd))
	pr := b.Const(ControlPort)
	sa := sockaddrStores(b, "sa", pr)
	lfd1 := b.LoadLocal("lfd")
	b.Call("bind", ir.R(lfd1), ir.R(sa), ir.Imm(16))
	lfd2 := b.LoadLocal("lfd")
	b.Call("listen", ir.R(lfd2), ir.Imm(64))
	st := b.GlobalLea("ftp_state", 0)
	lfd3 := b.LoadLocal("lfd")
	b.Store(st, 0, ir.R(lfd3), 8)

	// Privilege drop + helper process.
	b.Call("setuid", ir.Imm(99))
	b.Call("setgid", ir.Imm(99))
	b.Call("clone", ir.Imm(0x11))

	lfd4 := b.LoadLocal("lfd")
	b.Ret(ir.R(lfd4))
	p.AddFunc(b.Build())
}

// addSession defines ftp_session_open(lfd): accept a control connection,
// read the login command into a fixed 64-byte buffer (the overflow surface
// the ROP case studies exploit), apply per-session credentials, greet.
func addSession(p *ir.Program) {
	b := ir.NewBuilder(FnSession, 1)
	b.Local("peer", 16)
	b.Local("cmd", 64)
	b.Local("cfd", 8)

	lfd := b.LoadLocal("p0")
	peer := b.Lea("peer", 0)
	cfd := b.Call("accept", ir.R(lfd), ir.R(peer), ir.Imm(0))
	b.StoreLocal("cfd", ir.R(cfd))
	bad := b.Bin(ir.OpLt, ir.R(cfd), ir.Imm(0))
	b.BranchNZ(ir.R(bad), "fail")

	// VULNERABILITY (CVE-style): reads up to 256 bytes into cmd[64].
	cmd := b.Lea("cmd", 0)
	cfd1 := b.LoadLocal("cfd")
	b.Call("read", ir.R(cfd1), ir.R(cmd), ir.Imm(256))

	// Per-session credential switch.
	b.Call("setuid", ir.Imm(1001))
	b.Call("setgid", ir.Imm(1001))

	// "230 login ok"
	cmd2 := b.Lea("cmd", 0)
	b.Store(cmd2, 0, ir.Imm('2'), 1)
	b.Store(cmd2, 1, ir.Imm('3'), 1)
	b.Store(cmd2, 2, ir.Imm('0'), 1)
	cfd2 := b.LoadLocal("cfd")
	cmd3 := b.Lea("cmd", 0)
	b.Call("write", ir.R(cfd2), ir.R(cmd3), ir.Imm(3))
	cfd3 := b.LoadLocal("cfd")
	b.Ret(ir.R(cfd3))
	b.Label("fail")
	b.Ret(ir.Imm(-1))
	p.AddFunc(b.Build())
}

// addPasv defines ftp_pasv(ctrlfd, port): bind the passive data socket,
// announce it on the control connection, then open the listener. Bringing
// the listener up is the transfer window's final step: the syscall-flow
// graph thereby records listen as PASV's last emission, so a second PASV
// issued without the RETR that consumes the window is an out-of-graph
// listen→socket transition.
func addPasv(p *ir.Program) {
	b := ir.NewBuilder(FnPasv, 2)
	b.Local("sa", 16)
	b.Local("dfd", 8)
	b.Local("resp", 8)

	dfd := b.Call("socket", ir.Imm(2), ir.Imm(1), ir.Imm(0))
	b.StoreLocal("dfd", ir.R(dfd))
	port := b.LoadLocal("p1")
	sa := sockaddrStores(b, "sa", port)
	dfd1 := b.LoadLocal("dfd")
	b.Call("bind", ir.R(dfd1), ir.R(sa), ir.Imm(16))

	// "227" on control.
	rp := b.Lea("resp", 0)
	b.Store(rp, 0, ir.Imm('2'), 1)
	b.Store(rp, 1, ir.Imm('2'), 1)
	b.Store(rp, 2, ir.Imm('7'), 1)
	ctrl := b.LoadLocal("p0")
	rp2 := b.Lea("resp", 0)
	b.Call("write", ir.R(ctrl), ir.R(rp2), ir.Imm(3))

	dfd2 := b.LoadLocal("dfd")
	b.Call("listen", ir.R(dfd2), ir.Imm(1))
	st := b.GlobalLea("ftp_state", 0)
	dfd3 := b.LoadLocal("dfd")
	b.Store(st, 8, ir.R(dfd3), 8)
	dfd4 := b.LoadLocal("dfd")
	b.Ret(ir.R(dfd4))
	p.AddFunc(b.Build())
}

// addRetr defines ftp_retr(ctrlfd): accept the pending data connection,
// stream the published file via sendfile, close, confirm.
func addRetr(p *ir.Program) {
	b := ir.NewBuilder(FnRetr, 1)
	b.Local("peer", 16)
	b.Local("datafd", 8)
	b.Local("ffd", 8)
	b.Local("total", 8)
	b.Local("resp", 8)

	b.StoreLocal("total", ir.Imm(0))
	st := b.GlobalLea("ftp_state", 0)
	dlfd := b.Load(st, 8, 8)
	peer := b.Lea("peer", 0)
	datafd := b.Call("accept", ir.R(dlfd), ir.R(peer), ir.Imm(0))
	b.StoreLocal("datafd", ir.R(datafd))
	bad := b.Bin(ir.OpLt, ir.R(datafd), ir.Imm(0))
	b.BranchNZ(ir.R(bad), "fail")

	pp := b.GlobalLea("pub_path", 0)
	ffd := b.Call("open", ir.R(pp), ir.Imm(0), ir.Imm(0))
	b.StoreLocal("ffd", ir.R(ffd))
	badf := b.Bin(ir.OpLt, ir.R(ffd), ir.Imm(0))
	b.BranchNZ(ir.R(badf), "close_data")

	b.Label("stream")
	dfd := b.LoadLocal("datafd")
	ffd1 := b.LoadLocal("ffd")
	n := b.Call("sendfile", ir.R(dfd), ir.R(ffd1), ir.Imm(0), ir.Imm(65536))
	nz := b.Bin(ir.OpLe, ir.R(n), ir.Imm(0))
	b.BranchNZ(ir.R(nz), "stream_done")
	tot := b.LoadLocal("total")
	sum := b.Bin(ir.OpAdd, ir.R(tot), ir.R(n))
	b.StoreLocal("total", ir.R(sum))
	b.Jump("stream")
	b.Label("stream_done")
	ffd2 := b.LoadLocal("ffd")
	b.Call("close", ir.R(ffd2))

	b.Label("close_data")
	dfd2 := b.LoadLocal("datafd")
	b.Call("close", ir.R(dfd2))
	// Close the data listener too (one listener per transfer, as vsftpd).
	st2 := b.GlobalLea("ftp_state", 0)
	dlfd2 := b.Load(st2, 8, 8)
	b.Call("close", ir.R(dlfd2))
	// "226 done" on control.
	rp := b.Lea("resp", 0)
	b.Store(rp, 0, ir.Imm('2'), 1)
	b.Store(rp, 1, ir.Imm('2'), 1)
	b.Store(rp, 2, ir.Imm('6'), 1)
	ctrl := b.LoadLocal("p0")
	rp2 := b.Lea("resp", 0)
	b.Call("write", ir.R(ctrl), ir.R(rp2), ir.Imm(3))
	tot2 := b.LoadLocal("total")
	b.Ret(ir.R(tot2))
	b.Label("fail")
	b.Ret(ir.Imm(-1))
	p.AddFunc(b.Build())
}

// addPortRetr defines ftp_port_retr(ctrlfd, port): active-mode transfer —
// the server connects out to the client's data port and streams the file.
func addPortRetr(p *ir.Program) {
	b := ir.NewBuilder(FnPort, 2)
	b.Local("sa", 16)
	b.Local("datafd", 8)
	b.Local("ffd", 8)
	b.Local("total", 8)

	b.StoreLocal("total", ir.Imm(0))
	dfd := b.Call("socket", ir.Imm(2), ir.Imm(1), ir.Imm(0))
	b.StoreLocal("datafd", ir.R(dfd))
	port := b.LoadLocal("p1")
	sa := sockaddrStores(b, "sa", port)
	dfd1 := b.LoadLocal("datafd")
	r := b.Call("connect", ir.R(dfd1), ir.R(sa), ir.Imm(16))
	bad := b.Bin(ir.OpLt, ir.R(r), ir.Imm(0))
	b.BranchNZ(ir.R(bad), "fail")

	pp := b.GlobalLea("pub_path", 0)
	ffd := b.Call("open", ir.R(pp), ir.Imm(0), ir.Imm(0))
	b.StoreLocal("ffd", ir.R(ffd))
	b.Label("stream")
	dfd2 := b.LoadLocal("datafd")
	ffd1 := b.LoadLocal("ffd")
	n := b.Call("sendfile", ir.R(dfd2), ir.R(ffd1), ir.Imm(0), ir.Imm(65536))
	nz := b.Bin(ir.OpLe, ir.R(n), ir.Imm(0))
	b.BranchNZ(ir.R(nz), "done")
	tot := b.LoadLocal("total")
	sum := b.Bin(ir.OpAdd, ir.R(tot), ir.R(n))
	b.StoreLocal("total", ir.R(sum))
	b.Jump("stream")
	b.Label("done")
	ffd2 := b.LoadLocal("ffd")
	b.Call("close", ir.R(ffd2))
	dfd3 := b.LoadLocal("datafd")
	b.Call("close", ir.R(dfd3))
	tot2 := b.LoadLocal("total")
	b.Ret(ir.R(tot2))
	b.Label("fail")
	b.Ret(ir.Imm(-1))
	p.AddFunc(b.Build())
}

// addMain encodes the daemon lifecycle the drivers exercise: an optional
// active-mode (PORT) transfer straight after init, then a session loop
// whose body runs zero or more passive transfers (PASV then RETR) before
// the next session. The syscall-flow graph derived from this CFG admits
// init→port, session→session, pasv→retr, retr→pasv, and retr→session —
// and nothing that replays init after serving. The runtime path is the
// historical one (init, one session, one pasv, one retr, exit): the PORT
// branch is not taken and both counters start at 1.
func addMain(p *ir.Program) {
	b := ir.NewBuilder("main", 0)
	b.Local("lfd", 8)
	b.Local("sessions", 8)
	b.Local("xfers", 8)
	lfd := b.Call(FnInit)
	b.StoreLocal("lfd", ir.R(lfd))
	b.StoreLocal("sessions", ir.Imm(1))

	// Active-mode branch: legal only in the fresh post-init window.
	active := b.Bin(ir.OpEq, ir.R(lfd), ir.Imm(-1))
	b.BranchNZ(ir.R(active), "port_mode")
	b.Jump("sessions")
	b.Label("port_mode")
	b.Call(FnPort, ir.Imm(0), ir.Imm(DataPortBase+100))

	b.Label("sessions")
	b.Label("session_loop")
	lf := b.LoadLocal("lfd")
	cfd := b.Call(FnSession, ir.R(lf))
	b.StoreLocal("xfers", ir.Imm(1))
	b.Label("xfer_loop")
	xv := b.LoadLocal("xfers")
	done := b.Bin(ir.OpEq, ir.R(xv), ir.Imm(0))
	b.BranchNZ(ir.R(done), "xfer_done")
	b.Call(FnPasv, ir.R(cfd), ir.Imm(DataPortBase))
	b.Call(FnRetr, ir.R(cfd))
	xv2 := b.LoadLocal("xfers")
	xdec := b.Bin(ir.OpAdd, ir.R(xv2), ir.Imm(-1))
	b.StoreLocal("xfers", ir.R(xdec))
	b.Jump("xfer_loop")
	b.Label("xfer_done")
	sv := b.LoadLocal("sessions")
	sdec := b.Bin(ir.OpAdd, ir.R(sv), ir.Imm(-1))
	b.StoreLocal("sessions", ir.R(sdec))
	b.BranchNZ(ir.R(sdec), "session_loop")

	b.Call("exit_group", ir.Imm(0))
	b.Ret(ir.Imm(0))
	p.AddFunc(b.Build())
}
