package vsftpd_test

import (
	"bytes"
	"errors"
	"testing"

	"bastion/internal/apps/vsftpd"
	"bastion/internal/core"
	"bastion/internal/core/monitor"
	"bastion/internal/kernel"
	"bastion/internal/kernel/fs"
	"bastion/internal/kernel/netstack"
	"bastion/internal/vm"
)

const fileSize = 64 * 1024

func launch(t *testing.T, bare bool) *core.Protected {
	t.Helper()
	art, err := core.Compile(vsftpd.Build(), core.CompileOptions{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	k := kernel.New(nil)
	blob := bytes.Repeat([]byte{0xab}, fileSize)
	if err := k.FS.WriteFile("/pub/file.bin", blob, fs.ModeRead); err != nil {
		t.Fatal(err)
	}
	var prot *core.Protected
	if bare {
		prot, err = core.LaunchUnprotected(art, k, vm.WithMaxSteps(1<<26))
	} else {
		prot, err = core.Launch(art, k, monitor.DefaultConfig(), vm.WithMaxSteps(1<<26))
	}
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	return prot
}

func TestPassiveDownloadProtected(t *testing.T) {
	prot := launch(t, false)
	lfd, err := prot.Machine.CallFunction(vsftpd.FnInit)
	if err != nil {
		t.Fatalf("init: %v", err)
	}
	ctrl, err := prot.Kernel.Net.Dial(vsftpd.ControlPort)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.ClientWrite([]byte("USER anon\r\nPASS x\r\n"))
	cfd, err := prot.Machine.CallFunction(vsftpd.FnSession, lfd)
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	if got := string(ctrl.ClientReadAll()); got != "230" {
		t.Fatalf("greeting = %q", got)
	}

	if _, err := prot.Machine.CallFunction(vsftpd.FnPasv, cfd, vsftpd.DataPortBase); err != nil {
		t.Fatalf("pasv: %v", err)
	}
	if got := string(ctrl.ClientReadAll()); got != "227" {
		t.Fatalf("pasv reply = %q", got)
	}
	data, err := prot.Kernel.Net.Dial(vsftpd.DataPortBase)
	if err != nil {
		t.Fatalf("data dial: %v", err)
	}
	n, err := prot.Machine.CallFunction(vsftpd.FnRetr, cfd)
	if err != nil {
		t.Fatalf("retr: %v", err)
	}
	if n != fileSize {
		t.Fatalf("transferred %d, want %d", n, fileSize)
	}
	got := data.ClientReadAll()
	if len(got) != fileSize || got[0] != 0xab {
		t.Fatalf("data bytes = %d", len(got))
	}
	if got := string(ctrl.ClientReadAll()); got != "226" {
		t.Fatalf("completion = %q", got)
	}
	if len(prot.Monitor.Violations) != 0 {
		t.Fatalf("violations: %v", prot.Monitor.Violations)
	}
}

func TestActiveDownload(t *testing.T) {
	prot := launch(t, false)
	if _, err := prot.Machine.CallFunction(vsftpd.FnInit); err != nil {
		t.Fatal(err)
	}
	// The "client" listens on its own data port; the guest connects out.
	clientSock := prot.Kernel.Net.NewSocket()
	if err := prot.Kernel.Net.Bind(clientSock, 40010); err != nil {
		t.Fatal(err)
	}
	if err := prot.Kernel.Net.Listen(clientSock, 1); err != nil {
		t.Fatal(err)
	}
	n, err := prot.Machine.CallFunction(vsftpd.FnPort, 0, 40010)
	if err != nil {
		t.Fatalf("port retr: %v", err)
	}
	if n != fileSize {
		t.Fatalf("transferred %d", n)
	}
	conn, err := prot.Kernel.Net.Accept(clientSock)
	if err != nil {
		t.Fatal(err)
	}
	if got := conn.ClientReadAll(); len(got) != 0 {
		// The guest wrote into the server side; client reads server bytes.
		t.Logf("note: client-side queue %d", len(got))
	}
	_ = conn
	if len(prot.Monitor.Violations) != 0 {
		t.Fatalf("violations: %v", prot.Monitor.Violations)
	}
}

func TestTransferSyscallProfile(t *testing.T) {
	prot := launch(t, true)
	lfd, err := prot.Machine.CallFunction(vsftpd.FnInit)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, _ := prot.Kernel.Net.Dial(vsftpd.ControlPort)
	ctrl.ClientWrite([]byte("USER a\r\n"))
	cfd, err := prot.Machine.CallFunction(vsftpd.FnSession, lfd)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		port := uint64(vsftpd.DataPortBase + 1 + i)
		if _, err := prot.Machine.CallFunction(vsftpd.FnPasv, cfd, port); err != nil {
			t.Fatalf("pasv %d: %v", i, err)
		}
		if _, err := prot.Kernel.Net.Dial(uint16(port)); err != nil {
			t.Fatal(err)
		}
		if n, err := prot.Machine.CallFunction(vsftpd.FnRetr, cfd); err != nil || n != fileSize {
			t.Fatalf("retr %d: %d, %v", i, n, err)
		}
	}
	c := prot.Proc.SyscallCounts
	// Per-transfer socket/bind/listen/accept, plus control setup.
	if c[kernel.SysSocket] != 6 { // 1 control + 5 data
		t.Errorf("socket = %d", c[kernel.SysSocket])
	}
	if c[kernel.SysBind] != 6 || c[kernel.SysListen] != 6 {
		t.Errorf("bind/listen = %d/%d", c[kernel.SysBind], c[kernel.SysListen])
	}
	if c[kernel.SysAccept] != 6 { // 1 session + 5 data
		t.Errorf("accept = %d", c[kernel.SysAccept])
	}
	if c[kernel.SysSendfile] != uint64(5*(fileSize/65536+1)) {
		t.Errorf("sendfile = %d", c[kernel.SysSendfile])
	}
}

func TestSessionBufferIsOverflowable(t *testing.T) {
	// The 64-byte command buffer accepts up to 256 bytes: verify the
	// vulnerability exists (unprotected machine, oversized input smashes
	// the frame and the return diverts). This anchors the ROP case study.
	prot := launch(t, true)
	lfd, err := prot.Machine.CallFunction(vsftpd.FnInit)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, _ := prot.Kernel.Net.Dial(vsftpd.ControlPort)
	payload := bytes.Repeat([]byte{0x41}, 120) // clobbers saved rbp/ret
	ctrl.ClientWrite(payload)
	_, err = prot.Machine.CallFunction(vsftpd.FnSession, lfd)
	if err == nil {
		t.Fatal("oversized login did not corrupt control flow")
	}
	var cf *vm.ControlFault
	if !errors.As(err, &cf) {
		t.Fatalf("err = %v, want control fault from smashed frame", err)
	}
	_ = netstack.ErrClosed
}
