package guestlibc_test

import (
	"bytes"
	"testing"
	"testing/quick"

	"bastion/internal/apps/guestlibc"
	"bastion/internal/ir"
	"bastion/internal/vm"
)

// newMachine builds a machine over the libc program plus a trampoline main
// (the validator requires an entry point).
func newMachine(t *testing.T) *vm.Machine {
	t.Helper()
	p := guestlibc.NewProgram()
	b := ir.NewBuilder("main", 0)
	b.Ret(ir.Imm(0))
	p.AddFunc(b.Build())
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(p)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxSteps = 1 << 22
	return m
}

// scratch maps a page for string fixtures and returns its base.
func scratch(t *testing.T, m *vm.Machine) uint64 {
	t.Helper()
	const base = 0x2000_0000
	if err := m.Mem.Map(base, 8192, 0b011); err != nil {
		t.Fatal(err)
	}
	return base
}

func TestEveryWrapperIsAValidSyscallStub(t *testing.T) {
	p := guestlibc.NewProgram()
	names := guestlibc.WrapperNames()
	if len(names) < 30 {
		t.Fatalf("only %d wrappers", len(names))
	}
	seenNr := map[int64]string{}
	for _, name := range names {
		f := p.Func(name)
		if f == nil {
			t.Fatalf("wrapper %s missing", name)
		}
		if !ir.IsSyscallWrapper(f) {
			t.Errorf("%s is not a syscall wrapper", name)
		}
		nr, ok := ir.SyscallNumber(f)
		if !ok {
			t.Errorf("%s has no constant syscall number", name)
		}
		if prev, dup := seenNr[nr]; dup {
			t.Errorf("%s and %s share syscall number %d", name, prev, nr)
		}
		seenNr[nr] = name
	}
}

func TestStrlen(t *testing.T) {
	m := newMachine(t)
	base := scratch(t, m)
	for _, s := range []string{"", "a", "hello world", string(bytes.Repeat([]byte{'x'}, 300))} {
		if err := m.Mem.Write(base, append([]byte(s), 0)); err != nil {
			t.Fatal(err)
		}
		got, err := m.CallFunction("strlen", base)
		if err != nil {
			t.Fatalf("strlen(%q): %v", s, err)
		}
		if got != uint64(len(s)) {
			t.Fatalf("strlen(%q) = %d", s, got)
		}
	}
}

func TestMemcpyMemsetMemcmpProperty(t *testing.T) {
	m := newMachine(t)
	base := scratch(t, m)
	src, dst := base, base+2048

	f := func(data []byte, fill byte) bool {
		if len(data) == 0 || len(data) > 1024 {
			return true
		}
		if err := m.Mem.Write(src, data); err != nil {
			return false
		}
		// memset the destination, then memcpy over it, then memcmp.
		if _, err := m.CallFunction("memset", dst, uint64(fill), uint64(len(data))); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if err := m.Mem.Read(dst, got); err != nil {
			return false
		}
		for _, b := range got {
			if b != fill {
				return false
			}
		}
		if _, err := m.CallFunction("memcpy", dst, src, uint64(len(data))); err != nil {
			return false
		}
		if err := m.Mem.Read(dst, got); err != nil {
			return false
		}
		if !bytes.Equal(got, data) {
			return false
		}
		eq, err := m.CallFunction("memcmp", dst, src, uint64(len(data)))
		return err == nil && eq == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMemcmpDetectsDifference(t *testing.T) {
	m := newMachine(t)
	base := scratch(t, m)
	m.Mem.Write(base, []byte("abcdef"))
	m.Mem.Write(base+100, []byte("abcxef"))
	got, err := m.CallFunction("memcmp", base, base+100, 6)
	if err != nil || got != 1 {
		t.Fatalf("memcmp = %d, %v", got, err)
	}
	got, err = m.CallFunction("memcmp", base, base+100, 3)
	if err != nil || got != 0 {
		t.Fatalf("memcmp prefix = %d, %v", got, err)
	}
}

func TestStreq(t *testing.T) {
	m := newMachine(t)
	base := scratch(t, m)
	cases := []struct {
		a, b string
		want uint64
	}{
		{"", "", 1},
		{"abc", "abc", 1},
		{"abc", "abd", 0},
		{"abc", "abcd", 0},
		{"abcd", "abc", 0},
	}
	for _, tc := range cases {
		m.Mem.Write(base, append([]byte(tc.a), 0))
		m.Mem.Write(base+512, append([]byte(tc.b), 0))
		got, err := m.CallFunction("streq", base, base+512)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("streq(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}
