// Package guestlibc provides the guest-side C-library analog: one IR
// wrapper function per implemented system call (each containing the single
// Syscall instruction, as libc stubs do) and a handful of string/memory
// helper routines shared by the guest applications.
//
// BASTION's call-type analysis classifies system calls by how these
// wrappers are referenced — called directly, address-taken for indirect
// calls, or never used — exactly as the paper's LLVM pass classifies libc
// syscall stubs.
package guestlibc

import (
	"bastion/internal/ir"
	"bastion/internal/kernel"
)

// wrapperSpec describes one syscall wrapper: its libc-style name, syscall
// number, and parameter count.
type wrapperSpec struct {
	name   string
	nr     int64
	params int
}

var wrappers = []wrapperSpec{
	{"read", kernel.SysRead, 3},
	{"write", kernel.SysWrite, 3},
	{"open", kernel.SysOpen, 3},
	{"openat", kernel.SysOpenat, 4},
	{"close", kernel.SysClose, 1},
	{"stat", kernel.SysStat, 2},
	{"fstat", kernel.SysFstat, 2},
	{"lseek", kernel.SysLseek, 3},
	{"mmap", kernel.SysMmap, 6},
	{"mprotect", kernel.SysMprotect, 3},
	{"munmap", kernel.SysMunmap, 2},
	{"brk", kernel.SysBrk, 1},
	{"mremap", kernel.SysMremap, 3},
	{"remap_file_pages", kernel.SysRemapFilePages, 2},
	{"getpid", kernel.SysGetpid, 0},
	{"sendfile", kernel.SysSendfile, 4},
	{"socket", kernel.SysSocket, 3},
	{"connect", kernel.SysConnect, 3},
	{"accept", kernel.SysAccept, 3},
	{"accept4", kernel.SysAccept4, 4},
	{"sendto", kernel.SysSendto, 3},
	{"recvfrom", kernel.SysRecvfrom, 3},
	{"bind", kernel.SysBind, 3},
	{"listen", kernel.SysListen, 2},
	{"clone", kernel.SysClone, 1},
	{"fork", kernel.SysFork, 0},
	{"vfork", kernel.SysVfork, 0},
	{"execve", kernel.SysExecve, 3},
	{"execveat", kernel.SysExecveat, 3},
	{"exit", kernel.SysExit, 1},
	{"exit_group", kernel.SysExitGroup, 1},
	{"chmod", kernel.SysChmod, 2},
	{"ptrace", kernel.SysPtrace, 4},
	{"setuid", kernel.SysSetuid, 1},
	{"setgid", kernel.SysSetgid, 1},
	{"setreuid", kernel.SysSetreuid, 2},
}

// WrapperNames returns the names of all syscall wrapper functions.
func WrapperNames() []string {
	out := make([]string, len(wrappers))
	for i, w := range wrappers {
		out[i] = w.name
	}
	return out
}

// AddSyscallWrappers registers every syscall wrapper function in p.
func AddSyscallWrappers(p *ir.Program) {
	for _, w := range wrappers {
		b := ir.NewBuilder(w.name, w.params)
		args := make([]ir.Operand, w.params)
		for i := 0; i < w.params; i++ {
			args[i] = ir.R(b.LoadLocal("p" + digits(i)))
		}
		r := b.Syscall(w.nr, args...)
		b.Ret(ir.R(r))
		p.AddFunc(b.Build())
	}
}

func digits(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [4]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// AddHelpers registers the shared string/memory helper functions:
// strlen(s), memcpy(dst, src, n), memset(dst, c, n), memcmp(a, b, n),
// and streq(a, b).
func AddHelpers(p *ir.Program) {
	p.AddFunc(buildStrlen())
	p.AddFunc(buildMemcpy())
	p.AddFunc(buildMemset())
	p.AddFunc(buildMemcmp())
	p.AddFunc(buildStreq())
}

// strlen(s): length of NUL-terminated string.
func buildStrlen() *ir.Function {
	b := ir.NewBuilder("strlen", 1)
	s := b.LoadLocal("p0")
	n := b.Const(0)
	b.Label("loop")
	addr := b.Bin(ir.OpAdd, ir.R(s), ir.R(n))
	c := b.Load(addr, 0, 1)
	z := b.Bin(ir.OpEq, ir.R(c), ir.Imm(0))
	b.BranchNZ(ir.R(z), "done")
	b.BinInto(n, ir.OpAdd, ir.R(n), ir.Imm(1))
	b.Jump("loop")
	b.Label("done")
	b.Ret(ir.R(n))
	return b.Build()
}

// memcpy(dst, src, n): byte copy; returns dst.
func buildMemcpy() *ir.Function {
	b := ir.NewBuilder("memcpy", 3)
	dst := b.LoadLocal("p0")
	src := b.LoadLocal("p1")
	n := b.LoadLocal("p2")
	i := b.Const(0)
	b.Label("loop")
	c := b.Bin(ir.OpLt, ir.R(i), ir.R(n))
	done := b.Bin(ir.OpEq, ir.R(c), ir.Imm(0))
	b.BranchNZ(ir.R(done), "out")
	sa := b.Bin(ir.OpAdd, ir.R(src), ir.R(i))
	v := b.Load(sa, 0, 1)
	da := b.Bin(ir.OpAdd, ir.R(dst), ir.R(i))
	b.Store(da, 0, ir.R(v), 1)
	b.BinInto(i, ir.OpAdd, ir.R(i), ir.Imm(1))
	b.Jump("loop")
	b.Label("out")
	b.Ret(ir.R(dst))
	return b.Build()
}

// memset(dst, c, n): fill; returns dst.
func buildMemset() *ir.Function {
	b := ir.NewBuilder("memset", 3)
	dst := b.LoadLocal("p0")
	c := b.LoadLocal("p1")
	n := b.LoadLocal("p2")
	i := b.Const(0)
	b.Label("loop")
	lt := b.Bin(ir.OpLt, ir.R(i), ir.R(n))
	done := b.Bin(ir.OpEq, ir.R(lt), ir.Imm(0))
	b.BranchNZ(ir.R(done), "out")
	da := b.Bin(ir.OpAdd, ir.R(dst), ir.R(i))
	b.Store(da, 0, ir.R(c), 1)
	b.BinInto(i, ir.OpAdd, ir.R(i), ir.Imm(1))
	b.Jump("loop")
	b.Label("out")
	b.Ret(ir.R(dst))
	return b.Build()
}

// memcmp(a, b, n): 0 if equal, 1 otherwise (ordering not preserved).
func buildMemcmp() *ir.Function {
	b := ir.NewBuilder("memcmp", 3)
	a := b.LoadLocal("p0")
	bb := b.LoadLocal("p1")
	n := b.LoadLocal("p2")
	i := b.Const(0)
	b.Label("loop")
	lt := b.Bin(ir.OpLt, ir.R(i), ir.R(n))
	done := b.Bin(ir.OpEq, ir.R(lt), ir.Imm(0))
	b.BranchNZ(ir.R(done), "eq")
	aa := b.Bin(ir.OpAdd, ir.R(a), ir.R(i))
	va := b.Load(aa, 0, 1)
	ba := b.Bin(ir.OpAdd, ir.R(bb), ir.R(i))
	vb := b.Load(ba, 0, 1)
	ne := b.Bin(ir.OpNe, ir.R(va), ir.R(vb))
	b.BranchNZ(ir.R(ne), "diff")
	b.BinInto(i, ir.OpAdd, ir.R(i), ir.Imm(1))
	b.Jump("loop")
	b.Label("diff")
	b.Ret(ir.Imm(1))
	b.Label("eq")
	b.Ret(ir.Imm(0))
	return b.Build()
}

// streq(a, b): 1 if NUL-terminated strings are equal, else 0.
func buildStreq() *ir.Function {
	b := ir.NewBuilder("streq", 2)
	a := b.LoadLocal("p0")
	bb := b.LoadLocal("p1")
	i := b.Const(0)
	b.Label("loop")
	aa := b.Bin(ir.OpAdd, ir.R(a), ir.R(i))
	va := b.Load(aa, 0, 1)
	ba := b.Bin(ir.OpAdd, ir.R(bb), ir.R(i))
	vb := b.Load(ba, 0, 1)
	ne := b.Bin(ir.OpNe, ir.R(va), ir.R(vb))
	b.BranchNZ(ir.R(ne), "diff")
	z := b.Bin(ir.OpEq, ir.R(va), ir.Imm(0))
	b.BranchNZ(ir.R(z), "eq")
	b.BinInto(i, ir.OpAdd, ir.R(i), ir.Imm(1))
	b.Jump("loop")
	b.Label("diff")
	b.Ret(ir.Imm(0))
	b.Label("eq")
	b.Ret(ir.Imm(1))
	return b.Build()
}

// NewProgram returns a fresh program pre-populated with all syscall
// wrappers and helpers — the starting point for every guest application.
func NewProgram() *ir.Program {
	p := ir.NewProgram()
	AddSyscallWrappers(p)
	AddHelpers(p)
	return p
}
