package nginx_test

import (
	"errors"
	"testing"

	"bastion/internal/apps/nginx"
	"bastion/internal/kernel"
	"bastion/internal/vm"
)

// TestMasterCycleIdleDoesNothing: with the upgrade flag clear, the master
// loop must not spawn anything.
func TestMasterCycleIdleDoesNotExec(t *testing.T) {
	prot := launch(t, false)
	if _, err := prot.Machine.CallFunction(nginx.FnInit, 1); err != nil {
		t.Fatal(err)
	}
	got, err := prot.Machine.CallFunction(nginx.FnMasterCycle)
	if err != nil {
		t.Fatalf("idle cycle: %v", err)
	}
	if got != 0 {
		t.Fatalf("idle cycle returned %d", got)
	}
	if prot.Proc.HasEvent(kernel.EventExec, "") {
		t.Fatal("idle master cycle executed something")
	}
}

// TestMasterCycleUpgradeLegitimate: the legitimate indirect path —
// master loop → ngx_spawn_process → (indirect) ngx_execute_proc → execve —
// must pass all three contexts. This is the regression guard for the
// AllowedIndirect ("expected partial trace") metadata: the spawn callsite
// is a legal indirect route to execve.
func TestMasterCycleUpgradeLegitimate(t *testing.T) {
	prot := launch(t, false)
	if _, err := prot.Machine.CallFunction(nginx.FnInit, 1); err != nil {
		t.Fatal(err)
	}
	// The admin legitimately requests the upgrade (guest code would set
	// this from a signal handler; the store value itself is not sensitive).
	g := prot.Machine.Prog.GlobalByName("upgrade_requested")
	if err := prot.Machine.Mem.WriteUint(g.Addr, 1, 8); err != nil {
		t.Fatal(err)
	}
	_, err := prot.Machine.CallFunction(nginx.FnMasterCycle)
	var xe *vm.ExitError
	if err != nil && !errors.As(err, &xe) {
		t.Fatalf("legit upgrade via spawn table failed: %v", err)
	}
	if !prot.Proc.HasEvent(kernel.EventExec, "/usr/sbin/nginx") {
		t.Fatalf("upgrade did not exec: %v", prot.Proc.Events)
	}
	if len(prot.Monitor.Violations) != 0 {
		t.Fatalf("violations on legit indirect exec: %v", prot.Monitor.Violations)
	}
}

// TestSpawnProcessIsIndirect sanity-checks the Jujutsu premise: the spawn
// table makes ngx_execute_proc a legitimate indirect target.
func TestSpawnProcessIsIndirect(t *testing.T) {
	prot := launch(t, false)
	meta := prot.Monitor.Meta
	if !meta.IndirectTargets[nginx.FnExecuteProc] {
		t.Fatal("ngx_execute_proc not address-taken in metadata")
	}
	allowed := meta.AllowedIndirect[kernel.SysExecve]
	if len(allowed) == 0 {
		t.Fatal("no indirect callsites allowed for execve")
	}
}
