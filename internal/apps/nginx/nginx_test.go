package nginx_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"bastion/internal/apps/nginx"
	"bastion/internal/core"
	"bastion/internal/core/monitor"
	"bastion/internal/kernel"
	"bastion/internal/kernel/fs"
	"bastion/internal/vm"
)

// launch compiles and starts the server (protected unless bare).
func launch(t *testing.T, bare bool) *core.Protected {
	t.Helper()
	art, err := core.Compile(nginx.Build(), core.CompileOptions{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	k := kernel.New(nil)
	page := bytes.Repeat([]byte("nginx simulated static page content\n"), 188)[:6745]
	if err := k.FS.WriteFile("/srv/index.html", page, fs.ModeRead); err != nil {
		t.Fatal(err)
	}
	k.FS.WriteFile("/usr/sbin/nginx", []byte{0x7f}, fs.ModeRead|fs.ModeExec)
	// Upstream listener for worker connects.
	up := k.Net.NewSocket()
	if err := k.Net.Bind(up, nginx.UpstreamPort); err != nil {
		t.Fatal(err)
	}
	if err := k.Net.Listen(up, 1024); err != nil {
		t.Fatal(err)
	}
	var prot *core.Protected
	if bare {
		prot, err = core.LaunchUnprotected(art, k, vm.WithMaxSteps(1<<26))
	} else {
		prot, err = core.Launch(art, k, monitor.DefaultConfig(), vm.WithMaxSteps(1<<26))
	}
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	return prot
}

func serveOne(t *testing.T, prot *core.Protected, lfd uint64, req string) (string, uint64) {
	t.Helper()
	conn, err := prot.Kernel.Net.Dial(nginx.Port)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	conn.ClientWrite([]byte(req))
	n, err := prot.Machine.CallFunction(nginx.FnHandleRequest, lfd)
	if err != nil {
		t.Fatalf("handle: %v", err)
	}
	return string(conn.ClientReadAll()), n
}

func TestServesStaticPageProtected(t *testing.T) {
	prot := launch(t, false)
	lfd, err := prot.Machine.CallFunction(nginx.FnInit, 2)
	if err != nil {
		t.Fatalf("init: %v", err)
	}
	body, n := serveOne(t, prot, lfd, "GET /index.html HTTP/1.1\r\n\r\n")
	if n != 6745 || len(body) != 6745 {
		t.Fatalf("served %d bytes (body %d), want 6745", n, len(body))
	}
	if !strings.HasPrefix(body, "nginx simulated") {
		t.Fatalf("body prefix %q", body[:20])
	}
	if len(prot.Monitor.Violations) != 0 {
		t.Fatalf("violations: %v", prot.Monitor.Violations)
	}
	// Steady state: exactly one sensitive trap (accept4) per request.
	if prot.Monitor.ChecksByNr[kernel.SysAccept4] != 1 {
		t.Fatalf("accept4 checks = %v", prot.Monitor.ChecksByNr)
	}
}

func TestInitSyscallProfile(t *testing.T) {
	prot := launch(t, true)
	if _, err := prot.Machine.CallFunction(nginx.FnInit, 4); err != nil {
		t.Fatalf("init: %v", err)
	}
	c := prot.Proc.SyscallCounts
	// Per Table 4's shape: init-heavy mmap/mprotect, per-worker creds and
	// upstream sockets, one bind, two listens.
	if c[kernel.SysMmap] != 1+4*16 {
		t.Errorf("mmap = %d, want %d", c[kernel.SysMmap], 1+4*16)
	}
	if c[kernel.SysMprotect] != 1+4*6 {
		t.Errorf("mprotect = %d, want %d", c[kernel.SysMprotect], 1+4*6)
	}
	if c[kernel.SysSetuid] != 4 || c[kernel.SysSetgid] != 4 {
		t.Errorf("setuid/setgid = %d/%d", c[kernel.SysSetuid], c[kernel.SysSetgid])
	}
	if c[kernel.SysSocket] != 5 { // 4 workers + 1 listener
		t.Errorf("socket = %d", c[kernel.SysSocket])
	}
	if c[kernel.SysBind] != 1 || c[kernel.SysListen] != 2 {
		t.Errorf("bind/listen = %d/%d", c[kernel.SysBind], c[kernel.SysListen])
	}
	if c[kernel.SysClone] != 4*3 {
		t.Errorf("clone = %d", c[kernel.SysClone])
	}
	if c[kernel.SysConnect] != 4 {
		t.Errorf("connect = %d", c[kernel.SysConnect])
	}
}

func TestMissingFileClosesConnection(t *testing.T) {
	prot := launch(t, false)
	lfd, err := prot.Machine.CallFunction(nginx.FnInit, 1)
	if err != nil {
		t.Fatal(err)
	}
	body, n := serveOne(t, prot, lfd, "GET /nope.html HTTP/1.1\r\n\r\n")
	if n != 0 || body != "" {
		t.Fatalf("served %d bytes %q for missing file", n, body)
	}
	if len(prot.Monitor.Violations) != 0 {
		t.Fatalf("violations: %v", prot.Monitor.Violations)
	}
}

func TestUpgradePathLegitimate(t *testing.T) {
	prot := launch(t, false)
	if _, err := prot.Machine.CallFunction(nginx.FnInit, 1); err != nil {
		t.Fatal(err)
	}
	_, err := prot.Machine.CallFunction(nginx.FnMasterUpgrade)
	var xe *vm.ExitError
	if err != nil && !errors.As(err, &xe) {
		t.Fatalf("upgrade failed: %v", err)
	}
	if !prot.Proc.HasEvent(kernel.EventExec, "/usr/sbin/nginx") {
		t.Fatalf("no exec event; events=%v", prot.Proc.Events)
	}
	if len(prot.Monitor.Violations) != 0 {
		t.Fatalf("violations on legit upgrade: %v", prot.Monitor.Violations)
	}
}

func TestIndexedVariableBenign(t *testing.T) {
	prot := launch(t, false)
	if _, err := prot.Machine.CallFunction(nginx.FnInit, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := prot.Machine.CallFunction(nginx.FnIndexedVar, 0, 1); err != nil {
		t.Fatalf("indexed variable: %v", err)
	}
	g := prot.Machine.Prog.GlobalByName("ngx_http_variable_depth")
	v, _ := prot.Machine.Mem.ReadUint(g.Addr, 8)
	if v != 1 {
		t.Fatalf("depth = %d", v)
	}
}

func TestManyRequestsStayClean(t *testing.T) {
	prot := launch(t, false)
	lfd, err := prot.Machine.CallFunction(nginx.FnInit, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if _, n := serveOne(t, prot, lfd, "GET /index.html HTTP/1.1\r\n\r\n"); n != 6745 {
			t.Fatalf("request %d served %d", i, n)
		}
	}
	if got := prot.Monitor.ChecksByNr[kernel.SysAccept4]; got != 25 {
		t.Fatalf("accept4 checks = %d", got)
	}
	if len(prot.Monitor.Violations) != 0 {
		t.Fatalf("violations: %v", prot.Monitor.Violations)
	}
	// Call-depth statistics land in the paper's reported range (§9.2).
	if avg := prot.Machine.AvgSyscallDepth(); avg < 2 || avg > 10 {
		t.Fatalf("avg syscall depth = %v", avg)
	}
}
