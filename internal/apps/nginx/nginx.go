// Package nginx builds the guest web server used throughout the paper's
// evaluation: an event-loop HTTP server whose system call profile matches
// Table 4 (initialization-heavy mmap/mprotect, per-worker socket and
// credential setup, accept4-dominated steady state) and whose code
// contains the two vulnerable patterns of §3.4:
//
//   - Listing 1: ngx_execute_proc reaches execve(ctx->path, ...) through a
//     context structure, and ngx_output_chain dispatches through a
//     corruptible function pointer (ctx->output_filter).
//   - Listing 2: ngx_http_get_indexed_variable dispatches through
//     v[index].get_handler with an unchecked index over a global handler
//     table, the NEWTON non-pointer-corruption surface.
package nginx

import (
	"bastion/internal/apps/guestlibc"
	"bastion/internal/ir"
	"bastion/internal/kernel"
)

// Port is the server's listen port.
const Port = 80

// UpstreamPort is the port workers connect to (health/upstream channel).
const UpstreamPort = 8081

// Workers is the default worker count (the paper configures 32).
const Workers = 32

// Handler-table geometry for ngx_http_get_indexed_variable: entries of
// {get_handler, data}, 16 bytes each.
const (
	varEntrySize = 16
	varEntries   = 4
)

// Function names exposed to workloads and attack scenarios.
const (
	FnInit          = "ngx_init"
	FnHandleRequest = "ngx_handle_request"
	FnExecuteProc   = "ngx_execute_proc"
	FnOutputChain   = "ngx_output_chain"
	FnIndexedVar    = "ngx_http_get_indexed_variable"
	FnMasterUpgrade = "ngx_master_upgrade"
	FnMasterCycle   = "ngx_master_cycle"
	FnSpawnProcess  = "ngx_spawn_process"
	FnChainWriter   = "ngx_chain_writer"
	FnVarHost       = "ngx_http_var_host"
	FnVarURI        = "ngx_http_var_uri"
)

// Build assembles the guest program. The returned program is not yet
// compiled/linked; pass it through core.Compile (or link directly for an
// unprotected baseline).
func Build() *ir.Program {
	p := guestlibc.NewProgram()

	// ngx_cycle: [0]=listen fd, [8]=docroot ptr, [16]=upgrade flag.
	p.AddGlobal(&ir.Global{Name: "ngx_cycle", Size: 32})
	// exec_ctx (Listing 1's ctx): [0]=path, [8]=argv, [16]=envp.
	p.AddGlobal(&ir.Global{Name: "exec_ctx", Size: 32})
	// Upgrade binary path, built by code at init.
	p.AddGlobal(&ir.Global{Name: "upgrade_path", Size: 32})
	// Output chain context: [0]=output_filter fn ptr, [8]=filter_ctx.
	p.AddGlobal(&ir.Global{Name: "chain_ctx", Size: 16})
	// Listing 2's v[]: get_handler/data pairs.
	p.AddGlobal(&ir.Global{Name: "var_handlers", Size: varEntrySize * varEntries})
	p.AddGlobal(&ir.Global{Name: "ngx_http_variable_depth", Size: 8})
	// Serving state: bytes served counter.
	p.AddGlobal(&ir.Global{Name: "bytes_served", Size: 8})
	// Static docroot prefix "/srv" + requested file name buffer.
	p.AddGlobal(&ir.Global{Name: "docroot", Size: 8, Init: []byte("/srv")})
	// Process-spawn callback table (real nginx passes ngx_execute_proc to
	// ngx_spawn_process as a callback, making it legitimately
	// address-taken — the Control Jujutsu premise).
	p.AddGlobal(&ir.Global{Name: "spawn_table", Size: 16})
	// Master-loop flag a request can set to ask for a binary upgrade.
	p.AddGlobal(&ir.Global{Name: "upgrade_requested", Size: 8})
	// Session cookie staging area (attacker-reachable scratch in attacks).
	p.AddGlobal(&ir.Global{Name: "scratch", Size: 128})

	addVarHandlers(p)
	addSpawn(p)
	addOutputChain(p)
	addExecuteProc(p)
	addIndexedVariable(p)
	addWorkerInit(p)
	addInit(p)
	addHandleRequest(p)
	addMasterUpgrade(p)
	addMain(p)
	return p
}

// storeBytes emits per-byte stores of s (plus NUL) at reg+off.
func storeBytes(b *ir.Builder, addr ir.Reg, off int64, s string) {
	for i := 0; i < len(s); i++ {
		b.Store(addr, off+int64(i), ir.Imm(int64(s[i])), 1)
	}
	b.Store(addr, off+int64(len(s)), ir.Imm(0), 1)
}

// sockaddrStores emits an AF_INET sockaddr for port into a local buffer.
func sockaddrStores(b *ir.Builder, local string, port int64) ir.Reg {
	sa := b.Lea(local, 0)
	b.Store(sa, 0, ir.Imm(2), 2)
	b.Store(sa, 2, ir.Imm(port>>8), 1)
	b.Store(sa, 3, ir.Imm(port&0xff), 1)
	return sa
}

// addVarHandlers defines the benign indexed-variable handlers.
func addVarHandlers(p *ir.Program) {
	// ngx_http_var_host(r, varp, data): *varp = data; return 0 (NGX_OK).
	for _, name := range []string{FnVarHost, FnVarURI} {
		b := ir.NewBuilder(name, 3)
		varp := b.LoadLocal("p1")
		data := b.LoadLocal("p2")
		b.Store(varp, 0, ir.R(data), 8)
		b.Ret(ir.Imm(0))
		p.AddFunc(b.Build())
	}
}

// addOutputChain defines ngx_chain_writer and ngx_output_chain (Listing 1,
// lines 10-19): the response path dispatches through ctx->output_filter.
func addOutputChain(p *ir.Program) {
	// ngx_chain_writer(filter_ctx, in): writes the buffer described by in
	// {[0]=fd, [8]=buf, [16]=len} to the connection.
	w := ir.NewBuilder(FnChainWriter, 2)
	in := w.LoadLocal("p1")
	fd := w.Load(in, 0, 8)
	buf := w.Load(in, 8, 8)
	ln := w.Load(in, 16, 8)
	n := w.Call("write", ir.R(fd), ir.R(buf), ir.R(ln))
	w.Ret(ir.R(n))
	p.AddFunc(w.Build())

	// ngx_output_chain(inAddr): indirect dispatch through the global
	// chain context (the corruptible callsite of the Listing 1 attack).
	b := ir.NewBuilder(FnOutputChain, 1)
	cc := b.GlobalLea("chain_ctx", 0)
	filter := b.Load(cc, 0, 8)
	fctx := b.Load(cc, 8, 8)
	inp := b.LoadLocal("p0")
	r := b.CallInd(filter, "i64(i64,i64)", ir.R(fctx), ir.R(inp))
	b.Ret(ir.R(r))
	p.AddFunc(b.Build())
}

// addExecuteProc defines ngx_execute_proc (Listing 1, lines 2-9).
func addExecuteProc(p *ir.Program) {
	b := ir.NewBuilder(FnExecuteProc, 2)
	ctx := b.LoadLocal("p1") // data -> ngx_exec_ctx_t*
	path := b.Load(ctx, 0, 8)
	argv := b.Load(ctx, 8, 8)
	envp := b.Load(ctx, 16, 8)
	b.Call("execve", ir.R(path), ir.R(argv), ir.R(envp))
	// execve only returns on failure; exit(1) as in the listing.
	b.Call("exit", ir.Imm(1))
	b.Ret(ir.Imm(-1))
	p.AddFunc(b.Build())
}

// addIndexedVariable defines ngx_http_get_indexed_variable (Listing 2):
// the index is NOT bounds-checked, by design.
func addIndexedVariable(p *ir.Program) {
	b := ir.NewBuilder(FnIndexedVar, 2)
	r := b.LoadLocal("p0")
	idx := b.LoadLocal("p1")
	base := b.GlobalLea("var_handlers", 0)
	scaled := b.Bin(ir.OpMul, ir.R(idx), ir.Imm(varEntrySize))
	entry := b.Bin(ir.OpAdd, ir.R(base), ir.R(scaled))
	handler := b.Load(entry, 0, 8)
	data := b.Load(entry, 8, 8)
	b.Local("value", 8)
	valp := b.Lea("value", 0)
	res := b.CallInd(handler, "i64(i64,i64,i64)", ir.R(r), ir.R(valp), ir.R(data))
	depth := b.GlobalLea("ngx_http_variable_depth", 0)
	dv := b.Load(depth, 0, 8)
	dv2 := b.Bin(ir.OpAdd, ir.R(dv), ir.Imm(1))
	depth2 := b.GlobalLea("ngx_http_variable_depth", 0)
	b.Store(depth2, 0, ir.R(dv2), 8)
	b.Ret(ir.R(res))
	p.AddFunc(b.Build())
}

// addWorkerInit defines per-worker initialization: pool mappings, an
// upstream connection, and credential drop — the Table 4 init profile.
func addWorkerInit(p *ir.Program) {
	b := ir.NewBuilder("ngx_worker_init", 1)
	b.Local("sa", 16)
	b.Local("i", 8)
	b.Local("pool", 8)

	// 16 pool mmaps; every third one made read-only (mprotect).
	b.StoreLocal("i", ir.Imm(0))
	b.Label("pool_loop")
	iv := b.LoadLocal("i")
	c := b.Bin(ir.OpLt, ir.R(iv), ir.Imm(16))
	done := b.Bin(ir.OpEq, ir.R(c), ir.Imm(0))
	b.BranchNZ(ir.R(done), "pool_done")
	addr := b.Call("mmap", ir.Imm(0), ir.Imm(16384), ir.Imm(kernel.ProtRead|kernel.ProtWrite),
		ir.Imm(kernel.MapPrivate|kernel.MapAnonymous), ir.Imm(-1), ir.Imm(0))
	b.StoreLocal("pool", ir.R(addr))
	iv2 := b.LoadLocal("i")
	rem := b.Bin(ir.OpMod, ir.R(iv2), ir.Imm(3))
	skip := b.Bin(ir.OpNe, ir.R(rem), ir.Imm(0))
	b.BranchNZ(ir.R(skip), "no_protect")
	pv := b.LoadLocal("pool")
	b.Call("mprotect", ir.R(pv), ir.Imm(4096), ir.Imm(kernel.ProtRead))
	b.Label("no_protect")
	iv3 := b.LoadLocal("i")
	inc := b.Bin(ir.OpAdd, ir.R(iv3), ir.Imm(1))
	b.StoreLocal("i", ir.R(inc))
	b.Jump("pool_loop")
	b.Label("pool_done")

	// Upstream channel: socket + connect.
	sfd := b.Call("socket", ir.Imm(2), ir.Imm(1), ir.Imm(0))
	b.Local("sfd", 8)
	b.StoreLocal("sfd", ir.R(sfd))
	sa := sockaddrStores(b, "sa", UpstreamPort)
	sfd2 := b.LoadLocal("sfd")
	b.Call("connect", ir.R(sfd2), ir.R(sa), ir.Imm(16))

	// Drop privileges.
	b.Call("setuid", ir.Imm(33))
	b.Call("setgid", ir.Imm(33))

	// Fork worker helpers (cache manager etc.): 3 clones per worker.
	b.Call("clone", ir.Imm(0x11))
	b.Call("clone", ir.Imm(0x11))
	b.Call("clone", ir.Imm(0x11))
	b.Ret(ir.Imm(0))
	p.AddFunc(b.Build())
}

// addInit defines ngx_init(workers): master setup, listener sockets, the
// handler/chain tables, and per-worker initialization.
func addInit(p *ir.Program) {
	b := ir.NewBuilder(FnInit, 1)
	b.Local("sa", 16)
	b.Local("sa2", 16)
	b.Local("lfd", 8)
	b.Local("w", 8)

	// Master pool + config mappings.
	cfg := b.Call("mmap", ir.Imm(0), ir.Imm(65536), ir.Imm(kernel.ProtRead|kernel.ProtWrite),
		ir.Imm(kernel.MapPrivate|kernel.MapAnonymous), ir.Imm(-1), ir.Imm(0))
	b.Local("cfg", 8)
	b.StoreLocal("cfg", ir.R(cfg))
	cfg2 := b.LoadLocal("cfg")
	b.Call("mprotect", ir.R(cfg2), ir.Imm(8192), ir.Imm(kernel.ProtRead))

	// Upgrade binary path and exec context (Listing 1 data).
	up := b.GlobalLea("upgrade_path", 0)
	storeBytes(b, up, 0, "/usr/sbin/nginx")
	ec := b.GlobalLea("exec_ctx", 0)
	up2 := b.GlobalLea("upgrade_path", 0)
	b.Store(ec, 0, ir.R(up2), 8)
	ec2 := b.GlobalLea("exec_ctx", 0)
	b.Store(ec2, 8, ir.Imm(0), 8)
	ec3 := b.GlobalLea("exec_ctx", 0)
	b.Store(ec3, 16, ir.Imm(0), 8)

	// Spawn callback table: slot 0 = ngx_execute_proc (address-taken).
	spt := b.GlobalLea("spawn_table", 0)
	ep := b.FuncAddr(FnExecuteProc)
	b.Store(spt, 0, ir.R(ep), 8)

	// Output chain context: filter = ngx_chain_writer.
	ccw := b.FuncAddr(FnChainWriter)
	cc := b.GlobalLea("chain_ctx", 0)
	b.Store(cc, 0, ir.R(ccw), 8)
	cc2 := b.GlobalLea("chain_ctx", 0)
	b.Store(cc2, 8, ir.Imm(0), 8)

	// Indexed-variable handler table.
	vh := b.GlobalLea("var_handlers", 0)
	h0 := b.FuncAddr(FnVarHost)
	b.Store(vh, 0, ir.R(h0), 8)
	vh2 := b.GlobalLea("var_handlers", 0)
	b.Store(vh2, 8, ir.Imm(1), 8) // data
	vh3 := b.GlobalLea("var_handlers", 0)
	h1 := b.FuncAddr(FnVarURI)
	b.Store(vh3, varEntrySize, ir.R(h1), 8)
	vh4 := b.GlobalLea("var_handlers", 0)
	b.Store(vh4, varEntrySize+8, ir.Imm(2), 8)

	// HTTP listener: socket/bind/listen (listen twice: http + backlog
	// reconfiguration, matching the two listen calls in Table 4).
	lfd := b.Call("socket", ir.Imm(2), ir.Imm(1), ir.Imm(0))
	b.StoreLocal("lfd", ir.R(lfd))
	sa := sockaddrStores(b, "sa", Port)
	lfd2 := b.LoadLocal("lfd")
	b.Call("bind", ir.R(lfd2), ir.R(sa), ir.Imm(16))
	lfd3 := b.LoadLocal("lfd")
	b.Call("listen", ir.R(lfd3), ir.Imm(511))
	lfd4 := b.LoadLocal("lfd")
	b.Call("listen", ir.R(lfd4), ir.Imm(1024))
	cyc := b.GlobalLea("ngx_cycle", 0)
	lfd5 := b.LoadLocal("lfd")
	b.Store(cyc, 0, ir.R(lfd5), 8)

	// Workers.
	b.StoreLocal("w", ir.Imm(0))
	b.Label("workers")
	wv := b.LoadLocal("w")
	nw := b.LoadLocal("p0")
	c := b.Bin(ir.OpLt, ir.R(wv), ir.R(nw))
	done := b.Bin(ir.OpEq, ir.R(c), ir.Imm(0))
	b.BranchNZ(ir.R(done), "workers_done")
	wv2 := b.LoadLocal("w")
	b.Call("ngx_worker_init", ir.R(wv2))
	wv3 := b.LoadLocal("w")
	inc := b.Bin(ir.OpAdd, ir.R(wv3), ir.Imm(1))
	b.StoreLocal("w", ir.R(inc))
	b.Jump("workers")
	b.Label("workers_done")
	lfd6 := b.LoadLocal("lfd")
	b.Ret(ir.R(lfd6))
	p.AddFunc(b.Build())
}

// addHandleRequest defines the steady-state request path: accept4, parse,
// open/fstat/read the file, respond through the output chain, close.
// Exactly one sensitive syscall (accept4) per request.
func addHandleRequest(p *ir.Program) {
	b := ir.NewBuilder(FnHandleRequest, 1)
	b.Local("peer", 16)
	b.Local("req", 256)
	b.Local("path", 64)
	b.Local("cfd", 8)
	b.Local("ffd", 8)
	b.Local("statbuf", 64)
	b.Local("fbuf", 2048)
	b.Local("chain", 24)
	b.Local("total", 8)
	b.Local("flen", 8)

	b.StoreLocal("total", ir.Imm(0))
	lfd := b.LoadLocal("p0")
	peer := b.Lea("peer", 0)
	cfd := b.Call("accept4", ir.R(lfd), ir.R(peer), ir.Imm(0), ir.Imm(0))
	b.StoreLocal("cfd", ir.R(cfd))
	// accept failure -> return -1.
	bad := b.Bin(ir.OpLt, ir.R(cfd), ir.Imm(0))
	b.BranchNZ(ir.R(bad), "fail")

	// Read the request.
	req := b.Lea("req", 0)
	cfd1 := b.LoadLocal("cfd")
	b.Call("read", ir.R(cfd1), ir.R(req), ir.Imm(255))

	// Touch the indexed-variable machinery, as the request path does.
	b.Call(FnIndexedVar, ir.Imm(0), ir.Imm(0))
	b.Call(FnIndexedVar, ir.Imm(0), ir.Imm(1))

	// Parse "GET <path> ..." -> path local gets "/srv" + file.
	pa := b.Lea("path", 0)
	b.Store(pa, 0, ir.Imm('/'), 1)
	b.Store(pa, 1, ir.Imm('s'), 1)
	b.Store(pa, 2, ir.Imm('r'), 1)
	b.Store(pa, 3, ir.Imm('v'), 1)
	// Copy from req[4] until space or end into path[4..].
	b.Local("i", 8)
	b.StoreLocal("i", ir.Imm(0))
	b.Label("copy")
	iv := b.LoadLocal("i")
	lim := b.Bin(ir.OpLt, ir.R(iv), ir.Imm(48))
	stop := b.Bin(ir.OpEq, ir.R(lim), ir.Imm(0))
	b.BranchNZ(ir.R(stop), "copied")
	req2 := b.Lea("req", 4)
	iv2 := b.LoadLocal("i")
	srca := b.Bin(ir.OpAdd, ir.R(req2), ir.R(iv2))
	ch := b.Load(srca, 0, 1)
	isSpace := b.Bin(ir.OpEq, ir.R(ch), ir.Imm(' '))
	b.BranchNZ(ir.R(isSpace), "copied")
	isNul := b.Bin(ir.OpEq, ir.R(ch), ir.Imm(0))
	b.BranchNZ(ir.R(isNul), "copied")
	pa2 := b.Lea("path", 4)
	iv3 := b.LoadLocal("i")
	dsta := b.Bin(ir.OpAdd, ir.R(pa2), ir.R(iv3))
	b.Store(dsta, 0, ir.R(ch), 1)
	iv4 := b.LoadLocal("i")
	inc := b.Bin(ir.OpAdd, ir.R(iv4), ir.Imm(1))
	b.StoreLocal("i", ir.R(inc))
	b.Jump("copy")
	b.Label("copied")
	pa3 := b.Lea("path", 4)
	iv5 := b.LoadLocal("i")
	enda := b.Bin(ir.OpAdd, ir.R(pa3), ir.R(iv5))
	b.Store(enda, 0, ir.Imm(0), 1)

	// Open + fstat the file.
	pa4 := b.Lea("path", 0)
	ffd := b.Call("open", ir.R(pa4), ir.Imm(0), ir.Imm(0))
	b.StoreLocal("ffd", ir.R(ffd))
	badf := b.Bin(ir.OpLt, ir.R(ffd), ir.Imm(0))
	b.BranchNZ(ir.R(badf), "close_conn")
	sb := b.Lea("statbuf", 0)
	ffd1 := b.LoadLocal("ffd")
	b.Call("fstat", ir.R(ffd1), ir.R(sb))
	sb2 := b.Lea("statbuf", 0)
	flen := b.Load(sb2, 48, 8)
	b.StoreLocal("flen", ir.R(flen))

	// Stream the file through the output chain in 2 KiB chunks.
	b.StoreLocal("total", ir.Imm(0))
	b.Label("stream")
	fb := b.Lea("fbuf", 0)
	ffd2 := b.LoadLocal("ffd")
	n := b.Call("read", ir.R(ffd2), ir.R(fb), ir.Imm(2048))
	nz := b.Bin(ir.OpLe, ir.R(n), ir.Imm(0))
	b.BranchNZ(ir.R(nz), "stream_done")
	// chain = {cfd, fbuf, n}; ngx_output_chain(&chain).
	chain := b.Lea("chain", 0)
	cfd2 := b.LoadLocal("cfd")
	b.Store(chain, 0, ir.R(cfd2), 8)
	chain2 := b.Lea("chain", 0)
	fb2 := b.Lea("fbuf", 0)
	b.Store(chain2, 8, ir.R(fb2), 8)
	chain3 := b.Lea("chain", 0)
	b.Store(chain3, 16, ir.R(n), 8)
	chain4 := b.Lea("chain", 0)
	b.Call(FnOutputChain, ir.R(chain4))
	tot := b.LoadLocal("total")
	tot2 := b.Bin(ir.OpAdd, ir.R(tot), ir.R(n))
	b.StoreLocal("total", ir.R(tot2))
	b.Jump("stream")
	b.Label("stream_done")
	ffd3 := b.LoadLocal("ffd")
	b.Call("close", ir.R(ffd3))

	// Track served bytes.
	bs := b.GlobalLea("bytes_served", 0)
	old := b.Load(bs, 0, 8)
	tot3 := b.LoadLocal("total")
	sum := b.Bin(ir.OpAdd, ir.R(old), ir.R(tot3))
	bs2 := b.GlobalLea("bytes_served", 0)
	b.Store(bs2, 0, ir.R(sum), 8)

	b.Label("close_conn")
	cfd3 := b.LoadLocal("cfd")
	b.Call("close", ir.R(cfd3))
	tot4 := b.LoadLocal("total")
	b.Ret(ir.R(tot4))
	b.Label("fail")
	b.Ret(ir.Imm(-1))
	p.AddFunc(b.Build())
}

// addSpawn defines the process-spawn machinery: ngx_spawn_process invokes
// a registered callback indirectly, and ngx_master_cycle triggers a binary
// upgrade through it when the upgrade flag is set — the legitimate
// indirect path to ngx_execute_proc.
func addSpawn(p *ir.Program) {
	sb := ir.NewBuilder(FnSpawnProcess, 1)
	idx := sb.LoadLocal("p0")
	tbl := sb.GlobalLea("spawn_table", 0)
	scaled := sb.Bin(ir.OpMul, ir.R(idx), ir.Imm(8))
	slot := sb.Bin(ir.OpAdd, ir.R(tbl), ir.R(scaled))
	fn := sb.Load(slot, 0, 8)
	cyc := sb.GlobalLea("ngx_cycle", 0)
	ec := sb.GlobalLea("exec_ctx", 0)
	r := sb.CallInd(fn, "i64(i64,i64)", ir.R(cyc), ir.R(ec))
	sb.Ret(ir.R(r))
	p.AddFunc(sb.Build())

	mb := ir.NewBuilder(FnMasterCycle, 0)
	flag := mb.GlobalLea("upgrade_requested", 0)
	fv := mb.Load(flag, 0, 8)
	z := mb.Bin(ir.OpEq, ir.R(fv), ir.Imm(0))
	mb.BranchNZ(ir.R(z), "idle")
	r2 := mb.Call(FnSpawnProcess, ir.Imm(0))
	mb.Ret(ir.R(r2))
	mb.Label("idle")
	mb.Ret(ir.Imm(0))
	p.AddFunc(mb.Build())
}

// addMasterUpgrade defines the rarely used binary-upgrade path: the only
// legitimate caller of ngx_execute_proc (Listing 1).
func addMasterUpgrade(p *ir.Program) {
	b := ir.NewBuilder(FnMasterUpgrade, 0)
	cyc := b.GlobalLea("ngx_cycle", 0)
	ec := b.GlobalLea("exec_ctx", 0)
	r := b.Call(FnExecuteProc, ir.R(cyc), ir.R(ec))
	b.Ret(ir.R(r))
	p.AddFunc(b.Build())
}

// addMain encodes the master/worker lifecycle the drivers exercise, so the
// syscall-flow graph derived from main's CFG admits every benign ordering:
// a pre-serve master window where a binary upgrade may exec (and only
// there — re-exec after serving is an illegal ordering), then the serve
// loop interleaving request handling, direct output-chain flushes, and
// variable dispatches in any order. The runtime path through this CFG is
// unchanged from the historical main (init, one request, exit): the
// upgrade window branches on upgrade_requested (0 unless a test arms it)
// and the loop runs one iteration on the request arm.
func addMain(p *ir.Program) {
	b := ir.NewBuilder("main", 0)
	b.Local("lfd", 8)
	b.Local("i", 8)
	lfd := b.Call(FnInit, ir.Imm(2))
	b.StoreLocal("lfd", ir.R(lfd))

	// Pre-serve master window: the only place an upgrade exec is legal.
	up := b.Load(b.GlobalLea("upgrade_requested", 0), 0, 8)
	idle := b.Bin(ir.OpEq, ir.R(up), ir.Imm(0))
	b.BranchNZ(ir.R(idle), "serve")
	direct := b.Bin(ir.OpEq, ir.R(up), ir.Imm(2))
	b.BranchNZ(ir.R(direct), "master_direct")
	b.Call(FnMasterCycle)
	b.Jump("serve")
	b.Label("master_direct")
	b.Call(FnMasterUpgrade)

	b.Label("serve")
	b.StoreLocal("i", ir.Imm(1))
	b.Label("serve_loop")
	iv := b.LoadLocal("i")
	oc := b.Bin(ir.OpEq, ir.R(iv), ir.Imm(2))
	b.BranchNZ(ir.R(oc), "flush")
	varArm := b.Bin(ir.OpEq, ir.R(iv), ir.Imm(3))
	b.BranchNZ(ir.R(varArm), "vars")
	lf := b.LoadLocal("lfd")
	b.Call(FnHandleRequest, ir.R(lf))
	b.Jump("serve_next")
	b.Label("flush")
	b.Call(FnOutputChain, ir.Imm(0))
	b.Jump("serve_next")
	b.Label("vars")
	b.Call(FnIndexedVar, ir.Imm(0), ir.Imm(0))
	b.Label("serve_next")
	iv2 := b.LoadLocal("i")
	dec := b.Bin(ir.OpAdd, ir.R(iv2), ir.Imm(-1))
	b.StoreLocal("i", ir.R(dec))
	b.BranchNZ(ir.R(dec), "serve_loop")

	b.Call("exit_group", ir.Imm(0))
	b.Ret(ir.Imm(0))
	p.AddFunc(b.Build())
}
