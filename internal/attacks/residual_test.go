package attacks

import (
	"testing"

	"bastion/internal/apps/nginx"
	"bastion/internal/kernel"
	"bastion/internal/vm"
)

// The §11.1 residual, probed honestly: an adversary who forges a
// *callsite-consistent* frame chain — every return address a real callsite
// read from the leaked binary, ending in a fabricated zero sentinel — is
// the strongest stack forgery the threat model allows. The chain must live
// in writable memory, which in practice means below the live frames; the
// monitor's frame-monotonicity check then catches the pivot. Independently
// of where the chain lives, the forged exec context has no shadow history,
// so argument integrity blocks the syscall even if control-flow were
// satisfied — the defense-in-depth answer the paper gives.
func runForgedChain(t *testing.T, d Defense) Outcome {
	t.Helper()
	env, err := Launch("nginx", d)
	if err != nil {
		t.Fatal(err)
	}
	sc := env.GlobalAddr("scratch")
	env.PlantString(sc+32, "/bin/sh")
	// Forged ctx object for ngx_execute_proc.
	env.W(sc+0, sc+32)
	env.W(sc+8, 0)
	env.W(sc+16, 0)

	execProc := env.FuncEntry(nginx.FnExecuteProc)
	retIntoUpgrade := env.CallsiteRet(nginx.FnMasterUpgrade, nginx.FnExecuteProc)

	env.Hook(nginx.FnIndexedVar, 1, func(m *vm.Machine) error {
		// Forged frames in unused stack space below the live frames:
		// pv plays ngx_execute_proc's frame, pv2 the fabricated base.
		pv := m.RBP() - 0x2000
		pv2 := m.RBP() - 0x1000
		m.Mem.WriteUint(pv-16, 0, 8) // p0 (cycle)
		m.Mem.WriteUint(pv-8, sc, 8) // p1 (ctx) -> forged object
		m.Mem.WriteUint(pv, pv2, 8)  // saved rbp -> fabricated base
		m.Mem.WriteUint(pv+8, retIntoUpgrade, 8)
		m.Mem.WriteUint(pv2, 0, 8)   // fabricated sentinel frame
		m.Mem.WriteUint(pv2+8, 0, 8) // ret 0 = "process base"
		return HijackReturn(m, pv, execProc)
	})
	env.Call(nginx.FnIndexedVar, 0, 0)

	out := Outcome{Completed: env.EventSince(kernel.EventExec, "/bin/sh")}
	if ke, okKill := env.LastErr.(*vm.KillError); okKill {
		out.Killed = true
		out.KilledBy = ke.By
		out.Reason = ke.Reason
	} else if env.LastErr != nil && !out.Completed {
		t.Fatalf("forged chain failed for environmental reasons: %v", env.LastErr)
	}
	return out
}

func TestForgedCallsiteChain(t *testing.T) {
	// Unprotected: the forged chain pops the shell.
	if out := runForgedChain(t, DefNone); !out.Completed {
		t.Fatalf("forged chain failed unprotected: %+v", out)
	}
	// CF catches the pivot via frame monotonicity (the forged frames sit
	// below the live ones; ascending forgery has nowhere to live here).
	if out := runForgedChain(t, DefCF); !out.Blocked() {
		t.Fatalf("CF missed the in-stack forged chain: %+v", out)
	}
	// AI blocks independently of stack geometry: the forged context has
	// no shadow history. This is the guarantee that survives even if an
	// adversary finds room to satisfy the walk (§11.1's residual).
	out := runForgedChain(t, DefAI)
	if !out.Blocked() || out.KilledBy != "monitor" {
		t.Fatalf("AI did not block the forged chain: %+v", out)
	}
	if out := runForgedChain(t, DefAll); !out.Blocked() {
		t.Fatalf("full BASTION did not block: %+v", out)
	}
}
