package attacks

import (
	"fmt"
	"strings"
	"testing"
)

// TestRefinedPoliciesPreserveVerdicts replays the full Table 6 matrix with
// the points-to–refined AllowedIndirect sets against the coarse
// address-taken baseline: every outcome — completion, kill, killer, and
// kill reason — must be byte-identical under every monitor defense.
// Refinement only removes statically impossible edges, so no attack may
// newly pass and no legitimate path may newly violate.
func TestRefinedPoliciesPreserveVerdicts(t *testing.T) {
	defenses := []Defense{DefCT, DefCF, DefAI, DefAll}
	for _, s := range Catalog() {
		for _, d := range defenses {
			refined := d
			refined.CoarsePolicies = false
			coarse := d
			coarse.CoarsePolicies = true

			outR, err := Execute(s, refined)
			if err != nil {
				t.Fatalf("%s under %s (refined): %v", s.ID, d.Name, err)
			}
			outC, err := Execute(s, coarse)
			if err != nil {
				t.Fatalf("%s under %s (coarse): %v", s.ID, d.Name, err)
			}
			r := fmt.Sprintf("%+v", outR)
			c := fmt.Sprintf("%+v", outC)
			if r != c {
				t.Errorf("%s under %s: verdict diverged\nrefined: %s\ncoarse:  %s", s.ID, d.Name, r, c)
			}
		}
	}
}

// TestRefinedPoliciesPreserveLegitimateInit: the legitimate application
// initialization phase (which drives every app's real indirect calls) must
// run violation-free under the refined policies in full enforcement mode.
func TestRefinedPoliciesPreserveLegitimateInit(t *testing.T) {
	for _, app := range []string{"nginx", "sqlite", "vsftpd", "apache"} {
		env, err := Launch(app, DefAll)
		if err != nil {
			t.Fatalf("%s: launch under refined policies: %v", app, err)
		}
		if env.LastErr != nil {
			t.Errorf("%s: legitimate init failed under refined policies: %v", app, env.LastErr)
		}
		if env.P.Machine.Halted() {
			t.Errorf("%s: guest halted during legitimate init", app)
		}
		if len(env.P.Monitor.Violations) != 0 {
			t.Errorf("%s: legitimate init raised violations: %v", app, env.P.Monitor.Violations)
		}
	}
}

// TestTable6RenderIdenticalCoarseVsRefined locks the strongest form of the
// acceptance criterion: the rendered Table 6 markdown (every verdict cell)
// is byte-identical whether the monitor enforces coarse or refined
// policies. Rendering goes through the same Evaluate path the report uses.
func TestTable6RenderIdenticalCoarseVsRefined(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix replay")
	}
	render := func(coarse bool) string {
		var b strings.Builder
		for _, s := range Catalog() {
			for _, d := range []Defense{DefCT, DefCF, DefAI, DefAll} {
				d.CoarsePolicies = coarse
				out, err := Execute(s, d)
				if err != nil {
					t.Fatalf("%s under %s: %v", s.ID, d.Name, err)
				}
				fmt.Fprintf(&b, "%s|%s|%v|%v|%s|%s\n", s.ID, d.Name, out.Completed, out.Killed, out.KilledBy, out.Reason)
			}
		}
		return b.String()
	}
	if r, c := render(false), render(true); r != c {
		t.Error("Table 6 verdict matrix differs between coarse and refined policies")
	}
}
