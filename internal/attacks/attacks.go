// Package attacks implements the security case studies of §10 (Table 6):
// 36 attacks spanning return-oriented programming, direct system call
// manipulation (NEWTON CsCFI, AOCR, CVE-derived exploits), and indirect
// manipulation (NEWTON CPI, COOP, Control Jujutsu), plus an ordering
// family in which every individual syscall is legitimate and only the
// syscall-flow context detects the replayed or reordered lifecycle
// phase. Each scenario stages
// its corruption against a real guest application using only the threat
// model's primitives — arbitrary memory read/write plus an application
// vulnerability trigger — and success is decided by observing kernel
// security events, not by scripted flags.
package attacks

import (
	"bytes"
	"errors"
	"fmt"

	"bastion/internal/apps/nginx"
	"bastion/internal/apps/sqlitedb"
	"bastion/internal/apps/vsftpd"
	"bastion/internal/baseline/cet"
	"bastion/internal/baseline/llvmcfi"
	"bastion/internal/core"
	"bastion/internal/core/monitor"
	"bastion/internal/ir"
	"bastion/internal/kernel"
	"bastion/internal/kernel/fs"
	"bastion/internal/obs"
	"bastion/internal/vm"
)

// Defense selects the protection configuration an attack runs against.
type Defense struct {
	Name       string
	UseMonitor bool
	Contexts   monitor.Context
	CET        bool
	CFI        bool
	// Mode selects the monitor mode (ModeFull by default); the
	// differential suite sweeps it.
	Mode monitor.Mode
	// VerdictCache enables the monitor's verdict cache, which must be
	// observationally invisible (the differential suite's contract).
	VerdictCache bool
	// CoarsePolicies runs the monitor on the pre-refinement
	// AllowedIndirect sets; the refinement replay suite asserts verdicts
	// are byte-identical either way.
	CoarsePolicies bool
	// ExtendFS traps the file-system syscall set as well — the §11.2
	// extension; the offload differential suite sweeps it so the offloaded
	// syscall set is non-trivial.
	ExtendFS bool
	// Offload answers CT-membership and constant-argument verdicts inside
	// the seccomp filter (monitor.Config.Offload); the offload differential
	// suite asserts verdicts are byte-identical with it on and off.
	Offload bool
	// Sink receives the monitor's decision trace. Telemetry never charges
	// cycles, so the traced replay suite asserts verdicts are identical
	// with and without it.
	Sink obs.Sink
	// FlightN enables the monitor's flight recorder.
	FlightN int
}

// Canonical defenses for the evaluation.
var (
	DefNone = Defense{Name: "unprotected"}
	DefCT   = Defense{Name: "CT", UseMonitor: true, Contexts: monitor.CallType}
	DefCF   = Defense{Name: "CF", UseMonitor: true, Contexts: monitor.ControlFlow}
	DefAI   = Defense{Name: "AI", UseMonitor: true, Contexts: monitor.ArgIntegrity}
	DefSF   = Defense{Name: "SF", UseMonitor: true, Contexts: monitor.SyscallFlow}
	DefAll  = Defense{Name: "BASTION", UseMonitor: true, Contexts: monitor.AllContexts}
	DefCET  = Defense{Name: "CET", CET: true}
	DefCFI  = Defense{Name: "LLVM-CFI", CFI: true}
)

// ClientConn is the client half of a guest connection, as attack payload
// delivery needs it.
type ClientConn interface {
	ClientWrite([]byte) (int, error)
	ClientReadAll() []byte
}

// Env is a launched application plus the attacker's toolbox.
type Env struct {
	App  string
	P    *core.Protected
	CET  *cet.ShadowStack
	CFI  *llvmcfi.CFI
	Conn ClientConn

	// LastErr records the most recent guest-execution error (kills land
	// here).
	LastErr error

	// clientFD is the established connection fd for connection-oriented
	// apps (sqlite).
	clientFD uint64
	// initRet is the app init function's return value (the listen fd for
	// the server apps).
	initRet uint64

	eventMark int
}

// ClientFD returns the pre-established connection's guest fd.
func (e *Env) ClientFD() uint64 { return e.clientFD }

// Call drives a guest function, recording any kill/fault.
func (e *Env) Call(fn string, args ...uint64) uint64 {
	if e.P.Machine.Halted() {
		return 0
	}
	v, err := e.P.Machine.CallFunction(fn, args...)
	if err != nil {
		e.LastErr = err
	}
	return v
}

// GlobalAddr resolves a guest global's address (attacker knows the layout;
// ASLR is assumed leaked, as in the paper's threat model).
func (e *Env) GlobalAddr(name string) uint64 {
	g := e.P.Machine.Prog.GlobalByName(name)
	if g == nil {
		panic("attacks: no global " + name)
	}
	return g.Addr
}

// FuncEntry resolves a function's entry address.
func (e *Env) FuncEntry(name string) uint64 {
	f := e.P.Machine.Prog.Func(name)
	if f == nil {
		panic("attacks: no function " + name)
	}
	return f.Base
}

// CallsiteRet returns the return address of the first direct call to
// target inside caller — the value a forged stack frame needs to look
// legitimate (the attacker reads it from the leaked binary).
func (e *Env) CallsiteRet(caller, target string) uint64 {
	f := e.P.Machine.Prog.Func(caller)
	if f == nil {
		panic("attacks: no function " + caller)
	}
	for i := range f.Code {
		in := &f.Code[i]
		if in.Kind == ir.Call && in.Sym == target {
			return f.InstrAddr(i + 1)
		}
	}
	panic("attacks: no callsite of " + target + " in " + caller)
}

// W performs the attacker's arbitrary 8-byte write.
func (e *Env) W(addr, v uint64) {
	if err := e.P.Machine.Mem.WriteUint(addr, v, 8); err != nil {
		e.LastErr = err
	}
}

// WB writes attacker bytes.
func (e *Env) WB(addr uint64, b []byte) {
	if err := e.P.Machine.Mem.Write(addr, b); err != nil {
		e.LastErr = err
	}
}

// R performs the attacker's arbitrary read.
func (e *Env) R(addr uint64) uint64 {
	v, err := e.P.Machine.Mem.ReadUint(addr, 8)
	if err != nil {
		e.LastErr = err
	}
	return v
}

// PlantString writes a NUL-terminated attacker string.
func (e *Env) PlantString(addr uint64, s string) {
	e.WB(addr, append([]byte(s), 0))
}

// Hook arms a breakpoint in the guest.
func (e *Env) Hook(fn string, idx int, h vm.Hook) {
	if err := e.P.Machine.HookFunc(fn, idx, h); err != nil {
		panic(err)
	}
}

// MarkEvents snapshots the kernel event log; goal checks consider only
// events after the mark, so init-phase activity never counts as success.
func (e *Env) MarkEvents() { e.eventMark = len(e.P.Proc.Events) }

// EventSince reports whether a matching kernel event occurred after the
// mark.
func (e *Env) EventSince(kind kernel.EventKind, substr string) bool {
	for _, ev := range e.P.Proc.Events[e.eventMark:] {
		if ev.Kind == kind && (substr == "" || bytes.Contains([]byte(ev.Detail), []byte(substr))) {
			return true
		}
	}
	return false
}

// FakeFrame writes a forged stack frame at bp: saved-rbp, return address,
// and param-slot words below it (params[i] lands at bp-8*(n-i)), matching
// the VM frame layout for a function with n word parameters and no locals.
func (e *Env) FakeFrame(bp, savedRBP, retaddr uint64, params ...uint64) {
	e.W(bp, savedRBP)
	e.W(bp+8, retaddr)
	n := uint64(len(params))
	for i, p := range params {
		e.W(bp-8*(n-uint64(i)), p)
	}
}

// HijackReturn overwrites the *current* frame's saved rbp / return address
// from inside a hook: the memory-corruption step of a ROP chain.
func HijackReturn(m *vm.Machine, newRBP, newRet uint64) error {
	if err := m.Mem.WriteUint(m.RBP(), newRBP, 8); err != nil {
		return err
	}
	return m.Mem.WriteUint(m.RBP()+8, newRet, 8)
}

// Scenario is one Table 6 attack.
type Scenario struct {
	ID       string
	Name     string
	Category string // "rop", "direct", "indirect", "ordering"
	Ref      string // the paper's citation
	App      string // nginx | sqlite | vsftpd | apache

	// Expected Table 6 verdicts: does each context block the attack?
	BlockCT, BlockCF, BlockAI bool
	// BlockSF: does the syscall-flow context, alone, block the attack?
	// True whenever the first attacker-caused sensitive syscall lands
	// outside the application's derived transition graph — which covers
	// most staged payloads (an execve after accept4 has no edge) and is
	// the only ✓ column for the "ordering" family, whose individual calls
	// are all legitimate.
	BlockSF bool

	// Goal decides completion from post-mark kernel events.
	GoalKind   kernel.EventKind
	GoalDetail string

	// Run stages the corruption and drives the application.
	Run func(e *Env)
}

// Outcome is the observed result of one scenario under one defense.
type Outcome struct {
	Completed bool
	Killed    bool
	KilledBy  string
	Reason    string
}

// Blocked reports whether the defense stopped the attack.
func (o Outcome) Blocked() bool { return !o.Completed && o.Killed }

// InstallFixtures writes the attack goal files (target shells, binaries,
// served content) into a kernel's filesystem. Launch installs them
// automatically; fleet supervisors call it on a tenant kernel before
// replaying a scenario against that tenant.
func InstallFixtures(k *kernel.Kernel) {
	k.FS.WriteFile("/bin/sh", []byte("#!"), fs.ModeRead|fs.ModeExec)
	k.FS.WriteFile("/bin/rootsh", []byte("#!"), fs.ModeRead|fs.ModeExec|fs.ModeSetUID)
	k.FS.WriteFile("/usr/sbin/nginx", []byte{0x7f}, fs.ModeRead|fs.ModeExec)
	k.FS.WriteFile("/usr/bin/apachectl", []byte{0x7f}, fs.ModeRead|fs.ModeExec)
	k.FS.WriteFile("/srv/index.html", bytes.Repeat([]byte("x"), 4096), fs.ModeRead)
	k.FS.WriteFile("/pub/file.bin", bytes.Repeat([]byte{0xab}, 16384), fs.ModeRead)
	k.FS.MkdirAll("/var/db", fs.ModeRead|fs.ModeWrite|fs.ModeExec)
}

// Adopt wraps an already-launched protected guest in an attack
// environment so a scenario can be replayed against it in place — the
// fleet supervisor's malicious-tenant injection. initRet is the guest's
// listen fd (the value Launch records from app init); conn and clientFD
// supply an established client connection for connection-oriented
// scenarios (nil/0 when the app's scenarios dial their own).
func Adopt(app string, p *core.Protected, initRet uint64, conn ClientConn, clientFD uint64) *Env {
	env := &Env{App: app, P: p, Conn: conn, clientFD: clientFD, initRet: initRet}
	env.MarkEvents()
	return env
}

// Replay runs one scenario against an adopted environment and reports the
// outcome, exactly as Execute decides it for a freshly-launched guest.
func Replay(s Scenario, env *Env) Outcome {
	s.Run(env)
	return outcomeOf(s, env)
}

// BuildApp returns a fresh, uncompiled program for one of the catalog
// applications (nginx | sqlite | vsftpd | apache).
func BuildApp(app string) (*ir.Program, error) {
	switch app {
	case "nginx":
		return nginx.Build(), nil
	case "sqlite":
		return sqlitedb.Build(), nil
	case "vsftpd":
		return vsftpd.Build(), nil
	case "apache":
		return buildApache(), nil
	}
	return nil, fmt.Errorf("attacks: unknown app %q", app)
}

// Launch builds, compiles, and starts the scenario's application under the
// given defense, returning an attack environment with the app initialized
// and one client connection established where applicable.
func Launch(app string, d Defense) (*Env, error) {
	prog, err := BuildApp(app)
	if err != nil {
		return nil, err
	}
	art, err := core.Compile(prog, core.CompileOptions{})
	if err != nil {
		return nil, err
	}
	return LaunchArtifact(app, art, d)
}

// LaunchArtifact starts an already-compiled artifact of the named
// application under the given defense. Launch is Compile + LaunchArtifact;
// the binary-only replay suite calls this directly to run a scenario's
// program under an *extracted* policy artifact instead of the compiler's.
func LaunchArtifact(app string, art *core.Artifact, d Defense) (*Env, error) {
	k := kernel.New(nil)
	InstallFixtures(k)
	var err error

	env := &Env{App: app}
	var vmOpts []vm.Option
	if d.CET {
		env.CET = cet.New()
		vmOpts = append(vmOpts, vm.WithMitigations(env.CET))
	}
	if d.CFI {
		env.CFI = llvmcfi.New(art.Prog)
		vmOpts = append(vmOpts, vm.WithMitigations(env.CFI))
	}
	vmOpts = append(vmOpts, vm.WithMaxSteps(1<<24))

	var prot *core.Protected
	if d.UseMonitor {
		cfg := monitor.DefaultConfig()
		cfg.Contexts = d.Contexts
		cfg.Mode = d.Mode
		cfg.VerdictCache = d.VerdictCache
		cfg.CoarsePolicies = d.CoarsePolicies
		cfg.ExtendFS = d.ExtendFS
		cfg.Offload = d.Offload
		cfg.Sink = d.Sink
		cfg.FlightN = d.FlightN
		prot, err = core.Launch(art, k, cfg, vmOpts...)
	} else {
		prot, err = core.LaunchUnprotected(art, k, vmOpts...)
	}
	if err != nil {
		return nil, err
	}
	env.P = prot

	// Application initialization (legitimate phase).
	switch app {
	case "nginx":
		up := k.Net.NewSocket()
		if err := k.Net.Bind(up, nginx.UpstreamPort); err != nil {
			return nil, err
		}
		if err := k.Net.Listen(up, 1024); err != nil {
			return nil, err
		}
		lfd, err := prot.Machine.CallFunction(nginx.FnInit, 2)
		if err != nil {
			return nil, fmt.Errorf("attacks: nginx init: %w", err)
		}
		env.initRet = lfd
	case "sqlite":
		lfd, err := prot.Machine.CallFunction(sqlitedb.FnInit, 2)
		if err != nil {
			return nil, fmt.Errorf("attacks: sqlite init: %w", err)
		}
		conn, err := k.Net.Dial(sqlitedb.Port)
		if err != nil {
			return nil, err
		}
		cfd, err := prot.Machine.CallFunction(sqlitedb.FnAccept, lfd)
		if err != nil {
			return nil, err
		}
		env.Conn = conn
		env.clientFD = cfd
		env.initRet = lfd
	case "vsftpd":
		lfd, err := prot.Machine.CallFunction(vsftpd.FnInit)
		if err != nil {
			return nil, fmt.Errorf("attacks: vsftpd init: %w", err)
		}
		env.initRet = lfd
	case "apache":
		if _, err := prot.Machine.CallFunction("ap_init"); err != nil {
			return nil, fmt.Errorf("attacks: apache init: %w", err)
		}
	}
	env.MarkEvents()
	return env, nil
}

// Execute runs one scenario under one defense.
func Execute(s Scenario, d Defense) (Outcome, error) {
	out, _, err := ExecuteEnv(s, d)
	return out, err
}

// ExecuteEnv runs one scenario under one defense and also returns the
// attack environment, giving callers (the differential test suite) access
// to the monitor's recorded violations and cache statistics.
func ExecuteEnv(s Scenario, d Defense) (Outcome, *Env, error) {
	env, err := Launch(s.App, d)
	if err != nil {
		return Outcome{}, nil, err
	}
	s.Run(env)
	return outcomeOf(s, env), env, nil
}

// outcomeOf decides a scenario's outcome from the environment's observed
// state: goal events for completion, the recorded guest error for kills.
func outcomeOf(s Scenario, env *Env) Outcome {
	out := Outcome{Completed: env.EventSince(s.GoalKind, s.GoalDetail)}
	var ke *vm.KillError
	if errors.As(env.LastErr, &ke) {
		out.Killed = true
		out.KilledBy = ke.By
		out.Reason = ke.Reason
	} else if env.LastErr != nil {
		var cf *vm.ControlFault
		if errors.As(env.LastErr, &cf) {
			out.KilledBy = "fault"
			out.Reason = cf.Why
		}
	}
	return out
}

// Verdict evaluates a scenario's Table 6 row: whether each context, run in
// isolation, blocks the attack.
type Verdict struct {
	Scenario       Scenario
	CT, CF, AI, SF bool
	// FullBlocked: all three contexts together stop the attack.
	FullBlocked bool
	// BaselineCompleted: the attack reaches its goal unprotected.
	BaselineCompleted bool
}

// Evaluate computes the verdict for one scenario.
func Evaluate(s Scenario) (Verdict, error) {
	v := Verdict{Scenario: s}
	base, err := Execute(s, DefNone)
	if err != nil {
		return v, err
	}
	v.BaselineCompleted = base.Completed
	for _, d := range []struct {
		def Defense
		dst *bool
	}{
		{DefCT, &v.CT}, {DefCF, &v.CF}, {DefAI, &v.AI}, {DefSF, &v.SF},
	} {
		out, err := Execute(s, d.def)
		if err != nil {
			return v, err
		}
		*d.dst = out.Blocked()
	}
	full, err := Execute(s, DefAll)
	if err != nil {
		return v, err
	}
	v.FullBlocked = full.Blocked()
	return v, nil
}

// ComparisonRow is one attack's outcome across every defense — the
// expanded form of the paper's §10 comparisons.
type ComparisonRow struct {
	Scenario Scenario
	// Blocked maps defense name to whether it stopped the attack.
	Blocked map[string]bool
	// KilledBy maps defense name to the terminating component.
	KilledBy map[string]string
}

// CompareDefenses runs the given scenarios against the standard defense
// set (unprotected, each context, full BASTION, CET, CFI).
func CompareDefenses(ids []string) ([]ComparisonRow, error) {
	defs := []Defense{DefNone, DefCT, DefCF, DefAI, DefSF, DefAll, DefCET, DefCFI}
	var rows []ComparisonRow
	for _, id := range ids {
		s, ok := ByID(id)
		if !ok {
			return nil, fmt.Errorf("attacks: unknown scenario %q", id)
		}
		row := ComparisonRow{Scenario: s, Blocked: map[string]bool{}, KilledBy: map[string]string{}}
		for _, d := range defs {
			out, err := Execute(s, d)
			if err != nil {
				return nil, fmt.Errorf("%s under %s: %w", id, d.Name, err)
			}
			row.Blocked[d.Name] = out.Blocked()
			row.KilledBy[d.Name] = out.KilledBy
		}
		rows = append(rows, row)
	}
	return rows, nil
}
