package attacks

import "testing"

// TestCombinedCETAndBastion deploys the paper's actual configuration —
// CET plus all three contexts together — against one attack per category:
// ROP dies at the shadow stack before any syscall, while data-only attacks
// slip past CET and die at the monitor.
func TestCombinedCETAndBastion(t *testing.T) {
	combined := Defense{Name: "CET+BASTION", UseMonitor: true, Contexts: DefAll.Contexts, CET: true}
	cases := map[string]string{ // id -> expected killer
		"rop-exec-01":     "cet",
		"rop-memperm-03":  "cet",
		"ind-aocr-nginx2": "monitor",
		"ind-coop":        "monitor",
		"direct-cscfi":    "seccomp",
	}
	for id, want := range cases {
		s, ok := ByID(id)
		if !ok {
			t.Fatalf("no scenario %s", id)
		}
		out, err := Execute(s, combined)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if out.Completed {
			t.Errorf("%s completed under CET+BASTION", id)
		}
		if out.KilledBy != want {
			t.Errorf("%s killed by %q (%s), want %q", id, out.KilledBy, out.Reason, want)
		}
	}
}

// TestDefenseInDepthMatrix: for every scenario, at least one individual
// context blocks — the Table 6 conclusion that "even if one context is
// bypassed, another can compensate".
func TestDefenseInDepthMatrix(t *testing.T) {
	for _, s := range Catalog() {
		if !(s.BlockCT || s.BlockCF || s.BlockAI || s.BlockSF) {
			t.Errorf("%s: no context expected to block", s.ID)
		}
		if s.Category == "ordering" {
			// The ordering family is the syscall-flow context's reason to
			// exist: every individual call is legitimate, so the per-trap
			// contexts all pass and only SF blocks.
			if s.BlockCT || s.BlockCF || s.BlockAI {
				t.Errorf("%s: ordering attacks must bypass the per-trap contexts", s.ID)
			}
			if !s.BlockSF {
				t.Errorf("%s: SF expected to block every ordering attack", s.ID)
			}
			continue
		}
		// AI is never bypassed across the Table 6 rows, matching the
		// paper's matrix where the AI column is all ✓.
		if !s.BlockAI {
			t.Errorf("%s: AI expected to block every Table 6 attack", s.ID)
		}
	}
}
