package attacks

import (
	"bastion/internal/apps/guestlibc"
	"bastion/internal/ir"
	"bastion/internal/kernel"
)

// buildApache assembles the minimal Apache-like guest used by the AOCR
// Apache case study (§10.3): exec_cmd legitimately reaches execve and is
// legitimately address-taken (registered in an exec hook), while a second,
// differently-typed logging hook provides the corruptible indirect
// callsite the attack hijacks.
func buildApache() *ir.Program {
	p := guestlibc.NewProgram()
	// exec_hook / log_hook: registered callback pointers.
	p.AddGlobal(&ir.Global{Name: "exec_hook", Size: 8})
	p.AddGlobal(&ir.Global{Name: "log_hook", Size: 8})
	// execline: the command line the server legitimately executes.
	p.AddGlobal(&ir.Global{Name: "execline", Size: 32})
	// logbuf: log staging area (attacker-writable data).
	p.AddGlobal(&ir.Global{Name: "logbuf", Size: 64})

	// exec_cmd(cmdline): execve(cmdline, 0, 0). Sig i64(i64).
	ec := ir.NewBuilder("exec_cmd", 1)
	cmd := ec.LoadLocal("p0")
	r := ec.Call("execve", ir.R(cmd), ir.Imm(0), ir.Imm(0))
	ec.Ret(ir.R(r))
	p.AddFunc(ec.Build())

	// ap_log_write(msg, n): write(2, msg, n). Sig i64(i64,i64).
	lw := ir.NewBuilder("ap_log_write", 2)
	msg := lw.LoadLocal("p0")
	n := lw.LoadLocal("p1")
	r2 := lw.Call("write", ir.Imm(2), ir.R(msg), ir.R(n))
	lw.Ret(ir.R(r2))
	p.AddFunc(lw.Build())

	// ap_run_exec(cmdline): dispatch through exec_hook. Callsite sig
	// i64(i64) — the class containing exec_cmd.
	re := ir.NewBuilder("ap_run_exec", 1)
	h := re.GlobalLea("exec_hook", 0)
	fn := re.Load(h, 0, 8)
	arg := re.LoadLocal("p0")
	r3 := re.CallInd(fn, "i64(i64)", ir.R(arg))
	re.Ret(ir.R(r3))
	p.AddFunc(re.Build())

	// ap_run_log(msg, n): dispatch through log_hook. Callsite sig
	// i64(i64,i64) — a class that cannot legitimately reach execve.
	rl := ir.NewBuilder("ap_run_log", 2)
	h2 := rl.GlobalLea("log_hook", 0)
	fn2 := rl.Load(h2, 0, 8)
	a0 := rl.LoadLocal("p0")
	a1 := rl.LoadLocal("p1")
	r4 := rl.CallInd(fn2, "i64(i64,i64)", ir.R(a0), ir.R(a1))
	rl.Ret(ir.R(r4))
	p.AddFunc(rl.Build())

	// ap_build_execline(): write the legitimate command line (shared by
	// both exec paths, so the origin is statically traceable from each).
	bl := ir.NewBuilder("ap_build_execline", 0)
	el := bl.GlobalLea("execline", 0)
	line := "/usr/bin/apachectl"
	for i := 0; i < len(line); i++ {
		bl.Store(el, int64(i), ir.Imm(int64(line[i])), 1)
	}
	bl.Store(el, int64(len(line)), ir.Imm(0), 1)
	bl.Ret(ir.Imm(0))
	p.AddFunc(bl.Build())

	// ap_get_exec_line(): build the command and run it through the exec
	// hook (the function AOCR targets).
	gl := ir.NewBuilder("ap_get_exec_line", 0)
	gl.Call("ap_build_execline")
	el2 := gl.GlobalLea("execline", 0)
	r5 := gl.Call("ap_run_exec", ir.R(el2))
	gl.Ret(ir.R(r5))
	p.AddFunc(gl.Build())

	// ap_exec_direct(): the direct call path to exec_cmd.
	ed := ir.NewBuilder("ap_exec_direct", 0)
	ed.Call("ap_build_execline")
	el3 := ed.GlobalLea("execline", 0)
	r6 := ed.Call("exec_cmd", ir.R(el3))
	ed.Ret(ir.R(r6))
	p.AddFunc(ed.Build())

	// ap_drop_privileges(): the master's switch to the unprivileged
	// worker identity once the exec window has closed. In main's CFG the
	// drop's setgid is the last sensitive syscall before steady-state
	// logging — the flow sentinel that makes any later exec an
	// out-of-graph transition.
	dp := ir.NewBuilder("ap_drop_privileges", 0)
	dp.Call("setuid", ir.Imm(48))
	dp.Call("setgid", ir.Imm(48))
	dp.Ret(ir.Imm(0))
	p.AddFunc(dp.Build())

	// ap_init(): register hooks, map a pool.
	in := ir.NewBuilder("ap_init", 0)
	in.Call("mmap", ir.Imm(0), ir.Imm(16384), ir.Imm(kernel.ProtRead|kernel.ProtWrite),
		ir.Imm(kernel.MapPrivate|kernel.MapAnonymous), ir.Imm(-1), ir.Imm(0))
	eh := in.GlobalLea("exec_hook", 0)
	ef := in.FuncAddr("exec_cmd")
	in.Store(eh, 0, ir.R(ef), 8)
	lh := in.GlobalLea("log_hook", 0)
	lf := in.FuncAddr("ap_log_write")
	in.Store(lh, 0, ir.R(lf), 8)
	in.Ret(ir.Imm(0))
	p.AddFunc(in.Build())

	// main's CFG covers both legitimate exec paths (guarded branches taken
	// only when a test drives them), then the privilege drop, then a log
	// loop — so the syscall-flow graph admits init→exec and repeated log
	// writes but places every exec strictly before the drop.
	mb := ir.NewBuilder("main", 0)
	mb.Local("i", 8)
	mb.Call("ap_init")
	mb.StoreLocal("i", ir.Imm(1))
	iv := mb.LoadLocal("i")
	execDirect := mb.Bin(ir.OpEq, ir.R(iv), ir.Imm(2))
	mb.BranchNZ(ir.R(execDirect), "exec_direct")
	execLine := mb.Bin(ir.OpEq, ir.R(iv), ir.Imm(3))
	mb.BranchNZ(ir.R(execLine), "exec_line")
	mb.Jump("drop")
	mb.Label("exec_direct")
	mb.Call("ap_exec_direct")
	mb.Jump("drop")
	mb.Label("exec_line")
	mb.Call("ap_get_exec_line")
	mb.Label("drop")
	mb.Call("ap_drop_privileges")
	mb.Label("logs")
	lb := mb.GlobalLea("logbuf", 0)
	mb.Call("ap_run_log", ir.R(lb), ir.Imm(4))
	iv2 := mb.LoadLocal("i")
	dec := mb.Bin(ir.OpAdd, ir.R(iv2), ir.Imm(-1))
	mb.StoreLocal("i", ir.R(dec))
	mb.BranchNZ(ir.R(dec), "logs")
	mb.Call("exit_group", ir.Imm(0))
	mb.Ret(ir.Imm(0))
	p.AddFunc(mb.Build())
	return p
}
