package attacks

import (
	"errors"
	"testing"

	"bastion/internal/kernel"
	"bastion/internal/vm"
)

// TestApacheLegitimateExecPaths: both the direct call and the legitimate
// exec-hook dispatch to exec_cmd must pass full protection — the control
// group for the AOCR Apache scenario.
func TestApacheLegitimateExecPaths(t *testing.T) {
	for _, entry := range []string{"ap_exec_direct", "ap_get_exec_line"} {
		env, err := Launch("apache", DefAll)
		if err != nil {
			t.Fatal(err)
		}
		env.P.Kernel.FS.WriteFile("/usr/bin/apachectl", []byte{0x7f}, 0o5)
		_, cerr := env.P.Machine.CallFunction(entry)
		var xe *vm.ExitError
		if cerr != nil && !errors.As(cerr, &xe) {
			t.Fatalf("%s under full protection: %v", entry, cerr)
		}
		if !env.P.Proc.HasEvent(kernel.EventExec, "/usr/bin/apachectl") {
			t.Fatalf("%s did not exec: %v", entry, env.P.Proc.Events)
		}
		if len(env.P.Monitor.Violations) != 0 {
			t.Fatalf("%s: violations %v", entry, env.P.Monitor.Violations)
		}
	}
}

// TestApacheLogHookBenign: the differently-typed log hook works normally.
func TestApacheLogHookBenign(t *testing.T) {
	env, err := Launch("apache", DefAll)
	if err != nil {
		t.Fatal(err)
	}
	lb := env.GlobalAddr("logbuf")
	// The program writes its own log line first (instrumented stores).
	if _, err := env.P.Machine.CallFunction("ap_run_log", lb, 0); err != nil {
		t.Fatalf("log dispatch: %v", err)
	}
	if len(env.P.Monitor.Violations) != 0 {
		t.Fatalf("violations: %v", env.P.Monitor.Violations)
	}
}
