package attacks

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bastion/internal/core"
	"bastion/internal/core/binscan"
)

var update = flag.Bool("update", false, "rewrite golden files")

// bsideArtifact compiles the app's traced artifact, then replaces its
// policy with the one the binary-only extractor recovers from the
// instrumented program itself. Extracting from the instrumented program
// (rather than a raw build) keeps every instruction index the attack
// hooks aim at valid, and the extractor's projections are
// instrumentation-invariant, so the policy is the same one a raw-binary
// extraction yields.
func bsideArtifact(t *testing.T, app string) *core.Artifact {
	t.Helper()
	prog, err := BuildApp(app)
	if err != nil {
		t.Fatalf("%s: %v", app, err)
	}
	art, err := core.Compile(prog, core.CompileOptions{})
	if err != nil {
		t.Fatalf("%s: compile: %v", app, err)
	}
	res, err := binscan.Extract(art.Prog, binscan.Options{})
	if err != nil {
		t.Fatalf("%s: extract: %v", app, err)
	}
	return &core.Artifact{Prog: art.Prog, Meta: res.Meta}
}

// verdict reduces an outcome to the matrix cell vocabulary.
func verdict(o Outcome) string {
	if o.Blocked() {
		return "caught"
	}
	if o.Completed {
		return "missed"
	}
	return "no-goal"
}

// TestBsideAttackMatrixGolden replays the full Table 6 catalog under the
// extracted (B-Side) policy with all contexts enabled, next to the
// compiler-traced baseline, and pins the caught/missed delta column
// byte-for-byte. "=" means both regimes agree, "-" marks an attack only
// the traced policy stops (the price of binary-only extraction), "+"
// would mark one only the extracted policy stops.
// Regenerate with: go test ./internal/attacks/ -run BsideAttackMatrix -update
func TestBsideAttackMatrixGolden(t *testing.T) {
	arts := map[string]*core.Artifact{}
	var b strings.Builder
	b.WriteString("b-side attack matrix: Table 6 catalog, traced vs extracted policy (all contexts)\n")
	fmt.Fprintf(&b, "  %-22s %-8s %-8s %-10s %s\n", "id", "app", "traced", "extracted", "delta")
	var caughtTraced, caughtExtracted, lost, gained int
	for _, s := range Catalog() {
		outT, err := Execute(s, DefAll)
		if err != nil {
			t.Fatalf("%s traced: %v", s.ID, err)
		}
		art := arts[s.App]
		if art == nil {
			art = bsideArtifact(t, s.App)
			arts[s.App] = art
		}
		env, err := LaunchArtifact(s.App, art, DefAll)
		if err != nil {
			t.Fatalf("%s extracted launch: %v", s.ID, err)
		}
		outB := Replay(s, env)

		vt, vb := verdict(outT), verdict(outB)
		delta := "="
		switch {
		case outT.Blocked() && !outB.Blocked():
			delta = "-"
			lost++
		case !outT.Blocked() && outB.Blocked():
			delta = "+"
			gained++
		}
		if outT.Blocked() {
			caughtTraced++
		}
		if outB.Blocked() {
			caughtExtracted++
		}
		fmt.Fprintf(&b, "  %-22s %-8s %-8s %-10s %s\n", s.ID, s.App, vt, vb, delta)
	}
	fmt.Fprintf(&b, "summary: %d scenarios, traced caught %d, extracted caught %d (%d lost, %d gained)\n",
		len(Catalog()), caughtTraced, caughtExtracted, lost, gained)

	got := b.String()
	path := filepath.Join("testdata", "bside_matrix.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("b-side matrix diverged from golden\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestBsideLegitimateInit: the legitimate initialization phase of every
// catalog application — apache included, which the workload soundness
// gate does not cover — must run violation-free under the extracted
// policy in full enforcement mode.
func TestBsideLegitimateInit(t *testing.T) {
	for _, app := range []string{"nginx", "sqlite", "vsftpd", "apache"} {
		env, err := LaunchArtifact(app, bsideArtifact(t, app), DefAll)
		if err != nil {
			t.Fatalf("%s: launch under extracted policy: %v", app, err)
		}
		if env.LastErr != nil {
			t.Errorf("%s: legitimate init failed under extracted policy: %v", app, env.LastErr)
		}
		if len(env.P.Monitor.Violations) != 0 {
			t.Errorf("%s: legitimate init raised violations: %v", app, env.P.Monitor.Violations)
		}
	}
}
