package attacks

import "testing"

// TestCFIMatrix runs the whole catalog against coarse CFI alone,
// documenting exactly which attack families it stops — the §10 comparison
// expanded to every scenario. Our CFI model (address-taken + type match)
// is slightly stricter than Clang's production scheme, so the raw-stub
// redirects below are blocked here that bypassed LLVM CFI in the paper;
// the attacks the paper highlights as CFI bypasses (legit-control-flow and
// non-pointer corruption) bypass ours identically.
func TestCFIMatrix(t *testing.T) {
	// expectBlock: attacks whose corrupted indirect call targets a
	// non-address-taken or type-mismatched function.
	expectBlock := map[string]bool{
		"direct-cscfi":       true, // setreuid stub: never address-taken
		"direct-aocr-nginx1": true, // socket stub: type matches, not taken
		"cve-2016-10190":     true, // execve stub via filter pointer
		"cve-2016-10191":     true, // execve stub via handler table
		"cve-2015-8617":      true, // execve stub via OOB entry
		"ind-newton-cpi":     true, // chmod stub via OOB index
		"ind-aocr-apache":    true, // exec_cmd: taken but type-mismatched
	}
	for _, s := range Catalog() {
		s := s
		t.Run(s.ID, func(t *testing.T) {
			out, err := Execute(s, DefCFI)
			if err != nil {
				t.Fatalf("Execute: %v", err)
			}
			blocked := out.KilledBy == "cfi"
			if blocked != expectBlock[s.ID] {
				t.Errorf("CFI blocked=%v (killed by %q, %s), want %v",
					blocked, out.KilledBy, out.Reason, expectBlock[s.ID])
			}
			if !expectBlock[s.ID] && !out.Completed {
				// ROP and legit-flow attacks must sail past CFI entirely.
				t.Errorf("expected CFI bypass but attack did not complete: %+v", out)
			}
		})
	}
}
