package attacks

import (
	"testing"

	"bastion/internal/core/monitor"
)

func TestCatalogHas36Scenarios(t *testing.T) {
	cat := Catalog()
	if len(cat) != 36 {
		t.Fatalf("catalog has %d scenarios, want 36 (Table 6 + ordering)", len(cat))
	}
	seen := map[string]bool{}
	counts := map[string]int{}
	for _, s := range cat {
		if seen[s.ID] {
			t.Errorf("duplicate scenario id %q", s.ID)
		}
		seen[s.ID] = true
		counts[s.Category]++
		if s.Run == nil {
			t.Errorf("%s has no Run", s.ID)
		}
	}
	if counts["rop"] != 18 || counts["direct"] != 9 || counts["indirect"] != 5 || counts["ordering"] != 4 {
		t.Fatalf("category counts = %v, want rop=18 direct=9 indirect=5 ordering=4", counts)
	}
}

// TestTable6 evaluates every scenario: the attack must complete
// unprotected, each context must block exactly per the paper's ✓/× marks,
// and the full three-context configuration must always block.
func TestTable6(t *testing.T) {
	for _, s := range Catalog() {
		s := s
		t.Run(s.ID, func(t *testing.T) {
			v, err := Evaluate(s)
			if err != nil {
				t.Fatalf("Evaluate: %v", err)
			}
			if !v.BaselineCompleted {
				t.Fatalf("attack does not complete unprotected")
			}
			if v.CT != s.BlockCT {
				t.Errorf("CT blocked=%v, want %v", v.CT, s.BlockCT)
			}
			if v.CF != s.BlockCF {
				t.Errorf("CF blocked=%v, want %v", v.CF, s.BlockCF)
			}
			if v.AI != s.BlockAI {
				t.Errorf("AI blocked=%v, want %v", v.AI, s.BlockAI)
			}
			if v.SF != s.BlockSF {
				t.Errorf("SF blocked=%v, want %v", v.SF, s.BlockSF)
			}
			if !v.FullBlocked {
				t.Errorf("full BASTION did not block")
			}
		})
	}
}

// TestCETBlocksROP: the hardware shadow stack stops every return hijack in
// the ROP category before any syscall fires.
func TestCETBlocksROP(t *testing.T) {
	for _, s := range Catalog() {
		if s.Category != "rop" {
			continue
		}
		s := s
		t.Run(s.ID, func(t *testing.T) {
			out, err := Execute(s, DefCET)
			if err != nil {
				t.Fatalf("Execute: %v", err)
			}
			if out.Completed {
				t.Fatalf("ROP completed under CET")
			}
			if out.KilledBy != "cet" {
				t.Fatalf("killed by %q (%s), want cet", out.KilledBy, out.Reason)
			}
		})
	}
}

// TestCFIMissesLegitFlowAttacks: the indirect attacks that reuse
// type-compatible, address-taken functions slip past coarse CFI — the
// paper's §10.3 point.
func TestCFIOutcomes(t *testing.T) {
	cases := map[string]bool{ // id -> expect CFI to block
		"ind-jujutsu":     false, // type-matched, address-taken: bypass
		"ind-aocr-nginx2": false, // legitimate control flow: bypass
		"ind-coop":        false, // no indirect call corruption: bypass
		"direct-cscfi":    true,  // raw stub is not address-taken
	}
	for id, expectBlock := range cases {
		s, ok := ByID(id)
		if !ok {
			t.Fatalf("no scenario %s", id)
		}
		out, err := Execute(s, DefCFI)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		blocked := out.KilledBy == "cfi"
		if blocked != expectBlock {
			t.Errorf("%s: CFI blocked=%v (by %q), want %v", id, blocked, out.KilledBy, expectBlock)
		}
		if !expectBlock && !out.Completed {
			t.Errorf("%s: expected completion under CFI, got killed by %q (%s)", id, out.KilledBy, out.Reason)
		}
	}
}

// TestMonitorViolationContextsMatchVerdicts cross-checks a ReportOnly run:
// the set of violated contexts under all-contexts reporting must cover
// every context that blocks in isolation.
func TestReportOnlyCoversVerdicts(t *testing.T) {
	for _, id := range []string{"rop-exec-01", "ind-aocr-nginx2", "ind-jujutsu", "direct-aocr-nginx1"} {
		s, ok := ByID(id)
		if !ok {
			t.Fatalf("no scenario %s", id)
		}
		env, err := Launch(s.App, Defense{Name: "report", UseMonitor: true, Contexts: monitor.AllContexts})
		if err != nil {
			t.Fatal(err)
		}
		env.P.Monitor.Cfg.ReportOnly = true
		s.Run(env)
		got := env.P.Monitor.ViolatedContexts()
		want := monitor.Context(0)
		if s.BlockCT {
			want |= monitor.CallType
		}
		if s.BlockCF {
			want |= monitor.ControlFlow
		}
		if s.BlockAI {
			want |= monitor.ArgIntegrity
		}
		if s.BlockSF {
			want |= monitor.SyscallFlow
		}
		// ReportOnly runs let the attack proceed past earlier checks, so
		// the violated set must at least include every expected context
		// (it may include more, since later stages misbehave further).
		if got&want != want {
			t.Errorf("%s: violated=%v, want at least %v (violations: %v)",
				id, got, want, env.P.Monitor.Violations)
		}
	}
}
