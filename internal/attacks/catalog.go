package attacks

import (
	"fmt"

	"bastion/internal/apps/nginx"
	"bastion/internal/apps/sqlitedb"
	"bastion/internal/apps/vsftpd"
	"bastion/internal/ir"
	"bastion/internal/kernel"
	"bastion/internal/vm"
)

// stageKind selects where a ROP payload stages its fake frames.
type stageKind int

const (
	stageScratch stageKind = iota // a writable global (nginx "scratch")
	stagePool                     // the application's first mmap'd pool
	stageStack                    // above the live frames in the stack
)

// poolBase is a writable page inside the victim's first large anonymous
// mapping (the first page is often mprotect'd read-only by the apps'
// own hardening, so payloads stage one page cluster in). The address is
// deterministic; the paper's threat model grants the attacker the leak.
const poolBase uint64 = 0x7f00_0000_4000

// Catalog returns all 36 scenarios in the table's order: the 32 Table 6
// rows followed by the syscall-flow ordering family.
func Catalog() []Scenario {
	var out []Scenario
	out = append(out, ropExecScenarios()...)
	out = append(out, ropRootScenario())
	out = append(out, ropMemPermScenarios()...)
	out = append(out, directScenarios()...)
	out = append(out, indirectScenarios()...)
	out = append(out, orderingScenarios()...)
	return out
}

// ByID returns the scenario with the given ID.
func ByID(id string) (Scenario, bool) {
	for _, s := range Catalog() {
		if s.ID == id {
			return s, true
		}
	}
	return Scenario{}, false
}

// --- ROP: execute user command (13 exploit-db style payloads) ---

// ropExecVariant describes one payload flavor.
type ropExecVariant struct {
	ref    string
	stage  stageKind
	entry  string // "proc": ret2 ngx_execute_proc; "wrapper": ret2 execve stub
	victim string // function whose frame the overflow smashes
	argv   bool   // build a fake argv array as well
}

func ropExecScenarios() []Scenario {
	variants := []ropExecVariant{
		{"[1]", stageScratch, "proc", nginx.FnHandleRequest, false},
		{"[3]", stagePool, "proc", nginx.FnHandleRequest, false},
		{"[5]", stageStack, "proc", nginx.FnHandleRequest, false},
		{"[7]", stageScratch, "wrapper", nginx.FnHandleRequest, false},
		{"[8]", stagePool, "wrapper", nginx.FnHandleRequest, false},
		{"[13]", stageStack, "wrapper", nginx.FnHandleRequest, false},
		{"[15]", stageScratch, "proc", nginx.FnOutputChain, false},
		{"[16]", stagePool, "proc", nginx.FnOutputChain, true},
		{"[17]", stageScratch, "wrapper", nginx.FnOutputChain, true},
		{"[18]", stagePool, "wrapper", nginx.FnIndexedVar, false},
		{"[19]", stageScratch, "proc", nginx.FnIndexedVar, true},
		{"[20]", stageStack, "wrapper", nginx.FnIndexedVar, false},
		{"[11a]", stagePool, "proc", nginx.FnIndexedVar, true},
	}
	out := make([]Scenario, 0, len(variants))
	for i, v := range variants {
		v := v
		out = append(out, Scenario{
			ID:       fmt.Sprintf("rop-exec-%02d", i+1),
			Name:     fmt.Sprintf("ROP: execute user command (%s, %s via %s)", v.entry, stageName(v.stage), v.victim),
			Category: "rop",
			Ref:      v.ref,
			App:      "nginx",
			BlockCT:  false, BlockCF: true, BlockAI: true,
			GoalKind: kernel.EventExec, GoalDetail: "/bin/sh",
			Run: func(e *Env) { runRopExec(e, v, "/bin/sh") },
		})
	}
	return out
}

func ropRootScenario() Scenario {
	v := ropExecVariant{ref: "[11]", stage: stageScratch, entry: "proc", victim: nginx.FnHandleRequest}
	return Scenario{
		ID:       "rop-exec-root",
		Name:     "ROP: execute root command",
		Category: "rop",
		Ref:      "[11]",
		App:      "nginx",
		BlockCT:  false, BlockCF: true, BlockAI: true,
		GoalKind: kernel.EventExec, GoalDetail: "/bin/rootsh",
		Run: func(e *Env) { runRopExec(e, v, "/bin/rootsh") },
	}
}

func stageName(k stageKind) string {
	switch k {
	case stagePool:
		return "heap-pool"
	case stageStack:
		return "stack"
	}
	return "globals"
}

// runRopExec stages the payload and smashes the victim's frame.
//
// The payload forges a *valid* innermost callsite (the attacker read the
// binary), which is what makes the call-type context bypassable — the
// Table 6 "CT ×" for the ROP rows. The chain does not reconstruct a full
// legitimate frame chain, so control-flow catches it (region / unclean
// termination), and the staged exec context has no shadow history, so
// argument integrity catches it too.
func runRopExec(e *Env, v ropExecVariant, shell string) {
	stage := stageAddr(e, v.stage)
	// Attacker exec context at stage+0; shell string at stage+32; argv
	// array (optional) at stage+48.
	e.PlantString(stage+32, shell)
	argv := uint64(0)
	if v.argv {
		e.W(stage+48, stage+32)
		e.W(stage+56, 0)
		argv = stage + 48
	}
	e.W(stage+0, stage+32) // ctx->path
	e.W(stage+8, argv)     // ctx->argv
	e.W(stage+16, 0)       // ctx->envp

	execProc := e.FuncEntry(nginx.FnExecuteProc)
	wrapper := e.FuncEntry("execve")
	forged := e.CallsiteRet(nginx.FnExecuteProc, "execve")

	e.Hook(v.victim, 1, func(m *vm.Machine) error {
		pv := stage + 96
		if v.stage == stageStack {
			// Deep, unused stack space below the live frames.
			pv = m.RBP() - 0x8000
		}
		if v.entry == "proc" {
			// ngx_execute_proc(cycle, data): 2 params below the pivot.
			m.Mem.WriteUint(pv-16, 0, 8)     // cycle
			m.Mem.WriteUint(pv-8, stage, 8)  // data -> fake ctx
			m.Mem.WriteUint(pv, 0, 8)        // chain "bottom"
			m.Mem.WriteUint(pv+8, forged, 8) // unused next gadget slot
			return HijackReturn(m, pv, execProc)
		}
		// Direct ret into the execve stub with a forged valid return site.
		m.Mem.WriteUint(pv-24, stage+32, 8) // path
		m.Mem.WriteUint(pv-16, argv, 8)     // argv
		m.Mem.WriteUint(pv-8, 0, 8)         // envp
		m.Mem.WriteUint(pv, 0, 8)           // fake saved rbp: chain ends
		m.Mem.WriteUint(pv+8, forged, 8)    // forged innermost callsite
		return HijackReturn(m, pv, wrapper)
	})
	driveNginxVictim(e, v.victim)
}

// stageAddr resolves the staging base for a payload.
func stageAddr(e *Env, k stageKind) uint64 {
	switch k {
	case stagePool:
		return poolBase
	case stageStack:
		// The in-stack variant stages relative to the live frame at hook
		// time; the static parts still live in scratch.
		return e.GlobalAddr("scratch")
	}
	return e.GlobalAddr("scratch")
}

// driveNginxVictim triggers the hooked function through the normal
// request path.
func driveNginxVictim(e *Env, victim string) {
	switch victim {
	case nginx.FnHandleRequest:
		conn, err := e.P.Kernel.Net.Dial(nginx.Port)
		if err != nil {
			e.LastErr = err
			return
		}
		conn.ClientWrite([]byte("GET /index.html HTTP/1.1\r\n\r\n"))
		e.Call(nginx.FnHandleRequest, e.initRet)
	case nginx.FnOutputChain:
		// Drive the output chain directly with a benign descriptor.
		e.Call(nginx.FnOutputChain, e.GlobalAddr("scratch")+104)
	case nginx.FnIndexedVar:
		e.Call(nginx.FnIndexedVar, 0, 0)
	}
}

// --- ROP: alter memory permission (4 payloads) ---

func ropMemPermScenarios() []Scenario {
	type variant struct {
		ref   string
		app   string
		stage stageKind
		// sf: whether the payload's first sensitive syscall also falls
		// outside the app's transition graph (the sqlite variant fires
		// mprotect from the txn loop, where mprotect edges are legal).
		sf bool
	}
	variants := []variant{
		{"[2]", "nginx", stageScratch, true},
		{"[4]", "nginx", stageStack, true},
		{"[6]", "sqlite", stagePool, false},
		{"[12]", "vsftpd", stagePool, true},
	}
	out := make([]Scenario, 0, len(variants))
	for i, v := range variants {
		v := v
		out = append(out, Scenario{
			ID:       fmt.Sprintf("rop-memperm-%02d", i+1),
			Name:     fmt.Sprintf("ROP: alter memory permission (%s)", v.app),
			Category: "rop",
			Ref:      v.ref,
			App:      v.app,
			BlockCT:  false, BlockCF: true, BlockAI: true, BlockSF: v.sf,
			GoalKind: kernel.EventMemExec, GoalDetail: "W+X",
			Run: func(e *Env) { runRopMemPerm(e, v.app, v.stage) },
		})
	}
	return out
}

func runRopMemPerm(e *Env, app string, stage stageKind) {
	// Target region to make writable+executable.
	var target uint64
	var victim string
	var forged uint64
	switch app {
	case "nginx":
		target = poolBase // first worker pool
		victim = nginx.FnHandleRequest
		forged = e.CallsiteRet("ngx_worker_init", "mprotect")
	case "sqlite":
		target = e.R(e.GlobalAddr("db_state") + 8) // row table
		victim = sqlitedb.FnTxn
		forged = e.CallsiteRet(sqlitedb.FnTxn, "mprotect")
	case "vsftpd":
		target = poolBase
		victim = vsftpd.FnSession
		forged = e.CallsiteRet(vsftpd.FnInit, "mprotect")
	}
	wrapper := e.FuncEntry("mprotect")
	staging := target // fake frames inside the (writable) target region

	e.Hook(victim, 1, func(m *vm.Machine) error {
		pv := staging + 512
		if stage == stageStack {
			pv = m.RBP() - 0x8000
		}
		m.Mem.WriteUint(pv-24, target, 8) // addr
		m.Mem.WriteUint(pv-16, 4096, 8)   // len
		m.Mem.WriteUint(pv-8, 7, 8)       // PROT_RWX
		m.Mem.WriteUint(pv, 0, 8)
		m.Mem.WriteUint(pv+8, forged, 8)
		return HijackReturn(m, pv, wrapper)
	})

	switch app {
	case "nginx":
		driveNginxVictim(e, victim)
	case "sqlite":
		e.Conn.ClientWrite([]byte("NEWORDER 7 3"))
		e.Call(sqlitedb.FnTxn, e.ClientFD())
	case "vsftpd":
		conn, err := e.P.Kernel.Net.Dial(vsftpd.ControlPort)
		if err != nil {
			e.LastErr = err
			return
		}
		conn.ClientWrite([]byte("USER x\r\n"))
		e.Call(vsftpd.FnSession, e.initRet)
	}
}

// --- Direct system call manipulation ---

func directScenarios() []Scenario {
	out := []Scenario{
		{
			ID:       "direct-cscfi",
			Name:     "NEWTON CsCFI: corrupt code pointer to a never-used syscall (setreuid)",
			Category: "direct",
			Ref:      "[93]",
			App:      "nginx",
			BlockCT:  true, BlockCF: true, BlockAI: true,
			// setreuid is never trapped legitimately, so it has no node in
			// the transition graph at all — SF blocks it too.
			BlockSF:  true,
			GoalKind: kernel.EventSetuid, GoalDetail: "reuid",
			Run: func(e *Env) {
				// NGINX uses setuid but never setreuid: its stub exists in
				// libc yet no callsite references it — the CsCFI premise
				// (mprotect-for-the-loader in the paper). Redirect the
				// output filter pointer at the stub; the filter context
				// becomes the first argument.
				e.W(e.GlobalAddr("chain_ctx"), e.FuncEntry("setreuid"))
				e.W(e.GlobalAddr("chain_ctx")+8, 33) // ruid
				e.Call(nginx.FnOutputChain, 33)      // euid via 'in'
			},
		},
		{
			ID:       "direct-aocr-nginx1",
			Name:     "AOCR NGINX Attack 1: type-matched pointer redirect to socket",
			Category: "direct",
			Ref:      "[81]",
			App:      "nginx",
			BlockCT:  true, BlockCF: true, BlockAI: true,
			GoalKind: kernel.EventSocket, GoalDetail: "socket created",
			Run: func(e *Env) {
				// The socket stub's signature matches the get_handler
				// callsite (3 args) — the AOCR type-collision premise.
				e.W(e.GlobalAddr("var_handlers"), e.FuncEntry("socket"))
				e.Call(nginx.FnIndexedVar, 2, 0)
			},
		},
	}
	out = append(out, cveScenarios()...)
	return out
}

func cveScenarios() []Scenario {
	mk := func(id, name, app string, goalKind kernel.EventKind, goalDetail string, run func(e *Env)) Scenario {
		return Scenario{
			ID: id, Name: name, Category: "direct", Ref: id, App: app,
			BlockCT: true, BlockCF: true, BlockAI: true,
			GoalKind: goalKind, GoalDetail: goalDetail,
			Run: run,
		}
	}
	// sf marks rows whose payload syscall is also an out-of-graph
	// transition (chmod has no node anywhere; vsftpd's pool mprotect and
	// sqlite's txn-loop execve have no inbound edge from the drive point).
	sf := func(s Scenario) Scenario {
		s.BlockSF = true
		return s
	}
	return []Scenario{
		mk("cve-2013-2028", "nginx chunked-body stack smash -> execve stub", "nginx",
			kernel.EventExec, "/bin/sh", func(e *Env) {
				runRawStubROP(e, nginx.FnHandleRequest, "execve",
					[]uint64{e.GlobalAddr("scratch") + 32, 0, 0}, "/bin/sh")
				driveNginxVictim(e, nginx.FnHandleRequest)
			}),
		mk("cve-2016-10190", "ffmpeg-style heap overflow -> filter pointer -> execve stub", "nginx",
			kernel.EventExec, "/bin/sh", func(e *Env) {
				e.PlantString(e.GlobalAddr("scratch")+32, "/bin/sh")
				e.W(e.GlobalAddr("chain_ctx"), e.FuncEntry("execve"))
				e.W(e.GlobalAddr("chain_ctx")+8, e.GlobalAddr("scratch")+32)
				e.Call(nginx.FnOutputChain, 0)
			}),
		mk("cve-2016-10191", "ffmpeg-style overflow -> handler table -> execve stub", "nginx",
			kernel.EventExec, "/bin/sh", func(e *Env) {
				e.PlantString(e.GlobalAddr("scratch")+32, "/bin/sh")
				e.W(e.GlobalAddr("var_handlers"), e.FuncEntry("execve"))
				e.Call(nginx.FnIndexedVar, e.GlobalAddr("scratch")+32, 0)
			}),
		mk("cve-2015-8617", "php-style format string -> OOB handler entry -> execve stub", "nginx",
			kernel.EventExec, "/bin/sh", func(e *Env) {
				sc := e.GlobalAddr("scratch")
				e.PlantString(sc+32, "/bin/sh")
				e.W(sc, e.FuncEntry("execve")) // fake entry handler
				e.W(sc+8, 0)                   // fake entry data
				idx := (sc - e.GlobalAddr("var_handlers")) / 16
				e.Call(nginx.FnIndexedVar, sc+32, idx)
			}),
		sf(mk("cve-2012-0809", "sudo-style corruption -> chmod stub (setuid bit)", "vsftpd",
			kernel.EventChmod, "/pub/file.bin", func(e *Env) {
				runVsftpdOverflow(e, "chmod",
					[]uint64{poolBase + 256, 0o4777}, "/pub/file.bin", poolBase+256)
			})),
		sf(mk("cve-2014-8668", "libtiff-style overflow -> mprotect stub (RWX)", "vsftpd",
			kernel.EventMemExec, "W+X", func(e *Env) {
				runVsftpdOverflow(e, "mprotect", []uint64{poolBase, 4096, 7}, "", 0)
			})),
		sf(mk("cve-2014-1912", "python-style buffer overflow -> execve stub", "sqlite",
			kernel.EventExec, "/bin/sh", func(e *Env) {
				tbl := e.R(e.GlobalAddr("db_state") + 8)
				e.PlantString(tbl+600, "/bin/sh")
				runRawStubROPAt(e, sqlitedb.FnTxn, "execve",
					[]uint64{tbl + 600, 0, 0}, tbl+704)
				e.Conn.ClientWrite([]byte("NEWORDER 9 1"))
				e.Call(sqlitedb.FnTxn, e.ClientFD())
			})),
	}
}

// runRawStubROP smashes the victim's frame to return into a syscall stub
// with a garbage return site (the classic exploit payload that never heard
// of BASTION): staged in nginx scratch.
func runRawStubROP(e *Env, victim, stub string, args []uint64, shell string) {
	sc := e.GlobalAddr("scratch")
	if shell != "" {
		e.PlantString(sc+32, shell)
	}
	runRawStubROPAt(e, victim, stub, args, sc+96)
}

// runRawStubROPAt stages the fake stub frame at pv.
func runRawStubROPAt(e *Env, victim, stub string, args []uint64, pv uint64) {
	entry := e.FuncEntry(stub)
	e.Hook(victim, 1, func(m *vm.Machine) error {
		n := uint64(len(args))
		for i, a := range args {
			m.Mem.WriteUint(pv-8*(n-uint64(i)), a, 8)
		}
		m.Mem.WriteUint(pv, 0, 8)
		m.Mem.WriteUint(pv+8, 0x00414141, 8) // raw gadget address
		return HijackReturn(m, pv, entry)
	})
}

// runVsftpdOverflow delivers a real oversized login command that smashes
// ftp_session_open's 64-byte buffer, pivoting into a pre-staged fake frame
// in the session pool.
func runVsftpdOverflow(e *Env, stub string, args []uint64, plantStr string, plantAt uint64) {
	if plantStr != "" {
		e.PlantString(plantAt, plantStr)
	}
	pv := poolBase + 1024
	n := uint64(len(args))
	for i, a := range args {
		e.W(pv-8*(n-uint64(i)), a)
	}
	e.W(pv, 0)
	e.W(pv+8, 0x00414141)

	// Payload: 72 pad bytes reach the saved rbp, then [rbp]=pv,
	// [rbp+8]=stub entry.
	payload := make([]byte, 88)
	for i := 0; i < 72; i++ {
		payload[i] = 'A'
	}
	putLE(payload[72:], pv)
	putLE(payload[80:], e.FuncEntry(stub))

	conn, err := e.P.Kernel.Net.Dial(vsftpd.ControlPort)
	if err != nil {
		e.LastErr = err
		return
	}
	conn.ClientWrite(payload)
	e.Call(vsftpd.FnSession, e.initRet)
}

func putLE(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// --- Indirect system call manipulation ---

func indirectScenarios() []Scenario {
	return []Scenario{
		{
			ID:       "ind-newton-cpi",
			Name:     "NEWTON CPI: non-pointer index corruption -> chmod stub",
			Category: "indirect",
			Ref:      "[93]",
			App:      "nginx",
			BlockCT:  true, BlockCF: true, BlockAI: true,
			// chmod never appears in nginx's graph: no node, SF blocks.
			BlockSF:  true,
			GoalKind: kernel.EventChmod, GoalDetail: "/bin/sh",
			Run: func(e *Env) {
				// Listing 2: corrupt only the index; the fake v[] entry
				// lives in attacker-seeded globals.
				sc := e.GlobalAddr("scratch")
				e.PlantString(sc+32, "/bin/sh")
				e.W(sc, e.FuncEntry("chmod")) // fake get_handler
				e.W(sc+8, 0o4777)             // fake data (mode)
				idx := (sc - e.GlobalAddr("var_handlers")) / 16
				e.Call(nginx.FnIndexedVar, sc+32, idx)
			},
		},
		{
			ID:       "ind-aocr-apache",
			Name:     "AOCR Apache: hijack differently-typed hook onto exec_cmd",
			Category: "indirect",
			Ref:      "[81]",
			App:      "apache",
			BlockCT:  false, BlockCF: true, BlockAI: true,
			GoalKind: kernel.EventExec, GoalDetail: "/bin/sh",
			Run: func(e *Env) {
				lb := e.GlobalAddr("logbuf")
				e.PlantString(lb, "/bin/sh")
				e.W(e.GlobalAddr("log_hook"), e.FuncEntry("exec_cmd"))
				e.Call("ap_run_log", lb, 8)
			},
		},
		{
			ID:       "ind-aocr-nginx2",
			Name:     "AOCR NGINX Attack 2: corrupt globals, let the master loop exec",
			Category: "indirect",
			Ref:      "[81]",
			App:      "nginx",
			BlockCT:  false, BlockCF: false, BlockAI: true,
			GoalKind: kernel.EventExec, GoalDetail: "/bin/sh",
			Run: func(e *Env) {
				sc := e.GlobalAddr("scratch")
				e.PlantString(sc+32, "/bin/sh")
				e.W(e.GlobalAddr("exec_ctx"), sc+32) // ctx->path
				e.W(e.GlobalAddr("upgrade_requested"), 1)
				e.Call(nginx.FnMasterCycle)
			},
		},
		{
			ID:       "ind-coop",
			Name:     "COOP: counterfeit object corrupts mprotect arguments on a legit path",
			Category: "indirect",
			Ref:      "[34]",
			App:      "sqlite",
			BlockCT:  false, BlockCF: false, BlockAI: true,
			GoalKind: kernel.EventMemExec, GoalDetail: "W+X",
			Run: func(e *Env) {
				// Redirect the page-cache pointer at the row table and
				// flip the spilled prot argument to RWX at the stub
				// boundary — control flow stays fully legitimate.
				tbl := e.R(e.GlobalAddr("db_state") + 8)
				e.W(e.GlobalAddr("db_state")+24, tbl)
				e.Hook("mprotect", 0, func(m *vm.Machine) error {
					addr, err := m.SlotAddr("p2")
					if err != nil {
						return err
					}
					return m.Mem.WriteUint(addr, 7, 8)
				})
				// Drive transactions until the periodic mprotect fires.
				for i := 0; i < sqlitedb.MprotectPeriod; i++ {
					e.Conn.ClientWrite([]byte("NEWORDER 5 2"))
					e.Call(sqlitedb.FnTxn, e.ClientFD())
					if e.P.Machine.Halted() {
						return
					}
				}
			},
		},
		{
			ID:       "ind-jujutsu",
			Name:     "Control Jujutsu: full-function reuse of ngx_execute_proc",
			Category: "indirect",
			Ref:      "[38]",
			App:      "nginx",
			BlockCT:  false, BlockCF: false, BlockAI: true,
			GoalKind: kernel.EventExec, GoalDetail: "/bin/sh",
			Run: func(e *Env) {
				// ngx_execute_proc is legitimately address-taken (spawn
				// table) and type-matches the output-filter callsite, so
				// fine-grained CFI-style checks pass. The chain descriptor
				// is corrupted into a counterfeit exec context just before
				// the dispatch.
				sc := e.GlobalAddr("scratch")
				e.PlantString(sc+32, "/bin/sh")
				e.W(e.GlobalAddr("chain_ctx"), e.FuncEntry(nginx.FnExecuteProc))
				hookBeforeCall(e, nginx.FnHandleRequest, nginx.FnOutputChain, func(m *vm.Machine) error {
					chain, err := m.SlotAddr("chain")
					if err != nil {
						return err
					}
					if err := m.Mem.WriteUint(chain, sc+32, 8); err != nil { // path
						return err
					}
					if err := m.Mem.WriteUint(chain+8, 0, 8); err != nil { // argv
						return err
					}
					return m.Mem.WriteUint(chain+16, 0, 8) // envp
				})
				driveNginxVictim(e, nginx.FnHandleRequest)
			},
		},
	}
}

// hookBeforeCall installs a hook immediately before the first call to
// target within fn (post-instrumentation indices).
func hookBeforeCall(e *Env, fn, target string, h vm.Hook) {
	f := e.P.Machine.Prog.Func(fn)
	if f == nil {
		panic("attacks: no function " + fn)
	}
	for i := range f.Code {
		in := &f.Code[i]
		if in.Kind == ir.Call && in.Sym == target {
			e.Hook(fn, i, h)
			return
		}
	}
	panic("attacks: no call to " + target + " in " + fn)
}

// --- Ordering: syscall-flow violations with individually legal calls ---

// orderingScenarios are attacks in which the adversary never corrupts a
// callsite, a stack, or an argument: every system call it causes is one
// the application makes legitimately, with the arguments the metadata
// expects, from the real instruction. What is wrong is *when* — a
// privileged lifecycle phase is replayed after the program moved past it,
// or a transfer prelude is skipped. Call-type, control-flow, and
// argument-integrity all verify per-trap facts and pass; only the
// syscall-flow context, which checks each trapped syscall against the
// transition graph derived from the program's CFG, observes that the
// sequence itself is impossible.
func orderingScenarios() []Scenario {
	return []Scenario{
		{
			ID:       "ord-setuid-replay",
			Name:     "worker re-init replays privilege setup after serving",
			Category: "ordering",
			Ref:      "§4 syscall-flow",
			App:      "nginx",
			BlockSF:  true,
			GoalKind: kernel.EventSetuid, GoalDetail: "-> 33",
			Run: func(e *Env) {
				// Serve one legitimate request, then re-enter the worker
				// initializer — a phase only reachable before serving. The
				// replayed setuid(33) would let an attacker who regained
				// root re-establish a known credential state.
				driveNginxVictim(e, nginx.FnHandleRequest)
				e.Call("ngx_worker_init", 0)
			},
		},
		{
			ID:       "ord-reexec-after-drop",
			Name:     "CGI exec path re-invoked after the privilege drop",
			Category: "ordering",
			Ref:      "§4 syscall-flow",
			App:      "apache",
			BlockSF:  true,
			GoalKind: kernel.EventExec, GoalDetail: "apachectl",
			Run: func(e *Env) {
				// The server's exec window closes when the master drops to
				// the worker identity; in the flow graph every execve
				// precedes the drop's setuid/setgid. Run the legitimate
				// lifecycle up to the drop, dispatch a benign log write,
				// then re-invoke the exec path: the (attacker-controllable)
				// command now runs after the drop — an ordering the CFG
				// cannot produce.
				e.Call("ap_drop_privileges")
				e.Call("ap_run_log", e.GlobalAddr("logbuf"), 4)
				e.Call("ap_exec_direct")
			},
		},
		{
			ID:       "ord-sandbox-reseal",
			Name:     "ftp re-init replays the privilege drop after a session",
			Category: "ordering",
			Ref:      "§4 syscall-flow",
			App:      "vsftpd",
			BlockSF:  true,
			GoalKind: kernel.EventSetuid, GoalDetail: "-> 99",
			Run: func(e *Env) {
				// Open a real session (login + per-session credentials),
				// then replay ftp_init: its mmap/socket/bind prelude and
				// setuid(99) only ever precede the first session.
				conn, err := e.P.Kernel.Net.Dial(vsftpd.ControlPort)
				if err != nil {
					e.LastErr = err
					return
				}
				conn.ClientWrite([]byte("USER anon\r\nPASS x\r\n"))
				e.Call(vsftpd.FnSession, e.initRet)
				e.Call(vsftpd.FnInit)
			},
		},
		{
			ID:       "ord-skipped-prelude",
			Name:     "second PASV listener opened without completing RETR",
			Category: "ordering",
			Ref:      "§4 syscall-flow",
			App:      "vsftpd",
			BlockSF:  true,
			GoalKind: kernel.EventSocket, GoalDetail: fmt.Sprintf("listening on port %d", vsftpd.DataPortBase+7),
			Run: func(e *Env) {
				// In the daemon's lifecycle a passive listener is always
				// consumed by the RETR that follows it. Skipping that
				// prelude and opening a second unannounced data listener
				// gives the attacker a socket no transfer accounts for.
				conn, err := e.P.Kernel.Net.Dial(vsftpd.ControlPort)
				if err != nil {
					e.LastErr = err
					return
				}
				conn.ClientWrite([]byte("USER anon\r\nPASS x\r\n"))
				cfd := e.Call(vsftpd.FnSession, e.initRet)
				e.Call(vsftpd.FnPasv, cfd, uint64(vsftpd.DataPortBase))
				e.Call(vsftpd.FnPasv, cfd, uint64(vsftpd.DataPortBase+7))
			},
		},
	}
}
