package attacks

import (
	"strings"
	"testing"

	"bastion/internal/core/monitor"
)

// TestOrderingFamilyDifferential proves the syscall-flow context's claim
// with a differential run: each ordering attack completes under no
// protection, under every per-trap context (CT, CF, AI, and all three
// together), and under the hardware baselines — because every individual
// syscall it issues is one the application legitimately makes, from a
// legitimate callsite, with legitimate arguments. Only a defense that
// includes SF observes the sequence impossibility and kills the guest.
func TestOrderingFamilyDifferential(t *testing.T) {
	perTrap := Defense{
		Name:       "CT+CF+AI",
		UseMonitor: true,
		Contexts:   monitor.CallType | monitor.ControlFlow | monitor.ArgIntegrity,
	}
	bypassed := []Defense{DefNone, DefCT, DefCF, DefAI, perTrap, DefCET, DefCFI}
	blocking := []Defense{DefSF, DefAll}

	for _, s := range Catalog() {
		if s.Category != "ordering" {
			continue
		}
		for _, d := range bypassed {
			out, err := Execute(s, d)
			if err != nil {
				t.Fatalf("%s/%s: %v", s.ID, d.Name, err)
			}
			if !out.Completed {
				t.Errorf("%s under %s: not completed (killed by %q: %s)",
					s.ID, d.Name, out.KilledBy, out.Reason)
			}
		}
		for _, d := range blocking {
			out, err := Execute(s, d)
			if err != nil {
				t.Fatalf("%s/%s: %v", s.ID, d.Name, err)
			}
			if out.Completed {
				t.Errorf("%s under %s: completed, want blocked", s.ID, d.Name)
			}
			if !out.Blocked() {
				t.Errorf("%s under %s: not killed", s.ID, d.Name)
			}
			if !strings.Contains(out.Reason, "syscall-flow") {
				t.Errorf("%s under %s: reason %q does not name syscall-flow",
					s.ID, d.Name, out.Reason)
			}
		}
	}
}
