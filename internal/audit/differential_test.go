package audit

import (
	"testing"

	"bastion/internal/core"
	"bastion/internal/core/monitor"
	"bastion/internal/ir"
	"bastion/internal/kernel"
	"bastion/internal/vm"
	"bastion/internal/workload"
)

// indirectObservation is one dynamically executed indirect-call edge.
type indirectObservation struct {
	site   uint64 // callsite instruction address
	target string // resolved callee
}

// indirectRecorder is a passive vm.Mitigation that records every indirect
// call the guest actually performs.
type indirectRecorder struct {
	seen map[indirectObservation]bool
}

func newIndirectRecorder() *indirectRecorder {
	return &indirectRecorder{seen: map[indirectObservation]bool{}}
}

func (r *indirectRecorder) OnCall(m *vm.Machine, retaddr uint64)      {}
func (r *indirectRecorder) OnRet(m *vm.Machine, retaddr uint64) error { return nil }

func (r *indirectRecorder) OnIndirectCall(m *vm.Machine, in *ir.Instr, target uint64) error {
	fn, _ := m.CurrentFunc()
	var site uint64
	for i := range fn.Code {
		if &fn.Code[i] == in {
			site = fn.InstrAddr(i)
			break
		}
	}
	name := "?"
	if callee, _ := m.Prog.FuncAt(target); callee != nil {
		name = callee.Name
	}
	r.seen[indirectObservation{site: site, target: name}] = true
	return nil
}

// TestStaticCoversDynamic is the soundness property of the points-to
// refinement, as a property test over the app catalog: every indirect-call
// edge observed while driving the real guest workloads must be inside the
// statically predicted target set of its callsite (static ⊇ dynamic).
func TestStaticCoversDynamic(t *testing.T) {
	const units = 40
	for _, app := range apps {
		target, err := workload.NewTarget(app)
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		art, err := core.Compile(target.Build(), core.CompileOptions{})
		if err != nil {
			t.Fatalf("%s: compile: %v", app, err)
		}
		k := kernel.New(nil)
		k.Costs.IOPerByte = workload.IOPerByte(app)
		if err := target.Fixture(k); err != nil {
			t.Fatalf("%s: fixture: %v", app, err)
		}
		rec := newIndirectRecorder()
		prot, err := core.Launch(art, k, monitor.DefaultConfig(),
			vm.WithMaxSteps(1<<34), vm.WithMitigations(rec))
		if err != nil {
			t.Fatalf("%s: launch: %v", app, err)
		}
		if _, err := workload.Run(target, prot, units); err != nil {
			t.Fatalf("%s: workload: %v", app, err)
		}

		if app == "nginx" && len(rec.seen) == 0 {
			t.Errorf("nginx workload exercised no indirect calls; the property test lost its teeth")
		}
		for obs := range rec.seen {
			s, ok := art.Meta.IndirectSites[obs.site]
			if !ok {
				t.Errorf("%s: dynamic indirect call at %#x has no static site record", app, obs.site)
				continue
			}
			inRefined := false
			for _, tgt := range s.Targets {
				if tgt == obs.target {
					inRefined = true
					break
				}
			}
			if !inRefined {
				t.Errorf("%s: observed %s at %s:%#x outside the refined target set %v",
					app, obs.target, s.Caller, obs.site, s.Targets)
			}
		}
	}
}
