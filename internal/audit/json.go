// Machine-readable report rendering. The JSON schema mirrors the text
// report exactly: the same findings in the same order, the same residual
// rows, plus the derived error count. Field order is fixed by the struct
// declarations and every slice is already deterministically sorted by
// Run, so the encoding is byte-stable — two audits of the same artifact
// render identical bytes, and CI can diff them.
package audit

import "encoding/json"

type jsonFinding struct {
	Code     string `json:"code"`
	Detail   string `json:"detail"`
	Location string `json:"location"`
	Severity string `json:"severity"`
}

type jsonResidual struct {
	ConstArgs       []string `json:"const_args"`
	Direct          bool     `json:"direct"`
	DirectSites     int      `json:"direct_sites"`
	Indirect        bool     `json:"indirect"`
	IndirectCoarse  int      `json:"indirect_coarse"`
	IndirectRefined int      `json:"indirect_refined"`
	Name            string   `json:"name"`
	Nr              uint32   `json:"nr"`
}

type jsonReport struct {
	App      string         `json:"app"`
	Errors   int            `json:"errors"`
	Findings []jsonFinding  `json:"findings"`
	Residual []jsonResidual `json:"residual"`
}

// RenderJSON encodes the report as indented, byte-stable JSON with a
// trailing newline. Findings and residual rows keep Run's deterministic
// order; empty slices encode as [] rather than null.
func (r *Report) RenderJSON() ([]byte, error) {
	out := jsonReport{
		App:      r.App,
		Errors:   r.Errors(),
		Findings: make([]jsonFinding, 0, len(r.Findings)),
		Residual: make([]jsonResidual, 0, len(r.Residual)),
	}
	for _, f := range r.Findings {
		out.Findings = append(out.Findings, jsonFinding{
			Code:     f.Code,
			Detail:   f.Detail,
			Location: f.Location,
			Severity: f.Severity.String(),
		})
	}
	for _, row := range r.Residual {
		consts := row.ConstArgs
		if consts == nil {
			consts = []string{}
		}
		out.Residual = append(out.Residual, jsonResidual{
			ConstArgs:       consts,
			Direct:          row.Direct,
			DirectSites:     row.DirectSites,
			Indirect:        row.Indirect,
			IndirectCoarse:  row.IndirectCoarse,
			IndirectRefined: row.IndirectRefined,
			Name:            row.Name,
			Nr:              row.Nr,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
