// Package audit implements the whole-program policy auditor behind
// cmd/bastion-audit and bastionc -audit: a deterministic findings engine
// that cross-validates the compiler's context metadata against the
// instrumented program it describes, plus a per-syscall residual-surface
// report (the paper's §8 security-analysis numbers, before vs after
// points-to refinement).
//
// The auditor never re-runs the analysis. It checks that what the
// metadata asserts is witnessed by the program: every address resolves to
// the instruction the record claims, every relation edge has a syntactic
// justification, every classification is consistent with how the program
// references the wrapper. A compiler bug, a corrupted sidecar, or a
// mismatched program/metadata pair surfaces as findings with stable codes
// and locations, so a CI gate can allowlist the accepted ones and fail on
// anything new.
package audit

import (
	"fmt"
	"sort"
	"strings"

	"bastion/internal/core/metadata"
	"bastion/internal/ir"
)

// Severity ranks a finding.
type Severity uint8

// Severities.
const (
	// SevWarn marks residual looseness worth tracking (dead wrappers,
	// untraced arguments): expected on real programs, listed so growth is
	// deliberate.
	SevWarn Severity = iota
	// SevError marks metadata that is wrong about the program: the
	// monitor would enforce a policy the binary does not justify.
	SevError
)

func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warn"
}

// Finding codes. Codes are stable API: the allowlist and CI gate key on
// them.
const (
	CodeFuncRange          = "META-FUNC-RANGE"          // Funcs entry disagrees with the program
	CodeCallsiteUnmapped   = "META-CALLSITE-UNMAPPED"   // callsite address is not a call instruction
	CodeCallsiteKind       = "META-CALLSITE-KIND"       // direct/indirect kind mismatch
	CodeCallsiteTarget     = "META-CALLSITE-TARGET"     // recorded target differs from the instruction
	CodeCallsiteMissing    = "META-CALLSITE-MISSING"    // program callsite absent from metadata
	CodeWrapperMismatch    = "CT-WRAPPER-MISMATCH"      // CallTypes wrapper/number disagrees with the program
	CodeNotCallableReached = "CT-NOTCALLABLE-REACHABLE" // not-callable syscall is referenced by the program
	CodeClassUnwitnessed   = "CT-CLASS-UNWITNESSED"     // direct/indirect classification has no witness
	CodeDeadWrapper        = "WRAP-DEAD"                // wrapper linked but never referenced
	CodePhantomCaller      = "CF-PHANTOM-EDGE"          // ValidCallers edge without a direct callsite
	CodeTargetNotTaken     = "CF-TARGET-NOT-TAKEN"      // IndirectTargets entry never address-taken
	CodeTargetMissing      = "CF-TARGET-MISSING"        // address-taken function absent from IndirectTargets
	CodeAllowedDangling    = "CF-ALLOWED-DANGLING"      // AllowedIndirect address is not an indirect callsite
	CodeRefinedBeyond      = "CF-REFINED-BEYOND-COARSE" // refined policy admits what coarse rejects
	CodeSiteInconsistent   = "CF-SITE-INCONSISTENT"     // IndirectSites record disagrees with the program
	CodeArgSiteUnmapped    = "AI-SITE-UNMAPPED"         // ArgSites address is not a call instruction
	CodeShadowOverlap      = "AI-SHADOW-OVERLAP"        // one position bound twice at a callsite
	CodeUntracedArg        = "AI-UNTRACED"              // argument the use-def trace gave up on
)

// Finding is one audit result.
type Finding struct {
	Severity Severity
	Code     string
	// Location identifies the finding's subject: a function name, or
	// "func:0xADDR" for instruction-level findings, with an optional
	// ":pN" argument-position suffix.
	Location string
	Detail   string
}

// Key is the identity the allowlist matches on: "CODE location".
func (f Finding) Key() string { return f.Code + " " + f.Location }

func (f Finding) String() string {
	return fmt.Sprintf("%-5s %-24s %-28s %s", f.Severity, f.Code, f.Location, f.Detail)
}

// ResidualRow quantifies the remaining attack surface of one syscall: the
// permitted (callsite, trace) tuples and the constant-argument value
// space, with the indirect column before and after refinement.
type ResidualRow struct {
	Nr          uint32
	Name        string
	Direct      bool
	Indirect    bool
	DirectSites int // direct callsites invoking the wrapper
	// IndirectCoarse/IndirectRefined count the indirect callsites that may
	// start a path to this syscall (the §7.3 partial-trace heads).
	IndirectCoarse  int
	IndirectRefined int
	// ConstArgs is the constant-argument value space at the syscall's own
	// callsites: "pN=V" strings, sorted and deduplicated.
	ConstArgs []string
}

// Report is one audited program.
type Report struct {
	App      string
	Findings []Finding
	Residual []ResidualRow
}

// Run audits meta against the linked, instrumented prog. Findings are
// deterministically ordered: severity (errors first), then code, location,
// detail.
func Run(app string, prog *ir.Program, meta *metadata.Metadata) *Report {
	a := &auditor{prog: prog, meta: meta}
	a.index()
	a.checkFuncs()
	a.checkCallsites()
	a.checkCallTypes()
	a.checkControlFlow()
	a.checkIndirectPolicies()
	a.checkArgSites()
	a.checkUntraced()

	sort.Slice(a.findings, func(i, j int) bool {
		x, y := a.findings[i], a.findings[j]
		if x.Severity != y.Severity {
			return x.Severity > y.Severity
		}
		if x.Code != y.Code {
			return x.Code < y.Code
		}
		if x.Location != y.Location {
			return x.Location < y.Location
		}
		return x.Detail < y.Detail
	})
	return &Report{App: app, Findings: a.findings, Residual: a.residual()}
}

type auditor struct {
	prog     *ir.Program
	meta     *metadata.Metadata
	findings []Finding

	// Program-side witness indexes.
	directSites  map[string]map[string]bool // target -> callers with a direct call
	addressTaken map[string]bool
	instrAt      map[uint64]*ir.Instr
	instrFn      map[uint64]string
	wrapperNr    map[string]int64
}

func (a *auditor) add(sev Severity, code, loc, format string, args ...any) {
	a.findings = append(a.findings, Finding{
		Severity: sev, Code: code, Location: loc, Detail: fmt.Sprintf(format, args...),
	})
}

func loc(fn string, addr uint64) string { return fmt.Sprintf("%s:%#x", fn, addr) }

func (a *auditor) index() {
	a.directSites = map[string]map[string]bool{}
	a.addressTaken = map[string]bool{}
	a.instrAt = map[uint64]*ir.Instr{}
	a.instrFn = map[uint64]string{}
	a.wrapperNr = map[string]int64{}
	for _, f := range a.prog.Funcs {
		if nr, ok := ir.SyscallNumber(f); ok {
			a.wrapperNr[f.Name] = nr
		}
		for i := range f.Code {
			in := &f.Code[i]
			a.instrAt[f.InstrAddr(i)] = in
			a.instrFn[f.InstrAddr(i)] = f.Name
			switch in.Kind {
			case ir.Call:
				if a.directSites[in.Sym] == nil {
					a.directSites[in.Sym] = map[string]bool{}
				}
				a.directSites[in.Sym][f.Name] = true
			case ir.FuncAddr:
				a.addressTaken[in.Sym] = true
			}
		}
	}
}

// checkFuncs: every metadata code range must match the program, and every
// program function must be mapped (FuncAt feeds the CF walk; a gap there
// turns legitimate frames into violations).
func (a *auditor) checkFuncs() {
	for name, fi := range a.meta.Funcs {
		f := a.prog.Func(name)
		if f == nil {
			a.add(SevError, CodeFuncRange, name, "metadata maps a function the program does not define")
			continue
		}
		end := f.Base + uint64(len(f.Code))*ir.InstrSize
		if fi.Entry != f.Base || fi.End != end {
			a.add(SevError, CodeFuncRange, name, "metadata range [%#x,%#x) != program [%#x,%#x)",
				fi.Entry, fi.End, f.Base, end)
		}
	}
	for _, f := range a.prog.Funcs {
		if _, ok := a.meta.Funcs[f.Name]; !ok {
			a.add(SevError, CodeFuncRange, f.Name, "program function missing from metadata")
		}
	}
}

// checkCallsites: every metadata callsite must resolve to the call
// instruction it claims, and every call instruction must be recorded (the
// monitor rejects return addresses without a callsite entry).
func (a *auditor) checkCallsites() {
	for ret, cs := range a.meta.Callsites {
		in, ok := a.instrAt[cs.Addr]
		if !ok {
			a.add(SevError, CodeCallsiteUnmapped, loc(cs.Caller, cs.Addr), "callsite address maps to no instruction")
			continue
		}
		if cs.RetAddr != cs.Addr+ir.InstrSize || cs.RetAddr != ret {
			a.add(SevError, CodeCallsiteUnmapped, loc(cs.Caller, cs.Addr),
				"return-address key %#x inconsistent with callsite address", ret)
		}
		if fn := a.instrFn[cs.Addr]; fn != cs.Caller {
			a.add(SevError, CodeCallsiteUnmapped, loc(cs.Caller, cs.Addr), "callsite lies in %s", fn)
		}
		switch {
		case cs.Kind == metadata.SiteDirect && in.Kind != ir.Call:
			a.add(SevError, CodeCallsiteKind, loc(cs.Caller, cs.Addr), "recorded direct, instruction is %v", in.Kind)
		case cs.Kind == metadata.SiteIndirect && in.Kind != ir.CallInd:
			a.add(SevError, CodeCallsiteKind, loc(cs.Caller, cs.Addr), "recorded indirect, instruction is %v", in.Kind)
		case cs.Kind == metadata.SiteDirect && in.Sym != cs.Target:
			a.add(SevError, CodeCallsiteTarget, loc(cs.Caller, cs.Addr), "recorded target %s, instruction calls %s", cs.Target, in.Sym)
		}
	}
	for _, f := range a.prog.Funcs {
		for i := range f.Code {
			k := f.Code[i].Kind
			if k != ir.Call && k != ir.CallInd {
				continue
			}
			if _, ok := a.meta.Callsites[f.InstrAddr(i+1)]; !ok {
				a.add(SevError, CodeCallsiteMissing, loc(f.Name, f.InstrAddr(i)), "%v instruction has no callsite record", k)
			}
		}
	}
}

// checkCallTypes: classifications must be witnessed by the program, and
// not-callable syscalls (absent from CallTypes) must be genuinely
// unreferenced. Wrappers that are linked but never referenced at all are
// dead weight in the attack surface and flagged as warnings.
func (a *auditor) checkCallTypes() {
	for nr, ct := range a.meta.CallTypes {
		wnr, isWrapper := a.wrapperNr[ct.Wrapper]
		if !isWrapper || uint64(wnr) != uint64(nr) {
			a.add(SevError, CodeWrapperMismatch, ct.Wrapper, "call type %d names a wrapper the program does not implement for it", nr)
			continue
		}
		if ct.Direct && len(a.directSites[ct.Wrapper]) == 0 {
			a.add(SevError, CodeClassUnwitnessed, ct.Wrapper, "classified directly-callable but no direct callsite exists")
		}
		if ct.Indirect && !a.addressTaken[ct.Wrapper] {
			a.add(SevError, CodeClassUnwitnessed, ct.Wrapper, "classified indirectly-callable but its address is never taken")
		}
	}
	names := make([]string, 0, len(a.wrapperNr))
	for w := range a.wrapperNr {
		names = append(names, w)
	}
	sort.Strings(names)
	for _, w := range names {
		nr := uint32(a.wrapperNr[w])
		referenced := len(a.directSites[w]) > 0 || a.addressTaken[w]
		if _, classified := a.meta.CallTypes[nr]; classified {
			continue
		}
		if referenced {
			a.add(SevError, CodeNotCallableReached, w, "classified not-callable but the program references it")
		} else {
			a.add(SevWarn, CodeDeadWrapper, w, "wrapper for syscall %d is linked but never called or address-taken", nr)
		}
	}
}

// checkControlFlow: every ValidCallers edge needs a witnessing direct
// callsite, and IndirectTargets must be exactly the address-taken set.
func (a *auditor) checkControlFlow() {
	for callee, callers := range a.meta.ValidCallers {
		for caller := range callers {
			if !a.directSites[callee][caller] {
				a.add(SevError, CodePhantomCaller, callee, "metadata permits %s as caller but no direct callsite exists", caller)
			}
		}
	}
	for t := range a.meta.IndirectTargets {
		if !a.addressTaken[t] {
			a.add(SevError, CodeTargetNotTaken, t, "listed as indirect target but its address is never taken")
		}
	}
	taken := make([]string, 0, len(a.addressTaken))
	for t := range a.addressTaken {
		taken = append(taken, t)
	}
	sort.Strings(taken)
	for _, t := range taken {
		if !a.meta.IndirectTargets[t] {
			a.add(SevError, CodeTargetMissing, t, "address-taken but absent from IndirectTargets")
		}
	}
}

// checkIndirectPolicies: AllowedIndirect (both precisions) and the
// per-site records must point at real indirect callsites, and refinement
// must only ever remove.
func (a *auditor) checkIndirectPolicies() {
	check := func(pol metadata.NrAddrSets, which string) {
		for nr, set := range pol {
			for addr := range set {
				in, ok := a.instrAt[addr]
				if !ok || in.Kind != ir.CallInd {
					a.add(SevError, CodeAllowedDangling, loc(a.instrFn[addr], addr),
						"%s policy for syscall %d is not an indirect callsite", which, nr)
				}
			}
		}
	}
	check(a.meta.AllowedIndirect, "refined")
	check(a.meta.AllowedIndirectCoarse, "coarse")
	for nr, refined := range a.meta.AllowedIndirect {
		coarse := a.meta.AllowedIndirectCoarse[nr]
		for addr := range refined {
			if a.meta.AllowedIndirectCoarse != nil && !coarse[addr] {
				a.add(SevError, CodeRefinedBeyond, loc(a.instrFn[addr], addr),
					"refined policy for syscall %d admits a callsite the coarse policy rejects", nr)
			}
		}
	}
	for addr, s := range a.meta.IndirectSites {
		l := loc(s.Caller, addr)
		in, ok := a.instrAt[addr]
		if !ok || in.Kind != ir.CallInd {
			a.add(SevError, CodeSiteInconsistent, l, "recorded indirect site is not an indirect call instruction")
			continue
		}
		if s.Addr != addr || a.instrFn[addr] != s.Caller || in.TypeSig != s.TypeSig {
			a.add(SevError, CodeSiteInconsistent, l, "site record disagrees with the instruction")
			continue
		}
		coarse := map[string]bool{}
		for _, t := range s.Coarse {
			coarse[t] = true
			if !a.addressTaken[t] {
				a.add(SevError, CodeSiteInconsistent, l, "coarse target %s is never address-taken", t)
			}
			if tf := a.prog.Func(t); tf == nil {
				a.add(SevError, CodeSiteInconsistent, l, "coarse target %s is not a function", t)
			} else if s.TypeSig != "" && tf.TypeSig != s.TypeSig {
				a.add(SevError, CodeSiteInconsistent, l, "coarse target %s signature %s != site %s", t, tf.TypeSig, s.TypeSig)
			}
		}
		for _, t := range s.Targets {
			if !coarse[t] {
				a.add(SevError, CodeRefinedBeyond, l, "refined target %s beyond the coarse set", t)
			}
		}
	}
}

// checkArgSites: argument records must anchor at call instructions and
// bind each position at most once (an overlapping shadow binding would
// make the monitor verify against whichever record happened to win).
func (a *auditor) checkArgSites() {
	for addr, site := range a.meta.ArgSites {
		l := loc(site.Caller, addr)
		in, ok := a.instrAt[addr]
		if !ok || (in.Kind != ir.Call && in.Kind != ir.CallInd) {
			a.add(SevError, CodeArgSiteUnmapped, l, "argument record is not anchored at a call instruction")
			continue
		}
		seen := map[int]bool{}
		for _, spec := range site.Args {
			if seen[spec.Pos] {
				a.add(SevError, CodeShadowOverlap, fmt.Sprintf("%s:p%d", l, spec.Pos),
					"argument position bound more than once")
			}
			seen[spec.Pos] = true
		}
	}
}

// checkUntraced surfaces every argument the use-def trace could not
// resolve, with its reason code: the enumerable gap in argument-integrity
// coverage.
func (a *auditor) checkUntraced() {
	for _, u := range a.meta.Untraced {
		a.add(SevWarn, CodeUntracedArg+"/"+u.Reason, fmt.Sprintf("%s:%#x:p%d", u.Caller, u.Addr, u.Pos),
			"argument %d of call to %s not traced", u.Pos, u.Target)
	}
}

// residual builds the per-syscall residual-surface rows, sorted by number.
func (a *auditor) residual() []ResidualRow {
	nrs := make([]uint32, 0, len(a.meta.CallTypes))
	for nr := range a.meta.CallTypes {
		nrs = append(nrs, nr)
	}
	sort.Slice(nrs, func(i, j int) bool { return nrs[i] < nrs[j] })
	rows := make([]ResidualRow, 0, len(nrs))
	for _, nr := range nrs {
		ct := a.meta.CallTypes[nr]
		row := ResidualRow{
			Nr: nr, Name: ct.Name, Direct: ct.Direct, Indirect: ct.Indirect,
			IndirectCoarse:  len(a.meta.AllowedIndirectCoarse[nr]),
			IndirectRefined: len(a.meta.AllowedIndirect[nr]),
		}
		constArgs := map[string]bool{}
		for _, site := range a.meta.ArgSites {
			if !site.IsSyscall || site.SyscallNr != nr || site.Target != ct.Wrapper {
				continue
			}
			row.DirectSites++
			for _, spec := range site.Args {
				if spec.Kind == metadata.ArgConst {
					constArgs[fmt.Sprintf("p%d=%d", spec.Pos, spec.Const)] = true
				}
			}
		}
		if row.DirectSites == 0 {
			// Syscalls outside the sensitive set have no arg sites; count
			// their direct callsites from the callsite map instead.
			for _, cs := range a.meta.Callsites {
				if cs.Kind == metadata.SiteDirect && cs.Target == ct.Wrapper {
					row.DirectSites++
				}
			}
		}
		row.ConstArgs = make([]string, 0, len(constArgs))
		for s := range constArgs {
			row.ConstArgs = append(row.ConstArgs, s)
		}
		sort.Strings(row.ConstArgs)
		rows = append(rows, row)
	}
	return rows
}

// Errors counts SevError findings.
func (r *Report) Errors() int {
	n := 0
	for _, f := range r.Findings {
		if f.Severity == SevError {
			n++
		}
	}
	return n
}

// Unallowed returns the findings not covered by the allowlist, in order.
func (r *Report) Unallowed(allow map[string]bool) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if !allow[f.Key()] {
			out = append(out, f)
		}
	}
	return out
}

// ParseAllowlist reads an allowlist: one "CODE location" key per line,
// '#' comments and blank lines ignored.
func ParseAllowlist(data []byte) map[string]bool {
	allow := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		allow[line] = true
	}
	return allow
}

// Render formats the report deterministically.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "audit %s: %d finding(s), %d error(s)\n", r.App, len(r.Findings), r.Errors())
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	b.WriteString(r.RenderResidual())
	return b.String()
}

// RenderResidual formats the residual-surface table: the permitted call
// surface per syscall, with the indirect column before and after
// refinement and the constant-argument value space.
func (r *Report) RenderResidual() string {
	var b strings.Builder
	fmt.Fprintf(&b, "residual surface (%s): %d callable syscall(s)\n", r.App, len(r.Residual))
	fmt.Fprintf(&b, "  %-18s %-6s %-15s %-7s %-13s %s\n",
		"syscall", "nr", "calltype", "direct", "ind(coarse→refined)", "const-args")
	for _, row := range r.Residual {
		mode := "direct"
		switch {
		case row.Direct && row.Indirect:
			mode = "direct+indirect"
		case row.Indirect:
			mode = "indirect"
		}
		consts := "-"
		if len(row.ConstArgs) > 0 {
			consts = strings.Join(row.ConstArgs, ",")
		}
		fmt.Fprintf(&b, "  %-18s %-6d %-15s %-7d %4d→%-8d %s\n",
			row.Name, row.Nr, mode, row.DirectSites, row.IndirectCoarse, row.IndirectRefined, consts)
	}
	return b.String()
}
