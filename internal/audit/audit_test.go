package audit

import (
	"strings"
	"testing"

	"bastion/internal/apps/nginx"
	"bastion/internal/apps/sqlitedb"
	"bastion/internal/apps/vsftpd"
	"bastion/internal/core"
	"bastion/internal/core/metadata"
	"bastion/internal/ir"
)

func compileApp(t *testing.T, app string) *core.Artifact {
	t.Helper()
	var prog *ir.Program
	switch app {
	case "nginx":
		prog = nginx.Build()
	case "sqlite":
		prog = sqlitedb.Build()
	case "vsftpd":
		prog = vsftpd.Build()
	default:
		t.Fatalf("unknown app %q", app)
	}
	art, err := core.Compile(prog, core.CompileOptions{})
	if err != nil {
		t.Fatalf("compile %s: %v", app, err)
	}
	return art
}

var apps = []string{"nginx", "sqlite", "vsftpd"}

// TestAuditCleanOnShippedApps is the acceptance gate: the compiler's own
// output must audit with zero errors on every shipped guest. Warnings
// (dead wrappers, untraced arguments) are expected and enumerable.
func TestAuditCleanOnShippedApps(t *testing.T) {
	for _, app := range apps {
		art := compileApp(t, app)
		rep := Run(app, art.Prog, art.Meta)
		if n := rep.Errors(); n != 0 {
			t.Errorf("%s: %d audit error(s):\n%s", app, n, rep.Render())
		}
		for _, f := range rep.Findings {
			if f.Severity == SevWarn && !strings.HasPrefix(f.Code, CodeDeadWrapper) &&
				!strings.HasPrefix(f.Code, CodeUntracedArg) {
				t.Errorf("%s: unexpected warning class: %s", app, f)
			}
		}
	}
}

// TestAuditDeterministic: two independent compiles of the same app must
// render byte-identical reports (the CI gate diffs on this).
func TestAuditDeterministic(t *testing.T) {
	a := Run("nginx", compileApp(t, "nginx").Prog, compileApp(t, "nginx").Meta)
	b := Run("nginx", compileApp(t, "nginx").Prog, compileApp(t, "nginx").Meta)
	if a.Render() != b.Render() {
		t.Fatal("audit report is not deterministic across compiles")
	}
}

// TestAuditDetectsSeededCorruption seeds one metadata corruption per case
// and asserts the audit reports the matching error code.
func TestAuditDetectsSeededCorruption(t *testing.T) {
	cases := []struct {
		name    string
		code    string
		corrupt func(t *testing.T, m *metadata.Metadata)
	}{
		{"phantom-caller-edge", CodePhantomCaller, func(t *testing.T, m *metadata.Metadata) {
			for callee, set := range m.ValidCallers {
				set["no_such_caller"] = true
				_ = callee
				return
			}
			t.Skip("no ValidCallers to corrupt")
		}},
		{"dangling-allowed-indirect", CodeAllowedDangling, func(t *testing.T, m *metadata.Metadata) {
			if m.AllowedIndirect[59] == nil {
				m.AllowedIndirect[59] = metadata.AddrSet{}
				m.AllowedIndirectCoarse[59] = metadata.AddrSet{0xdead0: true}
			}
			m.AllowedIndirect[59][0xdead0] = true
			m.AllowedIndirectCoarse[59][0xdead0] = true
		}},
		{"refined-beyond-coarse", CodeRefinedBeyond, func(t *testing.T, m *metadata.Metadata) {
			for addr, s := range m.IndirectSites {
				s.Targets = append(s.Targets, "not_in_coarse")
				m.IndirectSites[addr] = s
				return
			}
			t.Skip("no IndirectSites to corrupt")
		}},
		{"callsite-retarget", CodeCallsiteTarget, func(t *testing.T, m *metadata.Metadata) {
			for ret, cs := range m.Callsites {
				if cs.Kind == metadata.SiteDirect {
					cs.Target = "somewhere_else"
					m.Callsites[ret] = cs
					return
				}
			}
			t.Skip("no direct callsite to corrupt")
		}},
		{"callsite-unmapped", CodeCallsiteUnmapped, func(t *testing.T, m *metadata.Metadata) {
			m.Callsites[0xdead4] = metadata.Callsite{
				Addr: 0xdead0, RetAddr: 0xdead4, Caller: "ghost", Kind: metadata.SiteDirect, Target: "open",
			}
		}},
		{"func-range-shift", CodeFuncRange, func(t *testing.T, m *metadata.Metadata) {
			for name, fi := range m.Funcs {
				fi.End += ir.InstrSize
				m.Funcs[name] = fi
				return
			}
		}},
		{"indirect-target-not-taken", CodeTargetNotTaken, func(t *testing.T, m *metadata.Metadata) {
			m.IndirectTargets["strlen"] = true
		}},
		{"calltype-unwitnessed", CodeClassUnwitnessed, func(t *testing.T, m *metadata.Metadata) {
			for nr, ct := range m.CallTypes {
				if !ct.Indirect {
					ct.Indirect = true
					m.CallTypes[nr] = ct
					return
				}
			}
			t.Skip("no direct-only call type to corrupt")
		}},
		{"func-phantom", CodeFuncRange, func(t *testing.T, m *metadata.Metadata) {
			m.Funcs["ghost_fn"] = metadata.FuncInfo{Name: "ghost_fn", Entry: 0xdead00, End: 0xdead40}
		}},
		{"func-missing", CodeFuncRange, func(t *testing.T, m *metadata.Metadata) {
			for name := range m.Funcs {
				delete(m.Funcs, name)
				return
			}
		}},
		{"callsite-missing", CodeCallsiteMissing, func(t *testing.T, m *metadata.Metadata) {
			for ret := range m.Callsites {
				delete(m.Callsites, ret)
				return
			}
		}},
		{"callsite-kind-flip", CodeCallsiteKind, func(t *testing.T, m *metadata.Metadata) {
			for ret, cs := range m.Callsites {
				if cs.Kind == metadata.SiteDirect {
					cs.Kind = metadata.SiteIndirect
					m.Callsites[ret] = cs
					return
				}
			}
			t.Skip("no direct callsite to corrupt")
		}},
		{"wrapper-mismatch", CodeWrapperMismatch, func(t *testing.T, m *metadata.Metadata) {
			for nr, ct := range m.CallTypes {
				ct.Wrapper = "no_such_wrapper"
				m.CallTypes[nr] = ct
				return
			}
		}},
		{"indirect-target-dropped", CodeTargetMissing, func(t *testing.T, m *metadata.Metadata) {
			for name := range m.IndirectTargets {
				delete(m.IndirectTargets, name)
				return
			}
			t.Skip("no indirect targets to drop")
		}},
		{"site-sig-drift", CodeSiteInconsistent, func(t *testing.T, m *metadata.Metadata) {
			for addr, s := range m.IndirectSites {
				s.TypeSig = "fn(bogus)"
				m.IndirectSites[addr] = s
				return
			}
			t.Skip("no IndirectSites to corrupt")
		}},
		{"argsite-unmapped", CodeArgSiteUnmapped, func(t *testing.T, m *metadata.Metadata) {
			m.ArgSites[0xdead8] = metadata.ArgSite{Addr: 0xdead8, Caller: "ghost", Target: "open",
				Args: []metadata.ArgSpec{{Pos: 1, Kind: metadata.ArgConst, Const: 1}}}
		}},
		{"shadow-overlap", CodeShadowOverlap, func(t *testing.T, m *metadata.Metadata) {
			for addr, site := range m.ArgSites {
				if len(site.Args) > 0 {
					site.Args = append(site.Args, site.Args[0])
					m.ArgSites[addr] = site
					return
				}
			}
			t.Skip("no arg site to corrupt")
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			art := compileApp(t, "nginx")
			tc.corrupt(t, art.Meta)
			rep := Run("nginx", art.Prog, art.Meta)
			if rep.Errors() == 0 {
				t.Fatalf("corruption went undetected:\n%s", rep.Render())
			}
			found := false
			for _, f := range rep.Findings {
				if f.Severity == SevError && strings.HasPrefix(f.Code, tc.code) {
					found = true
				}
			}
			if !found {
				t.Fatalf("expected an error with code %s, got:\n%s", tc.code, rep.Render())
			}
		})
	}
}

// TestResidualSurfaceShape: the residual report covers every callable
// syscall and never shows refinement growing the indirect surface.
func TestResidualSurfaceShape(t *testing.T) {
	for _, app := range apps {
		art := compileApp(t, app)
		rep := Run(app, art.Prog, art.Meta)
		if len(rep.Residual) != len(art.Meta.CallTypes) {
			t.Errorf("%s: %d residual rows for %d call types", app, len(rep.Residual), len(art.Meta.CallTypes))
		}
		for _, row := range rep.Residual {
			if row.IndirectRefined > row.IndirectCoarse {
				t.Errorf("%s: %s refined indirect surface %d > coarse %d",
					app, row.Name, row.IndirectRefined, row.IndirectCoarse)
			}
			if !row.Direct && !row.Indirect {
				t.Errorf("%s: %s is in CallTypes but neither direct nor indirect", app, row.Name)
			}
		}
	}
}

func TestAllowlist(t *testing.T) {
	allow := ParseAllowlist([]byte("# comment\n\nWRAP-DEAD ptrace\n  WRAP-DEAD chmod  \n"))
	if len(allow) != 2 || !allow["WRAP-DEAD ptrace"] || !allow["WRAP-DEAD chmod"] {
		t.Fatalf("ParseAllowlist = %v", allow)
	}
	rep := &Report{Findings: []Finding{
		{Severity: SevWarn, Code: "WRAP-DEAD", Location: "ptrace"},
		{Severity: SevWarn, Code: "WRAP-DEAD", Location: "execveat"},
	}}
	left := rep.Unallowed(allow)
	if len(left) != 1 || left[0].Location != "execveat" {
		t.Fatalf("Unallowed = %v", left)
	}
}
