// B-Side extraction audit: the precision/recall comparison between a
// binary-only extracted policy artifact and the compiler-traced ground
// truth for the same program. Both artifacts are reduced to their
// address-independent projections (internal/core/binscan) so that the
// instrumented/raw address skew cancels out, then diffed fact-by-fact per
// context.
//
// Direction semantics differ by context. For CT, CF, and SF a traced fact
// missing from the extraction is an error: the extracted policy would
// reject behavior the compiler proved legitimate (a recall failure that
// the soundness gate would also catch dynamically). Extra extracted facts
// are warnings — the looseness cost of binary-only operation. For AI both
// directions are warnings: the extractor may bind fewer constants than
// the compiler traced (precision loss) or more (a memory-backed binding
// the dataflow resolved to its constant store); extracted AI soundness is
// established by the dynamic gate, not by comparison against the traced
// constant set.
package audit

import (
	"fmt"
	"sort"
	"strings"

	"bastion/internal/core/binscan"
	"bastion/internal/core/metadata"
)

// B-Side finding codes. Locations are projection fact strings, which are
// address-independent and therefore stable across relinks.
const (
	CodeBsideCTMissing = "BSIDE-CT-MISSING" // traced call type absent from extraction
	CodeBsideCTExtra   = "BSIDE-CT-EXTRA"   // extracted call type the compiler never traced
	CodeBsideCFMissing = "BSIDE-CF-MISSING" // traced control-flow relation absent from extraction
	CodeBsideCFExtra   = "BSIDE-CF-EXTRA"   // extracted control-flow relation beyond ground truth
	CodeBsideAIMissing = "BSIDE-AI-MISSING" // traced constant binding the extractor abandoned
	CodeBsideAIExtra   = "BSIDE-AI-EXTRA"   // extracted constant binding the compiler left memory-backed
	CodeBsideSFMissing = "BSIDE-SF-MISSING" // traced transition absent from extraction
	CodeBsideSFExtra   = "BSIDE-SF-EXTRA"   // extracted transition beyond ground truth
)

// ContextPR is one context's precision/recall row: extracted facts scored
// against the compiler-traced ground truth.
type ContextPR struct {
	Context   string
	Traced    int // ground-truth facts
	Extracted int // extracted facts
	Common    int // facts present in both
}

// Precision is |common| / |extracted| (1 when nothing was extracted).
func (c ContextPR) Precision() float64 {
	if c.Extracted == 0 {
		return 1
	}
	return float64(c.Common) / float64(c.Extracted)
}

// Recall is |common| / |traced| (1 when there is no ground truth).
func (c ContextPR) Recall() float64 {
	if c.Traced == 0 {
		return 1
	}
	return float64(c.Common) / float64(c.Traced)
}

// ExtractReport is the audited comparison for one application.
type ExtractReport struct {
	App      string
	Rows     []ContextPR // one row per context, in binscan.Contexts order
	Findings []Finding
}

// bsideCodes maps context -> {missing, extra} finding codes.
var bsideCodes = map[string][2]string{
	"CT": {CodeBsideCTMissing, CodeBsideCTExtra},
	"CF": {CodeBsideCFMissing, CodeBsideCFExtra},
	"AI": {CodeBsideAIMissing, CodeBsideAIExtra},
	"SF": {CodeBsideSFMissing, CodeBsideSFExtra},
}

// DiffExtracted compares the extracted artifact against the traced ground
// truth for one app and returns the per-context precision/recall report.
// Findings are ordered like Run's: severity (errors first), code,
// location, detail.
func DiffExtracted(app string, traced, extracted *metadata.Metadata) *ExtractReport {
	tp, ep := binscan.Project(traced), binscan.Project(extracted)
	rep := &ExtractReport{App: app}
	for _, ctx := range binscan.Contexts {
		tf, ef := tp.Facts(ctx), ep.Facts(ctx)
		eset := make(map[string]bool, len(ef))
		for _, f := range ef {
			eset[f] = true
		}
		tset := make(map[string]bool, len(tf))
		for _, f := range tf {
			tset[f] = true
		}
		row := ContextPR{Context: ctx, Traced: len(tf), Extracted: len(ef)}
		missingSev := SevError
		if ctx == "AI" {
			missingSev = SevWarn
		}
		for _, f := range tf {
			if eset[f] {
				row.Common++
				continue
			}
			rep.Findings = append(rep.Findings, Finding{
				Severity: missingSev, Code: bsideCodes[ctx][0], Location: f,
				Detail: "traced fact not recovered by binary-only extraction",
			})
		}
		for _, f := range ef {
			if !tset[f] {
				rep.Findings = append(rep.Findings, Finding{
					Severity: SevWarn, Code: bsideCodes[ctx][1], Location: f,
					Detail: "extracted fact beyond compiler ground truth (looseness)",
				})
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	sort.Slice(rep.Findings, func(i, j int) bool {
		x, y := rep.Findings[i], rep.Findings[j]
		if x.Severity != y.Severity {
			return x.Severity > y.Severity
		}
		if x.Code != y.Code {
			return x.Code < y.Code
		}
		if x.Location != y.Location {
			return x.Location < y.Location
		}
		return x.Detail < y.Detail
	})
	return rep
}

// Errors counts SevError findings.
func (r *ExtractReport) Errors() int {
	n := 0
	for _, f := range r.Findings {
		if f.Severity == SevError {
			n++
		}
	}
	return n
}

// Render formats the report deterministically: the precision/recall table
// first, then every finding.
func (r *ExtractReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "b-side extraction audit %s: %d finding(s), %d error(s)\n",
		r.App, len(r.Findings), r.Errors())
	fmt.Fprintf(&b, "  %-4s %8s %10s %7s %10s %7s\n",
		"ctx", "traced", "extracted", "common", "precision", "recall")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-4s %8d %10d %7d %10.3f %7.3f\n",
			row.Context, row.Traced, row.Extracted, row.Common, row.Precision(), row.Recall())
	}
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	return b.String()
}
