package audit

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"bastion/internal/core"
	"bastion/internal/workload"
)

func auditApp(t *testing.T, app string) *Report {
	t.Helper()
	target, err := workload.NewTarget(app)
	if err != nil {
		t.Fatalf("%s: %v", app, err)
	}
	art, err := core.Compile(target.Build(), core.CompileOptions{})
	if err != nil {
		t.Fatalf("%s: compile: %v", app, err)
	}
	return Run(app, art.Prog, art.Meta)
}

// TestRenderJSONGolden pins the machine-readable nginx report
// byte-for-byte. Regenerate with:
// go test ./internal/audit/ -run RenderJSONGolden -update
func TestRenderJSONGolden(t *testing.T) {
	got, err := auditApp(t, "nginx").RenderJSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "nginx_audit.json.golden")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("JSON report diverged from golden\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRenderJSONWellFormed: the encoding parses back, mirrors the text
// report's counts, and is byte-stable across independent audits.
func TestRenderJSONWellFormed(t *testing.T) {
	for _, app := range apps {
		rep := auditApp(t, app)
		data, err := rep.RenderJSON()
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		var back struct {
			App      string `json:"app"`
			Errors   int    `json:"errors"`
			Findings []struct {
				Code     string `json:"code"`
				Severity string `json:"severity"`
			} `json:"findings"`
			Residual []struct {
				Nr uint32 `json:"nr"`
			} `json:"residual"`
		}
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: output is not valid JSON: %v", app, err)
		}
		if back.App != app || back.Errors != rep.Errors() ||
			len(back.Findings) != len(rep.Findings) || len(back.Residual) != len(rep.Residual) {
			t.Errorf("%s: JSON disagrees with report: %+v", app, back)
		}
		again, err := auditApp(t, app).RenderJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, again) {
			t.Errorf("%s: JSON render not byte-stable", app)
		}
	}
}

// TestRenderJSONEmptySlices: a finding-free report must encode findings
// as [] rather than null so downstream parsers see arrays unconditionally.
func TestRenderJSONEmptySlices(t *testing.T) {
	data, err := (&Report{App: "empty"}).RenderJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"findings": []`)) || !bytes.Contains(data, []byte(`"residual": []`)) {
		t.Errorf("empty report does not encode empty arrays:\n%s", data)
	}
}
