package audit

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bastion/internal/core"
	"bastion/internal/core/binscan"
	"bastion/internal/core/metadata"
	"bastion/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// diffApp compiles the traced ground truth and extracts the binary-only
// policy from a fresh raw build of the same app, then diffs them.
func diffApp(t *testing.T, app string) *ExtractReport {
	t.Helper()
	target, err := workload.NewTarget(app)
	if err != nil {
		t.Fatalf("%s: %v", app, err)
	}
	art, err := core.Compile(target.Build(), core.CompileOptions{})
	if err != nil {
		t.Fatalf("%s: compile: %v", app, err)
	}
	target2, err := workload.NewTarget(app)
	if err != nil {
		t.Fatalf("%s: %v", app, err)
	}
	res, err := binscan.Extract(target2.Build(), binscan.Options{})
	if err != nil {
		t.Fatalf("%s: extract: %v", app, err)
	}
	return DiffExtracted(app, art.Meta, res.Meta)
}

// TestExtractRecallIsTotal: for CT, CF, and SF the extraction must
// recover every compiler-traced fact — a recall miss there means the
// extracted policy rejects behavior ground truth allows, which is exactly
// the unsoundness the B-Side regime must not introduce.
func TestExtractRecallIsTotal(t *testing.T) {
	for _, app := range apps {
		rep := diffApp(t, app)
		for _, row := range rep.Rows {
			if row.Context == "AI" {
				continue
			}
			if row.Recall() != 1 {
				t.Errorf("%s: %s recall %.3f, want 1.000", app, row.Context, row.Recall())
			}
		}
		if n := rep.Errors(); n != 0 {
			t.Errorf("%s: %d error finding(s) in extraction diff; first lines:\n%s",
				app, n, rep.Render())
		}
	}
}

// TestExtractReportGolden pins the full three-app precision/recall report
// byte-for-byte. Regenerate with:
// go test ./internal/audit/ -run ExtractReportGolden -update
func TestExtractReportGolden(t *testing.T) {
	var b strings.Builder
	for _, app := range apps {
		b.WriteString(diffApp(t, app).Render())
	}
	got := b.String()
	path := filepath.Join("testdata", "bside_report.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("extraction report diverged from golden\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestExtractReportDeterministic: two independent compile+extract+diff
// passes must render identical bytes.
func TestExtractReportDeterministic(t *testing.T) {
	if diffApp(t, "nginx").Render() != diffApp(t, "nginx").Render() {
		t.Fatal("extraction report not deterministic")
	}
}

// TestDiffExtractedDirections: a synthetic pair exercising both diff
// directions and the per-context severity rules.
func TestDiffExtractedDirections(t *testing.T) {
	traced := metadata.New()
	traced.CallTypes[0] = metadata.CallType{Nr: 0, Name: "read", Wrapper: "read", Direct: true}
	traced.CallTypes[1] = metadata.CallType{Nr: 1, Name: "write", Wrapper: "write", Direct: true}
	extracted := metadata.New()
	extracted.CallTypes[0] = metadata.CallType{Nr: 0, Name: "read", Wrapper: "read", Direct: true}
	extracted.CallTypes[2] = metadata.CallType{Nr: 2, Name: "open", Wrapper: "open", Direct: true}

	rep := DiffExtracted("synthetic", traced, extracted)
	var missing, extra *Finding
	for i := range rep.Findings {
		switch rep.Findings[i].Code {
		case CodeBsideCTMissing:
			missing = &rep.Findings[i]
		case CodeBsideCTExtra:
			extra = &rep.Findings[i]
		}
	}
	if missing == nil || missing.Severity != SevError || !strings.Contains(missing.Location, "write") {
		t.Errorf("missing traced CT fact not reported as error: %+v", missing)
	}
	if extra == nil || extra.Severity != SevWarn || !strings.Contains(extra.Location, "open") {
		t.Errorf("extra extracted CT fact not reported as warning: %+v", extra)
	}
	if len(rep.Rows) != len(binscan.Contexts) {
		t.Fatalf("got %d rows, want %d", len(rep.Rows), len(binscan.Contexts))
	}
	ct := rep.Rows[0]
	if ct.Context != "CT" || ct.Traced != 2 || ct.Extracted != 2 || ct.Common != 1 {
		t.Errorf("CT row = %+v, want traced=2 extracted=2 common=1", ct)
	}
	if ct.Precision() != 0.5 || ct.Recall() != 0.5 {
		t.Errorf("CT precision/recall = %.3f/%.3f, want 0.5/0.5", ct.Precision(), ct.Recall())
	}
}
