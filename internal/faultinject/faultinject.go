// Package faultinject runs an SFP-style fault-injection campaign against
// a fully monitored guest. Each run plants one deterministic single-bit
// (or single-slot) corruption in a chosen part of the machine state — a
// spilled syscall argument, a saved return address, a registered code
// pointer, the monitor's cross-trap syscall-flow state, or cold data —
// then drives the victim's normal workload and records what happens: which
// BASTION context catches the corruption, whether the VM fail-stops on its
// own, or whether the fault is benign. Aggregated over many seeds the runs
// form a context-by-context catch matrix: the experimental counterpart to
// the differential attack matrix, showing that each context covers the
// state the others cannot see.
//
// Everything is deterministic. Faults derive from a fixed-increment LCG
// over the seed, the victim and monitor are freshly constructed per run,
// and the rendered matrix is byte-stable — golden-tested and cheap enough
// for a CI smoke step.
package faultinject

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"bastion/internal/apps/guestlibc"
	"bastion/internal/core"
	"bastion/internal/core/monitor"
	"bastion/internal/ir"
	"bastion/internal/kernel"
	"bastion/internal/vm"
)

// Fault targets: each names one corruptible piece of state and implies
// the drive sequence that exposes it.
const (
	// TargetArgSlot flips a bit in the wrapper's spilled prot argument
	// after instrumentation recorded the legitimate value — exactly the
	// window the argument-integrity context exists for.
	TargetArgSlot = "arg-slot"
	// TargetRetAddr flips a bit in the saved return address of the frame
	// above the syscall wrapper: the unwound stack no longer ends at a
	// valid call site, which is the control-flow context's check.
	TargetRetAddr = "ret-addr"
	// TargetCodePtr flips a random low bit of the registered handler
	// pointer. The flipped address almost never lands on a function
	// entry, so the VM itself fail-stops the indirect call.
	TargetCodePtr = "code-ptr"
	// TargetCodePtrStub redirects the handler pointer at a syscall stub
	// entry (the NEWTON-style corruption): the call-type context — or the
	// in-filter kill for never-referenced stubs — answers.
	TargetCodePtrStub = "code-ptr-stub"
	// TargetFlowState flips a bit of the monitor's own (nr, active)
	// transition state between two legitimate traps: only the stateful
	// syscall-flow context can notice its history was rewritten.
	TargetFlowState = "flow-state"
	// TargetData flips a bit in a global buffer no syscall ever consumes:
	// the control fault, expected benign under every context.
	TargetData = "data"
)

// Targets lists every fault class in campaign order.
var Targets = []string{
	TargetArgSlot, TargetRetAddr, TargetCodePtr,
	TargetCodePtrStub, TargetFlowState, TargetData,
}

// Result is the outcome of one injection run.
type Result struct {
	Target string
	Seed   uint64
	// Bit is the flipped bit index within the target word (or the stub
	// index for TargetCodePtrStub).
	Bit uint
	// Outcome is "benign", "fail-stop", "caught:seccomp", or
	// "caught:<context>" naming the monitor context that detected it.
	Outcome string
}

// Campaign is a deterministic fault-injection sweep: Seeds runs per
// target in Targets.
type Campaign struct {
	Seeds int
}

// lcg advances the fixed-increment linear congruential generator every
// fault derives from (Knuth's MMIX constants). No wall-clock or global
// randomness: the same campaign always produces the same matrix.
func lcg(s uint64) uint64 { return s*6364136223846793005 + 1442695040888963407 }

// mix folds the target name into the seed so different targets at the
// same seed index draw independent streams.
func mix(target string, seed uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(target); i++ {
		h = (h ^ uint64(target[i])) * 1099511628211
	}
	return lcg(h ^ seed)
}

// buildVictim constructs the campaign guest: a setup/dispatch/protect/exec
// skeleton mirroring the paper's victim patterns, plus a cold scratch
// buffer for the benign-fault control. main's CFG admits repeated protect
// rounds, re-setup, and a trailing exec so the derived flow graph gives
// the legitimate drive sequences room to run.
func buildVictim() *ir.Program {
	p := guestlibc.NewProgram()
	p.AddGlobal(&ir.Global{Name: "region", Size: 8})
	p.AddGlobal(&ir.Global{Name: "pathbuf", Size: 32})
	p.AddGlobal(&ir.Global{Name: "handler", Size: 8})
	p.AddGlobal(&ir.Global{Name: "scratch", Size: 64})

	sb := ir.NewBuilder("setup", 0)
	addr := sb.Call("mmap", ir.Imm(0), ir.Imm(8192), ir.Imm(3), ir.Imm(0x22), ir.Imm(-1), ir.Imm(0))
	g := sb.GlobalLea("region", 0)
	sb.Store(g, 0, ir.R(addr), 8)
	h := sb.GlobalLea("handler", 0)
	fp := sb.FuncAddr("helper")
	sb.Store(h, 0, ir.R(fp), 8)
	sb.Ret(ir.Imm(0))
	p.AddFunc(sb.Build())

	hb := ir.NewBuilder("helper", 0)
	hb.Ret(ir.Imm(42))
	p.AddFunc(hb.Build())

	db := ir.NewBuilder("dispatch", 0)
	hp := db.GlobalLea("handler", 0)
	target := db.Load(hp, 0, 8)
	r := db.CallInd(target, "i64()")
	db.Ret(ir.R(r))
	p.AddFunc(db.Build())

	pb := ir.NewBuilder("do_protect", 0)
	pb.Local("prot", 8)
	pa := pb.Lea("prot", 0)
	pb.Store(pa, 0, ir.Imm(1), 8)
	rg := pb.GlobalLea("region", 0)
	base := pb.Load(rg, 0, 8)
	pv := pb.Load(pb.Lea("prot", 0), 0, 8)
	res := pb.Call("mprotect", ir.R(base), ir.Imm(4096), ir.R(pv))
	pb.Ret(ir.R(res))
	p.AddFunc(pb.Build())

	eb := ir.NewBuilder("do_exec", 0)
	pbuf := eb.GlobalLea("pathbuf", 0)
	path := "/bin/app"
	for i := 0; i < len(path); i++ {
		eb.Store(pbuf, int64(i), ir.Imm(int64(path[i])), 1)
	}
	eb.Store(pbuf, int64(len(path)), ir.Imm(0), 1)
	pbuf2 := eb.GlobalLea("pathbuf", 0)
	r2 := eb.Call("execve", ir.R(pbuf2), ir.Imm(0), ir.Imm(0))
	eb.Ret(ir.R(r2))
	p.AddFunc(eb.Build())

	mb := ir.NewBuilder("main", 0)
	mb.Local("i", 8)
	mb.StoreLocal("i", ir.Imm(1))
	iv := mb.LoadLocal("i")
	execFirst := mb.Bin(ir.OpEq, ir.R(iv), ir.Imm(2))
	mb.BranchNZ(ir.R(execFirst), "exec_only")
	mb.Label("round")
	mb.Call("setup")
	mb.Call("dispatch")
	mb.Label("protect_loop")
	mb.Call("do_protect")
	iv2 := mb.LoadLocal("i")
	more := mb.Bin(ir.OpEq, ir.R(iv2), ir.Imm(2))
	mb.BranchNZ(ir.R(more), "protect_loop")
	iv3 := mb.LoadLocal("i")
	again := mb.Bin(ir.OpEq, ir.R(iv3), ir.Imm(3))
	mb.BranchNZ(ir.R(again), "round")
	ex := mb.Bin(ir.OpEq, ir.R(iv3), ir.Imm(4))
	mb.BranchNZ(ir.R(ex), "exec_only")
	mb.Ret(ir.Imm(0))
	mb.Label("exec_only")
	mb.Call("do_exec")
	mb.Ret(ir.Imm(0))
	p.AddFunc(mb.Build())
	return p
}

// stubNames are the syscall stubs TargetCodePtrStub can redirect at:
// mprotect and execve are referenced (direct-only) wrappers, the rest are
// present-but-never-referenced libc stubs whose in-filter action is kill.
var stubNames = []string{"mprotect", "execve", "setuid", "chmod", "socket"}

// Run executes the campaign: Seeds runs for each target, one fresh
// monitored guest per run.
func (c Campaign) Run() ([]Result, error) {
	art, err := core.Compile(buildVictim(), core.CompileOptions{})
	if err != nil {
		return nil, fmt.Errorf("faultinject: compile: %w", err)
	}
	var out []Result
	for _, target := range Targets {
		for seed := uint64(0); seed < uint64(c.Seeds); seed++ {
			r, err := runOne(art, target, seed)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}

func runOne(art *core.Artifact, target string, seed uint64) (Result, error) {
	k := kernel.New(nil)
	// No exec bit on the image: execve soft-fails with -EACCES so a run
	// can keep going past it (the trap still happens and is checked).
	if err := k.FS.WriteFile("/bin/app", []byte("x"), 0o4); err != nil {
		return Result{}, err
	}
	prot, err := core.Launch(art, k, monitor.DefaultConfig(), vm.WithMaxSteps(1<<22))
	if err != nil {
		return Result{}, fmt.Errorf("faultinject: launch: %w", err)
	}
	rng := mix(target, seed)
	res := Result{Target: target, Seed: seed}

	call := func(name string) error {
		_, err := prot.Machine.CallFunction(name)
		return err
	}
	// drive runs the calls in order and returns the first failure.
	drive := func(names ...string) error {
		for _, n := range names {
			if err := call(n); err != nil {
				return err
			}
		}
		return nil
	}

	var derr error
	switch target {
	case TargetArgSlot:
		res.Bit = uint(rng % 64)
		if err := prot.Machine.HookFunc("mprotect", 0, func(m *vm.Machine) error {
			addr, err := m.SlotAddr("p2")
			if err != nil {
				return err
			}
			v, err := m.Mem.ReadUint(addr, 8)
			if err != nil {
				return err
			}
			return m.Mem.WriteUint(addr, v^(1<<res.Bit), 8)
		}); err != nil {
			return Result{}, err
		}
		derr = drive("setup", "do_protect")
	case TargetRetAddr:
		res.Bit = uint(rng % 48)
		if err := prot.Machine.HookFunc("do_protect", 1, func(m *vm.Machine) error {
			ret, err := m.Mem.ReadUint(m.RBP()+8, 8)
			if err != nil {
				return err
			}
			return m.Mem.WriteUint(m.RBP()+8, ret^(1<<res.Bit), 8)
		}); err != nil {
			return Result{}, err
		}
		derr = drive("setup", "do_protect")
	case TargetCodePtr:
		res.Bit = uint(rng % 24)
		derr = call("setup")
		if derr == nil {
			g := prot.Machine.Prog.GlobalByName("handler")
			v, rerr := prot.Machine.Mem.ReadUint(g.Addr, 8)
			if rerr != nil {
				return Result{}, rerr
			}
			if werr := prot.Machine.Mem.WriteUint(g.Addr, v^(1<<res.Bit), 8); werr != nil {
				return Result{}, werr
			}
			derr = drive("dispatch", "do_protect")
		}
	case TargetCodePtrStub:
		res.Bit = uint(rng % uint64(len(stubNames)))
		derr = call("setup")
		if derr == nil {
			stub := prot.Machine.Prog.Func(stubNames[res.Bit])
			g := prot.Machine.Prog.GlobalByName("handler")
			if werr := prot.Machine.Mem.WriteUint(g.Addr, stub.Base, 8); werr != nil {
				return Result{}, werr
			}
			derr = drive("dispatch", "do_protect")
		}
	case TargetFlowState:
		res.Bit = uint(rng % 33)
		derr = drive("setup", "do_protect")
		if derr == nil {
			nr, active := prot.Monitor.FlowState()
			if res.Bit == 32 {
				active = !active
			} else {
				nr ^= 1 << res.Bit
			}
			prot.Monitor.SetFlowState(nr, active)
			derr = drive("do_protect", "do_exec")
		}
	case TargetData:
		res.Bit = uint(rng % 512)
		derr = call("setup")
		if derr == nil {
			g := prot.Machine.Prog.GlobalByName("scratch")
			addr := g.Addr + uint64(res.Bit/8)
			v, rerr := prot.Machine.Mem.ReadUint(addr, 1)
			if rerr != nil {
				return Result{}, rerr
			}
			if werr := prot.Machine.Mem.WriteUint(addr, v^(1<<(res.Bit%8)), 1); werr != nil {
				return Result{}, werr
			}
			derr = drive("dispatch", "do_protect", "do_exec")
		}
	default:
		return Result{}, fmt.Errorf("faultinject: unknown target %q", target)
	}

	res.Outcome = classify(derr, prot.Monitor)
	return res, nil
}

// classify maps a drive error to the matrix outcome. A monitor kill is
// attributed to the context of the last recorded violation; a seccomp
// kill to the in-filter program; any other VM error is the machine
// fail-stopping on its own (bad jump, unmapped access); no error at all —
// or a clean guest exit — is a benign (undetected but harmless) fault.
func classify(err error, mon *monitor.Monitor) string {
	if err == nil {
		return "benign"
	}
	var ke *vm.KillError
	if errors.As(err, &ke) {
		if ke.By == "seccomp" {
			return "caught:seccomp"
		}
		if n := len(mon.Violations); n > 0 {
			return "caught:" + mon.Violations[n-1].Context.String()
		}
		return "caught:monitor"
	}
	var xe *vm.ExitError
	if errors.As(err, &xe) {
		return "benign"
	}
	return "fail-stop"
}

// Matrix aggregates results into target -> outcome -> count.
func Matrix(results []Result) map[string]map[string]int {
	m := map[string]map[string]int{}
	for _, r := range results {
		if m[r.Target] == nil {
			m[r.Target] = map[string]int{}
		}
		m[r.Target][r.Outcome]++
	}
	return m
}

// columnOrder fixes the preferred catch-matrix column sequence; outcomes
// beyond it (future contexts) sort alphabetically after.
var columnOrder = []string{
	"benign", "fail-stop", "caught:seccomp", "caught:call-type",
	"caught:control-flow", "caught:argument-integrity", "caught:syscall-flow",
}

// RenderMatrix renders the catch matrix as a byte-stable text table:
// targets in campaign order, one column per observed outcome.
func RenderMatrix(m map[string]map[string]int) string {
	rank := map[string]int{}
	for i, c := range columnOrder {
		rank[c] = i
	}
	colSet := map[string]bool{}
	for _, row := range m {
		for o := range row {
			colSet[o] = true
		}
	}
	cols := make([]string, 0, len(colSet))
	for o := range colSet {
		cols = append(cols, o)
	}
	sort.Slice(cols, func(i, j int) bool {
		ri, iok := rank[cols[i]]
		rj, jok := rank[cols[j]]
		switch {
		case iok && jok:
			return ri < rj
		case iok:
			return true
		case jok:
			return false
		}
		return cols[i] < cols[j]
	})

	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", "target")
	for _, c := range cols {
		fmt.Fprintf(&b, "  %s", c)
	}
	b.WriteByte('\n')
	for _, target := range Targets {
		row, ok := m[target]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%-14s", target)
		for _, c := range cols {
			fmt.Fprintf(&b, "  %*d", len(c), row[c])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
