package faultinject

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// campaignSeeds is the CI smoke size: large enough that every fault class
// shows its characteristic outcomes, small enough to stay in the seconds.
const campaignSeeds = 8

func runCampaign(t *testing.T) []Result {
	t.Helper()
	res, err := Campaign{Seeds: campaignSeeds}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != campaignSeeds*len(Targets) {
		t.Fatalf("got %d results, want %d", len(res), campaignSeeds*len(Targets))
	}
	return res
}

// TestCampaignDeterministic: the same campaign must reproduce the exact
// same per-run outcomes — the property that makes the matrix goldenable
// and the campaign usable as a regression gate.
func TestCampaignDeterministic(t *testing.T) {
	a := runCampaign(t)
	b := runCampaign(t)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	if RenderMatrix(Matrix(a)) != RenderMatrix(Matrix(b)) {
		t.Fatal("rendered matrices differ")
	}
}

// TestCatchAttribution: each fault class lands where the design says it
// must — the context-by-context coverage argument in executable form.
func TestCatchAttribution(t *testing.T) {
	byTarget := map[string][]Result{}
	for _, r := range runCampaign(t) {
		byTarget[r.Target] = append(byTarget[r.Target], r)
	}
	// Single-owner classes: every run of the class is caught by exactly
	// the context that watches that state.
	owners := map[string]string{
		TargetArgSlot:   "caught:argument-integrity",
		TargetRetAddr:   "caught:control-flow",
		TargetFlowState: "caught:syscall-flow",
		TargetData:      "benign",
		TargetCodePtr:   "fail-stop",
	}
	for target, want := range owners {
		for _, r := range byTarget[target] {
			if r.Outcome != want {
				t.Errorf("%s seed=%d bit=%d: outcome %q, want %q",
					target, r.Seed, r.Bit, r.Outcome, want)
			}
		}
	}
	// The stub redirect is the layered class: never-referenced stubs die
	// in-filter, a referenced direct-only stub dies at the call-type
	// check, and a stub whose transition is out-of-graph dies at the
	// syscall-flow check before call-type even runs.
	seen := map[string]bool{}
	for _, r := range byTarget[TargetCodePtrStub] {
		seen[r.Outcome] = true
		if r.Outcome == "benign" || r.Outcome == "fail-stop" {
			t.Errorf("code-ptr-stub seed=%d escaped: %q", r.Seed, r.Outcome)
		}
	}
	for _, want := range []string{"caught:seccomp", "caught:call-type", "caught:syscall-flow"} {
		if !seen[want] {
			t.Errorf("code-ptr-stub never produced %q (got %v)", want, seen)
		}
	}
}

// TestCampaignGolden pins the rendered catch matrix byte-for-byte.
// Regenerate with: go test ./internal/faultinject/ -run Golden -update
func TestCampaignGolden(t *testing.T) {
	got := RenderMatrix(Matrix(runCampaign(t)))
	path := filepath.Join("testdata", "matrix.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("catch matrix diverged from golden\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRenderMatrixOrdering: rows follow campaign order and unknown
// outcomes sort after the fixed columns — so a future context extends the
// table instead of scrambling it.
func TestRenderMatrixOrdering(t *testing.T) {
	m := map[string]map[string]int{
		TargetData:    {"caught:zz-future": 1, "benign": 2},
		TargetArgSlot: {"caught:argument-integrity": 3},
	}
	out := RenderMatrix(m)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], TargetArgSlot) || !strings.HasPrefix(lines[2], TargetData) {
		t.Fatalf("row order wrong:\n%s", out)
	}
	hdr := lines[0]
	if strings.Index(hdr, "benign") > strings.Index(hdr, "caught:zz-future") {
		t.Fatalf("column order wrong:\n%s", out)
	}
	if strings.Index(hdr, "caught:argument-integrity") > strings.Index(hdr, "caught:zz-future") {
		t.Fatalf("unknown outcome must sort last:\n%s", out)
	}
}
