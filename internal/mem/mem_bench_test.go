package mem

import "testing"

// BenchmarkGuestWord measures the checked word access on the guest's hot
// path (every IR load/store lands here).
func BenchmarkGuestWord(b *testing.B) {
	s := NewSpace()
	if err := s.Map(0x10000, 1<<16, PermRW); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := 0x10000 + uint64(i%8000)*8
		if err := s.WriteUint(addr, uint64(i), 8); err != nil {
			b.Fatal(err)
		}
		if _, err := s.ReadUint(addr, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBulkCopy measures page-spanning block transfers (ptrace reads,
// kernel copy_to_user analogs).
func BenchmarkBulkCopy(b *testing.B) {
	s := NewSpace()
	if err := s.Map(0x10000, 1<<20, PermRW); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 64*1024)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Write(0x10800, buf); err != nil { // unaligned start
			b.Fatal(err)
		}
		if err := s.Read(0x10800, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAccessStopsAtUnmappedBoundary(t *testing.T) {
	s := NewSpace()
	if err := s.Map(0x1000, PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	// A copy that begins in mapped memory and runs off the end must fail
	// (and the failure address is the first unmapped byte).
	err := s.Write(0x1ff8, make([]byte, 16))
	f, ok := err.(*Fault)
	if !ok {
		t.Fatalf("err = %v", err)
	}
	if f.Addr != 0x2000 {
		t.Fatalf("fault at %#x, want 0x2000", f.Addr)
	}
	// Peek has the same boundary behavior.
	if err := s.Peek(0x1ff8, make([]byte, 16)); err == nil {
		t.Fatal("Peek across unmapped boundary succeeded")
	}
}
