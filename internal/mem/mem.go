// Package mem implements the sparse, paged virtual address space used by
// simulated guest processes. It provides mmap/mprotect/munmap semantics with
// per-page permissions, checked guest accesses, and privileged (kernel/
// ptrace-style) accesses that bypass permissions — the access path the
// BASTION monitor uses via process_vm_readv.
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// PageSize is the simulated page size in bytes.
const PageSize = 4096

// Perm is a page-permission bitmask.
type Perm uint8

// Permission bits, mirroring PROT_READ/PROT_WRITE/PROT_EXEC.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec

	PermNone Perm = 0
	PermRW        = PermRead | PermWrite
	PermRX        = PermRead | PermExec
	PermRWX       = PermRead | PermWrite | PermExec
)

func (p Perm) String() string {
	b := []byte("---")
	if p&PermRead != 0 {
		b[0] = 'r'
	}
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// AccessKind describes the faulting operation in a Fault.
type AccessKind uint8

// Access kinds.
const (
	AccessRead AccessKind = iota
	AccessWrite
	AccessMap
)

func (k AccessKind) String() string {
	switch k {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessMap:
		return "map"
	}
	return "access"
}

// Fault is a simulated memory fault (SIGSEGV analog).
type Fault struct {
	Addr uint64
	Kind AccessKind
	Why  string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("mem: fault: %s at %#x: %s", f.Kind, f.Addr, f.Why)
}

type page struct {
	data [PageSize]byte
	perm Perm
}

// Space is a sparse virtual address space. The zero value is not usable;
// call NewSpace.
type Space struct {
	pages map[uint64]*page // keyed by page-aligned address

	// Reads and Writes count checked guest accesses, for statistics.
	Reads, Writes uint64
}

// NewSpace returns an empty address space.
func NewSpace() *Space {
	return &Space{pages: make(map[uint64]*page)}
}

func pageAddr(a uint64) uint64 { return a &^ (PageSize - 1) }

// RoundUp rounds a length up to a whole number of pages.
func RoundUp(n uint64) uint64 { return (n + PageSize - 1) &^ (PageSize - 1) }

// Map maps [addr, addr+length) with the given permissions. addr must be
// page-aligned. Mapping over an existing page replaces its permissions and
// keeps its contents (MAP_FIXED-over-existing semantics); callers that need
// fresh zero pages should Unmap first.
func (s *Space) Map(addr, length uint64, perm Perm) error {
	if addr%PageSize != 0 {
		return &Fault{Addr: addr, Kind: AccessMap, Why: "unaligned mapping"}
	}
	if length == 0 {
		return &Fault{Addr: addr, Kind: AccessMap, Why: "zero-length mapping"}
	}
	for a := addr; a < addr+RoundUp(length); a += PageSize {
		if pg, ok := s.pages[a]; ok {
			pg.perm = perm
		} else {
			s.pages[a] = &page{perm: perm}
		}
	}
	return nil
}

// Unmap removes the pages covering [addr, addr+length).
func (s *Space) Unmap(addr, length uint64) error {
	if addr%PageSize != 0 {
		return &Fault{Addr: addr, Kind: AccessMap, Why: "unaligned unmap"}
	}
	for a := addr; a < addr+RoundUp(length); a += PageSize {
		delete(s.pages, a)
	}
	return nil
}

// Protect changes the permissions of the already-mapped range
// [addr, addr+length). It fails on any unmapped page in the range without
// applying a partial change.
func (s *Space) Protect(addr, length uint64, perm Perm) error {
	if addr%PageSize != 0 {
		return &Fault{Addr: addr, Kind: AccessMap, Why: "unaligned mprotect"}
	}
	end := addr + RoundUp(length)
	for a := addr; a < end; a += PageSize {
		if _, ok := s.pages[a]; !ok {
			return &Fault{Addr: a, Kind: AccessMap, Why: "mprotect of unmapped page"}
		}
	}
	for a := addr; a < end; a += PageSize {
		s.pages[a].perm = perm
	}
	return nil
}

// Mapped reports whether addr lies in a mapped page.
func (s *Space) Mapped(addr uint64) bool {
	_, ok := s.pages[pageAddr(addr)]
	return ok
}

// PermAt returns the permissions of the page containing addr; ok is false
// for unmapped addresses.
func (s *Space) PermAt(addr uint64) (Perm, bool) {
	pg, ok := s.pages[pageAddr(addr)]
	if !ok {
		return PermNone, false
	}
	return pg.perm, true
}

// Read copies len(buf) bytes from addr into buf, requiring PermRead on every
// touched page.
func (s *Space) Read(addr uint64, buf []byte) error {
	s.Reads++
	return s.access(addr, buf, false, true)
}

// Write copies buf to addr, requiring PermWrite on every touched page.
func (s *Space) Write(addr uint64, buf []byte) error {
	s.Writes++
	return s.access(addr, buf, true, true)
}

// Peek copies bytes out without permission checks (kernel/ptrace access).
// It still faults on unmapped pages, as process_vm_readv does.
func (s *Space) Peek(addr uint64, buf []byte) error {
	return s.access(addr, buf, false, false)
}

// Poke writes bytes without permission checks (kernel/ptrace access).
func (s *Space) Poke(addr uint64, buf []byte) error {
	return s.access(addr, buf, true, false)
}

func (s *Space) access(addr uint64, buf []byte, write, checkPerm bool) error {
	n := uint64(len(buf))
	var done uint64
	for done < n {
		a := addr + done
		pa := pageAddr(a)
		pg, ok := s.pages[pa]
		if !ok {
			return s.fault(a, write)
		}
		if checkPerm {
			if write && pg.perm&PermWrite == 0 {
				return &Fault{Addr: a, Kind: AccessWrite, Why: "page is " + pg.perm.String()}
			}
			if !write && pg.perm&PermRead == 0 {
				return &Fault{Addr: a, Kind: AccessRead, Why: "page is " + pg.perm.String()}
			}
		}
		off := a - pa
		chunk := PageSize - off
		if chunk > n-done {
			chunk = n - done
		}
		if write {
			copy(pg.data[off:off+chunk], buf[done:done+chunk])
		} else {
			copy(buf[done:done+chunk], pg.data[off:off+chunk])
		}
		done += chunk
	}
	return nil
}

func (s *Space) fault(addr uint64, write bool) error {
	k := AccessRead
	if write {
		k = AccessWrite
	}
	return &Fault{Addr: addr, Kind: k, Why: "unmapped page"}
}

// ReadUint reads an unsigned little-endian integer of the given width
// (1, 2, 4, or 8 bytes) with permission checks.
func (s *Space) ReadUint(addr uint64, size int64) (uint64, error) {
	var buf [8]byte
	if err := s.Read(addr, buf[:size]); err != nil {
		return 0, err
	}
	return decodeUint(buf[:size]), nil
}

// WriteUint writes an unsigned little-endian integer of the given width
// with permission checks.
func (s *Space) WriteUint(addr uint64, v uint64, size int64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return s.Write(addr, buf[:size])
}

// PeekUint reads an integer without permission checks.
func (s *Space) PeekUint(addr uint64, size int64) (uint64, error) {
	var buf [8]byte
	if err := s.Peek(addr, buf[:size]); err != nil {
		return 0, err
	}
	return decodeUint(buf[:size]), nil
}

// PokeUint writes an integer without permission checks.
func (s *Space) PokeUint(addr uint64, v uint64, size int64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return s.Poke(addr, buf[:size])
}

func decodeUint(b []byte) uint64 {
	var v uint64
	for i := len(b) - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// ReadCString reads a NUL-terminated string of at most max bytes starting at
// addr, with permission checks.
func (s *Space) ReadCString(addr uint64, max int) (string, error) {
	out := make([]byte, 0, 64)
	var b [1]byte
	for i := 0; i < max; i++ {
		if err := s.Read(addr+uint64(i), b[:]); err != nil {
			return "", err
		}
		if b[0] == 0 {
			return string(out), nil
		}
		out = append(out, b[0])
	}
	return "", &Fault{Addr: addr, Kind: AccessRead, Why: "unterminated string"}
}

// Region describes one contiguous run of pages with identical permissions.
type Region struct {
	Addr uint64
	Size uint64
	Perm Perm
}

// Regions returns the mapped regions in address order, coalescing adjacent
// pages with equal permissions. Useful for /proc/self/maps-style dumps and
// tests.
func (s *Space) Regions() []Region {
	addrs := make([]uint64, 0, len(s.pages))
	for a := range s.pages {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	var out []Region
	for _, a := range addrs {
		p := s.pages[a].perm
		if n := len(out); n > 0 && out[n-1].Addr+out[n-1].Size == a && out[n-1].Perm == p {
			out[n-1].Size += PageSize
			continue
		}
		out = append(out, Region{Addr: a, Size: PageSize, Perm: p})
	}
	return out
}
