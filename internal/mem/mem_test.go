package mem

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestMapReadWrite(t *testing.T) {
	s := NewSpace()
	if err := s.Map(0x1000, 2*PageSize, PermRW); err != nil {
		t.Fatalf("Map: %v", err)
	}
	want := []byte("hello, world")
	if err := s.Write(0x1ffa, want); err != nil { // straddles a page boundary
		t.Fatalf("Write: %v", err)
	}
	got := make([]byte, len(want))
	if err := s.Read(0x1ffa, got); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestUnmappedFaults(t *testing.T) {
	s := NewSpace()
	err := s.Read(0x5000, make([]byte, 4))
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("Read of unmapped: %v, want *Fault", err)
	}
	if f.Kind != AccessRead || f.Addr != 0x5000 {
		t.Fatalf("fault = %+v", f)
	}
	if err := s.Write(0x5000, []byte{1}); err == nil {
		t.Fatal("Write of unmapped succeeded")
	}
}

func TestPermissionEnforcement(t *testing.T) {
	s := NewSpace()
	if err := s.Map(0x1000, PageSize, PermRead); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(0x1000, []byte{1}); err == nil {
		t.Fatal("write to read-only page succeeded")
	}
	if err := s.Read(0x1000, make([]byte, 1)); err != nil {
		t.Fatalf("read of read-only page failed: %v", err)
	}
	// PROT_NONE blocks both.
	if err := s.Protect(0x1000, PageSize, PermNone); err != nil {
		t.Fatal(err)
	}
	if err := s.Read(0x1000, make([]byte, 1)); err == nil {
		t.Fatal("read of PROT_NONE page succeeded")
	}
	// Peek/Poke bypass permissions but not mappings.
	if err := s.Poke(0x1000, []byte{7}); err != nil {
		t.Fatalf("Poke: %v", err)
	}
	b := make([]byte, 1)
	if err := s.Peek(0x1000, b); err != nil || b[0] != 7 {
		t.Fatalf("Peek: %v, b=%v", err, b)
	}
	if err := s.Peek(0x9000, b); err == nil {
		t.Fatal("Peek of unmapped page succeeded")
	}
}

func TestProtectIsAtomic(t *testing.T) {
	s := NewSpace()
	if err := s.Map(0x1000, PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	// Second page of the range is unmapped: nothing may change.
	if err := s.Protect(0x1000, 2*PageSize, PermNone); err == nil {
		t.Fatal("Protect spanning unmapped page succeeded")
	}
	if p, _ := s.PermAt(0x1000); p != PermRW {
		t.Fatalf("perm changed by failed Protect: %v", p)
	}
}

func TestMapAlignmentAndRemap(t *testing.T) {
	s := NewSpace()
	if err := s.Map(0x1001, PageSize, PermRW); err == nil {
		t.Fatal("unaligned Map succeeded")
	}
	if err := s.Map(0x1000, 1, PermRW); err != nil { // rounds to one page
		t.Fatal(err)
	}
	if err := s.Write(0x1000, []byte{42}); err != nil {
		t.Fatal(err)
	}
	// Re-mapping keeps contents, changes permissions.
	if err := s.Map(0x1000, PageSize, PermRead); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 1)
	if err := s.Read(0x1000, b); err != nil || b[0] != 42 {
		t.Fatalf("read after remap: %v %v", err, b)
	}
	if err := s.Unmap(0x1000, PageSize); err != nil {
		t.Fatal(err)
	}
	if s.Mapped(0x1000) {
		t.Fatal("page still mapped after Unmap")
	}
}

func TestUintRoundTrip(t *testing.T) {
	s := NewSpace()
	if err := s.Map(0x1000, PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	for _, size := range []int64{1, 2, 4, 8} {
		v := uint64(0x1122334455667788) & (1<<(8*size) - 1)
		if size == 8 {
			v = 0x1122334455667788
		}
		if err := s.WriteUint(0x1010, v, size); err != nil {
			t.Fatal(err)
		}
		got, err := s.ReadUint(0x1010, size)
		if err != nil || got != v {
			t.Fatalf("size %d: got %#x err %v, want %#x", size, got, err, v)
		}
	}
}

func TestReadCString(t *testing.T) {
	s := NewSpace()
	if err := s.Map(0x1000, PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(0x1000, []byte("path/to/file\x00junk")); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadCString(0x1000, 64)
	if err != nil || got != "path/to/file" {
		t.Fatalf("ReadCString = %q, %v", got, err)
	}
	if _, err := s.ReadCString(0x1000, 4); err == nil {
		t.Fatal("unterminated string within max succeeded")
	}
}

func TestRegionsCoalesce(t *testing.T) {
	s := NewSpace()
	if err := s.Map(0x1000, 2*PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := s.Map(0x3000, PageSize, PermRX); err != nil {
		t.Fatal(err)
	}
	if err := s.Map(0x5000, PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	rs := s.Regions()
	if len(rs) != 3 {
		t.Fatalf("Regions = %+v, want 3 entries", rs)
	}
	if rs[0].Addr != 0x1000 || rs[0].Size != 2*PageSize || rs[0].Perm != PermRW {
		t.Fatalf("first region = %+v", rs[0])
	}
	if rs[1].Perm != PermRX {
		t.Fatalf("second region = %+v", rs[1])
	}
}

func TestPermString(t *testing.T) {
	if got := PermRWX.String(); got != "rwx" {
		t.Fatalf("PermRWX = %q", got)
	}
	if got := PermNone.String(); got != "---" {
		t.Fatalf("PermNone = %q", got)
	}
	if got := PermRX.String(); got != "r-x" {
		t.Fatalf("PermRX = %q", got)
	}
}

// Property: any byte sequence written at any in-range offset reads back
// identically, regardless of page straddling.
func TestWriteReadProperty(t *testing.T) {
	s := NewSpace()
	const base, npages = 0x10000, 8
	if err := s.Map(base, npages*PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 4*PageSize {
			data = data[:4*PageSize]
		}
		addr := uint64(base) + uint64(off)%(3*PageSize)
		if err := s.Write(addr, data); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if err := s.Read(addr, got); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: ReadUint(WriteUint(v)) == v masked to the width.
func TestUintProperty(t *testing.T) {
	s := NewSpace()
	if err := s.Map(0x1000, 2*PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	f := func(v uint64, szSel uint8, off uint16) bool {
		size := []int64{1, 2, 4, 8}[szSel%4]
		addr := 0x1000 + uint64(off)%PageSize
		if err := s.WriteUint(addr, v, size); err != nil {
			return false
		}
		got, err := s.ReadUint(addr, size)
		if err != nil {
			return false
		}
		want := v
		if size < 8 {
			want = v & (1<<(8*size) - 1)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
