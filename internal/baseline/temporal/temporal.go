// Package temporal implements the temporal system-call-specialization
// baseline the paper contrasts with in §12 (Ghavamnia et al., USENIX
// Security 2020): the filter is an allowlist that tightens when the
// application transitions from its initialization phase to its serving
// phase. BASTION's argument — reproduced by test — is that attacks like
// Control Jujutsu and AOCR leverage system calls that remain permitted in
// the serving phase (NGINX's binary-upgrade execve, its accept/mmap mix),
// so even a perfectly derived temporal allowlist cannot block them, while
// context enforcement can.
package temporal

import (
	"fmt"
	"sort"

	"bastion/internal/kernel"
	"bastion/internal/seccomp"
)

// Profile is a phase's observed syscall set.
type Profile map[uint32]bool

// NewProfile collects numbers into a profile.
func NewProfile(nrs ...uint32) Profile {
	p := Profile{}
	for _, nr := range nrs {
		p[nr] = true
	}
	return p
}

// Observe merges a process's invocation counts into the profile (the
// dynamic-profiling step the temporal-filtering papers use).
func (p Profile) Observe(counts map[uint32]uint64) {
	for nr, n := range counts {
		if n > 0 {
			p[nr] = true
		}
	}
}

// Syscalls returns the profile's numbers, sorted.
func (p Profile) Syscalls() []uint32 {
	out := make([]uint32, 0, len(p))
	for nr := range p {
		out = append(out, nr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Filter is a two-phase temporal allowlist.
type Filter struct {
	Init    Profile
	Serving Profile

	// Phase is the current phase name, for diagnostics.
	Phase string
}

// New builds the filter from the two phase profiles. Exit paths are always
// permitted.
func New(initP, servingP Profile) *Filter {
	for _, p := range []Profile{initP, servingP} {
		p[kernel.SysExit] = true
		p[kernel.SysExitGroup] = true
	}
	return &Filter{Init: initP, Serving: servingP, Phase: "init"}
}

// compile lowers an allowlist profile to a kill-by-default seccomp program.
func compile(p Profile) ([]seccomp.Insn, error) {
	pol := &seccomp.Policy{
		Default:   seccomp.RetKill,
		Actions:   map[uint32]uint32{},
		CheckArch: true,
	}
	for nr := range p {
		pol.Actions[nr] = seccomp.RetAllow
	}
	return pol.Compile()
}

// Install applies the initialization-phase allowlist.
func (f *Filter) Install(proc *kernel.Process) error {
	prog, err := compile(f.Init)
	if err != nil {
		return fmt.Errorf("temporal: %w", err)
	}
	f.Phase = "init"
	return proc.SetSeccompFilter(prog)
}

// EnterServingPhase swaps in the tightened serving-phase allowlist (the
// transition point the scheme inserts after initialization).
func (f *Filter) EnterServingPhase(proc *kernel.Process) error {
	prog, err := compile(f.Serving)
	if err != nil {
		return fmt.Errorf("temporal: %w", err)
	}
	f.Phase = "serving"
	return proc.SetSeccompFilter(prog)
}
