package temporal_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"bastion/internal/apps/nginx"
	"bastion/internal/baseline/temporal"
	"bastion/internal/core"
	"bastion/internal/kernel"
	"bastion/internal/kernel/fs"
	"bastion/internal/vm"
)

// profileNginx derives the two phase profiles by dynamic profiling, as the
// temporal-specialization papers do: run init, snapshot, run a request and
// the (legitimate) upgrade path, and diff.
func profileNginx(t *testing.T) (initP, servingP temporal.Profile) {
	t.Helper()
	prot := launchNginx(t)
	if _, err := prot.Machine.CallFunction(nginx.FnInit, 2); err != nil {
		t.Fatal(err)
	}
	initP = temporal.NewProfile()
	initP.Observe(prot.Proc.SyscallCounts)

	// Derive the serving profile on a clean instance: everything invoked
	// after init by a request plus the legitimate upgrade path.
	prot2 := launchNginx(t)
	lfd, err := prot2.Machine.CallFunction(nginx.FnInit, 2)
	if err != nil {
		t.Fatal(err)
	}
	base := map[uint32]uint64{}
	for nr, n := range prot2.Proc.SyscallCounts {
		base[nr] = n
	}
	conn2, err := prot2.Kernel.Net.Dial(nginx.Port)
	if err != nil {
		t.Fatal(err)
	}
	conn2.ClientWrite([]byte("GET /index.html HTTP/1.1\r\n\r\n"))
	if _, err := prot2.Machine.CallFunction(nginx.FnHandleRequest, lfd); err != nil {
		t.Fatal(err)
	}
	// The binary-upgrade path is serving-phase functionality: profiling
	// must include it or the feature breaks (§12's crux).
	g := prot2.Machine.Prog.GlobalByName("upgrade_requested")
	prot2.Machine.Mem.WriteUint(g.Addr, 1, 8)
	var xe *vm.ExitError
	if _, err := prot2.Machine.CallFunction(nginx.FnMasterCycle); err != nil && !errors.As(err, &xe) {
		t.Fatal(err)
	}
	servingP = temporal.NewProfile()
	for nr, n := range prot2.Proc.SyscallCounts {
		if n > base[nr] {
			servingP[nr] = true
		}
	}
	return initP, servingP
}

func launchNginx(t *testing.T) *core.Protected {
	t.Helper()
	art, err := core.Compile(nginx.Build(), core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(nil)
	page := bytes.Repeat([]byte("x"), 6745)
	k.FS.WriteFile("/srv/index.html", page, fs.ModeRead)
	k.FS.WriteFile("/usr/sbin/nginx", []byte{0x7f}, fs.ModeRead|fs.ModeExec)
	k.FS.WriteFile("/bin/sh", []byte{0x7f}, fs.ModeRead|fs.ModeExec)
	up := k.Net.NewSocket()
	k.Net.Bind(up, nginx.UpstreamPort)
	k.Net.Listen(up, 1024)
	prot, err := core.LaunchUnprotected(art, k, vm.WithMaxSteps(1<<26))
	if err != nil {
		t.Fatal(err)
	}
	return prot
}

// TestServingPhaseStillServes: the tightened allowlist keeps the
// application functional.
func TestServingPhaseStillServes(t *testing.T) {
	initP, servingP := profileNginx(t)
	prot := launchNginx(t)
	f := temporal.New(initP, servingP)
	if err := f.Install(prot.Proc); err != nil {
		t.Fatal(err)
	}
	lfd, err := prot.Machine.CallFunction(nginx.FnInit, 2)
	if err != nil {
		t.Fatalf("init under init-phase allowlist: %v", err)
	}
	if err := f.EnterServingPhase(prot.Proc); err != nil {
		t.Fatal(err)
	}
	conn, err := prot.Kernel.Net.Dial(nginx.Port)
	if err != nil {
		t.Fatal(err)
	}
	conn.ClientWrite([]byte("GET /index.html HTTP/1.1\r\n\r\n"))
	n, err := prot.Machine.CallFunction(nginx.FnHandleRequest, lfd)
	if err != nil {
		t.Fatalf("request under serving allowlist: %v", err)
	}
	if n != 6745 {
		t.Fatalf("served %d bytes", n)
	}
	if f.Phase != "serving" {
		t.Fatalf("phase = %q", f.Phase)
	}
}

// TestTemporalFilterMissesServingPhaseAttacks reproduces §12's argument:
// the AOCR-2/Jujutsu-style attack execs through functionality that the
// serving phase legitimately needs, so the temporal allowlist permits it.
func TestTemporalFilterMissesServingPhaseAttacks(t *testing.T) {
	initP, servingP := profileNginx(t)
	if !servingP[kernel.SysExecve] {
		t.Fatal("profiling lost the upgrade execve; the comparison is moot")
	}
	prot := launchNginx(t)
	f := temporal.New(initP, servingP)
	if err := f.Install(prot.Proc); err != nil {
		t.Fatal(err)
	}
	if _, err := prot.Machine.CallFunction(nginx.FnInit, 2); err != nil {
		t.Fatal(err)
	}
	if err := f.EnterServingPhase(prot.Proc); err != nil {
		t.Fatal(err)
	}
	// AOCR NGINX Attack 2: corrupt globals, trigger the master loop.
	sc := prot.Machine.Prog.GlobalByName("scratch").Addr
	prot.Machine.Mem.Write(sc+32, append([]byte("/bin/sh"), 0))
	prot.Machine.Mem.WriteUint(prot.Machine.Prog.GlobalByName("exec_ctx").Addr, sc+32, 8)
	prot.Machine.Mem.WriteUint(prot.Machine.Prog.GlobalByName("upgrade_requested").Addr, 1, 8)
	var xe *vm.ExitError
	if _, err := prot.Machine.CallFunction(nginx.FnMasterCycle); err != nil && !errors.As(err, &xe) {
		t.Fatalf("attack run: %v", err)
	}
	if !prot.Proc.HasEvent(kernel.EventExec, "/bin/sh") {
		t.Fatal("attack did not complete under the temporal filter — §12 comparison broken")
	}
}

// TestTemporalFilterBlocksOutOfProfileSyscalls: the baseline is not a
// strawman — it does kill syscalls outside the serving profile.
func TestTemporalFilterBlocksOutOfProfileSyscalls(t *testing.T) {
	initP, servingP := profileNginx(t)
	prot := launchNginx(t)
	f := temporal.New(initP, servingP)
	if err := f.Install(prot.Proc); err != nil {
		t.Fatal(err)
	}
	if _, err := prot.Machine.CallFunction(nginx.FnInit, 2); err != nil {
		t.Fatal(err)
	}
	if err := f.EnterServingPhase(prot.Proc); err != nil {
		t.Fatal(err)
	}
	// chmod is in neither profile: killed.
	_, err := prot.Machine.CallFunction("chmod", 0, 0)
	var ke *vm.KillError
	if !errors.As(err, &ke) || !strings.Contains(ke.Reason, "KILL") {
		t.Fatalf("chmod outside profile: %v", err)
	}
}
