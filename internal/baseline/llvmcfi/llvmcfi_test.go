package llvmcfi_test

import (
	"errors"
	"strings"
	"testing"

	"bastion/internal/baseline/llvmcfi"
	"bastion/internal/ir"
	"bastion/internal/vm"
)

// buildDispatcher: an indirect call through a memory-resident function
// pointer; handlerA/handlerB share a signature, oddball has another, and
// hidden's address is never taken.
func buildDispatcher() *ir.Program {
	p := ir.NewProgram()
	p.AddGlobal(&ir.Global{Name: "fp", Size: 8})

	for _, name := range []string{"handlerA", "handlerB"} {
		b := ir.NewBuilder(name, 1)
		v := b.LoadLocal("p0")
		b.Ret(ir.R(v))
		p.AddFunc(b.Build())
	}
	odd := ir.NewBuilder("oddball", 2)
	odd.Ret(ir.Imm(0))
	p.AddFunc(odd.Build())
	hid := ir.NewBuilder("hidden", 1)
	hid.Ret(ir.Imm(13))
	p.AddFunc(hid.Build())

	mb := ir.NewBuilder("main", 0)
	g := mb.GlobalLea("fp", 0)
	fa := mb.FuncAddr("handlerA")
	mb.Store(g, 0, ir.R(fa), 8)
	// Keep handlerB and oddball address-taken so they join classes.
	mb.FuncAddr("handlerB")
	mb.FuncAddr("oddball")
	g2 := mb.GlobalLea("fp", 0)
	target := mb.Load(g2, 0, 8)
	r := mb.CallInd(target, "i64(i64)", ir.Imm(7))
	mb.Ret(ir.R(r))
	return addMain(p, mb)
}

func addMain(p *ir.Program, mb *ir.Builder) *ir.Program {
	p.AddFunc(mb.Build())
	if err := p.Link(); err != nil {
		panic(err)
	}
	return p
}

func newMachine(t *testing.T, p *ir.Program) (*vm.Machine, *llvmcfi.CFI) {
	t.Helper()
	cfi := llvmcfi.New(p)
	m, err := vm.New(p, vm.WithMitigations(cfi))
	if err != nil {
		t.Fatal(err)
	}
	m.MaxSteps = 1 << 16
	return m, cfi
}

func TestLegitIndirectCallPasses(t *testing.T) {
	m, cfi := newMachine(t, buildDispatcher())
	got, err := m.CallFunction("main")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != 7 {
		t.Fatalf("got %d", got)
	}
	if cfi.Checks != 1 || cfi.Violations != 0 {
		t.Fatalf("checks=%d violations=%d", cfi.Checks, cfi.Violations)
	}
}

func TestSameClassHijackBypassesCFI(t *testing.T) {
	// The paper's core point: redirecting to a type-matched function is
	// invisible to coarse CFI.
	p := buildDispatcher()
	m, cfi := newMachine(t, p)
	if err := m.HookFunc("main", 4, func(mm *vm.Machine) error {
		return mm.Mem.WriteUint(p.GlobalByName("fp").Addr, p.Func("handlerB").Base, 8)
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CallFunction("main"); err != nil {
		t.Fatalf("hijack to same class was blocked: %v", err)
	}
	if cfi.Violations != 0 {
		t.Fatal("false positive")
	}
}

func TestCrossClassHijackBlocked(t *testing.T) {
	p := buildDispatcher()
	m, _ := newMachine(t, p)
	if err := m.HookFunc("main", 4, func(mm *vm.Machine) error {
		return mm.Mem.WriteUint(p.GlobalByName("fp").Addr, p.Func("oddball").Base, 8)
	}); err != nil {
		t.Fatal(err)
	}
	_, err := m.CallFunction("main")
	var ke *vm.KillError
	if !errors.As(err, &ke) || ke.By != "cfi" {
		t.Fatalf("err = %v, want cfi kill", err)
	}
	if !strings.Contains(ke.Reason, "type mismatch") {
		t.Fatalf("reason = %q", ke.Reason)
	}
}

func TestNonAddressTakenTargetBlocked(t *testing.T) {
	p := buildDispatcher()
	m, _ := newMachine(t, p)
	if err := m.HookFunc("main", 4, func(mm *vm.Machine) error {
		return mm.Mem.WriteUint(p.GlobalByName("fp").Addr, p.Func("hidden").Base, 8)
	}); err != nil {
		t.Fatal(err)
	}
	_, err := m.CallFunction("main")
	var ke *vm.KillError
	if !errors.As(err, &ke) || ke.By != "cfi" {
		t.Fatalf("err = %v, want cfi kill", err)
	}
}

func TestClassSize(t *testing.T) {
	cfi := llvmcfi.New(buildDispatcher())
	if n := cfi.ClassSize("i64(i64)"); n != 2 { // handlerA, handlerB
		t.Fatalf("class size = %d, want 2", n)
	}
	if n := cfi.ClassSize("i64(i64,i64)"); n != 1 { // oddball
		t.Fatalf("oddball class = %d", n)
	}
}
