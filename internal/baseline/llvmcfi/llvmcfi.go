// Package llvmcfi models Clang's coarse-grained forward-edge CFI
// (-fsanitize=cfi): every indirect callsite verifies that the target is an
// address-taken function whose type signature matches the callsite's
// static type. This is the comparison baseline of §9.2 and §10 — cheap,
// but bypassable by type-matched targets (AOCR), counterfeit objects
// (COOP), and non-pointer corruption (NEWTON), which is exactly what the
// security evaluation reproduces.
package llvmcfi

import (
	"fmt"

	"bastion/internal/ir"
	"bastion/internal/vm"
)

// CFI is a vm.Mitigation implementing coarse type-based indirect-call
// checking.
type CFI struct {
	// classes maps a function entry address to its type signature; only
	// address-taken functions are legal indirect targets.
	classes map[uint64]string

	// CheckCost is charged per indirect call (the jump-table compare).
	CheckCost uint64

	// Checks and Violations count indirect-call verifications.
	Checks     uint64
	Violations uint64
}

// New builds the CFI policy for a linked program: the equivalence classes
// are "address-taken functions grouped by type signature", as Clang's
// CFI-icall scheme derives.
func New(p *ir.Program) *CFI {
	c := &CFI{classes: map[uint64]string{}, CheckCost: 120}
	for _, f := range p.Funcs {
		for i := range f.Code {
			in := &f.Code[i]
			if in.Kind == ir.FuncAddr {
				if target := p.Func(in.Sym); target != nil {
					c.classes[target.Base] = target.TypeSig
				}
			}
		}
	}
	return c
}

// OnCall is a no-op (forward edge only).
func (c *CFI) OnCall(*vm.Machine, uint64) {}

// OnRet is a no-op (forward edge only).
func (c *CFI) OnRet(*vm.Machine, uint64) error { return nil }

// OnIndirectCall verifies the target's membership in the callsite's
// equivalence class.
func (c *CFI) OnIndirectCall(m *vm.Machine, in *ir.Instr, target uint64) error {
	c.Checks++
	m.Clock.Add(c.CheckCost)
	sig, taken := c.classes[target]
	if !taken {
		c.Violations++
		return &vm.KillError{By: "cfi", Reason: fmt.Sprintf("indirect call to non-address-taken target %#x", target)}
	}
	if in.TypeSig != "" && sig != in.TypeSig {
		c.Violations++
		return &vm.KillError{By: "cfi", Reason: fmt.Sprintf("indirect call type mismatch: callsite %q, target %q", in.TypeSig, sig)}
	}
	return nil
}

// ClassSize returns how many legal targets share a signature — the
// equivalence-class size whose looseness the paper's attacks exploit.
func (c *CFI) ClassSize(sig string) int {
	n := 0
	for _, s := range c.classes {
		if s == sig {
			n++
		}
	}
	return n
}
