package cet_test

import (
	"errors"
	"testing"

	"bastion/internal/baseline/cet"
	"bastion/internal/ir"
	"bastion/internal/vm"
)

// buildCallChain: main -> a -> b, plus a "target" never on the chain and a
// victim whose saved return address a hook will overwrite.
func buildCallChain() *ir.Program {
	p := ir.NewProgram()
	tb := ir.NewBuilder("target", 0)
	tb.Ret(ir.Imm(99))
	p.AddFunc(tb.Build())

	bb := ir.NewBuilder("b", 0)
	bb.Ret(ir.Imm(2))
	p.AddFunc(bb.Build())

	ab := ir.NewBuilder("a", 0)
	r := ab.Call("b")
	ab.Ret(ir.R(r))
	p.AddFunc(ab.Build())

	mb := ir.NewBuilder("main", 0)
	r2 := mb.Call("a")
	mb.Ret(ir.R(r2))
	p.AddFunc(mb.Build())
	return p
}

func TestCleanRunUnaffected(t *testing.T) {
	p := buildCallChain()
	ss := cet.New()
	m, err := vm.New(p, vm.WithMitigations(ss))
	if err != nil {
		t.Fatal(err)
	}
	m.MaxSteps = 1 << 16
	got, err := m.CallFunction("main")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != 2 {
		t.Fatalf("got %d", got)
	}
	if ss.Violations != 0 || ss.Depth() != 0 {
		t.Fatalf("violations=%d depth=%d", ss.Violations, ss.Depth())
	}
}

func TestROPReturnBlocked(t *testing.T) {
	p := buildCallChain()
	ss := cet.New()
	m, err := vm.New(p, vm.WithMitigations(ss))
	if err != nil {
		t.Fatal(err)
	}
	m.MaxSteps = 1 << 16
	// When b starts, overwrite its saved return address with target's
	// entry: the classic return hijack CET exists to stop.
	if err := m.HookFunc("b", 0, func(mm *vm.Machine) error {
		return mm.Mem.WriteUint(mm.RBP()+8, p.Func("target").Base, 8)
	}); err != nil {
		t.Fatal(err)
	}
	_, err = m.CallFunction("main")
	var ke *vm.KillError
	if !errors.As(err, &ke) || ke.By != "cet" {
		t.Fatalf("err = %v, want cet kill", err)
	}
	if ss.Violations != 1 {
		t.Fatalf("violations = %d", ss.Violations)
	}
}

func TestCostCharged(t *testing.T) {
	p := buildCallChain()
	ss := cet.New()
	c := &vm.Clock{}
	m, err := vm.New(p, vm.WithMitigations(ss), vm.WithClock(c))
	if err != nil {
		t.Fatal(err)
	}
	m.MaxSteps = 1 << 16
	if _, err := m.CallFunction("main"); err != nil {
		t.Fatal(err)
	}
	withCET := c.Cycles

	p2 := buildCallChain()
	c2 := &vm.Clock{}
	m2, err := vm.New(p2, vm.WithClock(c2))
	if err != nil {
		t.Fatal(err)
	}
	m2.MaxSteps = 1 << 16
	if _, err := m2.CallFunction("main"); err != nil {
		t.Fatal(err)
	}
	if withCET <= c2.Cycles {
		t.Fatalf("CET cost not charged: %d vs %d", withCET, c2.Cycles)
	}
}
