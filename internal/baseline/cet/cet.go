// Package cet models Intel CET's hardware shadow stack (backward-edge
// protection): every call pushes the return address onto a stack the
// application cannot address; every return compares the program return
// address with the shadow copy and faults on mismatch. BASTION's
// evaluation deploys CET alongside every configuration (Figure 3's CET
// column and the CET+CT/+CF/+AI stacks).
package cet

import (
	"bastion/internal/ir"
	"bastion/internal/vm"
)

// ShadowStack is a vm.Mitigation implementing the CET semantics.
type ShadowStack struct {
	stack []uint64

	// PushPopCost is charged per call and per return (hardware cost is
	// nearly free; nonzero keeps the "CET incurs negligible overhead"
	// claim measurable).
	PushPopCost uint64

	// Violations counts blocked returns.
	Violations uint64
}

// New returns a shadow stack with the calibrated default cost.
func New() *ShadowStack { return &ShadowStack{PushPopCost: 8} }

// OnCall pushes the return address.
func (s *ShadowStack) OnCall(m *vm.Machine, retaddr uint64) {
	m.Clock.Add(s.PushPopCost)
	s.stack = append(s.stack, retaddr)
}

// OnRet pops and compares; a mismatch is a control-protection fault.
func (s *ShadowStack) OnRet(m *vm.Machine, retaddr uint64) error {
	m.Clock.Add(s.PushPopCost)
	if len(s.stack) == 0 {
		s.Violations++
		return &vm.KillError{By: "cet", Reason: "return with empty shadow stack"}
	}
	want := s.stack[len(s.stack)-1]
	s.stack = s.stack[:len(s.stack)-1]
	if retaddr != want {
		s.Violations++
		return &vm.KillError{By: "cet", Reason: "shadow stack mismatch (ROP return)"}
	}
	return nil
}

// OnIndirectCall is a no-op: CET's IBT is not modeled (the paper pairs CET
// with BASTION for backward edges only).
func (s *ShadowStack) OnIndirectCall(*vm.Machine, *ir.Instr, uint64) error { return nil }

// Depth returns the current shadow stack depth.
func (s *ShadowStack) Depth() int { return len(s.stack) }
