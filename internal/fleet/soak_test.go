package fleet

import (
	"testing"

	"bastion/internal/core/monitor"
)

// TestFleetSoakRace is the fleet's -race soak: a real multi-tenant mix
// (all three apps, full monitoring, verdict cache on) running concurrently
// from one shared artifact cache. The race detector guards the sharing
// claims; the assertions guard the aggregate report's determinism under a
// fixed seed.
func TestFleetSoakRace(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	cfg := DefaultConfig(18, 6)
	cfg.VerdictCache = true
	cfg.Seed = 77
	cfg.Workers = 8

	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := r1.TotalUnits(); got != cfg.Tenants*cfg.Units {
		t.Fatalf("fleet completed %d units, want %d", got, cfg.Tenants*cfg.Units)
	}
	if r1.Restarts() != 0 || r1.Kills() != 0 || r1.Faults() != 0 || r1.Dead() != 0 {
		t.Fatalf("benign soak recorded failures: %s", r1.String())
	}
	if r1.Compiles != len(cfg.Apps) {
		t.Errorf("shared cache compiled %d programs for %d tenants, want %d", r1.Compiles, cfg.Tenants, len(cfg.Apps))
	}
	if r1.CacheHitRate() <= 0 {
		t.Error("verdict cache saw no hits across the fleet")
	}

	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Markdown() != r2.Markdown() {
		t.Fatal("soak report not deterministic under fixed seed")
	}
}

// TestMaliciousTenantIsolation: one compromised tenant among benign
// siblings is detected and isolated under every monitor mode — exactly the
// injected tenant is killed and restarted; every sibling finishes its full
// unit count untouched.
func TestMaliciousTenantIsolation(t *testing.T) {
	// Tenant 2 runs vsftpd under the default round-robin app assignment.
	const evil = 2
	for _, mode := range []monitor.Mode{monitor.ModeFull, monitor.ModeFetchOnly, monitor.ModeHookOnly} {
		cfg := DefaultConfig(6, 6)
		cfg.Mode = mode
		cfg.VerdictCache = true
		cfg.Malicious = map[int]string{evil: "cve-2012-0809"}
		rep, err := Run(cfg)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		for i := range rep.Results {
			tr := &rep.Results[i]
			if i == evil {
				if tr.Attack == nil || tr.Attack.Completed {
					t.Errorf("mode %v: attack on tenant %d not blocked: %+v", mode, i, tr.Attack)
				}
				if tr.Kills != 1 {
					t.Errorf("mode %v: malicious tenant kills = %d, want 1", mode, tr.Kills)
				}
				if tr.Compromised || tr.Dead {
					t.Errorf("mode %v: malicious tenant quarantined despite blocked attack: %+v", mode, tr)
				}
				if tr.Units != cfg.Units {
					t.Errorf("mode %v: malicious tenant recovered %d units, want %d", mode, tr.Units, cfg.Units)
				}
				continue
			}
			if tr.Units != cfg.Units || tr.Restarts != 0 || tr.Kills != 0 || tr.Faults != 0 || tr.Dead {
				t.Errorf("mode %v: sibling %d disturbed: units=%d restarts=%d kills=%d faults=%d dead=%v",
					mode, i, tr.Units, tr.Restarts, tr.Kills, tr.Faults, tr.Dead)
			}
			if len(tr.Violations) != 0 {
				t.Errorf("mode %v: sibling %d recorded violations %v", mode, i, tr.Violations)
			}
		}
		if rep.Kills() != 1 {
			t.Errorf("mode %v: fleet kills = %d, want exactly the injected one", mode, rep.Kills())
		}
	}
}

// TestMaliciousAllApps injects each catalog attack into its matching app's
// tenant in one fleet and checks all are blocked with the rest unharmed.
func TestMaliciousAllApps(t *testing.T) {
	cfg := DefaultConfig(6, 6)
	cfg.VerdictCache = true
	cfg.Malicious = map[int]string{
		0: "direct-cscfi",  // nginx
		1: "cve-2014-1912", // sqlite
		2: "cve-2012-0809", // vsftpd
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Results {
		tr := &rep.Results[i]
		if _, malicious := cfg.Malicious[i]; malicious {
			if tr.Attack == nil || tr.Attack.Completed || !tr.Attack.Killed {
				t.Errorf("tenant %d (%s): attack not killed: %+v", i, tr.App, tr.Attack)
			}
			if tr.Units != cfg.Units {
				t.Errorf("tenant %d: units %d, want %d after restart", i, tr.Units, cfg.Units)
			}
		} else if tr.Kills != 0 || tr.Restarts != 0 || tr.Units != cfg.Units {
			t.Errorf("benign tenant %d disturbed: %+v", i, tr)
		}
	}
	if rep.Kills() != 3 {
		t.Errorf("fleet kills = %d, want 3", rep.Kills())
	}
}
