package fleet

import (
	"sync"
	"testing"

	"bastion/internal/core"
	"bastion/internal/core/monitor"
)

// TestArtifactsSingleflight: N goroutines requesting the same key get the
// same immutable artifact back, and the cache compiles exactly once —
// per program, per filter key, and per reload generation.
func TestArtifactsSingleflight(t *testing.T) {
	const n = 32
	arts := NewArtifacts()
	mcfg := monitor.DefaultConfig()
	mcfg.VerdictCache = true

	var wg sync.WaitGroup
	compiled := make([]*core.Artifact, n)
	filters := make([]monitor.Config, n)
	gens := make([]*monitor.Generation, n)
	errs := make([]error, 3*n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			compiled[i], errs[3*i] = arts.Compiled("nginx")
			filters[i], errs[3*i+1] = arts.Config("nginx", mcfg)
			gens[i], errs[3*i+2] = arts.Generation(1, "nginx", mcfg)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < n; i++ {
		if compiled[i] != compiled[0] {
			t.Fatal("concurrent Compiled calls returned distinct artifacts")
		}
		if &filters[i].Filter[0] != &filters[0].Filter[0] {
			t.Fatal("concurrent Config calls returned distinct filter programs")
		}
		if gens[i] != gens[0] {
			t.Fatal("concurrent Generation calls returned distinct generations")
		}
	}
	if got := arts.Compiles(); got != 1 {
		t.Errorf("%d goroutines triggered %d program compiles, want 1", n, got)
	}
	if got := arts.FilterCompiles(); got != 1 {
		t.Errorf("%d goroutines triggered %d filter compiles, want 1", n, got)
	}
	if gens[0].ID != 1 || gens[0].FilterID == 0 {
		t.Errorf("generation malformed: %+v", gens[0])
	}
}

// TestArtifactsDistinctKeys: different filter-relevant configurations get
// their own cached filters rather than aliasing one entry.
func TestArtifactsDistinctKeys(t *testing.T) {
	arts := NewArtifacts()
	plain := monitor.DefaultConfig()
	tree := plain
	tree.TreeFilter = true
	if _, err := arts.Config("nginx", plain); err != nil {
		t.Fatal(err)
	}
	if _, err := arts.Config("nginx", tree); err != nil {
		t.Fatal(err)
	}
	if got := arts.FilterCompiles(); got != 2 {
		t.Errorf("distinct filter keys compiled %d filters, want 2", got)
	}
	if got := arts.Compiles(); got != 1 {
		t.Errorf("two filter keys recompiled the program: %d compiles, want 1", got)
	}
}
