package fleet

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"bastion/internal/attacks"
	"bastion/internal/core"
	"bastion/internal/core/monitor"
	"bastion/internal/fleet/shard"
	"bastion/internal/kernel"
	"bastion/internal/obs"
	"bastion/internal/vm"
	"bastion/internal/workload"
)

// SimHz converts simulated cycles to seconds (1 GHz), matching the bench
// calibration.
const SimHz = 1e9

// Default restart-backoff parameters, in simulated cycles: 1 ms base,
// doubling per consecutive failure, capped at 64 ms.
const (
	DefaultBackoffBase uint64 = 1_000_000
	DefaultBackoffCap  uint64 = 64_000_000
	defaultMaxSteps    uint64 = 1 << 34
)

// Config describes one fleet run.
type Config struct {
	// Tenants is the number of protected guest instances.
	Tenants int
	// Apps assigns workloads round-robin by tenant index; len ≥ 1.
	Apps []string
	// Units is the per-tenant work-unit count.
	Units int

	// Contexts defaults to monitor.AllContexts when zero-valued together
	// with UseContexts=false; set UseContexts to enforce an explicit mask.
	Contexts    monitor.Context
	UseContexts bool
	// Mode, ExtendFS, VerdictCache, TreeFilter, and Offload select the
	// monitor configuration every tenant runs under.
	Mode         monitor.Mode
	ExtendFS     bool
	VerdictCache bool
	TreeFilter   bool
	// Offload answers call-type and constant-argument verdicts inside the
	// shared seccomp filter (monitor.Config.Offload); qualifying syscalls
	// never trap.
	Offload bool

	// ShareArtifacts compiles each workload's program, metadata, and
	// seccomp filter once and shares them across tenants. When false,
	// every incarnation compiles privately (the ablation baseline).
	ShareArtifacts bool

	// MaxRestarts caps restarts per tenant; a failure beyond the cap
	// leaves the tenant dead with its partial progress recorded.
	MaxRestarts int
	// BackoffBase / BackoffCap shape the capped exponential restart
	// backoff, in simulated cycles (0 selects the defaults).
	BackoffBase uint64
	BackoffCap  uint64

	// Seed fixes the tenant-interleaving schedule; Deterministic runs
	// tenants serially in that schedule order, making a fleet run fully
	// reproducible. Concurrent runs dispatch in the same schedule order
	// across Workers goroutines (0 = NumCPU, capped at Tenants); results
	// are identical either way because tenants share no mutable state.
	Seed          int64
	Deterministic bool
	Workers       int

	// Malicious maps tenant index → attack scenario ID to replay against
	// that tenant mid-run (after half its first incarnation's units). The
	// scenario's app must match the tenant's workload.
	Malicious map[int]string
	// FaultAt maps tenant index → global unit index at which to inject a
	// one-shot unit failure (restart-path testing).
	FaultAt map[int]int

	// Shards > 0 runs the sharded control plane: tenants are placed onto
	// that many shard supervisors by consistent hashing, each shard owns
	// its own goroutine pool and admission control, and per-shard
	// statistics land in the report. 0 keeps the flat supervisor.
	Shards int
	// ShardVnodes is the placement ring's virtual-node count per shard
	// (0 = shard.DefaultVnodes).
	ShardVnodes int
	// Admission overrides the per-shard admission control (nil =
	// shard.DefaultAdmission). Admission latency and rejections are
	// charged to each tenant's elapsed timeline deterministically.
	Admission *shard.AdmissionConfig

	// ReloadAt > 0 hot-reloads every tenant's policy after it completes
	// that many units: a new artifact generation (ReloadSpec) is staged
	// into the live monitor and applies at the next trap boundary, with
	// zero guest downtime. Requires ReloadSpec; must be < Units.
	ReloadAt int
	// ReloadSpec is the policy the fleet swaps to (generation 1).
	ReloadSpec *PolicySpec

	// MaxSteps bounds each incarnation's guest execution (0 = default).
	MaxSteps uint64

	// Trace enables the telemetry plane: every incarnation's monitor gets
	// a per-tenant buffer sink, and each tenant's decision trace and
	// merged metrics registry land in its TenantResult. FlightN sizes the
	// per-monitor flight recorder (0 = off); a tenant whose incarnation
	// crashes or records a violation keeps that recorder's dump.
	Trace   bool
	FlightN int

	// SLO declares per-shard service budgets, evaluated into the
	// report's SLO section after the run. Non-nil SLO implies Trace —
	// the evaluator reads merged trap-cycle histograms and per-tenant
	// decision traces. Evaluation is read-only: tenant scheduling and
	// verdicts are byte-identical with and without it.
	SLO *SLOConfig
}

// Validate rejects nonsensical configurations.
func (c *Config) Validate() error {
	if c.Tenants <= 0 {
		return fmt.Errorf("fleet: tenants must be positive, got %d", c.Tenants)
	}
	if c.Units <= 0 {
		return fmt.Errorf("fleet: units must be positive, got %d", c.Units)
	}
	if len(c.Apps) == 0 {
		return errors.New("fleet: at least one app required")
	}
	for _, app := range c.Apps {
		if _, err := workload.NewTarget(app); err != nil {
			return err
		}
	}
	if c.MaxRestarts < 0 {
		return fmt.Errorf("fleet: max restarts must be non-negative, got %d", c.MaxRestarts)
	}
	if c.Workers < 0 {
		return fmt.Errorf("fleet: workers must be non-negative, got %d", c.Workers)
	}
	base, bcap := c.BackoffBase, c.BackoffCap
	if base == 0 {
		base = DefaultBackoffBase
	}
	if bcap == 0 {
		bcap = DefaultBackoffCap
	}
	if base > bcap {
		return fmt.Errorf("fleet: backoff base %d exceeds cap %d", base, bcap)
	}
	for idx, unit := range c.FaultAt {
		if idx < 0 || idx >= c.Tenants {
			return fmt.Errorf("fleet: fault tenant %d outside fleet of %d", idx, c.Tenants)
		}
		if unit < 0 {
			return fmt.Errorf("fleet: fault unit must be non-negative, got %d for tenant %d", unit, idx)
		}
	}
	if c.Shards < 0 {
		return fmt.Errorf("fleet: shards must be non-negative, got %d", c.Shards)
	}
	if c.ShardVnodes < 0 {
		return fmt.Errorf("fleet: shard vnodes must be non-negative, got %d", c.ShardVnodes)
	}
	if c.ReloadAt < 0 {
		return fmt.Errorf("fleet: reload unit must be non-negative, got %d", c.ReloadAt)
	}
	if c.ReloadAt > 0 {
		if c.ReloadSpec == nil {
			return errors.New("fleet: reload-at needs a reload policy spec")
		}
		if c.ReloadAt >= c.Units {
			return fmt.Errorf("fleet: reload at unit %d needs more than %d units", c.ReloadAt, c.Units)
		}
	}
	if c.SLO != nil {
		if err := c.SLO.Validate(); err != nil {
			return err
		}
	}
	for idx, id := range c.Malicious {
		if idx < 0 || idx >= c.Tenants {
			return fmt.Errorf("fleet: malicious tenant %d outside fleet of %d", idx, c.Tenants)
		}
		s, ok := attacks.ByID(id)
		if !ok {
			return fmt.Errorf("fleet: unknown attack scenario %q", id)
		}
		if s.App != c.appOf(idx) {
			return fmt.Errorf("fleet: attack %q targets %s but tenant %d runs %s",
				id, s.App, idx, c.appOf(idx))
		}
	}
	return nil
}

// DefaultConfig returns a full-protection fleet configuration: all
// contexts, full mode, shared artifacts, three restarts with default
// backoff.
func DefaultConfig(tenants, units int, apps ...string) Config {
	if len(apps) == 0 {
		apps = []string{"nginx", "sqlite", "vsftpd"}
	}
	return Config{
		Tenants:        tenants,
		Apps:           apps,
		Units:          units,
		ShareArtifacts: true,
		MaxRestarts:    3,
	}
}

func (c *Config) appOf(idx int) string { return c.Apps[idx%len(c.Apps)] }

func (c *Config) contexts() monitor.Context {
	if c.UseContexts {
		return c.Contexts
	}
	return monitor.AllContexts
}

// monitorConfig is the monitor configuration every tenant launches under
// (generation 0); the reload generation grafts its PolicySpec onto this.
func (c *Config) monitorConfig() monitor.Config {
	mcfg := monitor.DefaultConfig()
	mcfg.Contexts = c.contexts()
	mcfg.Mode = c.Mode
	mcfg.ExtendFS = c.ExtendFS
	mcfg.TreeFilter = c.TreeFilter
	mcfg.VerdictCache = c.VerdictCache
	mcfg.Offload = c.Offload
	return mcfg
}

// AttackOutcome records what the injected attack achieved on a malicious
// tenant.
type AttackOutcome struct {
	ID        string
	Completed bool // the attack reached its kernel-event goal
	Killed    bool // the defense terminated the guest
	KilledBy  string
	Reason    string
}

// TenantResult summarizes one tenant across all its incarnations.
type TenantResult struct {
	Index int
	App   string

	// Shard is the control-plane shard that ran the tenant, -1 under the
	// flat supervisor. AdmitCycles is the fleet-clock cycle at which the
	// shard granted the tenant's launch (arrival offset plus queueing); it
	// front-pads the tenant's elapsed timeline so WallCycles is a true
	// makespan. AdmitRejects counts full-queue rejections absorbed before
	// admission.
	Shard        int
	AdmitCycles  uint64
	AdmitRejects int

	// Units is the number of work units completed; Bytes the application
	// bytes moved.
	Units int
	Bytes int64

	// Restarts counts incarnations beyond the first; Kills security
	// terminations (seccomp or monitor); Faults non-security failures.
	Restarts int
	Kills    int
	Faults   int
	// KilledBy is the last security-kill source ("seccomp", "monitor").
	KilledBy string
	// Dead marks a tenant whose restart budget was exhausted (or that was
	// quarantined after a completed attack); its counters hold partial
	// progress.
	Dead bool

	// Cycle accounts, summed across incarnations. SetupCycles is monitor
	// attach cost; InitCycles application init; TotalCycles steady state
	// (monitor share in MonitorCycles); BackoffCycles restart penalties.
	SetupCycles   uint64
	InitCycles    uint64
	TotalCycles   uint64
	MonitorCycles uint64
	BackoffCycles uint64
	Traps         uint64

	// Verdict-cache statistics, summed across incarnations.
	CacheHits   uint64
	CacheMisses uint64

	// FlowChecks counts syscall-flow transition checks, summed across
	// incarnations. Each incarnation starts a fresh monitor, so its flow
	// state (and first-trap requirement) resets with the restart.
	FlowChecks uint64

	// OffloadAvoided counts traps the in-filter verdict offload answered
	// without stopping the guest, summed across incarnations.
	OffloadAvoided uint64

	// Reloads counts applied policy hot reloads across incarnations,
	// ReloadCycles their summed swap cost, and Gen the artifact generation
	// the tenant's last incarnation finished under.
	Reloads      uint64
	ReloadCycles uint64
	Gen          uint64

	// Violations are the monitor's recorded context violations, in order;
	// ViolationMask is their context union.
	Violations    []string
	ViolationMask monitor.Context

	// Attack is non-nil for a malicious tenant; Compromised marks an
	// attack that completed its goal.
	Attack      *AttackOutcome
	Compromised bool

	// Events is the tenant's decision trace across incarnations (Trace
	// on), re-sequenced 0..n-1 tenant-wide; each incarnation's cycle
	// stamps restart at its fresh clock. Metrics merges the
	// per-incarnation monitor registries.
	Events  []obs.TrapEvent
	Metrics *obs.Registry
	// Flight is the flight-recorder dump (JSONL, oldest trap first) of
	// the most recent incarnation that crashed or recorded a violation;
	// empty when FlightN is 0 or no incarnation qualified.
	Flight string
}

// PerUnitTotal returns steady-state cycles per completed unit.
func (t *TenantResult) PerUnitTotal() float64 {
	if t.Units == 0 {
		return 0
	}
	return float64(t.TotalCycles) / float64(t.Units)
}

// PerUnitMonitor returns monitor cycles per completed unit.
func (t *TenantResult) PerUnitMonitor() float64 {
	if t.Units == 0 {
		return 0
	}
	return float64(t.MonitorCycles) / float64(t.Units)
}

// CacheHitRate returns hits/(hits+misses), or 0 with no lookups.
func (t *TenantResult) CacheHitRate() float64 {
	if total := t.CacheHits + t.CacheMisses; total > 0 {
		return float64(t.CacheHits) / float64(total)
	}
	return 0
}

// ElapsedCycles is the tenant's full simulated timeline: admission +
// setup + init + steady state + restart backoff.
func (t *TenantResult) ElapsedCycles() uint64 {
	return t.AdmitCycles + t.SetupCycles + t.InitCycles + t.TotalCycles + t.BackoffCycles
}

// Run executes a fleet per the configuration and aggregates the report.
// Configuration and compilation errors abort the run; tenant runtime
// failures (kills, faults, exhausted restart budgets) are data in the
// report, never errors.
func Run(cfg Config) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.SLO != nil {
		// SLO evaluation reads merged histograms and decision traces.
		cfg.Trace = true
	}
	shared := NewArtifacts()
	schedule := rand.New(rand.NewSource(cfg.Seed)).Perm(cfg.Tenants)

	rep := &Report{
		Cfg:      cfg,
		Schedule: schedule,
		Results:  make([]TenantResult, cfg.Tenants),
	}
	var (
		mu       sync.Mutex
		firstErr error
		privN    int // compilations performed outside the shared cache
		privF    int
	)
	runOne := func(idx int) {
		res, priv, err := runTenant(&cfg, idx, shared)
		mu.Lock()
		defer mu.Unlock()
		rep.Results[idx] = res
		if priv != nil {
			privN += priv.Compiles()
			privF += priv.FilterCompiles()
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("fleet: tenant %d: %w", idx, err)
		}
	}

	if cfg.Shards > 0 {
		// Sharded control plane: placement and admission are computed up
		// front as pure functions of (config, schedule), then each shard
		// supervises its members with its own goroutine pool. Results are
		// byte-identical to a serial run because nothing about a tenant
		// depends on when its shard's pool got to it.
		adm := shard.DefaultAdmission()
		if cfg.Admission != nil {
			adm = *cfg.Admission
		}
		rep.Shards = shard.Build(cfg.Shards, cfg.ShardVnodes, adm, schedule)
		if cfg.Deterministic {
			for _, s := range rep.Shards {
				for _, idx := range s.Members {
					runOne(idx)
				}
			}
		} else {
			var wg sync.WaitGroup
			for _, s := range rep.Shards {
				if len(s.Members) == 0 {
					continue
				}
				workers := cfg.Workers
				if workers <= 0 {
					workers = runtime.NumCPU()
				}
				if workers > len(s.Members) {
					workers = len(s.Members)
				}
				ch := make(chan int)
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for idx := range ch {
							runOne(idx)
						}
					}()
				}
				members := s.Members
				wg.Add(1)
				go func() {
					defer wg.Done()
					for _, idx := range members {
						ch <- idx
					}
					close(ch)
				}()
			}
			wg.Wait()
		}
		// Stamp each tenant with its shard's placement and admission
		// outcome (deterministic post-pass; runTenant never sees them).
		for _, s := range rep.Shards {
			for i, idx := range s.Members {
				g := s.Grants[i]
				rep.Results[idx].Shard = s.ID
				rep.Results[idx].AdmitCycles = g.Admit
				rep.Results[idx].AdmitRejects = g.Rejects
			}
		}
	} else if cfg.Deterministic {
		for _, idx := range schedule {
			runOne(idx)
		}
	} else {
		workers := cfg.Workers
		if workers <= 0 {
			workers = runtime.NumCPU()
		}
		if workers > cfg.Tenants {
			workers = cfg.Tenants
		}
		ch := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for idx := range ch {
					runOne(idx)
				}
			}()
		}
		for _, idx := range schedule {
			ch <- idx
		}
		close(ch)
		wg.Wait()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	rep.Compiles = shared.Compiles() + privN
	rep.FilterCompiles = shared.FilterCompiles() + privF
	return rep, nil
}

// faultyTarget injects one unit failure at a global unit index.
type faultyTarget struct {
	workload.Target
	base    int // global index of this incarnation's unit 0
	faultAt int
	fired   *bool
}

func (f *faultyTarget) Unit(p *core.Protected, i int) (int64, error) {
	if !*f.fired && f.base+i == f.faultAt {
		*f.fired = true
		return 0, fmt.Errorf("injected fault at unit %d", f.faultAt)
	}
	return f.Target.Unit(p, i)
}

// runTenant drives one tenant to completion, restarting incarnations per
// policy. It returns the tenant's private artifact cache when sharing is
// disabled (for compile accounting). Only compile/launch errors — broken
// configuration, not guest behavior — are returned as errors.
func runTenant(cfg *Config, idx int, shared *Artifacts) (TenantResult, *Artifacts, error) {
	app := cfg.appOf(idx)
	res := TenantResult{Index: idx, App: app, Shard: -1}
	if cfg.Trace {
		res.Metrics = obs.NewRegistry()
	}

	arts := shared
	var priv *Artifacts
	if !cfg.ShareArtifacts {
		priv = NewArtifacts()
		arts = priv
	}

	attackID, malicious := cfg.Malicious[idx]
	attackDone := false
	faultAt, hasFault := cfg.FaultAt[idx]
	faultFired := false
	attempt := 0

	for res.Units < cfg.Units && !res.Dead {
		if attempt > 0 {
			shift := attempt - 1
			if shift > 30 {
				shift = 30
			}
			backoff := cfg.BackoffBase
			if backoff == 0 {
				backoff = DefaultBackoffBase
			}
			backoff <<= shift
			cap := cfg.BackoffCap
			if cap == 0 {
				cap = DefaultBackoffCap
			}
			if backoff > cap {
				backoff = cap
			}
			res.BackoffCycles += backoff
		}

		// When sharing is off, every incarnation recompiles from scratch,
		// exactly as standalone launches would.
		if priv != nil && attempt > 0 {
			priv = NewArtifacts()
			arts = priv
		}

		prot, target, err := launchTenant(cfg, idx, app, malicious && !attackDone, arts)
		if err != nil {
			return res, priv, err
		}
		res.SetupCycles += prot.Monitor.InitCycles

		remaining := cfg.Units - res.Units
		runUnits := remaining
		injectAttack := malicious && !attackDone
		if injectAttack && remaining > 1 {
			// The attack strikes mid-incarnation: run half the remaining
			// units benignly first.
			runUnits = remaining / 2
		}

		var driver workload.Target = target
		if hasFault && !faultFired {
			driver = &faultyTarget{Target: target, base: res.Units, faultAt: faultAt, fired: &faultFired}
		}

		wl, runErr := runSlice(cfg, app, arts, prot, driver, res.Units, runUnits)
		accumulate(&res, wl, prot)

		if runErr != nil {
			// A killed incarnation's monitor still holds its violations,
			// cache statistics, and flight recorder — drain before
			// retiring, or a security kill's evidence is lost.
			drainMonitor(&res, prot, true)
			retire(cfg, &res, &attempt, classifyKill(runErr))
			continue
		}

		if injectAttack {
			attackDone = true
			out := replayAttack(cfg, app, attackID, prot, target)
			res.Attack = &out
			if out.Completed {
				// The defense let the attack through: quarantine the
				// tenant rather than keep serving from a compromised guest.
				res.Compromised = true
				res.Dead = true
				drainMonitor(&res, prot, true)
				break
			}
			drainMonitor(&res, prot, out.Killed)
			if out.Killed {
				res.KilledBy = out.KilledBy
				retire(cfg, &res, &attempt, true)
				continue
			}
			// Blocked without a kill: recycle the incarnation to finish the
			// remaining units on a clean guest (no failure charged).
			res.Restarts++
			continue
		}

		drainMonitor(&res, prot, false)
		if res.Units >= cfg.Units {
			break
		}
		// Incarnation finished its slice without error but units remain
		// (post-restart continuation): loop launches the next incarnation.
	}
	return res, priv, nil
}

// runSlice drives one incarnation through a slice of units, staging the
// fleet's policy hot reload where the tenant's cumulative unit count
// crosses cfg.ReloadAt. done is the tenant's progress before this slice.
//
// The generation is staged, not applied: the monitor swaps it in at its
// next trap boundary, so the guest keeps running throughout and every
// trap is judged under exactly one generation. An incarnation launched
// after the reload point (post-restart) stages the generation before its
// first unit, bringing the fresh monitor up to fleet policy immediately.
func runSlice(cfg *Config, app string, arts *Artifacts, prot *core.Protected, driver workload.Target, done, units int) (workload.Result, error) {
	if cfg.ReloadAt == 0 || done+units <= cfg.ReloadAt {
		return workload.Run(driver, prot, units)
	}
	gen, err := reloadGeneration(cfg, app, arts)
	if err != nil {
		return workload.Result{}, err
	}
	cut := cfg.ReloadAt - done
	if cut <= 0 {
		if err := prot.Monitor.StageGeneration(gen); err != nil {
			return workload.Result{}, err
		}
		return workload.Run(driver, prot, units)
	}
	head, err := workload.Run(driver, prot, cut)
	if err != nil {
		return head, err
	}
	if err := prot.Monitor.StageGeneration(gen); err != nil {
		return head, err
	}
	tail, err := workload.Continue(driver, prot, cut, units-cut)
	head.Units += tail.Units
	head.Bytes += tail.Bytes
	head.InitCycles += tail.InitCycles
	head.TotalCycles += tail.TotalCycles
	head.MonitorCycles += tail.MonitorCycles
	head.Traps += tail.Traps
	return head, err
}

// launchTenant builds one incarnation: fresh kernel and clock, fixtures,
// and a monitored launch from (possibly shared) artifacts.
func launchTenant(cfg *Config, idx int, app string, withAttackFixtures bool, arts *Artifacts) (*core.Protected, workload.Target, error) {
	target, err := workload.NewTarget(app)
	if err != nil {
		return nil, nil, err
	}
	art, err := arts.Compiled(app)
	if err != nil {
		return nil, nil, err
	}

	k := kernel.New(nil)
	k.Costs.IOPerByte = workload.IOPerByte(app)
	if withAttackFixtures {
		// Before the workload fixture, so workload-owned paths win.
		attacks.InstallFixtures(k)
	}
	if err := target.Fixture(k); err != nil {
		return nil, nil, err
	}

	mcfg, err := arts.Config(app, cfg.monitorConfig())
	if err != nil {
		return nil, nil, err
	}
	// Telemetry fields go on the per-incarnation copy after the artifact
	// cache resolves it: they never participate in the shared filter key,
	// and each incarnation gets a private sink.
	if cfg.Trace {
		mcfg.Sink = &obs.BufferSink{}
	}
	mcfg.FlightN = cfg.FlightN
	mcfg.Tenant = idx

	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = defaultMaxSteps
	}
	prot, err := core.Launch(art, k, mcfg, vm.WithMaxSteps(maxSteps))
	if err != nil {
		return nil, nil, err
	}
	return prot, target, nil
}

// replayAttack adopts the live tenant into an attack environment and runs
// the scenario against it.
func replayAttack(cfg *Config, app, id string, prot *core.Protected, target workload.Target) AttackOutcome {
	s, _ := attacks.ByID(id) // validated in Config.Validate
	var env *attacks.Env
	switch t := target.(type) {
	case *workload.Nginx:
		env = attacks.Adopt(app, prot, t.ListenFD(), nil, 0)
	case *workload.SQLite:
		conn, fd := t.Terminal(0)
		env = attacks.Adopt(app, prot, t.ListenFD(), conn, fd)
	case *workload.Vsftpd:
		env = attacks.Adopt(app, prot, t.ListenFD(), nil, 0)
	default:
		env = attacks.Adopt(app, prot, 0, nil, 0)
	}
	out := attacks.Replay(s, env)
	return AttackOutcome{
		ID:        id,
		Completed: out.Completed,
		Killed:    out.Killed,
		KilledBy:  out.KilledBy,
		Reason:    out.Reason,
	}
}

// accumulate folds one incarnation's workload measurement into the tenant
// totals.
func accumulate(res *TenantResult, wl workload.Result, prot *core.Protected) {
	res.Units += wl.Units
	res.Bytes += wl.Bytes
	res.InitCycles += wl.InitCycles
	res.TotalCycles += wl.TotalCycles
	res.MonitorCycles += wl.MonitorCycles
	res.Traps += wl.Traps
	_ = prot
}

// drainMonitor folds the incarnation's monitor-side statistics into the
// tenant totals (called once per incarnation, after its last guest work).
// crashed marks an incarnation that died rather than finished; together
// with recorded violations it decides whether the incarnation's flight
// recorder is worth keeping.
func drainMonitor(res *TenantResult, prot *core.Protected, crashed bool) {
	mon := prot.Monitor
	res.CacheHits += mon.CacheHits
	res.CacheMisses += mon.CacheMisses
	res.FlowChecks += mon.FlowChecks
	res.OffloadAvoided += mon.OffloadAvoided()
	res.Reloads += mon.Reloads
	res.ReloadCycles += mon.ReloadCycles
	if g := mon.GenerationID(); g > res.Gen {
		res.Gen = g
	}
	for _, v := range mon.Violations {
		res.Violations = append(res.Violations, v.String())
		res.ViolationMask |= v.Context
	}
	if res.Metrics != nil && mon.Metrics != nil {
		mustMerge(res.Metrics, mon.Metrics)
	}
	if sink, ok := mon.Cfg.Sink.(*obs.BufferSink); ok && sink != nil {
		// Each incarnation numbers its traps from zero; re-stamp to one
		// tenant-wide sequence so the merged trace stays totally ordered.
		for _, ev := range sink.Events {
			ev.Seq = uint64(len(res.Events))
			res.Events = append(res.Events, ev)
		}
	}
	if mon.Recorder != nil && mon.Recorder.Len() > 0 && (crashed || len(mon.Violations) > 0) {
		res.Flight = mon.Recorder.DumpJSONL()
	}
}

// retire ends an incarnation after a failure, charging the right counter
// and the restart budget. kill selects the security-kill counter.
func retire(cfg *Config, res *TenantResult, attempt *int, kill bool) {
	if kill {
		res.Kills++
	} else {
		res.Faults++
	}
	if res.Restarts >= cfg.MaxRestarts {
		res.Dead = true
		return
	}
	res.Restarts++
	*attempt++
}

// classifyKill reports whether a workload error is a security kill
// (seccomp or monitor) as opposed to a fault.
func classifyKill(err error) bool {
	var ke *vm.KillError
	return errors.As(err, &ke)
}
