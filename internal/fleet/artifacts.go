// Package fleet implements the BASTION fleet supervisor: it runs many
// independent protected guest instances (tenants) concurrently, each with
// its own kernel, clock, machine, monitor, and verdict cache, while the
// expensive per-workload artifacts — the instrumented IR program, its
// context metadata, and the compiled seccomp filter — are compiled once
// and shared immutably across every tenant that runs the same workload.
//
// The paper evaluates one monitored process at a time; this package is
// the layer that multiplies the single-guest fast paths to a machine's
// worth of protected processes. A tenant whose guest is killed by the
// monitor or faults is restarted with capped exponential backoff without
// disturbing its siblings, and the supervisor aggregates per-tenant and
// fleet-wide statistics into one Report.
package fleet

import (
	"sync"

	"bastion/internal/core"
	"bastion/internal/core/monitor"
	"bastion/internal/ir"
	"bastion/internal/seccomp"
	"bastion/internal/workload"
)

// Artifacts compiles workload artifacts once per key and shares the
// results. All methods are safe for concurrent use; the returned programs,
// metadata, and filters are immutable after compilation, so any number of
// tenants (or bench experiments) may launch from them simultaneously.
type Artifacts struct {
	mu       sync.Mutex
	compiled map[string]*artEntry
	raw      map[string]*rawEntry
	filters  map[filterKey]*filterEntry
	gens     map[genKey]*genEntry

	compiles       int
	filterCompiles int
}

type artEntry struct {
	once sync.Once
	art  *core.Artifact
	err  error
}

type rawEntry struct {
	once sync.Once
	prog *ir.Program
	err  error
}

// filterKey is the filter-relevant subset of monitor.Config.
type filterKey struct {
	app        string
	mode       monitor.Mode
	contexts   monitor.Context
	extendFS   bool
	treeFilter bool
	offload    bool
}

type filterEntry struct {
	once sync.Once
	prog []seccomp.Insn
	err  error
}

// genKey identifies a hot-reload generation bundle: the filter key plus
// the verdict-cache knob (which shapes verdicts but not the filter) and
// the generation ID.
type genKey struct {
	filterKey
	verdictCache bool
	id           uint64
}

type genEntry struct {
	once sync.Once
	gen  *monitor.Generation
	err  error
}

// NewArtifacts returns an empty shared-artifact cache.
func NewArtifacts() *Artifacts {
	return &Artifacts{
		compiled: map[string]*artEntry{},
		raw:      map[string]*rawEntry{},
		filters:  map[filterKey]*filterEntry{},
		gens:     map[genKey]*genEntry{},
	}
}

// Compiled returns the instrumented artifact (program + metadata +
// instrumentation stats) for the named workload application, compiling it
// on first use. The artifact is read-only after compilation: machines copy
// globals into their own address spaces at load, and the monitor only
// reads metadata.
func (a *Artifacts) Compiled(app string) (*core.Artifact, error) {
	a.mu.Lock()
	e := a.compiled[app]
	if e == nil {
		e = &artEntry{}
		a.compiled[app] = e
	}
	a.mu.Unlock()
	e.once.Do(func() {
		t, err := workload.NewTarget(app)
		if err != nil {
			e.err = err
			return
		}
		e.art, e.err = core.Compile(t.Build(), core.CompileOptions{})
		a.count(&a.compiles)
	})
	return e.art, e.err
}

// Raw returns the uninstrumented, linked program for the named workload
// application — the baseline (vanilla/CET/CFI) launch image — compiling
// and linking it on first use.
func (a *Artifacts) Raw(app string) (*ir.Program, error) {
	a.mu.Lock()
	e := a.raw[app]
	if e == nil {
		e = &rawEntry{}
		a.raw[app] = e
	}
	a.mu.Unlock()
	e.once.Do(func() {
		t, err := workload.NewTarget(app)
		if err != nil {
			e.err = err
			return
		}
		prog := t.Build()
		if err := prog.Link(); err != nil {
			e.err = err
			return
		}
		e.prog = prog
		a.count(&a.compiles)
	})
	return e.prog, e.err
}

// Config returns cfg with the precompiled seccomp filter for (app, cfg)
// attached, compiling the filter on first use per filter-relevant key.
func (a *Artifacts) Config(app string, cfg monitor.Config) (monitor.Config, error) {
	art, err := a.Compiled(app)
	if err != nil {
		return cfg, err
	}
	key := filterKey{
		app:        app,
		mode:       cfg.Mode,
		contexts:   cfg.Contexts,
		extendFS:   cfg.ExtendFS,
		treeFilter: cfg.TreeFilter,
		offload:    cfg.Offload,
	}
	a.mu.Lock()
	e := a.filters[key]
	if e == nil {
		e = &filterEntry{}
		a.filters[key] = e
	}
	a.mu.Unlock()
	e.once.Do(func() {
		e.prog, e.err = monitor.BuildFilter(art.Meta, cfg)
		a.count(&a.filterCompiles)
	})
	if e.err != nil {
		return cfg, e.err
	}
	cfg.Filter = e.prog
	return cfg, nil
}

// Generation returns the hot-reload generation bundle for (id, app, cfg),
// building it once per key and sharing the immutable result across every
// tenant that stages it. The bundle's filter goes through the same cached
// compilation as launch filters, so reload filter compiles are counted
// (and amortized) exactly like launch ones.
func (a *Artifacts) Generation(id uint64, app string, cfg monitor.Config) (*monitor.Generation, error) {
	art, err := a.Compiled(app)
	if err != nil {
		return nil, err
	}
	cfg, err = a.Config(app, cfg)
	if err != nil {
		return nil, err
	}
	key := genKey{
		filterKey: filterKey{
			app:        app,
			mode:       cfg.Mode,
			contexts:   cfg.Contexts,
			extendFS:   cfg.ExtendFS,
			treeFilter: cfg.TreeFilter,
			offload:    cfg.Offload,
		},
		verdictCache: cfg.VerdictCache,
		id:           id,
	}
	a.mu.Lock()
	e := a.gens[key]
	if e == nil {
		e = &genEntry{}
		a.gens[key] = e
	}
	a.mu.Unlock()
	e.once.Do(func() {
		e.gen, e.err = monitor.NewGeneration(id, art.Meta, cfg, cfg.Filter)
	})
	return e.gen, e.err
}

func (a *Artifacts) count(c *int) {
	a.mu.Lock()
	*c++
	a.mu.Unlock()
}

// Compiles reports how many program compilations (instrumented or raw)
// this cache has performed — the shared-vs-per-tenant ablation's
// deterministic setup-cost measure.
func (a *Artifacts) Compiles() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.compiles
}

// FilterCompiles reports how many seccomp filter compilations this cache
// has performed.
func (a *Artifacts) FilterCompiles() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.filterCompiles
}
