package fleet

import (
	"reflect"
	"strings"
	"testing"

	"bastion/internal/core/monitor"
	"bastion/internal/obs"
)

// normVerdict folds the verdict cache out of a verdict: a cached answer
// is by construction the same answer a fresh judgment would give, so the
// differential comparison treats them as equal.
func normVerdict(v obs.Verdict) obs.Verdict {
	if v == obs.VerdictCached {
		return obs.VerdictPass
	}
	return v
}

// verdictTuple is the policy-visible outcome of one trap, independent of
// cycle timing and cache temperature.
type verdictTuple struct {
	nr             uint32
	name           string
	ct, cf, ai, sf obs.Verdict
	violation      string
}

func tupleOf(e obs.TrapEvent) verdictTuple {
	return verdictTuple{
		nr:   e.Nr,
		name: e.Name,
		ct:   normVerdict(e.CT),
		cf:   normVerdict(e.CF),
		ai:   normVerdict(e.AI),
		sf:   normVerdict(e.SF),
		violation: e.Violation,
	}
}

// TestHotReloadDifferential is the generation-stamped differential suite:
// a fleet that hot-reloads its policy mid-run is compared against two
// pinned fleets — one running the launch policy end to end, one running
// the reload policy end to end.
//
//   - Every event the reloaded run stamps generation 0 (including the
//     boundary trap the swap rides) is BYTE-identical to the pinned
//     generation-0 run's event at the same position: staging a reload
//     perturbs nothing before it applies.
//   - Every generation-1 event's verdict tuple matches the pinned
//     generation-1 run's event at the same position (cache temperature
//     normalized): after the swap, verdicts are exactly what a fleet
//     launched under the new policy would issue.
//   - Generations are monotone per tenant — no event under the old
//     generation after the first event under the new one, which together
//     with the monitor's torn-policy test rules out mixed-generation
//     judgments.
//
// The reload spec keeps the trapped syscall set identical (it toggles
// tree filter + verdict cache and drops the SF context, none of which
// change which syscalls trap), so events align position-by-position.
func TestHotReloadDifferential(t *testing.T) {
	const units, reloadAt = 8, 4
	base := DefaultConfig(3, units)
	base.Seed = 21
	base.Trace = true
	base.Deterministic = true

	spec := &PolicySpec{
		Contexts:     monitor.CallType | monitor.ControlFlow | monitor.ArgIntegrity,
		UseContexts:  true,
		VerdictCache: true,
		TreeFilter:   true,
	}

	reloaded := base
	reloaded.ReloadAt = reloadAt
	reloaded.ReloadSpec = spec
	rep, err := Run(reloaded)
	if err != nil {
		t.Fatal(err)
	}

	pin0, err := Run(base) // launch policy, end to end
	if err != nil {
		t.Fatal(err)
	}

	pin1cfg := base // reload policy, end to end
	pin1cfg.Contexts = spec.Contexts
	pin1cfg.UseContexts = true
	pin1cfg.VerdictCache = spec.VerdictCache
	pin1cfg.TreeFilter = spec.TreeFilter
	pin1, err := Run(pin1cfg)
	if err != nil {
		t.Fatal(err)
	}

	for i := range rep.Results {
		res := &rep.Results[i]
		if res.Units != units || res.Restarts != 0 || res.Dead {
			t.Fatalf("tenant %d did not sail through the reload: %+v", i, res)
		}
		if res.Reloads != 1 || res.Gen != 1 || res.ReloadCycles == 0 {
			t.Fatalf("tenant %d reload accounting: reloads=%d gen=%d cycles=%d",
				i, res.Reloads, res.Gen, res.ReloadCycles)
		}

		ev := res.Events
		split := len(ev)
		for j, e := range ev {
			switch e.Gen {
			case 0:
				if j > split {
					t.Fatalf("tenant %d: generation-0 event at %d after the swap at %d", i, j, split)
				}
			case 1:
				if split == len(ev) {
					split = j
				}
			default:
				t.Fatalf("tenant %d event %d under unknown generation %d", i, j, e.Gen)
			}
		}
		if split == 0 || split == len(ev) {
			t.Fatalf("tenant %d: swap boundary not inside the trace (split=%d of %d)", i, split, len(ev))
		}

		p0 := pin0.Results[i].Events
		if len(p0) < split {
			t.Fatalf("tenant %d: pinned gen-0 trace shorter (%d) than reloaded prefix (%d)", i, len(p0), split)
		}
		if !reflect.DeepEqual(ev[:split], p0[:split]) {
			t.Errorf("tenant %d: generation-0 prefix diverges from pinned gen-0 run", i)
		}

		p1 := pin1.Results[i].Events
		if len(p1) != len(ev) {
			t.Fatalf("tenant %d: trapped sets diverge (%d events reloaded, %d pinned gen-1)", i, len(ev), len(p1))
		}
		for j := split; j < len(ev); j++ {
			if got, want := tupleOf(ev[j]), tupleOf(p1[j]); got != want {
				t.Errorf("tenant %d event %d: verdicts %+v diverge from pinned gen-1 %+v", i, j, got, want)
			}
		}
	}

	if rep.Reloads() != uint64(base.Tenants) {
		t.Errorf("fleet applied %d reloads, want %d", rep.Reloads(), base.Tenants)
	}
	md := rep.Markdown()
	if !strings.Contains(md, "Hot reload: staged at unit 4") {
		t.Errorf("report omits the hot-reload line:\n%s", md)
	}
}

// TestHotReloadDeterministic: the reloaded fleet is itself byte-stable
// across reruns and across concurrent vs serial dispatch.
func TestHotReloadDeterministic(t *testing.T) {
	cfg := DefaultConfig(6, 6)
	cfg.Seed = 33
	cfg.Trace = true
	cfg.ReloadAt = 3
	cfg.ReloadSpec = &PolicySpec{VerdictCache: true, TreeFilter: true}
	cfg.Shards = 2

	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Markdown() != r2.Markdown() {
		t.Fatal("reloaded fleet report not deterministic")
	}
	det := cfg
	det.Deterministic = true
	r3, err := Run(det)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Markdown() != r3.Markdown() {
		t.Fatal("reloaded fleet differs between concurrent and serial dispatch")
	}
}

// TestHotReloadSurvivesRestart: an incarnation that crashes after the
// reload point re-stages the generation at its next launch, so the
// replacement monitor comes up on fleet policy (one extra swap, same
// final generation).
func TestHotReloadSurvivesRestart(t *testing.T) {
	cfg := DefaultConfig(1, 8, "nginx")
	cfg.Deterministic = true
	cfg.ReloadAt = 4
	cfg.ReloadSpec = &PolicySpec{VerdictCache: true}
	cfg.FaultAt = map[int]int{0: 6}

	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Results[0]
	if res.Units != cfg.Units || res.Faults != 1 || res.Restarts != 1 {
		t.Fatalf("restart path off: %+v", res)
	}
	if res.Reloads != 2 {
		t.Errorf("reloads = %d, want 2 (original swap + post-restart re-stage)", res.Reloads)
	}
	if res.Gen != 1 {
		t.Errorf("final generation %d, want 1", res.Gen)
	}
}
