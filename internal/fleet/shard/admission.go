package shard

// AdmissionConfig shapes one shard's admission control. The shard grants
// tenant launches from a token bucket (Burst tokens up front, one more
// every RefillCycles) and parks arrivals that find the bucket empty in a
// FIFO queue of at most QueueDepth waiters. An arrival that finds the
// queue full is REJECTED with a retry-after — bounded memory and an
// explicit backpressure signal instead of an unbounded backlog — and
// retries RetryCycles later.
type AdmissionConfig struct {
	// Burst is the bucket capacity and its initial fill (min 1).
	Burst int
	// RefillCycles is the simulated-cycle interval between new tokens; 0
	// disables rate limiting (every arrival is granted immediately).
	RefillCycles uint64
	// QueueDepth bounds the waiters a shard parks; arrivals beyond it are
	// rejected with retry-after.
	QueueDepth int
	// RetryCycles is the retry-after a rejected arrival waits before
	// re-presenting itself.
	RetryCycles uint64
	// ArrivalSpacing separates consecutive arrivals on one shard's
	// timeline (admission position i arrives at i*ArrivalSpacing).
	ArrivalSpacing uint64
}

// DefaultAdmission admits generously: burst 64, a 50 µs token interval at
// the simulation's 1 GHz, a 256-deep queue, 1 ms retry, 1 µs arrival
// spacing. Small fleets sail through; tight variants of this config are
// what the scaling bench and the backpressure tests pass explicitly.
func DefaultAdmission() AdmissionConfig {
	return AdmissionConfig{
		Burst:          64,
		RefillCycles:   50_000,
		QueueDepth:     256,
		RetryCycles:    1_000_000,
		ArrivalSpacing: 1_000,
	}
}

// Grant is one tenant's admission outcome on its shard.
type Grant struct {
	Tenant int
	// Arrival is the tenant's first presentation on the shard timeline;
	// Admit the cycle its launch was granted. Admit-Arrival is the
	// admission latency charged to the tenant's elapsed timeline.
	Arrival uint64
	Admit   uint64
	// Rejects counts full-queue rejections the tenant absorbed before a
	// retry was finally queued or granted.
	Rejects int
}

// Wait is the admission latency the grant charged the tenant.
func (g Grant) Wait() uint64 { return g.Admit - g.Arrival }

// bucket is the token-bucket state machine. Refill ticks land every
// RefillCycles while the bucket is below capacity; a full bucket pauses
// the clock (tokens never overflow), and consumption from a full bucket
// restarts it.
type bucket struct {
	tokens   int
	cap      int
	interval uint64
	nextTick uint64
}

// advance credits every refill tick that lands at or before t.
func (b *bucket) advance(t uint64) {
	for b.tokens < b.cap && b.nextTick <= t {
		b.tokens++
		tick := b.nextTick
		b.nextTick += b.interval
		if b.tokens == b.cap {
			// Full: the clock pauses; remember nothing past this tick.
			b.nextTick = tick + b.interval // restarted properly on consume
		}
	}
}

// consume takes one token at time t (caller guarantees availability).
func (b *bucket) consume(t uint64) {
	if b.tokens == b.cap {
		b.nextTick = t + b.interval
	}
	b.tokens--
}

// Plan simulates one shard's admission of its members (in order) and
// returns one grant per member, in member order. The simulation is pure
// and deterministic: member i first arrives at i*ArrivalSpacing, tokens
// refill on the fixed interval, waiters are granted FIFO exactly at the
// tick that frees a token, and a rejected arrival re-presents itself
// whole RetryCycles later, competing with whoever arrived meanwhile.
func Plan(cfg AdmissionConfig, members []int) []Grant {
	if cfg.Burst < 1 {
		cfg.Burst = 1
	}
	grants := make([]Grant, len(members))
	for i, tenant := range members {
		at := uint64(i) * cfg.ArrivalSpacing
		grants[i] = Grant{Tenant: tenant, Arrival: at, Admit: at}
	}
	if cfg.RefillCycles == 0 {
		return grants // rate limiting off: granted on arrival
	}

	b := &bucket{tokens: cfg.Burst, cap: cfg.Burst, interval: cfg.RefillCycles, nextTick: cfg.RefillCycles}

	// Pending events, processed in (time, member) order so the plan is
	// deterministic regardless of how retries interleave with arrivals.
	type event struct {
		at  uint64
		idx int
	}
	events := make([]event, 0, len(members))
	for i := range members {
		events = append(events, event{at: grants[i].Arrival, idx: i})
	}
	pop := func() event {
		best := 0
		for i := 1; i < len(events); i++ {
			if events[i].at < events[best].at ||
				(events[i].at == events[best].at && events[i].idx < events[best].idx) {
				best = i
			}
		}
		ev := events[best]
		events = append(events[:best], events[best+1:]...)
		return ev
	}

	var queue []int // member indices waiting, FIFO

	// drainUntil grants queued waiters token-by-token at the exact tick
	// each token lands, up to and including time limit. Waiters are only
	// ever parked while the bucket is empty, and every landing token goes
	// straight to the queue head, so every queued grant happens at a tick.
	drainUntil := func(limit uint64) {
		for len(queue) > 0 {
			tick := b.nextTick
			if tick > limit {
				return
			}
			b.advance(tick)
			b.consume(tick)
			grants[queue[0]].Admit = tick
			queue = queue[1:]
		}
	}

	for len(events) > 0 {
		ev := pop()
		// Queued waiters are ahead of this arrival: grant everyone whose
		// token lands at or before the arrival instant.
		drainUntil(ev.at)
		b.advance(ev.at)
		switch {
		case len(queue) == 0 && b.tokens > 0:
			b.consume(ev.at)
			grants[ev.idx].Admit = ev.at
		case len(queue) < cfg.QueueDepth:
			queue = append(queue, ev.idx)
		default:
			grants[ev.idx].Rejects++
			events = append(events, event{at: ev.at + cfg.RetryCycles, idx: ev.idx})
		}
	}
	drainUntil(^uint64(0))
	return grants
}

// TotalRejects sums full-queue rejections across a plan.
func TotalRejects(grants []Grant) int {
	n := 0
	for _, g := range grants {
		n += g.Rejects
	}
	return n
}

// MaxWait returns the plan's worst admission latency in cycles.
func MaxWait(grants []Grant) uint64 {
	var m uint64
	for _, g := range grants {
		if w := g.Wait(); w > m {
			m = w
		}
	}
	return m
}
