// Package shard is the fleet control plane's sharding layer: a consistent-
// hash placement ring mapping tenants onto K shard supervisors, and a
// deterministic admission model — per-shard token buckets and bounded
// queues with reject-plus-retry backpressure — that decides when each
// tenant's launch is granted.
//
// Everything here is pure computation over the fleet's seeded schedule: no
// goroutines, no wall clock, no map iteration feeding output. The fleet
// supervisor computes the whole placement and admission plan up front,
// then dispatches tenants concurrently; because the plan is fixed before
// the first goroutine starts, a sharded fleet report is byte-identical
// whether the shards run serially or in parallel.
package shard

// Ring is a consistent-hash placement ring: each shard projects Vnodes
// virtual points onto the hash circle, and a tenant lands on the first
// point clockwise from its own hash. Consistent hashing keeps placement
// stable as the shard count changes — growing K moves only ~1/K of the
// tenants — which is what lets a production fleet resize its control
// plane without a mass migration.
type Ring struct {
	shards int
	points []point // sorted by hash
}

type point struct {
	hash  uint64
	shard int
}

// DefaultVnodes balances the ring well past 4k tenants while keeping ring
// construction trivial.
const DefaultVnodes = 64

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hash64 is FNV-1a over the byte string; stable across runs and platforms.
func hash64(parts ...uint64) uint64 {
	h := uint64(fnvOffset64)
	for _, p := range parts {
		for i := 0; i < 8; i++ {
			h = (h ^ (p >> (8 * i) & 0xff)) * fnvPrime64
		}
	}
	return h
}

// NewRing builds a ring of the given shard count; vnodes <= 0 selects
// DefaultVnodes.
func NewRing(shards, vnodes int) *Ring {
	if shards < 1 {
		shards = 1
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{shards: shards, points: make([]point, 0, shards*vnodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hash64(uint64(s), uint64(v), 0x9e3779b97f4a7c15), shard: s})
		}
	}
	// Insertion sort keeps this dependency-free and deterministic; ties
	// (vanishingly rare with 64-bit hashes) break toward the lower shard.
	pts := r.points
	for i := 1; i < len(pts); i++ {
		for j := i; j > 0 && less(pts[j], pts[j-1]); j-- {
			pts[j], pts[j-1] = pts[j-1], pts[j]
		}
	}
	return r
}

func less(a, b point) bool {
	if a.hash != b.hash {
		return a.hash < b.hash
	}
	return a.shard < b.shard
}

// Shards returns the ring's shard count.
func (r *Ring) Shards() int { return r.shards }

// Place maps a tenant index to its owning shard: binary search for the
// first ring point at or clockwise past the tenant's hash.
func (r *Ring) Place(tenant int) int {
	h := hash64(uint64(tenant), 0x62617374696f6e) // "bastion"
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.points[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.points) {
		lo = 0 // wrap past the top of the circle
	}
	return r.points[lo].shard
}

// Members splits tenants 0..n-1 into per-shard member lists, preserving
// the given dispatch order within each shard (the fleet passes its seeded
// schedule, so per-shard admission order inherits the fleet's).
func (r *Ring) Members(schedule []int) [][]int {
	out := make([][]int, r.shards)
	for _, tenant := range schedule {
		s := r.Place(tenant)
		out[s] = append(out[s], tenant)
	}
	return out
}
