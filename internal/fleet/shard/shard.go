package shard

// Shard is one control-plane supervisor's static plan: the tenants the
// placement ring assigned to it (in fleet dispatch order) and the
// admission grant for each. The fleet builds every shard up front — pure
// computation over the seeded schedule — then gives each shard its own
// goroutine pool; per-shard observability registries are merged into the
// fleet report afterward, in shard order.
type Shard struct {
	ID      int
	Members []int   // tenant indices, in fleet schedule order
	Grants  []Grant // one per member, same order
}

// Rejects sums full-queue rejections across the shard's grants.
func (s *Shard) Rejects() int { return TotalRejects(s.Grants) }

// MaxWait is the shard's worst admission latency in cycles.
func (s *Shard) MaxWait() uint64 { return MaxWait(s.Grants) }

// Build computes the whole control plane: places the scheduled tenants
// onto shards with a consistent-hash ring and runs each shard's admission
// plan. The result depends only on (shards, vnodes, cfg, schedule), so a
// sharded fleet run is reproducible no matter how the shards' goroutine
// pools interleave.
func Build(shards, vnodes int, cfg AdmissionConfig, schedule []int) []*Shard {
	ring := NewRing(shards, vnodes)
	members := ring.Members(schedule)
	out := make([]*Shard, ring.Shards())
	for id := range out {
		out[id] = &Shard{
			ID:      id,
			Members: members[id],
			Grants:  Plan(cfg, members[id]),
		}
	}
	return out
}
