package shard

import "testing"

func members(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

func TestPlanBurstAdmitsImmediately(t *testing.T) {
	cfg := AdmissionConfig{Burst: 8, RefillCycles: 1000, QueueDepth: 8, RetryCycles: 100, ArrivalSpacing: 0}
	grants := Plan(cfg, members(8))
	for i, g := range grants {
		if g.Admit != g.Arrival || g.Rejects != 0 {
			t.Errorf("grant %d within burst delayed: %+v", i, g)
		}
	}
}

func TestPlanRateLimitsPastBurst(t *testing.T) {
	// 2-token burst, one token per 1000 cycles, everyone arrives at 0:
	// members 0,1 admit at 0; member 2 at tick 1000; member 3 at 2000.
	cfg := AdmissionConfig{Burst: 2, RefillCycles: 1000, QueueDepth: 8, RetryCycles: 100, ArrivalSpacing: 0}
	grants := Plan(cfg, members(4))
	want := []uint64{0, 0, 1000, 2000}
	for i, g := range grants {
		if g.Admit != want[i] {
			t.Errorf("member %d admitted at %d, want %d", i, g.Admit, want[i])
		}
		if g.Rejects != 0 {
			t.Errorf("member %d rejected %d times under a deep queue", i, g.Rejects)
		}
	}
}

func TestPlanRejectsWithRetryAfter(t *testing.T) {
	// Burst 1, queue depth 1: member 0 takes the token, member 1 queues,
	// members 2+ find the queue full and must retry later. Rejections are
	// the backpressure signal; everyone is still eventually admitted.
	cfg := AdmissionConfig{Burst: 1, RefillCycles: 1000, QueueDepth: 1, RetryCycles: 700, ArrivalSpacing: 0}
	grants := Plan(cfg, members(4))
	if grants[0].Admit != 0 {
		t.Fatalf("member 0: %+v", grants[0])
	}
	if grants[1].Admit != 1000 {
		t.Fatalf("member 1 should take the first tick: %+v", grants[1])
	}
	rejected := 0
	for _, g := range grants[2:] {
		rejected += g.Rejects
		if g.Admit == g.Arrival {
			t.Errorf("member %d admitted instantly despite full queue: %+v", g.Tenant, g)
		}
	}
	if rejected == 0 {
		t.Fatal("no rejections despite queue depth 1 and 3 contenders")
	}
	// Retry timing: a rejected arrival re-presents RetryCycles later, so
	// its admission is at least that far past its arrival.
	for _, g := range grants[2:] {
		if g.Rejects > 0 && g.Wait() < cfg.RetryCycles {
			t.Errorf("member %d waited %d < retry-after %d", g.Tenant, g.Wait(), cfg.RetryCycles)
		}
	}
}

func TestPlanNoRateLimit(t *testing.T) {
	cfg := AdmissionConfig{Burst: 1, RefillCycles: 0, QueueDepth: 0, ArrivalSpacing: 500}
	grants := Plan(cfg, members(64))
	for i, g := range grants {
		if g.Admit != uint64(i)*500 || g.Rejects != 0 {
			t.Errorf("grant %d with rate limiting off: %+v", i, g)
		}
	}
}

func TestPlanDeterministic(t *testing.T) {
	cfg := AdmissionConfig{Burst: 3, RefillCycles: 777, QueueDepth: 2, RetryCycles: 1234, ArrivalSpacing: 100}
	a := Plan(cfg, members(64))
	b := Plan(cfg, members(64))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plan diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestPlanBucketCapRespected(t *testing.T) {
	// Long idle gap: tokens must cap at Burst, not accumulate unboundedly.
	// Arrivals far apart (spacing 10*refill) keep the bucket pegged full;
	// then a burst of late arrivals at the same instant can only draw
	// Burst tokens before queueing.
	cfg := AdmissionConfig{Burst: 2, RefillCycles: 100, QueueDepth: 64, RetryCycles: 50, ArrivalSpacing: 0}
	// Hand-build arrivals: use spacing 0 and a large member set; after
	// the initial 2 instant grants, every grant rides a tick, proving no
	// idle credit beyond the cap leaked in.
	grants := Plan(cfg, members(6))
	instant := 0
	for _, g := range grants {
		if g.Wait() == 0 {
			instant++
		}
	}
	if instant != cfg.Burst {
		t.Fatalf("%d instant grants, want exactly burst %d", instant, cfg.Burst)
	}
}

func TestBuildPartitionsFleet(t *testing.T) {
	schedule := make([]int, 512)
	for i := range schedule {
		schedule[i] = 511 - i
	}
	shards := Build(8, 0, DefaultAdmission(), schedule)
	if len(shards) != 8 {
		t.Fatalf("built %d shards, want 8", len(shards))
	}
	seen := map[int]bool{}
	for _, s := range shards {
		if len(s.Members) != len(s.Grants) {
			t.Fatalf("shard %d: %d members but %d grants", s.ID, len(s.Members), len(s.Grants))
		}
		for i, tenant := range s.Members {
			if seen[tenant] {
				t.Fatalf("tenant %d on two shards", tenant)
			}
			seen[tenant] = true
			if s.Grants[i].Tenant != tenant {
				t.Fatalf("shard %d grant %d is for tenant %d, want %d", s.ID, i, s.Grants[i].Tenant, tenant)
			}
		}
	}
	if len(seen) != len(schedule) {
		t.Fatalf("shards cover %d tenants, want %d", len(seen), len(schedule))
	}
}
