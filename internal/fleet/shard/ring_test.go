package shard

import "testing"

func TestRingPlacementDeterministic(t *testing.T) {
	a := NewRing(8, 0)
	b := NewRing(8, 0)
	for tenant := 0; tenant < 1000; tenant++ {
		if a.Place(tenant) != b.Place(tenant) {
			t.Fatalf("tenant %d placed differently by identical rings", tenant)
		}
	}
}

func TestRingCoversAllShards(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 16} {
		r := NewRing(shards, 0)
		seen := make([]int, shards)
		for tenant := 0; tenant < 4096; tenant++ {
			s := r.Place(tenant)
			if s < 0 || s >= shards {
				t.Fatalf("shards=%d: tenant %d placed on %d", shards, tenant, s)
			}
			seen[s]++
		}
		for id, n := range seen {
			if n == 0 {
				t.Errorf("shards=%d: shard %d received no tenants", shards, id)
			}
		}
	}
}

func TestRingBalance(t *testing.T) {
	// With 64 vnodes per shard, 4096 tenants over 16 shards should land
	// within a loose factor of the 256-per-shard ideal: consistent
	// hashing is not perfectly uniform, but it must not collapse.
	r := NewRing(16, 0)
	counts := make([]int, 16)
	for tenant := 0; tenant < 4096; tenant++ {
		counts[r.Place(tenant)]++
	}
	for id, n := range counts {
		if n < 64 || n > 1024 {
			t.Errorf("shard %d holds %d of 4096 tenants (ideal 256): ring badly unbalanced", id, n)
		}
	}
}

func TestRingStabilityAcrossGrowth(t *testing.T) {
	// Consistent hashing's point: growing the shard count moves only a
	// fraction of the tenants. Going 8 -> 9 shards must move well under
	// half the fleet (1/9 ≈ 11% ideally).
	small, big := NewRing(8, 0), NewRing(9, 0)
	moved := 0
	const tenants = 4096
	for tenant := 0; tenant < tenants; tenant++ {
		if small.Place(tenant) != big.Place(tenant) {
			moved++
		}
	}
	if moved > tenants/2 {
		t.Fatalf("growing 8->9 shards moved %d/%d tenants; consistent hashing broken", moved, tenants)
	}
}

func TestMembersPreserveScheduleOrder(t *testing.T) {
	r := NewRing(4, 0)
	schedule := []int{5, 2, 9, 0, 7, 3, 1, 8, 6, 4}
	members := r.Members(schedule)
	pos := map[int]int{}
	for i, tenant := range schedule {
		pos[tenant] = i
	}
	total := 0
	for id, m := range members {
		total += len(m)
		for i := 1; i < len(m); i++ {
			if pos[m[i-1]] > pos[m[i]] {
				t.Errorf("shard %d members %v out of schedule order", id, m)
			}
		}
		for _, tenant := range m {
			if r.Place(tenant) != id {
				t.Errorf("tenant %d listed on shard %d but places on %d", tenant, id, r.Place(tenant))
			}
		}
	}
	if total != len(schedule) {
		t.Fatalf("members cover %d tenants, want %d", total, len(schedule))
	}
}
