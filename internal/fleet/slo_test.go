package fleet

import (
	"math"
	"strings"
	"testing"

	"bastion/internal/obs"
)

// sloConfig is tracedConfig with generous budgets layered on: a sharded
// fleet where every budget is evaluated but nothing should breach.
func sloConfig() Config {
	cfg := tracedConfig()
	cfg.Shards = 2
	cfg.SLO = &SLOConfig{
		TrapP99Cycles:      1 << 20,
		ViolationsPerKUnit: 1000,
		RejectsPerTenant:   100,
	}
	return cfg
}

func TestSLOConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		slo  SLOConfig
		ok   bool
	}{
		{"zero value", SLOConfig{}, true},
		{"full budgets", SLOConfig{TrapP99Cycles: 4000, ViolationsPerKUnit: 1, RejectsPerTenant: 0.5, WarnFraction: 0.9, AnomalyFactor: 8, AnomalyWarmup: 4}, true},
		{"disabled budgets", SLOConfig{ViolationsPerKUnit: -1, RejectsPerTenant: -1}, true},
		{"negative warn", SLOConfig{WarnFraction: -0.1}, false},
		{"warn at one", SLOConfig{WarnFraction: 1}, false},
		{"anomaly factor one", SLOConfig{AnomalyFactor: 1}, false},
		{"negative anomaly factor", SLOConfig{AnomalyFactor: -2}, false},
		{"negative warmup", SLOConfig{AnomalyWarmup: -1}, false},
	}
	for _, tc := range cases {
		err := tc.slo.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
		}
	}

	// Config.Validate must reject a bad SLO block.
	cfg := DefaultConfig(2, 2)
	cfg.SLO = &SLOConfig{WarnFraction: -1}
	if err := cfg.Validate(); err == nil {
		t.Fatal("fleet config with invalid SLO accepted")
	}
}

// syntheticScope builds a Report + registry whose trap histogram and
// tenant counters are fully controlled, so health math is checked against
// hand-computed numbers.
func syntheticScope(trapCycles []uint64, violations, rejects, units int) (*Report, *obs.Registry) {
	reg := obs.NewRegistry()
	h := reg.Histogram("monitor_trap_cycles", obs.CycleBuckets)
	for _, c := range trapCycles {
		h.Observe(c)
	}
	rep := &Report{Results: make([]TenantResult, 1)}
	tr := &rep.Results[0]
	tr.Units = units
	tr.AdmitRejects = rejects
	for i := 0; i < violations; i++ {
		tr.Violations = append(tr.Violations, "ct:test")
	}
	return rep, reg
}

// TestSLOHealthMath pins the penalty model: utilization at or below the
// warn fraction is free, the warn band ramps 0→25, a breach costs 25–50
// and names the budget, and the overflow quantile always breaches.
func TestSLOHealthMath(t *testing.T) {
	low := make([]uint64, 100) // p99 = 500 bucket
	for i := range low {
		low[i] = 100
	}

	t.Run("all pass", func(t *testing.T) {
		rep, reg := syntheticScope(low, 0, 0, 10)
		cfg := &SLOConfig{TrapP99Cycles: 1000, ViolationsPerKUnit: 1, RejectsPerTenant: 1}
		row := rep.evaluateScope(cfg, 0, []int{0}, reg)
		if row.Status != SLOPass || row.Health != 100 || len(row.Breached) != 0 {
			t.Fatalf("clean scope scored %+v", row)
		}
		if row.P50 != 500 || row.P99 != 500 {
			t.Fatalf("quantiles %d/%d, want 500/500", row.P50, row.P99)
		}
	})

	t.Run("warn band", func(t *testing.T) {
		// p99 = 500 against a 556 budget: utilization ≈ 0.899, warn 0.8 →
		// penalty 25·(0.899−0.8)/0.2 ≈ 12.4 → health 88.
		rep, reg := syntheticScope(low, 0, 0, 10)
		cfg := &SLOConfig{TrapP99Cycles: 556, ViolationsPerKUnit: -1, RejectsPerTenant: -1}
		row := rep.evaluateScope(cfg, 0, []int{0}, reg)
		if row.Status != SLOWarn {
			t.Fatalf("status %v, want WARN (p99=%d)", row.Status, row.P99)
		}
		if row.Health != 88 {
			t.Fatalf("health %d, want 88", row.Health)
		}
		if len(row.Breached) != 0 {
			t.Fatalf("warn row lists breaches: %v", row.Breached)
		}
	})

	t.Run("breach", func(t *testing.T) {
		// p99 = 500 against 400: utilization 1.25 → penalty 25+25·0.25 =
		// 31.25 → health 69.
		rep, reg := syntheticScope(low, 0, 0, 10)
		cfg := &SLOConfig{TrapP99Cycles: 400, ViolationsPerKUnit: -1, RejectsPerTenant: -1}
		row := rep.evaluateScope(cfg, 0, []int{0}, reg)
		if row.Status != SLOBreach || row.Health != 69 {
			t.Fatalf("breach scored %+v", row)
		}
		if len(row.Breached) != 1 || row.Breached[0] != "trap_p99" {
			t.Fatalf("breached budgets %v", row.Breached)
		}
	})

	t.Run("zero tolerance violation", func(t *testing.T) {
		rep, reg := syntheticScope(low, 1, 0, 10)
		cfg := &SLOConfig{ViolationsPerKUnit: 0, RejectsPerTenant: -1}
		row := rep.evaluateScope(cfg, 0, []int{0}, reg)
		if row.Status != SLOBreach || row.Health != 50 {
			t.Fatalf("zero-tolerance violation scored %+v (want BREACH, health 50)", row)
		}
		if len(row.Breached) != 1 || row.Breached[0] != "violations" {
			t.Fatalf("breached budgets %v", row.Breached)
		}
	})

	t.Run("overflow p99 breaches", func(t *testing.T) {
		huge := []uint64{1 << 30, 1 << 30, 1 << 30}
		rep, reg := syntheticScope(huge, 0, 0, 10)
		cfg := &SLOConfig{TrapP99Cycles: 1 << 40, ViolationsPerKUnit: -1, RejectsPerTenant: -1}
		row := rep.evaluateScope(cfg, 0, []int{0}, reg)
		if row.P99 != obs.QuantileOverflow {
			t.Fatalf("p99 %d, want overflow sentinel", row.P99)
		}
		if row.Status != SLOBreach || row.Health != 50 {
			t.Fatalf("overflow p99 scored %+v (want BREACH, health 50)", row)
		}
	})

	t.Run("three breaches floor at zero", func(t *testing.T) {
		rep, reg := syntheticScope(low, 50, 50, 10)
		cfg := &SLOConfig{TrapP99Cycles: 1, ViolationsPerKUnit: 0.001, RejectsPerTenant: 0.001}
		row := rep.evaluateScope(cfg, 0, []int{0}, reg)
		if row.Status != SLOBreach || row.Health != 0 {
			t.Fatalf("triple breach scored %+v (want health 0)", row)
		}
		if len(row.Breached) != 3 {
			t.Fatalf("breached budgets %v, want all three", row.Breached)
		}
	})

	t.Run("rate helpers", func(t *testing.T) {
		row := SLORow{Violations: 2, Units: 500, Rejects: 3, Tenants: 4}
		if got := row.ViolationsPerKUnit(); got != 4 {
			t.Fatalf("viol/ku %v, want 4", got)
		}
		if got := row.RejectsPerTenant(); got != 0.75 {
			t.Fatalf("rejects/tenant %v, want 0.75", got)
		}
		empty := SLORow{Violations: 1}
		if !math.IsInf(empty.ViolationsPerKUnit(), 1) {
			t.Fatal("violations with zero units must rate as +Inf")
		}
	})
}

// TestFleetSLOReport: a sharded SLO run renders one row per shard plus a
// fleet-wide row, the evaluation is byte-deterministic serial vs
// concurrent, and a run without SLO has neither rows nor section.
func TestFleetSLOReport(t *testing.T) {
	cfg := sloConfig()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	rows := rep.EvaluateSLO()
	if len(rows) != cfg.Shards+1 {
		t.Fatalf("%d SLO rows for %d shards, want %d", len(rows), cfg.Shards, cfg.Shards+1)
	}
	fleetRow := rows[len(rows)-1]
	if fleetRow.Shard != -1 {
		t.Fatalf("last row is shard %d, want fleet-wide (-1)", fleetRow.Shard)
	}
	tenants, units := 0, uint64(0)
	for _, row := range rows[:len(rows)-1] {
		tenants += row.Tenants
		units += row.Units
	}
	if tenants != fleetRow.Tenants || units != fleetRow.Units {
		t.Fatalf("shard rows sum to %d tenants / %d units, fleet row has %d / %d",
			tenants, units, fleetRow.Tenants, fleetRow.Units)
	}
	// The malicious tenant's blocked attack leaves violations, so the
	// fleet-wide row must count them.
	if fleetRow.Violations == 0 {
		t.Fatal("fleet row counts no violations despite the injected attack")
	}

	md := rep.Markdown()
	if !strings.Contains(md, "### SLO") {
		t.Fatal("SLO run report lacks ### SLO section")
	}
	if !strings.Contains(md, "| fleet |") || !strings.Contains(md, "| shard 0 |") {
		t.Fatalf("SLO table missing scope rows:\n%s", md)
	}

	det := cfg
	det.Deterministic = true
	rep2, err := Run(det)
	if err != nil {
		t.Fatal(err)
	}
	if md2 := rep2.Markdown(); md2 != md {
		t.Fatalf("SLO report differs serial vs concurrent:\n%s\n---\n%s", md, md2)
	}

	plain := cfg
	plain.SLO = nil
	rp, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	if rp.EvaluateSLO() != nil {
		t.Fatal("EvaluateSLO non-nil without SLO config")
	}
	if strings.Contains(rp.Markdown(), "### SLO") {
		t.Fatal("report has SLO section without SLO config")
	}
}

// TestFleetSLOInvisible: declaring SLO budgets changes nothing a tenant
// can see — results, traces, and metrics are byte-identical to the same
// run with only Trace on. SLO evaluation is strictly read-only.
func TestFleetSLOInvisible(t *testing.T) {
	traced := sloConfig()
	traced.SLO = nil // tracedConfig already has Trace on
	slo := sloConfig()

	rt, err := Run(traced)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(slo)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rt.Results {
		a, b := &rt.Results[i], &rs.Results[i]
		if a.Units != b.Units || a.TotalCycles != b.TotalCycles || a.MonitorCycles != b.MonitorCycles ||
			a.Traps != b.Traps || a.Shard != b.Shard || a.AdmitRejects != b.AdmitRejects {
			t.Errorf("tenant %d diverges with SLO on", i)
		}
		if len(a.Violations) != len(b.Violations) {
			t.Errorf("tenant %d violations differ with SLO on", i)
		}
		if len(a.Events) != len(b.Events) {
			t.Errorf("tenant %d trace length differs with SLO on", i)
			continue
		}
		for j := range a.Events {
			if a.Events[j].JSON() != b.Events[j].JSON() {
				t.Errorf("tenant %d event %d differs with SLO on", i, j)
				break
			}
		}
		if a.Metrics.SnapshotJSON() != b.Metrics.SnapshotJSON() {
			t.Errorf("tenant %d metrics differ with SLO on", i)
		}
	}
	if rt.MergedMetrics().RenderOpenMetrics() != rs.MergedMetrics().RenderOpenMetrics() {
		t.Error("merged OpenMetrics differ with SLO on")
	}
}

// TestSLOImpliesTrace: Run auto-enables the telemetry plane whenever SLO
// is declared, so evaluation always has histograms and traces to read.
func TestSLOImpliesTrace(t *testing.T) {
	cfg := DefaultConfig(2, 2)
	cfg.Seed = 3
	cfg.SLO = &SLOConfig{ViolationsPerKUnit: -1, RejectsPerTenant: -1}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Cfg.Trace {
		t.Fatal("SLO run did not record Trace in effective config")
	}
	for i := range rep.Results {
		if rep.Results[i].Metrics == nil {
			t.Fatalf("tenant %d has no metrics despite SLO implying trace", i)
		}
	}
	rows := rep.EvaluateSLO()
	if len(rows) != 1 || rows[0].Shard != -1 {
		t.Fatalf("flat fleet rows %+v, want single fleet-wide row", rows)
	}
	if rows[0].P99 == 0 {
		t.Fatal("fleet-wide p99 is zero; trap histogram not populated")
	}
}
