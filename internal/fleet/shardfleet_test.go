package fleet

import (
	"reflect"
	"strings"
	"testing"

	"bastion/internal/fleet/shard"
)

// TestShardedFleetDeterminism: under the sharded control plane the report
// is byte-identical across reruns, and between concurrent per-shard pools
// and a fully serial run — placement and admission are computed before
// any tenant starts, so pool interleaving cannot leak into the report.
func TestShardedFleetDeterminism(t *testing.T) {
	cfg := DefaultConfig(24, 3)
	cfg.VerdictCache = true
	cfg.Seed = 7
	cfg.Shards = 4

	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Markdown() != r2.Markdown() {
		t.Fatal("sharded report not deterministic under fixed seed")
	}

	det := cfg
	det.Deterministic = true
	r3, err := Run(det)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Markdown() != r3.Markdown() {
		t.Fatalf("sharded concurrent vs serial reports differ:\n%s\n---\n%s",
			r1.Markdown(), r3.Markdown())
	}
}

// TestShardedMatchesFlat: the control plane is pure bookkeeping — every
// tenant's execution under the sharded supervisor is identical to the
// flat supervisor's, with only the placement/admission stamps added.
func TestShardedMatchesFlat(t *testing.T) {
	cfg := DefaultConfig(12, 4)
	cfg.VerdictCache = true
	cfg.Seed = 5
	flat, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	sh := cfg
	sh.Shards = 3
	rep, err := Run(sh)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Shards) != 3 {
		t.Fatalf("report carries %d shard plans, want 3", len(rep.Shards))
	}
	for i := range rep.Results {
		got := rep.Results[i]
		if got.Shard < 0 || got.Shard >= sh.Shards {
			t.Fatalf("tenant %d stamped with shard %d", i, got.Shard)
		}
		got.Shard = -1
		got.AdmitCycles = 0
		got.AdmitRejects = 0
		if !reflect.DeepEqual(got, flat.Results[i]) {
			t.Errorf("tenant %d diverges from flat run:\nsharded %+v\nflat    %+v",
				i, got, flat.Results[i])
		}
	}
	for i := range flat.Results {
		if flat.Results[i].Shard != -1 {
			t.Fatalf("flat tenant %d stamped with shard %d, want -1", i, flat.Results[i].Shard)
		}
	}
}

// TestShardedBackpressure: a deliberately starved admission config forces
// full-queue rejections; every tenant is still eventually admitted and
// completes, and the rejections surface in the report.
func TestShardedBackpressure(t *testing.T) {
	cfg := DefaultConfig(12, 2)
	cfg.Seed = 9
	cfg.Shards = 1
	cfg.Admission = &shard.AdmissionConfig{
		Burst:        1,
		RefillCycles: 200_000,
		QueueDepth:   2,
		RetryCycles:  300_000,
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AdmitRejects() == 0 {
		t.Fatal("starved admission produced no rejections")
	}
	if got := rep.TotalUnits(); got != cfg.Tenants*cfg.Units {
		t.Fatalf("fleet completed %d units, want %d — rejection must delay, not drop", got, cfg.Tenants*cfg.Units)
	}
	if rep.MaxAdmitWait() == 0 {
		t.Fatal("no admission latency recorded despite queueing")
	}
	md := rep.Markdown()
	for _, want := range []string{"### Shards", "Admission:"} {
		if !strings.Contains(md, want) {
			t.Errorf("sharded report missing %q section", want)
		}
	}
	if !strings.Contains(rep.String(), "1 shards") {
		t.Errorf("one-line summary omits shards: %s", rep.String())
	}
}

// TestShardedAdmissionChargesMakespan: admission latency front-pads the
// tenant timeline, so a starved fleet's makespan strictly exceeds the
// same fleet with admission wide open.
func TestShardedAdmissionChargesMakespan(t *testing.T) {
	cfg := DefaultConfig(8, 2)
	cfg.Seed = 11
	cfg.Shards = 1
	cfg.Deterministic = true
	cfg.Admission = &shard.AdmissionConfig{Burst: 1, RefillCycles: 0} // wide open
	open, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Admission = &shard.AdmissionConfig{
		Burst: 1, RefillCycles: 500_000, QueueDepth: 16, RetryCycles: 100_000,
	}
	starved, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if starved.WallCycles() <= open.WallCycles() {
		t.Fatalf("starved makespan %d not above open %d", starved.WallCycles(), open.WallCycles())
	}
}

// TestShardedFleetScalesAcceptance is the tentpole acceptance check at
// fleet scale: a 4096-tenant sharded run completes with byte-identical
// reports between serial and concurrent dispatch.
func TestShardedFleetScalesAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("4k-tenant acceptance run skipped in -short")
	}
	cfg := DefaultConfig(4096, 1)
	cfg.VerdictCache = true
	cfg.Seed = 4096
	cfg.Shards = 16

	conc, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	det := cfg
	det.Deterministic = true
	serial, err := Run(det)
	if err != nil {
		t.Fatal(err)
	}
	if conc.Markdown() != serial.Markdown() {
		t.Fatal("4k-tenant sharded reports differ between concurrent and serial dispatch")
	}
	if got := conc.TotalUnits(); got != cfg.Tenants*cfg.Units {
		t.Fatalf("fleet completed %d units, want %d", got, cfg.Tenants*cfg.Units)
	}
	if conc.Dead() != 0 || conc.Kills() != 0 || conc.Faults() != 0 {
		t.Fatalf("benign 4k fleet recorded failures: %s", conc.String())
	}
}
