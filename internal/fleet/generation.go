package fleet

import (
	"bastion/internal/core/monitor"
)

// PolicySpec names the policy a hot reload swaps the fleet to: the
// policy-relevant monitor knobs that, together with the workload's
// metadata, determine the generation's seccomp filter and verdicts. Mode
// and the telemetry plane are launch decisions and stay fixed across
// reloads.
type PolicySpec struct {
	// Contexts is the enforced context mask; UseContexts distinguishes an
	// explicit mask from the AllContexts default (mirroring Config).
	Contexts    monitor.Context
	UseContexts bool

	ExtendFS     bool
	VerdictCache bool
	TreeFilter   bool
	Offload      bool
}

func (s *PolicySpec) contexts() monitor.Context {
	if s.UseContexts {
		return s.Contexts
	}
	return monitor.AllContexts
}

// apply grafts the spec onto a tenant's launch monitor configuration,
// clearing any precompiled filter so the generation compiles (or cache-
// resolves) one that matches the new knobs.
func (s *PolicySpec) apply(cfg monitor.Config) monitor.Config {
	cfg.Contexts = s.contexts()
	cfg.ExtendFS = s.ExtendFS
	cfg.VerdictCache = s.VerdictCache
	cfg.TreeFilter = s.TreeFilter
	cfg.Offload = s.Offload
	cfg.Filter = nil
	return cfg
}

// reloadGeneration resolves the fleet's reload generation (ID 1) for one
// workload through the artifact cache: the metadata is the workload's
// compiled metadata, the filter is compiled once per filter key and
// shared, and the Generation bundle itself is built once and staged into
// every tenant running that workload.
func reloadGeneration(cfg *Config, app string, arts *Artifacts) (*monitor.Generation, error) {
	return arts.Generation(1, app, cfg.ReloadSpec.apply(cfg.monitorConfig()))
}
