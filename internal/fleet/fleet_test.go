package fleet

import (
	"reflect"
	"strings"
	"testing"

	"bastion/internal/attacks"
	"bastion/internal/core"
	"bastion/internal/core/monitor"
	"bastion/internal/kernel"
	"bastion/internal/vm"
	"bastion/internal/workload"
)

func TestConfigValidate(t *testing.T) {
	base := DefaultConfig(4, 6)
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"zero tenants", func(c *Config) { c.Tenants = 0 }, "tenants must be positive"},
		{"negative units", func(c *Config) { c.Units = -1 }, "units must be positive"},
		{"no apps", func(c *Config) { c.Apps = nil }, "at least one app"},
		{"unknown app", func(c *Config) { c.Apps = []string{"redis"} }, "unknown target"},
		{"negative restarts", func(c *Config) { c.MaxRestarts = -1 }, "non-negative"},
		{"malicious out of range", func(c *Config) { c.Malicious = map[int]string{9: "direct-cscfi"} }, "outside fleet"},
		{"unknown attack", func(c *Config) { c.Malicious = map[int]string{0: "nope"} }, "unknown attack"},
		{"attack app mismatch", func(c *Config) { c.Malicious = map[int]string{1: "direct-cscfi"} }, "targets nginx"},
		{"negative workers", func(c *Config) { c.Workers = -2 }, "workers must be non-negative"},
		{"backoff base over cap", func(c *Config) { c.BackoffBase = 100; c.BackoffCap = 50 }, "exceeds cap"},
		{"backoff base over default cap", func(c *Config) { c.BackoffBase = DefaultBackoffCap + 1 }, "exceeds cap"},
		{"fault tenant out of range", func(c *Config) { c.FaultAt = map[int]int{7: 2} }, "fault tenant 7 outside fleet"},
		{"negative fault tenant", func(c *Config) { c.FaultAt = map[int]int{-1: 2} }, "outside fleet"},
		{"negative fault unit", func(c *Config) { c.FaultAt = map[int]int{1: -3} }, "fault unit must be non-negative"},
		{"negative shards", func(c *Config) { c.Shards = -1 }, "shards must be non-negative"},
		{"negative vnodes", func(c *Config) { c.Shards = 2; c.ShardVnodes = -4 }, "vnodes must be non-negative"},
		{"negative reload unit", func(c *Config) { c.ReloadAt = -1 }, "reload unit must be non-negative"},
		{"reload without spec", func(c *Config) { c.ReloadAt = 3 }, "needs a reload policy spec"},
		{"reload past units", func(c *Config) { c.ReloadAt = 6; c.ReloadSpec = &PolicySpec{} }, "needs more than"},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		_, err := Run(cfg)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

// TestFleetDeterminism: the aggregate report is byte-identical across
// reruns with the same seed, and between concurrent and deterministic
// (serial) execution — tenants share no mutable state, so interleaving
// cannot leak into results.
func TestFleetDeterminism(t *testing.T) {
	cfg := DefaultConfig(6, 6)
	cfg.VerdictCache = true
	cfg.Seed = 1234

	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Markdown() != r2.Markdown() {
		t.Fatalf("same seed, different reports:\n%s\n---\n%s", r1.Markdown(), r2.Markdown())
	}

	det := cfg
	det.Deterministic = true
	r3, err := Run(det)
	if err != nil {
		t.Fatal(err)
	}
	m1 := r1.Markdown()
	m3 := r3.Markdown()
	if m1 != m3 {
		t.Fatalf("concurrent vs deterministic reports differ:\n%s\n---\n%s", m1, m3)
	}

	other := cfg
	other.Seed = 99
	r4, err := Run(other)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(r1.Schedule, r4.Schedule) {
		t.Errorf("different seeds produced identical schedules %v", r1.Schedule)
	}
	// Schedules differ but per-tenant results must not.
	if !reflect.DeepEqual(r1.Results, r4.Results) {
		t.Errorf("tenant results depend on the dispatch seed")
	}
}

// TestFleetStandaloneEquivalence: a fleet tenant's counters are
// byte-identical to a standalone launch of the same workload under the
// same monitor configuration — sharing artifacts changes nothing
// observable.
func TestFleetStandaloneEquivalence(t *testing.T) {
	const units = 6
	cfg := DefaultConfig(3, units)
	cfg.VerdictCache = true
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, app := range []string{"nginx", "sqlite", "vsftpd"} {
		target, err := workload.NewTarget(app)
		if err != nil {
			t.Fatal(err)
		}
		art, err := core.Compile(target.Build(), core.CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		k := kernel.New(nil)
		k.Costs.IOPerByte = workload.IOPerByte(app)
		if err := target.Fixture(k); err != nil {
			t.Fatal(err)
		}
		mcfg := monitor.DefaultConfig()
		mcfg.VerdictCache = true
		prot, err := core.Launch(art, k, mcfg, vm.WithMaxSteps(defaultMaxSteps))
		if err != nil {
			t.Fatal(err)
		}
		wl, err := workload.Run(target, prot, units)
		if err != nil {
			t.Fatal(err)
		}

		tr := rep.Results[i]
		if tr.App != app {
			t.Fatalf("tenant %d app %s, want %s", i, tr.App, app)
		}
		got := workload.Result{
			Units: tr.Units, Bytes: tr.Bytes, InitCycles: tr.InitCycles,
			TotalCycles: tr.TotalCycles, MonitorCycles: tr.MonitorCycles, Traps: tr.Traps,
		}
		if got != wl {
			t.Errorf("%s: fleet result %+v != standalone %+v", app, got, wl)
		}
		if tr.SetupCycles != prot.Monitor.InitCycles {
			t.Errorf("%s: setup cycles %d != standalone attach cost %d", app, tr.SetupCycles, prot.Monitor.InitCycles)
		}
		if tr.CacheHits != prot.Monitor.CacheHits || tr.CacheMisses != prot.Monitor.CacheMisses {
			t.Errorf("%s: cache %d/%d != standalone %d/%d", app,
				tr.CacheHits, tr.CacheMisses, prot.Monitor.CacheHits, prot.Monitor.CacheMisses)
		}
		if len(tr.Violations) != len(prot.Monitor.Violations) {
			t.Errorf("%s: violation counts differ", app)
		}
	}
}

// TestSharedVsPerTenantIdentical: disabling artifact sharing changes only
// the compilation counts, never any tenant-visible result.
func TestSharedVsPerTenantIdentical(t *testing.T) {
	cfg := DefaultConfig(6, 5)
	cfg.VerdictCache = true
	cfg.Seed = 3

	shared, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ShareArtifacts = false
	private, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(shared.Results, private.Results) {
		t.Fatalf("tenant results differ between shared and per-tenant compilation")
	}
	if shared.Compiles != len(cfg.Apps) {
		t.Errorf("shared compiles = %d, want one per distinct app (%d)", shared.Compiles, len(cfg.Apps))
	}
	if private.Compiles != cfg.Tenants {
		t.Errorf("per-tenant compiles = %d, want one per tenant (%d)", private.Compiles, cfg.Tenants)
	}
	if shared.FilterCompiles != len(cfg.Apps) || private.FilterCompiles != cfg.Tenants {
		t.Errorf("filter compiles shared=%d private=%d, want %d and %d",
			shared.FilterCompiles, private.FilterCompiles, len(cfg.Apps), cfg.Tenants)
	}
}

// TestRestartBackoff: an injected unit fault costs one restart with
// backoff, the tenant still finishes all units, and partial progress from
// the failed incarnation is preserved in the counters.
func TestRestartBackoff(t *testing.T) {
	cfg := DefaultConfig(2, 8, "nginx")
	cfg.Deterministic = true
	cfg.FaultAt = map[int]int{0: 3}

	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	faulted, clean := rep.Results[0], rep.Results[1]
	if faulted.Units != cfg.Units {
		t.Errorf("faulted tenant finished %d units, want %d", faulted.Units, cfg.Units)
	}
	if faulted.Faults != 1 || faulted.Kills != 0 || faulted.Restarts != 1 {
		t.Errorf("faulted tenant: faults=%d kills=%d restarts=%d, want 1/0/1",
			faulted.Faults, faulted.Kills, faulted.Restarts)
	}
	if faulted.BackoffCycles != DefaultBackoffBase {
		t.Errorf("backoff = %d, want base %d", faulted.BackoffCycles, DefaultBackoffBase)
	}
	if faulted.Dead {
		t.Error("faulted tenant marked dead despite restart budget")
	}
	// The failed incarnation's 3 completed units plus the restart's 5 must
	// cost exactly what 8 clean units cost: partial progress is preserved,
	// not re-run or discarded. Init, by contrast, is paid twice.
	if faulted.TotalCycles != clean.TotalCycles {
		t.Errorf("faulted tenant steady-state cycles %d != clean tenant %d (partial progress mishandled)",
			faulted.TotalCycles, clean.TotalCycles)
	}
	if faulted.InitCycles <= clean.InitCycles {
		t.Errorf("faulted tenant init cycles %d not above clean %d (second incarnation unpaid?)",
			faulted.InitCycles, clean.InitCycles)
	}
	if clean.Faults != 0 || clean.Restarts != 0 {
		t.Errorf("clean tenant disturbed: %+v", clean)
	}

	// Exhausted budget: with MaxRestarts=0 the first fault is fatal and
	// partial progress is recorded.
	dead := cfg
	dead.MaxRestarts = 0
	rep2, err := Run(dead)
	if err != nil {
		t.Fatal(err)
	}
	d := rep2.Results[0]
	if !d.Dead {
		t.Fatal("tenant with exhausted restart budget not marked dead")
	}
	if d.Units != 3 {
		t.Errorf("dead tenant recorded %d units, want the 3 completed before the fault", d.Units)
	}
	if d.Restarts != 0 || d.BackoffCycles != 0 {
		t.Errorf("dead tenant restarts=%d backoff=%d, want 0/0", d.Restarts, d.BackoffCycles)
	}
}

// TestBackoffCap: consecutive failures escalate exponentially up to the
// cap. Exercised through the exported policy by forcing repeated faults
// via a tiny MaxSteps budget... kept simple: verify the arithmetic the
// supervisor applies.
func TestBackoffCap(t *testing.T) {
	cfg := DefaultConfig(1, 4, "nginx")
	cfg.BackoffBase = 1000
	cfg.BackoffCap = 3000
	res := TenantResult{}
	attempt := 0
	// Simulate 4 consecutive retirements through the supervisor's policy.
	for i := 0; i < 4; i++ {
		retire(&cfg, &res, &attempt, false)
		if !res.Dead {
			shift := attempt - 1
			backoff := cfg.BackoffBase << shift
			if backoff > cfg.BackoffCap {
				backoff = cfg.BackoffCap
			}
			res.BackoffCycles += backoff
		}
	}
	// attempts 1..3 before the budget (MaxRestarts=3) dies: 1000+2000+3000.
	if res.BackoffCycles != 6000 {
		t.Errorf("backoff sequence total %d, want 6000 (1000+2000+capped 3000)", res.BackoffCycles)
	}
	if !res.Dead || res.Faults != 4 {
		t.Errorf("after 4 faults with budget 3: dead=%v faults=%d", res.Dead, res.Faults)
	}
}

// TestMaliciousReplayMatchesManualAdoption: the fleet's attack replay is
// byte-identical to performing the same adoption by hand with the public
// attacks API — outcome fields and recorded violations included.
func TestMaliciousReplayMatchesManualAdoption(t *testing.T) {
	const units = 6
	cfg := DefaultConfig(1, units, "vsftpd")
	cfg.Malicious = map[int]string{0: "cve-2012-0809"}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := rep.Results[0]
	if tr.Attack == nil {
		t.Fatal("malicious tenant recorded no attack outcome")
	}

	// Manual reconstruction of the fleet's first incarnation.
	target := workload.NewVsftpd()
	art, err := core.Compile(target.Build(), core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(nil)
	k.Costs.IOPerByte = workload.IOPerByte("vsftpd")
	attacks.InstallFixtures(k)
	if err := target.Fixture(k); err != nil {
		t.Fatal(err)
	}
	prot, err := core.Launch(art, k, monitor.DefaultConfig(), vm.WithMaxSteps(defaultMaxSteps))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workload.Run(target, prot, units/2); err != nil {
		t.Fatal(err)
	}
	s, _ := attacks.ByID("cve-2012-0809")
	out := attacks.Replay(s, attacks.Adopt("vsftpd", prot, target.ListenFD(), nil, 0))

	got := AttackOutcome{ID: "cve-2012-0809", Completed: out.Completed, Killed: out.Killed,
		KilledBy: out.KilledBy, Reason: out.Reason}
	if *tr.Attack != got {
		t.Errorf("fleet attack outcome %+v != manual adoption %+v", *tr.Attack, got)
	}
	var manualViolations []string
	for _, v := range prot.Monitor.Violations {
		manualViolations = append(manualViolations, v.String())
	}
	// The fleet tenant restarted after the kill and ran clean, so its
	// violation log must equal the failed incarnation's exactly.
	if !reflect.DeepEqual(tr.Violations, manualViolations) {
		t.Errorf("violations differ:\nfleet:  %v\nmanual: %v", tr.Violations, manualViolations)
	}
	if !out.Killed {
		t.Fatalf("expected the replayed attack to be killed, got %+v", out)
	}
	if tr.Units != units {
		t.Errorf("malicious tenant finished %d units, want %d after restart", tr.Units, units)
	}
}
