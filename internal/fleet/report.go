package fleet

import (
	"fmt"
	"sort"
	"strings"

	"bastion/internal/core/monitor"
	"bastion/internal/fleet/shard"
	"bastion/internal/obs"
)

// Report aggregates one fleet run: the configuration, the seeded dispatch
// schedule, every tenant's result, and the run's compilation counts. All
// derived statistics are pure functions of the tenant results, so a report
// is byte-identical across reruns with the same configuration and seed.
type Report struct {
	Cfg      Config
	Schedule []int
	Results  []TenantResult

	// Shards is the sharded control plane's static plan — placement ring
	// assignment and admission grants per shard — nil under the flat
	// supervisor. It is computed before any tenant runs, so it is part of
	// the report's deterministic surface.
	Shards []*shard.Shard

	// Compiles / FilterCompiles count program and seccomp-filter
	// compilations across the whole run (shared cache plus any per-tenant
	// private compilations) — the setup-cost axis of the sharing ablation.
	Compiles       int
	FilterCompiles int
}

// TotalUnits sums completed units across tenants.
func (r *Report) TotalUnits() int {
	n := 0
	for i := range r.Results {
		n += r.Results[i].Units
	}
	return n
}

// TotalBytes sums application bytes moved across tenants.
func (r *Report) TotalBytes() int64 {
	var n int64
	for i := range r.Results {
		n += r.Results[i].Bytes
	}
	return n
}

// Restarts, Kills, Faults, and Dead roll up the fleet's failure handling.
func (r *Report) Restarts() int { return r.sum(func(t *TenantResult) int { return t.Restarts }) }

// Kills sums security terminations across tenants.
func (r *Report) Kills() int { return r.sum(func(t *TenantResult) int { return t.Kills }) }

// Faults sums non-security failures across tenants.
func (r *Report) Faults() int { return r.sum(func(t *TenantResult) int { return t.Faults }) }

// Dead counts tenants that exhausted their restart budget or were
// quarantined after a completed attack.
func (r *Report) Dead() int {
	n := 0
	for i := range r.Results {
		if r.Results[i].Dead {
			n++
		}
	}
	return n
}

func (r *Report) sum(f func(*TenantResult) int) int {
	n := 0
	for i := range r.Results {
		n += f(&r.Results[i])
	}
	return n
}

// WallCycles is the fleet's simulated makespan: tenants run in parallel on
// independent clocks, so the fleet is done when its slowest tenant is.
func (r *Report) WallCycles() uint64 {
	var max uint64
	for i := range r.Results {
		if e := r.Results[i].ElapsedCycles(); e > max {
			max = e
		}
	}
	return max
}

// Throughput is fleet-wide completed units per simulated second.
func (r *Report) Throughput() float64 {
	wall := r.WallCycles()
	if wall == 0 {
		return 0
	}
	return float64(r.TotalUnits()) / (float64(wall) / SimHz)
}

// MonitorCyclesPerUnit is the fleet-wide monitor cost per completed unit.
func (r *Report) MonitorCyclesPerUnit() float64 {
	units := r.TotalUnits()
	if units == 0 {
		return 0
	}
	var mon uint64
	for i := range r.Results {
		mon += r.Results[i].MonitorCycles
	}
	return float64(mon) / float64(units)
}

// OffloadAvoided sums traps answered in-filter by the verdict offload
// across tenants.
func (r *Report) OffloadAvoided() uint64 {
	var n uint64
	for i := range r.Results {
		n += r.Results[i].OffloadAvoided
	}
	return n
}

// AdmitRejects sums full-queue admission rejections across tenants — the
// sharded control plane's backpressure signal (0 on the flat supervisor).
func (r *Report) AdmitRejects() int {
	return r.sum(func(t *TenantResult) int { return t.AdmitRejects })
}

// MaxAdmitWait is the fleet's worst admission latency in cycles, taken
// over the shard plans (0 on the flat supervisor).
func (r *Report) MaxAdmitWait() uint64 {
	var m uint64
	for _, s := range r.Shards {
		if w := s.MaxWait(); w > m {
			m = w
		}
	}
	return m
}

// Reloads counts applied policy hot reloads across tenants.
func (r *Report) Reloads() uint64 {
	var n uint64
	for i := range r.Results {
		n += r.Results[i].Reloads
	}
	return n
}

// MeanReloadCycles is the mean swap cost per applied hot reload.
func (r *Report) MeanReloadCycles() float64 {
	n := r.Reloads()
	if n == 0 {
		return 0
	}
	var cyc uint64
	for i := range r.Results {
		cyc += r.Results[i].ReloadCycles
	}
	return float64(cyc) / float64(n)
}

// ShardMakespan is the latest finish time among the shard's members.
func (r *Report) ShardMakespan(s *shard.Shard) uint64 {
	var m uint64
	for _, idx := range s.Members {
		if e := r.Results[idx].ElapsedCycles(); e > m {
			m = e
		}
	}
	return m
}

// ShardMetrics merges each shard's members' registries (member order)
// into one registry per shard; MergedMetrics folds these shard registries
// in shard order, so a sharded fleet's metrics roll up shard-by-shard.
func (r *Report) ShardMetrics() []*obs.Registry {
	out := make([]*obs.Registry, len(r.Shards))
	for i, s := range r.Shards {
		reg := obs.NewRegistry()
		for _, idx := range s.Members {
			if m := r.Results[idx].Metrics; m != nil {
				mustMerge(reg, m)
			}
		}
		out[i] = reg
	}
	return out
}

// mustMerge folds src into dst, panicking on mismatched histogram bounds.
// Every fleet registry is built by the same monitor code from the same
// fixed bucket variables, so a bounds mismatch here is a programming bug
// that must surface immediately, not a recoverable condition.
func mustMerge(dst, src *obs.Registry) {
	if err := dst.Merge(src); err != nil {
		panic("fleet: " + err.Error())
	}
}

// CacheHitRate is the fleet-wide verdict-cache hit rate.
func (r *Report) CacheHitRate() float64 {
	var hits, misses uint64
	for i := range r.Results {
		hits += r.Results[i].CacheHits
		misses += r.Results[i].CacheMisses
	}
	if total := hits + misses; total > 0 {
		return float64(hits) / float64(total)
	}
	return 0
}

// ViolationsByContext rolls up recorded violations by their context mask
// contribution: one count per violating context across all tenants.
func (r *Report) ViolationsByContext() map[monitor.Context]int {
	out := map[monitor.Context]int{}
	for i := range r.Results {
		t := &r.Results[i]
		n := len(t.Violations)
		if n == 0 {
			continue
		}
		for _, ctx := range []monitor.Context{monitor.CallType, monitor.ControlFlow, monitor.ArgIntegrity} {
			if t.ViolationMask&ctx != 0 {
				out[ctx] += countContext(t.Violations, ctx)
			}
		}
	}
	return out
}

func countContext(violations []string, ctx monitor.Context) int {
	prefix := ctx.String() + " violation"
	n := 0
	for _, v := range violations {
		if strings.HasPrefix(v, prefix) {
			n++
		}
	}
	return n
}

// SetupCyclesPerTenant is the mean monitor-attach (setup) cost per tenant
// — the latency axis of the sharing ablation (compilation cost shows up in
// Compiles, not cycles, since compilation happens host-side).
func (r *Report) SetupCyclesPerTenant() float64 {
	if len(r.Results) == 0 {
		return 0
	}
	var setup uint64
	for i := range r.Results {
		setup += r.Results[i].SetupCycles
	}
	return float64(setup) / float64(len(r.Results))
}

// CompilesPerTenant is the run's program compilations amortized over the
// fleet: with sharing on this falls toward apps/tenants; with sharing off
// it stays ≥ 1.
func (r *Report) CompilesPerTenant() float64 {
	if len(r.Results) == 0 {
		return 0
	}
	return float64(r.Compiles) / float64(len(r.Results))
}

// MergedMetrics folds every tenant's metrics registry into one fleet-wide
// registry. Tenants without a registry (Trace off) contribute nothing; the
// result is deterministic because Merge and the renderers sort by name.
func (r *Report) MergedMetrics() *obs.Registry {
	merged := obs.NewRegistry()
	if len(r.Shards) > 0 {
		for _, reg := range r.ShardMetrics() {
			mustMerge(merged, reg)
		}
		return merged
	}
	for i := range r.Results {
		if m := r.Results[i].Metrics; m != nil {
			mustMerge(merged, m)
		}
	}
	return merged
}

// TotalEvents counts trace events across tenants (Trace on).
func (r *Report) TotalEvents() int {
	n := 0
	for i := range r.Results {
		n += len(r.Results[i].Events)
	}
	return n
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// Markdown renders the aggregated report deterministically: no wall-clock
// host timings, stable ordering throughout.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## Fleet report: %d tenants × %d units (%s)\n\n",
		r.Cfg.Tenants, r.Cfg.Units, strings.Join(r.Cfg.Apps, ","))
	fmt.Fprintf(&b, "Mode %s, contexts %s, cache %s, tree filter %s, offload %s, shared artifacts %s, seed %d.\n",
		r.Cfg.Mode, r.Cfg.contexts(), yn(r.Cfg.VerdictCache), yn(r.Cfg.TreeFilter),
		yn(r.Cfg.Offload), yn(r.Cfg.ShareArtifacts), r.Cfg.Seed)
	fmt.Fprintf(&b, "Dispatch schedule: %v\n\n", r.Schedule)

	b.WriteString("| tenant | app | units | restarts | kills | faults | dead | mon cyc/unit | cache hit | violations | backoff cyc |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|---|---|\n")
	for i := range r.Results {
		t := &r.Results[i]
		state := ""
		if t.Dead {
			state = "dead"
			if t.Compromised {
				state = "compromised"
			}
		}
		fmt.Fprintf(&b, "| %d | %s | %d | %d | %d | %d | %s | %.0f | %.2f | %d | %d |\n",
			t.Index, t.App, t.Units, t.Restarts, t.Kills, t.Faults, state,
			t.PerUnitMonitor(), t.CacheHitRate(), len(t.Violations), t.BackoffCycles)
	}

	fmt.Fprintf(&b, "\nFleet: %d units, %.0f units/s, %.0f monitor cyc/unit, cache hit %.2f.\n",
		r.TotalUnits(), r.Throughput(), r.MonitorCyclesPerUnit(), r.CacheHitRate())
	if r.Cfg.Offload {
		fmt.Fprintf(&b, "Verdict offload: %d traps avoided in-filter.\n", r.OffloadAvoided())
	}
	fmt.Fprintf(&b, "Failures: %d restarts, %d kills, %d faults, %d dead tenants.\n",
		r.Restarts(), r.Kills(), r.Faults(), r.Dead())
	fmt.Fprintf(&b, "Setup: %d program compiles (%.2f/tenant), %d filter compiles, %.0f attach cyc/tenant.\n",
		r.Compiles, r.CompilesPerTenant(), r.FilterCompiles, r.SetupCyclesPerTenant())

	if len(r.Shards) > 0 {
		fmt.Fprintf(&b, "Admission: %d rejections, max wait %d cyc, makespan %d cyc.\n",
			r.AdmitRejects(), r.MaxAdmitWait(), r.WallCycles())
	}
	if r.Cfg.ReloadAt > 0 {
		fmt.Fprintf(&b, "Hot reload: staged at unit %d, %d swaps applied, mean %.0f cyc/swap.\n",
			r.Cfg.ReloadAt, r.Reloads(), r.MeanReloadCycles())
	}

	if v := r.ViolationsByContext(); len(v) > 0 {
		ctxs := make([]monitor.Context, 0, len(v))
		for ctx := range v {
			ctxs = append(ctxs, ctx)
		}
		sort.Slice(ctxs, func(i, j int) bool { return ctxs[i] < ctxs[j] })
		parts := make([]string, 0, len(ctxs))
		for _, ctx := range ctxs {
			parts = append(parts, fmt.Sprintf("%s=%d", ctx, v[ctx]))
		}
		fmt.Fprintf(&b, "Violations by context: %s.\n", strings.Join(parts, ", "))
	}

	if len(r.Shards) > 0 {
		b.WriteString("\n### Shards\n\n")
		b.WriteString("| shard | tenants | rejects | max admit wait | makespan cyc |\n")
		b.WriteString("|---|---|---|---|---|\n")
		for _, s := range r.Shards {
			fmt.Fprintf(&b, "| %d | %d | %d | %d | %d |\n",
				s.ID, len(s.Members), s.Rejects(), s.MaxWait(), r.ShardMakespan(s))
		}
	}

	if r.Cfg.SLO != nil {
		renderSLO(&b, r.EvaluateSLO())
	}

	attacked := false
	for i := range r.Results {
		if r.Results[i].Attack != nil {
			if !attacked {
				b.WriteString("\n### Injected attacks\n\n")
				attacked = true
			}
			t := &r.Results[i]
			a := t.Attack
			verdict := "blocked"
			if a.Completed {
				verdict = "COMPLETED (tenant quarantined)"
			} else if a.Killed {
				verdict = fmt.Sprintf("blocked, guest killed by %s", a.KilledBy)
			}
			fmt.Fprintf(&b, "- tenant %d (%s): %s — %s (%s)\n", t.Index, t.App, a.ID, verdict, a.Reason)
		}
	}

	if r.Cfg.Trace {
		fmt.Fprintf(&b, "\n### Merged metrics (%d trace events)\n\n```\n", r.TotalEvents())
		b.WriteString(r.MergedMetrics().Render())
		b.WriteString("```\n")
	}
	return b.String()
}

// String returns a one-line fleet summary.
func (r *Report) String() string {
	s := fmt.Sprintf("fleet %d×%d [%s] mode=%s: %d units, %.0f units/s, %d restarts, %d kills, %d dead, %d compiles",
		r.Cfg.Tenants, r.Cfg.Units, strings.Join(r.Cfg.Apps, ","), r.Cfg.Mode,
		r.TotalUnits(), r.Throughput(), r.Restarts(), r.Kills(), r.Dead(), r.Compiles)
	if len(r.Shards) > 0 {
		s += fmt.Sprintf(", %d shards (%d rejections)", len(r.Shards), r.AdmitRejects())
	}
	if r.Cfg.ReloadAt > 0 {
		s += fmt.Sprintf(", %d reloads", r.Reloads())
	}
	return s
}
