package fleet

import (
	"strings"
	"testing"

	"bastion/internal/obs"
)

// tracedConfig is a small mixed fleet with the telemetry plane on and one
// malicious nginx tenant, so traces, merged metrics, and a flight dump all
// have content.
func tracedConfig() Config {
	cfg := DefaultConfig(4, 4)
	cfg.VerdictCache = true
	cfg.Seed = 7
	cfg.Trace = true
	cfg.FlightN = 8
	cfg.Malicious = map[int]string{0: "direct-aocr-nginx1"}
	return cfg
}

// telemetrySnapshot flattens everything the telemetry plane produced into
// one byte string for cross-run comparison.
func telemetrySnapshot(t *testing.T, r *Report) string {
	t.Helper()
	var b strings.Builder
	for i := range r.Results {
		tr := &r.Results[i]
		b.WriteString("tenant ")
		b.WriteString(tr.App)
		b.WriteByte('\n')
		for j := range tr.Events {
			b.WriteString(tr.Events[j].JSON())
			b.WriteByte('\n')
		}
		if tr.Metrics != nil {
			b.WriteString(tr.Metrics.SnapshotJSON())
		}
		b.WriteString(tr.Flight)
	}
	b.WriteString(r.MergedMetrics().Render())
	b.WriteString(r.MergedMetrics().RenderOpenMetrics())
	b.WriteString(r.Markdown())
	return b.String()
}

// TestFleetTraceDeterminism: two traced runs with the same seed produce
// byte-identical per-tenant traces, metrics snapshots, flight dumps, and
// reports — concurrently or serially.
func TestFleetTraceDeterminism(t *testing.T) {
	cfg := tracedConfig()
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := telemetrySnapshot(t, r1), telemetrySnapshot(t, r2)
	if s1 != s2 {
		t.Fatalf("same seed, different telemetry:\n%s\n---\n%s", s1, s2)
	}

	det := cfg
	det.Deterministic = true
	r3, err := Run(det)
	if err != nil {
		t.Fatal(err)
	}
	if s3 := telemetrySnapshot(t, r3); s1 != s3 {
		t.Fatalf("concurrent vs deterministic telemetry differs:\n%s\n---\n%s", s1, s3)
	}
}

// TestFleetTraceContent: the traced fleet's events are tenant-stamped and
// contiguously sequenced across incarnations, the merged registry accounts
// for every event, and the malicious tenant keeps a flight dump whose final
// entry is the violating trap.
func TestFleetTraceContent(t *testing.T) {
	cfg := tracedConfig()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	total := 0
	for i := range rep.Results {
		tr := &rep.Results[i]
		if len(tr.Events) == 0 {
			t.Fatalf("tenant %d (%s) produced no trace events", tr.Index, tr.App)
		}
		for j := range tr.Events {
			ev := &tr.Events[j]
			if ev.Tenant != tr.Index {
				t.Fatalf("tenant %d event %d stamped for tenant %d", tr.Index, j, ev.Tenant)
			}
			if ev.Seq != uint64(j) {
				t.Fatalf("tenant %d event %d has seq %d; incarnation re-stamping broken", tr.Index, j, ev.Seq)
			}
			if ev.Cycles.Total() != ev.End-ev.Start {
				t.Fatalf("tenant %d event %d breakdown %d != elapsed %d",
					tr.Index, j, ev.Cycles.Total(), ev.End-ev.Start)
			}
		}
		if tr.Metrics == nil {
			t.Fatalf("tenant %d has no metrics registry", tr.Index)
		}
		total += len(tr.Events)
	}
	if got := rep.TotalEvents(); got != total {
		t.Fatalf("TotalEvents %d != summed %d", got, total)
	}

	merged := rep.MergedMetrics()
	if hooks := merged.Counter("monitor_hooks_total").Value(); hooks != uint64(total) {
		t.Fatalf("merged monitor_hooks_total %d != %d trace events", hooks, total)
	}

	mal := &rep.Results[0]
	if mal.Attack == nil {
		t.Fatal("malicious tenant recorded no attack outcome")
	}
	if mal.Attack.Completed {
		t.Fatalf("attack completed: %+v", mal.Attack)
	}
	if len(mal.Violations) == 0 {
		t.Fatal("blocked attack left no violations on the malicious tenant")
	}
	if mal.Flight == "" {
		t.Fatal("malicious tenant kept no flight-recorder dump")
	}
	lines := strings.Split(strings.TrimSuffix(mal.Flight, "\n"), "\n")
	last := lines[len(lines)-1]
	if !strings.Contains(last, `"violation":`) {
		t.Fatalf("flight dump does not end with the violating trap:\n%s", mal.Flight)
	}
	if !strings.Contains(last, `"tenant":0`) {
		t.Fatalf("flight dump final entry lacks tenant stamp:\n%s", last)
	}

	benign := &rep.Results[1]
	if benign.Flight != "" {
		t.Fatalf("benign tenant %s kept a flight dump:\n%s", benign.App, benign.Flight)
	}

	if !strings.Contains(rep.Markdown(), "### Merged metrics") {
		t.Fatal("traced report lacks merged-metrics section")
	}

	var zero obs.CycleBreakdown
	if zero.Total() != 0 {
		t.Fatal("zero breakdown total non-zero")
	}
}

// TestFleetTracingInvisible: turning the telemetry plane on changes no
// tenant-visible result — units, bytes, every cycle account, cache
// statistics, and violations are identical with tracing off and on.
func TestFleetTracingInvisible(t *testing.T) {
	off := tracedConfig()
	off.Trace = false
	off.FlightN = 0
	on := tracedConfig()

	rOff, err := Run(off)
	if err != nil {
		t.Fatal(err)
	}
	rOn, err := Run(on)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rOff.Results {
		a, b := &rOff.Results[i], &rOn.Results[i]
		if a.Units != b.Units || a.Bytes != b.Bytes {
			t.Errorf("tenant %d progress differs traced: %d/%d vs %d/%d", i, a.Units, a.Bytes, b.Units, b.Bytes)
		}
		if a.SetupCycles != b.SetupCycles || a.InitCycles != b.InitCycles ||
			a.TotalCycles != b.TotalCycles || a.MonitorCycles != b.MonitorCycles ||
			a.BackoffCycles != b.BackoffCycles || a.Traps != b.Traps {
			t.Errorf("tenant %d cycle accounts differ with tracing on", i)
		}
		if a.CacheHits != b.CacheHits || a.CacheMisses != b.CacheMisses {
			t.Errorf("tenant %d cache stats differ with tracing on", i)
		}
		if a.FlowChecks != b.FlowChecks {
			t.Errorf("tenant %d flow checks differ traced: %d vs %d", i, a.FlowChecks, b.FlowChecks)
		}
		if len(a.Violations) != len(b.Violations) {
			t.Errorf("tenant %d violations differ: %v vs %v", i, a.Violations, b.Violations)
		}
	}
}

// TestFleetKilledIncarnationDrained: a security kill mid-incarnation must
// not lose that incarnation's monitor evidence — the violation that caused
// the kill appears in the tenant result.
func TestFleetKilledIncarnationDrained(t *testing.T) {
	cfg := tracedConfig()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mal := &rep.Results[0]
	if mal.Kills == 0 {
		t.Skipf("attack %q did not kill; drain path not exercised", cfg.Malicious[0])
	}
	if len(mal.Violations) == 0 && mal.KilledBy == "monitor" {
		t.Fatal("monitor kill recorded no violations: killed incarnation was not drained")
	}
}
