package fleet

import (
	"fmt"
	"math"
	"strings"

	"bastion/internal/obs"
	"bastion/internal/obs/perf"
)

// SLOConfig declares per-shard service-level budgets, evaluated from the
// telemetry plane after a fleet run (setting it implies Trace). The
// zero value is the strict default: no trap-latency budget, zero
// tolerance for violations and admission rejections.
//
// Budgets use simulated cycles and exact counts only — evaluation is
// deterministic and byte-identical across serial and concurrent runs.
type SLOConfig struct {
	// TrapP99Cycles budgets the p99 of monitor_trap_cycles per shard,
	// computed exactly from the fixed-bucket histogram (the reported p99
	// is a bucket upper bound). 0 disables the budget. A p99 landing in
	// the histogram's overflow bucket always breaches a non-zero budget.
	TrapP99Cycles uint64
	// ViolationsPerKUnit budgets recorded violations per 1000 completed
	// units. 0 is zero-tolerance (any violation breaches); negative
	// disables the budget.
	ViolationsPerKUnit float64
	// RejectsPerTenant budgets admission rejections per member tenant.
	// 0 is zero-tolerance; negative disables.
	RejectsPerTenant float64
	// WarnFraction is the budget utilization at which PASS turns to WARN
	// (0 selects 0.8); utilization above 1 is a BREACH.
	WarnFraction float64
	// AnomalyFactor / AnomalyWarmup tune the EWMA anomaly pass over each
	// tenant's trap-cycle stream (zero values select the perf defaults).
	// Anomaly counts are informational — they annotate rows but never
	// change the PASS/WARN/BREACH status.
	AnomalyFactor float64
	AnomalyWarmup int
}

// Validate rejects nonsensical budget declarations.
func (s *SLOConfig) Validate() error {
	if s.WarnFraction < 0 || s.WarnFraction >= 1 {
		return fmt.Errorf("fleet: slo warn fraction must be in [0,1), got %v", s.WarnFraction)
	}
	if s.AnomalyFactor < 0 || (s.AnomalyFactor > 0 && s.AnomalyFactor <= 1) {
		return fmt.Errorf("fleet: slo anomaly factor must be > 1 (or 0 for the default), got %v", s.AnomalyFactor)
	}
	if s.AnomalyWarmup < 0 {
		return fmt.Errorf("fleet: slo anomaly warmup must be non-negative, got %d", s.AnomalyWarmup)
	}
	return nil
}

// warnAt returns the effective WARN threshold.
func (s *SLOConfig) warnAt() float64 {
	if s.WarnFraction == 0 {
		return 0.8
	}
	return s.WarnFraction
}

// SLOStatus is a row's health classification.
type SLOStatus uint8

const (
	SLOPass SLOStatus = iota
	SLOWarn
	SLOBreach
)

// String returns the report form.
func (s SLOStatus) String() string {
	switch s {
	case SLOPass:
		return "PASS"
	case SLOWarn:
		return "WARN"
	case SLOBreach:
		return "BREACH"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// SLORow is one scope's evaluated budgets: one row per shard plus a
// fleet-wide row (Shard == -1). Quantiles are exact bucket upper bounds
// from the merged trap-cycle histograms; obs.QuantileOverflow renders as
// "inf".
type SLORow struct {
	Shard   int
	Tenants int
	// P50/P90/P99 are monitor_trap_cycles quantiles for the scope.
	P50, P90, P99 uint64
	// Violations and Units feed the violation-rate budget; Rejects the
	// admission budget.
	Violations int
	Units      uint64
	Rejects    int
	// Anomalies counts EWMA flags across the scope's tenant trap streams
	// (informational).
	Anomalies int
	// Health is 0–100: each evaluated budget deducts up to 25 points in
	// its WARN band and up to 50 past its budget.
	Health int
	Status SLOStatus
	// Breached names the budgets past 100% utilization, in fixed order.
	Breached []string
}

// ViolationsPerKUnit is the row's measured violation rate.
func (r *SLORow) ViolationsPerKUnit() float64 {
	if r.Units == 0 {
		if r.Violations > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return float64(r.Violations) * 1000 / float64(r.Units)
}

// RejectsPerTenant is the row's measured admission-rejection rate.
func (r *SLORow) RejectsPerTenant() float64 {
	if r.Tenants == 0 {
		return 0
	}
	return float64(r.Rejects) / float64(r.Tenants)
}

// EvaluateSLO computes the report's SLO rows: one per shard in shard
// order (sharded runs), then the fleet-wide row. Returns nil when the
// run declared no SLO. Quantiles come from the merged telemetry
// registries, so evaluation needs Trace (Run enables it whenever SLO is
// set).
func (r *Report) EvaluateSLO() []SLORow {
	cfg := r.Cfg.SLO
	if cfg == nil {
		return nil
	}
	var rows []SLORow
	if len(r.Shards) > 0 {
		regs := r.ShardMetrics()
		for i, s := range r.Shards {
			rows = append(rows, r.evaluateScope(cfg, s.ID, s.Members, regs[i]))
		}
	}
	all := make([]int, len(r.Results))
	for i := range all {
		all[i] = i
	}
	rows = append(rows, r.evaluateScope(cfg, -1, all, r.MergedMetrics()))
	return rows
}

// evaluateScope scores one member set against the budgets.
func (r *Report) evaluateScope(cfg *SLOConfig, shardID int, members []int, reg *obs.Registry) SLORow {
	row := SLORow{Shard: shardID, Tenants: len(members)}
	h := reg.Histogram("monitor_trap_cycles", obs.CycleBuckets)
	row.P50 = h.Quantile(0.50)
	row.P90 = h.Quantile(0.90)
	row.P99 = h.Quantile(0.99)
	anomaly := perf.AnomalyConfig{Factor: cfg.AnomalyFactor, Warmup: cfg.AnomalyWarmup}
	for _, idx := range members {
		t := &r.Results[idx]
		row.Violations += len(t.Violations)
		row.Units += uint64(t.Units)
		row.Rejects += t.AdmitRejects
		row.Anomalies += len(perf.DetectEWMA(trapCycleStream(t.Events), anomaly))
	}

	warn := cfg.warnAt()
	health := 100.0
	score := func(name string, utilization float64) {
		var penalty float64
		switch {
		case utilization <= warn:
			return
		case utilization <= 1:
			penalty = 25 * (utilization - warn) / (1 - warn)
			if row.Status < SLOWarn {
				row.Status = SLOWarn
			}
		default:
			over := utilization - 1
			if over > 1 || math.IsInf(utilization, 1) {
				over = 1
			}
			penalty = 25 + 25*over
			row.Status = SLOBreach
			row.Breached = append(row.Breached, name)
		}
		health -= penalty
	}
	if cfg.TrapP99Cycles > 0 {
		if row.P99 == obs.QuantileOverflow {
			score("trap_p99", math.Inf(1))
		} else {
			score("trap_p99", float64(row.P99)/float64(cfg.TrapP99Cycles))
		}
	}
	if cfg.ViolationsPerKUnit >= 0 {
		score("violations", utilization(row.ViolationsPerKUnit(), cfg.ViolationsPerKUnit))
	}
	if cfg.RejectsPerTenant >= 0 {
		score("admission", utilization(row.RejectsPerTenant(), cfg.RejectsPerTenant))
	}
	if health < 0 {
		health = 0
	}
	row.Health = int(math.Round(health))
	return row
}

// utilization divides used by budget; a zero budget is zero-tolerance
// (any use is infinitely over, no use is zero).
func utilization(used, budget float64) float64 {
	if budget == 0 {
		if used > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return used / budget
}

// trapCycleStream flattens a tenant's decision trace into its per-trap
// cycle costs, in trap order.
func trapCycleStream(events []obs.TrapEvent) []uint64 {
	if len(events) == 0 {
		return nil
	}
	out := make([]uint64, len(events))
	for i := range events {
		out[i] = events[i].End - events[i].Start
	}
	return out
}

// quantileCell renders a quantile for the SLO table ("inf" for the
// overflow sentinel).
func quantileCell(q uint64) string {
	if q == obs.QuantileOverflow {
		return "inf"
	}
	return fmt.Sprintf("%d", q)
}

// renderSLO writes the ### SLO section rows.
func renderSLO(b *strings.Builder, rows []SLORow) {
	b.WriteString("\n### SLO\n\n")
	b.WriteString("| scope | tenants | p50 | p90 | p99 | viol/ku | rejects/tenant | anomalies | health | status | breached |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|---|---|\n")
	for i := range rows {
		row := &rows[i]
		scope := "fleet"
		if row.Shard >= 0 {
			scope = fmt.Sprintf("shard %d", row.Shard)
		}
		fmt.Fprintf(b, "| %s | %d | %s | %s | %s | %.3f | %.3f | %d | %d | %s | %s |\n",
			scope, row.Tenants,
			quantileCell(row.P50), quantileCell(row.P90), quantileCell(row.P99),
			row.ViolationsPerKUnit(), row.RejectsPerTenant(),
			row.Anomalies, row.Health, row.Status, strings.Join(row.Breached, " "))
	}
}
