package fleet

import (
	"strings"
	"testing"

	"bastion/internal/core/monitor"
)

// TestFleetSyscallFlowKillAndReset: a tenant running an ordering attack is
// killed by the monitor's syscall-flow check, and because every restart
// incarnation gets a fresh monitor, its transition state (including the
// first-trap requirement) resets — the replacement incarnation completes
// the full unit budget without tripping over the dead one's history.
func TestFleetSyscallFlowKillAndReset(t *testing.T) {
	cfg := DefaultConfig(2, 6, "vsftpd")
	cfg.Deterministic = true
	cfg.Trace = true
	cfg.Malicious = map[int]string{0: "ord-sandbox-reseal"}

	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mal, clean := rep.Results[0], rep.Results[1]

	if mal.Attack == nil {
		t.Fatal("malicious tenant recorded no attack outcome")
	}
	if mal.Attack.Completed {
		t.Error("ordering attack completed under full contexts")
	}
	if !mal.Attack.Killed || mal.Attack.KilledBy != "monitor" {
		t.Fatalf("attack outcome = %+v, want monitor kill", mal.Attack)
	}
	if !strings.Contains(mal.Attack.Reason, "syscall-flow") {
		t.Errorf("kill reason %q does not name syscall-flow", mal.Attack.Reason)
	}
	if mal.ViolationMask&monitor.SyscallFlow == 0 {
		t.Errorf("ViolationMask %v missing SyscallFlow", mal.ViolationMask)
	}

	// The restart after the kill must finish every unit: fresh-monitor flow
	// state means the replacement's first trap is judged against the start
	// set, not the killed incarnation's last syscall.
	if mal.Kills != 1 || mal.Restarts != 1 {
		t.Errorf("kills=%d restarts=%d, want 1/1", mal.Kills, mal.Restarts)
	}
	if mal.Units != cfg.Units {
		t.Errorf("malicious tenant finished %d units, want %d", mal.Units, cfg.Units)
	}
	if mal.Dead {
		t.Error("tenant marked dead despite restart budget")
	}

	// Flow checks run on every full-mode trap in both tenants, and the
	// merged per-tenant registry must agree with the summed field.
	for i, res := range []TenantResult{mal, clean} {
		if res.FlowChecks == 0 {
			t.Errorf("tenant %d: FlowChecks = 0 with SF enforced", i)
		}
		if res.Metrics == nil {
			t.Fatalf("tenant %d: Trace on but no merged registry", i)
		}
		if got := res.Metrics.Counter("monitor_flow_checks_total").Value(); got != res.FlowChecks {
			t.Errorf("tenant %d: registry flow checks %d != TenantResult.FlowChecks %d",
				i, got, res.FlowChecks)
		}
	}
	if clean.Kills != 0 || clean.ViolationMask != 0 {
		t.Errorf("clean tenant disturbed: %+v", clean)
	}

	// SF disabled: the same ordering attack completes — the fleet threads
	// the context set all the way to each incarnation's monitor.
	noSF := cfg
	noSF.Trace = false
	noSF.UseContexts = true
	noSF.Contexts = monitor.CallType | monitor.ControlFlow | monitor.ArgIntegrity
	rep2, err := Run(noSF)
	if err != nil {
		t.Fatal(err)
	}
	mal2 := rep2.Results[0]
	if mal2.Attack == nil || !mal2.Attack.Completed {
		t.Fatalf("ordering attack without SF: outcome %+v, want completed", mal2.Attack)
	}
	if mal2.FlowChecks != 0 {
		t.Errorf("FlowChecks = %d with SF disabled, want 0", mal2.FlowChecks)
	}
}
