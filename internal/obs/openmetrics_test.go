package obs

import (
	"strings"
	"testing"
)

func TestRenderOpenMetricsGolden(t *testing.T) {
	checkGolden(t, "metrics.om.golden", fixtureRegistry().RenderOpenMetrics())
}

func TestRenderOpenMetricsDeterministic(t *testing.T) {
	a, b := fixtureRegistry(), fixtureRegistry()
	if a.RenderOpenMetrics() != b.RenderOpenMetrics() {
		t.Fatal("OpenMetrics rendering not deterministic across identical builds")
	}
}

// TestRenderOpenMetricsReadOnly: exposition is a pure read — rendering
// must not disturb the registry's own snapshot.
func TestRenderOpenMetricsReadOnly(t *testing.T) {
	r := fixtureRegistry()
	before := r.SnapshotJSON()
	_ = r.RenderOpenMetrics()
	if r.SnapshotJSON() != before {
		t.Fatal("RenderOpenMetrics modified the registry")
	}
}

// TestRenderOpenMetricsBracketedHistogram: per-key histograms registered
// as `base[label]` must join one family with a `key` label, after the
// unlabeled base histogram.
func TestRenderOpenMetricsBracketedHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram("trap_cycles", []uint64{10, 20}).Observe(5)
	r.Histogram("trap_cycles[mmap]", []uint64{10, 20}).Observe(15)
	r.Histogram("trap_cycles[accept4]", []uint64{10, 20}).Observe(25)
	got := r.RenderOpenMetrics()
	want := `# TYPE trap_cycles histogram
trap_cycles_bucket{le="10"} 1
trap_cycles_bucket{le="20"} 1
trap_cycles_bucket{le="+Inf"} 1
trap_cycles_sum 5
trap_cycles_count 1
trap_cycles_bucket{le="10",key="accept4"} 0
trap_cycles_bucket{le="20",key="accept4"} 0
trap_cycles_bucket{le="+Inf",key="accept4"} 1
trap_cycles_sum{key="accept4"} 25
trap_cycles_count{key="accept4"} 1
trap_cycles_bucket{le="10",key="mmap"} 0
trap_cycles_bucket{le="20",key="mmap"} 1
trap_cycles_bucket{le="+Inf",key="mmap"} 1
trap_cycles_sum{key="mmap"} 15
trap_cycles_count{key="mmap"} 1
# EOF
`
	if got != want {
		t.Fatalf("bracketed histogram family:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// One TYPE line per family, not per labeled member.
	if n := strings.Count(got, "# TYPE"); n != 1 {
		t.Fatalf("want 1 TYPE line, got %d", n)
	}
}

// TestRenderOpenMetricsCumulativeBuckets: `le` samples are cumulative and
// the +Inf bucket equals the count, per the exposition format.
func TestRenderOpenMetricsCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []uint64{10, 20})
	for _, v := range []uint64{1, 2, 15, 99} {
		h.Observe(v)
	}
	got := r.RenderOpenMetrics()
	for _, line := range []string{
		`h_bucket{le="10"} 2`,
		`h_bucket{le="20"} 3`,
		`h_bucket{le="+Inf"} 4`,
		`h_sum 117`,
		`h_count 4`,
	} {
		if !strings.Contains(got, line+"\n") {
			t.Errorf("missing %q in:\n%s", line, got)
		}
	}
}

func TestMetricNameSanitizes(t *testing.T) {
	cases := map[string]string{
		"monitor_hooks_total": "monitor_hooks_total",
		"ns:metric":           "ns:metric",
		"bad.name-1":          "bad_name_1",
	}
	for in, want := range cases {
		if got := metricName(in); got != want {
			t.Errorf("metricName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLabelEscape(t *testing.T) {
	in := "a\\b\"c\nd"
	want := `a\\b\"c\nd`
	if got := labelEscape(in); got != want {
		t.Fatalf("labelEscape = %q, want %q", got, want)
	}
	if got := labelEscape("plain"); got != "plain" {
		t.Fatalf("labelEscape(plain) = %q", got)
	}
}

func TestSplitBracket(t *testing.T) {
	cases := []struct {
		in, base, label string
	}{
		{"trap_cycles", "trap_cycles", ""},
		{"trap_cycles[mmap]", "trap_cycles", "mmap"},
		{"odd[", "odd[", ""},
	}
	for _, tc := range cases {
		base, label := splitBracket(tc.in)
		if base != tc.base || label != tc.label {
			t.Errorf("splitBracket(%q) = (%q, %q), want (%q, %q)", tc.in, base, label, tc.base, tc.label)
		}
	}
}
