package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// JSONLSink streams events as one JSON object per line. The encoding has
// a fixed field order, so a trace file is byte-identical across runs that
// produce the same event sequence.
type JSONLSink struct {
	w   io.Writer
	err error
}

// NewJSONL returns a sink writing JSON lines to w.
func NewJSONL(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// Emit writes one event line.
func (s *JSONLSink) Emit(ev *TrapEvent) {
	if s.err != nil {
		return
	}
	var b strings.Builder
	ev.appendJSON(&b)
	b.WriteByte('\n')
	_, s.err = io.WriteString(s.w, b.String())
}

// Close reports the first write error (the writer itself is not closed;
// the caller owns it).
func (s *JSONLSink) Close() error { return s.err }

// ChromeSink streams events in the Chrome trace-event format, loadable by
// chrome://tracing and Perfetto. Each trap is one complete ("ph":"X")
// event on the tenant's process track; timestamps are the simulated cycle
// clock converted to microseconds at 1 GHz (1000 cycles = 1 µs), rendered
// with fixed precision so traces are byte-stable.
type ChromeSink struct {
	w     io.Writer
	err   error
	first bool
}

// NewChrome returns a sink writing a Chrome trace to w. Close must be
// called to terminate the JSON document.
func NewChrome(w io.Writer) *ChromeSink {
	s := &ChromeSink{w: w, first: true}
	_, s.err = io.WriteString(w, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	return s
}

// micros renders a cycle count as microseconds at 1 GHz with nanosecond
// precision, deterministically.
func micros(cycles uint64) string {
	return fmt.Sprintf("%d.%03d", cycles/1000, cycles%1000)
}

// Emit writes one complete trace event.
func (s *ChromeSink) Emit(ev *TrapEvent) {
	if s.err != nil {
		return
	}
	var b strings.Builder
	if s.first {
		s.first = false
	} else {
		b.WriteString(",\n")
	}
	dur := ev.End - ev.Start
	fmt.Fprintf(&b, `{"name":%s,"cat":"trap","ph":"X","pid":%d,"tid":1,"ts":%s,"dur":%s`,
		strconv.Quote(ev.Name), ev.Tenant, micros(ev.Start), micros(dur))
	fmt.Fprintf(&b, `,"args":{"seq":%d,"nr":%d,"cache":%q,"ct":%q,"cf":%q,"ai":%q,"sf":%q`,
		ev.Seq, ev.Nr, ev.Cache, ev.CT, ev.CF, ev.AI, ev.SF)
	fmt.Fprintf(&b, `,"fetch":%d,"unwind":%d,"lookup":%d,"ct_cyc":%d,"cf_cyc":%d,"ai_cyc":%d,"sf_cyc":%d,"depth":%d,"pointee":%d`,
		ev.Cycles.Fetch, ev.Cycles.Unwind, ev.Cycles.CacheLookup,
		ev.Cycles.CT, ev.Cycles.CF, ev.Cycles.AI, ev.Cycles.SF, ev.UnwindDepth, ev.PointeeBytes)
	if ev.Violation != "" {
		fmt.Fprintf(&b, `,"violation":%s`, strconv.Quote(ev.Violation))
	}
	b.WriteString("}}")
	_, s.err = io.WriteString(s.w, b.String())
}

// Close terminates the trace document and reports the first write error.
func (s *ChromeSink) Close() error {
	if s.err != nil {
		return s.err
	}
	_, s.err = io.WriteString(s.w, "\n]}\n")
	return s.err
}

// WriteChrome writes events to w as a complete Chrome trace document.
func WriteChrome(w io.Writer, events []TrapEvent) error {
	sink := NewChrome(w)
	EmitAll(sink, events)
	return sink.Close()
}
