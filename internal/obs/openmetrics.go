package obs

import (
	"fmt"
	"sort"
	"strings"
)

// RenderOpenMetrics renders the registry in the Prometheus/OpenMetrics
// text exposition format so fleet snapshots drop into standard tooling:
//
//	# TYPE monitor_hooks_total counter
//	monitor_hooks_total 412
//	# TYPE monitor_trap_cycles histogram
//	monitor_trap_cycles_bucket{le="500"} 3
//	...
//	monitor_trap_cycles_bucket{le="+Inf"} 9
//	monitor_trap_cycles_sum 41230
//	monitor_trap_cycles_count 9
//	# EOF
//
// The output is byte-deterministic: families sort by name, counter-map
// rows keep their ascending-key order, and histogram buckets render
// cumulatively in bound order. Bound counter maps become labeled samples
// (`name{key="label"}`), and the per-syscall histograms the monitor
// registers as `name[label]` are re-expressed the same way — the bracket
// suffix moves into a `key` label on a shared family. Values are integers
// throughout (counts and simulated cycles), so no float formatting is
// involved.
func (r *Registry) RenderOpenMetrics() string {
	var b strings.Builder
	for _, fam := range r.counterFamilies() {
		fmt.Fprintf(&b, "# TYPE %s counter\n", fam.name)
		b.WriteString(fam.body)
	}
	for _, fam := range r.histogramFamilies() {
		fmt.Fprintf(&b, "# TYPE %s histogram\n", fam.name)
		b.WriteString(fam.body)
	}
	b.WriteString("# EOF\n")
	return b.String()
}

// family is one rendered metric family: its exposition name and its
// sample lines, already in final order.
type family struct {
	name string
	body string
}

// counterFamilies renders plain counters (one unlabeled sample each) and
// bound counter maps (one `key`-labeled sample per row) as sorted
// families.
func (r *Registry) counterFamilies() []family {
	names := make([]string, 0, len(r.counters)+len(r.maps))
	for name := range r.counters {
		names = append(names, name)
	}
	for name := range r.maps {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]family, 0, len(names))
	for _, name := range names {
		var body strings.Builder
		if c := r.counters[name]; c != nil {
			fmt.Fprintf(&body, "%s %d\n", metricName(name), c.Value())
		} else {
			for _, row := range r.CounterMapRows(name) {
				fmt.Fprintf(&body, "%s{key=\"%s\"} %d\n", metricName(name), labelEscape(row.Label), row.Value)
			}
		}
		out = append(out, family{name: metricName(name), body: body.String()})
	}
	return out
}

// histogramFamilies groups histograms into families: a registry name of
// the form `base[label]` joins the `base` family with a `key` label, a
// plain name is its own unlabeled family. Within a family the unlabeled
// histogram renders first, then labeled ones in label order.
func (r *Registry) histogramFamilies() []family {
	type member struct {
		label string
		h     *Histogram
	}
	groups := map[string][]member{}
	for _, h := range r.sortedHists() {
		base, label := splitBracket(h.name)
		groups[base] = append(groups[base], member{label: label, h: h})
	}
	bases := make([]string, 0, len(groups))
	for base := range groups {
		bases = append(bases, base)
	}
	sort.Strings(bases)

	out := make([]family, 0, len(bases))
	for _, base := range bases {
		members := groups[base]
		sort.Slice(members, func(i, j int) bool { return members[i].label < members[j].label })
		name := metricName(base)
		var body strings.Builder
		for _, m := range members {
			suffix := ""
			if m.label != "" {
				suffix = fmt.Sprintf(",key=\"%s\"", labelEscape(m.label))
			}
			var cum uint64
			for i, bound := range m.h.bounds {
				cum += m.h.buckets[i]
				fmt.Fprintf(&body, "%s_bucket{le=\"%d\"%s} %d\n", name, bound, suffix, cum)
			}
			fmt.Fprintf(&body, "%s_bucket{le=\"+Inf\"%s} %d\n", name, suffix, m.h.count)
			if m.label != "" {
				fmt.Fprintf(&body, "%s_sum{key=\"%s\"} %d\n", name, labelEscape(m.label), m.h.sum)
				fmt.Fprintf(&body, "%s_count{key=\"%s\"} %d\n", name, labelEscape(m.label), m.h.count)
			} else {
				fmt.Fprintf(&body, "%s_sum %d\n", name, m.h.sum)
				fmt.Fprintf(&body, "%s_count %d\n", name, m.h.count)
			}
		}
		out = append(out, family{name: name, body: body.String()})
	}
	return out
}

// splitBracket splits a registry name of the form `base[label]` into its
// parts; a plain name returns ("name", "").
func splitBracket(name string) (base, label string) {
	i := strings.IndexByte(name, '[')
	if i < 0 || !strings.HasSuffix(name, "]") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// metricName maps a registry name onto the exposition-format alphabet
// [a-zA-Z0-9_:], replacing anything else with '_'. Registry names are
// already in-alphabet today; the mapping keeps the renderer total.
func metricName(name string) string {
	ok := true
	for i := 0; i < len(name); i++ {
		if !nameByte(name[i]) {
			ok = false
			break
		}
	}
	if ok {
		return name
	}
	out := []byte(name)
	for i, c := range out {
		if !nameByte(c) {
			out[i] = '_'
		}
	}
	return string(out)
}

// nameByte reports whether c is legal in an exposition metric name.
func nameByte(c byte) bool {
	return c == '_' || c == ':' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// labelEscape escapes a label value per the exposition format: backslash,
// double quote, and newline.
func labelEscape(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}
