// Package obs is BASTION's deterministic telemetry layer: a structured
// decision trace of every monitor trap, a metrics registry of counters and
// fixed-bucket histograms, and a bounded flight recorder that preserves
// the syscall history leading up to a violation.
//
// Everything in this package is clocked by the simulator's cycle model —
// no wall clock anywhere — so traces, metric snapshots, and flight-
// recorder dumps are byte-reproducible across runs and across machines,
// and can be pinned by golden tests. Observing a run never charges cycles
// to the shared clock: telemetry reads the clock, it does not advance it,
// so a traced run and an untraced run produce identical verdicts and
// identical cycle accounts.
package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Verdict is the outcome of one enforcement context on one trap.
type Verdict uint8

// Verdicts.
const (
	// VerdictSkip means the context did not run (disabled, or the mode
	// stops before checking).
	VerdictSkip Verdict = iota
	// VerdictPass means the context ran and accepted the trap.
	VerdictPass
	// VerdictCached means the context's decision was served by the
	// verdict cache without re-deriving it.
	VerdictCached
	// VerdictViolation means the context rejected the trap.
	VerdictViolation
)

func (v Verdict) String() string {
	switch v {
	case VerdictSkip:
		return "skip"
	case VerdictPass:
		return "pass"
	case VerdictCached:
		return "cached"
	case VerdictViolation:
		return "violation"
	}
	return fmt.Sprintf("verdict(%d)", uint8(v))
}

// CacheOutcome describes the verdict cache's involvement in one trap.
type CacheOutcome uint8

// Cache outcomes.
const (
	// CacheOff means the monitor runs without a verdict cache.
	CacheOff CacheOutcome = iota
	// CacheBypass means the cache exists but this trap is uncached (the
	// accept fast path).
	CacheBypass
	// CacheHit / CacheMiss are lookup outcomes.
	CacheHit
	CacheMiss
)

func (c CacheOutcome) String() string {
	switch c {
	case CacheOff:
		return "off"
	case CacheBypass:
		return "bypass"
	case CacheHit:
		return "hit"
	case CacheMiss:
		return "miss"
	}
	return fmt.Sprintf("cache(%d)", uint8(c))
}

// CycleBreakdown attributes one trap's monitor cycles to its stages, in
// pipeline order: state fetch (trap round trip + register read), stack
// unwind, syscall-flow transition check, verdict-cache lookup, and the
// three per-trap context checks. The sum of the fields equals End-Start
// on the owning TrapEvent.
type CycleBreakdown struct {
	Fetch       uint64
	Unwind      uint64
	CacheLookup uint64
	CT          uint64
	CF          uint64
	AI          uint64
	SF          uint64
}

// Total sums the per-stage charges.
func (c CycleBreakdown) Total() uint64 {
	return c.Fetch + c.Unwind + c.CacheLookup + c.CT + c.CF + c.AI + c.SF
}

// TrapEvent is one structured decision-trace record: everything the
// monitor decided about one SECCOMP_RET_TRACE stop, with cycle-clock
// timestamps and the per-stage cost attribution.
type TrapEvent struct {
	// Seq is the trap's sequence number within its monitor (0-based).
	Seq uint64
	// Tenant is the owning tenant index in a fleet run (0 standalone).
	Tenant int
	// Nr and Name identify the trapped syscall.
	Nr   uint32
	Name string
	// Start and End are cycle-clock readings at trap entry and exit.
	Start, End uint64
	// CT, CF, AI, SF are the per-context verdicts.
	CT, CF, AI, SF Verdict
	// Cache is the verdict cache's involvement.
	Cache CacheOutcome
	// Cycles attributes End-Start to the monitor's stages.
	Cycles CycleBreakdown
	// UnwindDepth is the number of stack frames fetched.
	UnwindDepth int
	// PointeeBytes counts extended-argument pointee bytes verified
	// against shadow memory.
	PointeeBytes uint64
	// Violation is the violation description when the trap was rejected
	// ("" on a pass).
	Violation string
	// Gen is the artifact generation the verdicts were issued under
	// (policy hot reload); 0 is the launch generation and is omitted from
	// the JSON encoding, keeping pre-reload traces byte-stable.
	Gen uint64
}

// Violated reports whether any context rejected the trap.
func (e *TrapEvent) Violated() bool {
	return e.CT == VerdictViolation || e.CF == VerdictViolation ||
		e.AI == VerdictViolation || e.SF == VerdictViolation
}

// appendJSON renders the event as a single JSON object with a fixed field
// order, so encoded traces are byte-stable. Strings are quoted with
// strconv for correct escaping.
func (e *TrapEvent) appendJSON(b *strings.Builder) {
	fmt.Fprintf(b, `{"seq":%d,"tenant":%d,"nr":%d,"name":%s,"start":%d,"end":%d`,
		e.Seq, e.Tenant, e.Nr, strconv.Quote(e.Name), e.Start, e.End)
	fmt.Fprintf(b, `,"cache":%q,"ct":%q,"cf":%q,"ai":%q,"sf":%q`, e.Cache, e.CT, e.CF, e.AI, e.SF)
	fmt.Fprintf(b, `,"cycles":{"fetch":%d,"unwind":%d,"lookup":%d,"ct":%d,"cf":%d,"ai":%d,"sf":%d}`,
		e.Cycles.Fetch, e.Cycles.Unwind, e.Cycles.CacheLookup, e.Cycles.CT, e.Cycles.CF, e.Cycles.AI, e.Cycles.SF)
	fmt.Fprintf(b, `,"depth":%d,"pointee":%d`, e.UnwindDepth, e.PointeeBytes)
	if e.Violation != "" {
		fmt.Fprintf(b, `,"violation":%s`, strconv.Quote(e.Violation))
	}
	if e.Gen != 0 {
		fmt.Fprintf(b, `,"gen":%d`, e.Gen)
	}
	b.WriteByte('}')
}

// JSON returns the event's deterministic one-line JSON encoding.
func (e *TrapEvent) JSON() string {
	var b strings.Builder
	e.appendJSON(&b)
	return b.String()
}

// Sink receives one event per trap. Implementations must not retain the
// pointer past the call: the monitor reuses the event storage.
type Sink interface {
	Emit(ev *TrapEvent)
}

// BufferSink collects events in memory (fleet tenants, tests).
type BufferSink struct {
	Events []TrapEvent
}

// Emit appends a copy of the event.
func (s *BufferSink) Emit(ev *TrapEvent) { s.Events = append(s.Events, *ev) }

// EmitAll replays a recorded event slice into a sink, in order.
func EmitAll(s Sink, events []TrapEvent) {
	for i := range events {
		s.Emit(&events[i])
	}
}

// WriteJSONL writes events to w as deterministic JSON lines.
func WriteJSONL(w io.Writer, events []TrapEvent) error {
	sink := NewJSONL(w)
	EmitAll(sink, events)
	return sink.Close()
}
