package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Fixed histogram bucket bounds. Buckets are cumulative-upper-bound style:
// a value lands in the first bucket whose bound is >= v, or the overflow
// bucket past the last bound. Bounds are fixed (never derived from data)
// so two runs always bucket identically.
var (
	// CycleBuckets spans monitor per-trap costs: a hook-only trap is a
	// few hundred cycles, a full fetch+check trap a few thousand, and a
	// deep pointee walk tens of thousands.
	CycleBuckets = []uint64{500, 1000, 2000, 4000, 8000, 16000, 32000, 64000}
	// DepthBuckets spans stack-unwind depths (the paper reports 2–22).
	DepthBuckets = []uint64{1, 2, 4, 8, 16, 32, 64}
	// ByteBuckets spans pointee bytes verified per trap.
	ByteBuckets = []uint64{16, 64, 256, 1024, 4096}
)

// Counter is a monotonically increasing metric. Its storage is either
// owned or bound to an external uint64 (registry-backed rendering of a
// pre-existing exported field).
type Counter struct {
	name string
	own  uint64
	ptr  *uint64
}

// Inc adds one.
func (c *Counter) Inc() { *c.ptr++ }

// Add adds n.
func (c *Counter) Add(n uint64) { *c.ptr += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return *c.ptr }

// Histogram is a fixed-bucket distribution. The last bucket is the
// overflow bucket for values above every bound.
type Histogram struct {
	name    string
	bounds  []uint64
	buckets []uint64
	count   uint64
	sum     uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.count++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i]++
			return
		}
	}
	h.buckets[len(h.bounds)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of observations.
func (h *Histogram) Sum() uint64 { return h.sum }

// Mean returns sum/count, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// QuantileOverflow is Quantile's result when the requested rank falls in
// the overflow bucket: every configured bound lies below the quantile, so
// no finite upper bound can be reported.
const QuantileOverflow = ^uint64(0)

// Quantile returns the q-quantile of the recorded distribution under the
// upper-bound convention: the smallest configured bucket bound b such that
// at least ⌈q·count⌉ observations are ≤ b. The result is exact with
// respect to the fixed buckets (the true quantile lies in the returned
// bucket) and deterministic — no interpolation, no floating-point
// accumulation. q is clamped to (0, 1]; a quantile landing in the
// overflow bucket returns QuantileOverflow, and an empty histogram
// returns 0.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(1)
	if q > 0 {
		rank = uint64(math.Ceil(q * float64(h.count)))
	}
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.buckets[i]
		if cum >= rank {
			return bound
		}
	}
	return QuantileOverflow
}

// counterMap exposes an existing numeric-keyed counter map (for example
// the monitor's ChecksByNr) as a family of counters named
// "name[label(key)]", read through at render time.
type counterMap struct {
	name  string
	m     map[uint32]uint64
	label func(uint32) string
}

// Registry holds a run's counters and histograms and renders them
// deterministically: sorted text for humans, sorted JSON for machines.
// It is not safe for concurrent use; each monitor owns one, and fleet
// aggregation merges them after the tenants finish.
type Registry struct {
	counters map[string]*Counter
	maps     map[string]*counterMap
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		maps:     map[string]*counterMap{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it (with owned storage) on
// first use.
func (r *Registry) Counter(name string) *Counter {
	c := r.counters[name]
	if c == nil {
		c = &Counter{name: name}
		c.ptr = &c.own
		r.counters[name] = c
	}
	return c
}

// BindCounter registers a counter whose storage is the given variable —
// the compatibility bridge for exported counter fields that pre-date the
// registry: the field remains the single storage location, and the
// registry renders through the pointer.
func (r *Registry) BindCounter(name string, p *uint64) *Counter {
	c := &Counter{name: name, ptr: p}
	r.counters[name] = c
	return c
}

// BindCounterMap registers a numeric-keyed counter map rendered as
// "name[label(key)]" rows in ascending key order. The map is read at
// render time; the caller keeps incrementing it directly.
func (r *Registry) BindCounterMap(name string, m map[uint32]uint64, label func(uint32) string) {
	r.maps[name] = &counterMap{name: name, m: m, label: label}
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use. Later calls ignore bounds.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	h := r.hists[name]
	if h == nil {
		h = &Histogram{name: name, bounds: bounds, buckets: make([]uint64, len(bounds)+1)}
		r.hists[name] = h
	}
	return h
}

// CounterRow is one rendered row of a bound counter map.
type CounterRow struct {
	Label string
	Value uint64
}

// CounterMapRows returns the named bound counter map's rows in ascending
// key order, or nil for an unknown name. Renderers use it to present a
// counter family without iterating the underlying map themselves.
func (r *Registry) CounterMapRows(name string) []CounterRow {
	cm := r.maps[name]
	if cm == nil {
		return nil
	}
	keys := make([]uint32, 0, len(cm.m))
	for k := range cm.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	rows := make([]CounterRow, len(keys))
	for i, k := range keys {
		rows[i] = CounterRow{Label: cm.label(k), Value: cm.m[k]}
	}
	return rows
}

// sample is one rendered counter row.
type sample struct {
	name  string
	value uint64
}

// counterSamples flattens counters and bound counter maps into one sorted
// row list.
func (r *Registry) counterSamples() []sample {
	var out []sample
	for name, c := range r.counters {
		out = append(out, sample{name: name, value: c.Value()})
	}
	for _, cm := range r.maps {
		keys := make([]uint32, 0, len(cm.m))
		for k := range cm.m {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			out = append(out, sample{name: fmt.Sprintf("%s[%s]", cm.name, cm.label(k)), value: cm.m[k]})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// sortedHists returns histograms in name order.
func (r *Registry) sortedHists() []*Histogram {
	names := make([]string, 0, len(r.hists))
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*Histogram, len(names))
	for i, name := range names {
		out[i] = r.hists[name]
	}
	return out
}

// Render returns the deterministic text form: counters sorted by name,
// then histograms sorted by name with their bucket rows.
func (r *Registry) Render() string {
	var b strings.Builder
	for _, s := range r.counterSamples() {
		fmt.Fprintf(&b, "counter %-40s %d\n", s.name, s.value)
	}
	for _, h := range r.sortedHists() {
		fmt.Fprintf(&b, "hist    %-40s count=%d sum=%d mean=%.1f |", h.name, h.count, h.sum, h.Mean())
		for i, bound := range h.bounds {
			fmt.Fprintf(&b, " le%d:%d", bound, h.buckets[i])
		}
		fmt.Fprintf(&b, " inf:%d\n", h.buckets[len(h.bounds)])
	}
	return b.String()
}

// SnapshotJSON returns the machine-readable snapshot with sorted keys and
// a fixed field order, suitable for byte-equality checks across runs.
func (r *Registry) SnapshotJSON() string {
	var b strings.Builder
	b.WriteString("{\"counters\":{")
	for i, s := range r.counterSamples() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q:%d", s.name, s.value)
	}
	b.WriteString("},\"histograms\":{")
	for i, h := range r.sortedHists() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q:{\"count\":%d,\"sum\":%d,\"bounds\":[", h.name, h.count, h.sum)
		for j, bound := range h.bounds {
			if j > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", bound)
		}
		b.WriteString("],\"buckets\":[")
		for j, n := range h.buckets {
			if j > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", n)
		}
		b.WriteString("]}")
	}
	b.WriteString("}}\n")
	return b.String()
}

// Merge folds other's current values into r: counters (including bound
// counter-map rows, flattened to "name[label]") sum; histograms with the
// same name sum bucket-wise. Other is read, never modified. Merging a
// registry into a fresh one therefore snapshots it, which is how fleet
// tenants aggregate per-incarnation monitors.
//
// Two same-named histograms must agree on their bucket bounds,
// element-wise: every producer registers the same fixed bounds, so a
// mismatch is a programming error, and summing misaligned buckets would
// silently corrupt every quantile computed from the merged counts. Merge
// returns an error naming the first mismatched histogram; r is left
// partially merged and must be discarded by the caller.
func (r *Registry) Merge(other *Registry) error {
	for _, s := range other.counterSamples() {
		r.Counter(s.name).Add(s.value)
	}
	for _, oh := range other.sortedHists() {
		h := r.Histogram(oh.name, oh.bounds)
		if !equalBounds(h.bounds, oh.bounds) {
			return fmt.Errorf("obs: merge histogram %q: bucket bounds differ (%v vs %v)",
				oh.name, h.bounds, oh.bounds)
		}
		h.count += oh.count
		h.sum += oh.sum
		for i := range oh.buckets {
			h.buckets[i] += oh.buckets[i]
		}
	}
	return nil
}

// equalBounds reports element-wise equality of two bound slices.
func equalBounds(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
