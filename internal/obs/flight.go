package obs

import "strings"

// FlightRecorder keeps the last N trap events in a bounded ring. When a
// violation (or a tenant crash in a fleet) occurs, the recorder's contents
// are the syscall decision history that led to it — the forensic record
// the paper's kill-on-violation policy otherwise destroys with the guest.
type FlightRecorder struct {
	cap  int
	ring []TrapEvent
	next int
	full bool
}

// NewFlightRecorder returns a recorder holding the last capacity events.
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity < 1 {
		capacity = 1
	}
	return &FlightRecorder{cap: capacity, ring: make([]TrapEvent, 0, capacity)}
}

// Cap returns the recorder's capacity.
func (f *FlightRecorder) Cap() int { return f.cap }

// Add records a copy of the event, evicting the oldest when full.
func (f *FlightRecorder) Add(ev *TrapEvent) {
	if len(f.ring) < f.cap {
		f.ring = append(f.ring, *ev)
		return
	}
	f.full = true
	f.ring[f.next] = *ev
	f.next = (f.next + 1) % f.cap
}

// Events returns the recorded events oldest-first, as a fresh slice.
func (f *FlightRecorder) Events() []TrapEvent {
	out := make([]TrapEvent, 0, len(f.ring))
	if f.full {
		out = append(out, f.ring[f.next:]...)
		out = append(out, f.ring[:f.next]...)
		return out
	}
	return append(out, f.ring...)
}

// Len returns the number of recorded events.
func (f *FlightRecorder) Len() int { return len(f.ring) }

// DumpJSONL renders the recorded history oldest-first as deterministic
// JSON lines — the dump attached to a Violation.
func (f *FlightRecorder) DumpJSONL() string {
	var b strings.Builder
	events := f.Events()
	for i := range events {
		events[i].appendJSON(&b)
		b.WriteByte('\n')
	}
	return b.String()
}

// DumpEvents renders an event slice oldest-first as deterministic JSON
// lines (the same format as DumpJSONL, for histories detached from their
// recorder).
func DumpEvents(events []TrapEvent) string {
	var b strings.Builder
	for i := range events {
		events[i].appendJSON(&b)
		b.WriteByte('\n')
	}
	return b.String()
}
