package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureEvents is a small, fixed decision trace exercising every field:
// a cached pass, a cold miss with pointee bytes, a fast-path bypass, and
// a violation.
func fixtureEvents() []TrapEvent {
	return []TrapEvent{
		{
			Seq: 0, Tenant: 0, Nr: 9, Name: "mmap", Start: 1000, End: 4810,
			CT: VerdictPass, CF: VerdictPass, AI: VerdictPass, Cache: CacheMiss,
			Cycles:      CycleBreakdown{Fetch: 2700, Unwind: 640, CacheLookup: 18, CT: 60, CF: 210, AI: 182},
			UnwindDepth: 3,
		},
		{
			Seq: 1, Tenant: 0, Nr: 59, Name: "execve", Start: 6000, End: 11304,
			CT: VerdictPass, CF: VerdictPass, AI: VerdictPass, Cache: CacheMiss,
			Cycles:       CycleBreakdown{Fetch: 2700, Unwind: 860, CacheLookup: 18, CT: 60, CF: 280, AI: 1386},
			UnwindDepth:  4,
			PointeeBytes: 9,
		},
		{
			Seq: 2, Tenant: 1, Nr: 288, Name: "accept4", Start: 15000, End: 17925,
			CT: VerdictPass, CF: VerdictPass, AI: VerdictPass, Cache: CacheBypass,
			Cycles:      CycleBreakdown{Fetch: 2700, Unwind: 100, CT: 60, CF: 35, AI: 30},
			UnwindDepth: 1,
		},
		{
			Seq: 3, Tenant: 1, Nr: 10, Name: "mprotect", Start: 21000, End: 24438,
			CT: VerdictPass, CF: VerdictViolation, AI: VerdictSkip, Cache: CacheHit,
			Cycles:      CycleBreakdown{Fetch: 2700, Unwind: 640, CacheLookup: 18, CT: 0, CF: 80, AI: 0},
			UnwindDepth: 3,
			Violation:   "control-flow violation on mprotect: return address 0x999 is not a callsite",
		},
	}
}

func checkGolden(t *testing.T, name string, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("%s mismatch\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestJSONLExporterGolden(t *testing.T) {
	var b strings.Builder
	if err := WriteJSONL(&b, fixtureEvents()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace.jsonl.golden", b.String())
}

func TestChromeExporterGolden(t *testing.T) {
	var b strings.Builder
	if err := WriteChrome(&b, fixtureEvents()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace.chrome.golden", b.String())
}

func TestExportersDeterministic(t *testing.T) {
	render := func() (string, string) {
		var j, c strings.Builder
		if err := WriteJSONL(&j, fixtureEvents()); err != nil {
			t.Fatal(err)
		}
		if err := WriteChrome(&c, fixtureEvents()); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}
	j1, c1 := render()
	j2, c2 := render()
	if j1 != j2 || c1 != c2 {
		t.Fatal("exporters not byte-deterministic across identical event sequences")
	}
}

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(3)
	events := fixtureEvents()
	for i := range events {
		f.Add(&events[i])
	}
	got := f.Events()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	// Oldest (seq 0) evicted; order preserved oldest-first.
	for i, want := range []uint64{1, 2, 3} {
		if got[i].Seq != want {
			t.Errorf("event %d seq = %d, want %d", i, got[i].Seq, want)
		}
	}
	if got[2].Violation == "" {
		t.Error("violating trap must be the final recorded event")
	}
	if f.DumpJSONL() != DumpEvents(got) {
		t.Error("DumpJSONL and DumpEvents disagree")
	}
}

func TestFlightRecorderPartial(t *testing.T) {
	f := NewFlightRecorder(8)
	events := fixtureEvents()
	for i := range events[:2] {
		f.Add(&events[i])
	}
	got := f.Events()
	if len(got) != 2 || got[0].Seq != 0 || got[1].Seq != 1 {
		t.Fatalf("partial ring = %+v", got)
	}
}

func TestVerdictAndCacheStrings(t *testing.T) {
	if VerdictSkip.String() != "skip" || VerdictPass.String() != "pass" ||
		VerdictCached.String() != "cached" || VerdictViolation.String() != "violation" {
		t.Fatal("verdict strings")
	}
	if CacheOff.String() != "off" || CacheBypass.String() != "bypass" ||
		CacheHit.String() != "hit" || CacheMiss.String() != "miss" {
		t.Fatal("cache outcome strings")
	}
	if Verdict(9).String() != "verdict(9)" || CacheOutcome(9).String() != "cache(9)" {
		t.Fatal("unknown enum strings")
	}
}
