package obs

import (
	"strings"
	"testing"
)

func fixtureRegistry() *Registry {
	r := NewRegistry()
	r.Counter("traps_total").Add(4)
	hits := uint64(17)
	r.BindCounter("cache_hits_total", &hits)
	checks := map[uint32]uint64{10: 2, 9: 1, 288: 3}
	r.BindCounterMap("checks_total", checks, func(nr uint32) string {
		return map[uint32]string{9: "mmap", 10: "mprotect", 288: "accept4"}[nr]
	})
	h := r.Histogram("trap_cycles", CycleBuckets)
	for _, v := range []uint64{480, 3810, 5304, 2925, 70000} {
		h.Observe(v)
	}
	d := r.Histogram("unwind_depth", DepthBuckets)
	for _, v := range []uint64{3, 4, 1, 3} {
		d.Observe(v)
	}
	return r
}

func TestRegistryRenderGolden(t *testing.T) {
	checkGolden(t, "metrics.txt.golden", fixtureRegistry().Render())
}

func TestRegistrySnapshotGolden(t *testing.T) {
	checkGolden(t, "metrics.json.golden", fixtureRegistry().SnapshotJSON())
}

func TestRegistryDeterministic(t *testing.T) {
	a, b := fixtureRegistry(), fixtureRegistry()
	if a.Render() != b.Render() || a.SnapshotJSON() != b.SnapshotJSON() {
		t.Fatal("registry rendering not deterministic across identical builds")
	}
}

func TestBoundCounterReadsThrough(t *testing.T) {
	r := NewRegistry()
	var field uint64
	c := r.BindCounter("bound", &field)
	field = 41
	c.Inc()
	if field != 42 || c.Value() != 42 {
		t.Fatalf("bound counter: field=%d value=%d", field, c.Value())
	}
	if !strings.Contains(r.Render(), "bound") || !strings.Contains(r.Render(), "42") {
		t.Fatalf("render missing bound counter:\n%s", r.Render())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []uint64{10, 20})
	for _, v := range []uint64{5, 10, 11, 20, 21, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 5+10+11+20+21+1000 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	want := []uint64{2, 2, 2} // le10, le20, inf
	for i, n := range want {
		if h.buckets[i] != n {
			t.Fatalf("bucket %d = %d, want %d", i, h.buckets[i], n)
		}
	}
	if got := r.Histogram("h", []uint64{99}); got != h {
		t.Fatal("Histogram must return the existing histogram for a known name")
	}
}

func TestRegistryMerge(t *testing.T) {
	dst := NewRegistry()
	if err := dst.Merge(fixtureRegistry()); err != nil {
		t.Fatal(err)
	}
	if err := dst.Merge(fixtureRegistry()); err != nil {
		t.Fatal(err)
	}

	if got := dst.Counter("traps_total").Value(); got != 8 {
		t.Fatalf("merged traps_total = %d, want 8", got)
	}
	// Bound counter-map rows flatten into plain counters on merge.
	if got := dst.Counter("checks_total[accept4]").Value(); got != 6 {
		t.Fatalf("merged checks_total[accept4] = %d, want 6", got)
	}
	h := dst.Histogram("trap_cycles", CycleBuckets)
	if h.Count() != 10 {
		t.Fatalf("merged hist count = %d, want 10", h.Count())
	}
	one := fixtureRegistry().Histogram("trap_cycles", CycleBuckets)
	if h.Sum() != 2*one.Sum() {
		t.Fatalf("merged hist sum = %d, want %d", h.Sum(), 2*one.Sum())
	}
	// Merge must not disturb the source.
	src := fixtureRegistry()
	before := src.SnapshotJSON()
	if err := NewRegistry().Merge(src); err != nil {
		t.Fatal(err)
	}
	if src.SnapshotJSON() != before {
		t.Fatal("Merge modified its source registry")
	}
}

// TestRegistryMergeBoundsMismatch: same-named histograms with different
// bucket bounds must make Merge fail loudly — summing misaligned buckets
// would silently corrupt every quantile computed from the result.
func TestRegistryMergeBoundsMismatch(t *testing.T) {
	mismatches := []struct {
		name   string
		bounds []uint64
	}{
		{"different length", []uint64{10, 20, 30}},
		{"same length, different bound", []uint64{10, 25}},
	}
	for _, tc := range mismatches {
		dst := NewRegistry()
		dst.Histogram("h", []uint64{10, 20}).Observe(5)
		src := NewRegistry()
		src.Histogram("h", tc.bounds).Observe(5)
		err := dst.Merge(src)
		if err == nil {
			t.Fatalf("%s: Merge accepted mismatched bounds", tc.name)
		}
		if !strings.Contains(err.Error(), `"h"`) {
			t.Fatalf("%s: error does not name the histogram: %v", tc.name, err)
		}
	}
}

// TestHistogramQuantile pins the upper-bound convention: Quantile returns
// the smallest configured bound covering ⌈q·count⌉ observations, the
// overflow sentinel past the last bound, and 0 when empty.
func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", []uint64{10, 20, 40})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", got)
	}
	// 10 observations: 5 in le10, 3 in le20, 1 in le40, 1 overflow.
	for _, v := range []uint64{1, 2, 3, 4, 10, 11, 15, 20, 33, 99} {
		h.Observe(v)
	}
	cases := []struct {
		q    float64
		want uint64
	}{
		{0.10, 10}, // rank 1
		{0.50, 10}, // rank 5, cumulative le10 = 5
		{0.51, 20}, // rank 6 crosses into le20
		{0.80, 20}, // rank 8, cumulative le20 = 8
		{0.90, 40}, // rank 9
		{0.99, QuantileOverflow}, // rank 10 lands in overflow
		{1.00, QuantileOverflow},
		{-1, 10},  // clamped to rank 1
		{0, 10},   // clamped to rank 1
		{2.0, QuantileOverflow}, // clamped to rank count
	}
	for _, tc := range cases {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %d, want %d", tc.q, got, tc.want)
		}
	}
	// A distribution entirely within the bounds never returns the sentinel.
	exact := NewRegistry().Histogram("e", []uint64{10})
	exact.Observe(10)
	if got := exact.Quantile(1); got != 10 {
		t.Fatalf("p100 of in-bounds distribution = %d, want 10", got)
	}
}
