package perf

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// SchemaVersion is the artifact schema this package writes and reads. A
// bumped schema means the metric name space or encoding changed; readers
// refuse other versions so the regression gate never compares across
// incompatible encodings.
const SchemaVersion = 1

// Artifact is one benchmark run rendered as a flat, sorted metric list —
// the unit of the repo's performance trajectory. Label identifies the run
// (a git ref, "ci", a date); Units echoes the work-unit count the bench
// ran with, because metric values are only comparable between artifacts
// produced at the same units.
type Artifact struct {
	Schema  int
	Label   string
	Units   int
	Metrics []Metric
}

// New returns an empty artifact for the given run label and unit count.
func New(label string, units int) *Artifact {
	return &Artifact{Schema: SchemaVersion, Label: label, Units: units}
}

// Add appends one metric. Callers may add in any order; JSON sorts.
func (a *Artifact) Add(name string, v float64, dir Direction) {
	a.Metrics = append(a.Metrics, Metric{Name: name, Value: v, Dir: dir})
}

// sorted orders metrics by name in place.
func (a *Artifact) sorted() {
	sort.Slice(a.Metrics, func(i, j int) bool { return a.Metrics[i].Name < a.Metrics[j].Name })
}

// Lookup returns the named metric. The artifact must be sorted (any
// artifact that went through JSON or Validate is).
func (a *Artifact) Lookup(name string) (Metric, bool) {
	i := sort.Search(len(a.Metrics), func(i int) bool { return a.Metrics[i].Name >= name })
	if i < len(a.Metrics) && a.Metrics[i].Name == name {
		return a.Metrics[i], true
	}
	return Metric{}, false
}

// Validate checks the invariants readers rely on: the supported schema
// version and strictly ascending (therefore unique) metric names.
func (a *Artifact) Validate() error {
	if a.Schema != SchemaVersion {
		return fmt.Errorf("perf: artifact schema %d, this build reads %d — regenerate the artifact",
			a.Schema, SchemaVersion)
	}
	for i := range a.Metrics {
		if a.Metrics[i].Name == "" {
			return fmt.Errorf("perf: metric %d has an empty name", i)
		}
		if i > 0 && a.Metrics[i].Name <= a.Metrics[i-1].Name {
			return fmt.Errorf("perf: metric names not strictly ascending at %q", a.Metrics[i].Name)
		}
	}
	return nil
}

// JSON renders the artifact deterministically: metrics sorted by name,
// one per line (so artifact diffs in version control read like metric
// diffs), fixed field order, floats in shortest round-trip form. Two runs
// producing the same measurements produce byte-identical artifacts.
func (a *Artifact) JSON() string {
	a.sorted()
	var b strings.Builder
	fmt.Fprintf(&b, "{\"schema\":%d,\"label\":%q,\"units\":%d,\"metrics\":[",
		a.Schema, a.Label, a.Units)
	for i := range a.Metrics {
		m := &a.Metrics[i]
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteByte('\n')
		fmt.Fprintf(&b, "{\"name\":%q,\"dir\":%q,\"value\":%s}", m.Name, m.Dir.String(), formatValue(m.Value))
	}
	b.WriteString("\n]}\n")
	return b.String()
}

// wireArtifact mirrors the JSON shape for parsing. Reading does not need
// the deterministic writer; encoding/json is fine here.
type wireArtifact struct {
	Schema  int          `json:"schema"`
	Label   string       `json:"label"`
	Units   int          `json:"units"`
	Metrics []wireMetric `json:"metrics"`
}

type wireMetric struct {
	Name  string          `json:"name"`
	Dir   string          `json:"dir"`
	Value json.RawMessage `json:"value"`
}

// Parse reads an artifact produced by JSON and validates it.
func Parse(data []byte) (*Artifact, error) {
	var w wireArtifact
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return nil, fmt.Errorf("perf: parse artifact: %w", err)
	}
	a := &Artifact{Schema: w.Schema, Label: w.Label, Units: w.Units}
	a.Metrics = make([]Metric, len(w.Metrics))
	for i, m := range w.Metrics {
		dir, err := ParseDirection(m.Dir)
		if err != nil {
			return nil, fmt.Errorf("perf: metric %q: %w", m.Name, err)
		}
		v, err := parseValue(m.Value)
		if err != nil {
			return nil, fmt.Errorf("perf: metric %q: %w", m.Name, err)
		}
		a.Metrics[i] = Metric{Name: m.Name, Value: v, Dir: dir}
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// parseValue accepts the two encodings formatValue emits: a JSON number,
// or one of the quoted non-finite sentinels.
func parseValue(raw json.RawMessage) (float64, error) {
	if len(raw) == 0 {
		return 0, fmt.Errorf("missing value")
	}
	if raw[0] == '"' {
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return 0, err
		}
		switch s {
		case "NaN":
			return math.NaN(), nil
		case "+Inf":
			return math.Inf(1), nil
		case "-Inf":
			return math.Inf(-1), nil
		}
		return 0, fmt.Errorf("unknown value sentinel %q", s)
	}
	var v float64
	if err := json.Unmarshal(raw, &v); err != nil {
		return 0, err
	}
	return v, nil
}
