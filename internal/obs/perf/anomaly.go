package perf

// AnomalyConfig tunes EWMA anomaly detection over a cycle stream. The
// defaults use a power-of-two smoothing factor so the float arithmetic is
// exact and the flags are bit-reproducible.
type AnomalyConfig struct {
	// Alpha is the EWMA smoothing factor (weight of the newest sample).
	Alpha float64
	// Factor flags a sample exceeding Factor × the running mean.
	Factor float64
	// Warmup samples are never flagged; they only feed the mean, so a
	// stream's first traps (cold caches, deep first unwinds) don't alarm.
	Warmup int
}

// DefaultAnomalyConfig returns the tuning used by the fleet SLO view:
// alpha 1/8 (exact in binary), factor 4, warmup 8.
func DefaultAnomalyConfig() AnomalyConfig {
	return AnomalyConfig{Alpha: 0.125, Factor: 4, Warmup: 8}
}

// Anomaly is one flagged sample: its index in the stream, its value, and
// the running mean it was compared against (the mean before the sample
// was folded in).
type Anomaly struct {
	Index int
	Value uint64
	Mean  float64
}

// DetectEWMA flags samples that exceed Factor × the exponentially
// weighted running mean of the stream so far. The stream is simulated
// trap cycles in trap order — no wall clock — and the computation is a
// single deterministic left-to-right pass, so the same stream always
// yields the same flags. Zero-value config fields fall back to defaults.
func DetectEWMA(values []uint64, cfg AnomalyConfig) []Anomaly {
	def := DefaultAnomalyConfig()
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = def.Alpha
	}
	if cfg.Factor <= 1 {
		cfg.Factor = def.Factor
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = def.Warmup
	}
	var out []Anomaly
	var mean float64
	for i, v := range values {
		if i == 0 {
			mean = float64(v)
			continue
		}
		if i >= cfg.Warmup && float64(v) > cfg.Factor*mean {
			out = append(out, Anomaly{Index: i, Value: v, Mean: mean})
		}
		mean = cfg.Alpha*float64(v) + (1-cfg.Alpha)*mean
	}
	return out
}
