package perf

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// DeltaStatus classifies one metric's change between two artifacts.
type DeltaStatus uint8

const (
	// Unchanged: the value moved by no more than the tolerance (or not at
	// all, for Exact metrics).
	Unchanged DeltaStatus = iota
	// Improved: the value moved beyond tolerance in the good direction.
	Improved
	// Changed: an Info metric moved; never gates.
	Changed
	// Regressed: the value moved beyond tolerance in the bad direction,
	// or an Exact metric changed at all.
	Regressed
	// Missing: the metric exists in the baseline but not in the new
	// artifact — a silently dropped measurement gates like a regression.
	Missing
	// Added: the metric exists only in the new artifact; informational.
	Added
)

// String returns the table form.
func (s DeltaStatus) String() string {
	switch s {
	case Unchanged:
		return "ok"
	case Improved:
		return "improved"
	case Changed:
		return "changed"
	case Regressed:
		return "REGRESSED"
	case Missing:
		return "MISSING"
	case Added:
		return "added"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Gates reports whether this status fails the regression gate.
func (s DeltaStatus) Gates() bool { return s == Regressed || s == Missing }

// Delta is one metric's comparison row.
type Delta struct {
	Name     string
	Dir      Direction
	Old, New float64
	// Severity is the worsening as a fraction of |old| (0 when not
	// worse); it orders the regression table worst-first. +Inf marks a
	// regression from a zero baseline and Missing metrics.
	Severity float64
	Status   DeltaStatus
}

// Result is a full artifact comparison.
type Result struct {
	BaseLabel, NewLabel string
	TolerancePct        float64
	// Deltas holds every compared metric: gating rows first (severity
	// descending, then name), then the rest in name order.
	Deltas []Delta
}

// floatSlack absorbs pure floating-point noise when the tolerance math
// itself lands on a boundary; it is far below any meaningful change in
// the deterministic simulator.
const floatSlack = 1e-12

// Compare gates cur against base metric-by-metric. tolerancePct is the
// allowed relative worsening for LowerIsBetter/HigherIsBetter metrics, in
// percent of the baseline's magnitude; Exact metrics regress on any
// change, Info metrics never regress. A metric present in base but
// missing from cur is a regression (a measurement silently disappearing
// must not pass a gate); a metric only in cur is reported as added.
//
// Comparing artifacts produced at different unit counts is an error —
// their values are not commensurable.
func Compare(base, cur *Artifact, tolerancePct float64) (*Result, error) {
	if tolerancePct < 0 {
		return nil, fmt.Errorf("perf: negative tolerance %v", tolerancePct)
	}
	if base.Units != cur.Units {
		return nil, fmt.Errorf("perf: artifacts ran different unit counts (%d vs %d); regenerate at matching -units",
			base.Units, cur.Units)
	}
	base.sorted()
	cur.sorted()
	res := &Result{BaseLabel: base.Label, NewLabel: cur.Label, TolerancePct: tolerancePct}
	for i := range base.Metrics {
		bm := &base.Metrics[i]
		cm, ok := cur.Lookup(bm.Name)
		if !ok {
			res.Deltas = append(res.Deltas, Delta{
				Name: bm.Name, Dir: bm.Dir, Old: bm.Value, New: math.NaN(),
				Severity: math.Inf(1), Status: Missing,
			})
			continue
		}
		res.Deltas = append(res.Deltas, compareOne(bm, &cm, tolerancePct))
	}
	for i := range cur.Metrics {
		cm := &cur.Metrics[i]
		if _, ok := base.Lookup(cm.Name); !ok {
			res.Deltas = append(res.Deltas, Delta{
				Name: cm.Name, Dir: cm.Dir, Old: math.NaN(), New: cm.Value, Status: Added,
			})
		}
	}
	sort.SliceStable(res.Deltas, func(i, j int) bool {
		di, dj := &res.Deltas[i], &res.Deltas[j]
		gi, gj := di.Status.Gates(), dj.Status.Gates()
		if gi != gj {
			return gi
		}
		if gi && di.Severity != dj.Severity {
			return di.Severity > dj.Severity
		}
		return di.Name < dj.Name
	})
	return res, nil
}

// compareOne classifies one metric pair. The baseline's declared
// direction governs: what gated yesterday keeps gating today even if the
// new artifact re-declared the metric.
func compareOne(bm, cm *Metric, tolerancePct float64) Delta {
	d := Delta{Name: bm.Name, Dir: bm.Dir, Old: bm.Value, New: cm.Value}
	switch bm.Dir {
	case Exact:
		if sameValue(bm.Value, cm.Value) {
			d.Status = Unchanged
		} else {
			// Any drift regresses; rank by the absolute relative change.
			d.Status = Regressed
			d.Severity = severity(bm.Value, math.Abs(worsening(bm.Value, cm.Value, LowerIsBetter)))
		}
	case Info:
		if sameValue(bm.Value, cm.Value) {
			d.Status = Unchanged
		} else {
			d.Status = Changed
		}
	default:
		worse := worsening(bm.Value, cm.Value, bm.Dir)
		allowed := tolerancePct / 100 * math.Abs(bm.Value)
		switch {
		case worse > allowed+floatSlack:
			d.Status = Regressed
			d.Severity = severity(bm.Value, worse)
		case -worse > allowed+floatSlack:
			d.Status = Improved
		default:
			d.Status = Unchanged
		}
	}
	return d
}

// worsening is the signed amount by which new is worse than old under the
// direction: positive means worse. Non-finite values compare as the worst
// case when they differ.
func worsening(old, new float64, dir Direction) float64 {
	if math.IsNaN(old) || math.IsNaN(new) {
		if sameValue(old, new) {
			return 0
		}
		return math.Inf(1)
	}
	if dir == HigherIsBetter {
		return old - new
	}
	return new - old
}

// severity normalizes a worsening by the baseline's magnitude; a zero
// baseline that got worse is infinitely severe.
func severity(old, worse float64) float64 {
	if worse <= 0 {
		return 0
	}
	mag := math.Abs(old)
	if mag == 0 || math.IsInf(worse, 1) {
		return math.Inf(1)
	}
	return worse / mag
}

// Regressions returns the gating rows (already first in Deltas).
func (r *Result) Regressions() []Delta {
	n := 0
	for n < len(r.Deltas) && r.Deltas[n].Status.Gates() {
		n++
	}
	return r.Deltas[:n]
}

// OK reports whether the gate passes.
func (r *Result) OK() bool { return len(r.Regressions()) == 0 }

// Render returns the delta table: gating rows first (worst first), then
// improvements, changes, and additions; unchanged metrics are summarized,
// not listed. The output is deterministic — rows are pre-sorted and every
// float renders through an explicit helper.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "perf diff: %s -> %s (tolerance %s%%)\n",
		r.BaseLabel, r.NewLabel, trimFloat(r.TolerancePct))
	var unchanged int
	for i := range r.Deltas {
		d := &r.Deltas[i]
		if d.Status == Unchanged {
			unchanged++
			continue
		}
		fmt.Fprintf(&b, "  %-9s  %-52s %6s  %14s -> %-14s %s\n",
			d.Status.String(), d.Name, d.Dir.String(),
			trimFloat(d.Old), trimFloat(d.New), deltaPct(d))
	}
	n := r.Regressions()
	fmt.Fprintf(&b, "%d regression(s), %d of %d metric(s) unchanged\n",
		len(n), unchanged, len(r.Deltas))
	return b.String()
}

// deltaPct renders the relative change column.
func deltaPct(d *Delta) string {
	if d.Status == Missing || d.Status == Added {
		return ""
	}
	if math.IsNaN(d.Old) || math.IsNaN(d.New) || d.Old == 0 {
		return ""
	}
	pct := (d.New - d.Old) / math.Abs(d.Old) * 100
	return fmt.Sprintf("%+.2f%%", pct)
}

// trimFloat renders a value compactly and deterministically for the
// table ('g' shortest form; NaN renders as "-").
func trimFloat(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
