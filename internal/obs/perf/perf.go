// Package perf is the performance-observability layer: machine-readable
// benchmark artifacts with a schema version, metric-by-metric regression
// gating between two artifacts, and deterministic anomaly detection over
// simulated-cycle streams.
//
// Everything rendered here is byte-deterministic: metrics are sorted by
// name, floats render in Go's shortest round-trip form via strconv (never
// %v), and no wall-clock value ever enters an artifact — the bench
// harness's wall timings are deliberately excluded.
package perf

import (
	"fmt"
	"math"
	"strconv"
)

// Direction declares how a metric's value relates to quality, which is
// what regression gating needs to know: whether a change is a regression,
// an improvement, or just information.
type Direction uint8

const (
	// Info metrics never gate; they are context (units, configuration
	// echoes, sizes that may legitimately drift).
	Info Direction = iota
	// LowerIsBetter marks costs: cycles, overhead percentages, latencies.
	LowerIsBetter
	// HigherIsBetter marks capacities: throughput, hit rates.
	HigherIsBetter
	// Exact marks values that must not change at all: verdict bits,
	// policy sizes, trap counts — the deterministic simulator reproduces
	// them bit-for-bit, so any drift is a semantic change.
	Exact
)

// String returns the wire form used in artifacts.
func (d Direction) String() string {
	switch d {
	case Info:
		return "info"
	case LowerIsBetter:
		return "lower"
	case HigherIsBetter:
		return "higher"
	case Exact:
		return "exact"
	}
	return fmt.Sprintf("direction(%d)", uint8(d))
}

// ParseDirection inverts String.
func ParseDirection(s string) (Direction, error) {
	switch s {
	case "info":
		return Info, nil
	case "lower":
		return LowerIsBetter, nil
	case "higher":
		return HigherIsBetter, nil
	case "exact":
		return Exact, nil
	}
	return Info, fmt.Errorf("perf: unknown direction %q", s)
}

// Metric is one named measurement in an artifact.
type Metric struct {
	Name  string
	Value float64
	Dir   Direction
}

// formatValue renders a float for the artifact: the shortest decimal form
// that round-trips exactly ('g', -1), which is deterministic across runs
// and platforms. NaN and the infinities are not JSON numbers and render
// as quoted strings.
func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return `"NaN"`
	case math.IsInf(v, 1):
		return `"+Inf"`
	case math.IsInf(v, -1):
		return `"-Inf"`
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sameValue is value equality for Exact gating: NaN equals NaN (a pinned
// NaN staying NaN is "unchanged"), everything else is ==.
func sameValue(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return a == b
}
