package perf

import (
	"math"
	"strings"
	"testing"
)

func fixtureArtifact() *Artifact {
	a := New("base", 120)
	// Added out of order on purpose: JSON must sort.
	a.Add("fig3.nginx.full.overhead_pct", 2.5, LowerIsBetter)
	a.Add("cache.nginx.hit_rate", 0.97, HigherIsBetter)
	a.Add("table5.nginx.ct_rules", 124, Exact)
	a.Add("init.nginx.avg_depth", 7.25, Info)
	return a
}

func TestArtifactJSONDeterministic(t *testing.T) {
	j1 := fixtureArtifact().JSON()
	j2 := fixtureArtifact().JSON()
	if j1 != j2 {
		t.Fatal("artifact JSON not byte-stable across identical builds")
	}
	// Sorted regardless of Add order.
	reversed := New("base", 120)
	reversed.Add("table5.nginx.ct_rules", 124, Exact)
	reversed.Add("init.nginx.avg_depth", 7.25, Info)
	reversed.Add("fig3.nginx.full.overhead_pct", 2.5, LowerIsBetter)
	reversed.Add("cache.nginx.hit_rate", 0.97, HigherIsBetter)
	if reversed.JSON() != j1 {
		t.Fatal("artifact JSON depends on Add order")
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	src := fixtureArtifact()
	src.Add("edge.nan", math.NaN(), Info)
	src.Add("edge.pinf", math.Inf(1), Info)
	src.Add("edge.ninf", math.Inf(-1), Info)
	src.Add("edge.tiny", 1.0 / 3.0, LowerIsBetter)
	blob := src.JSON()
	got, err := Parse([]byte(blob))
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != "base" || got.Units != 120 || got.Schema != SchemaVersion {
		t.Fatalf("header round trip: %+v", got)
	}
	if len(got.Metrics) != len(src.Metrics) {
		t.Fatalf("metric count %d, want %d", len(got.Metrics), len(src.Metrics))
	}
	for _, m := range src.Metrics {
		g, ok := got.Lookup(m.Name)
		if !ok {
			t.Fatalf("lost metric %q", m.Name)
		}
		if g.Dir != m.Dir || !sameValue(g.Value, m.Value) {
			t.Fatalf("%s: got %v/%v want %v/%v", m.Name, g.Value, g.Dir, m.Value, m.Dir)
		}
	}
	if got.JSON() != blob {
		t.Fatal("parse/render round trip not byte-identical")
	}
}

func TestParseRejectsBadArtifacts(t *testing.T) {
	cases := map[string]string{
		"wrong schema":  `{"schema":99,"label":"x","units":1,"metrics":[]}`,
		"bad direction": `{"schema":1,"label":"x","units":1,"metrics":[{"name":"a","dir":"sideways","value":1}]}`,
		"bad sentinel":  `{"schema":1,"label":"x","units":1,"metrics":[{"name":"a","dir":"info","value":"huge"}]}`,
		"dup names":     `{"schema":1,"label":"x","units":1,"metrics":[{"name":"a","dir":"info","value":1},{"name":"a","dir":"info","value":2}]}`,
		"empty name":    `{"schema":1,"label":"x","units":1,"metrics":[{"name":"","dir":"info","value":1}]}`,
		"unknown field": `{"schema":1,"label":"x","units":1,"wall_ms":5,"metrics":[]}`,
		"not json":      `schema: 1`,
	}
	for name, blob := range cases {
		if _, err := Parse([]byte(blob)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDirectionRoundTrip(t *testing.T) {
	for _, d := range []Direction{Info, LowerIsBetter, HigherIsBetter, Exact} {
		got, err := ParseDirection(d.String())
		if err != nil || got != d {
			t.Fatalf("direction %v round trip: %v, %v", d, got, err)
		}
	}
	if _, err := ParseDirection("bogus"); err == nil {
		t.Fatal("bogus direction accepted")
	}
}

func TestCompareSelfIsClean(t *testing.T) {
	res, err := Compare(fixtureArtifact(), fixtureArtifact(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() || len(res.Regressions()) != 0 {
		t.Fatalf("self-compare regressed: %s", res.Render())
	}
	for _, d := range res.Deltas {
		if d.Status != Unchanged {
			t.Fatalf("self-compare delta %s = %s", d.Name, d.Status)
		}
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := fixtureArtifact()
	cur := fixtureArtifact()
	set := func(a *Artifact, name string, v float64) {
		for i := range a.Metrics {
			if a.Metrics[i].Name == name {
				a.Metrics[i].Value = v
				return
			}
		}
		t.Fatalf("no metric %q", name)
	}
	set(cur, "fig3.nginx.full.overhead_pct", 2.7)  // +8% cost, beyond 5%
	set(cur, "cache.nginx.hit_rate", 0.90)         // -7.2% capacity, beyond 5%
	set(cur, "table5.nginx.ct_rules", 125)         // Exact drift
	set(cur, "init.nginx.avg_depth", 9)            // Info: changed, never gates
	res, err := Compare(base, cur, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("regressions not flagged")
	}
	want := map[string]DeltaStatus{
		"fig3.nginx.full.overhead_pct": Regressed,
		"cache.nginx.hit_rate":         Regressed,
		"table5.nginx.ct_rules":        Regressed,
		"init.nginx.avg_depth":         Changed,
	}
	for _, d := range res.Deltas {
		if got := want[d.Name]; d.Status != got {
			t.Errorf("%s: status %s, want %s", d.Name, d.Status, got)
		}
	}
	if n := len(res.Regressions()); n != 3 {
		t.Fatalf("regression count %d, want 3", n)
	}
	// Gating rows lead the table, worst first.
	for i, d := range res.Deltas[:3] {
		if !d.Status.Gates() {
			t.Fatalf("row %d (%s) not a gating row", i, d.Name)
		}
		if i > 0 && res.Deltas[i-1].Severity < d.Severity {
			t.Fatal("gating rows not sorted by severity")
		}
	}
}

func TestCompareToleranceBoundary(t *testing.T) {
	base := New("a", 10)
	base.Add("cost", 100, LowerIsBetter)
	within := New("b", 10)
	within.Add("cost", 105, LowerIsBetter) // exactly at 5%
	res, err := Compare(base, within, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatal("change exactly at tolerance must pass")
	}
	beyond := New("c", 10)
	beyond.Add("cost", 105.2, LowerIsBetter)
	res, err = Compare(base, beyond, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("change beyond tolerance must gate")
	}
	// Improvements beyond tolerance are reported, never gate.
	faster := New("d", 10)
	faster.Add("cost", 50, LowerIsBetter)
	res, err = Compare(base, faster, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() || res.Deltas[0].Status != Improved {
		t.Fatalf("improvement misclassified: %s", res.Render())
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	base := New("a", 10)
	base.Add("violations", 0, LowerIsBetter)
	cur := New("b", 10)
	cur.Add("violations", 1, LowerIsBetter)
	res, err := Compare(base, cur, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("cost appearing from a zero baseline must gate")
	}
	if !math.IsInf(res.Deltas[0].Severity, 1) {
		t.Fatalf("zero-baseline severity = %v, want +Inf", res.Deltas[0].Severity)
	}
}

func TestCompareMissingAndAdded(t *testing.T) {
	base := New("a", 10)
	base.Add("kept", 1, Exact)
	base.Add("dropped", 2, LowerIsBetter)
	cur := New("b", 10)
	cur.Add("kept", 1, Exact)
	cur.Add("fresh", 3, LowerIsBetter)
	res, err := Compare(base, cur, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("dropped metric must gate")
	}
	byName := map[string]DeltaStatus{}
	for _, d := range res.Deltas {
		byName[d.Name] = d.Status
	}
	if byName["dropped"] != Missing || byName["fresh"] != Added || byName["kept"] != Unchanged {
		t.Fatalf("statuses: %v", byName)
	}
}

func TestCompareErrors(t *testing.T) {
	if _, err := Compare(New("a", 10), New("b", 20), 5); err == nil {
		t.Fatal("unit-count mismatch accepted")
	}
	if _, err := Compare(New("a", 10), New("b", 10), -1); err == nil {
		t.Fatal("negative tolerance accepted")
	}
}

func TestRenderDeterministicAndReadable(t *testing.T) {
	base := fixtureArtifact()
	cur := fixtureArtifact()
	cur.Metrics[0].Value *= 2
	res1, err := Compare(base, cur, 5)
	if err != nil {
		t.Fatal(err)
	}
	res2, _ := Compare(fixtureArtifact(), cur, 5)
	if res1.Render() != res2.Render() {
		t.Fatal("diff rendering not deterministic")
	}
	out := res1.Render()
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "1 regression(s)") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestDetectEWMA(t *testing.T) {
	// Flat stream: nothing flags.
	flat := make([]uint64, 64)
	for i := range flat {
		flat[i] = 1000
	}
	if got := DetectEWMA(flat, AnomalyConfig{}); len(got) != 0 {
		t.Fatalf("flat stream flagged: %v", got)
	}
	// One spike past warmup flags exactly once, with the pre-spike mean.
	spiked := append([]uint64{}, flat...)
	spiked[40] = 10000
	got := DetectEWMA(spiked, AnomalyConfig{})
	if len(got) != 1 || got[0].Index != 40 || got[0].Value != 10000 {
		t.Fatalf("spike detection: %v", got)
	}
	if got[0].Mean != 1000 {
		t.Fatalf("recorded mean %v, want 1000", got[0].Mean)
	}
	// The same spike inside warmup does not flag.
	early := append([]uint64{}, flat...)
	early[3] = 10000
	if got := DetectEWMA(early, AnomalyConfig{}); len(got) != 0 {
		t.Fatalf("warmup spike flagged: %v", got)
	}
	// Deterministic across runs.
	a := DetectEWMA(spiked, AnomalyConfig{})
	b := DetectEWMA(spiked, AnomalyConfig{})
	if len(a) != len(b) || a[0] != b[0] {
		t.Fatal("EWMA detection not deterministic")
	}
	// A step change flags at the step, then the mean adapts and stops
	// flagging.
	step := append([]uint64{}, flat...)
	for i := 32; i < len(step); i++ {
		step[i] = 8000
	}
	got = DetectEWMA(step, AnomalyConfig{})
	if len(got) == 0 || got[0].Index != 32 {
		t.Fatalf("step not flagged at onset: %v", got)
	}
	if last := got[len(got)-1].Index; last > 40 {
		t.Fatalf("mean failed to adapt; still flagging at %d", last)
	}
	// Empty stream.
	if got := DetectEWMA(nil, AnomalyConfig{}); got != nil {
		t.Fatalf("nil stream: %v", got)
	}
}
