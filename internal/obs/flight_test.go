package obs

import (
	"errors"
	"strings"
	"testing"
)

// addN feeds n events with sequential Seq into the recorder.
func addN(f *FlightRecorder, n int) {
	for i := 0; i < n; i++ {
		f.Add(&TrapEvent{Seq: uint64(i), Nr: 9, Name: "mmap"})
	}
}

// seqs extracts the Seq column of the recorder's oldest-first view.
func seqs(f *FlightRecorder) []uint64 {
	events := f.Events()
	out := make([]uint64, len(events))
	for i := range events {
		out[i] = events[i].Seq
	}
	return out
}

// TestFlightRecorderExactlyFull: at exactly cap events the ring is full in
// capacity terms but nothing has been overwritten yet — Events must return
// all cap events in append order, oldest first.
func TestFlightRecorderExactlyFull(t *testing.T) {
	const capacity = 4
	f := NewFlightRecorder(capacity)
	addN(f, capacity)
	if f.Len() != capacity {
		t.Fatalf("Len = %d, want %d", f.Len(), capacity)
	}
	got := seqs(f)
	want := []uint64{0, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("events = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("events = %v, want %v", got, want)
		}
	}
}

// TestFlightRecorderWraparoundByOne: one event past cap evicts exactly the
// oldest event and rotates the oldest-first view by one.
func TestFlightRecorderWraparoundByOne(t *testing.T) {
	const capacity = 4
	f := NewFlightRecorder(capacity)
	addN(f, capacity+1)
	if f.Len() != capacity {
		t.Fatalf("Len = %d, want %d", f.Len(), capacity)
	}
	got := seqs(f)
	want := []uint64{1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("events = %v, want %v", got, want)
		}
	}
}

// TestFlightRecorderCopiesEvents: Add must copy the event, not retain the
// caller's pointer (the monitor reuses its event struct per trap).
func TestFlightRecorderCopiesEvents(t *testing.T) {
	f := NewFlightRecorder(2)
	ev := TrapEvent{Seq: 7, Name: "mmap"}
	f.Add(&ev)
	ev.Seq = 99
	ev.Name = "clobbered"
	got := f.Events()
	if got[0].Seq != 7 || got[0].Name != "mmap" {
		t.Fatalf("recorder retained caller's pointer: %+v", got[0])
	}
}

func TestFlightRecorderMinimumCapacity(t *testing.T) {
	f := NewFlightRecorder(0)
	addN(f, 3)
	got := seqs(f)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("zero-cap recorder events = %v, want [2]", got)
	}
}

// failWriter fails every write after the first n bytes-calls succeed.
type failWriter struct {
	okWrites int
	err      error
	writes   int
}

func (w *failWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > w.okWrites {
		return 0, w.err
	}
	return len(p), nil
}

// TestJSONLSinkWriteErrorPropagation: a write failure mid-stream must
// surface through Close, and later Emits must not write (or clear the
// error).
func TestJSONLSinkWriteErrorPropagation(t *testing.T) {
	wantErr := errors.New("disk full")
	w := &failWriter{okWrites: 1, err: wantErr}
	sink := NewJSONL(w)
	events := fixtureEvents()
	for i := range events {
		sink.Emit(&events[i])
	}
	if err := sink.Close(); !errors.Is(err, wantErr) {
		t.Fatalf("Close = %v, want %v", err, wantErr)
	}
	if w.writes != 2 {
		t.Fatalf("sink kept writing after first error: %d writes", w.writes)
	}
}

func TestJSONLSinkCloseNilOnSuccess(t *testing.T) {
	var b strings.Builder
	sink := NewJSONL(&b)
	events := fixtureEvents()
	for i := range events {
		sink.Emit(&events[i])
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("Close = %v, want nil", err)
	}
	if lines := strings.Count(b.String(), "\n"); lines != len(events) {
		t.Fatalf("wrote %d lines, want %d", lines, len(events))
	}
}

// TestChromeSinkWriteErrorPropagation covers the three failure points:
// the header write in NewChrome, an event write in Emit, and the
// terminator write in Close itself.
func TestChromeSinkWriteErrorPropagation(t *testing.T) {
	wantErr := errors.New("pipe closed")
	events := fixtureEvents()
	// okWrites 0: header fails. 1: first Emit fails. 1+len: Close's
	// terminator fails.
	for _, okWrites := range []int{0, 1, 1 + len(events)} {
		w := &failWriter{okWrites: okWrites, err: wantErr}
		sink := NewChrome(w)
		for i := range events {
			sink.Emit(&events[i])
		}
		if err := sink.Close(); !errors.Is(err, wantErr) {
			t.Fatalf("okWrites=%d: Close = %v, want %v", okWrites, err, wantErr)
		}
		if w.writes != okWrites+1 {
			t.Fatalf("okWrites=%d: sink kept writing after first error: %d writes", okWrites, w.writes)
		}
	}
}

// TestChromeSinkCloseIdempotentError: Close after a failed Close keeps
// returning the first error without writing again.
func TestChromeSinkCloseIdempotentError(t *testing.T) {
	wantErr := errors.New("gone")
	w := &failWriter{okWrites: 1, err: wantErr}
	sink := NewChrome(w)
	if err := sink.Close(); !errors.Is(err, wantErr) {
		t.Fatalf("first Close = %v, want %v", err, wantErr)
	}
	writes := w.writes
	if err := sink.Close(); !errors.Is(err, wantErr) {
		t.Fatalf("second Close = %v, want %v", err, wantErr)
	}
	if w.writes != writes {
		t.Fatal("second Close wrote again after a recorded error")
	}
}
