package kernel_test

import (
	"strings"
	"testing"

	"bastion/internal/ir"
)

func TestMapsRendersRegions(t *testing.T) {
	m, proc, _ := newGuest(t, func(p *ir.Program) {
		b := ir.NewBuilder("main", 0)
		a := b.Call("mmap", ir.Imm(0), ir.Imm(8192), ir.Imm(3), ir.Imm(0x22), ir.Imm(-1), ir.Imm(0))
		b.Call("mprotect", ir.R(a), ir.Imm(4096), ir.Imm(1))
		b.Ret(ir.Imm(0))
		p.AddFunc(b.Build())
	})
	if _, err := m.CallFunction("main"); err != nil {
		t.Fatal(err)
	}
	maps := proc.Maps()
	for _, want := range []string{"[stack]", "[anon]", "rw-", "r--"} {
		if !strings.Contains(maps, want) {
			t.Errorf("maps missing %q:\n%s", want, maps)
		}
	}
	// The mprotect split shows as two regions with distinct permissions.
	if strings.Count(maps, "[anon]") < 2 {
		t.Fatalf("anon mapping not split by mprotect:\n%s", maps)
	}
}
