package kernel_test

import (
	"bytes"
	"testing"

	"bastion/internal/ir"
	"bastion/internal/kernel"
	"bastion/internal/kernel/fs"
)

func TestSendfileFileToFile(t *testing.T) {
	m, _, k := newGuest(t, func(p *ir.Program) {
		b := ir.NewBuilder("main", 0)
		b.Local("src", 16)
		b.Local("dst", 16)
		b.Local("in", 8)
		src := storeString(b, "src", "/in.dat")
		in := b.Call("open", ir.R(src), ir.Imm(fs.ORdonly), ir.Imm(0))
		b.StoreLocal("in", ir.R(in))
		dst := storeString(b, "dst", "/out.dat")
		out := b.Call("open", ir.R(dst), ir.Imm(fs.OWronly|fs.OCreat), ir.Imm(6))
		in2 := b.LoadLocal("in")
		n := b.Call("sendfile", ir.R(out), ir.R(in2), ir.Imm(0), ir.Imm(1024))
		b.Ret(ir.R(n))
		p.AddFunc(b.Build())
	})
	k.FS.WriteFile("/in.dat", []byte("copy me"), fs.ModeRead)
	got, err := m.CallFunction("main")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != 7 {
		t.Fatalf("sendfile moved %d", got)
	}
	data, err := k.FS.ReadFile("/out.dat")
	if err != nil || !bytes.Equal(data, []byte("copy me")) {
		t.Fatalf("out.dat = %q, %v", data, err)
	}
}

func TestLseekAndPartialRead(t *testing.T) {
	m, _, k := newGuest(t, func(p *ir.Program) {
		b := ir.NewBuilder("main", 0)
		b.Local("path", 16)
		b.Local("buf", 16)
		b.Local("fd", 8)
		path := storeString(b, "path", "/data")
		fd := b.Call("open", ir.R(path), ir.Imm(fs.ORdonly), ir.Imm(0))
		b.StoreLocal("fd", ir.R(fd))
		fd1 := b.LoadLocal("fd")
		b.Call("lseek", ir.R(fd1), ir.Imm(6), ir.Imm(0)) // SEEK_SET 6
		buf := b.Lea("buf", 0)
		fd2 := b.LoadLocal("fd")
		b.Call("read", ir.R(fd2), ir.R(buf), ir.Imm(5))
		v := b.Load(b.Lea("buf", 0), 0, 1)
		b.Ret(ir.R(v))
		p.AddFunc(b.Build())
	})
	k.FS.WriteFile("/data", []byte("hello world"), fs.ModeRead)
	got, err := m.CallFunction("main")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != 'w' {
		t.Fatalf("read %q after seek", byte(got))
	}
}

func TestStatWritesSizeAndMode(t *testing.T) {
	m, _, k := newGuest(t, func(p *ir.Program) {
		b := ir.NewBuilder("main", 0)
		b.Local("path", 16)
		b.Local("st", 64)
		path := storeString(b, "path", "/f")
		st := b.Lea("st", 0)
		b.Call("stat", ir.R(path), ir.R(st))
		sz := b.Load(b.Lea("st", 0), 48, 8) // st_size
		md := b.Load(b.Lea("st", 0), 24, 4) // st_mode
		sum := b.Bin(ir.OpAdd, ir.R(sz), ir.R(md))
		b.Ret(ir.R(sum))
		p.AddFunc(b.Build())
	})
	k.FS.WriteFile("/f", []byte("12345"), fs.ModeRead|fs.ModeExec)
	got, err := m.CallFunction("main")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != 5+uint64(fs.ModeRead|fs.ModeExec) {
		t.Fatalf("stat sum = %d", got)
	}
}

func TestMremapCopiesContents(t *testing.T) {
	m, proc, _ := newGuest(t, func(p *ir.Program) {
		b := ir.NewBuilder("main", 0)
		old := b.Call("mmap", ir.Imm(0), ir.Imm(4096), ir.Imm(3), ir.Imm(0x22), ir.Imm(-1), ir.Imm(0))
		b.Store(old, 0, ir.Imm(0x77), 8)
		nw := b.Call("mremap", ir.R(old), ir.Imm(4096), ir.Imm(8192))
		v := b.Load(nw, 0, 8)
		b.Ret(ir.R(v))
		p.AddFunc(b.Build())
	})
	got, err := m.CallFunction("main")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != 0x77 {
		t.Fatalf("mremap lost contents: %#x", got)
	}
	if !proc.HasEvent(kernel.EventRemap, "mremap") {
		t.Fatalf("no remap event: %v", proc.Events)
	}
}

func TestGuestToGuestConnect(t *testing.T) {
	m, proc, k := newGuest(t, func(p *ir.Program) {
		// server_up(): socket/bind(9000)/listen.
		sb := ir.NewBuilder("server_up", 0)
		sb.Local("sa", 16)
		sb.Local("fd", 8)
		fd := sb.Call("socket", ir.Imm(2), ir.Imm(1), ir.Imm(0))
		sb.StoreLocal("fd", ir.R(fd))
		sa := buildSockaddr(sb, "sa", 9000)
		fd1 := sb.LoadLocal("fd")
		sb.Call("bind", ir.R(fd1), ir.R(sa), ir.Imm(16))
		fd2 := sb.LoadLocal("fd")
		sb.Call("listen", ir.R(fd2), ir.Imm(4))
		sb.Ret(ir.Imm(0))
		p.AddFunc(sb.Build())

		// dial_out(): connect to 9000 and send two bytes.
		db := ir.NewBuilder("dial_out", 0)
		db.Local("sa", 16)
		db.Local("fd", 8)
		db.Local("msg", 8)
		fd3 := db.Call("socket", ir.Imm(2), ir.Imm(1), ir.Imm(0))
		db.StoreLocal("fd", ir.R(fd3))
		sa2 := buildSockaddr(db, "sa", 9000)
		fd4 := db.LoadLocal("fd")
		r := db.Call("connect", ir.R(fd4), ir.R(sa2), ir.Imm(16))
		msg := db.Lea("msg", 0)
		db.Store(msg, 0, ir.Imm('h'), 1)
		db.Store(msg, 1, ir.Imm('i'), 1)
		fd5 := db.LoadLocal("fd")
		msg2 := db.Lea("msg", 0)
		db.Call("write", ir.R(fd5), ir.R(msg2), ir.Imm(2))
		db.Ret(ir.R(r))
		p.AddFunc(db.Build())

		b := ir.NewBuilder("main", 0)
		b.Ret(ir.Imm(0))
		p.AddFunc(b.Build())
	})
	if _, err := m.CallFunction("server_up"); err != nil {
		t.Fatal(err)
	}
	got, err := m.CallFunction("dial_out")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if int64(got) != 0 {
		t.Fatalf("connect = %d", int64(got))
	}
	if k.Net.Pending(9000) != 1 {
		t.Fatal("no pending connection at listener")
	}
	if !proc.HasEvent(kernel.EventSocket, "connected to port 9000") {
		t.Fatalf("events: %v", proc.Events)
	}
}

func TestErrnoCoverage(t *testing.T) {
	m, _, _ := newGuest(t, func(p *ir.Program) {
		// One probe function per errno condition; each returns the raw
		// syscall result.
		probes := []struct {
			name string
			emit func(b *ir.Builder) ir.Reg
		}{
			{"probe_close_badfd", func(b *ir.Builder) ir.Reg {
				return b.Call("close", ir.Imm(99))
			}},
			{"probe_read_badfd", func(b *ir.Builder) ir.Reg {
				buf := b.Lea("buf", 0)
				return b.Call("read", ir.Imm(77), ir.R(buf), ir.Imm(1))
			}},
			{"probe_listen_badfd", func(b *ir.Builder) ir.Reg {
				return b.Call("listen", ir.Imm(50), ir.Imm(1))
			}},
			{"probe_mprotect_unmapped", func(b *ir.Builder) ir.Reg {
				return b.Call("mprotect", ir.Imm(0x12345000), ir.Imm(4096), ir.Imm(1))
			}},
			{"probe_munmap_unaligned", func(b *ir.Builder) ir.Reg {
				return b.Call("munmap", ir.Imm(5), ir.Imm(4096))
			}},
			{"probe_connect_refused", func(b *ir.Builder) ir.Reg {
				fd := b.Call("socket", ir.Imm(2), ir.Imm(1), ir.Imm(0))
				b.Local("fd", 8)
				b.StoreLocal("fd", ir.R(fd))
				sa := buildSockaddr(b, "sa2", 9999)
				fd2 := b.LoadLocal("fd")
				return b.Call("connect", ir.R(fd2), ir.R(sa), ir.Imm(16))
			}},
			{"probe_write_efault", func(b *ir.Builder) ir.Reg {
				return b.Call("write", ir.Imm(1), ir.Imm(0xdead0000), ir.Imm(4))
			}},
		}
		for _, pr := range probes {
			b := ir.NewBuilder(pr.name, 0)
			b.Local("buf", 8)
			b.Local("sa2", 16)
			r := pr.emit(b)
			b.Ret(ir.R(r))
			p.AddFunc(b.Build())
		}
		b := ir.NewBuilder("main", 0)
		b.Ret(ir.Imm(0))
		p.AddFunc(b.Build())
	})
	want := map[string]int64{
		"probe_close_badfd":       -kernel.EBADF,
		"probe_read_badfd":        -kernel.EBADF,
		"probe_listen_badfd":      -kernel.EBADF,
		"probe_mprotect_unmapped": -kernel.ENOMEM,
		"probe_munmap_unaligned":  -kernel.EINVAL,
		"probe_connect_refused":   -kernel.ECONNREFUSED,
		"probe_write_efault":      -kernel.EFAULT,
	}
	for name, w := range want {
		got, err := m.CallFunction(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if int64(got) != w {
			t.Errorf("%s = %d, want %d", name, int64(got), w)
		}
	}
}
