// Package kernel implements the simulated operating system beneath guest
// programs: process objects, a file-descriptor layer over the in-memory
// filesystem and loopback network stack, the x86-64 syscall dispatch, the
// seccomp-BPF attach point, and the ptrace-style tracing facility the
// BASTION monitor uses to fetch guest state.
//
// Costs: every syscall charges an entry cost, each seccomp filter charges
// per executed BPF instruction, and each ptrace operation charges a
// context-switch-scale cost to the shared clock. Table 7 of the paper —
// state fetching dominates when hot syscalls are traced — is a consequence
// of these constants, which internal/bench documents and calibrates.
package kernel

import (
	"bytes"
	"errors"
	"fmt"
	"strings"

	"bastion/internal/ir"
	"bastion/internal/kernel/fs"
	"bastion/internal/kernel/netstack"
	"bastion/internal/mem"
	"bastion/internal/seccomp"
	"bastion/internal/vm"
)

// Costs holds the kernel-side cycle charges.
type Costs struct {
	SyscallEntry   uint64 // ring transition + dispatch
	KernelOp       uint64 // baseline work of a syscall body
	BPFInsn        uint64 // one cBPF instruction in the seccomp filter
	TrapRoundTrip  uint64 // SIGTRAP stop + schedule tracer + resume
	GetRegs        uint64 // PTRACE_GETREGS
	ReadMemBase    uint64 // process_vm_readv fixed cost
	ReadMemPerWord uint64 // process_vm_readv per 8 copied bytes
	IOPerByte      uint64 // modeled I/O + protocol work per byte moved
}

// DefaultCosts returns the calibrated kernel cost model.
func DefaultCosts() Costs {
	return Costs{
		SyscallEntry:   150,
		KernelOp:       220,
		BPFInsn:        2,
		TrapRoundTrip:  2600,
		GetRegs:        700,
		ReadMemBase:    2500,
		ReadMemPerWord: 2,
		IOPerByte:      2,
	}
}

// Tracer handles SECCOMP_RET_TRACE stops, as the BASTION monitor process
// does. Returning a non-nil error kills the tracee before the syscall
// executes.
type Tracer interface {
	Trap(p *Process) error
}

// EventKind classifies security-relevant kernel events. Attack scenarios
// decide success by inspecting the event log, so "the attack reached its
// goal" is observed behaviour, not a scripted flag.
type EventKind int

// Event kinds.
const (
	// EventExec: execve/execveat reached with a resolvable image.
	EventExec EventKind = iota
	// EventMemExec: a mapping became writable+executable (mprotect/mmap).
	EventMemExec
	// EventSetuid: credentials changed via setuid/setgid/setreuid.
	EventSetuid
	// EventChmod: file mode changed.
	EventChmod
	// EventClone: process/thread creation.
	EventClone
	// EventPtraceAttempt: guest invoked ptrace.
	EventPtraceAttempt
	// EventSocket: new network endpoint configured (socket/bind/listen/
	// connect).
	EventSocket
	// EventRemap: a mapping was moved/resized via mremap.
	EventRemap
)

func (k EventKind) String() string {
	switch k {
	case EventExec:
		return "exec"
	case EventMemExec:
		return "mem-exec"
	case EventSetuid:
		return "setuid"
	case EventChmod:
		return "chmod"
	case EventClone:
		return "clone"
	case EventPtraceAttempt:
		return "ptrace"
	case EventSocket:
		return "socket"
	case EventRemap:
		return "mremap"
	}
	return "event"
}

// Event is one security-relevant kernel action.
type Event struct {
	Kind   EventKind
	Nr     uint32
	Detail string
	Args   [6]uint64
}

func (e Event) String() string {
	return fmt.Sprintf("%s(%s): %s", e.Kind, Name(e.Nr), e.Detail)
}

// FD is an open file descriptor: exactly one of File, Sock, or Conn is set.
type FD struct {
	File *fs.File
	Sock *netstack.Socket
	Conn *netstack.Conn
}

// Process is a guest process as the kernel sees it.
type Process struct {
	K   *Kernel
	M   *vm.Machine
	PID int

	UID, GID int

	fds    map[int]*FD
	nextFD int

	filter []seccomp.Insn
	tracer Tracer

	brk        uint64
	mmapCursor uint64

	// Stdout collects writes to fds 1 and 2.
	Stdout bytes.Buffer

	// Events is the security-relevant action log.
	Events []Event

	// SyscallCounts counts invocations by number (Table 4 source).
	SyscallCounts map[uint32]uint64
	// CompletedCounts counts syscalls that passed filtering and tracing
	// and reached execution.
	CompletedCounts map[uint32]uint64
	// TrapCount counts monitor hooks (SECCOMP_RET_TRACE stops).
	TrapCount uint64
	// LogVerdicts counts SECCOMP_RET_LOG allows by syscall number. The
	// verdict-offload compiler emits LOG (not plain ALLOW) for decisions it
	// answers in-filter, so this map is the kernel-side ground truth for
	// "traps avoided": each entry would have been a RET_TRACE stop under
	// the pure-monitor filter.
	LogVerdicts map[uint32]uint64
	// MonitorCycles accumulates cycles spent inside monitor traps
	// (round-trip, ptrace fetches, checks) — the serialized portion the
	// bench's multi-worker model queues on.
	MonitorCycles uint64
	// FilterSteps accumulates executed BPF instructions.
	FilterSteps uint64

	killed bool
}

// Kernel is the simulated operating system. One kernel may host several
// processes, each with its own Machine and address space.
type Kernel struct {
	FS    *fs.FS
	Net   *netstack.Stack
	Clock *vm.Clock
	Costs Costs

	procs   map[*vm.Machine]*Process
	nextPID int
}

// New creates a kernel with an empty filesystem and network stack, sharing
// the given clock (pass the Machine's clock so guest and kernel time
// accumulate on one timeline).
func New(clock *vm.Clock) *Kernel {
	if clock == nil {
		clock = &vm.Clock{}
	}
	return &Kernel{
		FS:      fs.New(),
		Net:     netstack.NewStack(),
		Clock:   clock,
		Costs:   DefaultCosts(),
		procs:   map[*vm.Machine]*Process{},
		nextPID: 100,
	}
}

// Register creates the Process for a machine. The machine must have been
// built with WithOS(k) so syscalls route here.
func (k *Kernel) Register(m *vm.Machine) *Process {
	p := &Process{
		K:               k,
		M:               m,
		PID:             k.nextPID,
		fds:             map[int]*FD{},
		nextFD:          3, // 0,1,2 reserved
		brk:             0, // assigned on first brk
		mmapCursor:      0x7f00_0000_0000,
		SyscallCounts:   map[uint32]uint64{},
		CompletedCounts: map[uint32]uint64{},
		LogVerdicts:     map[uint32]uint64{},
	}
	k.nextPID++
	k.procs[m] = p
	return p
}

// Process returns the process object for a machine.
func (k *Kernel) Process(m *vm.Machine) *Process { return k.procs[m] }

// SetSeccompFilter installs a validated filter program on the process
// (SECCOMP_SET_MODE_FILTER). Installing replaces any previous filter.
func (p *Process) SetSeccompFilter(prog []seccomp.Insn) error {
	if err := seccomp.Validate(prog); err != nil {
		return err
	}
	p.filter = prog
	return nil
}

// SeccompFilter returns the installed filter program (nil when none),
// e.g. for offline evaluation-cost analysis.
func (p *Process) SeccompFilter() []seccomp.Insn { return p.filter }

// SetTracer attaches a tracer receiving SECCOMP_RET_TRACE stops.
func (p *Process) SetTracer(t Tracer) { p.tracer = t }

// --- ptrace-style facility (the monitor's only view of the guest) ---

// GetRegs returns the registers latched at the current syscall stop,
// charging PTRACE_GETREGS cost.
func (p *Process) GetRegs() vm.Regs {
	p.K.Clock.Add(p.K.Costs.GetRegs)
	return p.M.SysRegs
}

// ReadMem copies guest memory (process_vm_readv), charging the fixed cost
// plus a per-word cost. It bypasses page permissions, as ptrace does.
func (p *Process) ReadMem(addr uint64, buf []byte) error {
	words := (uint64(len(buf)) + 7) / 8
	p.K.Clock.Add(p.K.Costs.ReadMemBase + p.K.Costs.ReadMemPerWord*words)
	return p.M.Mem.Peek(addr, buf)
}

// ReadMemInKernel copies guest memory as an in-kernel monitor would (the
// §11.2 eBPF design): no context switch, only the per-word copy cost.
func (p *Process) ReadMemInKernel(addr uint64, buf []byte) error {
	words := (uint64(len(buf)) + 7) / 8
	p.K.Clock.Add(p.K.Costs.ReadMemPerWord * words)
	return p.M.Mem.Peek(addr, buf)
}

// GetRegsInKernel reads registers without the ptrace stop cost.
func (p *Process) GetRegsInKernel() vm.Regs {
	p.K.Clock.Add(4)
	return p.M.SysRegs
}

// ReadWord reads one 64-bit guest word.
func (p *Process) ReadWord(addr uint64) (uint64, error) {
	var b [8]byte
	if err := p.ReadMem(addr, b[:]); err != nil {
		return 0, err
	}
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v, nil
}

// ReadCString reads a NUL-terminated guest string of at most max bytes
// through the ptrace facility (one bulk read, as a real monitor would).
func (p *Process) ReadCString(addr uint64, max int) (string, error) {
	buf := make([]byte, max)
	// Strings may end right at a mapping boundary: read byte-wise chunks.
	for i := 0; i < max; i += 64 {
		end := i + 64
		if end > max {
			end = max
		}
		if err := p.ReadMem(addr+uint64(i), buf[i:end]); err != nil {
			return "", err
		}
		if j := bytes.IndexByte(buf[i:end], 0); j >= 0 {
			return string(buf[:i+j]), nil
		}
	}
	return "", fmt.Errorf("kernel: unterminated string at %#x", addr)
}

// --- syscall dispatch ---

// Syscall implements vm.SyscallHandler: seccomp filtering, optional tracer
// stop, then execution.
func (k *Kernel) Syscall(m *vm.Machine) (int64, error) {
	p := k.procs[m]
	if p == nil {
		return 0, errors.New("kernel: syscall from unregistered machine")
	}
	k.Clock.Add(k.Costs.SyscallEntry)
	nr := uint32(m.SysRegs.RAX)
	p.SyscallCounts[nr]++

	if p.filter != nil {
		data := &seccomp.Data{
			Nr:   nr,
			Arch: seccomp.AuditArchX86_64,
			IP:   m.SysRegs.RIP,
			Args: [6]uint64{
				m.SysRegs.RDI, m.SysRegs.RSI, m.SysRegs.RDX,
				m.SysRegs.R10, m.SysRegs.R8, m.SysRegs.R9,
			},
		}
		action, steps, err := seccomp.Run(p.filter, data)
		if err != nil {
			return 0, fmt.Errorf("kernel: seccomp filter fault: %w", err)
		}
		p.FilterSteps += uint64(steps)
		k.Clock.Add(k.Costs.BPFInsn * uint64(steps))
		switch action & seccomp.RetActionMask {
		case seccomp.RetAllow:
			// proceed
		case seccomp.RetLog:
			// proceed, but audit-log the in-filter verdict
			p.LogVerdicts[nr]++
		case seccomp.RetErrno:
			return -int64(action & seccomp.RetDataMask), nil
		case seccomp.RetKill, seccomp.RetTrap:
			p.killed = true
			return 0, &vm.KillError{By: "seccomp", Reason: "filter returned " + seccomp.ActionName(action) + " for " + Name(nr)}
		case seccomp.RetTrace:
			if p.tracer == nil {
				return -int64(ENOSYS), nil
			}
			p.TrapCount++
			before := k.Clock.Cycles
			err := p.tracer.Trap(p)
			p.MonitorCycles += k.Clock.Cycles - before
			if err != nil {
				p.killed = true
				return 0, err
			}
		}
	}
	k.Clock.Add(k.Costs.KernelOp)
	p.CompletedCounts[nr]++
	return p.execute(nr)
}

// Killed reports whether the process was killed by seccomp or its tracer.
func (p *Process) Killed() bool { return p.killed }

// OpenFDs returns the number of open file descriptors (leak detection).
func (p *Process) OpenFDs() int { return len(p.fds) }

// Maps renders the process's memory map in /proc/<pid>/maps style — the
// view a monitor's symbol-recovery step reads at attach time.
func (p *Process) Maps() string {
	var b strings.Builder
	for _, r := range p.M.Mem.Regions() {
		kind := ""
		switch {
		case r.Addr >= ir.ShadowBase && r.Addr < ir.ShadowBase+ir.ShadowSize:
			kind = "[shadow]"
		case r.Addr >= ir.StackTop-ir.StackSize && r.Addr < ir.StackTop:
			kind = "[stack]"
		case r.Addr >= ir.DataBase && r.Addr < ir.HeapBase:
			kind = "[data]"
		case r.Addr >= 0x7f00_0000_0000 && r.Addr < ir.StackTop-ir.StackSize:
			kind = "[anon]"
		case r.Addr >= ir.HeapBase && r.Addr < ir.ShadowBase:
			kind = "[heap]"
		}
		fmt.Fprintf(&b, "%012x-%012x %s %s\n", r.Addr, r.Addr+r.Size, r.Perm, kind)
	}
	return b.String()
}

func (p *Process) execute(nr uint32) (int64, error) {
	r := &p.M.SysRegs
	switch nr {
	case SysRead:
		return p.sysRead(int(int64(r.RDI)), r.RSI, r.RDX)
	case SysWrite, SysSendto:
		return p.sysWrite(int(int64(r.RDI)), r.RSI, r.RDX)
	case SysRecvfrom:
		return p.sysRead(int(int64(r.RDI)), r.RSI, r.RDX)
	case SysOpen:
		return p.sysOpen(r.RDI, r.RSI, r.RDX)
	case SysOpenat:
		return p.sysOpen(r.RSI, r.RDX, r.R10) // dirfd ignored (absolute paths)
	case SysClose:
		return p.sysClose(int(int64(r.RDI)))
	case SysStat:
		return p.sysStat(r.RDI, r.RSI)
	case SysFstat:
		return p.sysFstat(int(int64(r.RDI)), r.RSI)
	case SysLseek:
		return p.sysLseek(int(int64(r.RDI)), int64(r.RSI), int(r.RDX))
	case SysMmap:
		return p.sysMmap(r.RDI, r.RSI, r.RDX, r.R10, int(int64(r.R8)), r.R9)
	case SysMprotect:
		return p.sysMprotect(r.RDI, r.RSI, r.RDX)
	case SysMunmap:
		return p.sysMunmap(r.RDI, r.RSI)
	case SysBrk:
		return p.sysBrk(r.RDI)
	case SysMremap:
		return p.sysMremap(r.RDI, r.RSI, r.RDX)
	case SysRemapFilePages:
		return -int64(ENOSYS), nil
	case SysGetpid:
		return int64(p.PID), nil
	case SysSendfile:
		return p.sysSendfile(int(int64(r.RDI)), int(int64(r.RSI)), r.RDX, r.R10)
	case SysSocket:
		return p.sysSocket()
	case SysBind:
		return p.sysBind(int(int64(r.RDI)), r.RSI, r.RDX)
	case SysListen:
		return p.sysListen(int(int64(r.RDI)), int(int64(r.RSI)))
	case SysAccept, SysAccept4:
		return p.sysAccept(int(int64(r.RDI)), r.RSI, r.RDX)
	case SysConnect:
		return p.sysConnect(int(int64(r.RDI)), r.RSI, r.RDX)
	case SysClone, SysFork, SysVfork:
		p.event(EventClone, nr, "spawned child")
		child := p.K.nextPID
		p.K.nextPID++
		return int64(child), nil
	case SysExecve, SysExecveat:
		return p.sysExecve(nr)
	case SysChmod:
		return p.sysChmod(r.RDI, r.RSI)
	case SysPtrace:
		p.event(EventPtraceAttempt, nr, "ptrace requested")
		return -int64(EPERM), nil
	case SysSetuid:
		return p.sysSetuid(int(int64(r.RDI)))
	case SysSetgid:
		p.event(EventSetuid, nr, fmt.Sprintf("gid %d -> %d", p.GID, int(int64(r.RDI))))
		p.GID = int(int64(r.RDI))
		return 0, nil
	case SysSetreuid:
		return p.sysSetreuid(int(int64(r.RDI)), int(int64(r.RSI)))
	case SysExit, SysExitGroup:
		return 0, &vm.ExitError{Code: int64(r.RDI)}
	}
	return -int64(ENOSYS), nil
}

func (p *Process) event(kind EventKind, nr uint32, detail string) {
	r := &p.M.SysRegs
	p.Events = append(p.Events, Event{
		Kind: kind, Nr: nr, Detail: detail,
		Args: [6]uint64{r.RDI, r.RSI, r.RDX, r.R10, r.R8, r.R9},
	})
}

// HasEvent reports whether an event of the kind with a detail containing
// substr was logged.
func (p *Process) HasEvent(kind EventKind, substr string) bool {
	for _, e := range p.Events {
		if e.Kind == kind && (substr == "" || bytes.Contains([]byte(e.Detail), []byte(substr))) {
			return true
		}
	}
	return false
}

func (p *Process) allocFD(fd *FD) int64 {
	n := p.nextFD
	p.nextFD++
	p.fds[n] = fd
	return int64(n)
}

func (p *Process) fd(n int) *FD { return p.fds[n] }

// --- file syscalls ---

func (p *Process) sysRead(fd int, buf uint64, count uint64) (int64, error) {
	if count > 1<<20 {
		count = 1 << 20
	}
	d := p.fd(fd)
	tmp := make([]byte, count)
	var n int
	var err error
	switch {
	case fd == 0:
		return 0, nil // stdin: EOF
	case d == nil:
		return -int64(EBADF), nil
	case d.File != nil:
		n, err = d.File.Read(tmp)
	case d.Conn != nil:
		n, err = netstack.ServerRead(d.Conn, tmp)
		if errors.Is(err, netstack.ErrWouldBlock) {
			return -int64(EAGAIN), nil
		}
	default:
		return -int64(EBADF), nil
	}
	if err != nil {
		return -int64(EACCES), nil
	}
	if n > 0 {
		if perr := p.M.Mem.Poke(buf, tmp[:n]); perr != nil {
			return -int64(EFAULT), nil
		}
	}
	p.K.Clock.Add(p.K.Costs.IOPerByte * uint64(n))
	return int64(n), nil
}

func (p *Process) sysWrite(fd int, buf uint64, count uint64) (int64, error) {
	if count > 1<<20 {
		count = 1 << 20
	}
	tmp := make([]byte, count)
	if err := p.M.Mem.Peek(buf, tmp); err != nil {
		return -int64(EFAULT), nil
	}
	d := p.fd(fd)
	p.K.Clock.Add(p.K.Costs.IOPerByte * count)
	switch {
	case fd == 1 || fd == 2:
		p.Stdout.Write(tmp)
		return int64(count), nil
	case d == nil:
		return -int64(EBADF), nil
	case d.File != nil:
		n, err := d.File.Write(tmp)
		if err != nil {
			return -int64(EACCES), nil
		}
		return int64(n), nil
	case d.Conn != nil:
		n, err := netstack.ServerWrite(d.Conn, tmp)
		if err != nil {
			return -int64(EPERM), nil
		}
		return int64(n), nil
	}
	return -int64(EBADF), nil
}

func (p *Process) sysOpen(pathPtr, flags, mode uint64) (int64, error) {
	path, err := p.M.Mem.ReadCString(pathPtr, 4096)
	if err != nil {
		return -int64(EFAULT), nil
	}
	f, err := p.K.FS.Open(path, int(flags), fs.Mode(mode))
	switch {
	case errors.Is(err, fs.ErrNotExist):
		return -int64(ENOENT), nil
	case errors.Is(err, fs.ErrPerm):
		return -int64(EACCES), nil
	case errors.Is(err, fs.ErrIsDir):
		return -int64(EISDIR), nil
	case err != nil:
		return -int64(EINVAL), nil
	}
	return p.allocFD(&FD{File: f}), nil
}

func (p *Process) sysClose(fd int) (int64, error) {
	d := p.fd(fd)
	if d == nil {
		return -int64(EBADF), nil
	}
	if d.Conn != nil {
		d.Conn.Close()
	}
	delete(p.fds, fd)
	return 0, nil
}

// statSizeOffset is where st_size lives in struct stat on x86-64.
const statSizeOffset = 48

func (p *Process) sysStat(pathPtr, statPtr uint64) (int64, error) {
	path, err := p.M.Mem.ReadCString(pathPtr, 4096)
	if err != nil {
		return -int64(EFAULT), nil
	}
	st, err := p.K.FS.Stat(path)
	if err != nil {
		return -int64(ENOENT), nil
	}
	return p.writeStat(statPtr, st.Size, uint64(st.Mode))
}

func (p *Process) sysFstat(fd int, statPtr uint64) (int64, error) {
	d := p.fd(fd)
	if d == nil || d.File == nil {
		return -int64(EBADF), nil
	}
	return p.writeStat(statPtr, d.File.Size(), uint64(d.File.Mode()))
}

func (p *Process) writeStat(statPtr uint64, size int64, mode uint64) (int64, error) {
	if err := p.M.Mem.PokeUint(statPtr+statSizeOffset, uint64(size), 8); err != nil {
		return -int64(EFAULT), nil
	}
	if err := p.M.Mem.PokeUint(statPtr+24, mode, 4); err != nil { // st_mode offset
		return -int64(EFAULT), nil
	}
	return 0, nil
}

func (p *Process) sysLseek(fd int, off int64, whence int) (int64, error) {
	d := p.fd(fd)
	if d == nil || d.File == nil {
		return -int64(EBADF), nil
	}
	n, err := d.File.Seek(off, whence)
	if err != nil {
		return -int64(EINVAL), nil
	}
	return n, nil
}

func (p *Process) sysSendfile(outFD, inFD int, offPtr, count uint64) (int64, error) {
	out, in := p.fd(outFD), p.fd(inFD)
	if out == nil || in == nil || in.File == nil {
		return -int64(EBADF), nil
	}
	if count > 1<<20 {
		count = 1 << 20
	}
	tmp := make([]byte, count)
	n, err := in.File.Read(tmp)
	if err != nil {
		return -int64(EACCES), nil
	}
	tmp = tmp[:n]
	switch {
	case out.Conn != nil:
		if _, err := netstack.ServerWrite(out.Conn, tmp); err != nil {
			return -int64(EPERM), nil
		}
	case out.File != nil:
		if _, err := out.File.Write(tmp); err != nil {
			return -int64(EACCES), nil
		}
	case outFD == 1 || outFD == 2:
		p.Stdout.Write(tmp)
	default:
		return -int64(EBADF), nil
	}
	p.K.Clock.Add(p.K.Costs.IOPerByte * uint64(n))
	return int64(n), nil
}

func (p *Process) sysChmod(pathPtr, mode uint64) (int64, error) {
	path, err := p.M.Mem.ReadCString(pathPtr, 4096)
	if err != nil {
		return -int64(EFAULT), nil
	}
	if err := p.K.FS.Chmod(path, fs.Mode(mode)); err != nil {
		return -int64(ENOENT), nil
	}
	p.event(EventChmod, SysChmod, fmt.Sprintf("chmod %s to %o", path, mode))
	return 0, nil
}

// --- memory syscalls ---

func protToPerm(prot uint64) mem.Perm {
	var perm mem.Perm
	if prot&ProtRead != 0 {
		perm |= mem.PermRead
	}
	if prot&ProtWrite != 0 {
		perm |= mem.PermWrite
	}
	if prot&ProtExec != 0 {
		perm |= mem.PermExec
	}
	return perm
}

func (p *Process) sysMmap(addr, length, prot, flags uint64, fd int, off uint64) (int64, error) {
	if length == 0 {
		return -int64(EINVAL), nil
	}
	if flags&MapAnonymous == 0 || fd != -1 {
		return -int64(ENOSYS), nil // file-backed mappings unimplemented
	}
	length = mem.RoundUp(length)
	if addr == 0 || flags&MapFixed == 0 {
		addr = p.mmapCursor
		p.mmapCursor += length + mem.PageSize // guard gap
	}
	if addr%mem.PageSize != 0 {
		return -int64(EINVAL), nil
	}
	// Fresh anonymous pages are zeroed.
	if err := p.M.Mem.Unmap(addr, length); err != nil {
		return -int64(EINVAL), nil
	}
	if err := p.M.Mem.Map(addr, length, protToPerm(prot)); err != nil {
		return -int64(ENOMEM), nil
	}
	if prot&ProtWrite != 0 && prot&ProtExec != 0 {
		p.event(EventMemExec, SysMmap, fmt.Sprintf("mmap W+X at %#x (+%d)", addr, length))
	}
	return int64(addr), nil
}

func (p *Process) sysMprotect(addr, length, prot uint64) (int64, error) {
	if err := p.M.Mem.Protect(addr, length, protToPerm(prot)); err != nil {
		return -int64(ENOMEM), nil
	}
	if prot&ProtExec != 0 {
		detail := fmt.Sprintf("mprotect exec at %#x (+%d)", addr, length)
		if prot&ProtWrite != 0 {
			detail = fmt.Sprintf("mprotect W+X at %#x (+%d)", addr, length)
		}
		p.event(EventMemExec, SysMprotect, detail)
	}
	return 0, nil
}

func (p *Process) sysMunmap(addr, length uint64) (int64, error) {
	if err := p.M.Mem.Unmap(addr, length); err != nil {
		return -int64(EINVAL), nil
	}
	return 0, nil
}

func (p *Process) sysBrk(addr uint64) (int64, error) {
	const heapStart = 0x1000_0000 // ir.HeapBase
	if p.brk == 0 {
		p.brk = heapStart
	}
	if addr == 0 {
		return int64(p.brk), nil
	}
	if addr < heapStart {
		return int64(p.brk), nil
	}
	newBrk := mem.RoundUp(addr)
	if newBrk > p.brk {
		if err := p.M.Mem.Map(p.brk, newBrk-p.brk, mem.PermRW); err != nil {
			return int64(p.brk), nil
		}
	}
	p.brk = newBrk
	return int64(p.brk), nil
}

func (p *Process) sysMremap(oldAddr, oldSize, newSize uint64) (int64, error) {
	if oldSize == 0 || newSize == 0 {
		return -int64(EINVAL), nil
	}
	oldSize, newSize = mem.RoundUp(oldSize), mem.RoundUp(newSize)
	perm, ok := p.M.Mem.PermAt(oldAddr)
	if !ok {
		return -int64(EFAULT), nil
	}
	newAddr := p.mmapCursor
	p.mmapCursor += newSize + mem.PageSize
	if err := p.M.Mem.Map(newAddr, newSize, perm); err != nil {
		return -int64(ENOMEM), nil
	}
	n := oldSize
	if newSize < n {
		n = newSize
	}
	buf := make([]byte, n)
	if err := p.M.Mem.Peek(oldAddr, buf); err != nil {
		return -int64(EFAULT), nil
	}
	if err := p.M.Mem.Poke(newAddr, buf); err != nil {
		return -int64(EFAULT), nil
	}
	if err := p.M.Mem.Unmap(oldAddr, oldSize); err != nil {
		return -int64(EINVAL), nil
	}
	p.event(EventRemap, SysMremap, fmt.Sprintf("mremap %#x -> %#x (+%d)", oldAddr, newAddr, newSize))
	return int64(newAddr), nil
}

// --- network syscalls ---

func (p *Process) sysSocket() (int64, error) {
	sk := p.K.Net.NewSocket()
	p.event(EventSocket, SysSocket, "socket created")
	return p.allocFD(&FD{Sock: sk}), nil
}

// sockaddr layout: sa_family uint16 at +0, port big-endian uint16 at +2
// (struct sockaddr_in).
func (p *Process) readSockaddrPort(addrPtr uint64) (uint16, bool) {
	hi, err := p.M.Mem.PeekUint(addrPtr+2, 1)
	if err != nil {
		return 0, false
	}
	lo, err := p.M.Mem.PeekUint(addrPtr+3, 1)
	if err != nil {
		return 0, false
	}
	return uint16(hi<<8 | lo), true
}

func (p *Process) sysBind(fd int, addrPtr, addrLen uint64) (int64, error) {
	d := p.fd(fd)
	if d == nil || d.Sock == nil {
		return -int64(EBADF), nil
	}
	if addrLen < 4 {
		return -int64(EINVAL), nil
	}
	port, ok := p.readSockaddrPort(addrPtr)
	if !ok {
		return -int64(EFAULT), nil
	}
	if err := p.K.Net.Bind(d.Sock, port); err != nil {
		return -int64(EADDRINUSE), nil
	}
	p.event(EventSocket, SysBind, fmt.Sprintf("bound port %d", port))
	return 0, nil
}

func (p *Process) sysListen(fd, backlog int) (int64, error) {
	d := p.fd(fd)
	if d == nil || d.Sock == nil {
		return -int64(EBADF), nil
	}
	if err := p.K.Net.Listen(d.Sock, backlog); err != nil {
		return -int64(EINVAL), nil
	}
	p.event(EventSocket, SysListen, fmt.Sprintf("listening on port %d", d.Sock.Port))
	return 0, nil
}

func (p *Process) sysAccept(fd int, addrPtr, lenPtr uint64) (int64, error) {
	d := p.fd(fd)
	if d == nil || d.Sock == nil {
		return -int64(EBADF), nil
	}
	conn, err := p.K.Net.Accept(d.Sock)
	if errors.Is(err, netstack.ErrWouldBlock) {
		return -int64(EAGAIN), nil
	}
	if err != nil {
		return -int64(EINVAL), nil
	}
	if addrPtr != 0 {
		// Fill in the peer sockaddr: family AF_INET, remote port.
		if err := p.M.Mem.PokeUint(addrPtr, 2 /* AF_INET */, 2); err != nil {
			return -int64(EFAULT), nil
		}
		p.M.Mem.PokeUint(addrPtr+2, uint64(conn.RemotePort>>8), 1)
		p.M.Mem.PokeUint(addrPtr+3, uint64(conn.RemotePort&0xff), 1)
		if lenPtr != 0 {
			p.M.Mem.PokeUint(lenPtr, 16, 4)
		}
	}
	return p.allocFD(&FD{Conn: conn}), nil
}

func (p *Process) sysConnect(fd int, addrPtr, addrLen uint64) (int64, error) {
	d := p.fd(fd)
	if d == nil || d.Sock == nil {
		return -int64(EBADF), nil
	}
	if addrLen < 4 {
		return -int64(EINVAL), nil
	}
	port, ok := p.readSockaddrPort(addrPtr)
	if !ok {
		return -int64(EFAULT), nil
	}
	conn, err := p.K.Net.Connect(d.Sock, port)
	if err != nil {
		return -int64(ECONNREFUSED), nil
	}
	d.Conn = conn
	p.event(EventSocket, SysConnect, fmt.Sprintf("connected to port %d", port))
	return 0, nil
}

// --- process / credential syscalls ---

func (p *Process) sysExecve(nr uint32) (int64, error) {
	pathPtr := p.M.SysRegs.RDI
	if nr == SysExecveat {
		pathPtr = p.M.SysRegs.RSI
	}
	path, err := p.M.Mem.ReadCString(pathPtr, 4096)
	if err != nil {
		return -int64(EFAULT), nil
	}
	st, serr := p.K.FS.Stat(path)
	if serr != nil {
		return -int64(ENOENT), nil
	}
	if st.Mode&fs.ModeExec == 0 {
		return -int64(EACCES), nil
	}
	p.event(EventExec, nr, "execve "+path)
	// A successful execve replaces the image; the simulated guest ends
	// here with the exec recorded in the event log.
	return 0, &vm.ExitError{Code: 0}
}

func (p *Process) sysSetuid(uid int) (int64, error) {
	if p.UID != 0 && uid != p.UID {
		return -int64(EPERM), nil
	}
	p.event(EventSetuid, SysSetuid, fmt.Sprintf("uid %d -> %d", p.UID, uid))
	p.UID = uid
	return 0, nil
}

func (p *Process) sysSetreuid(ruid, euid int) (int64, error) {
	if p.UID != 0 && ruid != p.UID && euid != p.UID {
		return -int64(EPERM), nil
	}
	p.event(EventSetuid, SysSetreuid, fmt.Sprintf("reuid %d/%d", ruid, euid))
	if ruid >= 0 {
		p.UID = ruid
	}
	return 0, nil
}
