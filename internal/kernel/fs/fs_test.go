package fs

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestWriteReadFile(t *testing.T) {
	f := New()
	data := []byte("GET / HTTP/1.1")
	if err := f.WriteFile("/srv/www/index.html", data, ModeRead|ModeWrite); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := f.ReadFile("/srv/www/index.html")
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
	if _, err := f.ReadFile("/srv/www/missing"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("missing file: %v", err)
	}
}

func TestOpenFlags(t *testing.T) {
	f := New()
	if err := f.WriteFile("/a", []byte("hello"), ModeRead|ModeWrite); err != nil {
		t.Fatal(err)
	}

	// O_RDONLY can read, not write.
	ro, err := f.Open("/a", ORdonly, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if n, _ := ro.Read(buf); n != 5 {
		t.Fatalf("read %d", n)
	}
	if _, err := ro.Write([]byte("x")); err == nil {
		t.Fatal("write on O_RDONLY succeeded")
	}

	// O_TRUNC clears.
	w, err := f.Open("/a", OWronly|OTrunc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("xy")); err != nil {
		t.Fatal(err)
	}
	if got, _ := f.ReadFile("/a"); string(got) != "xy" {
		t.Fatalf("after trunc+write: %q", got)
	}
	if _, err := w.Read(buf); err == nil {
		t.Fatal("read on O_WRONLY succeeded")
	}

	// O_APPEND starts at end.
	a, err := f.Open("/a", OWronly|OAppend, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write([]byte("z")); err != nil {
		t.Fatal(err)
	}
	if got, _ := f.ReadFile("/a"); string(got) != "xyz" {
		t.Fatalf("after append: %q", got)
	}

	// O_CREAT creates.
	c, err := f.Open("/new", OWronly|OCreat, ModeRead|ModeWrite)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("n")); err != nil {
		t.Fatal(err)
	}
	if st, err := f.Stat("/new"); err != nil || st.Size != 1 {
		t.Fatalf("stat new: %+v %v", st, err)
	}
	// Without O_CREAT it fails.
	if _, err := f.Open("/new2", OWronly, 0); !errors.Is(err, ErrNotExist) {
		t.Fatalf("open missing: %v", err)
	}
}

func TestPermissions(t *testing.T) {
	f := New()
	if err := f.WriteFile("/secret", []byte("k"), ModeWrite); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Open("/secret", ORdonly, 0); !errors.Is(err, ErrPerm) {
		t.Fatalf("read of non-readable: %v", err)
	}
	if err := f.Chmod("/secret", ModeRead); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Open("/secret", ORdonly, 0); err != nil {
		t.Fatalf("read after chmod: %v", err)
	}
	if _, err := f.Open("/secret", OWronly, 0); !errors.Is(err, ErrPerm) {
		t.Fatalf("write of read-only: %v", err)
	}
	st, _ := f.Stat("/secret")
	if st.Mode != ModeRead {
		t.Fatalf("mode = %o", st.Mode)
	}
}

func TestSeek(t *testing.T) {
	f := New()
	if err := f.WriteFile("/a", []byte("0123456789"), ModeRead|ModeWrite); err != nil {
		t.Fatal(err)
	}
	fl, err := f.Open("/a", ORdwr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if off, err := fl.Seek(4, SeekSet); err != nil || off != 4 {
		t.Fatalf("SeekSet: %d %v", off, err)
	}
	b := make([]byte, 2)
	fl.Read(b)
	if string(b) != "45" {
		t.Fatalf("after seek read %q", b)
	}
	if off, err := fl.Seek(-1, SeekCur); err != nil || off != 5 {
		t.Fatalf("SeekCur: %d %v", off, err)
	}
	if off, err := fl.Seek(-2, SeekEnd); err != nil || off != 8 {
		t.Fatalf("SeekEnd: %d %v", off, err)
	}
	if _, err := fl.Seek(-100, SeekSet); err == nil {
		t.Fatal("negative seek succeeded")
	}
	if _, err := fl.Seek(0, 9); err == nil {
		t.Fatal("bad whence succeeded")
	}
}

func TestWriteExtendsSparsely(t *testing.T) {
	f := New()
	if err := f.WriteFile("/a", nil, ModeRead|ModeWrite); err != nil {
		t.Fatal(err)
	}
	fl, _ := f.Open("/a", ORdwr, 0)
	if _, err := fl.Seek(5, SeekSet); err != nil {
		t.Fatal(err)
	}
	fl.Write([]byte("xx"))
	got, _ := f.ReadFile("/a")
	want := []byte{0, 0, 0, 0, 0, 'x', 'x'}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if fl.Size() != 7 {
		t.Fatalf("size = %d", fl.Size())
	}
}

func TestDirOperations(t *testing.T) {
	f := New()
	if err := f.MkdirAll("/etc/nginx", ModeRead|ModeWrite|ModeExec); err != nil {
		t.Fatal(err)
	}
	f.WriteFile("/etc/nginx/nginx.conf", []byte("worker 32"), ModeRead)
	f.WriteFile("/etc/nginx/mime.types", []byte("x"), ModeRead)
	ents, err := f.ReadDir("/etc/nginx")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 || ents[0].Name != "mime.types" || ents[1].Name != "nginx.conf" {
		t.Fatalf("ReadDir = %+v", ents)
	}
	if _, err := f.ReadDir("/etc/nginx/nginx.conf"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("ReadDir on file: %v", err)
	}
	if _, err := f.Open("/etc/nginx", ORdonly, 0); !errors.Is(err, ErrIsDir) {
		t.Fatalf("Open on dir: %v", err)
	}
	if err := f.Remove("/etc/nginx"); err == nil {
		t.Fatal("removed non-empty directory")
	}
	if err := f.Remove("/etc/nginx/mime.types"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Stat("/etc/nginx/mime.types"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("stat removed: %v", err)
	}
}

func TestIndependentOffsets(t *testing.T) {
	f := New()
	f.WriteFile("/a", []byte("abcdef"), ModeRead|ModeWrite)
	f1, _ := f.Open("/a", ORdonly, 0)
	f2, _ := f.Open("/a", ORdonly, 0)
	b := make([]byte, 3)
	f1.Read(b)
	if string(b) != "abc" {
		t.Fatalf("f1 read %q", b)
	}
	f2.Read(b)
	if string(b) != "abc" {
		t.Fatalf("f2 read %q (offset shared?)", b)
	}
}

// Property: WriteFile then ReadFile round-trips arbitrary contents at
// arbitrary (sanitized) paths.
func TestRoundTripProperty(t *testing.T) {
	f := New()
	fn := func(name string, data []byte) bool {
		p := "/prop/" + sanitize(name)
		if err := f.WriteFile(p, data, ModeRead|ModeWrite); err != nil {
			return false
		}
		got, err := f.ReadFile(p)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func sanitize(s string) string {
	out := []byte("f")
	for _, c := range []byte(s) {
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' {
			out = append(out, c)
		}
	}
	if len(out) > 32 {
		out = out[:32]
	}
	return string(out)
}
