// Package fs implements the in-memory filesystem backing the simulated
// kernel's file syscalls. It supports hierarchical directories, permission
// bits, open-file descriptions with independent offsets, and the operations
// the guest applications need (open/openat, read, write, lseek, chmod,
// stat, sendfile sources).
package fs

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
)

// Mode bits (a simplified single-class rwx plus setuid, as the chmod attack
// scenarios only need "became executable/setuid" to be observable).
type Mode uint32

// Permission bits.
const (
	ModeRead   Mode = 0o4
	ModeWrite  Mode = 0o2
	ModeExec   Mode = 0o1
	ModeSetUID Mode = 0o4000
)

// Common errors, mirroring errno semantics.
var (
	ErrNotExist  = errors.New("fs: no such file or directory")
	ErrExist     = errors.New("fs: file exists")
	ErrIsDir     = errors.New("fs: is a directory")
	ErrNotDir    = errors.New("fs: not a directory")
	ErrPerm      = errors.New("fs: permission denied")
	ErrBadOffset = errors.New("fs: bad offset")
)

type node struct {
	name     string
	mode     Mode
	dir      bool
	data     []byte
	children map[string]*node
}

// FS is an in-memory filesystem. It is safe for concurrent use.
type FS struct {
	mu   sync.Mutex
	root *node
}

// New returns a filesystem containing only the root directory.
func New() *FS {
	return &FS{root: &node{name: "/", dir: true, mode: ModeRead | ModeWrite | ModeExec, children: map[string]*node{}}}
}

func split(p string) []string {
	p = path.Clean("/" + p)
	if p == "/" {
		return nil
	}
	return strings.Split(strings.TrimPrefix(p, "/"), "/")
}

func (f *FS) lookup(p string) (*node, error) {
	n := f.root
	for _, part := range split(p) {
		if !n.dir {
			return nil, ErrNotDir
		}
		c, ok := n.children[part]
		if !ok {
			return nil, ErrNotExist
		}
		n = c
	}
	return n, nil
}

func (f *FS) lookupParent(p string) (*node, string, error) {
	parts := split(p)
	if len(parts) == 0 {
		return nil, "", ErrIsDir
	}
	dir := f.root
	for _, part := range parts[:len(parts)-1] {
		c, ok := dir.children[part]
		if !ok {
			return nil, "", ErrNotExist
		}
		if !c.dir {
			return nil, "", ErrNotDir
		}
		dir = c
	}
	return dir, parts[len(parts)-1], nil
}

// MkdirAll creates the directory p and any missing parents.
func (f *FS) MkdirAll(p string, mode Mode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.root
	for _, part := range split(p) {
		c, ok := n.children[part]
		if !ok {
			c = &node{name: part, dir: true, mode: mode, children: map[string]*node{}}
			n.children[part] = c
		} else if !c.dir {
			return ErrNotDir
		}
		n = c
	}
	return nil
}

// WriteFile creates (or truncates) the file at p with the given contents
// and mode, creating parent directories as needed.
func (f *FS) WriteFile(p string, data []byte, mode Mode) error {
	if err := f.MkdirAll(path.Dir(p), ModeRead|ModeWrite|ModeExec); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	dir, name, err := f.lookupParent(p)
	if err != nil {
		return err
	}
	n, ok := dir.children[name]
	if ok {
		if n.dir {
			return ErrIsDir
		}
	} else {
		n = &node{name: name, mode: mode}
		dir.children[name] = n
	}
	n.data = append([]byte(nil), data...)
	n.mode = mode
	return nil
}

// ReadFile returns a copy of the file's contents.
func (f *FS) ReadFile(p string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, err := f.lookup(p)
	if err != nil {
		return nil, err
	}
	if n.dir {
		return nil, ErrIsDir
	}
	return append([]byte(nil), n.data...), nil
}

// Stat describes a file.
type Stat struct {
	Name string
	Size int64
	Mode Mode
	Dir  bool
}

// Stat returns file metadata.
func (f *FS) Stat(p string) (Stat, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, err := f.lookup(p)
	if err != nil {
		return Stat{}, err
	}
	return Stat{Name: n.name, Size: int64(len(n.data)), Mode: n.mode, Dir: n.dir}, nil
}

// Chmod replaces the file's mode bits.
func (f *FS) Chmod(p string, mode Mode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, err := f.lookup(p)
	if err != nil {
		return err
	}
	n.mode = mode
	return nil
}

// Remove deletes a file or empty directory.
func (f *FS) Remove(p string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	dir, name, err := f.lookupParent(p)
	if err != nil {
		return err
	}
	n, ok := dir.children[name]
	if !ok {
		return ErrNotExist
	}
	if n.dir && len(n.children) > 0 {
		return fmt.Errorf("fs: directory not empty: %s", p)
	}
	delete(dir.children, name)
	return nil
}

// ReadDir lists a directory's entries in name order.
func (f *FS) ReadDir(p string) ([]Stat, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, err := f.lookup(p)
	if err != nil {
		return nil, err
	}
	if !n.dir {
		return nil, ErrNotDir
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Stat, len(names))
	for i, name := range names {
		c := n.children[name]
		out[i] = Stat{Name: c.name, Size: int64(len(c.data)), Mode: c.mode, Dir: c.dir}
	}
	return out, nil
}

// Open flags (subset of O_*).
const (
	ORdonly = 0x0
	OWronly = 0x1
	ORdwr   = 0x2
	OCreat  = 0x40
	OTrunc  = 0x200
	OAppend = 0x400
)

// File is an open-file description with its own offset.
type File struct {
	fs     *FS
	n      *node
	flags  int
	offset int64
}

// Open opens the file at p with O_* flags; mode applies when creating.
func (f *FS) Open(p string, flags int, mode Mode) (*File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, err := f.lookup(p)
	if errors.Is(err, ErrNotExist) && flags&OCreat != 0 {
		dir, name, perr := f.lookupParent(p)
		if perr != nil {
			return nil, perr
		}
		n = &node{name: name, mode: mode}
		dir.children[name] = n
		err = nil
	}
	if err != nil {
		return nil, err
	}
	if n.dir {
		return nil, ErrIsDir
	}
	acc := flags & 0x3
	if (acc == ORdonly || acc == ORdwr) && n.mode&ModeRead == 0 {
		return nil, ErrPerm
	}
	if (acc == OWronly || acc == ORdwr) && n.mode&ModeWrite == 0 {
		return nil, ErrPerm
	}
	if flags&OTrunc != 0 && acc != ORdonly {
		n.data = n.data[:0]
	}
	file := &File{fs: f, n: n, flags: flags}
	if flags&OAppend != 0 {
		file.offset = int64(len(n.data))
	}
	return file, nil
}

// Read reads from the current offset, advancing it. It returns 0 at EOF.
func (fl *File) Read(buf []byte) (int, error) {
	fl.fs.mu.Lock()
	defer fl.fs.mu.Unlock()
	if fl.flags&0x3 == OWronly {
		return 0, ErrPerm
	}
	if fl.offset >= int64(len(fl.n.data)) {
		return 0, nil
	}
	n := copy(buf, fl.n.data[fl.offset:])
	fl.offset += int64(n)
	return n, nil
}

// Write writes at the current offset, extending the file as needed.
func (fl *File) Write(buf []byte) (int, error) {
	fl.fs.mu.Lock()
	defer fl.fs.mu.Unlock()
	if fl.flags&0x3 == ORdonly {
		return 0, ErrPerm
	}
	end := fl.offset + int64(len(buf))
	if int64(len(fl.n.data)) < end {
		grown := make([]byte, end)
		copy(grown, fl.n.data)
		fl.n.data = grown
	}
	copy(fl.n.data[fl.offset:end], buf)
	fl.offset = end
	return len(buf), nil
}

// Seek whence values.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// Seek repositions the offset.
func (fl *File) Seek(off int64, whence int) (int64, error) {
	fl.fs.mu.Lock()
	defer fl.fs.mu.Unlock()
	var base int64
	switch whence {
	case SeekSet:
	case SeekCur:
		base = fl.offset
	case SeekEnd:
		base = int64(len(fl.n.data))
	default:
		return 0, ErrBadOffset
	}
	if base+off < 0 {
		return 0, ErrBadOffset
	}
	fl.offset = base + off
	return fl.offset, nil
}

// Size returns the file's current length.
func (fl *File) Size() int64 {
	fl.fs.mu.Lock()
	defer fl.fs.mu.Unlock()
	return int64(len(fl.n.data))
}

// Mode returns the file's mode bits.
func (fl *File) Mode() Mode {
	fl.fs.mu.Lock()
	defer fl.fs.mu.Unlock()
	return fl.n.mode
}
