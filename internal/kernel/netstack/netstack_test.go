package netstack

import (
	"bytes"
	"errors"
	"testing"
)

func listen(t *testing.T, s *Stack, port uint16) *Socket {
	t.Helper()
	sk := s.NewSocket()
	if err := s.Bind(sk, port); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if err := s.Listen(sk, 16); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	return sk
}

func TestDialAcceptEcho(t *testing.T) {
	s := NewStack()
	sk := listen(t, s, 80)

	client, err := s.Dial(80)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if _, err := client.ClientWrite([]byte("ping")); err != nil {
		t.Fatal(err)
	}

	conn, err := s.Accept(sk)
	if err != nil {
		t.Fatalf("Accept: %v", err)
	}
	buf := make([]byte, 16)
	n, err := ServerRead(conn, buf)
	if err != nil || string(buf[:n]) != "ping" {
		t.Fatalf("server read %q, %v", buf[:n], err)
	}
	if _, err := ServerWrite(conn, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	if got := client.ClientReadAll(); !bytes.Equal(got, []byte("pong")) {
		t.Fatalf("client read %q", got)
	}
	if s.AcceptedTotal != 1 {
		t.Fatalf("AcceptedTotal = %d", s.AcceptedTotal)
	}
}

func TestAcceptEmptyBacklogWouldBlock(t *testing.T) {
	s := NewStack()
	sk := listen(t, s, 80)
	if _, err := s.Accept(sk); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("Accept on empty backlog: %v", err)
	}
}

func TestLifecycleErrors(t *testing.T) {
	s := NewStack()
	sk := s.NewSocket()
	if err := s.Listen(sk, 1); !errors.Is(err, ErrNotBound) {
		t.Fatalf("Listen unbound: %v", err)
	}
	if _, err := s.Accept(sk); !errors.Is(err, ErrNotListen) {
		t.Fatalf("Accept non-listener: %v", err)
	}
	if _, err := s.Dial(9999); !errors.Is(err, ErrRefused) {
		t.Fatalf("Dial closed port: %v", err)
	}
	listen(t, s, 80)
	sk2 := s.NewSocket()
	if err := s.Bind(sk2, 80); !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("double bind: %v", err)
	}
}

func TestBacklogLimitAndOrder(t *testing.T) {
	s := NewStack()
	sk := s.NewSocket()
	if err := s.Bind(sk, 80); err != nil {
		t.Fatal(err)
	}
	if err := s.Listen(sk, 2); err != nil {
		t.Fatal(err)
	}
	c1, err := s.Dial(80)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Dial(80); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Dial(80); err == nil {
		t.Fatal("backlog overflow accepted")
	}
	if got := s.Pending(80); got != 2 {
		t.Fatalf("Pending = %d", got)
	}
	c1.ClientWrite([]byte("first"))
	got, err := s.Accept(sk)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 8)
	n, _ := ServerRead(got, b)
	if string(b[:n]) != "first" {
		t.Fatalf("accept order broken: %q", b[:n])
	}
}

func TestCloseSemantics(t *testing.T) {
	s := NewStack()
	sk := listen(t, s, 80)
	client, _ := s.Dial(80)
	conn, _ := s.Accept(sk)

	// Read with nothing queued and peer open: would block.
	b := make([]byte, 4)
	if _, err := ServerRead(conn, b); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("read empty open conn: %v", err)
	}
	client.ClientWrite([]byte("xy"))
	client.Close()
	// Queued data still readable after close.
	n, err := ServerRead(conn, b)
	if err != nil || string(b[:n]) != "xy" {
		t.Fatalf("read after close: %q %v", b[:n], err)
	}
	// Then EOF.
	n, err = ServerRead(conn, b)
	if n != 0 || err != nil {
		t.Fatalf("EOF read: %d %v", n, err)
	}
	if _, err := ServerWrite(conn, []byte("z")); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close: %v", err)
	}
	if !conn.Closed() {
		t.Fatal("Closed() = false")
	}
}

func TestGuestConnect(t *testing.T) {
	s := NewStack()
	listen(t, s, 5432)
	sk := s.NewSocket()
	conn, err := s.Connect(sk, 5432)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if sk.State != SockConnected || sk.Conn != conn {
		t.Fatalf("socket state %v", sk.State)
	}
	if s.Pending(5432) != 1 {
		t.Fatal("connection not queued at listener")
	}
}
