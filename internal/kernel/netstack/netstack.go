// Package netstack implements the loopback socket layer of the simulated
// kernel. Workload generators act as remote clients: they dial a listening
// port, enqueue request bytes, and read responses, while the guest
// application performs socket/bind/listen/accept/read/write through the
// kernel. Everything is synchronous and deterministic — Accept on an empty
// backlog reports "would block" rather than parking a goroutine — which
// keeps benchmark timelines reproducible.
package netstack

import (
	"errors"
	"fmt"
	"sync"
)

// Errors mirroring errno conditions.
var (
	ErrWouldBlock = errors.New("netstack: operation would block")
	ErrAddrInUse  = errors.New("netstack: address already in use")
	ErrNotBound   = errors.New("netstack: socket not bound")
	ErrNotListen  = errors.New("netstack: socket not listening")
	ErrRefused    = errors.New("netstack: connection refused")
	ErrClosed     = errors.New("netstack: connection closed")
)

// Conn is one direction-pair of byte queues between a client and the guest.
type Conn struct {
	mu sync.Mutex
	// toServer holds bytes written by the client, read by the guest.
	toServer []byte
	// toClient holds bytes written by the guest, read by the client.
	toClient []byte
	closed   bool

	// RemotePort is the simulated client ephemeral port, for diagnostics.
	RemotePort uint16
}

// serverRead moves up to len(buf) request bytes to the guest.
func (c *Conn) serverRead(buf []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.toServer) == 0 {
		if c.closed {
			return 0, nil // EOF
		}
		return 0, ErrWouldBlock
	}
	n := copy(buf, c.toServer)
	c.toServer = c.toServer[n:]
	return n, nil
}

// serverWrite queues response bytes for the client.
func (c *Conn) serverWrite(buf []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, ErrClosed
	}
	c.toClient = append(c.toClient, buf...)
	return len(buf), nil
}

// ClientWrite enqueues request bytes (workload-generator side).
func (c *Conn) ClientWrite(buf []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, ErrClosed
	}
	c.toServer = append(c.toServer, buf...)
	return len(buf), nil
}

// ClientRead drains response bytes (workload-generator side). It returns
// what is available immediately; 0 bytes with nil error means none yet.
func (c *Conn) ClientRead(buf []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := copy(buf, c.toClient)
	c.toClient = c.toClient[n:]
	return n, nil
}

// ClientReadAll drains and returns everything the guest has written.
func (c *Conn) ClientReadAll() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.toClient
	c.toClient = nil
	return out
}

// Close marks the connection closed; subsequent guest reads see EOF.
func (c *Conn) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
}

// Closed reports whether Close has been called.
func (c *Conn) Closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Listener is a bound, listening socket with a backlog of pending
// connections.
type Listener struct {
	Port    uint16
	backlog []*Conn
	maxlog  int
}

// SockState tracks a guest socket through the bind/listen lifecycle.
type SockState int

// Socket lifecycle states.
const (
	SockNew SockState = iota
	SockBound
	SockListening
	SockConnected
)

// Socket is a guest-side socket endpoint.
type Socket struct {
	State SockState
	Port  uint16
	// Conn is set once connected (accepted or connect()ed).
	Conn *Conn
	// Lst is set once listening.
	Lst *Listener
}

// Stack is a single-host loopback network namespace.
type Stack struct {
	mu        sync.Mutex
	listeners map[uint16]*Listener
	nextEphem uint16

	// AcceptedTotal counts accepted connections, for workload statistics.
	AcceptedTotal uint64
}

// NewStack returns an empty loopback stack.
func NewStack() *Stack {
	return &Stack{listeners: map[uint16]*Listener{}, nextEphem: 40000}
}

// NewSocket creates an unbound socket.
func (s *Stack) NewSocket() *Socket { return &Socket{} }

// Bind binds the socket to a port.
func (s *Stack) Bind(sk *Socket, port uint16) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sk.State != SockNew {
		return ErrAddrInUse
	}
	if _, used := s.listeners[port]; used {
		return ErrAddrInUse
	}
	sk.State = SockBound
	sk.Port = port
	return nil
}

// Listen turns a bound socket into a listener with the given backlog.
func (s *Stack) Listen(sk *Socket, backlog int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sk.State != SockBound {
		return ErrNotBound
	}
	if backlog <= 0 {
		backlog = 128
	}
	l := &Listener{Port: sk.Port, maxlog: backlog}
	s.listeners[sk.Port] = l
	sk.State = SockListening
	sk.Lst = l
	return nil
}

// Accept pops a pending connection, or reports ErrWouldBlock.
func (s *Stack) Accept(sk *Socket) (*Conn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sk.State != SockListening || sk.Lst == nil {
		return nil, ErrNotListen
	}
	if len(sk.Lst.backlog) == 0 {
		return nil, ErrWouldBlock
	}
	c := sk.Lst.backlog[0]
	sk.Lst.backlog = sk.Lst.backlog[1:]
	s.AcceptedTotal++
	return c, nil
}

// Dial simulates a remote client connecting to port: the new connection is
// placed on the listener's backlog and returned for the client to use.
func (s *Stack) Dial(port uint16) (*Conn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.listeners[port]
	if !ok {
		return nil, ErrRefused
	}
	if len(l.backlog) >= l.maxlog {
		return nil, fmt.Errorf("netstack: backlog full on port %d", port)
	}
	c := &Conn{RemotePort: s.nextEphem}
	s.nextEphem++
	if s.nextEphem == 0 {
		s.nextEphem = 40000
	}
	l.backlog = append(l.backlog, c)
	return c, nil
}

// Connect performs a guest-side outbound connection to a listening port on
// the same stack (used by applications that dial out, e.g. a database
// worker connecting to a coordinator).
func (s *Stack) Connect(sk *Socket, port uint16) (*Conn, error) {
	c, err := s.Dial(port)
	if err != nil {
		return nil, err
	}
	sk.State = SockConnected
	sk.Conn = c
	return c, nil
}

// Pending returns the number of queued connections on a port's listener.
func (s *Stack) Pending(port uint16) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.listeners[port]
	if !ok {
		return 0
	}
	return len(l.backlog)
}

// ServerRead is the kernel-facing read on an accepted connection.
func ServerRead(c *Conn, buf []byte) (int, error) { return c.serverRead(buf) }

// ServerWrite is the kernel-facing write on an accepted connection.
func ServerWrite(c *Conn, buf []byte) (int, error) { return c.serverWrite(buf) }
