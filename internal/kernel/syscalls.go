package kernel

// x86-64 syscall numbers for the subset the simulated kernel implements.
// Values match arch/x86/entry/syscalls/syscall_64.tbl so that metadata,
// seccomp programs, and monitor rules read like their real counterparts.
const (
	SysRead           = 0
	SysWrite          = 1
	SysOpen           = 2
	SysClose          = 3
	SysStat           = 4
	SysFstat          = 5
	SysLseek          = 8
	SysMmap           = 9
	SysMprotect       = 10
	SysMunmap         = 11
	SysBrk            = 12
	SysMremap         = 25
	SysGetpid         = 39
	SysSendfile       = 40
	SysSocket         = 41
	SysConnect        = 42
	SysAccept         = 43
	SysSendto         = 44
	SysRecvfrom       = 45
	SysBind           = 49
	SysListen         = 50
	SysClone          = 56
	SysFork           = 57
	SysVfork          = 58
	SysExecve         = 59
	SysExit           = 60
	SysChmod          = 90
	SysPtrace         = 101
	SysSetuid         = 105
	SysSetgid         = 106
	SysSetreuid       = 113
	SysRemapFilePages = 216
	SysExitGroup      = 231
	SysOpenat         = 257
	SysAccept4        = 288
	SysExecveat       = 322
)

// Names maps implemented syscall numbers to their names.
var Names = map[uint32]string{
	SysRead: "read", SysWrite: "write", SysOpen: "open", SysClose: "close",
	SysStat: "stat", SysFstat: "fstat", SysLseek: "lseek", SysMmap: "mmap",
	SysMprotect: "mprotect", SysMunmap: "munmap", SysBrk: "brk",
	SysMremap: "mremap", SysGetpid: "getpid", SysSendfile: "sendfile",
	SysSocket: "socket", SysConnect: "connect", SysAccept: "accept",
	SysSendto: "sendto", SysRecvfrom: "recvfrom", SysBind: "bind",
	SysListen: "listen", SysClone: "clone", SysFork: "fork",
	SysVfork: "vfork", SysExecve: "execve", SysExit: "exit",
	SysChmod: "chmod", SysPtrace: "ptrace", SysSetuid: "setuid",
	SysSetgid: "setgid", SysSetreuid: "setreuid",
	SysRemapFilePages: "remap_file_pages", SysExitGroup: "exit_group",
	SysOpenat: "openat", SysAccept4: "accept4", SysExecveat: "execveat",
}

// Name returns the syscall's name, or a numeric fallback.
func Name(nr uint32) string {
	if n, ok := Names[nr]; ok {
		return n
	}
	return "sys_" + itoa(int(nr))
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// SensitiveSyscalls is Table 1 of the paper: the 20 security-critical
// system calls BASTION protects, grouped by the attack vector that
// commonly abuses them.
var SensitiveSyscalls = []uint32{
	// Arbitrary code execution.
	SysExecve, SysExecveat, SysFork, SysVfork, SysClone, SysPtrace,
	// Memory permissions.
	SysMprotect, SysMmap, SysMremap, SysRemapFilePages,
	// Privilege escalation.
	SysChmod, SysSetuid, SysSetgid, SysSetreuid,
	// Networking.
	SysSocket, SysBind, SysConnect, SysListen, SysAccept, SysAccept4,
}

// SensitiveClass names the Table 1 classification of a sensitive syscall.
func SensitiveClass(nr uint32) string {
	switch nr {
	case SysExecve, SysExecveat, SysFork, SysVfork, SysClone, SysPtrace:
		return "Arbitrary Code Execution"
	case SysMprotect, SysMmap, SysMremap, SysRemapFilePages:
		return "Memory Permissions"
	case SysChmod, SysSetuid, SysSetgid, SysSetreuid:
		return "Privilege Escalation"
	case SysSocket, SysBind, SysConnect, SysListen, SysAccept, SysAccept4:
		return "Networking"
	}
	return ""
}

// IsSensitive reports whether nr is in Table 1's sensitive set.
func IsSensitive(nr uint32) bool { return SensitiveClass(nr) != "" }

// FileSystemSyscalls is the §11.2 extension set: file-system-related
// syscalls and variants whose protection Table 7 evaluates.
var FileSystemSyscalls = []uint32{
	SysRead, SysWrite, SysOpen, SysOpenat, SysClose, SysStat, SysFstat,
	SysLseek, SysSendfile, SysSendto, SysRecvfrom,
}

// Errno values (positive; syscalls return -errno).
const (
	EPERM        = 1
	ENOENT       = 2
	EINTR        = 4
	EBADF        = 9
	EAGAIN       = 11
	ENOMEM       = 12
	EACCES       = 13
	EFAULT       = 14
	EEXIST       = 17
	ENOTDIR      = 20
	EISDIR       = 21
	EINVAL       = 22
	ENOSYS       = 38
	EADDRINUSE   = 98
	ECONNREFUSED = 111
)

// mmap prot and flag constants (Linux values).
const (
	ProtNone  = 0x0
	ProtRead  = 0x1
	ProtWrite = 0x2
	ProtExec  = 0x4

	MapShared    = 0x01
	MapPrivate   = 0x02
	MapFixed     = 0x10
	MapAnonymous = 0x20
)
