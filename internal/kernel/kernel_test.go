package kernel_test

import (
	"errors"
	"strings"
	"testing"

	"bastion/internal/apps/guestlibc"
	"bastion/internal/ir"
	"bastion/internal/kernel"
	"bastion/internal/kernel/fs"
	"bastion/internal/seccomp"
	"bastion/internal/vm"
)

// newGuest builds a machine+process pair around a program assembled by
// build, which receives a libc-populated program to extend.
func newGuest(t *testing.T, build func(p *ir.Program)) (*vm.Machine, *kernel.Process, *kernel.Kernel) {
	t.Helper()
	p := guestlibc.NewProgram()
	build(p)
	if err := p.Link(); err != nil {
		t.Fatalf("Link: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	clock := &vm.Clock{}
	k := kernel.New(clock)
	m, err := vm.New(p, vm.WithOS(k), vm.WithClock(clock), vm.WithMaxSteps(1<<22))
	if err != nil {
		t.Fatalf("vm.New: %v", err)
	}
	proc := k.Register(m)
	return m, proc, k
}

// storeString emits IR that copies a Go string (plus NUL) into a local
// buffer and returns the buffer's address register.
func storeString(b *ir.Builder, local string, s string) ir.Reg {
	addr := b.Lea(local, 0)
	for i := 0; i < len(s); i++ {
		b.Store(addr, int64(i), ir.Imm(int64(s[i])), 1)
	}
	b.Store(addr, int64(len(s)), ir.Imm(0), 1)
	return addr
}

func TestFileReadWriteThroughSyscalls(t *testing.T) {
	m, proc, k := newGuest(t, func(p *ir.Program) {
		b := ir.NewBuilder("main", 0)
		b.Local("path", 32)
		b.Local("buf", 64)
		path := storeString(b, "path", "/etc/motd")
		fd := b.Call("open", ir.R(path), ir.Imm(fs.ORdonly), ir.Imm(0))
		// Keep fd in a memory slot, as compiled C would spill it; this is
		// also the pattern BASTION's use-def analysis traces.
		b.Local("fd", 8)
		b.StoreLocal("fd", ir.R(fd))
		buf := b.Lea("buf", 0)
		fd1 := b.LoadLocal("fd")
		n := b.Call("read", ir.R(fd1), ir.R(buf), ir.Imm(64))
		buf2 := b.Lea("buf", 0)
		b.Call("write", ir.Imm(1), ir.R(buf2), ir.R(n)) // echo to stdout
		fd2 := b.LoadLocal("fd")
		b.Call("close", ir.R(fd2))
		b.Ret(ir.R(n))
		p.AddFunc(b.Build())
	})
	if err := k.FS.WriteFile("/etc/motd", []byte("welcome"), fs.ModeRead); err != nil {
		t.Fatal(err)
	}
	got, err := m.CallFunction("main")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != 7 {
		t.Fatalf("read returned %d, want 7", got)
	}
	if proc.Stdout.String() != "welcome" {
		t.Fatalf("stdout = %q", proc.Stdout.String())
	}
	if proc.SyscallCounts[kernel.SysOpen] != 1 || proc.SyscallCounts[kernel.SysRead] != 1 {
		t.Fatalf("counts = %v", proc.SyscallCounts)
	}
}

func TestOpenMissingFileReturnsENOENT(t *testing.T) {
	m, _, _ := newGuest(t, func(p *ir.Program) {
		b := ir.NewBuilder("main", 0)
		b.Local("path", 16)
		path := storeString(b, "path", "/nope")
		fd := b.Call("open", ir.R(path), ir.Imm(fs.ORdonly), ir.Imm(0))
		b.Ret(ir.R(fd))
		p.AddFunc(b.Build())
	})
	got, err := m.CallFunction("main")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if int64(got) != -kernel.ENOENT {
		t.Fatalf("open = %d, want -ENOENT", int64(got))
	}
}

func TestMmapMprotectAndEvents(t *testing.T) {
	m, proc, _ := newGuest(t, func(p *ir.Program) {
		b := ir.NewBuilder("main", 0)
		addr := b.Call("mmap", ir.Imm(0), ir.Imm(8192),
			ir.Imm(kernel.ProtRead|kernel.ProtWrite),
			ir.Imm(kernel.MapPrivate|kernel.MapAnonymous), ir.Imm(-1), ir.Imm(0))
		b.Store(addr, 0, ir.Imm(0x55), 8)
		v := b.Load(addr, 0, 8)
		b.Call("mprotect", ir.R(addr), ir.Imm(4096), ir.Imm(kernel.ProtRead|kernel.ProtExec))
		b.Ret(ir.R(v))
		p.AddFunc(b.Build())
	})
	got, err := m.CallFunction("main")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != 0x55 {
		t.Fatalf("load after mmap = %#x", got)
	}
	if !proc.HasEvent(kernel.EventMemExec, "mprotect exec") {
		t.Fatalf("missing mem-exec event; events = %v", proc.Events)
	}
}

func TestMmapWXLogsEvent(t *testing.T) {
	m, proc, _ := newGuest(t, func(p *ir.Program) {
		b := ir.NewBuilder("main", 0)
		a := b.Call("mmap", ir.Imm(0), ir.Imm(4096),
			ir.Imm(kernel.ProtRead|kernel.ProtWrite|kernel.ProtExec),
			ir.Imm(kernel.MapPrivate|kernel.MapAnonymous), ir.Imm(-1), ir.Imm(0))
		b.Ret(ir.R(a))
		p.AddFunc(b.Build())
	})
	if _, err := m.CallFunction("main"); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !proc.HasEvent(kernel.EventMemExec, "mmap W+X") {
		t.Fatalf("missing W+X event; events = %v", proc.Events)
	}
}

// buildSockaddr emits IR storing an AF_INET sockaddr with the port into a
// 16-byte local and returns its address register.
func buildSockaddr(b *ir.Builder, local string, port uint16) ir.Reg {
	sa := b.Lea(local, 0)
	b.Store(sa, 0, ir.Imm(2), 2) // AF_INET
	b.Store(sa, 2, ir.Imm(int64(port>>8)), 1)
	b.Store(sa, 3, ir.Imm(int64(port&0xff)), 1)
	return sa
}

func TestSocketServerLoop(t *testing.T) {
	m, proc, k := newGuest(t, func(p *ir.Program) {
		// setup(): socket/bind(80)/listen; returns listen fd.
		sb := ir.NewBuilder("server_setup", 0)
		sb.Local("sa", 16)
		sb.Local("sfd", 8)
		sfd := sb.Call("socket", ir.Imm(2), ir.Imm(1), ir.Imm(0))
		sb.StoreLocal("sfd", ir.R(sfd))
		sa := buildSockaddr(sb, "sa", 80)
		sfd1 := sb.LoadLocal("sfd")
		sb.Call("bind", ir.R(sfd1), ir.R(sa), ir.Imm(16))
		sfd2 := sb.LoadLocal("sfd")
		sb.Call("listen", ir.R(sfd2), ir.Imm(128))
		sfd3 := sb.LoadLocal("sfd")
		sb.Ret(ir.R(sfd3))
		p.AddFunc(sb.Build())

		// handle(lfd): accept, read request, write response, close.
		hb := ir.NewBuilder("server_handle", 1)
		hb.Local("peer", 16)
		hb.Local("buf", 128)
		lfdr := hb.LoadLocal("p0")
		peer := hb.Lea("peer", 0)
		cfd := hb.Call("accept", ir.R(lfdr), ir.R(peer), ir.Imm(0))
		buf := hb.Lea("buf", 0)
		n := hb.Call("read", ir.R(cfd), ir.R(buf), ir.Imm(128))
		hb.Call("write", ir.R(cfd), ir.R(buf), ir.R(n)) // echo
		hb.Call("close", ir.R(cfd))
		hb.Ret(ir.R(n))
		p.AddFunc(hb.Build())

		mainb := ir.NewBuilder("main", 0)
		mainb.Ret(ir.Imm(0))
		p.AddFunc(mainb.Build())
	})
	_ = proc

	lfd, err := m.CallFunction("server_setup")
	if err != nil {
		t.Fatalf("setup: %v", err)
	}
	if int64(lfd) < 3 {
		t.Fatalf("listen fd = %d", int64(lfd))
	}
	// Client connects and sends a request.
	conn, err := k.Net.Dial(80)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	conn.ClientWrite([]byte("GET /"))
	n, err := m.CallFunction("server_handle", lfd)
	if err != nil {
		t.Fatalf("handle: %v", err)
	}
	if n != 5 {
		t.Fatalf("handled %d bytes", n)
	}
	if got := string(conn.ClientReadAll()); got != "GET /" {
		t.Fatalf("echo = %q", got)
	}
	// No pending connection: accept yields -EAGAIN, read on bad fd follows.
	n2, err := m.CallFunction("server_handle", lfd)
	if err != nil {
		t.Fatalf("handle empty: %v", err)
	}
	if int64(n2) >= 0 {
		t.Fatalf("read after failed accept = %d, want negative errno", int64(n2))
	}
}

func TestSeccompKillOnDeniedSyscall(t *testing.T) {
	m, proc, _ := newGuest(t, func(p *ir.Program) {
		b := ir.NewBuilder("main", 0)
		b.Local("path", 16)
		path := storeString(b, "path", "/bin/sh")
		b.Call("execve", ir.R(path), ir.Imm(0), ir.Imm(0))
		b.Ret(ir.Imm(0))
		p.AddFunc(b.Build())
	})
	pol := &seccomp.Policy{Default: seccomp.RetAllow, Actions: map[uint32]uint32{
		kernel.SysExecve: seccomp.RetKill,
	}}
	prog, err := pol.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if err := proc.SetSeccompFilter(prog); err != nil {
		t.Fatal(err)
	}
	_, err = m.CallFunction("main")
	var ke *vm.KillError
	if !errors.As(err, &ke) || ke.By != "seccomp" {
		t.Fatalf("err = %v, want seccomp kill", err)
	}
	if !proc.Killed() {
		t.Fatal("process not marked killed")
	}
	if proc.HasEvent(kernel.EventExec, "") {
		t.Fatal("execve executed despite kill")
	}
}

// countingTracer allows everything, counting traps; optionally kills.
type countingTracer struct {
	traps int
	kill  bool
}

func (c *countingTracer) Trap(p *kernel.Process) error {
	c.traps++
	if c.kill {
		return &vm.KillError{By: "monitor", Reason: "test kill"}
	}
	return nil
}

func TestSeccompTraceInvokesTracer(t *testing.T) {
	build := func(p *ir.Program) {
		b := ir.NewBuilder("main", 0)
		b.Call("getpid")
		b.Call("mprotect", ir.Imm(0), ir.Imm(0), ir.Imm(0)) // fails, but traps first
		b.Ret(ir.Imm(0))
		p.AddFunc(b.Build())
	}
	pol := &seccomp.Policy{Default: seccomp.RetAllow, Actions: map[uint32]uint32{
		kernel.SysMprotect: seccomp.RetTrace,
	}}
	prog, err := pol.Compile()
	if err != nil {
		t.Fatal(err)
	}

	m, proc, _ := newGuest(t, build)
	tr := &countingTracer{}
	proc.SetSeccompFilter(prog)
	proc.SetTracer(tr)
	if _, err := m.CallFunction("main"); err != nil {
		t.Fatalf("run: %v", err)
	}
	if tr.traps != 1 {
		t.Fatalf("traps = %d, want 1 (getpid must not trap)", tr.traps)
	}
	if proc.TrapCount != 1 {
		t.Fatalf("TrapCount = %d", proc.TrapCount)
	}

	// A killing tracer terminates the guest.
	m2, proc2, _ := newGuest(t, build)
	proc2.SetSeccompFilter(prog)
	proc2.SetTracer(&countingTracer{kill: true})
	_, err = m2.CallFunction("main")
	var ke *vm.KillError
	if !errors.As(err, &ke) || ke.By != "monitor" {
		t.Fatalf("err = %v, want monitor kill", err)
	}
}

func TestTraceWithoutTracerIsENOSYS(t *testing.T) {
	m, proc, _ := newGuest(t, func(p *ir.Program) {
		b := ir.NewBuilder("main", 0)
		r := b.Call("getpid")
		b.Ret(ir.R(r))
		p.AddFunc(b.Build())
	})
	pol := &seccomp.Policy{Default: seccomp.RetTrace, Actions: map[uint32]uint32{}}
	prog, _ := pol.Compile()
	proc.SetSeccompFilter(prog)
	got, err := m.CallFunction("main")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if int64(got) != -kernel.ENOSYS {
		t.Fatalf("getpid under TRACE w/o tracer = %d", int64(got))
	}
}

func TestExecveRecordsEventAndExits(t *testing.T) {
	m, proc, k := newGuest(t, func(p *ir.Program) {
		b := ir.NewBuilder("main", 0)
		b.Local("path", 16)
		path := storeString(b, "path", "/bin/sh")
		b.Call("execve", ir.R(path), ir.Imm(0), ir.Imm(0))
		b.Ret(ir.Imm(9)) // never reached
		p.AddFunc(b.Build())
	})
	k.FS.WriteFile("/bin/sh", []byte("#!"), fs.ModeRead|fs.ModeExec)
	_, err := m.CallFunction("main")
	var xe *vm.ExitError
	if err != nil && !errors.As(err, &xe) {
		t.Fatalf("err = %v", err)
	}
	if !proc.HasEvent(kernel.EventExec, "/bin/sh") {
		t.Fatalf("missing exec event: %v", proc.Events)
	}
	if !m.Halted() {
		t.Fatal("machine still running after execve")
	}
}

func TestExecveOfNonExecutableFails(t *testing.T) {
	m, proc, k := newGuest(t, func(p *ir.Program) {
		b := ir.NewBuilder("main", 0)
		b.Local("path", 16)
		path := storeString(b, "path", "/data")
		r := b.Call("execve", ir.R(path), ir.Imm(0), ir.Imm(0))
		b.Ret(ir.R(r))
		p.AddFunc(b.Build())
	})
	k.FS.WriteFile("/data", []byte("x"), fs.ModeRead)
	got, err := m.CallFunction("main")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if int64(got) != -kernel.EACCES {
		t.Fatalf("execve = %d, want -EACCES", int64(got))
	}
	if proc.HasEvent(kernel.EventExec, "") {
		t.Fatal("exec event for failed execve")
	}
}

func TestSetuidSemantics(t *testing.T) {
	m, proc, _ := newGuest(t, func(p *ir.Program) {
		b := ir.NewBuilder("main", 0)
		r1 := b.Call("setuid", ir.Imm(33)) // root -> www-data: ok
		r2 := b.Call("setuid", ir.Imm(0))  // www-data -> root: EPERM
		sum := b.Bin(ir.OpMul, ir.R(r1), ir.Imm(1000))
		out := b.Bin(ir.OpAdd, ir.R(sum), ir.R(r2))
		b.Ret(ir.R(out))
		p.AddFunc(b.Build())
	})
	proc.UID = 0
	got, err := m.CallFunction("main")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if int64(got) != -kernel.EPERM { // 0*1000 + (-EPERM)
		t.Fatalf("result = %d", int64(got))
	}
	if proc.UID != 33 {
		t.Fatalf("uid = %d", proc.UID)
	}
	if !proc.HasEvent(kernel.EventSetuid, "uid 0 -> 33") {
		t.Fatalf("events = %v", proc.Events)
	}
}

func TestBrkGrowsHeap(t *testing.T) {
	m, _, _ := newGuest(t, func(p *ir.Program) {
		b := ir.NewBuilder("main", 0)
		cur := b.Call("brk", ir.Imm(0))
		want := b.Bin(ir.OpAdd, ir.R(cur), ir.Imm(8192))
		nb := b.Call("brk", ir.R(want))
		b.Store(cur, 0, ir.Imm(0xaa), 8) // newly mapped heap is writable
		v := b.Load(cur, 0, 8)
		diff := b.Bin(ir.OpSub, ir.R(nb), ir.R(cur))
		sum := b.Bin(ir.OpAdd, ir.R(diff), ir.R(v))
		b.Ret(ir.R(sum))
		p.AddFunc(b.Build())
	})
	got, err := m.CallFunction("main")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != 8192+0xaa {
		t.Fatalf("got %d", got)
	}
}

func TestPtraceFacilityChargesClock(t *testing.T) {
	m, proc, k := newGuest(t, func(p *ir.Program) {
		b := ir.NewBuilder("main", 0)
		r := b.Call("getpid")
		b.Ret(ir.R(r))
		p.AddFunc(b.Build())
	})
	if _, err := m.CallFunction("main"); err != nil {
		t.Fatal(err)
	}
	before := k.Clock.Cycles
	_ = proc.GetRegs()
	if k.Clock.Cycles != before+k.Costs.GetRegs {
		t.Fatalf("GetRegs charged %d", k.Clock.Cycles-before)
	}
	before = k.Clock.Cycles
	buf := make([]byte, 64)
	if err := proc.ReadMem(ir.StackTop-128, buf); err != nil {
		t.Fatalf("ReadMem: %v", err)
	}
	want := k.Costs.ReadMemBase + k.Costs.ReadMemPerWord*8
	if k.Clock.Cycles != before+want {
		t.Fatalf("ReadMem charged %d, want %d", k.Clock.Cycles-before, want)
	}
	// ReadWord round-trips a stack value.
	if err := m.Mem.Poke(ir.StackTop-256, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	v, err := proc.ReadWord(ir.StackTop - 256)
	if err != nil || v != 0x0807060504030201 {
		t.Fatalf("ReadWord = %#x, %v", v, err)
	}
}

func TestUnknownSyscallENOSYS(t *testing.T) {
	m, _, _ := newGuest(t, func(p *ir.Program) {
		w := ir.NewBuilder("weird", 0)
		r := w.Syscall(404)
		w.Ret(ir.R(r))
		p.AddFunc(w.Build())
		b := ir.NewBuilder("main", 0)
		r2 := b.Call("weird")
		b.Ret(ir.R(r2))
		p.AddFunc(b.Build())
	})
	got, err := m.CallFunction("main")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if int64(got) != -kernel.ENOSYS {
		t.Fatalf("syscall 404 = %d", int64(got))
	}
}

func TestSensitiveTableShape(t *testing.T) {
	if len(kernel.SensitiveSyscalls) != 20 {
		t.Fatalf("sensitive set has %d entries, want 20 (Table 1)", len(kernel.SensitiveSyscalls))
	}
	for _, nr := range kernel.SensitiveSyscalls {
		if !kernel.IsSensitive(nr) {
			t.Errorf("IsSensitive(%s) = false", kernel.Name(nr))
		}
		if kernel.SensitiveClass(nr) == "" {
			t.Errorf("no class for %s", kernel.Name(nr))
		}
	}
	if kernel.IsSensitive(kernel.SysRead) {
		t.Error("read should not be sensitive")
	}
	if kernel.Name(kernel.SysExecve) != "execve" || kernel.Name(9999) != "sys_9999" {
		t.Error("Name() misbehaves")
	}
}

func TestReadCStringViaPtrace(t *testing.T) {
	m, proc, _ := newGuest(t, func(p *ir.Program) {
		b := ir.NewBuilder("main", 0)
		b.Ret(ir.Imm(0))
		p.AddFunc(b.Build())
	})
	if err := m.Mem.Poke(ir.StackTop-512, append([]byte("hello"), 0)); err != nil {
		t.Fatal(err)
	}
	s, err := proc.ReadCString(ir.StackTop-512, 128)
	if err != nil || s != "hello" {
		t.Fatalf("ReadCString = %q, %v", s, err)
	}
	if _, err := proc.ReadCString(0xdead000, 16); err == nil {
		t.Fatal("ReadCString of unmapped memory succeeded")
	}
	if !strings.Contains(kernel.Name(kernel.SysAccept4), "accept4") {
		t.Fatal("name table broken")
	}
}
