package workload_test

import (
	"errors"
	"strings"
	"testing"

	"bastion/internal/core"
	"bastion/internal/core/monitor"
	"bastion/internal/kernel"
	"bastion/internal/vm"
	"bastion/internal/workload"
)

// launch prepares a protected (or bare) instance of a target.
func launch(t *testing.T, target workload.Target, protected bool) *core.Protected {
	t.Helper()
	prog := target.Build()
	k := kernel.New(nil)
	if err := target.Fixture(k); err != nil {
		t.Fatal(err)
	}
	art, err := core.Compile(prog, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var prot *core.Protected
	if protected {
		prot, err = core.Launch(art, k, monitor.DefaultConfig(), vm.WithMaxSteps(1<<30))
	} else {
		prot, err = core.LaunchUnprotected(art, k, vm.WithMaxSteps(1<<30))
	}
	if err != nil {
		t.Fatal(err)
	}
	return prot
}

func TestTargetsRunProtected(t *testing.T) {
	for _, name := range []string{"nginx", "sqlite", "vsftpd"} {
		name := name
		t.Run(name, func(t *testing.T) {
			target, err := workload.NewTarget(name)
			if err != nil {
				t.Fatal(err)
			}
			prot := launch(t, target, true)
			res, err := workload.Run(target, prot, 8)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Units != 8 || res.Bytes == 0 {
				t.Fatalf("result = %+v", res)
			}
			if res.InitCycles == 0 || res.TotalCycles == 0 {
				t.Fatalf("cycles = %+v", res)
			}
			if res.MonitorCycles == 0 || res.MonitorCycles >= res.TotalCycles {
				t.Fatalf("monitor share = %d of %d", res.MonitorCycles, res.TotalCycles)
			}
			if res.Traps == 0 {
				t.Fatal("no traps under protection")
			}
			if len(prot.Monitor.Violations) != 0 {
				t.Fatalf("violations: %v", prot.Monitor.Violations)
			}
			if res.PerUnitTotal() <= 0 || res.PerUnitMonitor() <= 0 {
				t.Fatal("per-unit accessors broken")
			}
		})
	}
}

func TestTargetsRunUnprotected(t *testing.T) {
	for _, name := range []string{"nginx", "sqlite", "vsftpd"} {
		target, err := workload.NewTarget(name)
		if err != nil {
			t.Fatal(err)
		}
		prot := launch(t, target, false)
		res, err := workload.Run(target, prot, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.MonitorCycles != 0 || res.Traps != 0 {
			t.Fatalf("%s: monitor activity without monitor: %+v", name, res)
		}
	}
}

func TestUnknownTarget(t *testing.T) {
	if _, err := workload.NewTarget("postgres"); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnitLabelsAndWorkers(t *testing.T) {
	want := map[string]struct {
		label   string
		workers int
	}{
		"nginx":  {"request", 32},
		"sqlite": {"transaction", 48},
		"vsftpd": {"transfer", 1},
	}
	for name, w := range want {
		target, err := workload.NewTarget(name)
		if err != nil {
			t.Fatal(err)
		}
		if target.UnitLabel() != w.label {
			t.Errorf("%s label = %q", name, target.UnitLabel())
		}
		if target.Workers() != w.workers {
			t.Errorf("%s workers = %d", name, target.Workers())
		}
		if target.ThinkPerUnit() == 0 && name != "nginx" {
			t.Errorf("%s has no think model", name)
		}
	}
}

func TestResultZeroUnits(t *testing.T) {
	var r workload.Result
	if r.PerUnitTotal() != 0 || r.PerUnitMonitor() != 0 {
		t.Fatal("zero-unit division")
	}
}

func TestNginxRejectsShortBody(t *testing.T) {
	// Unit() verifies the byte count end-to-end; serve a wrong-size page
	// and the driver must fail loudly rather than record bogus throughput.
	target := workload.NewNginx()
	prog := target.Build()
	k := kernel.New(nil)
	if err := target.Fixture(k); err != nil {
		t.Fatal(err)
	}
	// Overwrite the fixture page with a short one.
	if err := k.FS.WriteFile("/srv/index.html", []byte("tiny"), 0o4); err != nil {
		t.Fatal(err)
	}
	art, err := core.Compile(prog, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	prot, err := core.LaunchUnprotected(art, k, vm.WithMaxSteps(1<<30))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workload.Run(target, prot, 1); err == nil || !strings.Contains(err.Error(), "served") {
		t.Fatalf("short body not detected: %v", err)
	}
}

// failAfter wraps a target and fails its Unit at a fixed index.
type failAfter struct {
	workload.Target
	at int
}

func (f *failAfter) Unit(p *core.Protected, i int) (int64, error) {
	if i == f.at {
		return 0, errFault
	}
	return f.Target.Unit(p, i)
}

var errFault = errors.New("injected unit fault")

// TestRunPartialCountersOnUnitError: when a unit fails, the returned
// Result still carries the steady-state counters for the units that did
// complete, so supervisors can account for real partial progress.
func TestRunPartialCountersOnUnitError(t *testing.T) {
	target := workload.NewNginx()
	prot := launch(t, target, true)

	res, err := workload.Run(&failAfter{Target: target, at: 3}, prot, 6)
	if !errors.Is(err, errFault) {
		t.Fatalf("err = %v, want the injected fault", err)
	}
	if res.Units != 3 {
		t.Fatalf("partial result recorded %d units, want 3", res.Units)
	}
	if res.InitCycles == 0 {
		t.Error("partial result lost init cycles")
	}
	if res.TotalCycles == 0 || res.MonitorCycles == 0 || res.Traps == 0 {
		t.Errorf("partial result lost steady-state counters: %+v", res)
	}

	// The partial counters must equal a clean 3-unit run's exactly.
	clean, err := workload.Run(workload.NewNginx(), launch(t, workload.NewNginx(), true), 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != clean.Bytes || res.TotalCycles != clean.TotalCycles ||
		res.MonitorCycles != clean.MonitorCycles || res.Traps != clean.Traps {
		t.Errorf("partial result %+v != clean 3-unit run %+v", res, clean)
	}
}
