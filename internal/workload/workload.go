// Package workload implements the paper's three benchmark drivers as
// deterministic client generators over the simulated network: a wrk-like
// HTTP load for NGINX (§9.2), a DBT2-like new-order transaction stream for
// SQLite, and a dkftpbench-like download loop for vsFTPd. A driver owns
// the client half of every connection; the guest application executes the
// server half instruction by instruction on the simulated machine.
package workload

import (
	"bytes"
	"fmt"

	"bastion/internal/apps/nginx"
	"bastion/internal/apps/sqlitedb"
	"bastion/internal/apps/vsftpd"
	"bastion/internal/core"
	"bastion/internal/ir"
	"bastion/internal/kernel"
	"bastion/internal/kernel/fs"
	"bastion/internal/kernel/netstack"
)

// Target drives one guest application through its benchmark.
type Target interface {
	// Name is the application name ("nginx", "sqlite", "vsftpd").
	Name() string
	// Build assembles a fresh guest program.
	Build() *ir.Program
	// Fixture prepares kernel-side state (files, peer listeners).
	Fixture(k *kernel.Kernel) error
	// Init runs guest initialization (the paper's init phase).
	Init(p *core.Protected) error
	// Unit performs one work unit, returning application bytes moved.
	Unit(p *core.Protected, i int) (int64, error)
	// UnitLabel names the unit ("request", "transaction", "transfer").
	UnitLabel() string
	// Workers is the deployment concurrency the paper configures for this
	// application; the bench's throughput model shares one monitor among
	// this many workers.
	Workers() int
	// ThinkPerUnit is the modeled per-unit server compute our substrate
	// does not execute (SQL planning, TLS, header processing); charged to
	// the shared clock by Run.
	ThinkPerUnit() uint64
}

// Result summarizes a measured run.
type Result struct {
	Units         int
	Bytes         int64
	InitCycles    uint64 // init-phase cycles (excluded from steady state)
	TotalCycles   uint64 // steady-state cycles including monitor work
	MonitorCycles uint64 // monitor-attributed share of TotalCycles
	Traps         uint64
}

// PerUnitTotal returns steady-state cycles per unit.
func (r Result) PerUnitTotal() float64 {
	if r.Units == 0 {
		return 0
	}
	return float64(r.TotalCycles) / float64(r.Units)
}

// PerUnitMonitor returns monitor cycles per unit.
func (r Result) PerUnitMonitor() float64 {
	if r.Units == 0 {
		return 0
	}
	return float64(r.MonitorCycles) / float64(r.Units)
}

// Run initializes the target and executes units, separating init-phase
// from steady-state cycle counts. On a unit error the returned Result
// still carries the steady-state counters accumulated up to the failure
// (units completed, cycles, monitor share, traps), so supervisors that
// restart a failed guest can account for real partial progress.
func Run(t Target, p *core.Protected, units int) (Result, error) {
	var res Result
	startInit := p.Kernel.Clock.Cycles
	if err := t.Init(p); err != nil {
		res.InitCycles = p.Kernel.Clock.Cycles - startInit
		return res, fmt.Errorf("workload %s init: %w", t.Name(), err)
	}
	res.InitCycles = p.Kernel.Clock.Cycles - startInit
	err := steady(t, p, 0, units, &res)
	return res, err
}

// Continue executes units against an already-initialized target without
// re-running Init, numbering them base..base+units-1 so stateful drivers
// (SQLite transaction ids, vsFTPd data ports) pick up exactly where the
// previous slice stopped. Run(t, p, r) followed by Continue(t, p, r, u-r)
// is byte-identical to Run(t, p, u) — the property the policy hot-reload
// differential suite builds on: a live incarnation keeps serving across a
// mid-run segment boundary with zero guest downtime.
func Continue(t Target, p *core.Protected, base, units int) (Result, error) {
	var res Result
	err := steady(t, p, base, units, &res)
	return res, err
}

// steady is the shared steady-state unit loop: cycles, monitor share, and
// traps are measured as deltas across the slice, and a failing unit still
// settles the counters accumulated so far.
func steady(t Target, p *core.Protected, base, units int, res *Result) error {
	start := p.Kernel.Clock.Cycles
	monStart := p.Proc.MonitorCycles
	trapStart := p.Proc.TrapCount
	settle := func() {
		res.TotalCycles = p.Kernel.Clock.Cycles - start
		res.MonitorCycles = p.Proc.MonitorCycles - monStart
		res.Traps = p.Proc.TrapCount - trapStart
	}
	for i := 0; i < units; i++ {
		n, err := t.Unit(p, base+i)
		if err != nil {
			settle()
			return fmt.Errorf("workload %s unit %d: %w", t.Name(), base+i, err)
		}
		p.Kernel.Clock.Add(t.ThinkPerUnit())
		res.Bytes += n
		res.Units++
	}
	settle()
	return nil
}

// IOPerByte is the per-application I/O + protocol work model charged per
// byte moved through the simulated kernel (see internal/bench's
// measurement-model comment for calibration).
func IOPerByte(app string) uint64 {
	switch app {
	case "nginx":
		return 130
	case "sqlite":
		return 40
	case "vsftpd":
		return 26
	}
	return kernel.DefaultCosts().IOPerByte
}

// --- NGINX / wrk ---

// PageSize is the static page size the paper serves (6,745 bytes).
const PageSize = 6745

// Nginx is the wrk-like HTTP driver.
type Nginx struct {
	// GuestWorkers is the worker count ngx_init spawns (paper: 32).
	GuestWorkers int
	// Think models per-request server compute (see Target.ThinkPerUnit).
	Think uint64

	lfd uint64
}

// NewNginx returns the paper-configured NGINX target.
func NewNginx() *Nginx { return &Nginx{GuestWorkers: nginx.Workers, Think: 60_000} }

// Name implements Target.
func (t *Nginx) Name() string { return "nginx" }

// Build implements Target.
func (t *Nginx) Build() *ir.Program { return nginx.Build() }

// UnitLabel implements Target.
func (t *Nginx) UnitLabel() string { return "request" }

// Workers implements Target.
func (t *Nginx) Workers() int { return t.GuestWorkers }

// ThinkPerUnit implements Target.
func (t *Nginx) ThinkPerUnit() uint64 { return t.Think }

// Fixture implements Target.
func (t *Nginx) Fixture(k *kernel.Kernel) error {
	page := bytes.Repeat([]byte("BASTION simulated static page.\n"), PageSize/31+1)[:PageSize]
	if err := k.FS.WriteFile("/srv/index.html", page, fs.ModeRead); err != nil {
		return err
	}
	if err := k.FS.WriteFile("/usr/sbin/nginx", []byte{0x7f}, fs.ModeRead|fs.ModeExec); err != nil {
		return err
	}
	up := k.Net.NewSocket()
	if err := k.Net.Bind(up, nginx.UpstreamPort); err != nil {
		return err
	}
	return k.Net.Listen(up, 4096)
}

// Init implements Target.
func (t *Nginx) Init(p *core.Protected) error {
	lfd, err := p.Machine.CallFunction(nginx.FnInit, uint64(t.GuestWorkers))
	if err != nil {
		return err
	}
	t.lfd = lfd
	return nil
}

// ListenFD returns the guest listen fd established by Init (attack replay
// drives the request path through it).
func (t *Nginx) ListenFD() uint64 { return t.lfd }

// Unit implements Target: one HTTP request/response.
func (t *Nginx) Unit(p *core.Protected, i int) (int64, error) {
	conn, err := p.Kernel.Net.Dial(nginx.Port)
	if err != nil {
		return 0, err
	}
	if _, err := conn.ClientWrite([]byte("GET /index.html HTTP/1.1\r\nHost: bench\r\n\r\n")); err != nil {
		return 0, err
	}
	n, err := p.Machine.CallFunction(nginx.FnHandleRequest, t.lfd)
	if err != nil {
		return 0, err
	}
	body := conn.ClientReadAll()
	if int64(len(body)) != int64(n) || int64(n) != PageSize {
		return int64(n), fmt.Errorf("nginx served %d bytes (driver saw %d), want %d", int64(n), len(body), PageSize)
	}
	conn.Close()
	return int64(n), nil
}

// --- SQLite / DBT2 ---

// DBT2Terminals is the number of persistent client connections.
const DBT2Terminals = 8

// SQLite is the DBT2-like transaction driver.
type SQLite struct {
	GuestWorkers int
	Think        uint64

	lfd   uint64
	conns []*netstack.Conn
	fds   []uint64
}

// NewSQLite returns the paper-configured SQLite target (48 workers, as the
// clone count in Table 4 suggests).
func NewSQLite() *SQLite { return &SQLite{GuestWorkers: 48, Think: 1_000_000} }

// Name implements Target.
func (t *SQLite) Name() string { return "sqlite" }

// Build implements Target.
func (t *SQLite) Build() *ir.Program { return sqlitedb.Build() }

// UnitLabel implements Target.
func (t *SQLite) UnitLabel() string { return "transaction" }

// Workers implements Target.
func (t *SQLite) Workers() int { return t.GuestWorkers }

// ThinkPerUnit implements Target.
func (t *SQLite) ThinkPerUnit() uint64 { return t.Think }

// Fixture implements Target.
func (t *SQLite) Fixture(k *kernel.Kernel) error {
	return k.FS.MkdirAll("/var/db", fs.ModeRead|fs.ModeWrite|fs.ModeExec)
}

// Init implements Target: database init plus terminal connections.
func (t *SQLite) Init(p *core.Protected) error {
	lfd, err := p.Machine.CallFunction(sqlitedb.FnInit, uint64(t.GuestWorkers))
	if err != nil {
		return err
	}
	t.lfd = lfd
	t.conns = t.conns[:0]
	t.fds = t.fds[:0]
	for i := 0; i < DBT2Terminals; i++ {
		conn, err := p.Kernel.Net.Dial(sqlitedb.Port)
		if err != nil {
			return err
		}
		fd, err := p.Machine.CallFunction(sqlitedb.FnAccept, lfd)
		if err != nil {
			return err
		}
		if int64(fd) < 0 {
			return fmt.Errorf("accept returned %d", int64(fd))
		}
		t.conns = append(t.conns, conn)
		t.fds = append(t.fds, fd)
	}
	return nil
}

// ListenFD returns the guest listen fd established by Init.
func (t *SQLite) ListenFD() uint64 { return t.lfd }

// Terminal returns the i-th established terminal connection and its guest
// fd (attack replay delivers payloads through a live terminal).
func (t *SQLite) Terminal(i int) (*netstack.Conn, uint64) {
	if i < 0 || i >= len(t.conns) {
		return nil, 0
	}
	return t.conns[i], t.fds[i]
}

// Unit implements Target: one new-order transaction.
func (t *SQLite) Unit(p *core.Protected, i int) (int64, error) {
	term := i % len(t.conns)
	q := fmt.Sprintf("NEWORDER %d %d", 1000+i%500, 1+i%10)
	if _, err := t.conns[term].ClientWrite([]byte(q)); err != nil {
		return 0, err
	}
	id, err := p.Machine.CallFunction(sqlitedb.FnTxn, t.fds[term])
	if err != nil {
		return 0, err
	}
	if int64(id) != int64(1000+i%500) {
		return 0, fmt.Errorf("txn %d parsed id %d", i, int64(id))
	}
	resp := t.conns[term].ClientReadAll()
	if string(resp) != "OK" {
		return 0, fmt.Errorf("txn %d response %q", i, resp)
	}
	return int64(len(q) + len(resp) + 24), nil
}

// --- vsFTPd / dkftpbench ---

// FTPFileSize is the served file size. The paper downloads 100 MB; the
// simulated file is scaled down and the bench scales elapsed time back up.
const FTPFileSize = 256 * 1024

// Vsftpd is the dkftpbench-like download driver.
type Vsftpd struct {
	Think uint64

	lfd  uint64
	ctrl *netstack.Conn
	cfd  uint64
	port uint64
}

// NewVsftpd returns the paper-configured vsFTPd target (dkftpbench runs
// clients one after another: effectively a single active session).
func NewVsftpd() *Vsftpd { return &Vsftpd{Think: 120_000} }

// Name implements Target.
func (t *Vsftpd) Name() string { return "vsftpd" }

// Build implements Target.
func (t *Vsftpd) Build() *ir.Program { return vsftpd.Build() }

// UnitLabel implements Target.
func (t *Vsftpd) UnitLabel() string { return "transfer" }

// Workers implements Target.
func (t *Vsftpd) Workers() int { return 1 }

// ThinkPerUnit implements Target.
func (t *Vsftpd) ThinkPerUnit() uint64 { return t.Think }

// Fixture implements Target.
func (t *Vsftpd) Fixture(k *kernel.Kernel) error {
	blob := bytes.Repeat([]byte{0x5a}, FTPFileSize)
	return k.FS.WriteFile("/pub/file.bin", blob, fs.ModeRead)
}

// Init implements Target: server init and one logged-in session.
func (t *Vsftpd) Init(p *core.Protected) error {
	lfd, err := p.Machine.CallFunction(vsftpd.FnInit)
	if err != nil {
		return err
	}
	t.lfd = lfd
	ctrl, err := p.Kernel.Net.Dial(vsftpd.ControlPort)
	if err != nil {
		return err
	}
	if _, err := ctrl.ClientWrite([]byte("USER bench\r\nPASS x\r\n")); err != nil {
		return err
	}
	cfd, err := p.Machine.CallFunction(vsftpd.FnSession, lfd)
	if err != nil {
		return err
	}
	if int64(cfd) < 0 {
		return fmt.Errorf("session open returned %d", int64(cfd))
	}
	t.ctrl = ctrl
	t.cfd = cfd
	t.port = vsftpd.DataPortBase
	ctrl.ClientReadAll()
	return nil
}

// ListenFD returns the guest listen fd established by Init.
func (t *Vsftpd) ListenFD() uint64 { return t.lfd }

// Unit implements Target: one passive-mode download.
func (t *Vsftpd) Unit(p *core.Protected, i int) (int64, error) {
	t.port++
	if _, err := p.Machine.CallFunction(vsftpd.FnPasv, t.cfd, t.port); err != nil {
		return 0, err
	}
	data, err := p.Kernel.Net.Dial(uint16(t.port))
	if err != nil {
		return 0, err
	}
	n, err := p.Machine.CallFunction(vsftpd.FnRetr, t.cfd)
	if err != nil {
		return 0, err
	}
	got := data.ClientReadAll()
	if int64(len(got)) != int64(n) || int64(n) != FTPFileSize {
		return int64(n), fmt.Errorf("transfer %d moved %d bytes (driver saw %d)", i, int64(n), len(got))
	}
	t.ctrl.ClientReadAll()
	return int64(n), nil
}

// NewTarget constructs the named target with paper defaults.
func NewTarget(name string) (Target, error) {
	switch name {
	case "nginx":
		return NewNginx(), nil
	case "sqlite":
		return NewSQLite(), nil
	case "vsftpd":
		return NewVsftpd(), nil
	}
	return nil, fmt.Errorf("workload: unknown target %q", name)
}
