package workload_test

import (
	"testing"

	"bastion/internal/workload"
)

// TestSoakNginx sustains hundreds of protected requests: no violations, no
// fd leaks, no shadow-table exhaustion, and stable per-unit cost.
func TestSoakNginx(t *testing.T) {
	units := 400
	if testing.Short() {
		units = 40
	}
	target := workload.NewNginx()
	prot := launch(t, target, true)
	res, err := workload.Run(target, prot, units)
	if err != nil {
		t.Fatalf("soak: %v", err)
	}
	if len(prot.Monitor.Violations) != 0 {
		t.Fatalf("violations during soak: %v", prot.Monitor.Violations)
	}
	if res.Traps != uint64(units) {
		t.Fatalf("traps = %d, want %d (one accept4 per request)", res.Traps, units)
	}
	// Request handling closes both the connection and the file: the fd
	// table must not grow with load.
	if fds := prot.Proc.OpenFDs(); fds > 64 {
		t.Fatalf("fd leak: %d open descriptors after %d requests", fds, units)
	}
	// Per-unit cost stays flat: compare the first and second halves.
	halfTarget := workload.NewNginx()
	halfProt := launch(t, halfTarget, true)
	half, err := workload.Run(halfTarget, halfProt, units/2)
	if err != nil {
		t.Fatal(err)
	}
	a, b := half.PerUnitTotal(), res.PerUnitTotal()
	if b > a*1.05 || a > b*1.05 {
		t.Fatalf("per-unit cost drifted: %.0f vs %.0f", a, b)
	}
}

// TestSoakVsftpd sustains transfers with per-transfer listeners: sockets
// and files must be reclaimed.
func TestSoakVsftpd(t *testing.T) {
	units := 120
	if testing.Short() {
		units = 12
	}
	target := workload.NewVsftpd()
	prot := launch(t, target, true)
	res, err := workload.Run(target, prot, units)
	if err != nil {
		t.Fatalf("soak: %v", err)
	}
	if len(prot.Monitor.Violations) != 0 {
		t.Fatalf("violations: %v", prot.Monitor.Violations)
	}
	if res.Bytes != int64(units)*workload.FTPFileSize {
		t.Fatalf("moved %d bytes", res.Bytes)
	}
	if fds := prot.Proc.OpenFDs(); fds > 16 {
		t.Fatalf("fd leak: %d open after %d transfers", fds, units)
	}
}
