package ir

import (
	"fmt"
	"sort"
	"strings"
)

// String renders the whole program in the textual IR syntax understood by
// package irtext.
func (p *Program) String() string {
	var sb strings.Builder
	for _, g := range p.Globals {
		fmt.Fprintf(&sb, "global %s: %d", g.Name, g.Size)
		if len(g.Init) > 0 {
			fmt.Fprintf(&sb, " = %q", string(g.Init))
		}
		sb.WriteByte('\n')
	}
	if len(p.Globals) > 0 {
		sb.WriteByte('\n')
	}
	for i, f := range p.Funcs {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(f.String())
	}
	return sb.String()
}

// String renders one function.
func (f *Function) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s(params %d, regs %d)", f.Name, f.NumParams, f.NumRegs)
	if f.TypeSig != "" {
		fmt.Fprintf(&sb, " sig %q", f.TypeSig)
	}
	sb.WriteString(" {\n")
	for _, s := range f.Locals {
		fmt.Fprintf(&sb, "  local %s: %d\n", s.Name, s.Size)
	}
	// Invert the label map for printing.
	labelAt := map[int][]string{}
	for name, idx := range f.labels {
		labelAt[idx] = append(labelAt[idx], name)
	}
	for idx := range labelAt {
		sort.Strings(labelAt[idx])
	}
	for i := range f.Code {
		for _, l := range labelAt[i] {
			fmt.Fprintf(&sb, " %s:\n", l)
		}
		in := &f.Code[i]
		fmt.Fprintf(&sb, "  %s", in.String())
		if in.Comment != "" {
			fmt.Fprintf(&sb, "  ; %s", in.Comment)
		}
		sb.WriteByte('\n')
	}
	for _, l := range labelAt[len(f.Code)] {
		fmt.Fprintf(&sb, " %s:\n", l)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// String renders one instruction in assembly-like form.
func (in *Instr) String() string {
	switch in.Kind {
	case Const:
		return fmt.Sprintf("r%d = const %d", in.Dst, in.Imm)
	case Mov:
		return fmt.Sprintf("r%d = mov %s", in.Dst, in.Src)
	case Bin:
		return fmt.Sprintf("r%d = %s %s, %s", in.Dst, in.Op, in.A, in.B)
	case Load:
		return fmt.Sprintf("r%d = load%d [r%d%+d]", in.Dst, in.Size, in.Addr, in.Off)
	case Store:
		return fmt.Sprintf("store%d [r%d%+d], %s", in.Size, in.Addr, in.Off, in.Src)
	case LocalAddr:
		return fmt.Sprintf("r%d = lea slot%d%+d", in.Dst, in.Slot, in.Off)
	case GlobalAddr:
		return fmt.Sprintf("r%d = lea @%s%+d", in.Dst, in.Sym, in.Off)
	case FuncAddr:
		return fmt.Sprintf("r%d = funcaddr %s", in.Dst, in.Sym)
	case Call:
		return fmt.Sprintf("r%d = call %s(%s)", in.Dst, in.Sym, operands(in.Args))
	case CallInd:
		return fmt.Sprintf("r%d = callind r%d(%s) sig %q", in.Dst, in.Target, operands(in.Args), in.TypeSig)
	case Syscall:
		return fmt.Sprintf("r%d = syscall(%s)", in.Dst, operands(in.Args))
	case Jump:
		return "jmp " + branchTarget(in)
	case BranchNZ:
		return fmt.Sprintf("bnz %s, %s", in.Src, branchTarget(in))
	case Ret:
		return fmt.Sprintf("ret %s", in.Src)
	case Intrinsic:
		switch in.IK {
		case CtxWriteMem:
			return fmt.Sprintf("ctx_write_mem(r%d, %d)", in.Addr, in.Size)
		case CtxBindMem:
			return fmt.Sprintf("ctx_bind_mem_%d(r%d) site %d", in.Pos, in.Addr, in.BindSite)
		case CtxBindConst:
			return fmt.Sprintf("ctx_bind_const_%d(%d) site %d", in.Pos, in.Imm, in.BindSite)
		}
	}
	return fmt.Sprintf("<%s>", in.Kind)
}

func branchTarget(in *Instr) string {
	if in.Label != "" {
		return in.Label
	}
	return fmt.Sprintf("#%d", in.ToIndex)
}

func operands(ops []Operand) string {
	parts := make([]string, len(ops))
	for i, o := range ops {
		parts[i] = o.String()
	}
	return strings.Join(parts, ", ")
}
