// Package ir defines the intermediate representation for guest programs.
//
// The IR is a small register machine that stands in for LLVM IR in the
// BASTION pipeline: the compiler analyses (call-type classification,
// control-flow-graph extraction, and argument-integrity use-def tracing)
// operate on it, and the virtual machine in internal/vm executes it with a
// memory-realized call stack so that the attacks from the paper's threat
// model (return-address overwrites, function-pointer hijacks, non-pointer
// index corruption) are expressible.
//
// Conventions:
//   - Every value is a 64-bit word. Loads and stores may narrow to 1, 2 or
//     4 bytes.
//   - Each function has an unlimited set of virtual registers, private to a
//     frame and not addressable; parameters and declared locals live in the
//     frame's stack memory and are therefore corruptible.
//   - Every instruction occupies InstrSize bytes of code address space, so
//     return addresses and callsite addresses are ordinary numbers that can
//     be stored, leaked, and overwritten in guest memory.
//   - System calls appear only inside wrapper functions (one Syscall
//     instruction per wrapper), mirroring how libc exposes them; call-type
//     classification inspects how wrappers are referenced.
package ir

import "fmt"

// InstrSize is the number of code-address-space bytes per instruction.
const InstrSize = 4

// WordSize is the size in bytes of a machine word.
const WordSize = 8

// Reg names a virtual register within a function. Registers are per-frame
// and cannot be addressed by guest memory operations.
type Reg int

// Op enumerates binary ALU operations, including comparisons that yield 0/1.
type Op int

// Binary operations.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv // signed; division by zero faults the VM
	OpMod
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr // logical shift right
	OpEq
	OpNe
	OpLt // signed <
	OpLe // signed <=
	OpGt // signed >
	OpGe // signed >=
)

var opNames = [...]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpEq: "eq", OpNe: "ne", OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// OperandKind discriminates Operand.
type OperandKind uint8

// Operand kinds.
const (
	OperandReg OperandKind = iota
	OperandImm
)

// Operand is either a register or a 64-bit immediate.
type Operand struct {
	Kind OperandKind
	Reg  Reg
	Imm  int64
}

// R returns a register operand.
func R(r Reg) Operand { return Operand{Kind: OperandReg, Reg: r} }

// Imm returns an immediate operand.
func Imm(v int64) Operand { return Operand{Kind: OperandImm, Imm: v} }

func (o Operand) String() string {
	if o.Kind == OperandReg {
		return fmt.Sprintf("r%d", o.Reg)
	}
	return fmt.Sprintf("%d", o.Imm)
}

// Kind enumerates instruction kinds.
type Kind uint8

// Instruction kinds.
const (
	// Const: dst = Imm.
	Const Kind = iota
	// Mov: dst = Src.
	Mov
	// Bin: dst = Op(A, B).
	Bin
	// Load: dst = mem[Addr+Off] (Size bytes, zero-extended).
	Load
	// Store: mem[Addr+Off] = Src (Size bytes).
	Store
	// LocalAddr: dst = address of local slot Slot plus Off.
	LocalAddr
	// GlobalAddr: dst = address of global Sym plus Off.
	GlobalAddr
	// FuncAddr: dst = entry address of function Sym (address-taken).
	FuncAddr
	// Call: dst = Sym(Args...); a direct call.
	Call
	// CallInd: dst = (*Target)(Args...); an indirect call through a register
	// holding a code address. TypeSig records the callsite's expected
	// function signature for baseline LLVM-CFI checking.
	CallInd
	// Syscall: dst = syscall(Args...); Args[0] is the syscall number and
	// Args[1:] the up-to-6 arguments. Only wrapper functions contain this.
	Syscall
	// Jump: unconditional branch to label.
	Jump
	// BranchNZ: if Src != 0 branch to label, else fall through.
	BranchNZ
	// Ret: return Src to the caller (pops the frame; the return address is
	// read from guest memory, so a corrupted frame diverts control).
	Ret
	// Intrinsic: a BASTION runtime-library operation inserted by the
	// instrumentation pass (see IntrinsicKind).
	Intrinsic
)

var kindNames = [...]string{
	Const: "const", Mov: "mov", Bin: "bin", Load: "load", Store: "store",
	LocalAddr: "localaddr", GlobalAddr: "globaladdr", FuncAddr: "funcaddr",
	Call: "call", CallInd: "callind", Syscall: "syscall", Jump: "jmp",
	BranchNZ: "bnz", Ret: "ret", Intrinsic: "intrinsic",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// IntrinsicKind enumerates BASTION runtime-library intrinsics (Table 2 of
// the paper). They are no-ops unless the VM runs with a shadow-memory
// runtime attached.
type IntrinsicKind uint8

// Intrinsics.
const (
	// CtxWriteMem updates the shadow copy of the Size bytes at address Addr.
	CtxWriteMem IntrinsicKind = iota
	// CtxBindMem binds the memory at address Addr to argument position Pos
	// of the callsite identified by BindSite.
	CtxBindMem
	// CtxBindConst binds constant Imm to argument position Pos of the
	// callsite identified by BindSite.
	CtxBindConst
)

func (ik IntrinsicKind) String() string {
	switch ik {
	case CtxWriteMem:
		return "ctx_write_mem"
	case CtxBindMem:
		return "ctx_bind_mem"
	case CtxBindConst:
		return "ctx_bind_const"
	}
	return fmt.Sprintf("intrinsic(%d)", uint8(ik))
}

// Instr is a single IR instruction. A single struct (rather than an
// interface) keeps the interpreter loop allocation-free.
type Instr struct {
	Kind Kind

	Dst  Reg     // Const, Mov, Bin, Load, LocalAddr, GlobalAddr, FuncAddr, Call, CallInd, Syscall
	Src  Operand // Mov, Store, BranchNZ, Ret
	A, B Operand // Bin
	Op   Op      // Bin

	Addr Reg   // Load, Store base address register; Intrinsic address
	Off  int64 // Load, Store, LocalAddr, GlobalAddr displacement
	Size int64 // Load, Store width (1,2,4,8); Intrinsic size

	Slot int    // LocalAddr slot index
	Sym  string // GlobalAddr, FuncAddr, Call target name

	Target Reg       // CallInd target register
	Args   []Operand // Call, CallInd, Syscall arguments

	Label   string // Jump, BranchNZ target label (resolved by Link)
	ToIndex int    // resolved branch target instruction index

	TypeSig string // CallInd expected signature (LLVM-CFI baseline)

	IK       IntrinsicKind // Intrinsic
	Pos      int           // Intrinsic argument position (1-based)
	Imm      int64         // Const value; CtxBindConst constant
	BindSite int           // Intrinsic: instruction index of the bound callsite

	// Comment is an optional annotation carried through printing; analyses
	// ignore it.
	Comment string
}

// Slot describes a named local variable living in the frame's stack memory.
type Slot struct {
	Name string
	Size int64
}

// Function is a guest function.
type Function struct {
	Name string
	// NumParams is the number of incoming word-sized parameters. Parameters
	// are spilled by the VM into the first NumParams local slots (8 bytes
	// each), before the declared Locals, so they are memory-backed and
	// corruptible like C stack parameters.
	NumParams int
	// Locals are declared in addition to the parameter spill slots.
	Locals []Slot
	// NumRegs is the number of virtual registers used (set by the Builder).
	NumRegs int
	// TypeSig is the function's signature string, e.g. "i64(i64,i64)";
	// used by the LLVM-CFI baseline for coarse type matching.
	TypeSig string
	// Code is the instruction sequence.
	Code []Instr

	// Base is the code address of instruction 0; assigned by Program.Link.
	Base uint64

	labels map[string]int // label -> instruction index (pre-Link)
}

// InstrAddr returns the code address of instruction index i.
func (f *Function) InstrAddr(i int) uint64 { return f.Base + uint64(i)*InstrSize }

// Labels exposes the label table (label name → instruction index) for
// passes that splice instructions and must remap targets. Mutating the
// returned map changes the function.
func (f *Function) Labels() map[string]int {
	if f.labels == nil {
		f.labels = map[string]int{}
	}
	return f.labels
}

// FrameSlots returns the full slot layout of the frame: parameter spill
// slots followed by declared locals.
func (f *Function) FrameSlots() []Slot {
	slots := make([]Slot, 0, f.NumParams+len(f.Locals))
	for i := 0; i < f.NumParams; i++ {
		slots = append(slots, Slot{Name: fmt.Sprintf("p%d", i), Size: WordSize})
	}
	return append(slots, f.Locals...)
}

// SlotOffset returns the byte offset of frame slot i from the frame's local
// area base, and the total local area size. Slots are laid out in order,
// 8-byte aligned.
func (f *Function) SlotOffset(i int) int64 {
	var off int64
	for j, s := range f.FrameSlots() {
		if j == i {
			return off
		}
		off += align8(s.Size)
	}
	panic(fmt.Sprintf("ir: function %s has no slot %d", f.Name, i))
}

// FrameLocalSize is the total size of the frame's slot area.
func (f *Function) FrameLocalSize() int64 {
	var off int64
	for _, s := range f.FrameSlots() {
		off += align8(s.Size)
	}
	return off
}

// SlotIndex returns the index of the named slot (parameter spill slots are
// named p0..pN-1). It returns -1 if not found.
func (f *Function) SlotIndex(name string) int {
	for i, s := range f.FrameSlots() {
		if s.Name == name {
			return i
		}
	}
	return -1
}

func align8(n int64) int64 { return (n + 7) &^ 7 }

// Global is a program global variable.
type Global struct {
	Name string
	Size int64
	Init []byte // may be shorter than Size; remainder is zero

	Addr uint64 // assigned by Program.Link
}

// Program is a complete linked or linkable guest program.
type Program struct {
	Funcs   []*Function
	Globals []*Global

	// Entry is the name of the entry function; defaults to "main".
	Entry string

	funcByName   map[string]*Function
	globalByName map[string]*Global
	linked       bool
}

// NewProgram returns an empty program with entry point "main".
func NewProgram() *Program {
	return &Program{
		Entry:        "main",
		funcByName:   map[string]*Function{},
		globalByName: map[string]*Global{},
	}
}

// AddFunc registers a function. It panics on duplicate names: program
// assembly is programmer-controlled, so a duplicate is a bug, not input.
func (p *Program) AddFunc(f *Function) {
	if _, dup := p.funcByName[f.Name]; dup {
		panic("ir: duplicate function " + f.Name)
	}
	p.Funcs = append(p.Funcs, f)
	p.funcByName[f.Name] = f
	p.linked = false
}

// AddGlobal registers a global variable, panicking on duplicates.
func (p *Program) AddGlobal(g *Global) {
	if _, dup := p.globalByName[g.Name]; dup {
		panic("ir: duplicate global " + g.Name)
	}
	if g.Size < int64(len(g.Init)) {
		g.Size = int64(len(g.Init))
	}
	p.Globals = append(p.Globals, g)
	p.globalByName[g.Name] = g
	p.linked = false
}

// Func returns the named function, or nil.
func (p *Program) Func(name string) *Function { return p.funcByName[name] }

// Global returns the named global, or nil.
func (p *Program) GlobalByName(name string) *Global { return p.globalByName[name] }

// Address-space layout constants shared by the linker, the VM, and the
// monitor. These mirror a conventional (pre-ASLR) x86-64 layout.
const (
	CodeBase   uint64 = 0x0000_0000_0040_0000
	DataBase   uint64 = 0x0000_0000_0060_0000
	HeapBase   uint64 = 0x0000_0000_1000_0000
	StackTop   uint64 = 0x0000_7fff_ffff_0000
	StackSize  uint64 = 1 << 20
	ShadowBase uint64 = 0x0000_5500_0000_0000 // %gs-relative shadow region
	ShadowSize uint64 = 1 << 22
)

// Link assigns code addresses to every function, data addresses to every
// global, and resolves branch labels. It is idempotent and must run before
// execution or analysis that needs addresses.
func (p *Program) Link() error {
	next := CodeBase
	for _, f := range p.Funcs {
		f.Base = next
		sz := uint64(len(f.Code)) * InstrSize
		next += (sz + 0xf) &^ 0xf
		next += 16 // guard gap so gadget addresses never straddle functions
		if err := resolveLabels(f); err != nil {
			return err
		}
	}
	daddr := DataBase
	for _, g := range p.Globals {
		g.Addr = daddr
		daddr += (uint64(g.Size) + 0xf) &^ 0xf
	}
	p.linked = true
	return nil
}

// Linked reports whether Link has run since the last mutation.
func (p *Program) Linked() bool { return p.linked }

func resolveLabels(f *Function) error {
	for i := range f.Code {
		in := &f.Code[i]
		if in.Kind != Jump && in.Kind != BranchNZ {
			continue
		}
		if in.Label == "" { // already resolved numerically
			continue
		}
		idx, ok := f.labels[in.Label]
		if !ok {
			return fmt.Errorf("ir: %s: undefined label %q", f.Name, in.Label)
		}
		in.ToIndex = idx
	}
	return nil
}

// FuncAt returns the function containing code address a and the instruction
// index within it, or (nil, 0) if a is not a code address.
func (p *Program) FuncAt(a uint64) (*Function, int) {
	for _, f := range p.Funcs {
		end := f.Base + uint64(len(f.Code))*InstrSize
		if a >= f.Base && a < end && (a-f.Base)%InstrSize == 0 {
			return f, int((a - f.Base) / InstrSize)
		}
	}
	return nil, 0
}

// SyscallNumber returns the syscall number of a wrapper function: the
// constant first argument of its single Syscall instruction. ok is false if
// f is not a syscall wrapper with a constant number.
func SyscallNumber(f *Function) (nr int64, ok bool) {
	for i := range f.Code {
		in := &f.Code[i]
		if in.Kind != Syscall {
			continue
		}
		if len(in.Args) == 0 || in.Args[0].Kind != OperandImm {
			return 0, false
		}
		return in.Args[0].Imm, true
	}
	return 0, false
}

// IsSyscallWrapper reports whether f contains a Syscall instruction.
func IsSyscallWrapper(f *Function) bool {
	for i := range f.Code {
		if f.Code[i].Kind == Syscall {
			return true
		}
	}
	return false
}
