package ir

import (
	"strings"
	"testing"
)

func TestBuilderConveniences(t *testing.T) {
	b := NewBuilder("f", 1)
	if b.NumInstrs() != 0 {
		t.Fatal("fresh builder has instructions")
	}
	b.SetTypeSig("i64(ptr)")
	r := b.Const(1)
	b.Comment("the answer's seed")
	b.ConstInto(r, 42)
	b.Mov(b.Reg(), R(r))
	b.StoreLocal("p0", Imm(9))
	v := b.LoadLocal("p0")
	b.Ret(R(v))
	f := b.Build()

	if f.TypeSig != "i64(ptr)" {
		t.Fatalf("sig = %q", f.TypeSig)
	}
	if f.Code[0].Comment != "the answer's seed" {
		t.Fatalf("comment lost: %+v", f.Code[0])
	}
	if !strings.Contains(f.String(), "the answer's seed") {
		t.Fatal("comment not printed")
	}
	if f.NumRegs < 2 {
		t.Fatalf("regs = %d", f.NumRegs)
	}
}

func TestBuilderPanicsAreProgrammerErrors(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("duplicate local", func() {
		b := NewBuilder("f", 0)
		b.Local("x", 8)
		b.Local("x", 8)
	})
	mustPanic("duplicate label", func() {
		b := NewBuilder("f", 0)
		b.Label("l")
		b.Label("l")
	})
	mustPanic("unknown slot", func() {
		b := NewBuilder("f", 0)
		b.Lea("ghost", 0)
	})
}

func TestInstrStringsCoverEveryKind(t *testing.T) {
	ins := []Instr{
		{Kind: Const, Dst: 1, Imm: 5},
		{Kind: Mov, Dst: 1, Src: R(0)},
		{Kind: Bin, Dst: 2, Op: OpXor, A: R(0), B: Imm(3)},
		{Kind: Load, Dst: 1, Addr: 0, Off: -8, Size: 4},
		{Kind: Store, Addr: 0, Off: 16, Src: Imm(1), Size: 2},
		{Kind: LocalAddr, Dst: 1, Slot: 2, Off: 4},
		{Kind: GlobalAddr, Dst: 1, Sym: "g", Off: 0},
		{Kind: FuncAddr, Dst: 1, Sym: "f"},
		{Kind: Call, Dst: 1, Sym: "f", Args: []Operand{Imm(1)}},
		{Kind: CallInd, Dst: 1, Target: 3, TypeSig: "i64()"},
		{Kind: Syscall, Dst: 1, Args: []Operand{Imm(60)}},
		{Kind: Jump, Label: "x"},
		{Kind: BranchNZ, Src: R(1), ToIndex: 4},
		{Kind: Ret, Src: Imm(0)},
		{Kind: Intrinsic, IK: CtxWriteMem, Addr: 1, Size: 8},
		{Kind: Intrinsic, IK: CtxBindMem, Pos: 2, Addr: 1, BindSite: 9},
		{Kind: Intrinsic, IK: CtxBindConst, Pos: 1, Imm: -1, BindSite: 9},
	}
	for i := range ins {
		s := ins[i].String()
		if s == "" || strings.HasPrefix(s, "<") {
			t.Errorf("instr %d renders as %q", i, s)
		}
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind renders empty")
	}
}

func TestFrameSlotsIncludeParams(t *testing.T) {
	b := NewBuilder("f", 2)
	b.Local("x", 8)
	b.Ret(Imm(0))
	f := b.Build()
	slots := f.FrameSlots()
	if len(slots) != 3 || slots[0].Name != "p0" || slots[2].Name != "x" {
		t.Fatalf("slots = %+v", slots)
	}
}
