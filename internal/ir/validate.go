package ir

import (
	"errors"
	"fmt"
)

// Validate checks structural well-formedness of a program: register bounds,
// resolved branch targets, existing call targets and globals, slot indices,
// load/store widths, and syscall placement (only inside wrapper functions
// whose body is a single syscall plus moves/returns). It returns all
// problems found, joined.
func (p *Program) Validate() error {
	var errs []error
	if p.Func(p.Entry) == nil {
		errs = append(errs, fmt.Errorf("ir: entry function %q not defined", p.Entry))
	}
	for _, f := range p.Funcs {
		if err := p.validateFunc(f); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

func (p *Program) validateFunc(f *Function) error {
	var errs []error
	bad := func(i int, format string, args ...any) {
		errs = append(errs, fmt.Errorf("ir: %s+%d: %s", f.Name, i, fmt.Sprintf(format, args...)))
	}
	nslots := f.NumParams + len(f.Locals)
	checkReg := func(i int, r Reg, what string) {
		if r < 0 || int(r) >= f.NumRegs {
			bad(i, "%s register r%d out of range [0,%d)", what, r, f.NumRegs)
		}
	}
	checkOp := func(i int, o Operand, what string) {
		if o.Kind == OperandReg {
			checkReg(i, o.Reg, what)
		}
	}
	checkWidth := func(i int, sz int64) {
		switch sz {
		case 1, 2, 4, 8:
		default:
			bad(i, "invalid access width %d", sz)
		}
	}
	sawSyscall := false
	for i := range f.Code {
		in := &f.Code[i]
		switch in.Kind {
		case Const:
			checkReg(i, in.Dst, "dst")
		case Mov:
			checkReg(i, in.Dst, "dst")
			checkOp(i, in.Src, "src")
		case Bin:
			checkReg(i, in.Dst, "dst")
			checkOp(i, in.A, "lhs")
			checkOp(i, in.B, "rhs")
			if in.Op < OpAdd || in.Op > OpGe {
				bad(i, "invalid binary op %d", in.Op)
			}
		case Load:
			checkReg(i, in.Dst, "dst")
			checkReg(i, in.Addr, "addr")
			checkWidth(i, in.Size)
		case Store:
			checkReg(i, in.Addr, "addr")
			checkOp(i, in.Src, "src")
			checkWidth(i, in.Size)
		case LocalAddr:
			checkReg(i, in.Dst, "dst")
			if in.Slot < 0 || in.Slot >= nslots {
				bad(i, "slot %d out of range [0,%d)", in.Slot, nslots)
			}
		case GlobalAddr:
			checkReg(i, in.Dst, "dst")
			if p.GlobalByName(in.Sym) == nil {
				bad(i, "undefined global %q", in.Sym)
			}
		case FuncAddr:
			checkReg(i, in.Dst, "dst")
			if p.Func(in.Sym) == nil {
				bad(i, "undefined function %q", in.Sym)
			}
		case Call:
			checkReg(i, in.Dst, "dst")
			callee := p.Func(in.Sym)
			if callee == nil {
				bad(i, "undefined function %q", in.Sym)
			} else if len(in.Args) != callee.NumParams {
				bad(i, "call %s: %d args, want %d", in.Sym, len(in.Args), callee.NumParams)
			}
			for _, a := range in.Args {
				checkOp(i, a, "arg")
			}
		case CallInd:
			checkReg(i, in.Dst, "dst")
			checkReg(i, in.Target, "target")
			for _, a := range in.Args {
				checkOp(i, a, "arg")
			}
		case Syscall:
			sawSyscall = true
			checkReg(i, in.Dst, "dst")
			if len(in.Args) == 0 {
				bad(i, "syscall without number")
			} else if len(in.Args) > 7 {
				bad(i, "syscall with %d args, max 6", len(in.Args)-1)
			}
			for _, a := range in.Args {
				checkOp(i, a, "arg")
			}
		case Jump, BranchNZ:
			if in.Kind == BranchNZ {
				checkOp(i, in.Src, "cond")
			}
			if in.Label != "" {
				if _, ok := f.labels[in.Label]; !ok {
					bad(i, "undefined label %q", in.Label)
				}
			} else if in.ToIndex < 0 || in.ToIndex >= len(f.Code) {
				bad(i, "branch target %d out of range", in.ToIndex)
			}
		case Ret:
			checkOp(i, in.Src, "ret value")
		case Intrinsic:
			switch in.IK {
			case CtxWriteMem:
				checkReg(i, in.Addr, "addr")
				if in.Size <= 0 {
					bad(i, "ctx_write_mem with size %d", in.Size)
				}
			case CtxBindMem:
				checkReg(i, in.Addr, "addr")
				if in.Pos < 1 {
					bad(i, "ctx_bind_mem with position %d", in.Pos)
				}
			case CtxBindConst:
				if in.Pos < 1 {
					bad(i, "ctx_bind_const with position %d", in.Pos)
				}
			default:
				bad(i, "unknown intrinsic %d", in.IK)
			}
		default:
			bad(i, "unknown instruction kind %d", in.Kind)
		}
	}
	if len(f.Code) == 0 {
		bad(0, "empty function body")
	} else if last := f.Code[len(f.Code)-1]; last.Kind != Ret && last.Kind != Jump && last.Kind != Syscall {
		// Syscall is allowed last only for wrappers that never return
		// (exit/exit_group); the VM treats running off the end as a fault,
		// so insist on explicit control flow otherwise.
		bad(len(f.Code)-1, "function does not end in ret or jmp")
	}
	if sawSyscall {
		n := 0
		for i := range f.Code {
			if f.Code[i].Kind == Syscall {
				n++
			}
		}
		if n != 1 {
			bad(0, "syscall wrapper contains %d syscall instructions, want exactly 1", n)
		}
	}
	return errors.Join(errs...)
}
