package ir

import "fmt"

// Builder assembles a Function instruction by instruction. It allocates
// virtual registers, tracks labels, and offers convenience emitters so guest
// applications read close to the C they imitate.
type Builder struct {
	f       *Function
	nextReg Reg
	slots   map[string]int
}

// NewBuilder starts a function with the given name and parameter count.
// The type signature defaults to "i64(" + n×"i64" + ")" and can be
// overridden with SetTypeSig for CFI-baseline experiments.
func NewBuilder(name string, numParams int) *Builder {
	sig := "i64("
	for i := 0; i < numParams; i++ {
		if i > 0 {
			sig += ","
		}
		sig += "i64"
	}
	sig += ")"
	b := &Builder{
		f: &Function{
			Name:      name,
			NumParams: numParams,
			TypeSig:   sig,
			labels:    map[string]int{},
		},
		slots: map[string]int{},
	}
	for i := 0; i < numParams; i++ {
		b.slots[fmt.Sprintf("p%d", i)] = i
	}
	return b
}

// SetTypeSig overrides the function's signature string.
func (b *Builder) SetTypeSig(sig string) *Builder { b.f.TypeSig = sig; return b }

// Reg allocates a fresh virtual register.
func (b *Builder) Reg() Reg {
	r := b.nextReg
	b.nextReg++
	return r
}

// Local declares a named local slot of the given size and returns its slot
// index (usable with LocalAddr / Lea).
func (b *Builder) Local(name string, size int64) int {
	if _, dup := b.slots[name]; dup {
		panic("ir: duplicate local " + name + " in " + b.f.Name)
	}
	b.f.Locals = append(b.f.Locals, Slot{Name: name, Size: size})
	idx := b.f.NumParams + len(b.f.Locals) - 1
	b.slots[name] = idx
	return idx
}

// SlotIndex returns the slot index of a declared local or parameter (p0..).
func (b *Builder) SlotIndex(name string) int {
	idx, ok := b.slots[name]
	if !ok {
		panic("ir: unknown slot " + name + " in " + b.f.Name)
	}
	return idx
}

// Label defines a label at the current instruction position.
func (b *Builder) Label(name string) {
	if _, dup := b.f.labels[name]; dup {
		panic("ir: duplicate label " + name + " in " + b.f.Name)
	}
	b.f.labels[name] = len(b.f.Code)
}

func (b *Builder) emit(in Instr) int {
	b.f.Code = append(b.f.Code, in)
	return len(b.f.Code) - 1
}

// Emit appends a raw instruction and returns its index.
func (b *Builder) Emit(in Instr) int { return b.emit(in) }

// Const sets dst to an immediate and returns dst for chaining convenience.
func (b *Builder) Const(v int64) Reg {
	dst := b.Reg()
	b.emit(Instr{Kind: Const, Dst: dst, Imm: v})
	return dst
}

// ConstInto emits dst = v into an existing register.
func (b *Builder) ConstInto(dst Reg, v int64) { b.emit(Instr{Kind: Const, Dst: dst, Imm: v}) }

// Mov emits dst = src.
func (b *Builder) Mov(dst Reg, src Operand) { b.emit(Instr{Kind: Mov, Dst: dst, Src: src}) }

// Bin emits dst = op(a, b) into a fresh register.
func (b *Builder) Bin(op Op, a, bb Operand) Reg {
	dst := b.Reg()
	b.emit(Instr{Kind: Bin, Dst: dst, Op: op, A: a, B: bb})
	return dst
}

// BinInto emits dst = op(a, b) into an existing register.
func (b *Builder) BinInto(dst Reg, op Op, a, bb Operand) {
	b.emit(Instr{Kind: Bin, Dst: dst, Op: op, A: a, B: bb})
}

// Lea emits dst = &slot + off for a named local/parameter.
func (b *Builder) Lea(name string, off int64) Reg {
	dst := b.Reg()
	b.emit(Instr{Kind: LocalAddr, Dst: dst, Slot: b.SlotIndex(name), Off: off})
	return dst
}

// GlobalLea emits dst = &global + off.
func (b *Builder) GlobalLea(name string, off int64) Reg {
	dst := b.Reg()
	b.emit(Instr{Kind: GlobalAddr, Dst: dst, Sym: name, Off: off})
	return dst
}

// FuncAddr emits dst = &func (address-taken function).
func (b *Builder) FuncAddr(name string) Reg {
	dst := b.Reg()
	b.emit(Instr{Kind: FuncAddr, Dst: dst, Sym: name})
	return dst
}

// Load emits dst = mem[addr+off] of the given width into a fresh register.
func (b *Builder) Load(addr Reg, off, size int64) Reg {
	dst := b.Reg()
	b.emit(Instr{Kind: Load, Dst: dst, Addr: addr, Off: off, Size: size})
	return dst
}

// LoadInto emits dst = mem[addr+off].
func (b *Builder) LoadInto(dst, addr Reg, off, size int64) {
	b.emit(Instr{Kind: Load, Dst: dst, Addr: addr, Off: off, Size: size})
}

// Store emits mem[addr+off] = src of the given width. It returns the
// instruction index so instrumentation can anchor to it.
func (b *Builder) Store(addr Reg, off int64, src Operand, size int64) int {
	return b.emit(Instr{Kind: Store, Addr: addr, Off: off, Src: src, Size: size})
}

// LoadLocal is shorthand for Lea+Load of a whole word-sized slot.
func (b *Builder) LoadLocal(name string) Reg {
	return b.Load(b.Lea(name, 0), 0, WordSize)
}

// StoreLocal is shorthand for Lea+Store of a word-sized slot.
func (b *Builder) StoreLocal(name string, src Operand) int {
	return b.Store(b.Lea(name, 0), 0, src, WordSize)
}

// Call emits a direct call and returns the result register.
func (b *Builder) Call(name string, args ...Operand) Reg {
	dst := b.Reg()
	b.emit(Instr{Kind: Call, Dst: dst, Sym: name, Args: args})
	return dst
}

// CallInd emits an indirect call through target and returns the result
// register. sig is the callsite's static signature for the CFI baseline.
func (b *Builder) CallInd(target Reg, sig string, args ...Operand) Reg {
	dst := b.Reg()
	b.emit(Instr{Kind: CallInd, Dst: dst, Target: target, Args: args, TypeSig: sig})
	return dst
}

// Syscall emits a raw syscall instruction (used only by wrapper builders).
func (b *Builder) Syscall(nr int64, args ...Operand) Reg {
	dst := b.Reg()
	all := append([]Operand{Imm(nr)}, args...)
	b.emit(Instr{Kind: Syscall, Dst: dst, Args: all})
	return dst
}

// Jump emits an unconditional branch to label.
func (b *Builder) Jump(label string) { b.emit(Instr{Kind: Jump, Label: label}) }

// BranchNZ emits a conditional branch to label when cond != 0.
func (b *Builder) BranchNZ(cond Operand, label string) {
	b.emit(Instr{Kind: BranchNZ, Src: cond, Label: label})
}

// Ret emits a return.
func (b *Builder) Ret(v Operand) { b.emit(Instr{Kind: Ret, Src: v}) }

// Comment attaches a comment to the most recently emitted instruction.
func (b *Builder) Comment(c string) {
	if len(b.f.Code) > 0 {
		b.f.Code[len(b.f.Code)-1].Comment = c
	}
}

// NumInstrs returns the number of instructions emitted so far.
func (b *Builder) NumInstrs() int { return len(b.f.Code) }

// Build finalizes the function. The builder must not be reused.
func (b *Builder) Build() *Function {
	b.f.NumRegs = int(b.nextReg)
	return b.f
}
