package irtext_test

import (
	"testing"

	"bastion/internal/apps/nginx"
	"bastion/internal/ir/irtext"
)

// FuzzParse hardens the parser against malformed listings: it must never
// panic, and anything it accepts must print and reparse to a fixed point.
func FuzzParse(f *testing.F) {
	f.Add(sample)
	f.Add(nginx.Build().String())
	f.Add("global g: 8\n")
	f.Add("func f(params 0, regs 1) {\n  ret 0\n}\n")
	f.Add("func f(params 2, regs 300) {\n  r299 = const 1\n  ret r299\n}\n")
	f.Add("func f(params 0, regs 1) {\n  store8 [r0+-9], 3\n  ret 0\n}\n")
	f.Add("func f(params 0, regs 1) sig \"i64()\" {\n  jmp l\n l:\n  jmp l\n}\n")
	f.Add("func f(params 0, regs 2) {\n  ctx_bind_mem_3(r1) site 0\n  ret 0\n}\n")
	// Regression seeds: inputs that crashed earlier parser versions
	// (duplicate unnamed globals; empty memory reference).
	f.Add("global :0=\"00000000\"\nglobal :0")
	f.Add(" global 0:0= \"00000000\"\nglobal 1:000\nfunc 0(params 0)000000000000000000000000000000000000000000\n  r00= load0 []")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := irtext.Parse(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		text := p.String()
		p2, err := irtext.Parse(text)
		if err != nil {
			t.Fatalf("accepted program does not reparse: %v\n%s", err, text)
		}
		if p2.String() != text {
			t.Fatalf("accepted program is not a print fixed point")
		}
	})
}
