// Package irtext parses the textual IR syntax produced by
// ir.Program.String, so instrumented listings dumped by bastionc can be
// reloaded, diffed, and executed. The grammar is line-oriented:
//
//	global msg: 16 = "hi\x00"
//
//	func main(params 0, regs 4) sig "i64()" {
//	  local buf: 32
//	 loop:
//	  r0 = const 5
//	  r1 = add r0, 1
//	  r2 = load8 [r1+0]
//	  store8 [r1+8], r2
//	  r3 = call strlen(r1)
//	  bnz r3, loop
//	  ret r3
//	}
package irtext

import (
	"fmt"
	"strconv"
	"strings"

	"bastion/internal/ir"
)

// Parse reads a whole program.
func Parse(src string) (*ir.Program, error) {
	p := &parser{prog: ir.NewProgram()}
	lines := strings.Split(src, "\n")
	for i := 0; i < len(lines); i++ {
		line := stripComment(lines[i])
		t := strings.TrimSpace(line)
		switch {
		case t == "":
		case strings.HasPrefix(t, "global "):
			if err := p.global(t); err != nil {
				return nil, fmt.Errorf("line %d: %w", i+1, err)
			}
		case strings.HasPrefix(t, "func "):
			end, err := p.function(lines, i)
			if err != nil {
				return nil, err
			}
			i = end
		default:
			return nil, fmt.Errorf("line %d: unexpected %q", i+1, t)
		}
	}
	if err := p.prog.Validate(); err != nil {
		return nil, err
	}
	return p.prog, nil
}

type parser struct {
	prog *ir.Program
}

func stripComment(line string) string {
	// Comments start with "  ; " outside of string literals.
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			if i == 0 || line[i-1] != '\\' {
				inStr = !inStr
			}
		case ';':
			if !inStr {
				return line[:i]
			}
		}
	}
	return line
}

// global syntax: global name: size [= "init"]
func (p *parser) global(t string) error {
	rest := strings.TrimPrefix(t, "global ")
	name, rest, ok := strings.Cut(rest, ":")
	if !ok {
		return fmt.Errorf("malformed global %q", t)
	}
	rest = strings.TrimSpace(rest)
	sizeStr, initStr, hasInit := strings.Cut(rest, "=")
	size, err := strconv.ParseInt(strings.TrimSpace(sizeStr), 10, 64)
	if err != nil {
		return fmt.Errorf("global size: %w", err)
	}
	g := &ir.Global{Name: strings.TrimSpace(name), Size: size}
	if g.Name == "" {
		return fmt.Errorf("global with empty name")
	}
	if p.prog.GlobalByName(g.Name) != nil {
		return fmt.Errorf("duplicate global %q", g.Name)
	}
	if hasInit {
		s, err := strconv.Unquote(strings.TrimSpace(initStr))
		if err != nil {
			return fmt.Errorf("global init: %w", err)
		}
		g.Init = []byte(s)
	}
	p.prog.AddGlobal(g)
	return nil
}

// function parses from the "func" line to the closing brace, returning the
// index of the closing line.
func (p *parser) function(lines []string, start int) (int, error) {
	head := strings.TrimSpace(stripComment(lines[start]))
	name, params, regs, sig, err := parseHeader(head)
	if err != nil {
		return 0, fmt.Errorf("line %d: %w", start+1, err)
	}
	if name == "" {
		return 0, fmt.Errorf("line %d: function with empty name", start+1)
	}
	if p.prog.Func(name) != nil {
		return 0, fmt.Errorf("line %d: duplicate function %q", start+1, name)
	}
	if params < 0 || params > 16 || regs < 0 || regs > 256 {
		return 0, fmt.Errorf("line %d: implausible header (params %d, regs %d)", start+1, params, regs)
	}
	fb := &funcBuilder{
		fn: name, numParams: params, numRegs: regs, sig: sig,
		labels: map[string]int{},
		slots:  map[string]int{},
	}
	for i := 0; i < params; i++ {
		fb.slots[fmt.Sprintf("p%d", i)] = i
	}
	i := start + 1
	for ; i < len(lines); i++ {
		t := strings.TrimSpace(stripComment(lines[i]))
		switch {
		case t == "":
		case t == "}":
			f, err := fb.build()
			if err != nil {
				return 0, fmt.Errorf("line %d: %w", start+1, err)
			}
			p.prog.AddFunc(f)
			return i, nil
		case strings.HasPrefix(t, "local "):
			if err := fb.local(t); err != nil {
				return 0, fmt.Errorf("line %d: %w", i+1, err)
			}
		case strings.HasSuffix(t, ":") && !strings.Contains(t, " "):
			label := strings.TrimSuffix(t, ":")
			if label == "" {
				return 0, fmt.Errorf("line %d: empty label", i+1)
			}
			if _, dup := fb.labels[label]; dup {
				return 0, fmt.Errorf("line %d: duplicate label %q", i+1, label)
			}
			fb.labels[label] = len(fb.code)
		default:
			if err := fb.instr(t); err != nil {
				return 0, fmt.Errorf("line %d: %w", i+1, err)
			}
		}
	}
	return 0, fmt.Errorf("line %d: unterminated function %s", start+1, name)
}

// parseHeader handles: func NAME(params N, regs M) [sig "..."]
func parseHeader(t string) (name string, params, regs int, sig string, err error) {
	rest := strings.TrimPrefix(t, "func ")
	name, rest, ok := strings.Cut(rest, "(")
	if !ok {
		return "", 0, 0, "", fmt.Errorf("malformed header %q", t)
	}
	name = strings.TrimSpace(name)
	inner, rest, ok := strings.Cut(rest, ")")
	if !ok {
		return "", 0, 0, "", fmt.Errorf("malformed header %q", t)
	}
	for _, part := range strings.Split(inner, ",") {
		fields := strings.Fields(strings.TrimSpace(part))
		if len(fields) != 2 {
			return "", 0, 0, "", fmt.Errorf("malformed header field %q", part)
		}
		v, cerr := strconv.Atoi(fields[1])
		if cerr != nil {
			return "", 0, 0, "", cerr
		}
		switch fields[0] {
		case "params":
			params = v
		case "regs":
			regs = v
		default:
			return "", 0, 0, "", fmt.Errorf("unknown header field %q", fields[0])
		}
	}
	rest = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(rest), "{"))
	if strings.HasPrefix(rest, "sig ") {
		s, cerr := strconv.Unquote(strings.TrimSpace(strings.TrimPrefix(rest, "sig ")))
		if cerr != nil {
			return "", 0, 0, "", fmt.Errorf("sig: %w", cerr)
		}
		sig = s
	}
	return name, params, regs, sig, nil
}

type funcBuilder struct {
	fn        string
	numParams int
	numRegs   int
	sig       string
	locals    []ir.Slot
	slots     map[string]int
	labels    map[string]int
	code      []ir.Instr
}

func (fb *funcBuilder) local(t string) error {
	rest := strings.TrimPrefix(t, "local ")
	name, sizeStr, ok := strings.Cut(rest, ":")
	if !ok {
		return fmt.Errorf("malformed local %q", t)
	}
	size, err := strconv.ParseInt(strings.TrimSpace(sizeStr), 10, 64)
	if err != nil {
		return err
	}
	name = strings.TrimSpace(name)
	if name == "" {
		return fmt.Errorf("local with empty name")
	}
	if _, dup := fb.slots[name]; dup {
		return fmt.Errorf("duplicate local %q", name)
	}
	if size < 0 || size > 1<<20 {
		return fmt.Errorf("implausible local size %d", size)
	}
	fb.locals = append(fb.locals, ir.Slot{Name: name, Size: size})
	fb.slots[name] = fb.numParams + len(fb.locals) - 1
	return nil
}

func (fb *funcBuilder) build() (*ir.Function, error) {
	b := ir.NewBuilder(fb.fn, fb.numParams)
	if fb.sig != "" {
		b.SetTypeSig(fb.sig)
	}
	for _, s := range fb.locals {
		b.Local(s.Name, s.Size)
	}
	// Pre-size the register file: Build() takes the max allocated; emit a
	// sentinel allocation pattern by requesting registers up front.
	for i := 0; i < fb.numRegs; i++ {
		b.Reg()
	}
	byIndex := map[int][]string{}
	for name, idx := range fb.labels {
		byIndex[idx] = append(byIndex[idx], name)
	}
	for idx, in := range fb.code {
		for _, l := range byIndex[idx] {
			b.Label(l)
		}
		b.Emit(in)
	}
	for _, l := range byIndex[len(fb.code)] {
		b.Label(l)
	}
	return b.Build(), nil
}

// operand parses "r4" or a signed integer.
func operand(tok string) (ir.Operand, error) {
	tok = strings.TrimSpace(tok)
	if strings.HasPrefix(tok, "r") {
		if n, err := strconv.Atoi(tok[1:]); err == nil {
			return ir.R(ir.Reg(n)), nil
		}
	}
	v, err := strconv.ParseInt(tok, 10, 64)
	if err != nil {
		return ir.Operand{}, fmt.Errorf("bad operand %q", tok)
	}
	return ir.Imm(v), nil
}

func reg(tok string) (ir.Reg, error) {
	tok = strings.TrimSpace(tok)
	if !strings.HasPrefix(tok, "r") {
		return 0, fmt.Errorf("bad register %q", tok)
	}
	n, err := strconv.Atoi(tok[1:])
	if err != nil {
		return 0, fmt.Errorf("bad register %q", tok)
	}
	return ir.Reg(n), nil
}

// memRef parses "[rN+OFF]" (or "[rN-OFF]").
func memRef(tok string) (ir.Reg, int64, error) {
	tok = strings.TrimSpace(tok)
	if !strings.HasPrefix(tok, "[") || !strings.HasSuffix(tok, "]") {
		return 0, 0, fmt.Errorf("bad memory reference %q", tok)
	}
	inner := tok[1 : len(tok)-1]
	if len(inner) < 2 {
		return 0, 0, fmt.Errorf("bad memory reference %q", tok)
	}
	sep := strings.IndexAny(inner[1:], "+-")
	if sep < 0 {
		r, err := reg(inner)
		return r, 0, err
	}
	sep++
	r, err := reg(inner[:sep])
	if err != nil {
		return 0, 0, err
	}
	off, err := strconv.ParseInt(inner[sep:], 10, 64)
	if err != nil {
		return 0, 0, err
	}
	return r, off, nil
}

// args splits "a, b, c" honoring emptiness.
func argList(s string) ([]ir.Operand, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []ir.Operand
	for _, part := range strings.Split(s, ",") {
		o, err := operand(part)
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, nil
}

var binOps = map[string]ir.Op{
	"add": ir.OpAdd, "sub": ir.OpSub, "mul": ir.OpMul, "div": ir.OpDiv,
	"mod": ir.OpMod, "and": ir.OpAnd, "or": ir.OpOr, "xor": ir.OpXor,
	"shl": ir.OpShl, "shr": ir.OpShr, "eq": ir.OpEq, "ne": ir.OpNe,
	"lt": ir.OpLt, "le": ir.OpLe, "gt": ir.OpGt, "ge": ir.OpGe,
}

// instr parses one instruction line.
func (fb *funcBuilder) instr(t string) error {
	// Non-assignment forms first.
	switch {
	case strings.HasPrefix(t, "store"):
		return fb.store(t)
	case strings.HasPrefix(t, "jmp "):
		fb.code = append(fb.code, ir.Instr{Kind: ir.Jump, Label: strings.TrimSpace(t[4:])})
		return nil
	case strings.HasPrefix(t, "bnz "):
		rest := strings.TrimPrefix(t, "bnz ")
		condStr, label, ok := strings.Cut(rest, ",")
		if !ok {
			return fmt.Errorf("malformed bnz %q", t)
		}
		cond, err := operand(condStr)
		if err != nil {
			return err
		}
		fb.code = append(fb.code, ir.Instr{Kind: ir.BranchNZ, Src: cond, Label: strings.TrimSpace(label)})
		return nil
	case strings.HasPrefix(t, "ret "):
		v, err := operand(strings.TrimPrefix(t, "ret "))
		if err != nil {
			return err
		}
		fb.code = append(fb.code, ir.Instr{Kind: ir.Ret, Src: v})
		return nil
	case strings.HasPrefix(t, "ctx_write_mem("):
		inner := strings.TrimSuffix(strings.TrimPrefix(t, "ctx_write_mem("), ")")
		addrStr, sizeStr, ok := strings.Cut(inner, ",")
		if !ok {
			return fmt.Errorf("malformed %q", t)
		}
		r, err := reg(addrStr)
		if err != nil {
			return err
		}
		size, err := strconv.ParseInt(strings.TrimSpace(sizeStr), 10, 64)
		if err != nil {
			return err
		}
		fb.code = append(fb.code, ir.Instr{Kind: ir.Intrinsic, IK: ir.CtxWriteMem, Addr: r, Size: size})
		return nil
	case strings.HasPrefix(t, "ctx_bind_mem_"):
		return fb.bind(t, true)
	case strings.HasPrefix(t, "ctx_bind_const_"):
		return fb.bind(t, false)
	}

	// Assignment forms: "rN = ..."
	dstStr, rhs, ok := strings.Cut(t, "=")
	if !ok {
		return fmt.Errorf("unrecognized instruction %q", t)
	}
	dst, err := reg(dstStr)
	if err != nil {
		return err
	}
	rhs = strings.TrimSpace(rhs)
	switch {
	case strings.HasPrefix(rhs, "const "):
		v, err := strconv.ParseInt(strings.TrimSpace(rhs[6:]), 10, 64)
		if err != nil {
			return err
		}
		fb.code = append(fb.code, ir.Instr{Kind: ir.Const, Dst: dst, Imm: v})
	case strings.HasPrefix(rhs, "mov "):
		src, err := operand(rhs[4:])
		if err != nil {
			return err
		}
		fb.code = append(fb.code, ir.Instr{Kind: ir.Mov, Dst: dst, Src: src})
	case strings.HasPrefix(rhs, "load"):
		szStr, mem, ok := strings.Cut(rhs[4:], " ")
		if !ok {
			return fmt.Errorf("malformed load %q", rhs)
		}
		size, err := strconv.ParseInt(szStr, 10, 64)
		if err != nil {
			return err
		}
		r, off, err := memRef(mem)
		if err != nil {
			return err
		}
		fb.code = append(fb.code, ir.Instr{Kind: ir.Load, Dst: dst, Addr: r, Off: off, Size: size})
	case strings.HasPrefix(rhs, "lea @"):
		sym, off, err := symOff(rhs[5:])
		if err != nil {
			return err
		}
		fb.code = append(fb.code, ir.Instr{Kind: ir.GlobalAddr, Dst: dst, Sym: sym, Off: off})
	case strings.HasPrefix(rhs, "lea slot"):
		slotStr, off, err := symOff(rhs[8:])
		if err != nil {
			return err
		}
		slot, err := strconv.Atoi(slotStr)
		if err != nil {
			return err
		}
		fb.code = append(fb.code, ir.Instr{Kind: ir.LocalAddr, Dst: dst, Slot: slot, Off: off})
	case strings.HasPrefix(rhs, "funcaddr "):
		fb.code = append(fb.code, ir.Instr{Kind: ir.FuncAddr, Dst: dst, Sym: strings.TrimSpace(rhs[9:])})
	case strings.HasPrefix(rhs, "callind "):
		rest := strings.TrimPrefix(rhs, "callind ")
		targetStr, rest, ok := strings.Cut(rest, "(")
		if !ok {
			return fmt.Errorf("malformed callind %q", rhs)
		}
		target, err := reg(targetStr)
		if err != nil {
			return err
		}
		argsStr, rest, ok := strings.Cut(rest, ")")
		if !ok {
			return fmt.Errorf("malformed callind %q", rhs)
		}
		args, err := argList(argsStr)
		if err != nil {
			return err
		}
		sig := ""
		rest = strings.TrimSpace(rest)
		if strings.HasPrefix(rest, "sig ") {
			sig, err = strconv.Unquote(strings.TrimSpace(rest[4:]))
			if err != nil {
				return err
			}
		}
		fb.code = append(fb.code, ir.Instr{Kind: ir.CallInd, Dst: dst, Target: target, Args: args, TypeSig: sig})
	case strings.HasPrefix(rhs, "call "):
		rest := strings.TrimPrefix(rhs, "call ")
		name, argsStr, ok := strings.Cut(rest, "(")
		if !ok {
			return fmt.Errorf("malformed call %q", rhs)
		}
		argsStr = strings.TrimSuffix(strings.TrimSpace(argsStr), ")")
		args, err := argList(argsStr)
		if err != nil {
			return err
		}
		fb.code = append(fb.code, ir.Instr{Kind: ir.Call, Dst: dst, Sym: strings.TrimSpace(name), Args: args})
	case strings.HasPrefix(rhs, "syscall("):
		argsStr := strings.TrimSuffix(strings.TrimPrefix(rhs, "syscall("), ")")
		args, err := argList(argsStr)
		if err != nil {
			return err
		}
		fb.code = append(fb.code, ir.Instr{Kind: ir.Syscall, Dst: dst, Args: args})
	default:
		// Binary operation: "op a, b".
		opName, rest, ok := strings.Cut(rhs, " ")
		if !ok {
			return fmt.Errorf("unrecognized instruction %q", t)
		}
		op, known := binOps[opName]
		if !known {
			return fmt.Errorf("unknown operation %q", opName)
		}
		aStr, bStr, ok := strings.Cut(rest, ",")
		if !ok {
			return fmt.Errorf("malformed %q", t)
		}
		a, err := operand(aStr)
		if err != nil {
			return err
		}
		bOp, err := operand(bStr)
		if err != nil {
			return err
		}
		fb.code = append(fb.code, ir.Instr{Kind: ir.Bin, Dst: dst, Op: op, A: a, B: bOp})
	}
	return nil
}

// symOff parses "name+off" / "name-off" / "name".
func symOff(s string) (string, int64, error) {
	s = strings.TrimSpace(s)
	idx := strings.LastIndexAny(s, "+-")
	if idx <= 0 {
		return s, 0, nil
	}
	off, err := strconv.ParseInt(s[idx:], 10, 64)
	if err != nil {
		return s, 0, nil // name contains +/-? treat whole as symbol
	}
	return s[:idx], off, nil
}

// store syntax: storeN [rA+off], src
func (fb *funcBuilder) store(t string) error {
	rest := strings.TrimPrefix(t, "store")
	szStr, rest, ok := strings.Cut(rest, " ")
	if !ok {
		return fmt.Errorf("malformed store %q", t)
	}
	size, err := strconv.ParseInt(szStr, 10, 64)
	if err != nil {
		return err
	}
	memStr, srcStr, ok := strings.Cut(rest, ",")
	if !ok {
		return fmt.Errorf("malformed store %q", t)
	}
	r, off, err := memRef(memStr)
	if err != nil {
		return err
	}
	src, err := operand(srcStr)
	if err != nil {
		return err
	}
	fb.code = append(fb.code, ir.Instr{Kind: ir.Store, Addr: r, Off: off, Src: src, Size: size})
	return nil
}

// bind syntax: ctx_bind_mem_3(r4) site 12  /  ctx_bind_const_1(-1) site 12
func (fb *funcBuilder) bind(t string, isMem bool) error {
	prefix := "ctx_bind_const_"
	if isMem {
		prefix = "ctx_bind_mem_"
	}
	rest := strings.TrimPrefix(t, prefix)
	posStr, rest, ok := strings.Cut(rest, "(")
	if !ok {
		return fmt.Errorf("malformed bind %q", t)
	}
	pos, err := strconv.Atoi(posStr)
	if err != nil {
		return err
	}
	argStr, rest, ok := strings.Cut(rest, ")")
	if !ok {
		return fmt.Errorf("malformed bind %q", t)
	}
	rest = strings.TrimSpace(rest)
	if !strings.HasPrefix(rest, "site ") {
		return fmt.Errorf("bind missing site in %q", t)
	}
	site, err := strconv.Atoi(strings.TrimSpace(rest[5:]))
	if err != nil {
		return err
	}
	in := ir.Instr{Kind: ir.Intrinsic, Pos: pos, BindSite: site}
	if isMem {
		in.IK = ir.CtxBindMem
		r, err := reg(argStr)
		if err != nil {
			return err
		}
		in.Addr = r
	} else {
		in.IK = ir.CtxBindConst
		v, err := strconv.ParseInt(strings.TrimSpace(argStr), 10, 64)
		if err != nil {
			return err
		}
		in.Imm = v
	}
	fb.code = append(fb.code, in)
	return nil
}
