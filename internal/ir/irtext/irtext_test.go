package irtext_test

import (
	"strings"
	"testing"

	"bastion/internal/apps/nginx"
	"bastion/internal/apps/sqlitedb"
	"bastion/internal/apps/vsftpd"
	"bastion/internal/core"
	"bastion/internal/ir"
	"bastion/internal/ir/irtext"
	"bastion/internal/vm"
)

const sample = `
global msg: 16 = "hello\x00"
global counter: 8

func double(params 1, regs 2) sig "i64(i64)" {
  r0 = lea slot0+0
  r1 = load8 [r0+0]
  r1 = mul r1, 2
  ret r1
}

func main(params 0, regs 8) {
  local buf: 32
 start:
  r0 = const 5
  r1 = call double(r0)
  r2 = lea @counter+0
  store8 [r2+0], r1
  r3 = lea slot0+8
  store1 [r3+0], 65
  r4 = funcaddr double
  r5 = callind r4(r1) sig "i64(i64)"
  r6 = eq r5, 20
  bnz r6, done
  jmp start
 done:
  ret r5
}
`

func TestParseAndRun(t *testing.T) {
	p, err := irtext.Parse(sample)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(p)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxSteps = 1 << 16
	got, err := m.CallFunction("main")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != 20 { // double(double(5)) = 20
		t.Fatalf("got %d, want 20", got)
	}
	g := p.GlobalByName("msg")
	if g == nil || g.Size != 16 || string(g.Init) != "hello\x00" {
		t.Fatalf("global msg = %+v", g)
	}
}

func TestRoundTripSample(t *testing.T) {
	p1, err := irtext.Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	text1 := p1.String()
	p2, err := irtext.Parse(text1)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text1)
	}
	text2 := p2.String()
	if text1 != text2 {
		t.Fatalf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", text1, text2)
	}
}

// TestRoundTripApplications prints and reparses every full guest
// application, including after BASTION instrumentation, and checks the
// listing is a fixed point.
func TestRoundTripApplications(t *testing.T) {
	builders := map[string]func() *ir.Program{
		"nginx":  nginx.Build,
		"sqlite": sqlitedb.Build,
		"vsftpd": vsftpd.Build,
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			roundTrip(t, build())
		})
		t.Run(name+"-instrumented", func(t *testing.T) {
			art, err := core.Compile(build(), core.CompileOptions{})
			if err != nil {
				t.Fatal(err)
			}
			roundTrip(t, art.Prog)
		})
	}
}

func roundTrip(t *testing.T, p *ir.Program) {
	t.Helper()
	text1 := p.String()
	p2, err := irtext.Parse(text1)
	if err != nil {
		t.Fatalf("parse of printed listing failed: %v", err)
	}
	text2 := p2.String()
	if text1 != text2 {
		// Find the first diverging line for a useful failure message.
		l1, l2 := strings.Split(text1, "\n"), strings.Split(text2, "\n")
		for i := 0; i < len(l1) && i < len(l2); i++ {
			if l1[i] != l2[i] {
				t.Fatalf("listing diverges at line %d:\n  printed:  %q\n  reparsed: %q", i+1, l1[i], l2[i])
			}
		}
		t.Fatalf("listing lengths differ: %d vs %d lines", len(l1), len(l2))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"garbage", "wibble\n", "unexpected"},
		{"bad global", "global x 8\n", "malformed global"},
		{"unterminated func", "func f(params 0, regs 1) {\n  ret 0\n", "unterminated"},
		{"bad instr", "func main(params 0, regs 1) {\n  r0 = zorp 1, 2\n  ret 0\n}\n", "unknown operation"},
		{"bad reg", "func main(params 0, regs 1) {\n  q0 = const 1\n  ret 0\n}\n", "bad register"},
		{"bad store", "func main(params 0, regs 1) {\n  store8 r0, 1\n  ret 0\n}\n", "bad memory reference"},
		{"undefined label", "func main(params 0, regs 1) {\n  jmp nowhere\n}\n", "undefined label"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := irtext.Parse(tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Parse = %v, want %q", err, tc.want)
			}
		})
	}
}

func TestCommentsIgnored(t *testing.T) {
	src := "func main(params 0, regs 1) {\n  r0 = const 7  ; lucky\n  ret r0\n}\n"
	p, err := irtext.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	m, _ := vm.New(p)
	m.MaxSteps = 100
	got, err := m.CallFunction("main")
	if err != nil || got != 7 {
		t.Fatalf("got %d, %v", got, err)
	}
}
