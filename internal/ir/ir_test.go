package ir

import (
	"strings"
	"testing"
)

// buildTestProgram assembles a small two-function program with a global, a
// syscall wrapper, and both call flavours.
func buildTestProgram(t *testing.T) *Program {
	t.Helper()
	p := NewProgram()
	p.AddGlobal(&Global{Name: "msg", Size: 16, Init: []byte("hi\x00")})

	w := NewBuilder("sys_write", 3)
	a0 := w.LoadLocal("p0")
	a1 := w.LoadLocal("p1")
	a2 := w.LoadLocal("p2")
	w.Syscall(1, R(a0), R(a1), R(a2))
	w.Ret(Imm(0))
	p.AddFunc(w.Build())

	m := NewBuilder("main", 0)
	m.Local("buf", 32)
	buf := m.Lea("buf", 0)
	m.Store(buf, 0, Imm(42), 8)
	v := m.Load(buf, 0, 8)
	fp := m.FuncAddr("sys_write")
	m.CallInd(fp, "i64(i64,i64,i64)", Imm(1), R(buf), R(v))
	g := m.GlobalLea("msg", 0)
	m.Call("sys_write", Imm(1), R(g), Imm(3))
	m.Label("loop")
	c := m.Bin(OpEq, R(v), Imm(42))
	m.BranchNZ(R(c), "done")
	m.Jump("loop")
	m.Label("done")
	m.Ret(Imm(0))
	p.AddFunc(m.Build())

	if err := p.Link(); err != nil {
		t.Fatalf("Link: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return p
}

func TestLinkAssignsDisjointAddresses(t *testing.T) {
	p := buildTestProgram(t)
	w, m := p.Func("sys_write"), p.Func("main")
	if w.Base < CodeBase || m.Base < CodeBase {
		t.Fatalf("function bases below CodeBase: %#x %#x", w.Base, m.Base)
	}
	wEnd := w.Base + uint64(len(w.Code))*InstrSize
	if m.Base < wEnd {
		t.Fatalf("main base %#x overlaps sys_write end %#x", m.Base, wEnd)
	}
	if g := p.GlobalByName("msg"); g.Addr != DataBase {
		t.Fatalf("first global at %#x, want %#x", g.Addr, DataBase)
	}
}

func TestFuncAtRoundTrip(t *testing.T) {
	p := buildTestProgram(t)
	for _, f := range p.Funcs {
		for i := range f.Code {
			got, idx := p.FuncAt(f.InstrAddr(i))
			if got != f || idx != i {
				t.Fatalf("FuncAt(%#x) = %v,%d want %s,%d", f.InstrAddr(i), got, idx, f.Name, i)
			}
		}
	}
	if f, _ := p.FuncAt(0xdeadbeef); f != nil {
		t.Fatalf("FuncAt(non-code) = %s, want nil", f.Name)
	}
	// Misaligned addresses are not instruction boundaries.
	m := p.Func("main")
	if f, _ := p.FuncAt(m.Base + 1); f != nil {
		t.Fatal("FuncAt(misaligned) should be nil")
	}
}

func TestSlotLayout(t *testing.T) {
	b := NewBuilder("f", 2)
	b.Local("small", 3) // padded to 8
	b.Local("buf", 16)
	b.Ret(Imm(0))
	f := b.Build()

	if got := f.SlotOffset(0); got != 0 {
		t.Fatalf("p0 offset = %d", got)
	}
	if got := f.SlotOffset(1); got != 8 {
		t.Fatalf("p1 offset = %d", got)
	}
	if got := f.SlotOffset(2); got != 16 {
		t.Fatalf("small offset = %d", got)
	}
	if got := f.SlotOffset(3); got != 24 {
		t.Fatalf("buf offset = %d", got)
	}
	if got := f.FrameLocalSize(); got != 40 {
		t.Fatalf("frame size = %d, want 40", got)
	}
	if got := f.SlotIndex("buf"); got != 3 {
		t.Fatalf("SlotIndex(buf) = %d", got)
	}
	if got := f.SlotIndex("nope"); got != -1 {
		t.Fatalf("SlotIndex(nope) = %d", got)
	}
}

func TestSyscallWrapperDetection(t *testing.T) {
	p := buildTestProgram(t)
	w := p.Func("sys_write")
	if !IsSyscallWrapper(w) {
		t.Fatal("sys_write not detected as wrapper")
	}
	if nr, ok := SyscallNumber(w); !ok || nr != 1 {
		t.Fatalf("SyscallNumber = %d,%v", nr, ok)
	}
	m := p.Func("main")
	if IsSyscallWrapper(m) {
		t.Fatal("main detected as wrapper")
	}
	if _, ok := SyscallNumber(m); ok {
		t.Fatal("SyscallNumber(main) ok")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Program
		want  string
	}{
		{"missing entry", func() *Program {
			p := NewProgram()
			b := NewBuilder("f", 0)
			b.Ret(Imm(0))
			p.AddFunc(b.Build())
			return p
		}, "entry function"},
		{"bad register", func() *Program {
			p := NewProgram()
			b := NewBuilder("main", 0)
			b.Emit(Instr{Kind: Mov, Dst: 99, Src: Imm(1)})
			b.Ret(Imm(0))
			p.AddFunc(b.Build())
			return p
		}, "out of range"},
		{"undefined callee", func() *Program {
			p := NewProgram()
			b := NewBuilder("main", 0)
			b.Emit(Instr{Kind: Call, Dst: b.Reg(), Sym: "ghost"})
			b.Ret(Imm(0))
			p.AddFunc(b.Build())
			return p
		}, "undefined function"},
		{"arity mismatch", func() *Program {
			p := NewProgram()
			cb := NewBuilder("callee", 2)
			cb.Ret(Imm(0))
			p.AddFunc(cb.Build())
			b := NewBuilder("main", 0)
			b.Call("callee", Imm(1))
			b.Ret(Imm(0))
			p.AddFunc(b.Build())
			return p
		}, "args, want"},
		{"undefined label", func() *Program {
			p := NewProgram()
			b := NewBuilder("main", 0)
			b.Jump("nowhere")
			p.AddFunc(b.Build())
			return p
		}, "undefined label"},
		{"bad width", func() *Program {
			p := NewProgram()
			b := NewBuilder("main", 0)
			r := b.Const(0)
			b.Emit(Instr{Kind: Load, Dst: b.Reg(), Addr: r, Size: 3})
			b.Ret(Imm(0))
			p.AddFunc(b.Build())
			return p
		}, "invalid access width"},
		{"missing terminator", func() *Program {
			p := NewProgram()
			b := NewBuilder("main", 0)
			b.Const(1)
			p.AddFunc(b.Build())
			return p
		}, "does not end in ret"},
		{"two syscalls in one wrapper", func() *Program {
			p := NewProgram()
			b := NewBuilder("main", 0)
			b.Syscall(0)
			b.Syscall(1)
			b.Ret(Imm(0))
			p.AddFunc(b.Build())
			return p
		}, "want exactly 1"},
		{"undefined global", func() *Program {
			p := NewProgram()
			b := NewBuilder("main", 0)
			b.GlobalLea("ghost", 0)
			b.Ret(Imm(0))
			p.AddFunc(b.Build())
			return p
		}, "undefined global"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.build().Validate()
			if err == nil {
				t.Fatal("Validate passed, want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestValidateAcceptsGoodProgram(t *testing.T) {
	buildTestProgram(t) // fails the test on validation error
}

func TestDuplicateFunctionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate function")
		}
	}()
	p := NewProgram()
	b1 := NewBuilder("f", 0)
	b1.Ret(Imm(0))
	p.AddFunc(b1.Build())
	b2 := NewBuilder("f", 0)
	b2.Ret(Imm(0))
	p.AddFunc(b2.Build())
}

func TestPrintRoundTripsKeySyntax(t *testing.T) {
	p := buildTestProgram(t)
	s := p.String()
	for _, want := range []string{
		"func main(params 0,",
		"local buf: 32",
		"syscall(1,",
		"callind",
		"global msg: 16",
		"bnz",
		" done:",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("program listing missing %q:\n%s", want, s)
		}
	}
}

func TestLinkResolvesLabels(t *testing.T) {
	p := buildTestProgram(t)
	m := p.Func("main")
	for i := range m.Code {
		in := &m.Code[i]
		if in.Kind == Jump || in.Kind == BranchNZ {
			if in.ToIndex < 0 || in.ToIndex >= len(m.Code) {
				t.Fatalf("instr %d: unresolved branch target %d", i, in.ToIndex)
			}
		}
	}
}

func TestOperandAndOpStrings(t *testing.T) {
	if got := R(3).String(); got != "r3" {
		t.Fatalf("R(3) = %q", got)
	}
	if got := Imm(-7).String(); got != "-7" {
		t.Fatalf("Imm(-7) = %q", got)
	}
	if got := OpAdd.String(); got != "add" {
		t.Fatalf("OpAdd = %q", got)
	}
	if got := CtxWriteMem.String(); got != "ctx_write_mem" {
		t.Fatalf("CtxWriteMem = %q", got)
	}
}
