// Action-equivalence of the binary-search filter against the linear chain
// over the kernel's real syscall table. Lives in an external test package:
// internal/kernel imports internal/seccomp, so the reverse import is only
// legal from seccomp_test.
package seccomp_test

import (
	"math/rand"
	"testing"

	"bastion/internal/kernel"
	"bastion/internal/seccomp"
)

// monitorPolicy mirrors the policy monitor.buildFilter constructs: KILL
// for not-callable syscalls, TRACE for sensitive ones, ALLOW default.
func monitorPolicy() *seccomp.Policy {
	pol := &seccomp.Policy{
		Default:   seccomp.RetAllow,
		Actions:   map[uint32]uint32{},
		CheckArch: true,
	}
	for nr := range kernel.Names {
		if kernel.IsSensitive(nr) {
			pol.Actions[nr] = seccomp.RetTrace
		}
	}
	for _, nr := range kernel.FileSystemSyscalls {
		pol.Actions[nr] = seccomp.RetTrace
	}
	return pol
}

// TestTreeEquivalentOverKernelTable asserts the tree program returns the
// same action as the linear program for every syscall number the kernel
// implements, plus random out-of-set numbers.
func TestTreeEquivalentOverKernelTable(t *testing.T) {
	pol := monitorPolicy()
	lin, err := pol.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	tree, err := pol.CompileTree()
	if err != nil {
		t.Fatalf("CompileTree: %v", err)
	}
	probes := make([]uint32, 0, len(kernel.Names)+256)
	for nr := range kernel.Names {
		probes = append(probes, nr)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 256; i++ {
		probes = append(probes, rng.Uint32())
	}
	for _, nr := range probes {
		data := &seccomp.Data{Nr: nr, Arch: seccomp.AuditArchX86_64}
		want, _, err := seccomp.Run(lin, data)
		if err != nil {
			t.Fatalf("linear nr %d: %v", nr, err)
		}
		got, _, err := seccomp.Run(tree, data)
		if err != nil {
			t.Fatalf("tree nr %d: %v", nr, err)
		}
		if got != want {
			t.Errorf("nr %d (%s): tree %s, linear %s", nr, kernel.Name(nr),
				seccomp.ActionName(got), seccomp.ActionName(want))
		}
	}
}

// TestTreeCheaperOverKernelTable pins the point of the tree filter: fewer
// executed BPF instructions per evaluation across the protected set.
func TestTreeCheaperOverKernelTable(t *testing.T) {
	pol := monitorPolicy()
	lin, err := pol.Compile()
	if err != nil {
		t.Fatal(err)
	}
	tree, err := pol.CompileTree()
	if err != nil {
		t.Fatal(err)
	}
	var linSteps, treeSteps int
	for nr := range kernel.Names {
		data := &seccomp.Data{Nr: nr, Arch: seccomp.AuditArchX86_64}
		_, ls, err := seccomp.Run(lin, data)
		if err != nil {
			t.Fatal(err)
		}
		_, ts, err := seccomp.Run(tree, data)
		if err != nil {
			t.Fatal(err)
		}
		linSteps += ls
		treeSteps += ts
	}
	if treeSteps >= linSteps {
		t.Fatalf("tree executed %d insns over the kernel table, linear %d: expected strictly fewer", treeSteps, linSteps)
	}
}
