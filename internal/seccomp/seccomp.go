// Package seccomp implements a classic-BPF (cBPF) virtual machine and a
// seccomp policy compiler, mirroring Linux's seccomp-BPF facility
// (SECure COMPuting with filters). The BASTION monitor compiles its
// call-type metadata into a filter program that the simulated kernel
// evaluates on every system call entry; evaluation cost (executed BPF
// instructions) feeds the cycle model, which is how the paper's
// "seccomp hook only" rows arise.
package seccomp

import (
	"errors"
	"fmt"
	"slices"
)

// seccomp_data field offsets (struct seccomp_data on Linux x86-64).
const (
	OffNr   = 0  // uint32 syscall number
	OffArch = 4  // uint32 architecture token
	OffIPLo = 8  // low half of the instruction pointer
	OffIPHi = 12 // high half
	// OffArgLo(i) = 16 + 8*i
)

// OffArgLo returns the offset of the low 32 bits of syscall argument i.
func OffArgLo(i int) uint32 { return uint32(16 + 8*i) }

// OffArgHi returns the offset of the high 32 bits of syscall argument i.
func OffArgHi(i int) uint32 { return uint32(20 + 8*i) }

// AuditArchX86_64 is the AUDIT_ARCH_X86_64 token.
const AuditArchX86_64 uint32 = 0xc000003e

// Data mirrors struct seccomp_data: the view of a syscall presented to the
// filter program.
type Data struct {
	Nr   uint32
	Arch uint32
	IP   uint64
	Args [6]uint64
}

func (d *Data) load32(off uint32) (uint32, bool) {
	switch {
	case off == OffNr:
		return d.Nr, true
	case off == OffArch:
		return d.Arch, true
	case off == OffIPLo:
		return uint32(d.IP), true
	case off == OffIPHi:
		return uint32(d.IP >> 32), true
	case off >= 16 && off < 64 && off%4 == 0:
		i := (off - 16) / 8
		if (off-16)%8 == 0 {
			return uint32(d.Args[i]), true
		}
		return uint32(d.Args[i] >> 32), true
	}
	return 0, false
}

// Filter return actions (SECCOMP_RET_*).
const (
	RetKill  uint32 = 0x0000_0000
	RetTrap  uint32 = 0x0003_0000
	RetErrno uint32 = 0x0005_0000
	RetTrace uint32 = 0x7ff0_0000
	RetLog   uint32 = 0x7ffc_0000
	RetAllow uint32 = 0x7fff_0000

	// RetActionMask extracts the action from a return value; the low bits
	// carry SECCOMP_RET_DATA (errno value or trace cookie).
	RetActionMask uint32 = 0x7fff_0000
	RetDataMask   uint32 = 0x0000_ffff
)

// ActionName names an action value for diagnostics.
func ActionName(v uint32) string {
	switch v & RetActionMask {
	case RetKill:
		return "KILL"
	case RetTrap:
		return "TRAP"
	case RetErrno:
		return "ERRNO"
	case RetTrace:
		return "TRACE"
	case RetLog:
		return "LOG"
	case RetAllow:
		return "ALLOW"
	}
	return fmt.Sprintf("ACTION(%#x)", v)
}

// BPF instruction class and mode bits (classic BPF encoding).
const (
	ClsLd   uint16 = 0x00
	ClsLdx  uint16 = 0x01
	ClsSt   uint16 = 0x02
	ClsStx  uint16 = 0x03
	ClsAlu  uint16 = 0x04
	ClsJmp  uint16 = 0x05
	ClsRet  uint16 = 0x06
	ClsMisc uint16 = 0x07

	ModeImm uint16 = 0x00
	ModeAbs uint16 = 0x20
	ModeMem uint16 = 0x60

	SizeW uint16 = 0x00

	AluAdd uint16 = 0x00
	AluSub uint16 = 0x10
	AluMul uint16 = 0x20
	AluDiv uint16 = 0x30
	AluOr  uint16 = 0x40
	AluAnd uint16 = 0x50
	AluLsh uint16 = 0x60
	AluRsh uint16 = 0x70
	AluNeg uint16 = 0x80

	JmpJa   uint16 = 0x00
	JmpJeq  uint16 = 0x10
	JmpJgt  uint16 = 0x20
	JmpJge  uint16 = 0x30
	JmpJset uint16 = 0x40

	SrcK uint16 = 0x00
	SrcX uint16 = 0x08

	RvalK uint16 = 0x00
	RvalA uint16 = 0x10
)

// Insn is one classic-BPF instruction (struct sock_filter).
type Insn struct {
	Code   uint16
	Jt, Jf uint8
	K      uint32
}

// Convenience constructors for the instruction subset seccomp programs use.

// LoadAbs loads the 32-bit word at offset off of seccomp_data into A.
func LoadAbs(off uint32) Insn { return Insn{Code: ClsLd | SizeW | ModeAbs, K: off} }

// JumpEq compares A to k: skips jt instructions when equal, jf otherwise.
func JumpEq(k uint32, jt, jf uint8) Insn {
	return Insn{Code: ClsJmp | JmpJeq | SrcK, Jt: jt, Jf: jf, K: k}
}

// Jump skips k instructions unconditionally.
func Jump(k uint32) Insn { return Insn{Code: ClsJmp | JmpJa, K: k} }

// RetConst returns the constant action k.
func RetConst(k uint32) Insn { return Insn{Code: ClsRet | RvalK, K: k} }

// RetAcc returns the accumulator.
func RetAcc() Insn { return Insn{Code: ClsRet | RvalA} }

// MaxInsns is the kernel's BPF_MAXINSNS.
const MaxInsns = 4096

// Validate performs the structural checks the kernel applies at
// SECCOMP_SET_MODE_FILTER time: bounded length, in-range forward jumps, a
// terminating return, recognized opcodes, and full forward reachability.
func Validate(prog []Insn) error {
	if len(prog) == 0 {
		return errors.New("seccomp: empty program")
	}
	if len(prog) > MaxInsns {
		return fmt.Errorf("seccomp: program too long (%d insns)", len(prog))
	}
	for pc, in := range prog {
		switch in.Code & 0x07 {
		case ClsLd, ClsLdx, ClsSt, ClsStx, ClsAlu, ClsRet, ClsMisc:
			// opcode-specific validation happens at run time
		case ClsJmp:
			if in.Code&0xf0 == JmpJa {
				if pc+1+int(in.K) >= len(prog) {
					return fmt.Errorf("seccomp: insn %d: jump out of range", pc)
				}
			} else {
				if pc+1+int(in.Jt) >= len(prog) || pc+1+int(in.Jf) >= len(prog) {
					return fmt.Errorf("seccomp: insn %d: branch out of range", pc)
				}
			}
		}
	}
	if last := prog[len(prog)-1]; last.Code&0x07 != ClsRet {
		return errors.New("seccomp: program does not end in a return")
	}
	// Forward reachability (jumps are forward-only, so one pass suffices):
	// every instruction must be reachable from entry. This is what makes a
	// malformed branch offset fail closed — a jump whose target lands past
	// the end of an emitted arg-compare chain strands the chain's
	// terminating return and is rejected here instead of silently changing
	// the program's decision.
	reach := make([]bool, len(prog))
	reach[0] = true
	for pc, in := range prog {
		if !reach[pc] {
			return fmt.Errorf("seccomp: insn %d unreachable", pc)
		}
		switch {
		case in.Code&0x07 == ClsRet:
			// terminates; successors unaffected
		case in.Code&0x07 == ClsJmp && in.Code&0xf0 == JmpJa:
			reach[pc+1+int(in.K)] = true
		case in.Code&0x07 == ClsJmp:
			reach[pc+1+int(in.Jt)] = true
			reach[pc+1+int(in.Jf)] = true
		default:
			reach[pc+1] = true
		}
	}
	return nil
}

// Run evaluates prog against data, returning the action value and the
// number of instructions executed (the cost signal for the cycle model).
func Run(prog []Insn, data *Data) (action uint32, steps int, err error) {
	var a, x uint32
	var scratch [16]uint32
	pc := 0
	for steps = 1; steps <= len(prog)+MaxInsns; steps++ {
		if pc < 0 || pc >= len(prog) {
			return 0, steps, fmt.Errorf("seccomp: pc %d out of range", pc)
		}
		in := prog[pc]
		pc++
		switch in.Code & 0x07 {
		case ClsLd:
			switch in.Code & 0xe0 {
			case ModeAbs:
				v, ok := data.load32(in.K)
				if !ok {
					return 0, steps, fmt.Errorf("seccomp: bad load offset %d", in.K)
				}
				a = v
			case ModeImm:
				a = in.K
			case ModeMem:
				if in.K >= 16 {
					return 0, steps, fmt.Errorf("seccomp: bad scratch slot %d", in.K)
				}
				a = scratch[in.K]
			default:
				return 0, steps, fmt.Errorf("seccomp: bad load mode %#x", in.Code)
			}
		case ClsLdx:
			switch in.Code & 0xe0 {
			case ModeImm:
				x = in.K
			case ModeMem:
				if in.K >= 16 {
					return 0, steps, fmt.Errorf("seccomp: bad scratch slot %d", in.K)
				}
				x = scratch[in.K]
			default:
				return 0, steps, fmt.Errorf("seccomp: bad ldx mode %#x", in.Code)
			}
		case ClsSt:
			if in.K >= 16 {
				return 0, steps, fmt.Errorf("seccomp: bad scratch slot %d", in.K)
			}
			scratch[in.K] = a
		case ClsStx:
			if in.K >= 16 {
				return 0, steps, fmt.Errorf("seccomp: bad scratch slot %d", in.K)
			}
			scratch[in.K] = x
		case ClsAlu:
			src := in.K
			if in.Code&SrcX != 0 {
				src = x
			}
			switch in.Code & 0xf0 {
			case AluAdd:
				a += src
			case AluSub:
				a -= src
			case AluMul:
				a *= src
			case AluDiv:
				if src == 0 {
					return 0, steps, errors.New("seccomp: division by zero")
				}
				a /= src
			case AluOr:
				a |= src
			case AluAnd:
				a &= src
			case AluLsh:
				a <<= src & 31
			case AluRsh:
				a >>= src & 31
			case AluNeg:
				a = -a
			default:
				return 0, steps, fmt.Errorf("seccomp: bad alu op %#x", in.Code)
			}
		case ClsJmp:
			src := in.K
			if in.Code&SrcX != 0 {
				src = x
			}
			var taken bool
			switch in.Code & 0xf0 {
			case JmpJa:
				pc += int(in.K)
				continue
			case JmpJeq:
				taken = a == src
			case JmpJgt:
				taken = a > src
			case JmpJge:
				taken = a >= src
			case JmpJset:
				taken = a&src != 0
			default:
				return 0, steps, fmt.Errorf("seccomp: bad jump op %#x", in.Code)
			}
			if taken {
				pc += int(in.Jt)
			} else {
				pc += int(in.Jf)
			}
		case ClsRet:
			if in.Code&0x18 == RvalA {
				return a, steps, nil
			}
			return in.K, steps, nil
		default:
			return 0, steps, fmt.Errorf("seccomp: bad class %#x", in.Code)
		}
	}
	return 0, steps, errors.New("seccomp: instruction budget exceeded (loop?)")
}

// Policy is a high-level seccomp policy: per-syscall actions over a default.
type Policy struct {
	Default uint32
	// Actions maps syscall number to action for syscalls that deviate from
	// the default.
	Actions map[uint32]uint32
	// ArgRules maps syscall number to an argument-conditional decision
	// evaluated entirely in-filter from the literal argument registers in
	// seccomp_data. A syscall number must not appear in both Actions and
	// ArgRules.
	ArgRules map[uint32]ArgRule
	// CheckArch inserts the standard architecture guard that kills the
	// process on a foreign-architecture syscall.
	CheckArch bool
}

// ArgMatch requires syscall argument Pos (0-based register position) to
// equal the full 64-bit value Val.
type ArgMatch struct {
	Pos int
	Val uint64
}

// ArgRule decides a syscall from its argument registers: when every match
// holds the filter returns Match, otherwise Else. An empty match list
// degenerates to an unconditional Match.
type ArgRule struct {
	Matches []ArgMatch
	Match   uint32
	Else    uint32
}

// checkRules validates the rule tables before compilation. Iteration is
// over the sorted union so error selection is deterministic.
func (p *Policy) checkRules() error {
	for _, nr := range p.sortedNrs() {
		r, ok := p.ArgRules[nr]
		if !ok {
			continue
		}
		if _, dup := p.Actions[nr]; dup {
			return fmt.Errorf("seccomp: nr %d appears in both Actions and ArgRules", nr)
		}
		if len(r.Matches) > 6 {
			return fmt.Errorf("seccomp: nr %d: too many arg matches (%d)", nr, len(r.Matches))
		}
		for _, m := range r.Matches {
			if m.Pos < 0 || m.Pos > 5 {
				return fmt.Errorf("seccomp: nr %d: arg position %d out of range", nr, m.Pos)
			}
		}
	}
	return nil
}

// bodyFor emits the decision block entered once the syscall number has
// matched nr: either a bare return of the configured action, or an
// argument-compare chain for an ArgRule. Every path through the block ends
// in a return (arg loads clobber A, so nothing downstream may rely on it).
func (p *Policy) bodyFor(nr uint32) []Insn {
	r, ok := p.ArgRules[nr]
	if !ok {
		return []Insn{RetConst(p.Actions[nr])}
	}
	if len(r.Matches) == 0 {
		return []Insn{RetConst(r.Match)}
	}
	matches := slices.Clone(r.Matches)
	slices.SortStableFunc(matches, func(a, b ArgMatch) int { return a.Pos - b.Pos })
	// Layout: 4 insns per match, then `ret Match` at 4k and `ret Else` at
	// 4k+1. Each failed comparison branches to the else return.
	body := make([]Insn, 0, 4*len(matches)+2)
	for _, m := range matches {
		i := len(body)
		// Classic BPF loads are 32-bit, so a 64-bit equality test must
		// compare BOTH halves of args[pos]; checking only the low word
		// would silently truncate constants above 2^32 and negative
		// sentinels like -1 fds.
		body = append(body,
			LoadAbs(OffArgLo(m.Pos)),
			JumpEq(uint32(m.Val), 0, uint8(4*len(matches)-i-1)),
			LoadAbs(OffArgHi(m.Pos)),
			JumpEq(uint32(m.Val>>32), 0, uint8(4*len(matches)-i-3)),
		)
	}
	return append(body, RetConst(r.Match), RetConst(r.Else))
}

// Compile lowers the policy to a cBPF program:
//
//	[arch guard]
//	ld  [nr]
//	jeq nr_i -> body_i   (one comparison chain entry per rule)
//	ret default
//
// where body_i is a bare action return or an argument-compare chain (see
// bodyFor). Rules are emitted in ascending syscall-number order for
// determinism.
func (p *Policy) Compile() ([]Insn, error) {
	if err := p.checkRules(); err != nil {
		return nil, err
	}
	if len(p.Actions)+len(p.ArgRules) > MaxInsns/2 {
		return nil, fmt.Errorf("seccomp: too many rules (%d)", len(p.Actions)+len(p.ArgRules))
	}
	var prog []Insn
	if p.CheckArch {
		prog = append(prog,
			LoadAbs(OffArch),
			JumpEq(AuditArchX86_64, 1, 0),
			RetConst(RetKill),
		)
	}
	prog = append(prog, LoadAbs(OffNr))
	// Each rule is `jeq nr, 0, len(body); body` — fall through to the next
	// comparison on mismatch. Bodies are at most 26 instructions (6 matches
	// × 4 + 2 returns), well inside the 8-bit branch range.
	for _, nr := range p.sortedNrs() {
		body := p.bodyFor(nr)
		prog = append(prog, JumpEq(nr, 0, uint8(len(body))))
		prog = append(prog, body...)
	}
	prog = append(prog, RetConst(p.Default))
	if err := Validate(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// CompileTree lowers the policy to a balanced binary-search program over
// the sorted syscall numbers (the libseccomp binary-tree technique):
//
//	[arch guard]
//	ld  [nr]
//	jge pivot -> right half          (one instruction per tree level)
//	[left half] [right half]
//
// with leaves of up to leafRun syscalls lowered as short jeq runs. The
// emitted program is action-equivalent to Compile's linear chain but
// executes O(log n) instructions per evaluation instead of O(n), which is
// what the per-hook cycle cost of the ModeHookOnly rows measures.
func (p *Policy) CompileTree() ([]Insn, error) {
	if err := p.checkRules(); err != nil {
		return nil, err
	}
	// Worst case per plain rule: jgt + ja trampoline + jeq + ret, plus one
	// default return per leaf (#rules + 1 leaves) and the 4-insn prologue.
	// Arg-rule bodies are longer; Validate's length check backstops them.
	if len(p.Actions)+len(p.ArgRules) > (MaxInsns-8)/6 {
		return nil, fmt.Errorf("seccomp: too many rules (%d)", len(p.Actions)+len(p.ArgRules))
	}
	var prog []Insn
	if p.CheckArch {
		prog = append(prog,
			LoadAbs(OffArch),
			JumpEq(AuditArchX86_64, 1, 0),
			RetConst(RetKill),
		)
	}
	prog = append(prog, LoadAbs(OffNr))
	prog = append(prog, p.emitSearch(p.sortedNrs())...)
	if err := Validate(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// leafRun is the maximum number of syscalls lowered as one jeq run at a
// tree leaf; above it the range is split by a jge pivot.
const leafRun = 4

// emitSearch emits the binary search over nrs as a self-contained block:
// A holds the syscall number on entry, and every path ends in a return.
// Internal nodes cost exactly one executed instruction (a jge range
// split); leaves cost one jeq per candidate plus that candidate's decision
// body — a bare return, or a per-nr arg subtree whose mismatch jumps skip
// to the next candidate's comparison.
func (p *Policy) emitSearch(nrs []uint32) []Insn {
	if len(nrs) <= leafRun {
		var block []Insn
		for _, nr := range nrs {
			body := p.bodyFor(nr)
			block = append(block, JumpEq(nr, 0, uint8(len(body))))
			block = append(block, body...)
		}
		return append(block, RetConst(p.Default))
	}
	// Split at the first element of the upper half: A >= pivot searches the
	// right block, A < pivot falls through to the left block.
	mid := len(nrs) / 2
	pivot := nrs[mid]
	left := p.emitSearch(nrs[:mid])
	right := p.emitSearch(nrs[mid:])
	// Layout: [jge][left][right]. Conditional branch offsets are 8-bit, so
	// a skip past a long left block goes through an unconditional `ja`
	// trampoline (32-bit offset): [jge][ja][left][right].
	skip := len(left)
	block := make([]Insn, 0, 2+len(left)+len(right))
	if skip <= 255 {
		block = append(block, Insn{Code: ClsJmp | JmpJge | SrcK, Jt: uint8(skip), Jf: 0, K: pivot})
	} else {
		block = append(block,
			Insn{Code: ClsJmp | JmpJge | SrcK, Jt: 0, Jf: 1, K: pivot},
			Jump(uint32(skip)))
	}
	block = append(block, left...)
	block = append(block, right...)
	return block
}

// sortedNrs returns the union of Actions and ArgRules syscall numbers in
// ascending order.
func (p *Policy) sortedNrs() []uint32 {
	nrs := make([]uint32, 0, len(p.Actions)+len(p.ArgRules))
	for nr := range p.Actions {
		nrs = append(nrs, nr)
	}
	for nr := range p.ArgRules {
		if _, ok := p.Actions[nr]; !ok {
			nrs = append(nrs, nr)
		}
	}
	slices.Sort(nrs)
	return nrs
}

// Disasm renders the program for debugging.
func Disasm(prog []Insn) string {
	out := ""
	for pc, in := range prog {
		out += fmt.Sprintf("%3d: ", pc)
		switch {
		case in.Code == ClsLd|SizeW|ModeAbs:
			out += fmt.Sprintf("ld  [%s]\n", offsetName(in.K))
		case in.Code&0x07 == ClsJmp && in.Code&0xf0 == JmpJa:
			out += fmt.Sprintf("ja  +%d\n", in.K)
		case in.Code&0x07 == ClsJmp:
			out += fmt.Sprintf("j%s #%#x jt=%d jf=%d\n", jmpName(in.Code), in.K, in.Jt, in.Jf)
		case in.Code&0x07 == ClsRet && in.Code&0x18 == RvalA:
			out += "ret A\n"
		case in.Code&0x07 == ClsRet:
			out += fmt.Sprintf("ret %s\n", ActionName(in.K))
		default:
			out += fmt.Sprintf("op %#x k=%#x\n", in.Code, in.K)
		}
	}
	return out
}

// offsetName renders a seccomp_data load offset symbolically so arg-compare
// chains read as `ld [args[i].lo]` rather than raw byte offsets.
func offsetName(off uint32) string {
	switch {
	case off == OffNr:
		return "nr"
	case off == OffArch:
		return "arch"
	case off == OffIPLo:
		return "ip.lo"
	case off == OffIPHi:
		return "ip.hi"
	case off >= 16 && off < 64 && off%4 == 0:
		i := (off - 16) / 8
		if (off-16)%8 == 0 {
			return fmt.Sprintf("args[%d].lo", i)
		}
		return fmt.Sprintf("args[%d].hi", i)
	}
	return fmt.Sprintf("%d", off)
}

func jmpName(code uint16) string {
	switch code & 0xf0 {
	case JmpJeq:
		return "eq"
	case JmpJgt:
		return "gt"
	case JmpJge:
		return "ge"
	case JmpJset:
		return "set"
	}
	return "??"
}
