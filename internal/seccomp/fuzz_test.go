package seccomp

import (
	"encoding/binary"
	"testing"
)

// FuzzRun hardens the cBPF interpreter: arbitrary instruction streams that
// pass Validate must execute without panicking, terminate, and return one
// of the defined outcomes or an error.
func FuzzRun(f *testing.F) {
	seed := func(prog []Insn) []byte {
		buf := make([]byte, 0, len(prog)*8)
		for _, in := range prog {
			var b [8]byte
			binary.LittleEndian.PutUint16(b[0:], in.Code)
			b[2], b[3] = in.Jt, in.Jf
			binary.LittleEndian.PutUint32(b[4:], in.K)
			buf = append(buf, b[:]...)
		}
		return buf
	}
	pol := &Policy{Default: RetAllow, Actions: map[uint32]uint32{59: RetTrace}, CheckArch: true}
	compiled, _ := pol.Compile()
	f.Add(seed(compiled), uint32(59))
	f.Add(seed([]Insn{LoadAbs(0), RetAcc()}), uint32(1))
	f.Add(seed([]Insn{{Code: ClsAlu | AluDiv | SrcK, K: 0}, RetConst(0)}), uint32(0))
	f.Add(seed([]Insn{{Code: ClsLdx | ModeMem, K: 3}, RetAcc()}), uint32(7))

	f.Fuzz(func(t *testing.T, raw []byte, nr uint32) {
		var prog []Insn
		for i := 0; i+8 <= len(raw) && len(prog) < 64; i += 8 {
			prog = append(prog, Insn{
				Code: binary.LittleEndian.Uint16(raw[i:]),
				Jt:   raw[i+2], Jf: raw[i+3],
				K: binary.LittleEndian.Uint32(raw[i+4:]),
			})
		}
		if Validate(prog) != nil {
			return
		}
		d := &Data{Nr: nr, Arch: AuditArchX86_64}
		action, steps, err := Run(prog, d)
		if err != nil {
			return
		}
		if steps <= 0 {
			t.Fatalf("nonpositive step count %d", steps)
		}
		_ = action
	})
}
