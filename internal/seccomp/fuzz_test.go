package seccomp

import (
	"encoding/binary"
	"testing"
)

// FuzzRun hardens the cBPF interpreter: arbitrary instruction streams that
// pass Validate must execute without panicking, terminate, and return one
// of the defined outcomes or an error.
func FuzzRun(f *testing.F) {
	seed := func(prog []Insn) []byte {
		buf := make([]byte, 0, len(prog)*8)
		for _, in := range prog {
			var b [8]byte
			binary.LittleEndian.PutUint16(b[0:], in.Code)
			b[2], b[3] = in.Jt, in.Jf
			binary.LittleEndian.PutUint32(b[4:], in.K)
			buf = append(buf, b[:]...)
		}
		return buf
	}
	pol := &Policy{Default: RetAllow, Actions: map[uint32]uint32{59: RetTrace}, CheckArch: true}
	compiled, _ := pol.Compile()
	f.Add(seed(compiled), uint32(59))
	f.Add(seed([]Insn{LoadAbs(0), RetAcc()}), uint32(1))
	f.Add(seed([]Insn{{Code: ClsAlu | AluDiv | SrcK, K: 0}, RetConst(0)}), uint32(0))
	f.Add(seed([]Insn{{Code: ClsLdx | ModeMem, K: 3}, RetAcc()}), uint32(7))

	f.Fuzz(func(t *testing.T, raw []byte, nr uint32) {
		var prog []Insn
		for i := 0; i+8 <= len(raw) && len(prog) < 64; i += 8 {
			prog = append(prog, Insn{
				Code: binary.LittleEndian.Uint16(raw[i:]),
				Jt:   raw[i+2], Jf: raw[i+3],
				K: binary.LittleEndian.Uint32(raw[i+4:]),
			})
		}
		if Validate(prog) != nil {
			return
		}
		d := &Data{Nr: nr, Arch: AuditArchX86_64}
		action, steps, err := Run(prog, d)
		if err != nil {
			return
		}
		if steps <= 0 {
			t.Fatalf("nonpositive step count %d", steps)
		}
		_ = action
	})
}

// FuzzValidateEmitSearch hardens Validate against malformed branch offsets
// in emitSearch output: compile a tree program (with arg subtrees), mutate
// one jump offset, and require fail-closed behaviour — pristine programs
// always validate, and any mutant Validate still accepts must run to a
// clean return on arbitrary probe data.
func FuzzValidateEmitSearch(f *testing.F) {
	f.Add([]byte{59, 1, 10, 0, 99, 2}, uint32(2), byte(7), uint32(59), uint64(42))
	f.Add([]byte{3, 3, 16, 3, 0, 1, 7, 2}, uint32(9), byte(255), uint32(3), uint64(1<<40))
	f.Add([]byte{}, uint32(0), byte(1), uint32(0), uint64(0))

	f.Fuzz(func(t *testing.T, raw []byte, mutIdx uint32, mutDelta byte, probe uint32, arg uint64) {
		p := &Policy{Default: RetAllow, Actions: map[uint32]uint32{}, ArgRules: map[uint32]ArgRule{}, CheckArch: true}
		for i := 0; i+2 <= len(raw) && len(p.Actions)+len(p.ArgRules) < 128; i += 2 {
			nr := uint32(raw[i]) * 0x01010101 / 7
			if _, ok := p.Actions[nr]; ok {
				continue
			}
			if _, ok := p.ArgRules[nr]; ok {
				continue
			}
			switch raw[i+1] % 3 {
			case 0:
				p.Actions[nr] = RetKill
			case 1:
				p.Actions[nr] = RetTrace
			default:
				p.ArgRules[nr] = ArgRule{
					Matches: []ArgMatch{{Pos: int(raw[i+1]) % 6, Val: arg}},
					Match:   RetLog,
					Else:    RetTrace,
				}
			}
		}
		prog, err := p.CompileTree()
		if err != nil {
			t.Fatalf("CompileTree: %v", err)
		}
		if err := Validate(prog); err != nil {
			t.Fatalf("pristine emitSearch output rejected: %v", err)
		}
		// Mutate one jump's offset fields.
		mut := make([]Insn, len(prog))
		copy(mut, prog)
		i := int(mutIdx) % len(mut)
		if mut[i].Code&0x07 == ClsJmp {
			if mut[i].Code&0xf0 == JmpJa {
				mut[i].K += uint32(mutDelta)
			} else if mutDelta&1 == 0 {
				mut[i].Jt += mutDelta
			} else {
				mut[i].Jf += mutDelta
			}
		}
		if Validate(mut) != nil {
			return // rejected: failed closed
		}
		d := &Data{Nr: probe, Arch: AuditArchX86_64, Args: [6]uint64{arg, arg, arg, arg, arg, arg}}
		if _, _, err := Run(mut, d); err != nil {
			t.Fatalf("validated mutant faulted at runtime: %v", err)
		}
	})
}

// FuzzCompileTreeEquivalence decodes the input into an arbitrary rule set
// and probe number and asserts that the binary-search program returns the
// same action as the linear chain — the compilation-level counterpart of
// FuzzRun's interpreter hardening.
func FuzzCompileTreeEquivalence(f *testing.F) {
	f.Add([]byte{59, 1, 10, 1, 99, 0}, uint32(59))
	f.Add([]byte{}, uint32(0))
	f.Add([]byte{0, 0, 1, 1, 2, 0, 255, 1}, uint32(1<<31))

	f.Fuzz(func(t *testing.T, raw []byte, probe uint32) {
		p := &Policy{Default: RetAllow, Actions: map[uint32]uint32{}, CheckArch: true}
		for i := 0; i+2 <= len(raw) && len(p.Actions) < 256; i += 2 {
			// Spread rule numbers across the 32-bit space so the search
			// tree sees sparse, unsorted inputs.
			nr := uint32(raw[i]) * 0x01010101 / 7
			if raw[i+1]&1 == 0 {
				p.Actions[nr] = RetKill
			} else {
				p.Actions[nr] = RetTrace
			}
		}
		lin, err := p.Compile()
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		tree, err := p.CompileTree()
		if err != nil {
			t.Fatalf("CompileTree: %v", err)
		}
		data := &Data{Nr: probe, Arch: AuditArchX86_64}
		want, _, err := Run(lin, data)
		if err != nil {
			t.Fatalf("linear run: %v", err)
		}
		got, _, err := Run(tree, data)
		if err != nil {
			t.Fatalf("tree run: %v", err)
		}
		if got != want {
			t.Fatalf("probe %d: tree %s, linear %s", probe, ActionName(got), ActionName(want))
		}
	})
}
