package seccomp

import (
	"reflect"
	"testing"
)

func TestFilterIDStable(t *testing.T) {
	prog := []Insn{
		LoadAbs(0),
		JumpEq(42, 0, 1),
		RetConst(RetAllow),
		RetConst(RetKill),
	}
	a, b := FilterID(prog), FilterID(prog)
	if a != b {
		t.Fatalf("FilterID not deterministic: %#x vs %#x", a, b)
	}
	if a == 0 {
		t.Fatalf("FilterID collapsed to zero")
	}
}

func TestFilterIDDistinguishes(t *testing.T) {
	base := []Insn{LoadAbs(0), JumpEq(42, 0, 1), RetConst(RetAllow), RetConst(RetKill)}
	id := FilterID(base)

	// Any single-field change must move the hash: opcode, jump targets,
	// the immediate (including high bytes), and instruction order.
	mutants := [][]Insn{
		{LoadAbs(4), JumpEq(42, 0, 1), RetConst(RetAllow), RetConst(RetKill)},
		{LoadAbs(0), JumpEq(42, 1, 0), RetConst(RetAllow), RetConst(RetKill)},
		{LoadAbs(0), JumpEq(43, 0, 1), RetConst(RetAllow), RetConst(RetKill)},
		{LoadAbs(0), JumpEq(42|1<<24, 0, 1), RetConst(RetAllow), RetConst(RetKill)},
		{LoadAbs(0), JumpEq(42, 0, 1), RetConst(RetKill), RetConst(RetAllow)},
		base[:3],
	}
	for i, m := range mutants {
		if FilterID(m) == id {
			t.Errorf("mutant %d hashed identically to the base program", i)
		}
	}
}

func TestFilterIDCompiledPrograms(t *testing.T) {
	// Linear and tree compilations of the same policy are different
	// programs and must carry different identities, while recompiling the
	// same shape reproduces the same identity.
	pol := &Policy{
		Default:   RetAllow,
		Actions:   map[uint32]uint32{1: RetTrace, 2: RetKill, 9: RetTrace, 60: RetAllow},
		CheckArch: true,
	}
	lin, err := pol.Compile()
	if err != nil {
		t.Fatal(err)
	}
	tree, err := pol.CompileTree()
	if err != nil {
		t.Fatal(err)
	}
	lin2, err := pol.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if FilterID(lin) != FilterID(lin2) {
		t.Fatalf("recompiling the same policy changed the filter identity")
	}
	// The hash must agree with instruction-level equality in both
	// directions (small policies may compile to the same program under
	// both strategies).
	if same := reflect.DeepEqual(lin, tree); same != (FilterID(lin) == FilterID(tree)) {
		t.Fatalf("identity disagrees with program equality: equal=%v lin=%#x tree=%#x",
			same, FilterID(lin), FilterID(tree))
	}
}
