package seccomp

// FilterID fingerprints a compiled program: FNV-1a over every
// instruction's fields in order. Two programs get the same ID iff they are
// instruction-for-instruction identical, which is what the fleet's policy
// hot reload uses to tell artifact generations apart (a staged generation
// whose filter hashes like the installed one is a metadata/config-only
// swap; a differing ID proves the kernel-side program really changed).
//
// The hash is stable across processes and runs — no map iteration, no
// pointers — so generation IDs derived from it are safe to compare in
// golden tests and across the fleet.
func FilterID(prog []Insn) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	byte1 := func(b uint64) {
		h = (h ^ (b & 0xff)) * prime64
	}
	for _, in := range prog {
		byte1(uint64(in.Code))
		byte1(uint64(in.Code >> 8))
		byte1(uint64(in.Jt))
		byte1(uint64(in.Jf))
		byte1(uint64(in.K))
		byte1(uint64(in.K >> 8))
		byte1(uint64(in.K >> 16))
		byte1(uint64(in.K >> 24))
	}
	return h
}
