package seccomp

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPolicyCompileAndRun(t *testing.T) {
	p := &Policy{
		Default: RetAllow,
		Actions: map[uint32]uint32{
			59: RetTrace, // execve
			10: RetTrace, // mprotect
			99: RetKill,
		},
		CheckArch: true,
	}
	prog, err := p.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	cases := []struct {
		nr   uint32
		want uint32
	}{
		{59, RetTrace},
		{10, RetTrace},
		{99, RetKill},
		{1, RetAllow},
		{0, RetAllow},
	}
	for _, tc := range cases {
		got, steps, err := Run(prog, &Data{Nr: tc.nr, Arch: AuditArchX86_64})
		if err != nil {
			t.Fatalf("Run(nr=%d): %v", tc.nr, err)
		}
		if got != tc.want {
			t.Errorf("nr %d: action %s, want %s", tc.nr, ActionName(got), ActionName(tc.want))
		}
		if steps <= 0 || steps > len(prog) {
			t.Errorf("nr %d: steps = %d out of range", tc.nr, steps)
		}
	}
	// Foreign architecture is killed by the guard.
	got, _, err := Run(prog, &Data{Nr: 1, Arch: 0x1234})
	if err != nil || got != RetKill {
		t.Fatalf("foreign arch: %s, %v", ActionName(got), err)
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	cases := []struct {
		name string
		prog []Insn
		want string
	}{
		{"empty", nil, "empty"},
		{"no return", []Insn{LoadAbs(0)}, "does not end in a return"},
		{"jump out of range", []Insn{Jump(5), RetConst(RetAllow)}, "out of range"},
		{"branch out of range", []Insn{JumpEq(1, 9, 0), RetConst(RetAllow)}, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Validate(tc.prog)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate = %v, want %q", err, tc.want)
			}
		})
	}
	long := make([]Insn, MaxInsns+1)
	for i := range long {
		long[i] = RetConst(RetAllow)
	}
	if err := Validate(long); err == nil {
		t.Fatal("overlong program accepted")
	}
}

func TestDataLoadOffsets(t *testing.T) {
	d := &Data{
		Nr:   7,
		Arch: AuditArchX86_64,
		IP:   0x1122334455667788,
		Args: [6]uint64{0xa, 0xb, 0xc, 0xd, 0xe, 0xf00000000},
	}
	checks := []struct {
		off  uint32
		want uint32
	}{
		{OffNr, 7},
		{OffArch, AuditArchX86_64},
		{OffIPLo, 0x55667788},
		{OffIPHi, 0x11223344},
		{OffArgLo(0), 0xa},
		{OffArgLo(5), 0},
		{OffArgHi(5), 0xf},
	}
	for _, c := range checks {
		prog := []Insn{LoadAbs(c.off), RetAcc()}
		got, _, err := Run(prog, d)
		if err != nil {
			t.Fatalf("off %d: %v", c.off, err)
		}
		if got != c.want {
			t.Errorf("off %d: got %#x want %#x", c.off, got, c.want)
		}
	}
	// Misaligned / out-of-struct loads fault.
	for _, off := range []uint32{1, 3, 64, 100} {
		prog := []Insn{LoadAbs(off), RetAcc()}
		if _, _, err := Run(prog, d); err == nil {
			t.Errorf("load at %d succeeded", off)
		}
	}
}

func TestAluAndScratch(t *testing.T) {
	// A = nr; M[0] = A; A = A*2 + 5; X = M[0]; A -= X  => A = nr + 5.
	prog := []Insn{
		LoadAbs(OffNr),
		{Code: ClsSt, K: 0},
		{Code: ClsAlu | AluMul | SrcK, K: 2},
		{Code: ClsAlu | AluAdd | SrcK, K: 5},
		{Code: ClsLdx | ModeMem, K: 0},
		{Code: ClsAlu | AluSub | SrcX},
		RetAcc(),
	}
	got, _, err := Run(prog, &Data{Nr: 100})
	if err != nil {
		t.Fatal(err)
	}
	if got != 105 {
		t.Fatalf("got %d, want 105", got)
	}
}

func TestJumpVariants(t *testing.T) {
	// jgt 10: ret 1 else jge 5: ret 2 else jset 0x1: ret 3 else ret 4
	prog := []Insn{
		LoadAbs(OffNr),
		{Code: ClsJmp | JmpJgt | SrcK, K: 10, Jt: 0, Jf: 1},
		RetConst(1),
		{Code: ClsJmp | JmpJge | SrcK, K: 5, Jt: 0, Jf: 1},
		RetConst(2),
		{Code: ClsJmp | JmpJset | SrcK, K: 1, Jt: 0, Jf: 1},
		RetConst(3),
		RetConst(4),
	}
	for _, tc := range []struct{ nr, want uint32 }{
		{11, 1}, {10, 2}, {5, 2}, {3, 3}, {2, 4},
	} {
		got, _, err := Run(prog, &Data{Nr: tc.nr})
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("nr %d: got %d want %d", tc.nr, got, tc.want)
		}
	}
}

func TestRunFaults(t *testing.T) {
	if _, _, err := Run([]Insn{{Code: ClsAlu | AluDiv | SrcK, K: 0}, RetAcc()}, &Data{}); err == nil {
		t.Fatal("div by zero passed")
	}
	if _, _, err := Run([]Insn{{Code: 0xff}}, &Data{}); err == nil {
		t.Fatal("bad opcode passed")
	}
	if _, _, err := Run([]Insn{{Code: ClsSt, K: 99}}, &Data{}); err == nil {
		t.Fatal("bad scratch slot passed")
	}
}

func TestActionName(t *testing.T) {
	for v, want := range map[uint32]string{
		RetAllow:       "ALLOW",
		RetKill:        "KILL",
		RetTrace:       "TRACE",
		RetTrace | 0x1: "TRACE", // data bits ignored
		RetErrno | 13:  "ERRNO",
		RetTrap:        "TRAP",
		RetLog:         "LOG",
	} {
		if got := ActionName(v); got != want {
			t.Errorf("ActionName(%#x) = %q want %q", v, got, want)
		}
	}
}

func TestDisasmMentionsEveryInsn(t *testing.T) {
	p := &Policy{Default: RetAllow, Actions: map[uint32]uint32{59: RetTrace}}
	prog, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	d := Disasm(prog)
	if !strings.Contains(d, "ld") || !strings.Contains(d, "jeq") || !strings.Contains(d, "ret ALLOW") {
		t.Fatalf("Disasm output incomplete:\n%s", d)
	}
}

func TestCompileTreeAndRun(t *testing.T) {
	p := &Policy{
		Default: RetAllow,
		Actions: map[uint32]uint32{
			59: RetTrace, // execve
			10: RetTrace, // mprotect
			99: RetKill,
		},
		CheckArch: true,
	}
	prog, err := p.CompileTree()
	if err != nil {
		t.Fatalf("CompileTree: %v", err)
	}
	for _, tc := range []struct{ nr, want uint32 }{
		{59, RetTrace}, {10, RetTrace}, {99, RetKill}, {1, RetAllow}, {0, RetAllow}, {1 << 30, RetAllow},
	} {
		got, steps, err := Run(prog, &Data{Nr: tc.nr, Arch: AuditArchX86_64})
		if err != nil {
			t.Fatalf("Run(nr=%d): %v", tc.nr, err)
		}
		if got != tc.want {
			t.Errorf("nr %d: action %s, want %s", tc.nr, ActionName(got), ActionName(tc.want))
		}
		if steps <= 0 || steps > len(prog) {
			t.Errorf("nr %d: steps = %d out of range", tc.nr, steps)
		}
	}
	got, _, err := Run(prog, &Data{Nr: 1, Arch: 0x1234})
	if err != nil || got != RetKill {
		t.Fatalf("foreign arch: %s, %v", ActionName(got), err)
	}
}

// Property: the tree program returns exactly the same action as the linear
// program for any rule set and probe, including probes outside the set.
func TestCompileTreeEquivalence(t *testing.T) {
	f := func(rules map[uint32]bool, probe uint32) bool {
		p := &Policy{Default: RetAllow, Actions: map[uint32]uint32{}, CheckArch: true}
		for nr, trace := range rules {
			if trace {
				p.Actions[nr] = RetTrace
			} else {
				p.Actions[nr] = RetKill
			}
		}
		lin, err := p.Compile()
		if err != nil {
			return false
		}
		tree, err := p.CompileTree()
		if err != nil {
			return false
		}
		data := &Data{Nr: probe, Arch: AuditArchX86_64}
		want, _, err := Run(lin, data)
		if err != nil {
			return false
		}
		got, _, err := Run(tree, data)
		if err != nil {
			return false
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// A rule set large enough that left-subtree skips exceed the 8-bit branch
// range exercises the `ja` trampoline path; the tree must stay equivalent
// and strictly cheaper to evaluate than the linear chain.
func TestCompileTreeLargePolicy(t *testing.T) {
	p := &Policy{Default: RetAllow, Actions: map[uint32]uint32{}, CheckArch: true}
	for i := uint32(0); i < 600; i++ {
		nr := i * 7
		act := RetTrace
		if i%3 == 0 {
			act = RetKill
		}
		p.Actions[nr] = act
	}
	lin, err := p.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	tree, err := p.CompileTree()
	if err != nil {
		t.Fatalf("CompileTree: %v", err)
	}
	var linSteps, treeSteps int
	for nr := uint32(0); nr < 600*7+50; nr += 3 {
		data := &Data{Nr: nr, Arch: AuditArchX86_64}
		want, ls, err := Run(lin, data)
		if err != nil {
			t.Fatalf("linear nr %d: %v", nr, err)
		}
		got, ts, err := Run(tree, data)
		if err != nil {
			t.Fatalf("tree nr %d: %v", nr, err)
		}
		if got != want {
			t.Fatalf("nr %d: tree %s, linear %s", nr, ActionName(got), ActionName(want))
		}
		linSteps += ls
		treeSteps += ts
	}
	if treeSteps >= linSteps {
		t.Fatalf("tree executed %d insns, linear %d: expected strictly fewer", treeSteps, linSteps)
	}
}

func TestCompileTreeTooManyRules(t *testing.T) {
	p := &Policy{Default: RetAllow, Actions: map[uint32]uint32{}}
	for i := uint32(0); i <= uint32((MaxInsns-8)/6); i++ {
		p.Actions[i] = RetKill
	}
	if _, err := p.CompileTree(); err == nil {
		t.Fatal("oversized rule set accepted")
	}
}

// Property: a compiled policy always returns exactly the configured action
// for every syscall number.
func TestPolicyProperty(t *testing.T) {
	f := func(rules map[uint32]bool, probe uint32) bool {
		p := &Policy{Default: RetAllow, Actions: map[uint32]uint32{}}
		for nr, trace := range rules {
			nr %= 512
			if trace {
				p.Actions[nr] = RetTrace
			} else {
				p.Actions[nr] = RetKill
			}
		}
		prog, err := p.Compile()
		if err != nil {
			return false
		}
		probe %= 512
		got, _, err := Run(prog, &Data{Nr: probe})
		if err != nil {
			return false
		}
		want, ok := p.Actions[probe]
		if !ok {
			want = RetAllow
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
