package seccomp

import "testing"

// BenchmarkFilterEval measures one filter evaluation — the cost behind
// Table 7's "seccomp hook only" row.
func BenchmarkFilterEval(b *testing.B) {
	pol := &Policy{Default: RetAllow, Actions: map[uint32]uint32{}, CheckArch: true}
	for _, nr := range []uint32{9, 10, 25, 41, 42, 43, 49, 50, 56, 57, 58, 59, 90, 101, 105, 106, 113, 216, 288, 322} {
		pol.Actions[nr] = RetTrace
	}
	prog, err := pol.Compile()
	if err != nil {
		b.Fatal(err)
	}
	d := &Data{Nr: 1, Arch: AuditArchX86_64} // worst case: falls through all rules
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Run(prog, d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFilterEvalTree measures the same worst-case evaluation under
// the binary-search compilation.
func BenchmarkFilterEvalTree(b *testing.B) {
	pol := &Policy{Default: RetAllow, Actions: map[uint32]uint32{}, CheckArch: true}
	for _, nr := range []uint32{9, 10, 25, 41, 42, 43, 49, 50, 56, 57, 58, 59, 90, 101, 105, 106, 113, 216, 288, 322} {
		pol.Actions[nr] = RetTrace
	}
	prog, err := pol.CompileTree()
	if err != nil {
		b.Fatal(err)
	}
	d := &Data{Nr: 1, Arch: AuditArchX86_64}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Run(prog, d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolicyCompile measures filter construction (monitor attach).
func BenchmarkPolicyCompile(b *testing.B) {
	pol := &Policy{Default: RetAllow, Actions: map[uint32]uint32{}, CheckArch: true}
	for nr := uint32(0); nr < 64; nr++ {
		pol.Actions[nr] = RetKill
	}
	for i := 0; i < b.N; i++ {
		if _, err := pol.Compile(); err != nil {
			b.Fatal(err)
		}
	}
}
