package seccomp

import (
	"strings"
	"testing"
	"testing/quick"
)

// compileBoth compiles the policy with both the linear and tree compilers.
func compileBoth(t *testing.T, p *Policy) (lin, tree []Insn) {
	t.Helper()
	lin, err := p.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	tree, err = p.CompileTree()
	if err != nil {
		t.Fatalf("CompileTree: %v", err)
	}
	return lin, tree
}

func runAction(t *testing.T, prog []Insn, d *Data) uint32 {
	t.Helper()
	got, _, err := Run(prog, d)
	if err != nil {
		t.Fatalf("Run(nr=%d): %v", d.Nr, err)
	}
	return got
}

func TestArgRuleCompileAndRun(t *testing.T) {
	p := &Policy{
		Default: RetAllow,
		Actions: map[uint32]uint32{59: RetTrace},
		ArgRules: map[uint32]ArgRule{
			// close(fd=3) allowed in-filter, anything else falls through.
			3: {Matches: []ArgMatch{{Pos: 0, Val: 3}}, Match: RetLog, Else: RetTrace},
			// two-argument conjunction
			13: {Matches: []ArgMatch{{Pos: 0, Val: 1}, {Pos: 2, Val: 8}}, Match: RetLog, Else: RetTrace},
			// empty match list degenerates to an unconditional action
			16: {Match: RetLog, Else: RetTrace},
		},
		CheckArch: true,
	}
	lin, tree := compileBoth(t, p)
	cases := []struct {
		nr   uint32
		args [6]uint64
		want uint32
	}{
		{3, [6]uint64{3}, RetLog},
		{3, [6]uint64{4}, RetTrace},
		{13, [6]uint64{1, 0, 8}, RetLog},
		{13, [6]uint64{1, 0, 9}, RetTrace},
		{13, [6]uint64{2, 0, 8}, RetTrace},
		{16, [6]uint64{99, 99, 99}, RetLog},
		{59, [6]uint64{}, RetTrace},
		{2, [6]uint64{}, RetAllow},
	}
	for _, prog := range [][]Insn{lin, tree} {
		for _, tc := range cases {
			d := &Data{Nr: tc.nr, Arch: AuditArchX86_64, Args: tc.args}
			if got := runAction(t, prog, d); got != tc.want {
				t.Errorf("nr %d args %v: action %s, want %s",
					tc.nr, tc.args, ActionName(got), ActionName(tc.want))
			}
		}
	}
}

// Regression for the 64-bit truncation bug class: constants whose low
// 32 bits collide must still be distinguished by the high word, and
// negative sentinels (-1 fds) must match only the full-width value.
func TestArgRuleHighWordRegression(t *testing.T) {
	const sentinel = 0xffff_ffff_ffff_ffff // int64(-1) as a uint64
	p := &Policy{
		Default: RetAllow,
		ArgRules: map[uint32]ArgRule{
			9:  {Matches: []ArgMatch{{Pos: 4, Val: sentinel}}, Match: RetLog, Else: RetTrace},
			42: {Matches: []ArgMatch{{Pos: 1, Val: 0x1_0000_0005}}, Match: RetLog, Else: RetTrace},
		},
		CheckArch: true,
	}
	lin, tree := compileBoth(t, p)
	cases := []struct {
		nr   uint32
		args [6]uint64
		want uint32
	}{
		// -1 must not be matched by its low-word twin 0x00000000ffffffff.
		{9, [6]uint64{0, 0, 0, 0, sentinel}, RetLog},
		{9, [6]uint64{0, 0, 0, 0, 0x0000_0000_ffff_ffff}, RetTrace},
		{9, [6]uint64{0, 0, 0, 0, 0xffff_ffff_0000_0000}, RetTrace},
		// High-word-differing pair sharing the low word 5.
		{42, [6]uint64{0, 0x1_0000_0005}, RetLog},
		{42, [6]uint64{0, 0x0000_0005}, RetTrace},
		{42, [6]uint64{0, 0x2_0000_0005}, RetTrace},
	}
	for _, prog := range [][]Insn{lin, tree} {
		for _, tc := range cases {
			d := &Data{Nr: tc.nr, Arch: AuditArchX86_64, Args: tc.args}
			if got := runAction(t, prog, d); got != tc.want {
				t.Errorf("nr %d args %#x: action %s, want %s",
					tc.nr, tc.args, ActionName(got), ActionName(tc.want))
			}
		}
	}
}

// Property: linear and tree compilation of a policy with arg rules decide
// identically for every probe, including mismatching argument vectors.
func TestArgRuleTreeEquivalence(t *testing.T) {
	f := func(rules map[uint32]bool, consts map[uint32]uint64, probe uint32, args [6]uint64) bool {
		p := &Policy{Default: RetAllow, Actions: map[uint32]uint32{}, ArgRules: map[uint32]ArgRule{}, CheckArch: true}
		for nr, trace := range rules {
			if trace {
				p.Actions[nr] = RetTrace
			} else {
				p.Actions[nr] = RetKill
			}
		}
		for nr, c := range consts {
			if _, dup := p.Actions[nr]; dup {
				continue
			}
			p.ArgRules[nr] = ArgRule{
				Matches: []ArgMatch{{Pos: int(nr % 6), Val: c}},
				Match:   RetLog,
				Else:    RetTrace,
			}
		}
		lin, err := p.Compile()
		if err != nil {
			return false
		}
		tree, err := p.CompileTree()
		if err != nil {
			return false
		}
		data := &Data{Nr: probe, Arch: AuditArchX86_64, Args: args}
		want, _, err := Run(lin, data)
		if err != nil {
			return false
		}
		got, _, err := Run(tree, data)
		if err != nil {
			return false
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyRuleConflicts(t *testing.T) {
	dup := &Policy{
		Default:  RetAllow,
		Actions:  map[uint32]uint32{3: RetTrace},
		ArgRules: map[uint32]ArgRule{3: {Match: RetLog, Else: RetTrace}},
	}
	if _, err := dup.Compile(); err == nil || !strings.Contains(err.Error(), "both Actions and ArgRules") {
		t.Fatalf("duplicate nr: err = %v", err)
	}
	if _, err := dup.CompileTree(); err == nil {
		t.Fatal("duplicate nr accepted by CompileTree")
	}
	badPos := &Policy{
		Default:  RetAllow,
		ArgRules: map[uint32]ArgRule{3: {Matches: []ArgMatch{{Pos: 6, Val: 1}}, Match: RetLog, Else: RetTrace}},
	}
	if _, err := badPos.Compile(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("bad position: err = %v", err)
	}
}

// A branch offset that lands past the end of an arg-compare chain strands
// the chain's terminating return; Validate must reject it (fail closed)
// rather than let the mutation silently change the decision.
func TestValidateRejectsStrandedArgChain(t *testing.T) {
	p := &Policy{
		Default:  RetAllow,
		ArgRules: map[uint32]ArgRule{7: {Matches: []ArgMatch{{Pos: 0, Val: 42}}, Match: RetLog, Else: RetTrace}},
	}
	prog, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(prog); err != nil {
		t.Fatalf("pristine program rejected: %v", err)
	}
	// Layout: [ld nr][jeq 7][ld a0.lo][jeq lo][ld a0.hi][jeq hi][ret LOG][ret TRACE][ret ALLOW]
	// Push both else-branches one past `ret TRACE`: the chain's else return
	// becomes unreachable.
	mut := make([]Insn, len(prog))
	copy(mut, prog)
	bumped := 0
	for i, in := range mut {
		if in.Code&0x07 == ClsJmp && in.Code&0xf0 == JmpJeq && in.K != 7 && i > 1 {
			mut[i].Jf++
			bumped++
		}
	}
	if bumped != 2 {
		t.Fatalf("expected to mutate 2 arg-compare branches, got %d", bumped)
	}
	err = Validate(mut)
	if err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("stranded chain: Validate = %v, want unreachable error", err)
	}
}

func TestDisasmSymbolicArgOffsets(t *testing.T) {
	p := &Policy{
		Default:   RetAllow,
		ArgRules:  map[uint32]ArgRule{3: {Matches: []ArgMatch{{Pos: 2, Val: 0x1_0000_0001}}, Match: RetLog, Else: RetTrace}},
		CheckArch: true,
	}
	prog, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	d := Disasm(prog)
	for _, want := range []string{"[arch]", "[nr]", "[args[2].lo]", "[args[2].hi]", "ret LOG", "ret TRACE", "ret ALLOW"} {
		if !strings.Contains(d, want) {
			t.Errorf("Disasm missing %q:\n%s", want, d)
		}
	}
	if strings.Contains(d, "ld  [32]") || strings.Contains(d, "ld  [36]") {
		t.Errorf("Disasm still renders raw arg offsets:\n%s", d)
	}
}

// TestDisasmRendersEveryForm covers the renderer's remaining shapes:
// instruction-pointer and unknown load offsets, the non-equality jump
// names, accumulator returns, and the raw-opcode fallback.
func TestDisasmRendersEveryForm(t *testing.T) {
	prog := []Insn{
		LoadAbs(OffIPLo),
		LoadAbs(OffIPHi),
		LoadAbs(100),
		{Code: ClsJmp | JmpJgt | SrcK, K: 5, Jf: 1},
		{Code: ClsJmp | JmpJge | SrcK, K: 5, Jf: 1},
		{Code: ClsJmp | JmpJset | SrcK, K: 5, Jf: 1},
		{Code: ClsJmp | 0xd0, K: 5},
		RetAcc(),
		{Code: ClsAlu, K: 7},
	}
	d := Disasm(prog)
	for _, want := range []string{
		"[ip.lo]", "[ip.hi]", "[100]",
		"jgt", "jge", "jset", "j??",
		"ret A", "op 0x4",
	} {
		if !strings.Contains(d, want) {
			t.Errorf("Disasm missing %q:\n%s", want, d)
		}
	}
}
