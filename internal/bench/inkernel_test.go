package bench

import "testing"

func TestInKernelAblation(t *testing.T) {
	for _, app := range Apps {
		res, err := InKernelAblation(app, 30)
		if err != nil {
			t.Fatal(err)
		}
		if res.InKernelOverhead >= res.PtraceOverhead {
			t.Errorf("%s: in-kernel %.2f%% not cheaper than ptrace %.2f%%", app, res.InKernelOverhead, res.PtraceOverhead)
		}
		// The §11.2 claim: with in-kernel execution, even full file-system
		// coverage stays low-overhead.
		if res.InKernelOverhead > 10 {
			t.Errorf("%s: in-kernel fs overhead %.2f%%, want low", app, res.InKernelOverhead)
		}
		t.Logf("%s: fs-extension overhead ptrace=%.2f%% in-kernel=%.2f%%", app, res.PtraceOverhead, res.InKernelOverhead)
	}
}
