package bench

import "testing"

// TestShardScalingAblation runs the control-plane sweep at test scale and
// checks its two headline signals: adding shards relieves admission
// pressure (fewer rejections, lower worst wait, no worse makespan), and
// every point's hot reload applies once per tenant.
func TestShardScalingAblation(t *testing.T) {
	// 8 units with the reload at 4: every app (sqlite traps only on some
	// units) is guaranteed a trap boundary after the stage point.
	const units = 8
	tenants := []int{48}
	shards := []int{1, 4}
	res, err := ShardScaling(units, tenants, shards)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(tenants)*len(shards) {
		t.Fatalf("got %d rows, want %d", len(res.Rows), len(tenants)*len(shards))
	}
	one, four := res.Rows[0], res.Rows[1]
	if one.Shards != 1 || four.Shards != 4 {
		t.Fatalf("row order off: %+v", res.Rows)
	}
	if four.MaxWait >= one.MaxWait {
		t.Errorf("4 shards max wait %d not below 1 shard %d", four.MaxWait, one.MaxWait)
	}
	if four.Rejects > one.Rejects {
		t.Errorf("4 shards rejected more (%d) than 1 shard (%d)", four.Rejects, one.Rejects)
	}
	if four.Makespan > one.Makespan {
		t.Errorf("4 shards makespan %d above 1 shard %d", four.Makespan, one.Makespan)
	}
	for _, row := range res.Rows {
		if row.Reloads != uint64(row.Tenants) {
			t.Errorf("%d×%d: %d reloads, want one per tenant", row.Tenants, row.Shards, row.Reloads)
		}
		if row.ReloadMean <= 0 {
			t.Errorf("%d×%d: mean reload cycles %.0f, want positive", row.Tenants, row.Shards, row.ReloadMean)
		}
		if row.Throughput <= 0 {
			t.Errorf("%d×%d: zero throughput", row.Tenants, row.Shards)
		}
	}
	t.Logf("\n%s", RenderShardScaling(res))
}
