// Package bench implements the paper's evaluation harness (§9): it builds
// each application, applies a mitigation stack, drives the paper's
// workload, and converts measured cycle counts into the figures and tables
// of the evaluation section.
//
// # Measurement model
//
// The simulator executes one worker; the deployed applications run many
// (NGINX: 32 workers, SQLite/DBT2: 48, vsFTPd: serial clients). The
// monitor, as in the paper, is a single process that serializes trap
// handling for all workers. Aggregate throughput is therefore modeled as
//
//	rate = min( workers / perUnitCycles , 1 / perUnitMonitorCycles )
//
// with both per-unit terms measured, not assumed. This is what reconciles
// Figure 3 (sensitive syscalls: one cheap trap per unit, monitor far from
// saturation, <3% overhead) with Table 7 (file-system syscalls: a dozen
// state-fetching traps per unit saturate the monitor and collapse
// NGINX/SQLite throughput, while single-session vsFTPd barely notices).
//
// # Calibration
//
// Simulated time is cycle-denominated with SimHz cycles per second. Guest
// instruction costs, kernel syscall/ptrace costs, and monitor check costs
// are fixed in internal/vm, internal/kernel, and internal/core/monitor.
// The per-application knobs — I/O cost per byte (workload.IOPerByte) and
// per-unit think cycles — set the absolute work per request/transaction/transfer to
// server-realistic magnitudes (a 6.7 KB HTTP request ≈ 1.9 M cycles ≈
// 1.9 ms at SimHz). Shapes (who wins, context ordering, crossovers) are
// measurement; absolute percentages depend on these constants and are
// compared against the paper in EXPERIMENTS.md.
package bench

import (
	"fmt"
	"math"

	"bastion/internal/baseline/cet"
	"bastion/internal/baseline/llvmcfi"
	"bastion/internal/core"
	"bastion/internal/core/monitor"
	"bastion/internal/fleet"
	"bastion/internal/kernel"
	"bastion/internal/obs"
	"bastion/internal/vm"
	"bastion/internal/workload"
)

// SimHz converts simulated cycles to seconds (1 GHz).
const SimHz = 1e9

// Mitigation selects one column of Figure 3 / Table 3.
type Mitigation int

// Mitigation stacks, in the paper's presentation order.
const (
	MitVanilla Mitigation = iota
	MitCFI
	MitCET
	MitCETCT
	MitCETCTCF
	MitFull
)

// Mitigations lists the Figure 3 columns.
var Mitigations = []Mitigation{MitVanilla, MitCFI, MitCET, MitCETCT, MitCETCTCF, MitFull}

func (m Mitigation) String() string {
	switch m {
	case MitVanilla:
		return "vanilla"
	case MitCFI:
		return "LLVM CFI"
	case MitCET:
		return "CET"
	case MitCETCT:
		return "CET+CT"
	case MitCETCTCF:
		return "CET+CT+CF"
	case MitFull:
		return "CET+CT+CF+AI+SF"
	}
	return fmt.Sprintf("mitigation(%d)", int(m))
}

// contexts returns the monitor contexts a mitigation enables (0 = no
// monitor).
func (m Mitigation) contexts() monitor.Context {
	switch m {
	case MitCETCT:
		return monitor.CallType
	case MitCETCTCF:
		return monitor.CallType | monitor.ControlFlow
	case MitFull:
		return monitor.AllContexts
	}
	return 0
}

// sharedArtifacts deduplicates program, metadata, and seccomp-filter
// compilation across every bench run in the process: artifacts are
// immutable once compiled, so parallel report collection launches all its
// measurements from one compilation per (app, filter-config) instead of
// one per run.
var sharedArtifacts = fleet.NewArtifacts()

// RunSpec describes one measurement.
type RunSpec struct {
	App        string
	Mitigation Mitigation
	Units      int
	// ExtendFS and Mode select the Table 7 configurations.
	ExtendFS bool
	Mode     monitor.Mode
	// DisableAcceptFastPath runs the §9.2 ablation.
	DisableAcceptFastPath bool
	// InKernel runs the monitor in-kernel (the §11.2 eBPF proposal).
	InKernel bool
	// TreeFilter selects the binary-search seccomp compilation (the
	// linear-vs-tree filter ablation).
	TreeFilter bool
	// VerdictCache enables the monitor's verdict cache (the cache
	// ablation).
	VerdictCache bool
	// CoarsePolicies enforces the pre-refinement AllowedIndirect sets
	// (the points-to refinement ablation).
	CoarsePolicies bool
	// Offload answers in-filter-decidable verdicts inside the seccomp
	// program (the verdict-offload ablation).
	Offload bool
	// Contexts overrides the mitigation's context mask when UseContexts is
	// set — the offload ablation needs call-type + argument-integrity
	// without control-flow, a combination no Mitigation level selects.
	Contexts    monitor.Context
	UseContexts bool
	// Artifacts selects the shared compilation cache backing the run
	// (nil = the package-wide cache). Supply a fresh fleet.NewArtifacts()
	// to measure compilation dedup in isolation.
	Artifacts *fleet.Artifacts
	// Sink attaches a decision-trace sink to the monitor and FlightN
	// sizes its flight recorder (the observability ablation: telemetry
	// must be cycle-invisible).
	Sink    obs.Sink
	FlightN int
}

// RunResult couples a workload measurement with its launch context.
type RunResult struct {
	Spec      RunSpec
	Workload  workload.Result
	Target    workload.Target
	Protected *core.Protected
	// Stats is the compiler's instrumentation statistics (monitored runs).
	Stats *core.Artifact
}

// Run executes one measurement on a fresh kernel and machine, launching
// from the shared artifact cache (spec.Artifacts, or the package-wide one)
// so repeated runs of the same app never recompile.
func Run(spec RunSpec) (*RunResult, error) {
	arts := spec.Artifacts
	if arts == nil {
		arts = sharedArtifacts
	}
	target, err := workload.NewTarget(spec.App)
	if err != nil {
		return nil, err
	}

	k := kernel.New(nil)
	k.Costs.IOPerByte = workload.IOPerByte(spec.App)
	if err := target.Fixture(k); err != nil {
		return nil, err
	}

	var vmOpts []vm.Option
	vmOpts = append(vmOpts, vm.WithMaxSteps(1<<34))
	switch spec.Mitigation {
	case MitCFI:
		prog, err := arts.Raw(spec.App)
		if err != nil {
			return nil, err
		}
		vmOpts = append(vmOpts, vm.WithMitigations(llvmcfi.New(prog)))
	case MitCET, MitCETCT, MitCETCTCF, MitFull:
		vmOpts = append(vmOpts, vm.WithMitigations(cet.New()))
	}

	res := &RunResult{Spec: spec, Target: target}
	ctx := spec.Mitigation.contexts()
	if spec.UseContexts {
		ctx = spec.Contexts
	}
	if ctx != 0 {
		art, err := arts.Compiled(spec.App)
		if err != nil {
			return nil, err
		}
		cfg := monitor.DefaultConfig()
		cfg.Contexts = ctx
		cfg.ExtendFS = spec.ExtendFS
		cfg.Mode = spec.Mode
		cfg.AcceptFastPath = !spec.DisableAcceptFastPath
		cfg.InKernel = spec.InKernel
		cfg.TreeFilter = spec.TreeFilter
		cfg.VerdictCache = spec.VerdictCache
		cfg.CoarsePolicies = spec.CoarsePolicies
		cfg.Offload = spec.Offload
		cfg, err = arts.Config(spec.App, cfg)
		if err != nil {
			return nil, err
		}
		// Telemetry rides on the resolved per-run copy: it never enters the
		// shared artifact cache key.
		cfg.Sink = spec.Sink
		cfg.FlightN = spec.FlightN
		prot, err := core.Launch(art, k, cfg, vmOpts...)
		if err != nil {
			return nil, err
		}
		res.Protected = prot
		res.Stats = art
	} else {
		prog, err := arts.Raw(spec.App)
		if err != nil {
			return nil, err
		}
		prot, err := core.LaunchUnprotected(&core.Artifact{Prog: prog}, k, vmOpts...)
		if err != nil {
			return nil, err
		}
		res.Protected = prot
	}

	wl, err := workload.Run(target, res.Protected, spec.Units)
	if err != nil {
		return nil, err
	}
	res.Workload = wl
	return res, nil
}

// Throughput converts a measurement into aggregate units/second under the
// application's deployment concurrency (see the package comment's model).
func Throughput(r *RunResult) float64 {
	per := r.Workload.PerUnitTotal()
	if per == 0 {
		return 0
	}
	workers := float64(r.Target.Workers())
	rate := workers / per
	if mon := r.Workload.PerUnitMonitor(); mon > 0 {
		if cap := 1.0 / mon; cap < rate {
			rate = cap
		}
	}
	return rate * SimHz
}

// Overhead returns the percentage throughput loss of run vs base.
func Overhead(base, run *RunResult) float64 {
	tb, tr := Throughput(base), Throughput(run)
	if tb == 0 {
		return math.NaN()
	}
	return (1 - tr/tb) * 100
}
