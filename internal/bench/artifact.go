package bench

import (
	"bastion/internal/obs/perf"
)

// mitSlug maps a mitigation stack onto the artifact's metric-name
// alphabet (lowercase, no spaces or '+').
func mitSlug(m Mitigation) string {
	switch m {
	case MitVanilla:
		return "vanilla"
	case MitCFI:
		return "cfi"
	case MitCET:
		return "cet"
	case MitCETCT:
		return "cet_ct"
	case MitCETCTCF:
		return "cet_ct_cf"
	case MitFull:
		return "full"
	}
	return "unknown"
}

// table7Slug maps the Table 7 configuration labels onto metric-name stems.
var table7Slug = map[string]string{
	"seccomp hook only":     "hook_only",
	"fetch process state":   "fetch",
	"full context checking": "full",
}

// b01 renders a verdict bit as an Exact-gated 0/1 metric value.
func b01(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// PerfArtifact flattens the report into a perf.Artifact — the repo's
// machine-readable perf trajectory. Direction assignment is the gating
// contract:
//
//   - overheads, cycles/unit, instruction counts, init latency, trace
//     bytes: LowerIsBetter;
//   - throughput, raw MB/s / NOTPM rates, cache hit rates: HigherIsBetter
//     (except vsftpd's Table 3 row, whose "sec" unit is a completion time
//     and therefore LowerIsBetter);
//   - everything the deterministic simulator pins bit-for-bit — syscall
//     counts, policy sizes, verdict bits, trap/avoided counts: Exact,
//     because any drift there is a semantic change, not noise;
//   - structural context (depth averages): Info, never gated.
//
// Report.Timings is wall-clock and deliberately excluded: artifacts must
// be byte-identical across runs and machines.
func (r *Report) PerfArtifact(label string) *perf.Artifact {
	a := perf.New(label, r.Units)

	for _, row := range r.Figure3 {
		for _, mit := range Mitigations[1:] {
			a.Add("fig3."+row.App+"."+mitSlug(mit)+".overhead_pct", row.Overheads[mit], perf.LowerIsBetter)
		}
	}
	for _, row := range r.Table3 {
		dir := perf.HigherIsBetter
		if row.Unit == "sec" {
			dir = perf.LowerIsBetter
		}
		for _, c := range row.Cells {
			a.Add("table3."+row.App+"."+mitSlug(c.Mitigation)+".raw", c.Value, dir)
		}
	}
	if r.Table4 != nil {
		for _, row := range r.Table4.Rows {
			for _, app := range Apps {
				a.Add("table4."+app+"."+row.Syscall+".calls", float64(row.Counts[app]), perf.Exact)
			}
		}
		for _, app := range Apps {
			a.Add("table4."+app+".hooks", float64(r.Table4.Hooks[app]), perf.Exact)
		}
	}
	for _, row := range r.Table5 {
		stats := []struct {
			name string
			v    int
		}{
			{"callsites_total", row.TotalCallsites},
			{"callsites_direct", row.DirectCallsites},
			{"callsites_indirect", row.IndirectCallsites},
			{"callsites_sensitive", row.SensitiveCallsites},
			{"sensitive_indirect", row.SensitiveIndirect},
			{"ctx_write_mem", row.CtxWriteMem},
			{"ctx_bind_mem", row.CtxBindMem},
			{"ctx_bind_const", row.CtxBindConst},
			{"instrumentation_total", row.Total},
		}
		for _, s := range stats {
			a.Add("table5."+row.App+"."+s.name, float64(s.v), perf.Exact)
		}
	}
	for _, row := range r.Table6 {
		v := row.Verdict
		stem := "table6." + v.Scenario.ID + "."
		a.Add(stem+"ct", b01(v.CT), perf.Exact)
		a.Add(stem+"cf", b01(v.CF), perf.Exact)
		a.Add(stem+"ai", b01(v.AI), perf.Exact)
		a.Add(stem+"sf", b01(v.SF), perf.Exact)
		a.Add(stem+"full", b01(v.FullBlocked), perf.Exact)
	}
	for _, row := range r.Table7 {
		slug := table7Slug[row.Label]
		if slug == "" {
			slug = "other"
		}
		for _, app := range Apps {
			dir := perf.HigherIsBetter
			if app == "vsftpd" {
				dir = perf.LowerIsBetter
			}
			a.Add("table7."+slug+"."+app+".raw", row.Raw[app], dir)
			a.Add("table7."+slug+"."+app+".overhead_pct", row.Overheads[app], perf.LowerIsBetter)
		}
	}
	for _, st := range r.Init {
		a.Add("init."+st.App+".init_ms", st.InitMillis, perf.LowerIsBetter)
		a.Add("init."+st.App+".avg_depth", st.AvgDepth, perf.Info)
		a.Add("init."+st.App+".min_depth", float64(st.MinDepth), perf.Exact)
		a.Add("init."+st.App+".max_depth", float64(st.MaxDepth), perf.Exact)
	}
	if r.Accept != nil {
		a.Add("accept.fast_path.overhead_pct", r.Accept.FastPathOverhead, perf.LowerIsBetter)
		a.Add("accept.full_walk.overhead_pct", r.Accept.FullWalkOverhead, perf.LowerIsBetter)
	}
	for _, ik := range r.InK {
		a.Add("inkernel."+ik.App+".ptrace.overhead_pct", ik.PtraceOverhead, perf.LowerIsBetter)
		a.Add("inkernel."+ik.App+".inkernel.overhead_pct", ik.InKernelOverhead, perf.LowerIsBetter)
	}
	for _, fr := range r.Filter {
		stem := "filter." + fr.App + "."
		a.Add(stem+"linear_insns_eval", fr.LinearInsns, perf.LowerIsBetter)
		a.Add(stem+"tree_insns_eval", fr.TreeInsns, perf.LowerIsBetter)
		a.Add(stem+"linear_insns_call", fr.LinearPerCall, perf.LowerIsBetter)
		a.Add(stem+"tree_insns_call", fr.TreePerCall, perf.LowerIsBetter)
		a.Add(stem+"linear_overhead_pct", fr.LinearOverhead, perf.LowerIsBetter)
		a.Add(stem+"tree_overhead_pct", fr.TreeOverhead, perf.LowerIsBetter)
	}
	for _, cr := range r.Cache {
		stem := "cache." + cr.App + "."
		a.Add(stem+"off_mon_cyc_unit", cr.OffMonPerUnit, perf.LowerIsBetter)
		a.Add(stem+"on_mon_cyc_unit", cr.OnMonPerUnit, perf.LowerIsBetter)
		a.Add(stem+"off_overhead_pct", cr.OffOverhead, perf.LowerIsBetter)
		a.Add(stem+"on_overhead_pct", cr.OnOverhead, perf.LowerIsBetter)
		a.Add(stem+"hit_rate", cr.HitRate(), perf.HigherIsBetter)
		a.Add(stem+"hits", float64(cr.Hits), perf.Exact)
		a.Add(stem+"misses", float64(cr.Misses), perf.Exact)
		a.Add(stem+"inserts", float64(cr.Inserts), perf.Exact)
		a.Add(stem+"evictions", float64(cr.Evictions), perf.Exact)
		a.Add(stem+"off_violations", float64(cr.OffViolations), perf.Exact)
		a.Add(stem+"on_violations", float64(cr.OnViolations), perf.Exact)
	}
	for _, sr := range r.SF {
		stem := "sf." + sr.App + "."
		a.Add(stem+"off_mon_cyc_unit", sr.OffMonPerUnit, perf.LowerIsBetter)
		a.Add(stem+"on_mon_cyc_unit", sr.OnMonPerUnit, perf.LowerIsBetter)
		a.Add(stem+"off_overhead_pct", sr.OffOverhead, perf.LowerIsBetter)
		a.Add(stem+"on_overhead_pct", sr.OnOverhead, perf.LowerIsBetter)
		a.Add(stem+"flow_checks", float64(sr.FlowChecks), perf.Exact)
		a.Add(stem+"traps", float64(sr.Traps), perf.Exact)
		a.Add(stem+"off_violations", float64(sr.OffViolations), perf.Exact)
		a.Add(stem+"on_violations", float64(sr.OnViolations), perf.Exact)
	}
	for _, or := range r.Offload {
		stem := "offload." + or.App + "."
		a.Add(stem+"off_traps", float64(or.OffTraps), perf.Exact)
		a.Add(stem+"on_traps", float64(or.OnTraps), perf.Exact)
		a.Add(stem+"avoided", float64(or.Avoided), perf.Exact)
		a.Add(stem+"offloaded_nrs", float64(or.OffloadedNrs), perf.Exact)
		a.Add(stem+"off_mon_cyc_unit", or.OffMonPerUnit, perf.LowerIsBetter)
		a.Add(stem+"on_mon_cyc_unit", or.OnMonPerUnit, perf.LowerIsBetter)
		a.Add(stem+"off_overhead_pct", or.OffOverhead, perf.LowerIsBetter)
		a.Add(stem+"on_overhead_pct", or.OnOverhead, perf.LowerIsBetter)
		a.Add(stem+"off_violations", float64(or.OffViolations), perf.Exact)
		a.Add(stem+"on_violations", float64(or.OnViolations), perf.Exact)
	}
	for _, rr := range r.Refine {
		stem := "refine." + rr.App + "."
		a.Add(stem+"edges_coarse", float64(rr.EdgesCoarse), perf.Exact)
		a.Add(stem+"edges_refined", float64(rr.EdgesRefined), perf.Exact)
		a.Add(stem+"pairs_coarse", float64(rr.PairsCoarse), perf.Exact)
		a.Add(stem+"pairs_refined", float64(rr.PairsRefined), perf.Exact)
		a.Add(stem+"exact_sites", float64(rr.ExactSites), perf.Exact)
		a.Add(stem+"escaped_sites", float64(rr.EscapedSites), perf.Exact)
		a.Add(stem+"coarse_mon_cyc_unit", rr.CoarseMonPerUnit, perf.LowerIsBetter)
		a.Add(stem+"refined_mon_cyc_unit", rr.RefinedMonPerUnit, perf.LowerIsBetter)
		a.Add(stem+"coarse_overhead_pct", rr.CoarseOverhead, perf.LowerIsBetter)
		a.Add(stem+"refined_overhead_pct", rr.RefinedOverhead, perf.LowerIsBetter)
		a.Add(stem+"coarse_cache_inserts", float64(rr.CoarseCacheInserts), perf.Exact)
		a.Add(stem+"refined_cache_inserts", float64(rr.RefinedCacheInserts), perf.Exact)
		a.Add(stem+"coarse_violations", float64(rr.CoarseViolations), perf.Exact)
		a.Add(stem+"refined_violations", float64(rr.RefinedViolations), perf.Exact)
	}
	for _, or := range r.Obs {
		stem := "obs." + or.App + "."
		a.Add(stem+"identical", b01(or.Identical), perf.Exact)
		a.Add(stem+"off_mon_cyc_unit", or.OffMonPerUnit, perf.LowerIsBetter)
		a.Add(stem+"on_mon_cyc_unit", or.OnMonPerUnit, perf.LowerIsBetter)
		a.Add(stem+"traps", float64(or.Traps), perf.Exact)
		a.Add(stem+"events", float64(or.Events), perf.Exact)
		a.Add(stem+"trace_bytes", float64(or.TraceBytes), perf.LowerIsBetter)
		a.Add(stem+"flight_events", float64(or.FlightEvents), perf.Exact)
	}
	if r.Fleet != nil {
		for _, row := range r.Fleet.Rows {
			stem := fleetStem(row.Tenants)
			a.Add(stem+"shared_compiles", float64(row.SharedCompiles), perf.Exact)
			a.Add(stem+"shared_filters", float64(row.SharedFilters), perf.Exact)
			a.Add(stem+"per_tenant_compiles", float64(row.PerTenantCompiles), perf.Exact)
			a.Add(stem+"per_tenant_filters", float64(row.PerTenantFilters), perf.Exact)
			a.Add(stem+"throughput", row.Throughput, perf.HigherIsBetter)
			a.Add(stem+"mon_cyc_unit", row.MonPerUnit, perf.LowerIsBetter)
			a.Add(stem+"cache_hit_rate", row.CacheHit, perf.HigherIsBetter)
		}
	}
	return a
}

// fleetStem builds a fixed-width tenant-count stem (t001, t064) so the
// sorted artifact keeps fleet rows in numeric order.
func fleetStem(tenants int) string {
	const digits = "0123456789"
	n := tenants
	buf := []byte{'f', 'l', 'e', 'e', 't', '.', 't', '0', '0', '0', '.'}
	for i := 9; i >= 7 && n > 0; i-- {
		buf[i] = digits[n%10]
		n /= 10
	}
	return string(buf)
}
