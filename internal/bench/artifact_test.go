package bench

import (
	"strings"
	"testing"

	"bastion/internal/obs/perf"
)

// TestPerfArtifact collects one small report and drives the whole
// artifact contract off it: byte determinism (serial vs parallel
// collection), schema round trip, self-compare cleanliness, and the
// regression gate firing on injected drift.
func TestPerfArtifact(t *testing.T) {
	seq, err := CollectReportParallel(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := CollectReportParallel(8, 0)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("byte-deterministic", func(t *testing.T) {
		j1 := seq.PerfArtifact("ci").JSON()
		j2 := seq.PerfArtifact("ci").JSON()
		if j1 != j2 {
			t.Fatal("artifact not byte-stable across renders of the same report")
		}
		if par.PerfArtifact("ci").JSON() != j1 {
			t.Fatal("artifact differs between serial and parallel collection")
		}
	})

	t.Run("round-trip", func(t *testing.T) {
		blob := seq.PerfArtifact("ci").JSON()
		parsed, err := perf.Parse([]byte(blob))
		if err != nil {
			t.Fatal(err)
		}
		if parsed.Units != 8 || parsed.Label != "ci" {
			t.Fatalf("header: %+v", parsed)
		}
		if parsed.JSON() != blob {
			t.Fatal("parse/render round trip not byte-identical")
		}
	})

	t.Run("covers-every-experiment", func(t *testing.T) {
		a := seq.PerfArtifact("ci")
		stems := []string{
			"fig3.", "table3.", "table4.", "table5.", "table6.", "table7.",
			"init.", "accept.", "inkernel.", "filter.", "cache.", "sf.",
			"offload.", "refine.", "obs.", "fleet.",
		}
		for _, stem := range stems {
			found := false
			for i := range a.Metrics {
				if strings.HasPrefix(a.Metrics[i].Name, stem) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("artifact has no %q metrics", stem)
			}
		}
		// Wall-clock timings must never leak into the artifact.
		blob := a.JSON()
		if strings.Contains(blob, "wall") || strings.Contains(blob, "elapsed") {
			t.Fatal("wall-clock data leaked into the artifact")
		}
		// Every fleet row lands (fixed-width stems keep numeric order).
		for _, stem := range []string{"fleet.t001.", "fleet.t004.", "fleet.t016.", "fleet.t064."} {
			if _, ok := a.Lookup(stem + "throughput"); !ok {
				t.Errorf("missing %sthroughput", stem)
			}
		}
	})

	t.Run("self-compare-clean", func(t *testing.T) {
		res, err := perf.Compare(seq.PerfArtifact("old"), par.PerfArtifact("new"), 5)
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK() {
			t.Fatalf("self-compare regressed:\n%s", res.Render())
		}
	})

	t.Run("gate-fires-on-injected-regression", func(t *testing.T) {
		base := seq.PerfArtifact("base")
		cur := seq.PerfArtifact("cur")
		bumped := 0
		for i := range cur.Metrics {
			m := &cur.Metrics[i]
			switch {
			case m.Dir == perf.LowerIsBetter && m.Value > 0 && bumped == 0:
				m.Value *= 1.10 // +10% cost, beyond the 5% tolerance
				bumped++
			case m.Dir == perf.Exact && strings.HasPrefix(m.Name, "table6.") && bumped == 1:
				m.Value = 1 - m.Value // flip a verdict bit
				bumped++
			}
		}
		if bumped != 2 {
			t.Fatalf("injected %d regressions, want 2", bumped)
		}
		res, err := perf.Compare(base, cur, 5)
		if err != nil {
			t.Fatal(err)
		}
		if res.OK() || len(res.Regressions()) != 2 {
			t.Fatalf("gate missed injected regressions:\n%s", res.Render())
		}
	})
}

func TestMitSlugCoversAllMitigations(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range Mitigations {
		s := mitSlug(m)
		if s == "unknown" || seen[s] {
			t.Fatalf("mitigation %v slug %q invalid or duplicated", m, s)
		}
		seen[s] = true
	}
}

func TestFleetStem(t *testing.T) {
	cases := map[int]string{1: "fleet.t001.", 16: "fleet.t016.", 64: "fleet.t064.", 999: "fleet.t999."}
	for in, want := range cases {
		if got := fleetStem(in); got != want {
			t.Errorf("fleetStem(%d) = %q, want %q", in, got, want)
		}
	}
}
