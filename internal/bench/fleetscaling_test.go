package bench

import (
	"testing"

	"bastion/internal/fleet"
)

// TestRunDedupesCompilation: repeated Run calls against one artifact cache
// compile each (app, config) once, and a run from a deduped cache is
// byte-identical to a run from a cold one.
func TestRunDedupesCompilation(t *testing.T) {
	arts := fleet.NewArtifacts()
	spec := RunSpec{App: "nginx", Mitigation: MitFull, Units: 6, Artifacts: arts}

	r1, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if arts.Compiles() != 1 {
		t.Errorf("two monitored runs compiled %d programs, want 1", arts.Compiles())
	}
	if arts.FilterCompiles() != 1 {
		t.Errorf("two monitored runs compiled %d filters, want 1", arts.FilterCompiles())
	}
	if r1.Workload != r2.Workload {
		t.Errorf("deduped runs diverged: %+v vs %+v", r1.Workload, r2.Workload)
	}

	cold, err := Run(RunSpec{App: "nginx", Mitigation: MitFull, Units: 6, Artifacts: fleet.NewArtifacts()})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Workload != cold.Workload {
		t.Errorf("warm-cache run %+v != cold-cache run %+v", r1.Workload, cold.Workload)
	}

	// Different filter-relevant config on the same cache adds exactly one
	// more filter compilation, not a program compilation.
	spec.TreeFilter = true
	if _, err := Run(spec); err != nil {
		t.Fatal(err)
	}
	if arts.Compiles() != 1 || arts.FilterCompiles() != 2 {
		t.Errorf("after tree-filter run: %d compiles / %d filter compiles, want 1/2",
			arts.Compiles(), arts.FilterCompiles())
	}

	// Baseline (vanilla) runs share the raw program too.
	base := RunSpec{App: "nginx", Mitigation: MitVanilla, Units: 6, Artifacts: arts}
	if _, err := Run(base); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(base); err != nil {
		t.Fatal(err)
	}
	if arts.Compiles() != 2 {
		t.Errorf("vanilla runs compiled %d programs total, want 2 (one raw + one instrumented)", arts.Compiles())
	}
}

// TestFleetScalingAmortization: the ISSUE's acceptance bar — with shared
// artifacts, per-tenant setup cost at 16+ tenants is strictly below the
// 1-tenant case, while the per-tenant regime never amortizes.
func TestFleetScalingAmortization(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling ablation skipped in -short")
	}
	res, err := FleetScaling(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(FleetTenantCounts) {
		t.Fatalf("got %d rows, want %d", len(res.Rows), len(FleetTenantCounts))
	}
	var one FleetScalingRow
	for _, row := range res.Rows {
		if row.Tenants == 1 {
			one = row
		}
	}
	for _, row := range res.Rows {
		if row.Tenants < 16 {
			continue
		}
		if got := row.SharedCompilesPerTenant(); got >= one.SharedCompilesPerTenant() {
			t.Errorf("%d tenants: shared setup %.3f compiles/tenant not below 1-tenant %.3f",
				row.Tenants, got, one.SharedCompilesPerTenant())
		}
		if got := row.PerTenantCompilesPerTenant(); got < 1 {
			t.Errorf("%d tenants: per-tenant regime %.3f compiles/tenant, want ≥ 1", row.Tenants, got)
		}
	}
	for _, row := range res.Rows {
		if row.Throughput <= 0 {
			t.Errorf("%d tenants: non-positive fleet throughput", row.Tenants)
		}
		if row.SharedCompiles > len(Apps) {
			t.Errorf("%d tenants: shared regime compiled %d programs, want ≤ %d", row.Tenants, row.SharedCompiles, len(Apps))
		}
	}
	t.Logf("\n%s", RenderFleetScaling(res))
}
