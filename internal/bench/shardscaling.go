package bench

import (
	"fmt"
	"reflect"
	"strings"

	"bastion/internal/fleet"
	"bastion/internal/fleet/shard"
)

// ShardTenantCounts is the sharded control plane ablation's fleet axis.
var ShardTenantCounts = []int{256, 1024, 4096}

// ShardCounts is its shard-count axis.
var ShardCounts = []int{1, 4, 16, 64}

// ShardScalingUnits is the sweep's default per-tenant unit count: the
// experiment measures control-plane behavior (admission, placement,
// reload), which launch and admission dominate, so it runs far fewer
// steady-state units than DefaultUnits. 8 units with the reload halfway
// guarantees every app a trap boundary after the stage point.
const ShardScalingUnits = 8

// shardBenchAdmission is deliberately tight so the shard-count axis has a
// visible admission signal: one shard absorbing the whole fleet saturates
// its token bucket and rejects, while spreading the same arrivals across
// more shards drains cleanly.
func shardBenchAdmission() *shard.AdmissionConfig {
	return &shard.AdmissionConfig{
		Burst:          32,
		RefillCycles:   20_000,
		QueueDepth:     64,
		RetryCycles:    500_000,
		ArrivalSpacing: 2_000,
	}
}

// ShardScalingRow is one (tenants, shards) point.
type ShardScalingRow struct {
	Tenants int
	Shards  int

	// Makespan is the fleet's simulated completion time (admission
	// included); Throughput the completed units per simulated second.
	Makespan   uint64
	Throughput float64

	// Admission outcomes: total full-queue rejections and the worst
	// admission latency any tenant absorbed.
	Rejects int
	MaxWait uint64

	// Hot-reload outcomes (0 when the point runs without a reload):
	// applied swaps and mean swap latency in cycles.
	Reloads    uint64
	ReloadMean float64
}

// ShardScalingResult is the full control-plane ablation.
type ShardScalingResult struct {
	Apps     []string
	Units    int
	ReloadAt int // 0 = no mid-run reload
	Rows     []ShardScalingRow
}

// ShardScaling sweeps tenant count × shard count under a tight admission
// config, hot-reloading the policy halfway through each tenant's units
// when units permit (≥ 2). Points at or below 256 tenants are run twice —
// concurrent per-shard pools and fully serial — with tenant results
// asserted identical, so the table doubles as a determinism check.
func ShardScaling(units int, tenantCounts, shardCounts []int) (*ShardScalingResult, error) {
	res := &ShardScalingResult{Apps: Apps, Units: units}
	if units >= 2 {
		res.ReloadAt = units / 2
	}
	for _, tenants := range tenantCounts {
		for _, shards := range shardCounts {
			cfg := fleet.DefaultConfig(tenants, units, Apps...)
			cfg.VerdictCache = true
			cfg.Seed = 42
			cfg.Shards = shards
			cfg.Admission = shardBenchAdmission()
			if res.ReloadAt > 0 {
				cfg.ReloadAt = res.ReloadAt
				cfg.ReloadSpec = &fleet.PolicySpec{VerdictCache: true, TreeFilter: true}
			}

			rep, err := fleet.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("shard scaling %d×%d: %w", tenants, shards, err)
			}
			if tenants <= 256 {
				det := cfg
				det.Deterministic = true
				serial, err := fleet.Run(det)
				if err != nil {
					return nil, fmt.Errorf("shard scaling %d×%d (serial): %w", tenants, shards, err)
				}
				if !reflect.DeepEqual(rep.Results, serial.Results) {
					return nil, fmt.Errorf("shard scaling %d×%d: concurrent and serial dispatch diverged", tenants, shards)
				}
			}

			res.Rows = append(res.Rows, ShardScalingRow{
				Tenants:    tenants,
				Shards:     shards,
				Makespan:   rep.WallCycles(),
				Throughput: rep.Throughput(),
				Rejects:    rep.AdmitRejects(),
				MaxWait:    rep.MaxAdmitWait(),
				Reloads:    rep.Reloads(),
				ReloadMean: rep.MeanReloadCycles(),
			})
		}
	}
	return res, nil
}

// DefaultShardScaling runs the full 256/1k/4k × shard-count sweep.
func DefaultShardScaling(units int) (*ShardScalingResult, error) {
	return ShardScaling(units, ShardTenantCounts, ShardCounts)
}

// RenderShardScaling formats the control-plane ablation.
func RenderShardScaling(r *ShardScalingResult) string {
	var b strings.Builder
	reload := "no mid-run reload"
	if r.ReloadAt > 0 {
		reload = fmt.Sprintf("hot reload at unit %d", r.ReloadAt)
	}
	fmt.Fprintf(&b, "shard scaling (%s round-robin, %d units/tenant, %s):\n",
		strings.Join(r.Apps, ","), r.Units, reload)
	b.WriteString("tenants | shards | makespan cyc | units/s | rejects | max admit wait | reloads | mean reload cyc\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%7d | %6d | %12d | %10.0f | %7d | %14d | %7d | %.0f\n",
			row.Tenants, row.Shards, row.Makespan, row.Throughput,
			row.Rejects, row.MaxWait, row.Reloads, row.ReloadMean)
	}
	return b.String()
}
