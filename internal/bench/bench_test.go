package bench

import (
	"strings"
	"testing"

	"bastion/internal/kernel"
)

// calUnits keeps unit counts small for test speed; the regeneration
// commands use DefaultUnits.
const calUnits = 30

func TestFigure3Shape(t *testing.T) {
	rows, err := Figure3(calUnits)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		cfi := r.Overheads[MitCFI]
		cet := r.Overheads[MitCET]
		ct := r.Overheads[MitCETCT]
		cf := r.Overheads[MitCETCTCF]
		full := r.Overheads[MitFull]
		// Paper shape: baselines small; context stacking monotone; all
		// configurations stay under a few percent.
		if cfi > 3 || cet > 1 {
			t.Errorf("%s: baselines too costly: cfi=%.2f cet=%.2f", r.App, cfi, cet)
		}
		if !(ct <= cf+0.01 && cf <= full+0.01) {
			t.Errorf("%s: context stacking not monotone: CT=%.2f CF=%.2f AI=%.2f", r.App, ct, cf, full)
		}
		if full <= 0 || full > 3.5 {
			t.Errorf("%s: full overhead %.2f%% outside the paper's band (<3%%)", r.App, full)
		}
	}
	// SQLite bears the highest full-protection overhead (paper: 2.01%
	// vs 0.60% and 1.65%).
	byApp := map[string]float64{}
	for _, r := range rows {
		byApp[r.App] = r.Overheads[MitFull]
	}
	if !(byApp["sqlite"] > byApp["nginx"] && byApp["sqlite"] > byApp["vsftpd"]) {
		t.Errorf("sqlite should bear the highest overhead: %v", byApp)
	}
	out := RenderFigure3(rows)
	if !strings.Contains(out, "CET+CT+CF+AI") {
		t.Error("render missing full column")
	}
	t.Logf("\n%s", out)
}

func TestTable3Shape(t *testing.T) {
	rows, err := Table3(calUnits)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if len(r.Cells) != len(Mitigations) {
			t.Fatalf("%s: %d cells", r.App, len(r.Cells))
		}
		vanilla := r.Cells[0].Value
		full := r.Cells[len(r.Cells)-1].Value
		if vanilla <= 0 {
			t.Fatalf("%s vanilla = %v", r.App, vanilla)
		}
		switch r.App {
		case "vsftpd": // seconds: lower is better, protection adds time
			if full < vanilla {
				t.Errorf("vsftpd protected faster than vanilla: %v < %v", full, vanilla)
			}
		default: // throughput: protection loses a little
			if full > vanilla {
				t.Errorf("%s protected faster than vanilla: %v > %v", r.App, full, vanilla)
			}
			if full < vanilla*0.9 {
				t.Errorf("%s full protection lost >10%%: %v vs %v", r.App, full, vanilla)
			}
		}
	}
	t.Logf("\n%s", RenderTable3(rows))
}

func TestTable4Shape(t *testing.T) {
	res, err := Table4(calUnits)
	if err != nil {
		t.Fatal(err)
	}
	get := func(app, syscall string) uint64 {
		for _, r := range res.Rows {
			if r.Syscall == syscall {
				return r.Counts[app]
			}
		}
		t.Fatalf("no row %s", syscall)
		return 0
	}
	// Paper's Table 4 shape: accept4 dominates NGINX; SQLite leans on
	// mprotect; vsftpd's profile is socket/bind/listen/accept-heavy;
	// execve/fork/ptrace never fire during benchmarking.
	if get("nginx", "accept4") != calUnits {
		t.Errorf("nginx accept4 = %d, want one per request", get("nginx", "accept4"))
	}
	if get("sqlite", "mprotect") == 0 {
		t.Error("sqlite mprotect = 0")
	}
	if get("sqlite", "mprotect") <= get("nginx", "mprotect")/4 {
		t.Logf("note: nginx init-phase mprotect %d vs sqlite %d", get("nginx", "mprotect"), get("sqlite", "mprotect"))
	}
	for _, sc := range []string{"execve", "execveat", "fork", "vfork", "ptrace", "chmod"} {
		for _, app := range Apps {
			if n := get(app, sc); n != 0 {
				t.Errorf("%s %s = %d, want 0 during benchmarking", app, sc, n)
			}
		}
	}
	if get("vsftpd", "socket") <= 1 || get("vsftpd", "bind") <= 1 || get("vsftpd", "accept") <= 1 {
		t.Error("vsftpd per-transfer socket/bind/accept profile missing")
	}
	if res.Hooks["nginx"] == 0 || res.Hooks["sqlite"] == 0 || res.Hooks["vsftpd"] == 0 {
		t.Errorf("hooks = %v", res.Hooks)
	}
	t.Logf("\n%s", RenderTable4(res, calUnits))
}

func TestTable5Shape(t *testing.T) {
	rows, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.TotalCallsites != r.DirectCallsites+r.IndirectCallsites {
			t.Errorf("%s: callsite sum mismatch", r.App)
		}
		if r.SensitiveCallsites == 0 {
			t.Errorf("%s: no sensitive callsites", r.App)
		}
		// The paper's key Table 5 finding: sensitive syscalls are never
		// legitimately called indirectly.
		if r.SensitiveIndirect != 0 {
			t.Errorf("%s: %d sensitive syscalls indirectly callable", r.App, r.SensitiveIndirect)
		}
		if r.Total != r.CtxWriteMem+r.CtxBindMem+r.CtxBindConst || r.Total == 0 {
			t.Errorf("%s: instrumentation totals wrong: %+v", r.App, r)
		}
	}
	t.Logf("\n%s", RenderTable5(rows))
}

func TestTable7Shape(t *testing.T) {
	rows, err := Table7(calUnits)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	hook, fetch, full := rows[0], rows[1], rows[2]
	for _, app := range Apps {
		if hook.Overheads[app] > 1.5 {
			t.Errorf("%s hook-only overhead %.2f%%, want small", app, hook.Overheads[app])
		}
		if fetch.Overheads[app] > full.Overheads[app]+1 {
			t.Errorf("%s fetch %.2f%% exceeds full %.2f%%", app, fetch.Overheads[app], full.Overheads[app])
		}
		// The paper's finding: the fetch step dominates the added cost.
		fetchShare := fetch.Overheads[app] - hook.Overheads[app]
		checkShare := full.Overheads[app] - fetch.Overheads[app]
		if fetchShare < checkShare {
			t.Errorf("%s: fetch share %.2f < checking share %.2f", app, fetchShare, checkShare)
		}
	}
	// NGINX and SQLite collapse; single-session vsftpd stays cheap.
	if full.Overheads["nginx"] < 30 || full.Overheads["sqlite"] < 30 {
		t.Errorf("fs extension should collapse nginx/sqlite: %v", full.Overheads)
	}
	if full.Overheads["vsftpd"] > 15 {
		t.Errorf("vsftpd fs overhead %.2f%%, want small", full.Overheads["vsftpd"])
	}
	t.Logf("\n%s", RenderTable7(rows))
}

func TestInitAndDepth(t *testing.T) {
	st, err := InitAndDepth("nginx", calUnits)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ≈21 ms init; average call depth 5.2, min 4, max 9.
	if st.InitMillis <= 0 || st.InitMillis > 100 {
		t.Errorf("init = %.2f ms", st.InitMillis)
	}
	if st.AvgDepth < 2 || st.AvgDepth > 10 {
		t.Errorf("avg depth = %.1f", st.AvgDepth)
	}
	if st.MinDepth < 1 || st.MaxDepth > 16 || st.MinDepth > st.MaxDepth {
		t.Errorf("depth bounds %d..%d", st.MinDepth, st.MaxDepth)
	}
	t.Logf("init=%.2fms depth avg=%.1f min=%d max=%d", st.InitMillis, st.AvgDepth, st.MinDepth, st.MaxDepth)
}

func TestAblationAcceptFastPath(t *testing.T) {
	res, err := AblationAcceptFastPath("nginx", calUnits)
	if err != nil {
		t.Fatal(err)
	}
	if res.FastPathOverhead >= res.FullWalkOverhead {
		t.Errorf("fast path %.2f%% not cheaper than full walk %.2f%%",
			res.FastPathOverhead, res.FullWalkOverhead)
	}
	t.Logf("accept4 fast path: %.2f%% vs full walk %.2f%%", res.FastPathOverhead, res.FullWalkOverhead)
}

func TestThroughputModelBottleneck(t *testing.T) {
	// Synthetic check of the queueing model: when per-unit monitor time
	// exceeds per-unit work divided by workers, throughput is capped by
	// the monitor.
	base, err := Run(RunSpec{App: "nginx", Mitigation: MitVanilla, Units: 10})
	if err != nil {
		t.Fatal(err)
	}
	if Throughput(base) <= 0 {
		t.Fatal("vanilla throughput not positive")
	}
	fs, err := Run(RunSpec{App: "nginx", Mitigation: MitFull, Units: 10, ExtendFS: true})
	if err != nil {
		t.Fatal(err)
	}
	mon := fs.Workload.PerUnitMonitor()
	if mon == 0 {
		t.Fatal("no monitor cycles recorded")
	}
	want := SimHz / mon
	if got := Throughput(fs); got > want*1.01 {
		t.Errorf("bottlenecked throughput %.0f exceeds monitor capacity %.0f", got, want)
	}
}

func TestSensitiveNamesHelper(t *testing.T) {
	names := SortedSensitiveNames()
	if len(names) != len(kernel.SensitiveSyscalls) {
		t.Fatal("name count mismatch")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatal("names not sorted")
		}
	}
}

func TestReportMarkdown(t *testing.T) {
	rep, err := CollectReport(10)
	if err != nil {
		t.Fatal(err)
	}
	md := rep.Markdown()
	for _, want := range []string{
		"## Figure 3", "## Table 3", "## Table 4", "## Table 5",
		"## Table 6", "## Table 7", "## Seccomp filter ablation",
		"## Verdict cache ablation", "## Syscall-flow ablation",
		"## Verdict offload ablation",
		"accept4 fast path", "in-kernel monitor",
		"| rop-exec-01 |", "| **total monitor hook** |",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Wall-clock timings exist for every experiment but stay out of the
	// report document (determinism).
	if len(rep.Timings) == 0 {
		t.Fatal("no timings recorded")
	}
	for _, tm := range rep.Timings {
		if tm.Elapsed <= 0 {
			t.Errorf("experiment %q has no wall-clock timing", tm.Name)
		}
	}
	if !strings.Contains(rep.TimingSummary(), "filter ablation nginx") {
		t.Errorf("timing summary incomplete:\n%s", rep.TimingSummary())
	}
}

// TestParallelReportByteIdentical is the determinism contract of the
// parallel harness: fanning experiments across workers must produce the
// same document, byte for byte, as the sequential run.
func TestParallelReportByteIdentical(t *testing.T) {
	seq, err := CollectReportParallel(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := CollectReportParallel(8, 0) // 0 = NumCPU
	if err != nil {
		t.Fatal(err)
	}
	if seq.Markdown() != par.Markdown() {
		t.Fatal("parallel report differs from sequential report")
	}
}

// TestCacheAblation is the acceptance bar for the verdict cache: on the
// loop-heavy fs-extension workloads, per-syscall monitor cycles must be
// strictly lower with the cache on, with a high hit rate and no change in
// detection (zero violations on either side of every run).
func TestCacheAblation(t *testing.T) {
	for _, app := range Apps {
		res, err := CacheAblation(app, 10)
		if err != nil {
			t.Fatal(err)
		}
		if res.OffViolations != 0 || res.OnViolations != 0 {
			t.Errorf("%s: benign workload flagged: off=%d on=%d",
				app, res.OffViolations, res.OnViolations)
		}
		if res.Hits == 0 {
			t.Fatalf("%s: no cache hits on a loop-heavy workload", app)
		}
		if res.OnMonPerUnit >= res.OffMonPerUnit {
			t.Errorf("%s: cache-on monitor cycles/unit %.1f not below cache-off %.1f",
				app, res.OnMonPerUnit, res.OffMonPerUnit)
		}
		if hr := res.HitRate(); hr < 0.5 {
			t.Errorf("%s: hit rate %.2f, want the workload loop to dominate", app, hr)
		}
		t.Logf("%s: mon cyc/unit %.1f -> %.1f, hit rate %.1f%%",
			app, res.OffMonPerUnit, res.OnMonPerUnit, res.HitRate()*100)
	}
}

// TestSFAblation: the syscall-flow context costs a bounded per-trap
// lookup on benign workloads (SF-on cycles strictly above SF-off, by at
// most SFCheck per flow check) and never flags the apps' own behavior —
// the flow graph derived from each program covers its runtime orderings.
func TestSFAblation(t *testing.T) {
	for _, app := range Apps {
		res, err := SFAblation(app, 10)
		if err != nil {
			t.Fatal(err)
		}
		if res.OffViolations != 0 || res.OnViolations != 0 {
			t.Errorf("%s: benign workload flagged: off=%d on=%d",
				app, res.OffViolations, res.OnViolations)
		}
		if res.FlowChecks == 0 {
			t.Fatalf("%s: SF-on run performed no flow checks", app)
		}
		if res.FlowChecks != res.Traps {
			t.Errorf("%s: flow checks %d != traps %d (SF must run on every full-mode trap)",
				app, res.FlowChecks, res.Traps)
		}
		if res.OnMonPerUnit <= res.OffMonPerUnit {
			t.Errorf("%s: SF-on monitor cycles/unit %.1f not above SF-off %.1f",
				app, res.OnMonPerUnit, res.OffMonPerUnit)
		}
		t.Logf("%s: mon cyc/unit %.1f -> %.1f, %d flow checks",
			app, res.OffMonPerUnit, res.OnMonPerUnit, res.FlowChecks)
	}
}

// TestOffloadAblation is the acceptance bar for the verdict offload: on
// the fs-extension CT+AI workloads, in-filter decisions must avoid traps
// (avoided > 0) with strictly lower monitor cycles per unit and no change
// in detection (zero violations on either side of every run).
func TestOffloadAblation(t *testing.T) {
	var rows []*OffloadAblationResult
	for _, app := range Apps {
		res, err := OffloadAblation(app, 10)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, res)
		if res.OffViolations != 0 || res.OnViolations != 0 {
			t.Errorf("%s: benign workload flagged: off=%d on=%d",
				app, res.OffViolations, res.OnViolations)
		}
		if res.Avoided == 0 {
			t.Fatalf("%s: offload avoided no traps on an fs-extension workload", app)
		}
		if res.OffloadedNrs == 0 {
			t.Fatalf("%s: empty offload plan under the qualifying config", app)
		}
		if res.OnTraps >= res.OffTraps {
			t.Errorf("%s: offload-on traps %d not below offload-off %d",
				app, res.OnTraps, res.OffTraps)
		}
		if res.OnMonPerUnit >= res.OffMonPerUnit {
			t.Errorf("%s: offload-on monitor cycles/unit %.1f not below offload-off %.1f",
				app, res.OnMonPerUnit, res.OffMonPerUnit)
		}
		if res.CyclesSavedPerUnit() <= 0 {
			t.Errorf("%s: non-positive cycles saved per unit: %.1f", app, res.CyclesSavedPerUnit())
		}
		t.Logf("%s: traps %d -> %d (%d avoided, %d nrs), mon cyc/unit %.1f -> %.1f",
			app, res.OffTraps, res.OnTraps, res.Avoided, res.OffloadedNrs,
			res.OffMonPerUnit, res.OnMonPerUnit)
	}
	out := RenderOffloadAblation(rows)
	for _, app := range Apps {
		if !strings.Contains(out, app) {
			t.Errorf("render missing app %s:\n%s", app, out)
		}
	}
}

// TestRefineAblation is the acceptance bar for the points-to refinement
// ablation: the refined policies never grow the static surface, the
// refinement never changes benign-workload behaviour (zero violations,
// identical cache-key population on both sides), and the stats line up.
func TestRefineAblation(t *testing.T) {
	for _, app := range Apps {
		res, err := RefineAblation(app, 10)
		if err != nil {
			t.Fatal(err)
		}
		if res.CoarseViolations != 0 || res.RefinedViolations != 0 {
			t.Errorf("%s: benign workload flagged: coarse=%d refined=%d",
				app, res.CoarseViolations, res.RefinedViolations)
		}
		if res.EdgesRefined > res.EdgesCoarse {
			t.Errorf("%s: refinement grew indirect edges %d -> %d",
				app, res.EdgesCoarse, res.EdgesRefined)
		}
		if res.PairsRefined > res.PairsCoarse {
			t.Errorf("%s: refinement grew allowed pairs %d -> %d",
				app, res.PairsCoarse, res.PairsRefined)
		}
		if res.ExactSites < 0 || res.EscapedSites < 0 {
			t.Errorf("%s: negative site stats: %+v", app, res)
		}
		t.Logf("%s: edges %d->%d, pairs %d->%d, exact %d, escaped %d, mon cyc/unit %.1f vs %.1f",
			app, res.EdgesCoarse, res.EdgesRefined, res.PairsCoarse, res.PairsRefined,
			res.ExactSites, res.EscapedSites, res.CoarseMonPerUnit, res.RefinedMonPerUnit)
	}
}

func TestFilterAblationTreeStrictlyCheaper(t *testing.T) {
	for _, app := range Apps {
		res, err := FilterAblation(app, 10)
		if err != nil {
			t.Fatal(err)
		}
		if res.TreeInsns <= 0 || res.LinearInsns <= 0 ||
			res.TreePerCall <= 0 || res.LinearPerCall <= 0 {
			t.Fatalf("%s: no BPF instructions recorded: %+v", app, res)
		}
		// The acceptance bar: per-hook BPF instruction count strictly lower
		// under the tree compilation for the ExtendFS set.
		if res.TreeInsns >= res.LinearInsns {
			t.Errorf("%s: tree %.2f insns/eval not below linear %.2f", app, res.TreeInsns, res.LinearInsns)
		}
		if res.TreePerCall >= res.LinearPerCall {
			t.Errorf("%s: tree %.2f insns/call not below linear %.2f", app, res.TreePerCall, res.LinearPerCall)
		}
	}
}

// TestObsAblation is the acceptance bar for the observability plane: with
// a trace sink and flight recorder attached, every workload measurement is
// bit-identical to the untraced run, and the trace fully covers the traps.
func TestObsAblation(t *testing.T) {
	for _, app := range Apps {
		res, err := ObsAblation(app, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Identical {
			t.Errorf("%s: telemetry perturbed the measurement: off %.1f vs on %.1f mon cyc/unit",
				app, res.OffMonPerUnit, res.OnMonPerUnit)
		}
		if uint64(res.Events) != res.Traps {
			t.Errorf("%s: %d trace events for %d traps", app, res.Events, res.Traps)
		}
		if res.TraceBytes == 0 {
			t.Errorf("%s: empty trace", app)
		}
		if res.FlightEvents == 0 {
			t.Errorf("%s: flight recorder empty after a traced run", app)
		}
	}
}

// TestBsideAblation is the acceptance bar for the binary-only extraction
// ablation: both regimes complete the benign workload violation-free, the
// extracted policy is never tighter than the traced one on the looseness
// axes (pairs, flow edges), and the monitor numbers are sane.
func TestBsideAblation(t *testing.T) {
	for _, app := range Apps {
		res, err := BsideAblation(app, 10)
		if err != nil {
			t.Fatal(err)
		}
		if res.TracedViolations != 0 || res.BsideViolations != 0 {
			t.Errorf("%s: benign workload flagged: traced=%d bside=%d",
				app, res.TracedViolations, res.BsideViolations)
		}
		if res.PairsBside < res.PairsTraced {
			t.Errorf("%s: extracted policy tighter than traced on allowed pairs: %d < %d",
				app, res.PairsBside, res.PairsTraced)
		}
		if res.FlowEdgesBside < res.FlowEdgesTraced {
			t.Errorf("%s: extracted flow graph smaller than traced: %d < %d",
				app, res.FlowEdgesBside, res.FlowEdgesTraced)
		}
		if res.BsideMonPerUnit <= 0 {
			t.Errorf("%s: b-side run did no monitor work (%.1f cyc/unit)", app, res.BsideMonPerUnit)
		}
		t.Logf("%s: ovh %.2f%%->%.2f%%, pairs %d->%d, edges %d->%d, consts %d->%d (+%d unbound)",
			app, res.TracedOverhead, res.BsideOverhead, res.PairsTraced, res.PairsBside,
			res.FlowEdgesTraced, res.FlowEdgesBside, res.ConstArgsTraced, res.ConstArgsBside, res.UnboundArgs)
	}
}
