package bench

import (
	"fmt"
	"sort"
	"strings"

	"bastion/internal/attacks"
	"bastion/internal/baseline/cet"
	"bastion/internal/core"
	"bastion/internal/core/binscan"
	"bastion/internal/core/metadata"
	"bastion/internal/core/monitor"
	"bastion/internal/kernel"
	"bastion/internal/obs"
	"bastion/internal/seccomp"
	"bastion/internal/vm"
	"bastion/internal/workload"
)

// Apps lists the evaluation applications in the paper's order.
var Apps = []string{"nginx", "sqlite", "vsftpd"}

// DefaultUnits is the per-measurement work-unit count used by the
// regeneration commands; benchmarks may scale it down.
const DefaultUnits = 120

// --- Figure 3: overhead per mitigation stack ---

// Figure3Row is one application's overhead series.
type Figure3Row struct {
	App       string
	Overheads map[Mitigation]float64 // percent vs vanilla
}

// Figure3 measures the overhead of every mitigation stack for every
// application.
func Figure3(units int) ([]Figure3Row, error) {
	var rows []Figure3Row
	for _, app := range Apps {
		base, err := Run(RunSpec{App: app, Mitigation: MitVanilla, Units: units})
		if err != nil {
			return nil, err
		}
		row := Figure3Row{App: app, Overheads: map[Mitigation]float64{}}
		for _, mit := range Mitigations[1:] {
			r, err := Run(RunSpec{App: app, Mitigation: mit, Units: units})
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", app, mit, err)
			}
			row.Overheads[mit] = Overhead(base, r)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFigure3 formats Figure 3 rows.
func RenderFigure3(rows []Figure3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: performance overhead vs unprotected baseline (%%)\n")
	fmt.Fprintf(&b, "%-8s %10s %8s %8s %10s %16s\n", "app", "LLVM CFI", "CET", "CET+CT", "CET+CT+CF", "CET+CT+CF+AI+SF")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %10.2f %8.2f %8.2f %10.2f %16.2f\n", r.App,
			r.Overheads[MitCFI], r.Overheads[MitCET], r.Overheads[MitCETCT],
			r.Overheads[MitCETCTCF], r.Overheads[MitFull])
	}
	return b.String()
}

// --- Table 3: raw benchmark numbers ---

// Table3Cell is one raw measurement in the application's native unit.
type Table3Cell struct {
	Mitigation Mitigation
	Value      float64
}

// Table3Row is one application's raw series.
type Table3Row struct {
	App   string
	Unit  string // "MB/s", "NOTPM", "sec"
	Cells []Table3Cell
}

// rawValue converts a run into the paper's reporting unit for the app.
func rawValue(app string, r *RunResult) float64 {
	rate := Throughput(r) // units per second
	switch app {
	case "nginx":
		return rate * workload.PageSize / 1e6 // MB/s
	case "sqlite":
		return rate * 60 // new-order transactions per minute
	case "vsftpd":
		// Seconds to download 100 MB at the measured transfer rate.
		const paperFile = 100e6
		perTransfer := float64(workload.FTPFileSize)
		if rate == 0 {
			return 0
		}
		return paperFile / (rate * perTransfer)
	}
	return rate
}

// Table3 measures the raw numbers behind Figure 3.
func Table3(units int) ([]Table3Row, error) {
	unitOf := map[string]string{"nginx": "MB/s", "sqlite": "NOTPM", "vsftpd": "sec"}
	var rows []Table3Row
	for _, app := range Apps {
		row := Table3Row{App: app, Unit: unitOf[app]}
		for _, mit := range Mitigations {
			r, err := Run(RunSpec{App: app, Mitigation: mit, Units: units})
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", app, mit, err)
			}
			row.Cells = append(row.Cells, Table3Cell{Mitigation: mit, Value: rawValue(app, r)})
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable3 formats Table 3.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table 3: raw benchmark numbers per mitigation\n")
	fmt.Fprintf(&b, "%-8s %-6s", "app", "unit")
	for _, m := range Mitigations {
		fmt.Fprintf(&b, " %13s", m)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-6s", r.App, r.Unit)
		for _, c := range r.Cells {
			fmt.Fprintf(&b, " %13.2f", c.Value)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// --- Table 4: sensitive syscall usage ---

// Table4Row is one syscall's per-application invocation counts.
type Table4Row struct {
	Syscall string
	Counts  map[string]uint64
}

// Table4Result carries the rows plus total monitor hooks.
type Table4Result struct {
	Rows  []Table4Row
	Hooks map[string]uint64
}

// Table4 counts sensitive syscall invocations (init + steady state) under
// full protection.
func Table4(units int) (*Table4Result, error) {
	res := &Table4Result{Hooks: map[string]uint64{}}
	counts := map[string]map[uint32]uint64{}
	for _, app := range Apps {
		r, err := Run(RunSpec{App: app, Mitigation: MitFull, Units: units})
		if err != nil {
			return nil, err
		}
		counts[app] = r.Protected.Proc.SyscallCounts
		res.Hooks[app] = r.Protected.Proc.TrapCount
	}
	for _, nr := range kernel.SensitiveSyscalls {
		row := Table4Row{Syscall: kernel.Name(nr), Counts: map[string]uint64{}}
		for _, app := range Apps {
			row.Counts[app] = counts[app][nr]
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// RenderTable4 formats Table 4.
func RenderTable4(t *Table4Result, units int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: sensitive system call usage (init + %d units)\n", units)
	fmt.Fprintf(&b, "%-18s %10s %10s %10s\n", "syscall", "nginx", "sqlite", "vsftpd")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-18s %10d %10d %10d\n", r.Syscall,
			r.Counts["nginx"], r.Counts["sqlite"], r.Counts["vsftpd"])
	}
	fmt.Fprintf(&b, "%-18s %10d %10d %10d\n", "total monitor hook",
		t.Hooks["nginx"], t.Hooks["sqlite"], t.Hooks["vsftpd"])
	return b.String()
}

// --- Table 5: instrumentation statistics ---

// Table5Row is one application's static statistics.
type Table5Row struct {
	App                string
	TotalCallsites     int
	DirectCallsites    int
	IndirectCallsites  int
	SensitiveCallsites int
	SensitiveIndirect  int
	CtxWriteMem        int
	CtxBindMem         int
	CtxBindConst       int
	Total              int
}

// Table5 reports the compiler's instrumentation statistics.
func Table5() ([]Table5Row, error) {
	var rows []Table5Row
	for _, app := range Apps {
		r, err := Run(RunSpec{App: app, Mitigation: MitFull, Units: 1})
		if err != nil {
			return nil, err
		}
		s := r.Stats.Stats
		rows = append(rows, Table5Row{
			App:                app,
			TotalCallsites:     s.TotalCallsites,
			DirectCallsites:    s.DirectCallsites,
			IndirectCallsites:  s.IndirectCallsites,
			SensitiveCallsites: s.SensitiveCallsites,
			SensitiveIndirect:  s.SensitiveIndirect,
			CtxWriteMem:        s.CtxWriteMem,
			CtxBindMem:         s.CtxBindMem,
			CtxBindConst:       s.CtxBindConst,
			Total:              s.Total(),
		})
	}
	return rows, nil
}

// RenderTable5 formats Table 5.
func RenderTable5(rows []Table5Row) string {
	var b strings.Builder
	b.WriteString("Table 5: instrumentation statistics\n")
	fmt.Fprintf(&b, "%-38s %8s %8s %8s\n", "", "nginx", "sqlite", "vsftpd")
	get := func(f func(Table5Row) int) [3]int {
		var v [3]int
		for i, r := range rows {
			v[i] = f(r)
		}
		return v
	}
	lines := []struct {
		label string
		f     func(Table5Row) int
	}{
		{"Total # application callsites", func(r Table5Row) int { return r.TotalCallsites }},
		{"Total # arbitrary direct callsites", func(r Table5Row) int { return r.DirectCallsites }},
		{"Total # arbitrary indirect callsites", func(r Table5Row) int { return r.IndirectCallsites }},
		{"Total # sensitive callsites", func(r Table5Row) int { return r.SensitiveCallsites }},
		{"# sensitive syscalls called indirectly", func(r Table5Row) int { return r.SensitiveIndirect }},
		{"ctx_write_mem()", func(r Table5Row) int { return r.CtxWriteMem }},
		{"ctx_bind_mem()", func(r Table5Row) int { return r.CtxBindMem }},
		{"ctx_bind_const()", func(r Table5Row) int { return r.CtxBindConst }},
		{"Total instrumentation sites", func(r Table5Row) int { return r.Total }},
	}
	for _, l := range lines {
		v := get(l.f)
		fmt.Fprintf(&b, "%-38s %8d %8d %8d\n", l.label, v[0], v[1], v[2])
	}
	return b.String()
}

// --- Table 6: security case studies ---

// Table6Row is one attack's verdicts.
type Table6Row struct {
	Verdict attacks.Verdict
}

// Table6 evaluates the full attack catalog.
func Table6() ([]Table6Row, error) {
	var rows []Table6Row
	for _, s := range attacks.Catalog() {
		v, err := attacks.Evaluate(s)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.ID, err)
		}
		rows = append(rows, Table6Row{Verdict: v})
	}
	return rows, nil
}

// RenderTable6 formats Table 6, grouping by category.
func RenderTable6(rows []Table6Row) string {
	var b strings.Builder
	b.WriteString("Table 6: exploits blocked per context (✓ blocks, × bypassed)\n")
	fmt.Fprintf(&b, "%-18s %-58s %-3s %-3s %-3s %-3s %s\n", "id", "attack", "CT", "CF", "AI", "SF", "full")
	mark := func(v bool) string {
		if v {
			return "✓"
		}
		return "×"
	}
	cat := ""
	for _, r := range rows {
		s := r.Verdict.Scenario
		if s.Category != cat {
			cat = s.Category
			fmt.Fprintf(&b, "-- %s --\n", cat)
		}
		fmt.Fprintf(&b, "%-18s %-58s %-3s %-3s %-3s %-3s %s\n",
			s.ID, truncate(s.Name, 58),
			mark(r.Verdict.CT), mark(r.Verdict.CF), mark(r.Verdict.AI),
			mark(r.Verdict.SF), mark(r.Verdict.FullBlocked))
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// --- Table 7: file-system syscall extension ---

// Table7Row is one checkpoint configuration's results across apps.
type Table7Row struct {
	Label     string
	Raw       map[string]float64
	Overheads map[string]float64
}

// Table7 measures the §11.2 extension: protecting file-system syscalls at
// the three monitor checkpoints.
func Table7(units int) ([]Table7Row, error) {
	base := map[string]*RunResult{}
	for _, app := range Apps {
		r, err := Run(RunSpec{App: app, Mitigation: MitVanilla, Units: units})
		if err != nil {
			return nil, err
		}
		base[app] = r
	}
	configs := []struct {
		label string
		mode  monitor.Mode
	}{
		{"seccomp hook only", monitor.ModeHookOnly},
		{"fetch process state", monitor.ModeFetchOnly},
		{"full context checking", monitor.ModeFull},
	}
	var rows []Table7Row
	for _, cfg := range configs {
		row := Table7Row{Label: cfg.label, Raw: map[string]float64{}, Overheads: map[string]float64{}}
		for _, app := range Apps {
			r, err := Run(RunSpec{App: app, Mitigation: MitFull, Units: units, ExtendFS: true, Mode: cfg.mode})
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", app, cfg.label, err)
			}
			row.Raw[app] = rawValue(app, r)
			row.Overheads[app] = Overhead(base[app], r)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable7 formats Table 7.
func RenderTable7(rows []Table7Row) string {
	var b strings.Builder
	b.WriteString("Table 7: overhead with file-system syscalls protected\n")
	fmt.Fprintf(&b, "%-24s %22s %22s %22s\n", "configuration", "nginx", "sqlite", "vsftpd")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %13.2f (%5.2f%%) %13.2f (%5.2f%%) %13.2f (%5.2f%%)\n", r.Label,
			r.Raw["nginx"], r.Overheads["nginx"],
			r.Raw["sqlite"], r.Overheads["sqlite"],
			r.Raw["vsftpd"], r.Overheads["vsftpd"])
	}
	return b.String()
}

// --- §9.2 extras: monitor init cost and call-depth statistics ---

// InitDepthStats carries the §9.2 prose numbers.
type InitDepthStats struct {
	App        string
	InitMillis float64
	AvgDepth   float64
	MinDepth   int
	MaxDepth   int
}

// InitAndDepth measures monitor initialization latency and syscall stack
// depths for one application.
func InitAndDepth(app string, units int) (*InitDepthStats, error) {
	r, err := Run(RunSpec{App: app, Mitigation: MitFull, Units: units})
	if err != nil {
		return nil, err
	}
	m := r.Protected.Machine
	return &InitDepthStats{
		App:        app,
		InitMillis: float64(r.Protected.Monitor.InitCycles) / SimHz * 1000,
		AvgDepth:   m.AvgSyscallDepth(),
		MinDepth:   m.MinDepth,
		MaxDepth:   m.MaxDepth,
	}, nil
}

// --- Ablation: accept/accept4 fast path (§9.2) ---

// AblationResult compares full protection with and without the accept
// fast path.
type AblationResult struct {
	App              string
	FastPathOverhead float64
	FullWalkOverhead float64
}

// AblationAcceptFastPath measures the §9.2 accept optimization.
func AblationAcceptFastPath(app string, units int) (*AblationResult, error) {
	base, err := Run(RunSpec{App: app, Mitigation: MitVanilla, Units: units})
	if err != nil {
		return nil, err
	}
	fast, err := Run(RunSpec{App: app, Mitigation: MitFull, Units: units})
	if err != nil {
		return nil, err
	}
	slow, err := Run(RunSpec{App: app, Mitigation: MitFull, Units: units, DisableAcceptFastPath: true})
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		App:              app,
		FastPathOverhead: Overhead(base, fast),
		FullWalkOverhead: Overhead(base, slow),
	}, nil
}

// --- Ablation: linear vs binary-search seccomp filter ---

// FilterAblationResult compares the linear comparison-chain filter
// against the balanced binary-search compilation for one application,
// under ModeHookOnly (Table 7 row 1: pure filter cost) with the
// file-system extension, where the rule set is largest.
type FilterAblationResult struct {
	App string
	// LinearInsns / TreeInsns are executed BPF instructions per filter
	// evaluation, averaged uniformly over the kernel syscall table — the
	// O(n)-vs-O(log n) hook cost independent of workload mix.
	LinearInsns float64
	TreeInsns   float64
	// LinearPerCall / TreePerCall are executed BPF instructions per
	// syscall as measured on the workload. Linux numbers its hottest
	// syscalls lowest (read=0, write=1, ...), so the sorted linear chain
	// matches them in its first slots and the workload-weighted averages
	// sit much closer together than the table averages.
	LinearPerCall float64
	TreePerCall   float64
	// LinearOverhead / TreeOverhead are throughput overheads vs vanilla.
	LinearOverhead float64
	TreeOverhead   float64
}

// tableAvgSteps evaluates prog once per syscall number in the kernel
// table and returns the mean executed instruction count.
func tableAvgSteps(prog []seccomp.Insn) (float64, error) {
	var total, n int
	for nr := range kernel.Names {
		_, steps, err := seccomp.Run(prog, &seccomp.Data{Nr: nr, Arch: seccomp.AuditArchX86_64})
		if err != nil {
			return 0, err
		}
		total += steps
		n++
	}
	return float64(total) / float64(n), nil
}

// FilterAblation measures the per-hook BPF instruction cost of the two
// filter compilations for one application.
func FilterAblation(app string, units int) (*FilterAblationResult, error) {
	base, err := Run(RunSpec{App: app, Mitigation: MitVanilla, Units: units})
	if err != nil {
		return nil, err
	}
	perCall := func(r *RunResult) float64 {
		var calls uint64
		for _, n := range r.Protected.Proc.SyscallCounts {
			calls += n
		}
		if calls == 0 {
			return 0
		}
		return float64(r.Protected.Proc.FilterSteps) / float64(calls)
	}
	spec := RunSpec{App: app, Mitigation: MitFull, Units: units, ExtendFS: true, Mode: monitor.ModeHookOnly}
	lin, err := Run(spec)
	if err != nil {
		return nil, err
	}
	spec.TreeFilter = true
	tree, err := Run(spec)
	if err != nil {
		return nil, err
	}
	res := &FilterAblationResult{
		App:            app,
		LinearPerCall:  perCall(lin),
		TreePerCall:    perCall(tree),
		LinearOverhead: Overhead(base, lin),
		TreeOverhead:   Overhead(base, tree),
	}
	if res.LinearInsns, err = tableAvgSteps(lin.Protected.Proc.SeccompFilter()); err != nil {
		return nil, err
	}
	if res.TreeInsns, err = tableAvgSteps(tree.Protected.Proc.SeccompFilter()); err != nil {
		return nil, err
	}
	return res, nil
}

// RenderFilterAblation formats the filter ablation rows.
func RenderFilterAblation(rows []*FilterAblationResult) string {
	var b strings.Builder
	b.WriteString("Seccomp filter ablation: linear chain vs binary search (hook-only, fs extension)\n")
	fmt.Fprintf(&b, "%-8s %18s %18s %18s %18s %13s %13s\n", "app",
		"linear insns/eval", "tree insns/eval", "linear insns/call", "tree insns/call",
		"linear ovh %", "tree ovh %")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %18.2f %18.2f %18.2f %18.2f %13.2f %13.2f\n", r.App,
			r.LinearInsns, r.TreeInsns, r.LinearPerCall, r.TreePerCall,
			r.LinearOverhead, r.TreeOverhead)
	}
	return b.String()
}

// --- Ablation: verdict cache ---

// CacheAblationResult compares full protection with the verdict cache off
// and on for one application, under the file-system extension with the
// monitor in full mode — the trap-heaviest loop, where the same call
// paths reach the same syscalls every unit and the cache should converge
// to near-total hit rate.
type CacheAblationResult struct {
	App string
	// OffOverhead / OnOverhead are throughput overheads vs vanilla.
	OffOverhead float64
	OnOverhead  float64
	// OffMonPerUnit / OnMonPerUnit are modeled monitor cycles per work
	// unit — the serialized share the queueing model caps throughput on.
	OffMonPerUnit float64
	OnMonPerUnit  float64
	// Steady-state cache statistics.
	Hits, Misses, Inserts, Evictions uint64
	// OffViolations / OnViolations must both be zero on the benign
	// workload; the differential suite proves the general case.
	OffViolations int
	OnViolations  int
}

// HitRate returns hits / (hits + misses), or 0 with no lookups.
func (r *CacheAblationResult) HitRate() float64 {
	if total := r.Hits + r.Misses; total > 0 {
		return float64(r.Hits) / float64(total)
	}
	return 0
}

// CacheAblation measures the verdict-cache ablation for one application.
func CacheAblation(app string, units int) (*CacheAblationResult, error) {
	base, err := Run(RunSpec{App: app, Mitigation: MitVanilla, Units: units})
	if err != nil {
		return nil, err
	}
	spec := RunSpec{App: app, Mitigation: MitFull, Units: units, ExtendFS: true}
	off, err := Run(spec)
	if err != nil {
		return nil, err
	}
	spec.VerdictCache = true
	on, err := Run(spec)
	if err != nil {
		return nil, err
	}
	mon := on.Protected.Monitor
	return &CacheAblationResult{
		App:           app,
		OffOverhead:   Overhead(base, off),
		OnOverhead:    Overhead(base, on),
		OffMonPerUnit: off.Workload.PerUnitMonitor(),
		OnMonPerUnit:  on.Workload.PerUnitMonitor(),
		Hits:          mon.CacheHits,
		Misses:        mon.CacheMisses,
		Inserts:       mon.CacheInserts,
		Evictions:     mon.CacheEvictions,
		OffViolations: len(off.Protected.Monitor.Violations),
		OnViolations:  len(on.Protected.Monitor.Violations),
	}, nil
}

// RenderCacheAblation formats the cache ablation rows.
func RenderCacheAblation(rows []*CacheAblationResult) string {
	var b strings.Builder
	b.WriteString("Verdict cache ablation: full protection, fs extension (monitor cycles per unit)\n")
	fmt.Fprintf(&b, "%-8s %16s %16s %10s %13s %13s\n", "app",
		"off mon cyc/unit", "on mon cyc/unit", "hit rate", "off ovh %", "on ovh %")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %16.0f %16.0f %9.1f%% %13.2f %13.2f\n", r.App,
			r.OffMonPerUnit, r.OnMonPerUnit, r.HitRate()*100,
			r.OffOverhead, r.OnOverhead)
	}
	return b.String()
}

// --- Ablation: syscall-flow context ---

// SFAblationResult compares full protection with the syscall-flow context
// disabled (ct,cf,ai — the pre-SF configuration) and enabled for one
// application. SF adds one transition-table lookup per full-mode trap, so
// its runtime cost is bounded by FlowChecks × SFCheck cycles; the benign
// workloads must stay violation-free either way (the ordering attacks it
// exists for are proven by the attack matrix, not here).
type SFAblationResult struct {
	App string
	// OffOverhead / OnOverhead are throughput overheads vs vanilla.
	OffOverhead float64
	OnOverhead  float64
	// OffMonPerUnit / OnMonPerUnit are monitor cycles per work unit.
	OffMonPerUnit float64
	OnMonPerUnit  float64
	// FlowChecks counts SF transition checks in the enabled run (zero in
	// the disabled run by construction); Traps the enabled run's traps.
	FlowChecks uint64
	Traps      uint64
	// OffViolations / OnViolations must both be zero: the flow graph
	// derived from the program covers its own benign behavior.
	OffViolations int
	OnViolations  int
}

// SFAblation measures the syscall-flow ablation for one application.
func SFAblation(app string, units int) (*SFAblationResult, error) {
	base, err := Run(RunSpec{App: app, Mitigation: MitVanilla, Units: units})
	if err != nil {
		return nil, err
	}
	spec := RunSpec{
		App: app, Mitigation: MitFull, Units: units,
		UseContexts: true,
		Contexts:    monitor.CallType | monitor.ControlFlow | monitor.ArgIntegrity,
	}
	off, err := Run(spec)
	if err != nil {
		return nil, err
	}
	spec.UseContexts = false
	on, err := Run(spec)
	if err != nil {
		return nil, err
	}
	if got := off.Protected.Monitor.FlowChecks; got != 0 {
		return nil, fmt.Errorf("%s: SF-disabled run performed %d flow checks", app, got)
	}
	return &SFAblationResult{
		App:           app,
		OffOverhead:   Overhead(base, off),
		OnOverhead:    Overhead(base, on),
		OffMonPerUnit: off.Workload.PerUnitMonitor(),
		OnMonPerUnit:  on.Workload.PerUnitMonitor(),
		FlowChecks:    on.Protected.Monitor.FlowChecks,
		Traps:         on.Protected.Proc.TrapCount,
		OffViolations: len(off.Protected.Monitor.Violations),
		OnViolations:  len(on.Protected.Monitor.Violations),
	}, nil
}

// RenderSFAblation formats the syscall-flow ablation rows.
func RenderSFAblation(rows []*SFAblationResult) string {
	var b strings.Builder
	b.WriteString("Syscall-flow ablation: full protection with SF off (ct,cf,ai) vs on (monitor cycles per unit)\n")
	fmt.Fprintf(&b, "%-8s %16s %16s %12s %8s %13s %13s\n", "app",
		"off mon cyc/unit", "on mon cyc/unit", "flow checks", "traps", "off ovh %", "on ovh %")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %16.0f %16.0f %12d %8d %13.2f %13.2f\n", r.App,
			r.OffMonPerUnit, r.OnMonPerUnit, r.FlowChecks, r.Traps,
			r.OffOverhead, r.OnOverhead)
	}
	return b.String()
}

// --- Ablation: in-filter verdict offload ---

// OffloadAblationResult compares full-mode protection with the verdict
// offload off and on for one application. The configuration is call-type +
// argument-integrity with the file-system extension — the "CT/const-AI
// only" shape where every extension syscall's verdict is decidable from
// seccomp_data, so the offload's trap savings are maximal. (Control flow
// disqualifies offload by construction: the CF context judges the whole
// unwound stack.)
type OffloadAblationResult struct {
	App string
	// OffOverhead / OnOverhead are throughput overheads vs vanilla.
	OffOverhead float64
	OnOverhead  float64
	// OffMonPerUnit / OnMonPerUnit are modeled monitor cycles per work
	// unit; the offload must strictly lower this on trap-heavy workloads.
	OffMonPerUnit float64
	OnMonPerUnit  float64
	// OffTraps / OnTraps are monitor stops (SECCOMP_RET_TRACE) taken;
	// Avoided counts in-filter RET_LOG allows — traps the pure-monitor
	// filter would have taken.
	OffTraps uint64
	OnTraps  uint64
	Avoided  uint64
	// OffloadedNrs is how many syscalls the plan answered in-filter.
	OffloadedNrs int
	// Both must be zero on the benign workload; the offload differential
	// suite proves verdict equivalence in general.
	OffViolations int
	OnViolations  int
}

// CyclesSavedPerUnit is the per-unit monitor-cycle saving.
func (r *OffloadAblationResult) CyclesSavedPerUnit() float64 {
	return r.OffMonPerUnit - r.OnMonPerUnit
}

// OffloadAblation measures the verdict-offload ablation for one
// application.
func OffloadAblation(app string, units int) (*OffloadAblationResult, error) {
	base, err := Run(RunSpec{App: app, Mitigation: MitVanilla, Units: units})
	if err != nil {
		return nil, err
	}
	spec := RunSpec{
		App: app, Mitigation: MitFull, Units: units, ExtendFS: true,
		UseContexts: true, Contexts: monitor.CallType | monitor.ArgIntegrity,
	}
	off, err := Run(spec)
	if err != nil {
		return nil, err
	}
	spec.Offload = true
	on, err := Run(spec)
	if err != nil {
		return nil, err
	}
	mon := on.Protected.Monitor
	return &OffloadAblationResult{
		App:           app,
		OffOverhead:   Overhead(base, off),
		OnOverhead:    Overhead(base, on),
		OffMonPerUnit: off.Workload.PerUnitMonitor(),
		OnMonPerUnit:  on.Workload.PerUnitMonitor(),
		OffTraps:      off.Workload.Traps,
		OnTraps:       on.Workload.Traps,
		Avoided:       mon.OffloadAvoided(),
		OffloadedNrs:  len(mon.Offload.Rules),
		OffViolations: len(off.Protected.Monitor.Violations),
		OnViolations:  len(on.Protected.Monitor.Violations),
	}, nil
}

// RenderOffloadAblation formats the offload ablation rows.
func RenderOffloadAblation(rows []*OffloadAblationResult) string {
	var b strings.Builder
	b.WriteString("Verdict offload ablation: CT+AI, fs extension (in-filter decisions vs monitor traps)\n")
	fmt.Fprintf(&b, "%-8s %10s %10s %10s %8s %16s %16s %13s %13s\n", "app",
		"off traps", "on traps", "avoided", "nrs",
		"off mon cyc/unit", "on mon cyc/unit", "off ovh %", "on ovh %")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %10d %10d %10d %8d %16.0f %16.0f %13.2f %13.2f\n", r.App,
			r.OffTraps, r.OnTraps, r.Avoided, r.OffloadedNrs,
			r.OffMonPerUnit, r.OnMonPerUnit, r.OffOverhead, r.OnOverhead)
	}
	return b.String()
}

// RefineAblationResult compares monitor behaviour under the coarse
// address-taken AllowedIndirect sets against the points-to–refined sets
// for one application, alongside the static policy-size deltas.
type RefineAblationResult struct {
	App string
	// CoarseOverhead / RefinedOverhead are percent vs vanilla under full
	// protection with the fs extension and the verdict cache on.
	CoarseOverhead  float64
	RefinedOverhead float64
	// Monitor cycles per work unit — the CF walk terminates at the
	// indirect-callsite policy lookup, so any set-size effect lands here.
	CoarseMonPerUnit  float64
	RefinedMonPerUnit float64
	// Cache-key population: inserts measure how many distinct verdict keys
	// the policy precision induces on the benign workload.
	CoarseCacheInserts  uint64
	RefinedCacheInserts uint64
	// Static policy sizes from the compiler's refinement statistics.
	EdgesCoarse  int // Σ per-site candidate targets, address-taken
	EdgesRefined int // Σ per-site candidate targets, points-to–refined
	PairsCoarse  int // Σ per-syscall allowed callsite addresses, coarse
	PairsRefined int // Σ per-syscall allowed callsite addresses, refined
	ExactSites   int // indirect callsites pinned by the points-to pass
	EscapedSites int // indirect callsites falling back to address-taken
	// Both must be zero on the benign workload; the attack replay suite
	// proves verdict equivalence in general.
	CoarseViolations  int
	RefinedViolations int
}

// RefineAblation measures the points-to refinement ablation for one
// application: identical full-protection runs, one enforcing the coarse
// pre-refinement AllowedIndirect sets and one the refined sets.
func RefineAblation(app string, units int) (*RefineAblationResult, error) {
	base, err := Run(RunSpec{App: app, Mitigation: MitVanilla, Units: units})
	if err != nil {
		return nil, err
	}
	spec := RunSpec{App: app, Mitigation: MitFull, Units: units, ExtendFS: true, VerdictCache: true}
	spec.CoarsePolicies = true
	coarse, err := Run(spec)
	if err != nil {
		return nil, err
	}
	spec.CoarsePolicies = false
	refined, err := Run(spec)
	if err != nil {
		return nil, err
	}
	st := refined.Stats.Stats
	return &RefineAblationResult{
		App:                 app,
		CoarseOverhead:      Overhead(base, coarse),
		RefinedOverhead:     Overhead(base, refined),
		CoarseMonPerUnit:    coarse.Workload.PerUnitMonitor(),
		RefinedMonPerUnit:   refined.Workload.PerUnitMonitor(),
		CoarseCacheInserts:  coarse.Protected.Monitor.CacheInserts,
		RefinedCacheInserts: refined.Protected.Monitor.CacheInserts,
		EdgesCoarse:         st.IndirectEdgesCoarse,
		EdgesRefined:        st.IndirectEdgesRefined,
		PairsCoarse:         st.AllowedPairsCoarse,
		PairsRefined:        st.AllowedPairsRefined,
		ExactSites:          st.ExactIndirectSites,
		EscapedSites:        st.EscapedIndirectSites,
		CoarseViolations:    len(coarse.Protected.Monitor.Violations),
		RefinedViolations:   len(refined.Protected.Monitor.Violations),
	}, nil
}

// RenderRefineAblation formats the refinement ablation rows.
func RenderRefineAblation(rows []*RefineAblationResult) string {
	var b strings.Builder
	b.WriteString("Points-to refinement ablation: full protection, fs extension, verdict cache\n")
	fmt.Fprintf(&b, "%-8s %11s %12s %16s %16s %13s %13s %6s %7s\n", "app",
		"edges c->r", "pairs c->r", "coarse cyc/unit", "refined cyc/unit",
		"coarse ovh %", "refined ovh %", "exact", "escaped")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %5d->%-5d %5d->%-5d %16.0f %16.0f %13.2f %13.2f %6d %7d\n", r.App,
			r.EdgesCoarse, r.EdgesRefined, r.PairsCoarse, r.PairsRefined,
			r.CoarseMonPerUnit, r.RefinedMonPerUnit,
			r.CoarseOverhead, r.RefinedOverhead,
			r.ExactSites, r.EscapedSites)
	}
	return b.String()
}

// ObsAblationResult compares a fully protected run with telemetry off
// against the identical run with a decision-trace sink and flight recorder
// attached — the observability plane's zero-cost claim. Telemetry reads
// the simulated clock but never advances it, so every cycle account must
// be bit-identical, not merely close.
type ObsAblationResult struct {
	App string
	// Identical reports whether the two runs' full workload measurements
	// (units, bytes, and every cycle account) matched exactly.
	Identical bool
	// OffMonPerUnit / OnMonPerUnit are monitor cycles per work unit with
	// telemetry off and on; Identical implies they are equal.
	OffMonPerUnit float64
	OnMonPerUnit  float64
	// Traps and Events count the traced run's monitor hooks and emitted
	// trace events (they must agree); TraceBytes is the JSONL trace size
	// — the observability cost lives here, off the simulated timeline.
	Traps      uint64
	Events     int
	TraceBytes int
	// FlightEvents is the flight-recorder occupancy after the run.
	FlightEvents int
}

// ObsAblation measures the observability ablation for one application:
// full protection with the fs extension and verdict cache, telemetry off
// versus a buffered trace sink plus a 32-deep flight recorder.
func ObsAblation(app string, units int) (*ObsAblationResult, error) {
	spec := RunSpec{App: app, Mitigation: MitFull, Units: units, ExtendFS: true, VerdictCache: true}
	off, err := Run(spec)
	if err != nil {
		return nil, err
	}
	sink := &obs.BufferSink{}
	spec.Sink = sink
	spec.FlightN = 32
	on, err := Run(spec)
	if err != nil {
		return nil, err
	}
	var trace strings.Builder
	if err := obs.WriteJSONL(&trace, sink.Events); err != nil {
		return nil, err
	}
	return &ObsAblationResult{
		App:           app,
		Identical:     off.Workload == on.Workload,
		OffMonPerUnit: off.Workload.PerUnitMonitor(),
		OnMonPerUnit:  on.Workload.PerUnitMonitor(),
		Traps:         on.Protected.Monitor.Hooks,
		Events:        len(sink.Events),
		TraceBytes:    trace.Len(),
		FlightEvents:  on.Protected.Monitor.Recorder.Len(),
	}, nil
}

// RenderObsAblation formats the observability ablation rows.
func RenderObsAblation(rows []*ObsAblationResult) string {
	var b strings.Builder
	b.WriteString("Observability ablation: full protection, fs extension, verdict cache; trace sink + flight recorder on vs off\n")
	fmt.Fprintf(&b, "%-8s %16s %15s %8s %8s %11s %9s\n", "app",
		"off mon cyc/unit", "on mon cyc/unit", "traps", "events", "trace bytes", "identical")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %16.0f %15.0f %8d %8d %11d %9s\n", r.App,
			r.OffMonPerUnit, r.OnMonPerUnit, r.Traps, r.Events, r.TraceBytes, yesno(r.Identical))
	}
	return b.String()
}

func yesno(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// InKernelResult compares the ptrace monitor against the §11.2 in-kernel
// design under the file-system extension, where state fetching dominates.
type InKernelResult struct {
	App              string
	PtraceOverhead   float64
	InKernelOverhead float64
}

// InKernelAblation measures how much of the Table 7 overhead the paper's
// proposed in-kernel monitor recovers.
func InKernelAblation(app string, units int) (*InKernelResult, error) {
	base, err := Run(RunSpec{App: app, Mitigation: MitVanilla, Units: units})
	if err != nil {
		return nil, err
	}
	ptrace, err := Run(RunSpec{App: app, Mitigation: MitFull, Units: units, ExtendFS: true})
	if err != nil {
		return nil, err
	}
	inK, err := Run(RunSpec{App: app, Mitigation: MitFull, Units: units, ExtendFS: true, InKernel: true})
	if err != nil {
		return nil, err
	}
	return &InKernelResult{
		App:              app,
		PtraceOverhead:   Overhead(base, ptrace),
		InKernelOverhead: Overhead(base, inK),
	}, nil
}

// SortedSensitiveNames returns the sensitive syscall names in Table 1
// order (stable helper for reports).
func SortedSensitiveNames() []string {
	names := make([]string, len(kernel.SensitiveSyscalls))
	for i, nr := range kernel.SensitiveSyscalls {
		names[i] = kernel.Name(nr)
	}
	sort.Strings(names)
	return names
}

// --- B-Side ablation: binary-only extracted policy vs compiler-traced ---

// BsideAblationResult compares full protection under the compiler-traced
// policy against full protection under the policy the binary-only
// extractor (internal/core/binscan) recovers from the uninstrumented
// program — the extraction-regime overhead and policy-looseness numbers.
type BsideAblationResult struct {
	App string
	// TracedOverhead / BsideOverhead are percent vs vanilla, full
	// contexts with the fs extension and verdict cache on. The b-side run
	// executes the raw (intrinsic-free) binary, so its guest does less
	// work per unit while its monitor checks the same trap stream.
	TracedOverhead float64
	BsideOverhead  float64
	// Monitor cycles per work unit under each policy.
	TracedMonPerUnit float64
	BsideMonPerUnit  float64
	// Policy looseness: allowed (syscall, indirect-callsite) pairs and
	// transition-graph edges, traced vs extracted. Extraction stops at the
	// address-taken ∩ type-match frontier, so its pair count matches the
	// compiler's pre-refinement count and bounds the traced one below.
	PairsTraced     int
	PairsBside      int
	FlowEdgesTraced int
	FlowEdgesBside  int
	// Constant-argument bindings recovered (traced counts ArgConst specs
	// at syscall callsites; bside adds UnboundArgs for the positions the
	// dataflow abandoned to ⊤).
	ConstArgsTraced int
	ConstArgsBside  int
	UnboundArgs     int
	// Both runs execute the identical benign workload, so both counts
	// must be zero — the ablation doubles as a soundness probe.
	TracedViolations int
	BsideViolations  int
}

// BsideAblation measures the binary-only extraction ablation for one
// application: identical full-protection workload runs, one enforcing the
// compiler-traced metadata on the instrumented binary, one enforcing the
// extracted metadata on the raw binary.
func BsideAblation(app string, units int) (*BsideAblationResult, error) {
	base, err := Run(RunSpec{App: app, Mitigation: MitVanilla, Units: units})
	if err != nil {
		return nil, err
	}
	traced, err := Run(RunSpec{App: app, Mitigation: MitFull, Units: units, ExtendFS: true, VerdictCache: true})
	if err != nil {
		return nil, err
	}

	// The b-side leg: extract from the shared raw program (extraction is
	// read-only on a linked program) and launch it under the extracted
	// policy with the same monitor configuration and mitigation stack.
	prog, err := sharedArtifacts.Raw(app)
	if err != nil {
		return nil, err
	}
	ext, err := binscan.Extract(prog, binscan.Options{})
	if err != nil {
		return nil, err
	}
	target, err := workload.NewTarget(app)
	if err != nil {
		return nil, err
	}
	k := kernel.New(nil)
	k.Costs.IOPerByte = workload.IOPerByte(app)
	if err := target.Fixture(k); err != nil {
		return nil, err
	}
	cfg := monitor.DefaultConfig()
	cfg.ExtendFS = true
	cfg.VerdictCache = true
	prot, err := core.Launch(&core.Artifact{Prog: prog, Meta: ext.Meta}, k, cfg,
		vm.WithMitigations(cet.New()), vm.WithMaxSteps(1<<34))
	if err != nil {
		return nil, err
	}
	wl, err := workload.Run(target, prot, units)
	if err != nil {
		return nil, err
	}
	bres := &RunResult{Spec: RunSpec{App: app, Units: units}, Workload: wl, Target: target, Protected: prot}

	tracedConsts := 0
	for _, site := range traced.Stats.Meta.ArgSites {
		if !site.IsSyscall {
			continue
		}
		for _, spec := range site.Args {
			if spec.Kind == metadata.ArgConst {
				tracedConsts++
			}
		}
	}
	st := traced.Stats.Stats
	return &BsideAblationResult{
		App:              app,
		TracedOverhead:   Overhead(base, traced),
		BsideOverhead:    Overhead(base, bres),
		TracedMonPerUnit: traced.Workload.PerUnitMonitor(),
		BsideMonPerUnit:  bres.Workload.PerUnitMonitor(),
		PairsTraced:      st.AllowedPairsRefined,
		PairsBside:       ext.Stats.AllowedPairs,
		FlowEdgesTraced:  traced.Stats.Meta.SyscallFlow.EdgeCount(),
		FlowEdgesBside:   ext.Stats.FlowEdges,
		ConstArgsTraced:  tracedConsts,
		ConstArgsBside:   ext.Stats.ConstArgs,
		UnboundArgs:      ext.Stats.TopArgs,
		TracedViolations: len(traced.Protected.Monitor.Violations),
		BsideViolations:  len(prot.Monitor.Violations),
	}, nil
}

// RenderBsideAblation formats the extraction ablation rows.
func RenderBsideAblation(rows []*BsideAblationResult) string {
	var b strings.Builder
	b.WriteString("B-Side ablation: full protection, traced metadata (instrumented binary) vs extracted metadata (raw binary)\n")
	fmt.Fprintf(&b, "%-8s %12s %12s %16s %16s %12s %12s %12s %6s\n", "app",
		"traced ovh %", "bside ovh %", "traced cyc/unit", "bside cyc/unit",
		"pairs t->b", "edges t->b", "consts t->b", "viol")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %12.2f %12.2f %16.0f %16.0f %5d->%-6d %5d->%-6d %5d->%-6d %3d/%-3d\n", r.App,
			r.TracedOverhead, r.BsideOverhead,
			r.TracedMonPerUnit, r.BsideMonPerUnit,
			r.PairsTraced, r.PairsBside,
			r.FlowEdgesTraced, r.FlowEdgesBside,
			r.ConstArgsTraced, r.ConstArgsBside,
			r.TracedViolations, r.BsideViolations)
	}
	return b.String()
}
