package bench

import (
	"fmt"
	"strings"

	"bastion/internal/attacks"
)

// Report bundles every experiment into one artifact-evaluation document.
type Report struct {
	Units   int
	Figure3 []Figure3Row
	Table3  []Table3Row
	Table4  *Table4Result
	Table5  []Table5Row
	Table6  []Table6Row
	Table7  []Table7Row
	Init    []*InitDepthStats
	Accept  *AblationResult
	InK     []*InKernelResult
}

// CollectReport runs every experiment at the given unit count.
func CollectReport(units int) (*Report, error) {
	r := &Report{Units: units}
	var err error
	if r.Figure3, err = Figure3(units); err != nil {
		return nil, fmt.Errorf("figure 3: %w", err)
	}
	if r.Table3, err = Table3(units); err != nil {
		return nil, fmt.Errorf("table 3: %w", err)
	}
	if r.Table4, err = Table4(units); err != nil {
		return nil, fmt.Errorf("table 4: %w", err)
	}
	if r.Table5, err = Table5(); err != nil {
		return nil, fmt.Errorf("table 5: %w", err)
	}
	if r.Table6, err = Table6(); err != nil {
		return nil, fmt.Errorf("table 6: %w", err)
	}
	if r.Table7, err = Table7(units); err != nil {
		return nil, fmt.Errorf("table 7: %w", err)
	}
	for _, app := range Apps {
		st, err := InitAndDepth(app, units)
		if err != nil {
			return nil, fmt.Errorf("init/depth %s: %w", app, err)
		}
		r.Init = append(r.Init, st)
		ik, err := InKernelAblation(app, units)
		if err != nil {
			return nil, fmt.Errorf("in-kernel %s: %w", app, err)
		}
		r.InK = append(r.InK, ik)
	}
	if r.Accept, err = AblationAcceptFastPath("nginx", units); err != nil {
		return nil, fmt.Errorf("accept ablation: %w", err)
	}
	return r, nil
}

// Markdown renders the whole report as a standalone document.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# BASTION evaluation report (%d units per measurement)\n\n", r.Units)
	b.WriteString("All numbers are deterministic simulator measurements; see EXPERIMENTS.md for paper comparison.\n\n")

	b.WriteString("## Figure 3 — overhead per mitigation stack (%)\n\n")
	b.WriteString("| app | LLVM CFI | CET | CET+CT | CET+CT+CF | CET+CT+CF+AI |\n|---|---|---|---|---|---|\n")
	for _, row := range r.Figure3 {
		fmt.Fprintf(&b, "| %s | %.2f | %.2f | %.2f | %.2f | %.2f |\n", row.App,
			row.Overheads[MitCFI], row.Overheads[MitCET], row.Overheads[MitCETCT],
			row.Overheads[MitCETCTCF], row.Overheads[MitFull])
	}

	b.WriteString("\n## Table 3 — raw numbers\n\n| app | unit |")
	for _, m := range Mitigations {
		fmt.Fprintf(&b, " %s |", m)
	}
	b.WriteString("\n|---|---|---|---|---|---|---|---|\n")
	for _, row := range r.Table3 {
		fmt.Fprintf(&b, "| %s | %s |", row.App, row.Unit)
		for _, c := range row.Cells {
			fmt.Fprintf(&b, " %.2f |", c.Value)
		}
		b.WriteString("\n")
	}

	b.WriteString("\n## Table 4 — sensitive syscall usage\n\n| syscall | nginx | sqlite | vsftpd |\n|---|---|---|---|\n")
	for _, row := range r.Table4.Rows {
		fmt.Fprintf(&b, "| %s | %d | %d | %d |\n", row.Syscall,
			row.Counts["nginx"], row.Counts["sqlite"], row.Counts["vsftpd"])
	}
	fmt.Fprintf(&b, "| **total monitor hook** | %d | %d | %d |\n",
		r.Table4.Hooks["nginx"], r.Table4.Hooks["sqlite"], r.Table4.Hooks["vsftpd"])

	b.WriteString("\n## Table 5 — instrumentation statistics\n\n| statistic | nginx | sqlite | vsftpd |\n|---|---|---|---|\n")
	stat := func(label string, f func(Table5Row) int) {
		fmt.Fprintf(&b, "| %s |", label)
		for _, row := range r.Table5 {
			fmt.Fprintf(&b, " %d |", f(row))
		}
		b.WriteString("\n")
	}
	stat("application callsites", func(x Table5Row) int { return x.TotalCallsites })
	stat("direct callsites", func(x Table5Row) int { return x.DirectCallsites })
	stat("indirect callsites", func(x Table5Row) int { return x.IndirectCallsites })
	stat("sensitive callsites", func(x Table5Row) int { return x.SensitiveCallsites })
	stat("sensitive called indirectly", func(x Table5Row) int { return x.SensitiveIndirect })
	stat("ctx_write_mem", func(x Table5Row) int { return x.CtxWriteMem })
	stat("ctx_bind_mem", func(x Table5Row) int { return x.CtxBindMem })
	stat("ctx_bind_const", func(x Table5Row) int { return x.CtxBindConst })
	stat("total instrumentation", func(x Table5Row) int { return x.Total })

	b.WriteString("\n## Table 6 — security case studies\n\n| attack | category | CT | CF | AI | full |\n|---|---|---|---|---|---|\n")
	mark := func(v bool) string {
		if v {
			return "✓"
		}
		return "×"
	}
	for _, row := range r.Table6 {
		s := row.Verdict.Scenario
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %s |\n", s.ID, s.Category,
			mark(row.Verdict.CT), mark(row.Verdict.CF), mark(row.Verdict.AI),
			mark(row.Verdict.FullBlocked))
	}

	b.WriteString("\n## Table 7 — file-system syscall extension\n\n| configuration | nginx | sqlite | vsftpd |\n|---|---|---|---|\n")
	for _, row := range r.Table7 {
		fmt.Fprintf(&b, "| %s | %.2f (%.2f%%) | %.2f (%.2f%%) | %.2f (%.2f%%) |\n", row.Label,
			row.Raw["nginx"], row.Overheads["nginx"],
			row.Raw["sqlite"], row.Overheads["sqlite"],
			row.Raw["vsftpd"], row.Overheads["vsftpd"])
	}

	b.WriteString("\n## §9.2 / §11.2 extras\n\n")
	for _, st := range r.Init {
		fmt.Fprintf(&b, "- %s: monitor init %.2f ms; syscall depth avg %.1f (min %d, max %d)\n",
			st.App, st.InitMillis, st.AvgDepth, st.MinDepth, st.MaxDepth)
	}
	fmt.Fprintf(&b, "- accept4 fast path (nginx): %.2f%% vs %.2f%% with full-walk verification\n",
		r.Accept.FastPathOverhead, r.Accept.FullWalkOverhead)
	for _, ik := range r.InK {
		fmt.Fprintf(&b, "- in-kernel monitor (%s, fs extension): %.2f%% vs %.2f%% under ptrace\n",
			ik.App, ik.InKernelOverhead, ik.PtraceOverhead)
	}
	if cmp, err := DefenseComparisonMarkdown(); err == nil {
		b.WriteString("\n")
		b.WriteString(cmp)
	}
	return b.String()
}

// DefenseComparisonMarkdown renders representative attacks across every
// defense configuration (one per Table 6 category plus the CVE family).
func DefenseComparisonMarkdown() (string, error) {
	ids := []string{"rop-exec-01", "direct-cscfi", "cve-2013-2028", "ind-newton-cpi", "ind-jujutsu"}
	rows, err := attacks.CompareDefenses(ids)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("## Defense comparison (representative attacks)\n\n")
	b.WriteString("| attack | unprotected | CT | CF | AI | BASTION | CET | LLVM-CFI |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|\n")
	cell := func(r attacks.ComparisonRow, def string) string {
		if !r.Blocked[def] {
			return "×"
		}
		if by := r.KilledBy[def]; by != "" {
			return "✓ (" + by + ")"
		}
		return "✓"
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %s | %s | %s |\n", r.Scenario.ID,
			cell(r, "unprotected"), cell(r, "CT"), cell(r, "CF"), cell(r, "AI"),
			cell(r, "BASTION"), cell(r, "CET"), cell(r, "LLVM-CFI"))
	}
	return b.String(), nil
}
