package bench

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"bastion/internal/attacks"
)

// Report bundles every experiment into one artifact-evaluation document.
type Report struct {
	Units   int
	Figure3 []Figure3Row
	Table3  []Table3Row
	Table4  *Table4Result
	Table5  []Table5Row
	Table6  []Table6Row
	Table7  []Table7Row
	Init    []*InitDepthStats
	Accept  *AblationResult
	InK     []*InKernelResult
	Filter  []*FilterAblationResult
	Cache   []*CacheAblationResult
	SF      []*SFAblationResult
	Offload []*OffloadAblationResult
	Refine  []*RefineAblationResult
	Obs     []*ObsAblationResult
	Fleet   *FleetScalingResult
	// Timings records each experiment's wall-clock duration, in the fixed
	// experiment order. It is rendered by TimingSummary, never by Markdown,
	// so report documents stay byte-identical across runs and worker
	// counts.
	Timings []ExperimentTiming
}

// ExperimentTiming is one experiment's wall-clock measurement.
type ExperimentTiming struct {
	Name    string
	Elapsed time.Duration
}

// CollectReport runs every experiment sequentially at the given unit
// count. Equivalent to CollectReportParallel(units, 1).
func CollectReport(units int) (*Report, error) {
	return CollectReportParallel(units, 1)
}

// CollectReportParallel runs every experiment across a worker pool of the
// given size (≤ 0 selects runtime.NumCPU()). Each experiment builds its
// own kernel, clock, and machine, so experiments share no simulator state;
// results land in fixed slots, making the report deterministic and
// byte-identical to a sequential run. The first error (by experiment
// order) cancels the remaining unstarted experiments.
func CollectReportParallel(units, workers int) (*Report, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	r := &Report{
		Units:   units,
		Init:    make([]*InitDepthStats, len(Apps)),
		InK:     make([]*InKernelResult, len(Apps)),
		Filter:  make([]*FilterAblationResult, len(Apps)),
		Cache:   make([]*CacheAblationResult, len(Apps)),
		SF:      make([]*SFAblationResult, len(Apps)),
		Offload: make([]*OffloadAblationResult, len(Apps)),
		Refine:  make([]*RefineAblationResult, len(Apps)),
		Obs:     make([]*ObsAblationResult, len(Apps)),
	}
	type task struct {
		name string
		run  func() error
	}
	tasks := []task{
		{"figure 3", func() (err error) { r.Figure3, err = Figure3(units); return }},
		{"table 3", func() (err error) { r.Table3, err = Table3(units); return }},
		{"table 4", func() (err error) { r.Table4, err = Table4(units); return }},
		{"table 5", func() (err error) { r.Table5, err = Table5(); return }},
		{"table 6", func() (err error) { r.Table6, err = Table6(); return }},
		{"table 7", func() (err error) { r.Table7, err = Table7(units); return }},
		{"accept ablation", func() (err error) { r.Accept, err = AblationAcceptFastPath("nginx", units); return }},
		{"fleet scaling", func() (err error) { r.Fleet, err = FleetScaling(units); return }},
	}
	for i, app := range Apps {
		i, app := i, app
		tasks = append(tasks,
			task{"init/depth " + app, func() (err error) { r.Init[i], err = InitAndDepth(app, units); return }},
			task{"in-kernel " + app, func() (err error) { r.InK[i], err = InKernelAblation(app, units); return }},
			task{"filter ablation " + app, func() (err error) { r.Filter[i], err = FilterAblation(app, units); return }},
			task{"cache ablation " + app, func() (err error) { r.Cache[i], err = CacheAblation(app, units); return }},
			task{"sf ablation " + app, func() (err error) { r.SF[i], err = SFAblation(app, units); return }},
			task{"offload ablation " + app, func() (err error) { r.Offload[i], err = OffloadAblation(app, units); return }},
			task{"refine ablation " + app, func() (err error) { r.Refine[i], err = RefineAblation(app, units); return }},
			task{"obs ablation " + app, func() (err error) { r.Obs[i], err = ObsAblation(app, units); return }},
		)
	}
	r.Timings = make([]ExperimentTiming, len(tasks))
	for i, t := range tasks {
		r.Timings[i].Name = t.name
	}

	var (
		mu       sync.Mutex
		firstIdx = len(tasks)
		firstErr error
		aborted  = make(chan struct{})
		abort    sync.Once
		wg       sync.WaitGroup
	)
	taskCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range taskCh {
				start := time.Now()
				err := tasks[i].run()
				r.Timings[i].Elapsed = time.Since(start)
				if err != nil {
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, fmt.Errorf("%s: %w", tasks[i].name, err)
					}
					mu.Unlock()
					abort.Do(func() { close(aborted) })
				}
			}
		}()
	}
feed:
	for i := range tasks {
		select {
		case taskCh <- i:
		case <-aborted:
			break feed
		}
	}
	close(taskCh)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return r, nil
}

// TimingSummary renders per-experiment wall-clock timings (separate from
// Markdown so report documents stay deterministic).
func (r *Report) TimingSummary() string {
	var b strings.Builder
	b.WriteString("experiment wall-clock timings:\n")
	var total time.Duration
	for _, t := range r.Timings {
		fmt.Fprintf(&b, "  %-24s %8.1f ms\n", t.Name, float64(t.Elapsed.Microseconds())/1000)
		total += t.Elapsed
	}
	fmt.Fprintf(&b, "  %-24s %8.1f ms (sum of experiment times)\n", "total", float64(total.Microseconds())/1000)
	return b.String()
}

// Markdown renders the whole report as a standalone document.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# BASTION evaluation report (%d units per measurement)\n\n", r.Units)
	b.WriteString("All numbers are deterministic simulator measurements; see EXPERIMENTS.md for paper comparison.\n\n")

	b.WriteString("## Figure 3 — overhead per mitigation stack (%)\n\n")
	b.WriteString("| app | LLVM CFI | CET | CET+CT | CET+CT+CF | CET+CT+CF+AI+SF |\n|---|---|---|---|---|---|\n")
	for _, row := range r.Figure3 {
		fmt.Fprintf(&b, "| %s | %.2f | %.2f | %.2f | %.2f | %.2f |\n", row.App,
			row.Overheads[MitCFI], row.Overheads[MitCET], row.Overheads[MitCETCT],
			row.Overheads[MitCETCTCF], row.Overheads[MitFull])
	}

	b.WriteString("\n## Table 3 — raw numbers\n\n| app | unit |")
	for _, m := range Mitigations {
		fmt.Fprintf(&b, " %s |", m)
	}
	b.WriteString("\n|---|---|---|---|---|---|---|---|\n")
	for _, row := range r.Table3 {
		fmt.Fprintf(&b, "| %s | %s |", row.App, row.Unit)
		for _, c := range row.Cells {
			fmt.Fprintf(&b, " %.2f |", c.Value)
		}
		b.WriteString("\n")
	}

	b.WriteString("\n## Table 4 — sensitive syscall usage\n\n| syscall | nginx | sqlite | vsftpd |\n|---|---|---|---|\n")
	for _, row := range r.Table4.Rows {
		fmt.Fprintf(&b, "| %s | %d | %d | %d |\n", row.Syscall,
			row.Counts["nginx"], row.Counts["sqlite"], row.Counts["vsftpd"])
	}
	fmt.Fprintf(&b, "| **total monitor hook** | %d | %d | %d |\n",
		r.Table4.Hooks["nginx"], r.Table4.Hooks["sqlite"], r.Table4.Hooks["vsftpd"])

	b.WriteString("\n## Table 5 — instrumentation statistics\n\n| statistic | nginx | sqlite | vsftpd |\n|---|---|---|---|\n")
	stat := func(label string, f func(Table5Row) int) {
		fmt.Fprintf(&b, "| %s |", label)
		for _, row := range r.Table5 {
			fmt.Fprintf(&b, " %d |", f(row))
		}
		b.WriteString("\n")
	}
	stat("application callsites", func(x Table5Row) int { return x.TotalCallsites })
	stat("direct callsites", func(x Table5Row) int { return x.DirectCallsites })
	stat("indirect callsites", func(x Table5Row) int { return x.IndirectCallsites })
	stat("sensitive callsites", func(x Table5Row) int { return x.SensitiveCallsites })
	stat("sensitive called indirectly", func(x Table5Row) int { return x.SensitiveIndirect })
	stat("ctx_write_mem", func(x Table5Row) int { return x.CtxWriteMem })
	stat("ctx_bind_mem", func(x Table5Row) int { return x.CtxBindMem })
	stat("ctx_bind_const", func(x Table5Row) int { return x.CtxBindConst })
	stat("total instrumentation", func(x Table5Row) int { return x.Total })

	b.WriteString("\n## Table 6 — security case studies\n\n| attack | category | CT | CF | AI | SF | full |\n|---|---|---|---|---|---|---|\n")
	mark := func(v bool) string {
		if v {
			return "✓"
		}
		return "×"
	}
	for _, row := range r.Table6 {
		s := row.Verdict.Scenario
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %s | %s |\n", s.ID, s.Category,
			mark(row.Verdict.CT), mark(row.Verdict.CF), mark(row.Verdict.AI),
			mark(row.Verdict.SF), mark(row.Verdict.FullBlocked))
	}

	b.WriteString("\n## Table 7 — file-system syscall extension\n\n| configuration | nginx | sqlite | vsftpd |\n|---|---|---|---|\n")
	for _, row := range r.Table7 {
		fmt.Fprintf(&b, "| %s | %.2f (%.2f%%) | %.2f (%.2f%%) | %.2f (%.2f%%) |\n", row.Label,
			row.Raw["nginx"], row.Overheads["nginx"],
			row.Raw["sqlite"], row.Overheads["sqlite"],
			row.Raw["vsftpd"], row.Overheads["vsftpd"])
	}

	b.WriteString("\n## Seccomp filter ablation — linear chain vs binary search (hook-only, fs extension)\n\n")
	b.WriteString("insns/eval averages one filter evaluation over the whole kernel syscall table; insns/call is workload-weighted (Linux numbers hot syscalls lowest, favoring the sorted chain).\n\n")
	b.WriteString("| app | linear insns/eval | tree insns/eval | linear insns/call | tree insns/call | linear overhead | tree overhead |\n|---|---|---|---|---|---|---|\n")
	for _, fr := range r.Filter {
		fmt.Fprintf(&b, "| %s | %.2f | %.2f | %.2f | %.2f | %.2f%% | %.2f%% |\n", fr.App,
			fr.LinearInsns, fr.TreeInsns, fr.LinearPerCall, fr.TreePerCall,
			fr.LinearOverhead, fr.TreeOverhead)
	}

	b.WriteString("\n## Verdict cache ablation — full protection, fs extension\n\n")
	b.WriteString("Monitor cycles per work unit with the verdict cache off vs on; hits skip the CT/CF checks and constant-argument verification, while memory-backed and pointee arguments are always re-verified against shadow memory.\n\n")
	b.WriteString("| app | off mon cyc/unit | on mon cyc/unit | hit rate | off overhead | on overhead |\n|---|---|---|---|---|---|\n")
	for _, cr := range r.Cache {
		fmt.Fprintf(&b, "| %s | %.0f | %.0f | %.1f%% | %.2f%% | %.2f%% |\n", cr.App,
			cr.OffMonPerUnit, cr.OnMonPerUnit, cr.HitRate()*100,
			cr.OffOverhead, cr.OnOverhead)
	}

	b.WriteString("\n## Syscall-flow ablation — SF context off vs on\n\n")
	b.WriteString("Full protection with the syscall-flow context disabled (ct,cf,ai — the pre-SF configuration) and enabled. SF charges one transition-table lookup per full-mode trap; both runs must stay violation-free, since the flow graph is derived from the program's own CFG.\n\n")
	b.WriteString("| app | off mon cyc/unit | on mon cyc/unit | flow checks | traps | off overhead | on overhead |\n|---|---|---|---|---|---|---|\n")
	for _, sr := range r.SF {
		fmt.Fprintf(&b, "| %s | %.0f | %.0f | %d | %d | %.2f%% | %.2f%% |\n", sr.App,
			sr.OffMonPerUnit, sr.OnMonPerUnit, sr.FlowChecks, sr.Traps,
			sr.OffOverhead, sr.OnOverhead)
	}

	b.WriteString("\n## Verdict offload ablation — CT + const-arg checks answered in-filter\n\n")
	b.WriteString("Full mode with call-type and argument-integrity contexts (no control-flow) and the fs extension, with the verdict offload off vs on. Offloaded syscalls are decided inside the seccomp program from the syscall number and literal argument registers and never trap to the monitor; everything else falls through to RET_TRACE and the residual monitor unchanged.\n\n")
	b.WriteString("| app | off traps | on traps | avoided | offloaded nrs | off mon cyc/unit | on mon cyc/unit | off overhead | on overhead |\n|---|---|---|---|---|---|---|---|---|\n")
	for _, or := range r.Offload {
		fmt.Fprintf(&b, "| %s | %d | %d | %d | %d | %.0f | %.0f | %.2f%% | %.2f%% |\n", or.App,
			or.OffTraps, or.OnTraps, or.Avoided, or.OffloadedNrs,
			or.OffMonPerUnit, or.OnMonPerUnit,
			or.OffOverhead, or.OnOverhead)
	}

	b.WriteString("\n## Points-to refinement ablation — coarse vs refined indirect-call policies\n\n")
	b.WriteString("Static policy sizes (indirect-call edges and per-syscall allowed callsite pairs) before and after the points-to refinement, and the runtime cost of enforcing each under full protection with the fs extension and verdict cache. Verdicts are asserted identical by the attack replay suite; only policy size and lookup cost may differ.\n\n")
	b.WriteString("| app | edges coarse→refined | pairs coarse→refined | exact sites | escaped sites | coarse mon cyc/unit | refined mon cyc/unit | coarse overhead | refined overhead |\n|---|---|---|---|---|---|---|---|---|\n")
	for _, rr := range r.Refine {
		fmt.Fprintf(&b, "| %s | %d→%d | %d→%d | %d | %d | %.0f | %.0f | %.2f%% | %.2f%% |\n", rr.App,
			rr.EdgesCoarse, rr.EdgesRefined, rr.PairsCoarse, rr.PairsRefined,
			rr.ExactSites, rr.EscapedSites,
			rr.CoarseMonPerUnit, rr.RefinedMonPerUnit,
			rr.CoarseOverhead, rr.RefinedOverhead)
	}

	b.WriteString("\n## Observability ablation — trace sink and flight recorder on vs off\n\n")
	b.WriteString("Full protection with the fs extension and verdict cache, rerun with a buffered decision-trace sink and a 32-deep flight recorder attached. Telemetry reads the simulated clock but never advances it, so the cycle accounts must be bit-identical — the trace's cost is its bytes, off the simulated timeline.\n\n")
	b.WriteString("| app | off mon cyc/unit | on mon cyc/unit | traps | events | trace bytes | identical |\n|---|---|---|---|---|---|---|\n")
	for _, or := range r.Obs {
		fmt.Fprintf(&b, "| %s | %.0f | %.0f | %d | %d | %d | %s |\n", or.App,
			or.OffMonPerUnit, or.OnMonPerUnit, or.Traps, or.Events, or.TraceBytes,
			yesno(or.Identical))
	}

	b.WriteString("\n## Fleet scaling — shared vs per-tenant compilation\n\n")
	b.WriteString("Multi-tenant supervisor (internal/fleet) running the three apps round-robin under full protection with the verdict cache on. Tenant-visible results are asserted identical across the two compilation regimes; only setup cost differs.\n\n")
	b.WriteString("| tenants | shared compiles (/tenant) | per-tenant compiles (/tenant) | units/s | mon cyc/unit | cache hit |\n|---|---|---|---|---|---|\n")
	for _, row := range r.Fleet.Rows {
		fmt.Fprintf(&b, "| %d | %d (%.3f) | %d (%.3f) | %.0f | %.0f | %.2f |\n",
			row.Tenants, row.SharedCompiles, row.SharedCompilesPerTenant(),
			row.PerTenantCompiles, row.PerTenantCompilesPerTenant(),
			row.Throughput, row.MonPerUnit, row.CacheHit)
	}

	b.WriteString("\n## §9.2 / §11.2 extras\n\n")
	for _, st := range r.Init {
		fmt.Fprintf(&b, "- %s: monitor init %.2f ms; syscall depth avg %.1f (min %d, max %d)\n",
			st.App, st.InitMillis, st.AvgDepth, st.MinDepth, st.MaxDepth)
	}
	fmt.Fprintf(&b, "- accept4 fast path (nginx): %.2f%% vs %.2f%% with full-walk verification\n",
		r.Accept.FastPathOverhead, r.Accept.FullWalkOverhead)
	for _, ik := range r.InK {
		fmt.Fprintf(&b, "- in-kernel monitor (%s, fs extension): %.2f%% vs %.2f%% under ptrace\n",
			ik.App, ik.InKernelOverhead, ik.PtraceOverhead)
	}
	if cmp, err := DefenseComparisonMarkdown(); err == nil {
		b.WriteString("\n")
		b.WriteString(cmp)
	}
	return b.String()
}

// DefenseComparisonMarkdown renders representative attacks across every
// defense configuration (one per Table 6 category plus the CVE family).
func DefenseComparisonMarkdown() (string, error) {
	ids := []string{"rop-exec-01", "direct-cscfi", "cve-2013-2028", "ind-newton-cpi", "ind-jujutsu", "ord-setuid-replay"}
	rows, err := attacks.CompareDefenses(ids)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("## Defense comparison (representative attacks)\n\n")
	b.WriteString("| attack | unprotected | CT | CF | AI | SF | BASTION | CET | LLVM-CFI |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|\n")
	cell := func(r attacks.ComparisonRow, def string) string {
		if !r.Blocked[def] {
			return "×"
		}
		if by := r.KilledBy[def]; by != "" {
			return "✓ (" + by + ")"
		}
		return "✓"
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %s | %s | %s | %s |\n", r.Scenario.ID,
			cell(r, "unprotected"), cell(r, "CT"), cell(r, "CF"), cell(r, "AI"),
			cell(r, "SF"), cell(r, "BASTION"), cell(r, "CET"), cell(r, "LLVM-CFI"))
	}
	return b.String(), nil
}
