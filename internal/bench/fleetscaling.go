package bench

import (
	"fmt"
	"reflect"
	"strings"

	"bastion/internal/fleet"
)

// FleetTenantCounts is the fleet scaling ablation's tenant axis.
var FleetTenantCounts = []int{1, 4, 16, 64}

// FleetScalingRow is one tenant-count point of the scaling ablation, run
// twice — once compiling artifacts per tenant, once sharing one
// compilation per app — with everything but setup cost asserted identical.
type FleetScalingRow struct {
	Tenants int

	// Setup cost, the sharing axis: program + seccomp-filter compilations
	// performed under each regime.
	SharedCompiles    int
	SharedFilters     int
	PerTenantCompiles int
	PerTenantFilters  int

	// Fleet-wide measurements (identical across both regimes; enforced).
	Throughput float64 // units per simulated second
	MonPerUnit float64 // monitor cycles per unit
	CacheHit   float64 // fleet verdict-cache hit rate
}

// SharedCompilesPerTenant is the amortized setup-cost measure: with
// sharing it falls toward apps/tenants as the fleet grows; without it
// stays pinned at one compilation per tenant.
func (r FleetScalingRow) SharedCompilesPerTenant() float64 {
	return float64(r.SharedCompiles) / float64(r.Tenants)
}

// PerTenantCompilesPerTenant is the non-shared baseline's per-tenant cost.
func (r FleetScalingRow) PerTenantCompilesPerTenant() float64 {
	return float64(r.PerTenantCompiles) / float64(r.Tenants)
}

// FleetScalingResult is the full scaling ablation.
type FleetScalingResult struct {
	Apps  []string
	Units int // per tenant
	Rows  []FleetScalingRow
}

// FleetScaling measures fleet throughput and setup cost across
// FleetTenantCounts, with the workload mix assigned round-robin from Apps.
// Each point runs under both compilation regimes; any divergence in
// tenant-visible results between them is an error, so the rendered table
// is also a continuous equivalence check.
func FleetScaling(units int) (*FleetScalingResult, error) {
	res := &FleetScalingResult{Apps: Apps, Units: units}
	for _, tenants := range FleetTenantCounts {
		cfg := fleet.DefaultConfig(tenants, units, Apps...)
		cfg.VerdictCache = true
		cfg.Seed = 42

		shared, err := fleet.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("fleet scaling %d tenants (shared): %w", tenants, err)
		}
		cfg.ShareArtifacts = false
		private, err := fleet.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("fleet scaling %d tenants (per-tenant): %w", tenants, err)
		}
		if !reflect.DeepEqual(shared.Results, private.Results) {
			return nil, fmt.Errorf("fleet scaling %d tenants: shared and per-tenant compilation diverged", tenants)
		}

		res.Rows = append(res.Rows, FleetScalingRow{
			Tenants:           tenants,
			SharedCompiles:    shared.Compiles,
			SharedFilters:     shared.FilterCompiles,
			PerTenantCompiles: private.Compiles,
			PerTenantFilters:  private.FilterCompiles,
			Throughput:        shared.Throughput(),
			MonPerUnit:        shared.MonitorCyclesPerUnit(),
			CacheHit:          shared.CacheHitRate(),
		})
	}
	return res, nil
}

// RenderFleetScaling formats the scaling ablation.
func RenderFleetScaling(r *FleetScalingResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet scaling (%s round-robin, %d units/tenant, full protection + cache):\n",
		strings.Join(r.Apps, ","), r.Units)
	b.WriteString("tenants | shared compiles (/tenant) | per-tenant compiles (/tenant) | units/s | mon cyc/unit | cache hit\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%7d | %7d (%.3f) | %7d (%.3f) | %10.0f | %7.0f | %.2f\n",
			row.Tenants, row.SharedCompiles, row.SharedCompilesPerTenant(),
			row.PerTenantCompiles, row.PerTenantCompilesPerTenant(),
			row.Throughput, row.MonPerUnit, row.CacheHit)
	}
	return b.String()
}
