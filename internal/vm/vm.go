// Package vm executes IR guest programs on a simulated machine whose call
// stack is realized in guest memory. Return addresses, saved frame pointers,
// parameters, and locals live in the corruptible address space, so the
// attack classes BASTION defends against — ROP via return-address
// overwrites, function-pointer hijacks, and non-pointer data corruption —
// behave as they do on real hardware, and the BASTION monitor can unwind
// real frames.
//
// Machine model (x86-64-flavoured, frame-pointer based):
//
//	high addresses
//	  ... caller frame ...
//	  [rbp+8]  return address      <- pushed by Call
//	  [rbp+0]  saved caller rbp
//	  [rbp-localSize .. rbp-1] parameter spill slots, then locals
//	  [rsp] == rbp - localSize
//	low addresses
//
// Virtual registers are per-frame and not addressable, matching the paper's
// assumption that register state is out of the attacker's direct reach;
// everything that crosses frames does so through memory.
package vm

import (
	"errors"
	"fmt"
	"io"

	"bastion/internal/ir"
	"bastion/internal/mem"
)

// MaxRegsPerFrame bounds a function's virtual register file.
const MaxRegsPerFrame = 256

// Regs is the register file exposed to the kernel and, through the ptrace
// facility, to the BASTION monitor when a system call traps. Field names
// mirror the x86-64 syscall ABI.
type Regs struct {
	RAX uint64 // syscall number
	RDI uint64
	RSI uint64
	RDX uint64
	R10 uint64
	R8  uint64
	R9  uint64
	RIP uint64 // address of the trapping syscall instruction
	RSP uint64
	RBP uint64
}

// Arg returns the pos-th (1-based) syscall argument register. Positions
// outside 1..6 have no register and return 0; metadata.Validate rejects
// such positions before they reach enforcement, so a zero here is never
// silently compared against a traced argument.
func (r *Regs) Arg(pos int) uint64 {
	switch pos {
	case 1:
		return r.RDI
	case 2:
		return r.RSI
	case 3:
		return r.RDX
	case 4:
		return r.R10
	case 5:
		return r.R8
	case 6:
		return r.R9
	}
	return 0
}

// Clock accumulates simulated cycles. It is shared (by pointer) between the
// VM, the kernel, and the monitor so that trap handling time is charged to
// the same timeline as guest execution, as a ptrace stop serializes the
// traced thread with its tracer.
type Clock struct {
	Cycles uint64
}

// Add charges n cycles.
func (c *Clock) Add(n uint64) { c.Cycles += n }

// CostModel holds the per-operation cycle charges for guest execution.
// Values are relative; internal/bench documents the calibration.
type CostModel struct {
	Instr     uint64 // default instruction
	MemAccess uint64 // load/store
	Call      uint64 // direct call (frame setup)
	CallInd   uint64 // indirect call
	Ret       uint64
	WriteMem  uint64 // ctx_write_mem intrinsic (inlined library)
	Bind      uint64 // ctx_bind_* intrinsics
}

// DefaultCosts is the calibrated default cost model.
func DefaultCosts() CostModel {
	return CostModel{Instr: 1, MemAccess: 2, Call: 6, CallInd: 7, Ret: 4, WriteMem: 6, Bind: 4}
}

// SyscallHandler is the kernel-side entry point. It receives the machine
// with syscall registers latched (Machine.SysRegs) and returns the
// syscall's return value. Returning an error that unwraps to *ExitError or
// *KillError terminates the guest.
type SyscallHandler interface {
	Syscall(m *Machine) (int64, error)
}

// RuntimeHooks receives the BASTION runtime-library intrinsics. A nil hooks
// installation makes intrinsics cost-only no-ops (the instrumented binary
// running without a monitor).
type RuntimeHooks interface {
	// CtxWriteMem updates the shadow copy of [addr, addr+size).
	CtxWriteMem(m *Machine, addr uint64, size int64) error
	// CtxBindMem binds memory addr to argument pos of the callsite at site.
	CtxBindMem(m *Machine, site uint64, pos int, addr uint64) error
	// CtxBindConst binds constant val to argument pos of the callsite at site.
	CtxBindConst(m *Machine, site uint64, pos int, val int64) error
}

// Mitigation is a VM-enforced hardware/software defense (CET shadow stack,
// LLVM-CFI indirect-call checks). Returning a non-nil error from a check
// kills the guest with a *KillError.
type Mitigation interface {
	// OnCall observes a call pushing retaddr.
	OnCall(m *Machine, retaddr uint64)
	// OnRet checks a return to retaddr.
	OnRet(m *Machine, retaddr uint64) error
	// OnIndirectCall checks an indirect call to target from callsite in.
	OnIndirectCall(m *Machine, in *ir.Instr, target uint64) error
}

// ExitError reports voluntary guest termination (exit/exit_group).
type ExitError struct{ Code int64 }

func (e *ExitError) Error() string { return fmt.Sprintf("vm: guest exited with status %d", e.Code) }

// KillError reports forcible termination (seccomp SECCOMP_RET_KILL, monitor
// verdict, or mitigation violation).
type KillError struct {
	By     string // "seccomp", "monitor", "cet", "cfi", ...
	Reason string
}

func (e *KillError) Error() string { return fmt.Sprintf("vm: guest killed by %s: %s", e.By, e.Reason) }

// ControlFault reports a control-flow integrity break at the machine level:
// transferring to a non-code address or running off the end of a function.
type ControlFault struct {
	Addr uint64
	Why  string
}

func (e *ControlFault) Error() string {
	return fmt.Sprintf("vm: control fault at %#x: %s", e.Addr, e.Why)
}

// Hook is an attacker/debugger breakpoint invoked before the instruction at
// its address executes. Returning an error stops the machine with it.
type Hook func(m *Machine) error

type frame struct {
	fn   *ir.Function
	idx  int // next instruction index
	regs [MaxRegsPerFrame]uint64
}

// Machine executes one guest program. It is not safe for concurrent use.
type Machine struct {
	Prog  *ir.Program
	Mem   *mem.Space
	Clock *Clock
	Costs CostModel

	OS          SyscallHandler
	Runtime     RuntimeHooks
	Mitigations []Mitigation

	// SysRegs holds the registers latched at the most recent syscall
	// instruction; the kernel and monitor read guest state from here.
	SysRegs Regs

	rax uint64 // return-value register
	rsp uint64
	rbp uint64

	frames []*frame

	// Steps counts executed instructions; MaxSteps bounds runaway guests
	// (0 means no limit).
	Steps    uint64
	MaxSteps uint64

	// CallDepth tracks current user-frame depth; DepthSum/DepthN/MinDepth/
	// MaxDepth aggregate depth at syscall instructions for §9.2 statistics.
	CallDepth int
	DepthSum  uint64
	DepthN    uint64
	MinDepth  int
	MaxDepth  int

	hooks map[uint64]Hook

	// trace, when non-nil, receives one disassembled line per executed
	// instruction (a debugging aid; costs nothing when disabled).
	trace      io.Writer
	traceLimit uint64

	halted bool
	exit   int64
}

// Option configures a Machine.
type Option func(*Machine)

// WithOS installs the kernel syscall handler.
func WithOS(os SyscallHandler) Option { return func(m *Machine) { m.OS = os } }

// WithRuntime installs the BASTION runtime-library hooks.
func WithRuntime(rt RuntimeHooks) Option { return func(m *Machine) { m.Runtime = rt } }

// WithMitigations appends VM-enforced mitigations.
func WithMitigations(ms ...Mitigation) Option {
	return func(m *Machine) { m.Mitigations = append(m.Mitigations, ms...) }
}

// WithClock shares an external clock.
func WithClock(c *Clock) Option { return func(m *Machine) { m.Clock = c } }

// WithMaxSteps bounds the number of executed instructions.
func WithMaxSteps(n uint64) Option { return func(m *Machine) { m.MaxSteps = n } }

// WithTrace streams a disassembly line per executed instruction to w, up
// to max lines (0 = unlimited). For debugging guest programs.
func WithTrace(w io.Writer, max uint64) Option {
	return func(m *Machine) { m.trace = w; m.traceLimit = max }
}

// New creates a machine for a linked program and maps its image (globals
// and stack). The program must already be linked and validated.
func New(prog *ir.Program, opts ...Option) (*Machine, error) {
	if !prog.Linked() {
		if err := prog.Link(); err != nil {
			return nil, err
		}
	}
	m := &Machine{
		Prog:     prog,
		Mem:      mem.NewSpace(),
		Clock:    &Clock{},
		Costs:    DefaultCosts(),
		hooks:    map[uint64]Hook{},
		MinDepth: 1 << 30,
	}
	for _, o := range opts {
		o(m)
	}
	if err := m.loadImage(); err != nil {
		return nil, err
	}
	return m, nil
}

func (m *Machine) loadImage() error {
	// Globals: one RW span covering all of them.
	var hi uint64 = ir.DataBase
	for _, g := range m.Prog.Globals {
		if end := g.Addr + uint64(g.Size); end > hi {
			hi = end
		}
	}
	if hi > ir.DataBase {
		if err := m.Mem.Map(ir.DataBase, mem.RoundUp(hi-ir.DataBase), mem.PermRW); err != nil {
			return err
		}
		for _, g := range m.Prog.Globals {
			if len(g.Init) > 0 {
				if err := m.Mem.Poke(g.Addr, g.Init); err != nil {
					return err
				}
			}
		}
	}
	// Stack.
	if err := m.Mem.Map(ir.StackTop-ir.StackSize, ir.StackSize, mem.PermRW); err != nil {
		return err
	}
	m.rsp = ir.StackTop - 64
	m.rbp = m.rsp
	// Sentinel frame: return address 0 marks the bottom of the stack for
	// both the VM and the monitor's unwinder.
	if err := m.Mem.WriteUint(m.rbp, 0, 8); err != nil {
		return err
	}
	if err := m.Mem.WriteUint(m.rbp+8, 0, 8); err != nil {
		return err
	}
	return nil
}

// AddHook installs a breakpoint at a code address. Installing at an address
// that already has a hook replaces it.
func (m *Machine) AddHook(addr uint64, h Hook) { m.hooks[addr] = h }

// HookFunc installs a breakpoint at instruction idx of the named function.
func (m *Machine) HookFunc(name string, idx int, h Hook) error {
	f := m.Prog.Func(name)
	if f == nil {
		return fmt.Errorf("vm: no function %q", name)
	}
	if idx < 0 || idx >= len(f.Code) {
		return fmt.Errorf("vm: %s has no instruction %d", name, idx)
	}
	m.AddHook(f.InstrAddr(idx), h)
	return nil
}

// ClearHooks removes all breakpoints.
func (m *Machine) ClearHooks() { m.hooks = map[uint64]Hook{} }

// Halted reports whether the guest has stopped (exit, kill, or fault).
func (m *Machine) Halted() bool { return m.halted }

// ExitCode returns the guest's exit status (valid once halted by exit).
func (m *Machine) ExitCode() int64 { return m.exit }

// RBP returns the current frame pointer (attack scenarios use it to locate
// stack data).
func (m *Machine) RBP() uint64 { return m.rbp }

// RSP returns the current stack pointer.
func (m *Machine) RSP() uint64 { return m.rsp }

// CurrentFunc returns the executing function and next-instruction index.
func (m *Machine) CurrentFunc() (*ir.Function, int) {
	if len(m.frames) == 0 {
		return nil, 0
	}
	top := m.frames[len(m.frames)-1]
	return top.fn, top.idx
}

// Run calls the program's entry function with no arguments and executes to
// termination. It returns nil for a clean exit(0); an *ExitError for a
// nonzero exit; a *KillError if a defense killed the guest; or a fault.
func (m *Machine) Run() error {
	entry := m.Prog.Func(m.Prog.Entry)
	if entry == nil {
		return fmt.Errorf("vm: no entry function %q", m.Prog.Entry)
	}
	if err := m.pushCall(entry, nil, 0); err != nil {
		return err
	}
	return m.resume()
}

// CallFunction invokes an arbitrary guest function with the given word
// arguments and runs it to completion (used by workload drivers to push
// individual requests through an application). The machine must not be
// halted.
func (m *Machine) CallFunction(name string, args ...uint64) (uint64, error) {
	if m.halted {
		return 0, errors.New("vm: machine is halted")
	}
	f := m.Prog.Func(name)
	if f == nil {
		return 0, fmt.Errorf("vm: no function %q", name)
	}
	if f.NumParams != len(args) {
		return 0, fmt.Errorf("vm: %s takes %d args, got %d", name, f.NumParams, len(args))
	}
	base := len(m.frames)
	if err := m.pushCall(f, args, 0); err != nil {
		return 0, err
	}
	if err := m.runUntilDepth(base); err != nil {
		return 0, err
	}
	return m.rax, nil
}

func (m *Machine) resume() error { return m.runUntilDepth(0) }

// runUntilDepth steps until the frame stack shrinks to the given depth or
// the guest halts.
func (m *Machine) runUntilDepth(depth int) error {
	for len(m.frames) > depth {
		if m.halted {
			return nil
		}
		if err := m.step(); err != nil {
			var xe *ExitError
			if errors.As(err, &xe) {
				m.halted = true
				m.exit = xe.Code
				if xe.Code == 0 {
					return nil
				}
				return err
			}
			m.halted = true
			return err
		}
	}
	return nil
}

// pushCall sets up a memory frame and register frame for fn. retaddr 0
// marks a VM-initiated call (CallFunction / entry): returning to it pops the
// frame and stops unwinding.
func (m *Machine) pushCall(fn *ir.Function, args []uint64, retaddr uint64) error {
	for _, mit := range m.Mitigations {
		mit.OnCall(m, retaddr)
	}
	localSize := uint64(fn.FrameLocalSize())
	need := localSize + 16
	if m.rsp < ir.StackTop-ir.StackSize+need+mem.PageSize {
		return &ControlFault{Addr: m.rsp, Why: "stack overflow"}
	}
	newRbp := m.rsp - 16
	if err := m.Mem.WriteUint(newRbp, m.rbp, 8); err != nil {
		return err
	}
	if err := m.Mem.WriteUint(newRbp+8, retaddr, 8); err != nil {
		return err
	}
	m.rbp = newRbp
	m.rsp = newRbp - localSize
	for i, a := range args {
		if err := m.Mem.WriteUint(m.slotAddr(fn, i), a, 8); err != nil {
			return err
		}
	}
	m.frames = append(m.frames, &frame{fn: fn})
	m.CallDepth = len(m.frames)
	return nil
}

func (m *Machine) slotAddr(fn *ir.Function, slot int) uint64 {
	return m.rbp - uint64(fn.FrameLocalSize()) + uint64(fn.SlotOffset(slot))
}

// SlotAddr resolves the address of the named slot in the *current* frame.
// Attack drivers and tests use it to aim corruptions.
func (m *Machine) SlotAddr(name string) (uint64, error) {
	fn, _ := m.CurrentFunc()
	if fn == nil {
		return 0, errors.New("vm: no active frame")
	}
	idx := fn.SlotIndex(name)
	if idx < 0 {
		return 0, fmt.Errorf("vm: %s has no slot %q", fn.Name, name)
	}
	return m.slotAddr(fn, idx), nil
}

func (m *Machine) val(fr *frame, o ir.Operand) uint64 {
	if o.Kind == ir.OperandImm {
		return uint64(o.Imm)
	}
	return fr.regs[o.Reg]
}

// step executes one instruction.
func (m *Machine) step() error {
	if m.MaxSteps > 0 && m.Steps >= m.MaxSteps {
		return &ControlFault{Why: "step budget exhausted (runaway guest?)"}
	}
	m.Steps++
	fr := m.frames[len(m.frames)-1]
	fn := fr.fn
	if fr.idx >= len(fn.Code) {
		return &ControlFault{Addr: fn.InstrAddr(fr.idx), Why: "execution ran off function end"}
	}
	addr := fn.InstrAddr(fr.idx)
	if h, ok := m.hooks[addr]; ok {
		if err := h(m); err != nil {
			return err
		}
		// A hook may redirect control; reload the frame state.
		fr = m.frames[len(m.frames)-1]
		fn = fr.fn
		if fr.idx >= len(fn.Code) {
			return &ControlFault{Addr: fn.InstrAddr(fr.idx), Why: "hook left pc past function end"}
		}
	}
	in := &fn.Code[fr.idx]
	if m.trace != nil && (m.traceLimit == 0 || m.Steps <= m.traceLimit) {
		fmt.Fprintf(m.trace, "%#x %s+%d: %s\n", addr, fn.Name, fr.idx, in.String())
	}
	fr.idx++

	switch in.Kind {
	case ir.Const:
		m.Clock.Add(m.Costs.Instr)
		fr.regs[in.Dst] = uint64(in.Imm)
	case ir.Mov:
		m.Clock.Add(m.Costs.Instr)
		fr.regs[in.Dst] = m.val(fr, in.Src)
	case ir.Bin:
		m.Clock.Add(m.Costs.Instr)
		v, err := binop(in.Op, m.val(fr, in.A), m.val(fr, in.B))
		if err != nil {
			return err
		}
		fr.regs[in.Dst] = v
	case ir.Load:
		m.Clock.Add(m.Costs.MemAccess)
		v, err := m.Mem.ReadUint(fr.regs[in.Addr]+uint64(in.Off), in.Size)
		if err != nil {
			return err
		}
		fr.regs[in.Dst] = v
	case ir.Store:
		m.Clock.Add(m.Costs.MemAccess)
		if err := m.Mem.WriteUint(fr.regs[in.Addr]+uint64(in.Off), m.val(fr, in.Src), in.Size); err != nil {
			return err
		}
	case ir.LocalAddr:
		m.Clock.Add(m.Costs.Instr)
		fr.regs[in.Dst] = m.slotAddr(fn, in.Slot) + uint64(in.Off)
	case ir.GlobalAddr:
		m.Clock.Add(m.Costs.Instr)
		g := m.Prog.GlobalByName(in.Sym)
		if g == nil {
			return fmt.Errorf("vm: undefined global %q", in.Sym)
		}
		fr.regs[in.Dst] = g.Addr + uint64(in.Off)
	case ir.FuncAddr:
		m.Clock.Add(m.Costs.Instr)
		f := m.Prog.Func(in.Sym)
		if f == nil {
			return fmt.Errorf("vm: undefined function %q", in.Sym)
		}
		fr.regs[in.Dst] = f.Base
	case ir.Call:
		m.Clock.Add(m.Costs.Call)
		callee := m.Prog.Func(in.Sym)
		if callee == nil {
			return fmt.Errorf("vm: undefined function %q", in.Sym)
		}
		return m.doCall(fr, fn, in, callee, true)
	case ir.CallInd:
		m.Clock.Add(m.Costs.CallInd)
		target := fr.regs[in.Target]
		for _, mit := range m.Mitigations {
			if err := mit.OnIndirectCall(m, in, target); err != nil {
				return err
			}
		}
		callee, idx := m.Prog.FuncAt(target)
		if callee == nil || idx != 0 {
			return &ControlFault{Addr: target, Why: "indirect call to non-function address"}
		}
		return m.doCall(fr, fn, in, callee, false)
	case ir.Syscall:
		return m.doSyscall(fr, fn, in)
	case ir.Jump:
		m.Clock.Add(m.Costs.Instr)
		fr.idx = in.ToIndex
	case ir.BranchNZ:
		m.Clock.Add(m.Costs.Instr)
		if m.val(fr, in.Src) != 0 {
			fr.idx = in.ToIndex
		}
	case ir.Ret:
		m.Clock.Add(m.Costs.Ret)
		return m.doRet(fr, in)
	case ir.Intrinsic:
		return m.doIntrinsic(fr, fn, in)
	default:
		return fmt.Errorf("vm: unknown instruction kind %v", in.Kind)
	}
	return nil
}

// doCall transfers into callee. Direct calls are arity-checked (the
// validator guarantees them anyway); indirect calls are not — as on real
// hardware, a hijacked function pointer reaches its target with whatever
// happens to be in the argument registers, and missing arguments arrive as
// junk (zero here).
func (m *Machine) doCall(fr *frame, fn *ir.Function, in *ir.Instr, callee *ir.Function, strict bool) error {
	if strict && len(in.Args) != callee.NumParams {
		return fmt.Errorf("vm: call %s with %d args, want %d", callee.Name, len(in.Args), callee.NumParams)
	}
	args := make([]uint64, callee.NumParams)
	for i := 0; i < len(in.Args) && i < callee.NumParams; i++ {
		args[i] = m.val(fr, in.Args[i])
	}
	retaddr := fn.InstrAddr(fr.idx) // fr.idx already advanced past the call
	return m.pushCall(callee, args, retaddr)
}

func (m *Machine) doRet(fr *frame, in *ir.Instr) error {
	m.rax = m.val(fr, in.Src)
	// The return address and saved frame pointer come from guest memory:
	// this is the ROP surface.
	retaddr, err := m.Mem.ReadUint(m.rbp+8, 8)
	if err != nil {
		return err
	}
	savedRbp, err := m.Mem.ReadUint(m.rbp, 8)
	if err != nil {
		return err
	}
	for _, mit := range m.Mitigations {
		if err := mit.OnRet(m, retaddr); err != nil {
			return err
		}
	}
	m.rsp = m.rbp + 16
	m.rbp = savedRbp
	m.frames = m.frames[:len(m.frames)-1]
	m.CallDepth = len(m.frames)
	if retaddr == 0 {
		// Returned to the VM (entry or CallFunction boundary).
		return nil
	}
	tf, idx := m.Prog.FuncAt(retaddr)
	if tf == nil {
		return &ControlFault{Addr: retaddr, Why: "return to non-code address"}
	}
	if len(m.frames) == 0 {
		// A hijacked bottom frame: fabricate a register frame so gadget
		// execution can proceed (registers are scratch at this point).
		m.frames = append(m.frames, &frame{fn: tf, idx: idx})
		m.CallDepth = len(m.frames)
		return nil
	}
	top := m.frames[len(m.frames)-1]
	top.fn = tf
	top.idx = idx
	// Normal return: complete `dst = callee()` if the instruction before
	// the return site is a call (mirrors the value arriving in RAX).
	if idx > 0 {
		prev := &tf.Code[idx-1]
		if prev.Kind == ir.Call || prev.Kind == ir.CallInd {
			top.regs[prev.Dst] = m.rax
		}
	}
	return nil
}

func (m *Machine) doSyscall(fr *frame, fn *ir.Function, in *ir.Instr) error {
	if m.OS == nil {
		return errors.New("vm: syscall with no OS attached")
	}
	var regs Regs
	regs.RAX = m.val(fr, in.Args[0])
	for i := 1; i < len(in.Args) && i <= 6; i++ {
		v := m.val(fr, in.Args[i])
		switch i {
		case 1:
			regs.RDI = v
		case 2:
			regs.RSI = v
		case 3:
			regs.RDX = v
		case 4:
			regs.R10 = v
		case 5:
			regs.R8 = v
		case 6:
			regs.R9 = v
		}
	}
	regs.RIP = fn.InstrAddr(fr.idx - 1)
	regs.RSP = m.rsp
	regs.RBP = m.rbp
	m.SysRegs = regs

	// Call-depth statistics at syscall points (§9.2).
	d := len(m.frames)
	m.DepthSum += uint64(d)
	m.DepthN++
	if d < m.MinDepth {
		m.MinDepth = d
	}
	if d > m.MaxDepth {
		m.MaxDepth = d
	}

	ret, err := m.OS.Syscall(m)
	if err != nil {
		return err
	}
	fr.regs[in.Dst] = uint64(ret)
	m.rax = uint64(ret)
	return nil
}

func (m *Machine) doIntrinsic(fr *frame, fn *ir.Function, in *ir.Instr) error {
	switch in.IK {
	case ir.CtxWriteMem:
		m.Clock.Add(m.Costs.WriteMem)
		if m.Runtime == nil {
			return nil
		}
		return m.Runtime.CtxWriteMem(m, fr.regs[in.Addr], in.Size)
	case ir.CtxBindMem:
		m.Clock.Add(m.Costs.Bind)
		if m.Runtime == nil {
			return nil
		}
		return m.Runtime.CtxBindMem(m, fn.InstrAddr(in.BindSite), in.Pos, fr.regs[in.Addr])
	case ir.CtxBindConst:
		m.Clock.Add(m.Costs.Bind)
		if m.Runtime == nil {
			return nil
		}
		return m.Runtime.CtxBindConst(m, fn.InstrAddr(in.BindSite), in.Pos, in.Imm)
	}
	return fmt.Errorf("vm: unknown intrinsic %v", in.IK)
}

func binop(op ir.Op, a, b uint64) (uint64, error) {
	sa, sb := int64(a), int64(b)
	switch op {
	case ir.OpAdd:
		return a + b, nil
	case ir.OpSub:
		return a - b, nil
	case ir.OpMul:
		return a * b, nil
	case ir.OpDiv:
		if b == 0 {
			return 0, &ControlFault{Why: "division by zero"}
		}
		return uint64(sa / sb), nil
	case ir.OpMod:
		if b == 0 {
			return 0, &ControlFault{Why: "modulo by zero"}
		}
		return uint64(sa % sb), nil
	case ir.OpAnd:
		return a & b, nil
	case ir.OpOr:
		return a | b, nil
	case ir.OpXor:
		return a ^ b, nil
	case ir.OpShl:
		return a << (b & 63), nil
	case ir.OpShr:
		return a >> (b & 63), nil
	case ir.OpEq:
		return b2u(a == b), nil
	case ir.OpNe:
		return b2u(a != b), nil
	case ir.OpLt:
		return b2u(sa < sb), nil
	case ir.OpLe:
		return b2u(sa <= sb), nil
	case ir.OpGt:
		return b2u(sa > sb), nil
	case ir.OpGe:
		return b2u(sa >= sb), nil
	}
	return 0, fmt.Errorf("vm: unknown op %v", op)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// AvgSyscallDepth returns the mean call depth observed at syscall
// instructions, or 0 if none executed.
func (m *Machine) AvgSyscallDepth() float64 {
	if m.DepthN == 0 {
		return 0
	}
	return float64(m.DepthSum) / float64(m.DepthN)
}

// Unwind walks the frame-pointer chain from the latched syscall registers,
// returning the return addresses from innermost outward, stopping at the
// sentinel (0) or after max frames. This is the same walk the monitor
// performs through ptrace; the VM exposes it for tests and diagnostics.
func (m *Machine) Unwind(max int) ([]uint64, error) {
	var out []uint64
	bp := m.SysRegs.RBP
	for i := 0; i < max && bp != 0; i++ {
		ret, err := m.Mem.PeekUint(bp+8, 8)
		if err != nil {
			return out, err
		}
		if ret == 0 {
			break
		}
		out = append(out, ret)
		bp, err = m.Mem.PeekUint(bp, 8)
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
