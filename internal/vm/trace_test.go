package vm

import (
	"strings"
	"testing"

	"bastion/internal/ir"
)

func TestTraceStreamsDisassembly(t *testing.T) {
	p := ir.NewProgram()
	leaf := ir.NewBuilder("leaf", 1)
	v := leaf.LoadLocal("p0")
	leaf.Ret(ir.R(v))
	p.AddFunc(leaf.Build())
	b := ir.NewBuilder("main", 0)
	r := b.Call("leaf", ir.Imm(7))
	b.Ret(ir.R(r))
	p.AddFunc(b.Build())
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	m, err := New(p, WithTrace(&sb, 0))
	if err != nil {
		t.Fatal(err)
	}
	m.MaxSteps = 1 << 12
	if got, err := m.CallFunction("main"); err != nil || got != 7 {
		t.Fatalf("run: %d, %v", got, err)
	}
	out := sb.String()
	for _, want := range []string{"main+", "leaf+", "call leaf(7)", "ret r"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}

	// The limit caps output.
	var small strings.Builder
	m2, err := New(p, WithTrace(&small, 2))
	if err != nil {
		t.Fatal(err)
	}
	m2.MaxSteps = 1 << 12
	if _, err := m2.CallFunction("main"); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(small.String(), "\n"); n > 2 {
		t.Fatalf("trace limit ignored: %d lines", n)
	}
}
