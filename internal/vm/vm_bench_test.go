package vm

import (
	"testing"

	"bastion/internal/ir"
)

// buildSpinner returns a program whose main executes roughly n simple
// instructions.
func buildSpinner(n int64) *ir.Program {
	p := ir.NewProgram()
	b := ir.NewBuilder("main", 0)
	i := b.Const(0)
	b.Label("loop")
	c := b.Bin(ir.OpLt, ir.R(i), ir.Imm(n))
	done := b.Bin(ir.OpEq, ir.R(c), ir.Imm(0))
	b.BranchNZ(ir.R(done), "end")
	b.BinInto(i, ir.OpAdd, ir.R(i), ir.Imm(1))
	b.Jump("loop")
	b.Label("end")
	b.Ret(ir.R(i))
	p.AddFunc(b.Build())
	return p
}

// BenchmarkInterpreterALU measures raw interpreter throughput.
func BenchmarkInterpreterALU(b *testing.B) {
	p := buildSpinner(1000)
	if err := p.Link(); err != nil {
		b.Fatal(err)
	}
	m, err := New(p)
	if err != nil {
		b.Fatal(err)
	}
	m.MaxSteps = 0
	b.SetBytes(1000 * 5) // ~5 instructions per iteration
	for i := 0; i < b.N; i++ {
		if _, err := m.CallFunction("main"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCallReturn measures memory-realized frame push/pop cost.
func BenchmarkCallReturn(b *testing.B) {
	p := ir.NewProgram()
	leaf := ir.NewBuilder("leaf", 2)
	v := leaf.LoadLocal("p0")
	leaf.Ret(ir.R(v))
	p.AddFunc(leaf.Build())
	mb := ir.NewBuilder("main", 0)
	mb.Local("x", 64)
	r := mb.Call("leaf", ir.Imm(1), ir.Imm(2))
	for i := 0; i < 19; i++ {
		r = mb.Call("leaf", ir.R(r), ir.Imm(2))
	}
	mb.Ret(ir.R(r))
	p.AddFunc(mb.Build())
	if err := p.Link(); err != nil {
		b.Fatal(err)
	}
	m, err := New(p)
	if err != nil {
		b.Fatal(err)
	}
	m.MaxSteps = 0
	for i := 0; i < b.N; i++ {
		if _, err := m.CallFunction("main"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGuestMemoryAccess measures load/store dispatch.
func BenchmarkGuestMemoryAccess(b *testing.B) {
	p := ir.NewProgram()
	p.AddGlobal(&ir.Global{Name: "g", Size: 4096})
	mb := ir.NewBuilder("main", 0)
	g := mb.GlobalLea("g", 0)
	i := mb.Const(0)
	mb.Label("loop")
	c := mb.Bin(ir.OpLt, ir.R(i), ir.Imm(256))
	d := mb.Bin(ir.OpEq, ir.R(c), ir.Imm(0))
	mb.BranchNZ(ir.R(d), "end")
	addr := mb.Bin(ir.OpAdd, ir.R(g), ir.R(i))
	mb.Store(addr, 0, ir.R(i), 8)
	mb.Load(addr, 0, 8)
	mb.BinInto(i, ir.OpAdd, ir.R(i), ir.Imm(8))
	mb.Jump("loop")
	mb.Label("end")
	mb.Ret(ir.Imm(0))
	p.AddFunc(mb.Build())
	if err := p.Link(); err != nil {
		b.Fatal(err)
	}
	m, err := New(p)
	if err != nil {
		b.Fatal(err)
	}
	m.MaxSteps = 0
	for i := 0; i < b.N; i++ {
		if _, err := m.CallFunction("main"); err != nil {
			b.Fatal(err)
		}
	}
}
