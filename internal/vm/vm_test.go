package vm

import (
	"errors"
	"strings"
	"testing"

	"bastion/internal/ir"
)

// fakeOS records syscalls and returns canned values; nr 60 exits.
type fakeOS struct {
	calls []Regs
	ret   int64
}

func (f *fakeOS) Syscall(m *Machine) (int64, error) {
	f.calls = append(f.calls, m.SysRegs)
	if m.SysRegs.RAX == 60 {
		return 0, &ExitError{Code: int64(m.SysRegs.RDI)}
	}
	return f.ret, nil
}

func mustMachine(t *testing.T, p *ir.Program, opts ...Option) *Machine {
	t.Helper()
	if err := p.Link(); err != nil {
		t.Fatalf("Link: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	m, err := New(p, opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m.MaxSteps = 1 << 20
	return m
}

func TestArithmeticAndBranches(t *testing.T) {
	p := ir.NewProgram()
	// main: computes sum 1..10 via a loop, returns it.
	b := ir.NewBuilder("main", 0)
	sum := b.Const(0)
	i := b.Const(1)
	b.Label("loop")
	cond := b.Bin(ir.OpLe, ir.R(i), ir.Imm(10))
	done := b.Bin(ir.OpEq, ir.R(cond), ir.Imm(0))
	b.BranchNZ(ir.R(done), "end")
	b.BinInto(sum, ir.OpAdd, ir.R(sum), ir.R(i))
	b.BinInto(i, ir.OpAdd, ir.R(i), ir.Imm(1))
	b.Jump("loop")
	b.Label("end")
	b.Ret(ir.R(sum))
	p.AddFunc(b.Build())

	m := mustMachine(t, p)
	got, err := m.CallFunction("main")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != 55 {
		t.Fatalf("sum = %d, want 55", got)
	}
}

func TestBinopTable(t *testing.T) {
	cases := []struct {
		op   ir.Op
		a, b uint64
		want uint64
	}{
		{ir.OpAdd, 3, 4, 7},
		{ir.OpSub, 3, 4, ^uint64(0)},
		{ir.OpMul, 6, 7, 42},
		{ir.OpDiv, negu(9), 3, negu(3)},
		{ir.OpMod, 10, 3, 1},
		{ir.OpAnd, 0b1100, 0b1010, 0b1000},
		{ir.OpOr, 0b1100, 0b1010, 0b1110},
		{ir.OpXor, 0b1100, 0b1010, 0b0110},
		{ir.OpShl, 1, 4, 16},
		{ir.OpShr, 16, 4, 1},
		{ir.OpEq, 5, 5, 1},
		{ir.OpNe, 5, 5, 0},
		{ir.OpLt, negu(1), 0, 1},
		{ir.OpLe, 2, 2, 1},
		{ir.OpGt, 0, negu(1), 1},
		{ir.OpGe, 1, 2, 0},
	}
	for _, tc := range cases {
		got, err := binop(tc.op, tc.a, tc.b)
		if err != nil {
			t.Fatalf("%v: %v", tc.op, err)
		}
		if got != tc.want {
			t.Errorf("%v(%d,%d) = %d, want %d", tc.op, tc.a, tc.b, got, tc.want)
		}
	}
	if _, err := binop(ir.OpDiv, 1, 0); err == nil {
		t.Fatal("div by zero did not fault")
	}
	if _, err := binop(ir.OpMod, 1, 0); err == nil {
		t.Fatal("mod by zero did not fault")
	}
}

func TestCallsAndParamsInMemory(t *testing.T) {
	p := ir.NewProgram()
	// add(a, b) { return a + b }
	add := ir.NewBuilder("add", 2)
	a := add.LoadLocal("p0")
	bb := add.LoadLocal("p1")
	add.Ret(ir.R(add.Bin(ir.OpAdd, ir.R(a), ir.R(bb))))
	p.AddFunc(add.Build())

	// main { x = add(add(1,2), 30); return x }
	b := ir.NewBuilder("main", 0)
	inner := b.Call("add", ir.Imm(1), ir.Imm(2))
	outer := b.Call("add", ir.R(inner), ir.Imm(30))
	b.Ret(ir.R(outer))
	p.AddFunc(b.Build())

	m := mustMachine(t, p)
	got, err := m.CallFunction("main")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != 33 {
		t.Fatalf("got %d, want 33", got)
	}
}

func TestRecursionUsesMemoryFrames(t *testing.T) {
	p := ir.NewProgram()
	// fib(n) { if n < 2 return n; return fib(n-1)+fib(n-2) }
	f := ir.NewBuilder("fib", 1)
	n := f.LoadLocal("p0")
	c := f.Bin(ir.OpLt, ir.R(n), ir.Imm(2))
	f.BranchNZ(ir.R(c), "base")
	n1 := f.Bin(ir.OpSub, ir.R(n), ir.Imm(1))
	r1 := f.Call("fib", ir.R(n1))
	// n is live across the call; it was reloaded from the parameter slot so
	// reload it again to model a memory-backed local.
	n2 := f.LoadLocal("p0")
	n2m := f.Bin(ir.OpSub, ir.R(n2), ir.Imm(2))
	r2 := f.Call("fib", ir.R(n2m))
	f.Ret(ir.R(f.Bin(ir.OpAdd, ir.R(r1), ir.R(r2))))
	f.Label("base")
	nAgain := f.LoadLocal("p0")
	f.Ret(ir.R(nAgain))
	p.AddFunc(f.Build())
	p.Entry = "fib"

	m := mustMachine(t, p)
	got, err := m.CallFunction("fib", 10)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != 55 {
		t.Fatalf("fib(10) = %d, want 55", got)
	}
}

func TestIndirectCall(t *testing.T) {
	p := ir.NewProgram()
	dbl := ir.NewBuilder("double", 1)
	v := dbl.LoadLocal("p0")
	dbl.Ret(ir.R(dbl.Bin(ir.OpMul, ir.R(v), ir.Imm(2))))
	p.AddFunc(dbl.Build())

	b := ir.NewBuilder("main", 0)
	fp := b.FuncAddr("double")
	r := b.CallInd(fp, "i64(i64)", ir.Imm(21))
	b.Ret(ir.R(r))
	p.AddFunc(b.Build())

	m := mustMachine(t, p)
	got, err := m.CallFunction("main")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != 42 {
		t.Fatalf("got %d, want 42", got)
	}
}

func TestIndirectCallToNonFunctionFaults(t *testing.T) {
	p := ir.NewProgram()
	b := ir.NewBuilder("main", 0)
	bad := b.Const(0xdead0000)
	b.CallInd(bad, "i64()")
	b.Ret(ir.Imm(0))
	p.AddFunc(b.Build())

	m := mustMachine(t, p)
	_, err := m.CallFunction("main")
	var cf *ControlFault
	if !errors.As(err, &cf) {
		t.Fatalf("err = %v, want ControlFault", err)
	}
}

func TestGlobalsLoadedAndWritable(t *testing.T) {
	p := ir.NewProgram()
	p.AddGlobal(&ir.Global{Name: "counter", Size: 8})
	p.AddGlobal(&ir.Global{Name: "msg", Size: 8, Init: []byte{0x2a}})

	b := ir.NewBuilder("main", 0)
	g := b.GlobalLea("msg", 0)
	v := b.Load(g, 0, 1)
	c := b.GlobalLea("counter", 0)
	b.Store(c, 0, ir.R(v), 8)
	v2 := b.Load(c, 0, 8)
	b.Ret(ir.R(v2))
	p.AddFunc(b.Build())

	m := mustMachine(t, p)
	got, err := m.CallFunction("main")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != 0x2a {
		t.Fatalf("got %#x, want 0x2a", got)
	}
}

// buildOverflowProgram: victim() has an 16-byte buffer and a helper that
// writes n bytes of attacker data into it, overflowing into the saved
// frame pointer and return address; "target" is never called legitimately.
func buildOverflowProgram(t *testing.T) *ir.Program {
	p := ir.NewProgram()
	p.AddGlobal(&ir.Global{Name: "pwned", Size: 8})

	tgt := ir.NewBuilder("target", 0)
	g := tgt.GlobalLea("pwned", 0)
	tgt.Store(g, 0, ir.Imm(1), 8)
	tgt.Ret(ir.Imm(0))
	p.AddFunc(tgt.Build())

	// victim(src, n): memcpy(buf, src, n) with no bounds check; then ret.
	v := ir.NewBuilder("victim", 2)
	v.Local("buf", 16)
	src := v.LoadLocal("p0")
	n := v.LoadLocal("p1")
	buf := v.Lea("buf", 0)
	i := v.Const(0)
	v.Label("copy")
	c := v.Bin(ir.OpLt, ir.R(i), ir.R(n))
	done := v.Bin(ir.OpEq, ir.R(c), ir.Imm(0))
	v.BranchNZ(ir.R(done), "out")
	sa := v.Bin(ir.OpAdd, ir.R(src), ir.R(i))
	bytev := v.Load(sa, 0, 1)
	da := v.Bin(ir.OpAdd, ir.R(buf), ir.R(i))
	v.Store(da, 0, ir.R(bytev), 1)
	v.BinInto(i, ir.OpAdd, ir.R(i), ir.Imm(1))
	v.Jump("copy")
	v.Label("out")
	v.Ret(ir.Imm(0))
	p.AddFunc(v.Build())

	b := ir.NewBuilder("main", 2)
	payload := b.LoadLocal("p0")
	plen := b.LoadLocal("p1")
	b.Call("victim", ir.R(payload), ir.R(plen))
	b.Ret(ir.Imm(7)) // normal path returns 7
	p.AddFunc(b.Build())
	return p
}

func TestStackSmashHijacksReturn(t *testing.T) {
	p := buildOverflowProgram(t)
	m := mustMachine(t, p)

	// Stage the payload in a scratch global region: 16 filler bytes, then
	// 8 bytes of fake saved-rbp pointing at a fake frame, then the target
	// address. Layout in victim: buf(16) | saved rbp | retaddr.
	target := p.Func("target").Base
	payloadAddr := ir.HeapBase
	if err := m.Mem.Map(payloadAddr, 4096, 0b011); err != nil { // rw
		t.Fatal(err)
	}
	// Fake frame: at fakeRbp, [fakeRbp]=0, [fakeRbp+8]=0 so the hijacked
	// target's own ret lands on the sentinel and stops cleanly.
	fakeRbp := payloadAddr + 256
	if err := m.Mem.WriteUint(fakeRbp, 0, 8); err != nil {
		t.Fatal(err)
	}
	if err := m.Mem.WriteUint(fakeRbp+8, 0, 8); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	putLE(buf[16:], fakeRbp)
	putLE(buf[24:], target)
	if err := m.Mem.Write(payloadAddr, buf); err != nil {
		t.Fatal(err)
	}

	_, err := m.CallFunction("main", payloadAddr, 32)
	if err != nil {
		t.Fatalf("hijacked run faulted: %v", err)
	}
	g := p.GlobalByName("pwned")
	v, err := m.Mem.ReadUint(g.Addr, 8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatal("hijack did not reach target function")
	}
}

func TestNoOverflowNormalReturn(t *testing.T) {
	p := buildOverflowProgram(t)
	m := mustMachine(t, p)
	addr := ir.HeapBase
	if err := m.Mem.Map(addr, 4096, 0b011); err != nil {
		t.Fatal(err)
	}
	got, err := m.CallFunction("main", addr, 8) // within bounds
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != 7 {
		t.Fatalf("got %d, want 7", got)
	}
	g := p.GlobalByName("pwned")
	if v, _ := m.Mem.ReadUint(g.Addr, 8); v != 0 {
		t.Fatal("pwned set without overflow")
	}
}

func negu(v int64) uint64 { return uint64(-v) }

func putLE(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func TestSyscallLatchesRegisters(t *testing.T) {
	p := ir.NewProgram()
	w := ir.NewBuilder("sys_write", 3)
	a0 := w.LoadLocal("p0")
	a1 := w.LoadLocal("p1")
	a2 := w.LoadLocal("p2")
	w.Syscall(1, ir.R(a0), ir.R(a1), ir.R(a2))
	w.Ret(ir.Imm(0))
	p.AddFunc(w.Build())

	b := ir.NewBuilder("main", 0)
	b.Call("sys_write", ir.Imm(5), ir.Imm(0x1234), ir.Imm(99))
	b.Ret(ir.Imm(0))
	p.AddFunc(b.Build())

	os := &fakeOS{ret: 42}
	m := mustMachine(t, p, WithOS(os))
	if _, err := m.CallFunction("main"); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(os.calls) != 1 {
		t.Fatalf("%d syscalls, want 1", len(os.calls))
	}
	r := os.calls[0]
	if r.RAX != 1 || r.RDI != 5 || r.RSI != 0x1234 || r.RDX != 99 {
		t.Fatalf("latched regs = %+v", r)
	}
	wf := p.Func("sys_write")
	if f, _ := p.FuncAt(r.RIP); f != wf {
		t.Fatalf("RIP %#x not inside sys_write", r.RIP)
	}
	if r.Arg(1) != 5 || r.Arg(2) != 0x1234 || r.Arg(3) != 99 || r.Arg(7) != 0 {
		t.Fatalf("Arg() mismatch: %+v", r)
	}
}

func TestUnwindMatchesCallChain(t *testing.T) {
	p := ir.NewProgram()
	w := ir.NewBuilder("sys_kill_time", 0)
	w.Syscall(999)
	w.Ret(ir.Imm(0))
	p.AddFunc(w.Build())

	inner := ir.NewBuilder("inner", 0)
	inner.Call("sys_kill_time")
	inner.Ret(ir.Imm(0))
	p.AddFunc(inner.Build())

	outer := ir.NewBuilder("outer", 0)
	outer.Call("inner")
	outer.Ret(ir.Imm(0))
	p.AddFunc(outer.Build())

	b := ir.NewBuilder("main", 0)
	b.Call("outer")
	b.Ret(ir.Imm(0))
	p.AddFunc(b.Build())

	var trace []uint64
	os := &hookOS{fn: func(m *Machine) {
		tr, err := m.Unwind(32)
		if err != nil {
			t.Fatalf("Unwind: %v", err)
		}
		trace = tr
	}}
	m := mustMachine(t, p, WithOS(os))
	if _, err := m.CallFunction("main"); err != nil {
		t.Fatalf("run: %v", err)
	}
	// Return addresses: into inner (after call sys_kill_time), into outer,
	// into main. The sentinel stops the walk.
	if len(trace) != 3 {
		t.Fatalf("unwound %d frames (%#x), want 3", len(trace), trace)
	}
	checks := []string{"inner", "outer", "main"}
	for i, ra := range trace {
		f, _ := p.FuncAt(ra)
		if f == nil || f.Name != checks[i] {
			t.Fatalf("frame %d: retaddr %#x in %v, want %s", i, ra, f, checks[i])
		}
	}
	if m.AvgSyscallDepth() != 4 { // main, outer, inner, wrapper
		t.Fatalf("avg depth = %v, want 4", m.AvgSyscallDepth())
	}
	if m.MinDepth != 4 || m.MaxDepth != 4 {
		t.Fatalf("depth bounds = %d..%d", m.MinDepth, m.MaxDepth)
	}
}

type hookOS struct{ fn func(m *Machine) }

func (h *hookOS) Syscall(m *Machine) (int64, error) {
	h.fn(m)
	return 0, nil
}

func TestHooksFireAndCanCorrupt(t *testing.T) {
	p := ir.NewProgram()
	p.AddGlobal(&ir.Global{Name: "x", Size: 8, Init: []byte{1}})
	b := ir.NewBuilder("main", 0)
	g := b.GlobalLea("x", 0)
	v := b.Load(g, 0, 8) // hook below corrupts x before this load
	b.Ret(ir.R(v))
	p.AddFunc(b.Build())

	m := mustMachine(t, p)
	if err := m.HookFunc("main", 1, func(mm *Machine) error {
		return mm.Mem.WriteUint(p.GlobalByName("x").Addr, 0x77, 8)
	}); err != nil {
		t.Fatal(err)
	}
	got, err := m.CallFunction("main")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != 0x77 {
		t.Fatalf("got %#x, want 0x77", got)
	}
}

func TestExitSyscallStopsMachine(t *testing.T) {
	p := ir.NewProgram()
	w := ir.NewBuilder("sys_exit", 1)
	a := w.LoadLocal("p0")
	w.Syscall(60, ir.R(a))
	w.Ret(ir.Imm(0))
	p.AddFunc(w.Build())
	b := ir.NewBuilder("main", 0)
	b.Call("sys_exit", ir.Imm(3))
	b.Ret(ir.Imm(0))
	p.AddFunc(b.Build())

	m := mustMachine(t, p, WithOS(&fakeOS{}))
	err := m.Run()
	var xe *ExitError
	if !errors.As(err, &xe) || xe.Code != 3 {
		t.Fatalf("err = %v, want ExitError{3}", err)
	}
	if !m.Halted() || m.ExitCode() != 3 {
		t.Fatalf("halted=%v code=%d", m.Halted(), m.ExitCode())
	}
}

func TestStackOverflowFaults(t *testing.T) {
	p := ir.NewProgram()
	f := ir.NewBuilder("loop", 0)
	f.Local("pad", 4096)
	f.Call("loop")
	f.Ret(ir.Imm(0))
	p.AddFunc(f.Build())
	b := ir.NewBuilder("main", 0)
	b.Call("loop")
	b.Ret(ir.Imm(0))
	p.AddFunc(b.Build())

	m := mustMachine(t, p)
	_, err := m.CallFunction("main")
	var cf *ControlFault
	if !errors.As(err, &cf) || !strings.Contains(cf.Why, "stack overflow") {
		t.Fatalf("err = %v, want stack overflow", err)
	}
}

func TestStepBudget(t *testing.T) {
	p := ir.NewProgram()
	b := ir.NewBuilder("main", 0)
	b.Label("spin")
	b.Jump("spin")
	p.AddFunc(b.Build())
	// Validator wants ret/jmp terminator; jmp qualifies.
	m := mustMachine(t, p)
	m.MaxSteps = 1000
	_, err := m.CallFunction("main")
	var cf *ControlFault
	if !errors.As(err, &cf) || !strings.Contains(cf.Why, "step budget") {
		t.Fatalf("err = %v, want step budget fault", err)
	}
}

// recordingMitigation counts events and can veto indirect calls.
type recordingMitigation struct {
	calls, rets, inds int
	vetoInd           bool
}

func (r *recordingMitigation) OnCall(*Machine, uint64) { r.calls++ }
func (r *recordingMitigation) OnRet(*Machine, uint64) error {
	r.rets++
	return nil
}
func (r *recordingMitigation) OnIndirectCall(*Machine, *ir.Instr, uint64) error {
	r.inds++
	if r.vetoInd {
		return &KillError{By: "test", Reason: "indirect veto"}
	}
	return nil
}

func TestMitigationHooks(t *testing.T) {
	p := ir.NewProgram()
	leaf := ir.NewBuilder("leaf", 0)
	leaf.Ret(ir.Imm(0))
	p.AddFunc(leaf.Build())
	b := ir.NewBuilder("main", 0)
	b.Call("leaf")
	fp := b.FuncAddr("leaf")
	b.CallInd(fp, "i64()")
	b.Ret(ir.Imm(0))
	p.AddFunc(b.Build())

	rec := &recordingMitigation{}
	m := mustMachine(t, p, WithMitigations(rec))
	if _, err := m.CallFunction("main"); err != nil {
		t.Fatalf("run: %v", err)
	}
	// calls: main entry + leaf direct + leaf indirect = 3; rets likewise 3.
	if rec.calls != 3 || rec.rets != 3 || rec.inds != 1 {
		t.Fatalf("events = %+v", rec)
	}

	rec2 := &recordingMitigation{vetoInd: true}
	m2 := mustMachine(t, p, WithMitigations(rec2))
	_, err := m2.CallFunction("main")
	var ke *KillError
	if !errors.As(err, &ke) {
		t.Fatalf("err = %v, want KillError", err)
	}
}

func TestClockAdvances(t *testing.T) {
	p := ir.NewProgram()
	b := ir.NewBuilder("main", 0)
	b.Const(1)
	b.Const(2)
	b.Ret(ir.Imm(0))
	p.AddFunc(b.Build())
	c := &Clock{}
	m := mustMachine(t, p, WithClock(c))
	if _, err := m.CallFunction("main"); err != nil {
		t.Fatal(err)
	}
	if c.Cycles == 0 {
		t.Fatal("clock did not advance")
	}
}

func TestSlotAddrAndHookFuncErrors(t *testing.T) {
	p := ir.NewProgram()
	b := ir.NewBuilder("main", 0)
	b.Local("x", 8)
	b.Ret(ir.Imm(0))
	p.AddFunc(b.Build())
	m := mustMachine(t, p)
	if err := m.HookFunc("ghost", 0, nil); err == nil {
		t.Fatal("HookFunc on missing function succeeded")
	}
	if err := m.HookFunc("main", 99, nil); err == nil {
		t.Fatal("HookFunc on bad index succeeded")
	}
	if _, err := m.SlotAddr("x"); err == nil {
		t.Fatal("SlotAddr outside a frame succeeded")
	}
}
