package vm

import (
	"testing"

	"bastion/internal/ir"
)

// TestGadgetEntryMidFunction: control can land in the middle of a function
// via a corrupted return address (gadget semantics), executing the suffix.
func TestGadgetEntryMidFunction(t *testing.T) {
	p := ir.NewProgram()
	p.AddGlobal(&ir.Global{Name: "mark", Size: 8})

	// gadgets: [0] store 1, [1] store 2, [2] ret — entering at instr 1
	// must skip the first store. The address register is materialized
	// fresh at each instruction so a mid-entry lands on valid state.
	g := ir.NewBuilder("gadgets", 0)
	g1 := g.GlobalLea("mark", 0)
	g.Store(g1, 0, ir.Imm(1), 8)
	g2 := g.GlobalLea("mark", 0)
	g.Store(g2, 0, ir.Imm(2), 8)
	g.Ret(ir.Imm(0))
	p.AddFunc(g.Build())

	// victim: hook overwrites its return address with gadgets+2 (the
	// second GlobalLea), so only the second store executes.
	v := ir.NewBuilder("victim", 0)
	v.Local("pad", 16)
	v.Ret(ir.Imm(0))
	p.AddFunc(v.Build())

	b := ir.NewBuilder("main", 0)
	b.Call("victim")
	b.Ret(ir.Imm(0))
	p.AddFunc(b.Build())

	m := mustMachine(t, p)
	gf := p.Func("gadgets")
	if err := m.HookFunc("victim", 0, func(mm *Machine) error {
		return mm.Mem.WriteUint(mm.RBP()+8, gf.InstrAddr(2), 8)
	}); err != nil {
		t.Fatal(err)
	}
	// The gadget's own ret pops main's frame (the chain is shared), so the
	// run ends at the sentinel.
	if _, err := m.CallFunction("main"); err != nil {
		t.Fatalf("gadget run: %v", err)
	}
	mark, _ := m.Mem.ReadUint(p.GlobalByName("mark").Addr, 8)
	if mark != 2 {
		t.Fatalf("mark = %d, want 2 (suffix-only execution)", mark)
	}
}

// TestRegisterIsolationAcrossFrames: callee register writes never leak
// into the caller's register file.
func TestRegisterIsolationAcrossFrames(t *testing.T) {
	p := ir.NewProgram()
	clobber := ir.NewBuilder("clobber", 0)
	for i := 0; i < 16; i++ {
		clobber.Const(0xdead)
	}
	clobber.Ret(ir.Imm(0))
	p.AddFunc(clobber.Build())

	b := ir.NewBuilder("main", 0)
	vals := make([]ir.Reg, 8)
	for i := range vals {
		vals[i] = b.Const(int64(100 + i))
	}
	b.Call("clobber")
	sum := b.Const(0)
	for _, r := range vals {
		b.BinInto(sum, ir.OpAdd, ir.R(sum), ir.R(r))
	}
	b.Ret(ir.R(sum))
	p.AddFunc(b.Build())

	m := mustMachine(t, p)
	got, err := m.CallFunction("main")
	if err != nil {
		t.Fatal(err)
	}
	if got != 100+101+102+103+104+105+106+107 {
		t.Fatalf("caller registers clobbered: sum = %d", got)
	}
}

// TestIndirectCallArityMismatchTolerated: a hijacked pointer reaches its
// target even when argument counts disagree (real machines do not check);
// missing arguments arrive as zero.
func TestIndirectCallArityMismatchTolerated(t *testing.T) {
	p := ir.NewProgram()
	takes3 := ir.NewBuilder("takes3", 3)
	a := takes3.LoadLocal("p0")
	c := takes3.LoadLocal("p2")
	takes3.Ret(ir.R(takes3.Bin(ir.OpAdd, ir.R(a), ir.R(c))))
	p.AddFunc(takes3.Build())

	b := ir.NewBuilder("main", 0)
	fp := b.FuncAddr("takes3")
	r := b.CallInd(fp, "i64(i64)", ir.Imm(41)) // only one argument
	b.Ret(ir.R(r))
	p.AddFunc(b.Build())

	m := mustMachine(t, p)
	got, err := m.CallFunction("main")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != 41 { // p0=41, p2 arrives as 0
		t.Fatalf("got %d, want 41", got)
	}
}

func TestCallFunctionOnHaltedMachine(t *testing.T) {
	p := ir.NewProgram()
	b := ir.NewBuilder("main", 0)
	b.Ret(ir.Imm(0))
	p.AddFunc(b.Build())
	m := mustMachine(t, p, WithOS(&fakeOS{}))
	// Force a halt via a guest exit.
	w := ir.NewBuilder("die", 0)
	_ = w
	m.halted = true
	if _, err := m.CallFunction("main"); err == nil {
		t.Fatal("CallFunction on halted machine succeeded")
	}
}

// TestUnwindStopsOnCorruptChain: Unwind surfaces the readable prefix and
// an error when the frame-pointer chain leaves mapped memory.
func TestUnwindStopsOnCorruptChain(t *testing.T) {
	p := ir.NewProgram()
	w := ir.NewBuilder("sys_probe", 0)
	w.Syscall(999)
	w.Ret(ir.Imm(0))
	p.AddFunc(w.Build())
	b := ir.NewBuilder("main", 0)
	b.Call("sys_probe")
	b.Ret(ir.Imm(0))
	p.AddFunc(b.Build())

	var unwound []uint64
	var uerr error
	os := &hookOS{fn: func(mm *Machine) {
		// Corrupt the innermost saved rbp to an unmapped address, then
		// unwind.
		mm.Mem.WriteUint(mm.SysRegs.RBP, 0xdea0000000, 8)
		unwound, uerr = mm.Unwind(16)
	}}
	m := mustMachine(t, p, WithOS(os))
	// The corrupted saved frame pointer eventually crashes the guest's own
	// return path — the run must fault, not silently continue.
	if _, err := m.CallFunction("main"); err == nil {
		t.Fatal("run with corrupted frame chain succeeded")
	}
	if uerr == nil {
		t.Fatal("Unwind of corrupt chain reported no error")
	}
	if len(unwound) != 1 {
		t.Fatalf("unwound %d frames, want the 1 readable frame", len(unwound))
	}
}
