package shadow

import (
	"testing"
	"testing/quick"

	"bastion/internal/ir"
	"bastion/internal/mem"
)

func newSpace(t *testing.T) *mem.Space {
	t.Helper()
	s := mem.NewSpace()
	if err := MapRegion(s); err != nil {
		t.Fatalf("MapRegion: %v", err)
	}
	return s
}

func TestTablePutGet(t *testing.T) {
	s := newSpace(t)
	tab := NewTable(VMAccessor{Mem: s}, ValueBase(), 1<<8)
	if err := tab.Put(0x1000, 42, 8); err != nil {
		t.Fatal(err)
	}
	v, meta, ok, err := tab.Get(0x1000)
	if err != nil || !ok || v != 42 || meta != 8 {
		t.Fatalf("Get = %d,%d,%v,%v", v, meta, ok, err)
	}
	// Overwrite.
	if err := tab.Put(0x1000, 43, 8); err != nil {
		t.Fatal(err)
	}
	v, _, _, _ = tab.Get(0x1000)
	if v != 43 {
		t.Fatalf("after overwrite: %d", v)
	}
	// Missing key.
	if _, _, ok, _ := tab.Get(0x2000); ok {
		t.Fatal("missing key found")
	}
	// Zero key rejected.
	if err := tab.Put(0, 1, 1); err == nil {
		t.Fatal("zero key accepted")
	}
}

func TestTableCollisionsAndFull(t *testing.T) {
	s := newSpace(t)
	tab := NewTable(VMAccessor{Mem: s}, ValueBase(), 8)
	for i := uint64(1); i <= 8; i++ {
		if err := tab.Put(i*0x10, i, 1); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	for i := uint64(1); i <= 8; i++ {
		v, _, ok, err := tab.Get(i * 0x10)
		if err != nil || !ok || v != i {
			t.Fatalf("Get %d = %d,%v,%v", i, v, ok, err)
		}
	}
	if err := tab.Put(0x999, 1, 1); err != ErrTableFull {
		t.Fatalf("overfull Put = %v", err)
	}
}

func TestEncodeValue(t *testing.T) {
	v, meta := EncodeValue([]byte{0x11, 0x22})
	if v != 0x2211 || meta != 2 {
		t.Fatalf("small = %#x, %d", v, meta)
	}
	big := make([]byte, 16)
	for i := range big {
		big[i] = byte(i)
	}
	v2, meta2 := EncodeValue(big)
	if meta2&MetaDigest == 0 || meta2&MetaSizeMask != 16 {
		t.Fatalf("big meta = %#x", meta2)
	}
	if v2 != Digest(big) {
		t.Fatal("digest mismatch")
	}
	// Digest is content-sensitive.
	big[3] ^= 1
	if v2 == Digest(big) {
		t.Fatal("digest insensitive to change")
	}
}

func TestRuntimeAndReaderRoundTrip(t *testing.T) {
	s := newSpace(t)
	if err := s.Map(0x4000, 4096, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(s)
	// Simulate guest state: an 8-byte flag at 0x4010.
	if err := s.WriteUint(0x4010, 0xbeef, 8); err != nil {
		t.Fatal(err)
	}
	if err := rt.CtxWriteMem(nil, 0x4010, 8); err != nil {
		t.Fatal(err)
	}
	site := ir.CodeBase + 0x40
	if err := rt.CtxBindMem(nil, site, 3, 0x4010); err != nil {
		t.Fatal(err)
	}
	if err := rt.CtxBindConst(nil, site, 1, -1); err != nil {
		t.Fatal(err)
	}

	rd := NewReader(func(addr uint64) (uint64, error) { return s.PeekUint(addr, 8) })
	v, meta, ok, err := rd.Value(0x4010)
	if err != nil || !ok || v != 0xbeef || meta != 8 {
		t.Fatalf("Value = %#x,%d,%v,%v", v, meta, ok, err)
	}
	bv, isConst, ok, err := rd.Binding(site, 3)
	if err != nil || !ok || isConst || bv != 0x4010 {
		t.Fatalf("mem binding = %#x,%v,%v,%v", bv, isConst, ok, err)
	}
	cv, isConst, ok, err := rd.Binding(site, 1)
	if err != nil || !ok || !isConst || int64(cv) != -1 {
		t.Fatalf("const binding = %d,%v,%v,%v", int64(cv), isConst, ok, err)
	}
	if _, _, ok, _ := rd.Binding(site, 2); ok {
		t.Fatal("unbound position found")
	}
	if rt.WriteCount != 1 || rt.BindCount != 2 {
		t.Fatalf("counts = %d,%d", rt.WriteCount, rt.BindCount)
	}
}

func TestCtxWriteMemUnmappedIsNoop(t *testing.T) {
	s := newSpace(t)
	rt := NewRuntime(s)
	if err := rt.CtxWriteMem(nil, 0xdead0000, 8); err != nil {
		t.Fatalf("unmapped CtxWriteMem: %v", err)
	}
	rd := NewReader(func(addr uint64) (uint64, error) { return s.PeekUint(addr, 8) })
	if _, _, ok, _ := rd.Value(0xdead0000); ok {
		t.Fatal("entry created for unmapped variable")
	}
}

func TestReaderIsReadOnly(t *testing.T) {
	s := newSpace(t)
	rd := NewReader(func(addr uint64) (uint64, error) { return s.PeekUint(addr, 8) })
	if err := rd.values.Put(1, 2, 3); err == nil {
		t.Fatal("reader allowed a write")
	}
}

func TestBindKeyUnique(t *testing.T) {
	seen := map[uint64]bool{}
	for site := uint64(ir.CodeBase); site < ir.CodeBase+64*ir.InstrSize; site += ir.InstrSize {
		for pos := 1; pos <= 6; pos++ {
			k := BindKey(site, pos)
			if seen[k] {
				t.Fatalf("duplicate key for site %#x pos %d", site, pos)
			}
			seen[k] = true
		}
	}
}

// Property: put/get over random keys behaves like a map while below
// capacity.
func TestTableMapEquivalence(t *testing.T) {
	s := newSpace(t)
	tab := NewTable(VMAccessor{Mem: s}, ValueBase(), 1<<10)
	model := map[uint64]uint64{}
	f := func(key, val uint64) bool {
		key = key%100_000 + 1
		if len(model) >= 900 && model[key] == 0 {
			return true // stay below capacity
		}
		if err := tab.Put(key, val, 8); err != nil {
			return false
		}
		model[key] = val
		got, _, ok, err := tab.Get(key)
		return err == nil && ok && got == model[key]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
