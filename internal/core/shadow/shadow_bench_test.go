package shadow

import (
	"testing"

	"bastion/internal/mem"
)

func benchSpace(b *testing.B) *mem.Space {
	b.Helper()
	s := mem.NewSpace()
	if err := MapRegion(s); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkGuestPut measures the inlined ctx_write_mem table insert.
func BenchmarkGuestPut(b *testing.B) {
	s := benchSpace(b)
	tab := NewTable(VMAccessor{Mem: s}, ValueBase(), ValueCap)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := uint64(0x1000 + i%4096*8)
		if err := tab.Put(key, uint64(i), 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGuestGet measures monitor-shaped lookups on a warm table.
func BenchmarkGuestGet(b *testing.B) {
	s := benchSpace(b)
	tab := NewTable(VMAccessor{Mem: s}, ValueBase(), ValueCap)
	for i := 0; i < 4096; i++ {
		if err := tab.Put(uint64(0x1000+i*8), uint64(i), 8); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok, err := tab.Get(uint64(0x1000 + i%4096*8)); err != nil || !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkLoadFactor reports probe behavior at high occupancy: the
// open-addressing design the paper's sparse-address-space store implies.
func BenchmarkLoadFactor(b *testing.B) {
	for _, fill := range []int{1024, 8192, 32768, 52428} { // up to ~80% of 64Ki
		b.Run(itoa(fill), func(b *testing.B) {
			s := benchSpace(b)
			tab := NewTable(VMAccessor{Mem: s}, ValueBase(), ValueCap)
			for i := 0; i < fill; i++ {
				if err := tab.Put(uint64(0x10000+i*16), uint64(i), 8); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tab.Get(uint64(0x10000 + (i%fill)*16))
			}
		})
	}
}

// BenchmarkDigest measures the pointee digest over a page.
func BenchmarkDigest(b *testing.B) {
	buf := make([]byte, 4096)
	for i := range buf {
		buf[i] = byte(i)
	}
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Digest(buf)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
