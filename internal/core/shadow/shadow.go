// Package shadow implements BASTION's shadow memory: an open-addressing
// hash table living inside the protected application's address space
// (under the %gs-analog region, §7.1). The instrumented guest writes
// legitimate values and argument bindings into it through the runtime
// library intrinsics (Table 2); the monitor reads it back through the
// ptrace facility. Both sides share the same table layout via the Accessor
// abstraction, so the guest pays inline-instrumentation cost while the
// monitor pays process_vm_readv cost.
package shadow

import (
	"errors"
	"fmt"

	"bastion/internal/ir"
	"bastion/internal/mem"
	"bastion/internal/vm"
)

// Accessor abstracts word-granular access to the shadow region. The guest
// side wraps the VM's memory; the monitor side wraps the kernel's ptrace
// reads (which charge cycle costs).
type Accessor interface {
	Load(addr uint64) (uint64, error)
	Store(addr uint64, v uint64) error
}

// Table layout: entries of three words [key, value, meta]; key 0 marks an
// empty slot (guest addresses are never 0).
const (
	entryWords = 3
	entryBytes = entryWords * 8
)

// Meta word encoding.
const (
	// MetaDigest flags that the value word is an FNV-1a digest of a region
	// larger than 8 bytes; the low bits still carry the region size.
	MetaDigest uint64 = 1 << 63
	// MetaConst marks a binding entry whose value is a constant.
	MetaConst uint64 = 1 << 62
	// MetaSizeMask extracts the size from a meta word.
	MetaSizeMask uint64 = (1 << 32) - 1
)

// Table is one open-addressing hash table in guest memory.
type Table struct {
	Acc  Accessor
	Base uint64
	Cap  uint64 // number of slots; power of two
}

// NewTable creates a view of a table at base with the given capacity.
func NewTable(acc Accessor, base, capacity uint64) *Table {
	if capacity&(capacity-1) != 0 {
		panic("shadow: capacity must be a power of two")
	}
	return &Table{Acc: acc, Base: base, Cap: capacity}
}

// fnv1a hashes a 64-bit key.
func fnv1a(v uint64) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime
		v >>= 8
	}
	return h
}

// ErrTableFull reports shadow-table exhaustion.
var ErrTableFull = errors.New("shadow: table full")

// Put inserts or overwrites key → (value, meta).
func (t *Table) Put(key, value, meta uint64) error {
	if key == 0 {
		return errors.New("shadow: zero key")
	}
	idx := fnv1a(key) & (t.Cap - 1)
	for i := uint64(0); i < t.Cap; i++ {
		s := t.Base + ((idx+i)&(t.Cap-1))*entryBytes
		k, err := t.Acc.Load(s)
		if err != nil {
			return err
		}
		if k == 0 || k == key {
			if err := t.Acc.Store(s, key); err != nil {
				return err
			}
			if err := t.Acc.Store(s+8, value); err != nil {
				return err
			}
			return t.Acc.Store(s+16, meta)
		}
	}
	return ErrTableFull
}

// Get looks up key.
func (t *Table) Get(key uint64) (value, meta uint64, ok bool, err error) {
	if key == 0 {
		return 0, 0, false, nil
	}
	idx := fnv1a(key) & (t.Cap - 1)
	for i := uint64(0); i < t.Cap; i++ {
		s := t.Base + ((idx+i)&(t.Cap-1))*entryBytes
		k, err := t.Acc.Load(s)
		if err != nil {
			return 0, 0, false, err
		}
		if k == 0 {
			return 0, 0, false, nil
		}
		if k == key {
			v, err := t.Acc.Load(s + 8)
			if err != nil {
				return 0, 0, false, err
			}
			m, err := t.Acc.Load(s + 16)
			if err != nil {
				return 0, 0, false, err
			}
			return v, m, true, nil
		}
	}
	return 0, 0, false, nil
}

// Region layout inside [ir.ShadowBase, ir.ShadowBase+ir.ShadowSize):
// the value table first, the binding table second.
const (
	// ValueCap and BindCap are slot counts (power of two). 3 words per
	// entry: 64Ki*24B = 1.5 MiB each; both fit in the 4 MiB shadow region.
	ValueCap = 1 << 16
	BindCap  = 1 << 15
)

// ValueBase returns the value table's base address.
func ValueBase() uint64 { return ir.ShadowBase }

// BindBase returns the binding table's base address.
func BindBase() uint64 { return ir.ShadowBase + ValueCap*entryBytes }

// BindKey derives the binding-table key for (callsite, position).
// Callsites are InstrSize-aligned, so addr*8+pos is collision-free.
func BindKey(site uint64, pos int) uint64 { return site*8 + uint64(pos) }

// MapRegion maps the shadow region into a guest address space (done at
// launch by the monitor, §7.1).
func MapRegion(space *mem.Space) error {
	return space.Map(ir.ShadowBase, ir.ShadowSize, mem.PermRW)
}

// Digest computes the FNV-1a digest of a region's contents. The monitor
// and the guest runtime must agree on this function.
func Digest(data []byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

// EncodeValue produces the (value, meta) pair for a region's contents:
// raw little-endian value for sizes ≤ 8, digest otherwise.
func EncodeValue(data []byte) (value, meta uint64) {
	size := uint64(len(data))
	if size <= 8 {
		var v uint64
		for i := len(data) - 1; i >= 0; i-- {
			v = v<<8 | uint64(data[i])
		}
		return v, size
	}
	return Digest(data), MetaDigest | size
}

// VMAccessor adapts a guest address space for the guest-side runtime.
type VMAccessor struct{ Mem *mem.Space }

// Load reads a shadow word (guest-inline, permission-checked writes are
// unnecessary here because the region is RW).
func (a VMAccessor) Load(addr uint64) (uint64, error) { return a.Mem.PeekUint(addr, 8) }

// Store writes a shadow word.
func (a VMAccessor) Store(addr uint64, v uint64) error { return a.Mem.PokeUint(addr, v, 8) }

// Runtime implements vm.RuntimeHooks: the inlined BASTION library (Table 2)
// that maintains shadow copies and argument bindings.
type Runtime struct {
	space  *mem.Space
	values *Table
	binds  *Table

	// WriteCount / BindCount count intrinsic executions, for statistics.
	WriteCount uint64
	BindCount  uint64
}

// NewRuntime builds the guest-side runtime over a machine's memory. The
// shadow region must already be mapped.
func NewRuntime(space *mem.Space) *Runtime {
	acc := VMAccessor{Mem: space}
	return &Runtime{
		space:  space,
		values: NewTable(acc, ValueBase(), ValueCap),
		binds:  NewTable(acc, BindBase(), BindCap),
	}
}

// CtxWriteMem records the legitimate value of [addr, addr+size).
func (r *Runtime) CtxWriteMem(m *vm.Machine, addr uint64, size int64) error {
	r.WriteCount++
	buf := make([]byte, size)
	if err := r.space.Peek(addr, buf); err != nil {
		// The variable may not be materialized yet (e.g. instrumentation on
		// a path where the mapping does not exist); treat as no-op, exactly
		// as the inlined library's bounds check would.
		return nil
	}
	v, meta := EncodeValue(buf)
	return r.values.Put(addr, v, meta)
}

// CtxBindMem binds the memory-backed variable at addr to argument pos of
// the callsite at site.
func (r *Runtime) CtxBindMem(m *vm.Machine, site uint64, pos int, addr uint64) error {
	r.BindCount++
	return r.binds.Put(BindKey(site, pos), addr, 0)
}

// CtxBindConst binds constant val to argument pos of the callsite at site.
func (r *Runtime) CtxBindConst(m *vm.Machine, site uint64, pos int, val int64) error {
	r.BindCount++
	return r.binds.Put(BindKey(site, pos), uint64(val), MetaConst)
}

// Reader is the monitor-side read-only view of the shadow tables.
type Reader struct {
	values *Table
	binds  *Table
}

// readOnly wraps an Accessor, rejecting stores.
type readOnly struct{ load func(uint64) (uint64, error) }

func (r readOnly) Load(addr uint64) (uint64, error) { return r.load(addr) }
func (r readOnly) Store(uint64, uint64) error {
	return errors.New("shadow: monitor view is read-only")
}

// NewReader builds a monitor-side view that reads shadow words through the
// given word-load function (normally kernel.Process.ReadWord, which
// charges ptrace cost per access).
func NewReader(load func(uint64) (uint64, error)) *Reader {
	acc := readOnly{load: load}
	return &Reader{
		values: NewTable(acc, ValueBase(), ValueCap),
		binds:  NewTable(acc, BindBase(), BindCap),
	}
}

// Value looks up the shadow copy recorded for addr.
func (r *Reader) Value(addr uint64) (value, meta uint64, ok bool, err error) {
	return r.values.Get(addr)
}

// Binding looks up the binding for (callsite, pos). isConst reports a
// constant binding; otherwise value is the bound variable's address.
func (r *Reader) Binding(site uint64, pos int) (value uint64, isConst, ok bool, err error) {
	v, meta, ok, err := r.binds.Get(BindKey(site, pos))
	if err != nil || !ok {
		return 0, false, ok, err
	}
	return v, meta&MetaConst != 0, true, nil
}

// String renders diagnostics.
func (t *Table) String() string {
	return fmt.Sprintf("shadow.Table{base=%#x cap=%d}", t.Base, t.Cap)
}
