package analysis

import (
	"bastion/internal/ir"
)

// baseKind is the root of an address expression.
type baseKind uint8

const (
	baseLocal baseKind = iota
	baseGlobal
)

// addrExpr is a statically understood address computation: a local slot or
// global, an optional single level of pointer indirection (for patterns
// like gshm->size, where the pointer itself lives at a static location),
// and a final field displacement. It is comparable, so it doubles as the
// field-sensitive variable identity (varKey).
type addrExpr struct {
	ok       bool
	deref    bool
	rootKind baseKind
	fn       string // owning function for local roots
	slot     int    // local root slot
	global   string // global root name
	rootOff  int64  // displacement of the pointer field (deref only)
	off      int64  // final field displacement
}

// varKey is the canonical identity of a sensitive variable.
type varKey = addrExpr

// isParamSlot reports whether the expression is exactly the spill slot of
// parameter n of function f.
func (a addrExpr) isParamSlot(f *ir.Function) (int, bool) {
	if !a.ok || a.deref || a.rootKind != baseLocal || a.fn != f.Name {
		return 0, false
	}
	if a.slot < f.NumParams && a.off == 0 {
		return a.slot, true
	}
	return 0, false
}

// defOf finds the nearest instruction before idx that defines reg, walking
// the instruction list backwards. This nearest-textual-definition rule is
// exact for the SSA-like code the builder emits (each expression gets a
// fresh register) and a sound-enough approximation elsewhere.
func defOf(f *ir.Function, idx int, reg ir.Reg) (int, *ir.Instr) {
	for i := idx - 1; i >= 0; i-- {
		in := &f.Code[i]
		switch in.Kind {
		case ir.Const, ir.Mov, ir.Bin, ir.Load, ir.LocalAddr, ir.GlobalAddr,
			ir.FuncAddr, ir.Call, ir.CallInd, ir.Syscall:
			if in.Dst == reg {
				return i, in
			}
		}
	}
	return -1, nil
}

// traceAddr resolves the address held in reg before instruction idx.
func (p *pass) traceAddr(f *ir.Function, idx int, reg ir.Reg, depth int) addrExpr {
	if depth > 16 {
		return addrExpr{}
	}
	i, def := defOf(f, idx, reg)
	if def == nil {
		return addrExpr{}
	}
	switch def.Kind {
	case ir.LocalAddr:
		return addrExpr{ok: true, rootKind: baseLocal, fn: f.Name, slot: def.Slot, off: def.Off}
	case ir.GlobalAddr:
		return addrExpr{ok: true, rootKind: baseGlobal, global: def.Sym, off: def.Off}
	case ir.Mov:
		if def.Src.Kind == ir.OperandReg {
			return p.traceAddr(f, i, def.Src.Reg, depth+1)
		}
	case ir.Bin:
		if def.Op != ir.OpAdd && def.Op != ir.OpSub {
			return addrExpr{}
		}
		var base ir.Operand
		var disp int64
		switch {
		case def.A.Kind == ir.OperandReg && def.B.Kind == ir.OperandImm:
			base, disp = def.A, def.B.Imm
		case def.A.Kind == ir.OperandImm && def.B.Kind == ir.OperandReg && def.Op == ir.OpAdd:
			base, disp = def.B, def.A.Imm
		default:
			return addrExpr{}
		}
		if def.Op == ir.OpSub {
			disp = -disp
		}
		e := p.traceAddr(f, i, base.Reg, depth+1)
		if !e.ok {
			return e
		}
		e.off += disp
		return e
	case ir.Load:
		// A pointer loaded from a statically known location: one level of
		// indirection is modeled (the gshm->size pattern of Figure 2).
		if def.Size != ir.WordSize {
			return addrExpr{}
		}
		inner := p.traceAddr(f, i, def.Addr, depth+1)
		if !inner.ok || inner.deref {
			return addrExpr{}
		}
		return addrExpr{
			ok: true, deref: true,
			rootKind: inner.rootKind, fn: inner.fn, slot: inner.slot,
			global: inner.global, rootOff: inner.off + def.Off,
		}
	}
	return addrExpr{}
}

// srcKind classifies a traced argument value.
type srcKind uint8

const (
	srcUnknown srcKind = iota
	srcConst
	srcMem
	srcParam
	// srcAddrOf: the value is the address of a statically known object
	// (&buf) — a pointer argument whose pointee may be verified as an
	// extended argument.
	srcAddrOf
)

// valueSrc is the origin of an argument value.
type valueSrc struct {
	kind  srcKind
	c     int64    // srcConst
	addr  addrExpr // srcMem
	size  int64    // srcMem load width
	param int      // srcParam: parameter index of the containing function
}

// traceValue resolves the origin of the value in reg before instruction
// idx: a constant, a load from a statically describable memory location, a
// function parameter, or unknown.
func (p *pass) traceValue(f *ir.Function, idx int, reg ir.Reg, depth int) valueSrc {
	if depth > 16 {
		return valueSrc{}
	}
	i, def := defOf(f, idx, reg)
	if def == nil {
		return valueSrc{}
	}
	switch def.Kind {
	case ir.Const:
		return valueSrc{kind: srcConst, c: def.Imm}
	case ir.Mov:
		if def.Src.Kind == ir.OperandImm {
			return valueSrc{kind: srcConst, c: def.Src.Imm}
		}
		return p.traceValue(f, i, def.Src.Reg, depth+1)
	case ir.LocalAddr:
		ae := addrExpr{ok: true, rootKind: baseLocal, fn: f.Name, slot: def.Slot, off: def.Off}
		return valueSrc{kind: srcAddrOf, addr: ae, size: p.objSize(ae)}
	case ir.GlobalAddr:
		ae := addrExpr{ok: true, rootKind: baseGlobal, global: def.Sym, off: def.Off}
		return valueSrc{kind: srcAddrOf, addr: ae, size: p.objSize(ae)}
	case ir.Load:
		ae := p.traceAddr(f, i, def.Addr, depth+1)
		if !ae.ok {
			return valueSrc{}
		}
		ae.off += def.Off
		if n, isParam := ae.isParamSlot(f); isParam {
			return valueSrc{kind: srcParam, param: n, addr: ae, size: def.Size}
		}
		return valueSrc{kind: srcMem, addr: ae, size: def.Size}
	case ir.Bin:
		// Constant folding over traced constants.
		av := p.operandConst(f, i, def.A, depth+1)
		bv := p.operandConst(f, i, def.B, depth+1)
		if av != nil && bv != nil {
			if folded, ok := foldConst(def.Op, *av, *bv); ok {
				return valueSrc{kind: srcConst, c: folded}
			}
		}
		return valueSrc{}
	}
	return valueSrc{}
}

// objSize returns the byte size of the base object an expression refers
// to, net of the field offset (0 when unknown, e.g. through a deref).
func (p *pass) objSize(e addrExpr) int64 {
	if !e.ok || e.deref {
		return 0
	}
	var total int64
	if e.rootKind == baseLocal {
		f := p.prog.Func(e.fn)
		if f == nil {
			return 0
		}
		slots := f.FrameSlots()
		if e.slot < 0 || e.slot >= len(slots) {
			return 0
		}
		total = slots[e.slot].Size
	} else {
		g := p.prog.GlobalByName(e.global)
		if g == nil {
			return 0
		}
		total = g.Size
	}
	if n := total - e.off; n > 0 {
		return n
	}
	return 0
}

// operandConst resolves an operand to a constant if statically possible.
func (p *pass) operandConst(f *ir.Function, idx int, o ir.Operand, depth int) *int64 {
	if o.Kind == ir.OperandImm {
		v := o.Imm
		return &v
	}
	src := p.traceValue(f, idx, o.Reg, depth)
	if src.kind == srcConst {
		return &src.c
	}
	return nil
}

func foldConst(op ir.Op, a, b int64) (int64, bool) {
	switch op {
	case ir.OpAdd:
		return a + b, true
	case ir.OpSub:
		return a - b, true
	case ir.OpMul:
		return a * b, true
	case ir.OpAnd:
		return a & b, true
	case ir.OpOr:
		return a | b, true
	case ir.OpXor:
		return a ^ b, true
	case ir.OpShl:
		return a << (uint64(b) & 63), true
	case ir.OpShr:
		return int64(uint64(a) >> (uint64(b) & 63)), true
	}
	return 0, false
}
