// Package analysis implements the BASTION compiler pass (§6 of the paper):
//
//   - Call-type analysis (§6.1) classifies every system call as
//     not-callable, directly-callable, and/or indirectly-callable by
//     inspecting how its wrapper function is referenced.
//   - Control-flow analysis (§6.2) extracts callee→caller relations for
//     every function on a path that reaches a sensitive system call,
//     stopping at main or at indirect callsites.
//   - Argument-integrity analysis (§6.3) performs a field-sensitive,
//     inter-procedural backward use-def trace from every sensitive system
//     call argument, identifies the sensitive variables, and instruments
//     the program with the runtime-library intrinsics of Table 2
//     (ctx_write_mem after stores to sensitive variables, ctx_bind_mem_X /
//     ctx_bind_const_X before callsites).
//
// The pass runs on an unlinked program, plans instrumentation, rewrites the
// functions, links the result, and only then materializes address-keyed
// metadata, so all callsite addresses in the metadata refer to the final
// instrumented binary.
package analysis

import (
	"fmt"
	"sort"

	"bastion/internal/core/metadata"
	"bastion/internal/ir"
)

// Options configures the pass.
type Options struct {
	// Sensitive is the set of syscall numbers receiving full context
	// protection (defaults to Table 1's 20 via the caller).
	Sensitive []uint32
	// MaxUseDefDepth bounds inter-procedural parameter tracing.
	MaxUseDefDepth int
}

// Stats are the Table 5 instrumentation statistics.
type Stats struct {
	TotalCallsites     int // all application callsites
	DirectCallsites    int
	IndirectCallsites  int
	SensitiveCallsites int // callsites invoking sensitive wrappers
	SensitiveIndirect  int // sensitive syscalls called indirectly
	CtxWriteMem        int // inserted ctx_write_mem instrumentation
	CtxBindMem         int
	CtxBindConst       int
	UntracedArgs       int // arguments the use-def trace could not resolve

	// Points-to refinement statistics: callsite→target edges and
	// (syscall, callsite) policy pairs, before and after refinement.
	IndirectEdgesCoarse  int // Σ address-taken, signature-matched targets
	IndirectEdgesRefined int // Σ points-to targets (always ≤ coarse)
	IndirectEdgesRemoved int
	AllowedPairsCoarse   int // coarse (syscall, callsite) AllowedIndirect pairs
	AllowedPairsRefined  int
	AllowedPairsRemoved  int
	ExactIndirectSites   int // callsites whose target set resolved exactly
	EscapedIndirectSites int // callsites that fell back to address-taken

	// Syscall-flow graph statistics (SF context).
	FlowNodes  int // distinct syscall nrs the program can emit
	FlowEdges  int // legal nr→nr transitions
	FlowStarts int // nrs that may open a fresh process
}

// Total returns the total instrumentation site count (Table 5 last row).
func (s Stats) Total() int { return s.CtxWriteMem + s.CtxBindMem + s.CtxBindConst }

// Result is the compiler output: the instrumented program (linked), the
// context metadata, and the instrumentation statistics.
type Result struct {
	Prog  *ir.Program
	Meta  *metadata.Metadata
	Stats Stats
}

// pass carries analysis state.
type pass struct {
	prog      *ir.Program
	opts      Options
	sensitive map[uint32]bool

	// wrapperNr maps wrapper function name -> syscall number.
	wrapperNr map[string]int64
	// wrapperOf maps syscall number -> wrapper name.
	wrapperOf map[int64]string

	stats Stats

	// plan collects instrumentation insertions per function.
	plan map[string][]insertion

	// sensVars is the set of sensitive variables (field-sensitive).
	sensVars map[varKey]bool
	// sensParams tracks (function, param) pairs already traced, to
	// terminate inter-procedural recursion.
	sensParams map[paramKey]bool
	// derefWriteFns tracks functions whose pointer-parameter stores are
	// instrumented (memcpy-style writers into sensitive buffers).
	derefWriteFns map[paramKey]bool

	// argSites collects argument records keyed by (function, callsite
	// original index); addresses are resolved after relinking.
	argSites map[siteKey]*argSiteDraft

	// untraced records arguments the use-def trace gave up on, keyed by
	// (function, original callsite index, position) so repeat visits do
	// not duplicate the metadata record.
	untraced map[untracedKey]untracedDraft

	// planned dedupes instrumentation decisions; planSeq orders them.
	planned map[string]bool
	planSeq int
	// remap maps (function, original index) to instrumented index.
	remap map[string]map[int]int
}

type siteKey struct {
	fn  string
	idx int // original instruction index of the callsite
}

type paramKey struct {
	fn    string
	param int
}

type argSiteDraft struct {
	target    string
	syscallNr uint32
	isSyscall bool
	args      []metadata.ArgSpec
}

type untracedKey struct {
	fn  string
	idx int // original instruction index of the callsite
	pos int // 1-based argument position
}

type untracedDraft struct {
	target string
	reason string
}

// recordUntraced notes one unresolvable argument for the audit. The stats
// counter is incremented by the callers (once per trace attempt, matching
// the Table 5 semantics); the metadata record is deduplicated.
func (p *pass) recordUntraced(fn string, idx, pos int, target, reason string) {
	key := untracedKey{fn: fn, idx: idx, pos: pos}
	if _, ok := p.untraced[key]; ok {
		return
	}
	p.untraced[key] = untracedDraft{target: target, reason: reason}
}

// Run executes the full pass on prog, which must validate but need not be
// linked. The program is mutated in place (instrumented and linked).
func Run(prog *ir.Program, opts Options) (*Result, error) {
	if opts.MaxUseDefDepth == 0 {
		opts.MaxUseDefDepth = 6
	}
	p := &pass{
		prog:          prog,
		opts:          opts,
		sensitive:     map[uint32]bool{},
		wrapperNr:     map[string]int64{},
		wrapperOf:     map[int64]string{},
		plan:          map[string][]insertion{},
		sensVars:      map[varKey]bool{},
		sensParams:    map[paramKey]bool{},
		derefWriteFns: map[paramKey]bool{},
		argSites:      map[siteKey]*argSiteDraft{},
		untraced:      map[untracedKey]untracedDraft{},
	}
	for _, nr := range opts.Sensitive {
		p.sensitive[uint32(nr)] = true
	}
	p.findWrappers()
	p.analyzeArguments()
	if err := p.instrument(); err != nil {
		return nil, err
	}
	if err := prog.Link(); err != nil {
		return nil, err
	}
	meta, err := p.buildMetadata()
	if err != nil {
		return nil, err
	}
	return &Result{Prog: prog, Meta: meta, Stats: p.stats}, nil
}

// findWrappers locates syscall wrapper functions.
func (p *pass) findWrappers() {
	for _, f := range p.prog.Funcs {
		if nr, ok := ir.SyscallNumber(f); ok {
			p.wrapperNr[f.Name] = nr
			p.wrapperOf[nr] = f.Name
		}
	}
}

// isSensitiveWrapper reports whether fn wraps a sensitive syscall.
func (p *pass) isSensitiveWrapper(fn string) (uint32, bool) {
	nr, ok := p.wrapperNr[fn]
	if !ok {
		return 0, false
	}
	return uint32(nr), p.sensitive[uint32(nr)]
}

// buildMetadata constructs the address-keyed metadata from the linked,
// instrumented program.
func (p *pass) buildMetadata() (*metadata.Metadata, error) {
	meta := metadata.New()
	meta.Entry = p.prog.Entry

	for _, f := range p.prog.Funcs {
		meta.Funcs[f.Name] = metadata.FuncInfo{
			Name:  f.Name,
			Entry: f.Base,
			End:   f.Base + uint64(len(f.Code))*ir.InstrSize,
		}
	}

	// Call-type classification and the callsite map.
	for _, f := range p.prog.Funcs {
		for i := range f.Code {
			in := &f.Code[i]
			switch in.Kind {
			case ir.Call:
				p.stats.TotalCallsites++
				p.stats.DirectCallsites++
				cs := metadata.Callsite{
					Addr:    f.InstrAddr(i),
					RetAddr: f.InstrAddr(i + 1),
					Caller:  f.Name,
					Kind:    metadata.SiteDirect,
					Target:  in.Sym,
				}
				meta.Callsites[cs.RetAddr] = cs
				if nr, ok := p.wrapperNr[in.Sym]; ok {
					ct := meta.CallTypes[uint32(nr)]
					ct.Nr = uint32(nr)
					ct.Wrapper = in.Sym
					ct.Direct = true
					meta.CallTypes[uint32(nr)] = ct
					if p.sensitive[uint32(nr)] {
						p.stats.SensitiveCallsites++
					}
				}
			case ir.CallInd:
				p.stats.TotalCallsites++
				p.stats.IndirectCallsites++
				cs := metadata.Callsite{
					Addr:    f.InstrAddr(i),
					RetAddr: f.InstrAddr(i + 1),
					Caller:  f.Name,
					Kind:    metadata.SiteIndirect,
					TypeSig: in.TypeSig,
				}
				meta.Callsites[cs.RetAddr] = cs
			case ir.FuncAddr:
				meta.IndirectTargets[in.Sym] = true
				if nr, ok := p.wrapperNr[in.Sym]; ok {
					ct := meta.CallTypes[uint32(nr)]
					ct.Nr = uint32(nr)
					ct.Wrapper = in.Sym
					ct.Indirect = true
					meta.CallTypes[uint32(nr)] = ct
					if p.sensitive[uint32(nr)] {
						p.stats.SensitiveIndirect++
					}
				}
			}
		}
	}
	for nr, ct := range meta.CallTypes {
		ct.Name = sysName(nr)
		meta.CallTypes[nr] = ct
	}

	pt := p.buildCFG(meta)
	p.buildFlowGraph(meta, pt)

	// Materialize argument sites with final addresses.
	for key, draft := range p.argSites {
		f := p.prog.Func(key.fn)
		if f == nil {
			return nil, fmt.Errorf("analysis: lost function %q", key.fn)
		}
		idx := p.remappedIndex(key.fn, key.idx)
		site := metadata.ArgSite{
			Addr:      f.InstrAddr(idx),
			Caller:    key.fn,
			Target:    draft.target,
			SyscallNr: draft.syscallNr,
			IsSyscall: draft.isSyscall,
			Args:      draft.args,
		}
		sort.Slice(site.Args, func(i, j int) bool { return site.Args[i].Pos < site.Args[j].Pos })
		meta.ArgSites[site.Addr] = site
	}

	// Materialize the untraced-argument records with final addresses.
	for key, draft := range p.untraced {
		f := p.prog.Func(key.fn)
		if f == nil {
			return nil, fmt.Errorf("analysis: lost function %q", key.fn)
		}
		meta.Untraced = append(meta.Untraced, metadata.UntracedArg{
			Addr:   f.InstrAddr(p.remappedIndex(key.fn, key.idx)),
			Caller: key.fn,
			Target: draft.target,
			Pos:    key.pos,
			Reason: draft.reason,
		})
	}
	sort.Slice(meta.Untraced, func(i, j int) bool {
		a, b := meta.Untraced[i], meta.Untraced[j]
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		return a.Pos < b.Pos
	})
	return meta, nil
}

// buildCFG computes callee→valid-caller relations for every function on a
// path to a sensitive syscall wrapper (§6.2): reverse reachability from
// the sensitive wrappers over direct call edges, stopping at main and not
// crossing indirect callsites. It returns the points-to result so the
// syscall-flow derivation can reuse the per-callsite target sets.
func (p *pass) buildCFG(meta *metadata.Metadata) *pointsTo {
	// Direct call graph: callee -> callers.
	callers := map[string]map[string]bool{}
	for _, f := range p.prog.Funcs {
		for i := range f.Code {
			in := &f.Code[i]
			if in.Kind != ir.Call {
				continue
			}
			if callers[in.Sym] == nil {
				callers[in.Sym] = map[string]bool{}
			}
			callers[in.Sym][f.Name] = true
		}
	}
	// Per-sensitive-syscall reverse reachability: which functions lie on a
	// direct-call path to each sensitive wrapper. The union fills
	// ValidCallers; the per-syscall sets drive AllowedIndirect.
	reaches := map[uint32]map[string]bool{}
	wrappers := make([]string, 0, len(p.wrapperNr))
	for fn := range p.wrapperNr {
		wrappers = append(wrappers, fn)
	}
	sort.Strings(wrappers) // determinism
	for _, fn := range wrappers {
		nr, sens := p.isSensitiveWrapper(fn)
		if !sens {
			continue
		}
		set := map[string]bool{fn: true}
		work := []string{fn}
		for len(work) > 0 {
			callee := work[0]
			work = work[1:]
			cs := callers[callee]
			if len(cs) == 0 {
				continue
			}
			if meta.ValidCallers[callee] == nil {
				meta.ValidCallers[callee] = map[string]bool{}
			}
			names := make([]string, 0, len(cs))
			for c := range cs {
				names = append(names, c)
			}
			sort.Strings(names)
			for _, caller := range names {
				meta.ValidCallers[callee][caller] = true
				// Recursion stops at main; indirect reachability of the
				// caller is recorded via IndirectTargets and ends monitor
				// unwinding.
				if caller == p.prog.Entry || set[caller] {
					continue
				}
				set[caller] = true
				work = append(work, caller)
			}
		}
		reaches[nr] = set
	}

	// AllowedIndirect: an indirect callsite may start a path to syscall nr
	// iff a function in its target set reaches nr (the statically expected
	// partial traces of §7.3). The coarse baseline admits every
	// address-taken function with the callsite's signature; the refined
	// policy uses the points-to target sets, which shrink that to the
	// functions whose address actually flows into the callsite.
	pt := p.runPointsTo()
	meta.AllowedIndirectCoarse = metadata.NrAddrSets{}
	meta.IndirectSites = map[uint64]metadata.IndirectSite{}
	for _, s := range pt.sites {
		f := p.prog.Func(s.fn)
		addr := f.InstrAddr(s.idx)
		meta.IndirectSites[addr] = metadata.IndirectSite{
			Addr:    addr,
			Caller:  s.fn,
			TypeSig: s.sig,
			Targets: sortedNames(s.refined),
			Coarse:  sortedNames(s.coarse),
			Exact:   s.exact,
		}
		p.stats.IndirectEdgesCoarse += len(s.coarse)
		p.stats.IndirectEdgesRefined += len(s.refined)
		if s.exact {
			p.stats.ExactIndirectSites++
		} else {
			p.stats.EscapedIndirectSites++
		}
		for nr, set := range reaches {
			if reachesAny(set, s.coarse) {
				if meta.AllowedIndirectCoarse[nr] == nil {
					meta.AllowedIndirectCoarse[nr] = metadata.AddrSet{}
				}
				meta.AllowedIndirectCoarse[nr][addr] = true
			}
			if reachesAny(set, s.refined) {
				if meta.AllowedIndirect[nr] == nil {
					meta.AllowedIndirect[nr] = metadata.AddrSet{}
				}
				meta.AllowedIndirect[nr][addr] = true
			}
		}
	}
	// A syscall constrained under the coarse policy stays constrained when
	// refinement empties its callsite set: a present-but-empty entry
	// rejects every indirect path, an absent one would unconstrain it.
	for nr, coarse := range meta.AllowedIndirectCoarse {
		if meta.AllowedIndirect[nr] == nil {
			meta.AllowedIndirect[nr] = metadata.AddrSet{}
		}
		p.stats.AllowedPairsCoarse += len(coarse)
		p.stats.AllowedPairsRefined += len(meta.AllowedIndirect[nr])
	}
	p.stats.IndirectEdgesRemoved = p.stats.IndirectEdgesCoarse - p.stats.IndirectEdgesRefined
	p.stats.AllowedPairsRemoved = p.stats.AllowedPairsCoarse - p.stats.AllowedPairsRefined
	return pt
}

// reachesAny reports whether any function in targets is in the
// reachability set.
func reachesAny(set map[string]bool, targets map[string]bool) bool {
	for t := range targets {
		if set[t] {
			return true
		}
	}
	return false
}

func sortedNames(set map[string]bool) []string {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func sysName(nr uint32) string {
	if n, ok := syscallNames[nr]; ok {
		return n
	}
	return fmt.Sprintf("sys_%d", nr)
}

// syscallNames duplicates the kernel's name table for the numbers that
// matter to metadata rendering, avoiding an import cycle with packages
// that build on both.
var syscallNames = map[uint32]string{
	0: "read", 1: "write", 2: "open", 3: "close", 4: "stat", 5: "fstat",
	8: "lseek", 9: "mmap", 10: "mprotect", 11: "munmap", 12: "brk",
	25: "mremap", 39: "getpid", 40: "sendfile", 41: "socket", 42: "connect",
	43: "accept", 44: "sendto", 45: "recvfrom", 49: "bind", 50: "listen",
	56: "clone", 57: "fork", 58: "vfork", 59: "execve", 60: "exit",
	90: "chmod", 101: "ptrace", 105: "setuid", 106: "setgid",
	113: "setreuid", 216: "remap_file_pages", 231: "exit_group",
	257: "openat", 288: "accept4", 322: "execveat",
}
