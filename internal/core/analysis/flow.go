// Syscall-flow analysis (SFIP-style): derive the program's syscall
// transition graph — which syscall number may legally follow which over
// any path of the instruction-level CFG — and emit it into the metadata
// for the monitor's syscall-flow (SF) context.
//
// The derivation is interprocedural. Every non-wrapper function gets a
// summary (FIRST: the nrs its invocation can emit first; LAST: the nrs it
// can emit last before returning; EMPTY: whether it can complete without
// emitting), computed by a forward dataflow over the function's CFG where
// the abstract state at an instruction is the set of possibly-last-emitted
// nrs plus a TOP element meaning "nothing emitted yet since function
// entry". A direct call to a wrapper is an emission point; a direct call
// to any other function composes that function's summary; an indirect
// call composes the union of the summaries of its points-to target set
// (falling back to the coarse address-taken set exactly where the
// points-to analysis does, so the flow graph inherits its soundness).
//
// The program graph unions the transition edges contributed by every
// function body — so any function the harness invokes at top level has
// its internal orderings admitted — while the *cross-function* ordering
// (which function-level sequences are legal, and which nr may start a
// fresh process) is exactly what the entry function's CFG composes.
// Programs without an entry function produce an empty graph, which
// constrains nothing.

package analysis

import (
	"sort"

	"bastion/internal/core/metadata"
	"bastion/internal/ir"
)

// flowSummary is one function's emission summary.
type flowSummary struct {
	first map[uint32]bool // nrs that can be emitted first
	last  map[uint32]bool // nrs that can be emitted last
	empty bool            // can complete without emitting
}

func newFlowSummary() *flowSummary {
	return &flowSummary{first: map[uint32]bool{}, last: map[uint32]bool{}}
}

// flowState is the abstract dataflow state before one instruction: the set
// of nrs that may have been emitted last, plus top ("nothing emitted yet").
type flowState struct {
	top bool
	nrs map[uint32]bool
}

func (s *flowState) clone() flowState {
	c := flowState{top: s.top, nrs: make(map[uint32]bool, len(s.nrs))}
	for nr := range s.nrs {
		c.nrs[nr] = true
	}
	return c
}

// join unions o into s and reports whether s changed.
func (s *flowState) join(o flowState) bool {
	changed := false
	if o.top && !s.top {
		s.top = true
		changed = true
	}
	for nr := range o.nrs {
		if !s.nrs[nr] {
			if s.nrs == nil {
				s.nrs = map[uint32]bool{}
			}
			s.nrs[nr] = true
			changed = true
		}
	}
	return changed
}

// flowPass carries the derivation state.
type flowPass struct {
	p         *pass
	summaries map[string]*flowSummary
	// siteTargets maps (function, instruction index) of an indirect
	// callsite to its points-to target set.
	siteTargets map[siteKey]map[string]bool
	changed     bool
}

// buildFlowGraph derives the transition graph from the linked, instrumented
// program and stores it in meta.SyscallFlow.
func (p *pass) buildFlowGraph(meta *metadata.Metadata, pt *pointsTo) {
	// A program without an entry function derives the empty graph: with no
	// composition root there is no sound start set, and an empty Start
	// would reject every first syscall. Empty constrains nothing instead
	// (the pre-SF compatibility behavior).
	meta.SyscallFlow = metadata.NewFlowGraph()
	if p.prog.Entry == "" || p.prog.Func(p.prog.Entry) == nil {
		return
	}
	fp := &flowPass{p: p, summaries: map[string]*flowSummary{}, siteTargets: map[siteKey]map[string]bool{}}
	for _, s := range pt.sites {
		fp.siteTargets[siteKey{fn: s.fn, idx: s.idx}] = s.refined
	}
	// Deterministic function order for the fixpoint sweeps.
	names := make([]string, 0, len(p.prog.Funcs))
	for _, f := range p.prog.Funcs {
		if _, isWrapper := ir.SyscallNumber(f); isWrapper {
			continue
		}
		names = append(names, f.Name)
		fp.summaries[f.Name] = newFlowSummary()
	}
	sort.Strings(names)

	// Summary fixpoint: FIRST/LAST/EMPTY only grow, so iteration
	// terminates.
	for {
		fp.changed = false
		for _, name := range names {
			fp.analyze(p.prog.Func(name), nil)
		}
		if !fp.changed {
			break
		}
	}

	// Final pass with stable summaries accumulates the edges.
	g := metadata.NewFlowGraph()
	for _, name := range names {
		fp.analyze(p.prog.Func(name), g)
	}
	if entry := fp.summaries[p.prog.Entry]; entry != nil {
		starts := make([]uint32, 0, len(entry.first))
		for nr := range entry.first {
			starts = append(starts, nr)
		}
		sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
		for _, nr := range starts {
			g.AddStart(nr)
		}
	}
	meta.SyscallFlow = g
	p.stats.FlowNodes = len(g.Nodes)
	p.stats.FlowEdges = g.EdgeCount()
	p.stats.FlowStarts = len(g.Start)
}

// callEffect is the emission effect of one call instruction, composed from
// the callee summary (or the wrapper's single emission).
type callEffect struct {
	first map[uint32]bool
	last  map[uint32]bool
	empty bool
}

// effectOf resolves the emission effect of the instruction at f.Code[idx],
// or nil when the instruction cannot emit.
func (fp *flowPass) effectOf(f *ir.Function, idx int) *callEffect {
	in := &f.Code[idx]
	switch in.Kind {
	case ir.Call:
		return fp.calleeEffect(map[string]bool{in.Sym: true})
	case ir.CallInd:
		targets := fp.siteTargets[siteKey{fn: f.Name, idx: idx}]
		return fp.calleeEffect(targets)
	}
	return nil
}

// calleeEffect unions the effects of a set of possible callees. Unknown
// targets and empty target sets contribute an empty (no-emission) effect,
// which is the permissive direction: it never rejects a benign ordering.
func (fp *flowPass) calleeEffect(targets map[string]bool) *callEffect {
	eff := &callEffect{first: map[uint32]bool{}, last: map[uint32]bool{}}
	if len(targets) == 0 {
		eff.empty = true
		return eff
	}
	for t := range targets {
		if nr, ok := fp.p.wrapperNr[t]; ok {
			eff.first[uint32(nr)] = true
			eff.last[uint32(nr)] = true
			continue
		}
		sum := fp.summaries[t]
		if sum == nil {
			eff.empty = true
			continue
		}
		for nr := range sum.first {
			eff.first[nr] = true
		}
		for nr := range sum.last {
			eff.last[nr] = true
		}
		if sum.empty {
			eff.empty = true
		}
	}
	return eff
}

// analyze runs the intra-function dataflow for f to a fixpoint, updating
// f's summary. When g is non-nil the pass also accumulates transition
// edges and emission nodes into the graph (done once summaries are
// stable; edges derived from partial summaries would only be a subset).
func (fp *flowPass) analyze(f *ir.Function, g *metadata.FlowGraph) {
	if f == nil || len(f.Code) == 0 {
		return
	}
	sum := fp.summaries[f.Name]
	in := make([]flowState, len(f.Code))
	reached := make([]bool, len(f.Code))
	in[0] = flowState{top: true, nrs: map[uint32]bool{}}
	reached[0] = true
	work := []int{0}
	push := func(idx int, st flowState) {
		if idx < 0 || idx >= len(f.Code) {
			return
		}
		if !reached[idx] {
			reached[idx] = true
			in[idx] = st.clone()
			work = append(work, idx)
			return
		}
		if in[idx].join(st) {
			work = append(work, idx)
		}
	}
	for len(work) > 0 {
		idx := work[len(work)-1]
		work = work[:len(work)-1]
		st := in[idx]
		instr := &f.Code[idx]
		switch instr.Kind {
		case ir.Ret:
			for nr := range st.nrs {
				if !sum.last[nr] {
					sum.last[nr] = true
					fp.changed = true
				}
			}
			if st.top && !sum.empty {
				sum.empty = true
				fp.changed = true
			}
			continue
		case ir.Jump:
			push(instr.ToIndex, st)
			continue
		case ir.BranchNZ:
			push(instr.ToIndex, st)
			push(idx+1, st)
			continue
		case ir.Syscall:
			// Raw syscall outside a wrapper: validated programs keep
			// Syscall inside wrappers (which this pass treats as atomic
			// emissions and never analyzes), so nothing to do here beyond
			// falling through.
			push(idx+1, st)
			continue
		}
		eff := fp.effectOf(f, idx)
		if eff == nil {
			push(idx+1, st)
			continue
		}
		out := flowState{nrs: map[uint32]bool{}}
		if len(eff.first) > 0 {
			if g != nil {
				addEdges(g, st.nrs, eff.first)
			}
			if st.top {
				for nr := range eff.first {
					if !sum.first[nr] {
						sum.first[nr] = true
						fp.changed = true
					}
					if g != nil {
						g.Nodes[nr] = true
					}
				}
			}
		}
		for nr := range eff.last {
			out.nrs[nr] = true
			if g != nil {
				g.Nodes[nr] = true
			}
		}
		if eff.empty {
			out.join(st)
		}
		push(idx+1, out)
	}
}

// addEdges adds the cross product prev × next to the graph in sorted
// order, keeping graph construction deterministic.
func addEdges(g *metadata.FlowGraph, prev, next map[uint32]bool) {
	ps := make([]uint32, 0, len(prev))
	for nr := range prev {
		ps = append(ps, nr)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	ns := make([]uint32, 0, len(next))
	for nr := range next {
		ns = append(ns, nr)
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	for _, a := range ps {
		for _, b := range ns {
			g.AddEdge(a, b)
		}
	}
}
