package analysis

import (
	"math/rand"
	"testing"

	"bastion/internal/apps/guestlibc"
	"bastion/internal/ir"
	"bastion/internal/kernel"
	"bastion/internal/vm"
)

// genProgram builds a randomized straight-line guest program that stores
// values into locals and globals, shuffles them through helper calls, and
// invokes sensitive syscalls with mixed constant/memory arguments. It
// exercises the instrumentation planner's address/value tracing across a
// wide space of shapes.
func genProgram(rng *rand.Rand) *ir.Program {
	p := guestlibc.NewProgram()
	p.AddGlobal(&ir.Global{Name: "g0", Size: 8})
	p.AddGlobal(&ir.Global{Name: "g1", Size: 8})

	// carrier(v): stores its parameter into g1 and calls mprotect with it.
	c := ir.NewBuilder("carrier", 1)
	v := c.LoadLocal("p0")
	g := c.GlobalLea("g1", 0)
	c.Store(g, 0, ir.R(v), 8)
	g2 := c.GlobalLea("g1", 0)
	v2 := c.Load(g2, 0, 8)
	c.Call("mprotect", ir.Imm(0), ir.Imm(0), ir.R(v2))
	c.Ret(ir.Imm(0))
	p.AddFunc(c.Build())

	b := ir.NewBuilder("main", 0)
	b.Local("a", 8)
	b.Local("buf", 24)
	nOps := 3 + rng.Intn(6)
	for i := 0; i < nOps; i++ {
		switch rng.Intn(5) {
		case 0: // store const into local, load, setuid(it)
			la := b.Lea("a", 0)
			val := int64(rng.Intn(1000))
			b.Store(la, 0, ir.Imm(val), 8)
			la2 := b.Lea("a", 0)
			lv := b.Load(la2, 0, 8)
			b.Call("setuid", ir.R(lv))
		case 1: // global-mediated mmap flags
			ga := b.GlobalLea("g0", 0)
			b.Store(ga, 0, ir.Imm(int64(rng.Intn(64))), 8)
			ga2 := b.GlobalLea("g0", 0)
			gv := b.Load(ga2, 0, 8)
			b.Call("mmap", ir.Imm(0), ir.Imm(4096), ir.R(gv), ir.Imm(0x22), ir.Imm(-1), ir.Imm(0))
		case 2: // parameter chain through carrier
			la := b.Lea("a", 0)
			b.Store(la, 0, ir.Imm(int64(rng.Intn(8))), 8)
			la2 := b.Lea("a", 0)
			lv := b.Load(la2, 0, 8)
			b.Call("carrier", ir.R(lv))
		case 3: // buffer bytes then a pointer arg (address-of)
			ba := b.Lea("buf", 0)
			for j := 0; j < 3; j++ {
				b.Store(ba, int64(j), ir.Imm(int64('a'+rng.Intn(26))), 1)
			}
			b.Store(ba, 3, ir.Imm(0), 1)
			ba2 := b.Lea("buf", 0)
			b.Call("chmod", ir.R(ba2), ir.Imm(int64(rng.Intn(512))))
		case 4: // pure constants
			b.Call("socket", ir.Imm(2), ir.Imm(1), ir.Imm(0))
		}
	}
	b.Ret(ir.Imm(0))
	p.AddFunc(b.Build())
	return p
}

// traceOS records syscall register snapshots.
type traceOS struct{ calls []vm.Regs }

func (r *traceOS) Syscall(m *vm.Machine) (int64, error) {
	r.calls = append(r.calls, m.SysRegs)
	return 0, nil
}

func runTrace(t *testing.T, p *ir.Program, instrument bool) []vm.Regs {
	t.Helper()
	if instrument {
		if _, err := Run(p, Options{Sensitive: kernel.SensitiveSyscalls}); err != nil {
			t.Fatalf("pass: %v", err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("instrumented program invalid: %v", err)
		}
	}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	os := &traceOS{}
	m, err := vm.New(p, vm.WithOS(os), vm.WithMaxSteps(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CallFunction("main"); err != nil {
		t.Fatalf("run: %v", err)
	}
	return os.calls
}

// TestInstrumentationPreservesBehaviorProperty: across 40 randomized
// programs, the instrumented binary issues a byte-identical syscall
// sequence to the original — the core soundness property of the pass.
func TestInstrumentationPreservesBehaviorProperty(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		plain := runTrace(t, genProgram(rand.New(rand.NewSource(seed))), false)
		inst := runTrace(t, genProgram(rand.New(rand.NewSource(seed))), true)
		if len(plain) != len(inst) {
			t.Fatalf("seed %d: syscall counts differ: %d vs %d", seed, len(plain), len(inst))
		}
		for i := range plain {
			a, b := plain[i], inst[i]
			if a.RAX != b.RAX || a.RDI != b.RDI || a.RSI != b.RSI ||
				a.RDX != b.RDX || a.R10 != b.R10 || a.R8 != b.R8 || a.R9 != b.R9 {
				t.Fatalf("seed %d: syscall %d differs:\nplain %+v\ninst  %+v", seed, i, a, b)
			}
		}
	}
}

// TestPassIsDeterministic: two runs over the same program produce
// identical metadata and listings (the pass sorts everywhere it ranges
// over maps).
func TestPassIsDeterministic(t *testing.T) {
	build := func() (*ir.Program, string, string) {
		p := genProgram(rand.New(rand.NewSource(7)))
		res, err := Run(p, Options{Sensitive: kernel.SensitiveSyscalls})
		if err != nil {
			t.Fatal(err)
		}
		meta, err := res.Meta.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return p, p.String(), string(meta)
	}
	_, l1, m1 := build()
	_, l2, m2 := build()
	if l1 != l2 {
		t.Fatal("instrumented listings differ between runs")
	}
	if m1 != m2 {
		t.Fatal("metadata differs between runs")
	}
}
