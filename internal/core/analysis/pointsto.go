package analysis

import (
	"sort"

	"bastion/internal/ir"
)

// This file implements the points-to refinement of the indirect-call
// policies: a flow-insensitive, field-aware, Andersen-style propagation of
// function-address constants through stores, loads, locals, globals, and
// direct-call parameter passing. Where the coarse §6 analysis admits every
// address-taken function of matching type at every indirect callsite, the
// refined analysis computes, per callsite, the set of functions whose
// address can actually flow into the callsite's target register.
//
// The abstract memory is the set of statically resolvable cells: (local
// slot | global, constant offset) — exactly the address language of
// traceAddr, without indirection. Function addresses flowing anywhere the
// cell language cannot describe (a computed index, a pointer loaded from
// memory, a call result) escape: the analysis falls back to the coarse
// address-taken set for any read tainted by the escape, so refinement is
// sound by construction — the refined set is always a subset of the coarse
// set and always a superset of the dynamically realizable targets.

// ptCell is one statically resolvable abstract memory cell.
type ptCell struct {
	rootKind baseKind
	fn       string // owning function for local roots
	slot     int
	global   string
	off      int64
}

// ptSite is the computed policy for one indirect callsite.
type ptSite struct {
	fn  string // containing function
	idx int    // instruction index in the instrumented function
	sig string // callsite type signature

	// coarse is the baseline target set: every address-taken function
	// matching the callsite signature.
	coarse map[string]bool
	// refined is the points-to target set (always ⊆ coarse).
	refined map[string]bool
	// exact reports that the target register resolved through tracked
	// cells only; when false, refined fell back to coarse.
	exact bool
}

// pointsTo carries the fixpoint state.
type pointsTo struct {
	p *pass

	// addressTaken is the escape soup: every function whose address is
	// materialized anywhere (ir.FuncAddr).
	addressTaken map[string]bool
	sigOf        map[string]string

	// cells maps each tracked cell to the function constants stored there.
	cells map[ptCell]map[string]bool
	// unknown marks cells that also received a value the trace could not
	// resolve (reads of such cells are not exact).
	unknown map[ptCell]bool
	// poisoned is set when a function address — or an unresolvable word —
	// is stored through an address outside the cell language: all tracked
	// knowledge is then untrusted and every site falls back to coarse.
	poisoned bool

	changed bool
	sites   []*ptSite
}

// runPointsTo computes per-indirect-callsite target sets for the linked,
// instrumented program.
func (p *pass) runPointsTo() *pointsTo {
	pt := &pointsTo{
		p:            p,
		addressTaken: map[string]bool{},
		sigOf:        map[string]string{},
		cells:        map[ptCell]map[string]bool{},
		unknown:      map[ptCell]bool{},
	}
	for _, f := range p.prog.Funcs {
		pt.sigOf[f.Name] = f.TypeSig
		for i := range f.Code {
			if f.Code[i].Kind == ir.FuncAddr {
				pt.addressTaken[f.Code[i].Sym] = true
			}
		}
	}

	// Monotone fixpoint: cell contents and the poison flag only grow, so
	// iteration terminates.
	for {
		pt.changed = false
		for _, f := range p.prog.Funcs {
			pt.transferFunc(f)
		}
		if !pt.changed {
			break
		}
	}

	pt.collectSites()
	return pt
}

// cellOf converts a resolved, non-indirected address expression to a cell.
func cellOf(e addrExpr) (ptCell, bool) {
	if !e.ok || e.deref {
		return ptCell{}, false
	}
	return ptCell{rootKind: e.rootKind, fn: e.fn, slot: e.slot, global: e.global, off: e.off}, true
}

// paramCell is the cell of callee's parameter spill slot n.
func paramCell(callee string, n int) ptCell {
	return ptCell{rootKind: baseLocal, fn: callee, slot: n}
}

func (pt *pointsTo) addTo(cell ptCell, funcs map[string]bool) {
	if len(funcs) == 0 {
		return
	}
	set := pt.cells[cell]
	if set == nil {
		set = map[string]bool{}
		pt.cells[cell] = set
	}
	for t := range funcs {
		if !set[t] {
			set[t] = true
			pt.changed = true
		}
	}
}

func (pt *pointsTo) markUnknown(cell ptCell) {
	if !pt.unknown[cell] {
		pt.unknown[cell] = true
		pt.changed = true
	}
}

func (pt *pointsTo) poison() {
	if !pt.poisoned {
		pt.poisoned = true
		pt.changed = true
	}
}

// transferFunc applies one pass of the transfer relation over f.
func (pt *pointsTo) transferFunc(f *ir.Function) {
	for i := range f.Code {
		in := &f.Code[i]
		switch in.Kind {
		case ir.Store:
			// Narrow stores cannot carry a code address (code lives at
			// ir.CodeBase and above, which needs at least 4 bytes).
			if in.Size < 4 {
				continue
			}
			vals, exact := pt.funcSetOperand(f, i, in.Src)
			ae := pt.p.traceAddr(f, i, in.Addr, 0)
			ae.off += in.Off
			if cell, ok := cellOf(ae); ok {
				pt.addTo(cell, vals)
				if !exact {
					pt.markUnknown(cell)
				}
				continue
			}
			// The store target is outside the cell language (pointer
			// indirection or a computed address): any function constant —
			// or any word we cannot prove is not one — escapes into
			// untracked memory.
			if !exact || len(vals) > 0 {
				pt.poison()
			}
		case ir.Call:
			callee := pt.p.prog.Func(in.Sym)
			if callee == nil {
				continue
			}
			pt.bindCallArgs(f, i, in.Args, callee)
		case ir.CallInd:
			// The concrete callee is unknown while its policy is still
			// being computed; bind arguments to every signature-compatible
			// address-taken candidate (a superset of any refined answer).
			for t := range pt.addressTaken {
				if in.TypeSig != "" && pt.sigOf[t] != in.TypeSig {
					continue
				}
				if callee := pt.p.prog.Func(t); callee != nil {
					pt.bindCallArgs(f, i, in.Args, callee)
				}
			}
		}
	}
}

// bindCallArgs propagates function constants from call arguments into the
// callee's parameter spill-slot cells.
func (pt *pointsTo) bindCallArgs(f *ir.Function, idx int, args []ir.Operand, callee *ir.Function) {
	for ai, o := range args {
		if ai >= callee.NumParams {
			break
		}
		vals, _ := pt.funcSetOperand(f, idx, o)
		// Parameter slots are never exact from the reader side (they hold
		// runtime inputs), so only the positive constants matter here.
		pt.addTo(paramCell(callee.Name, ai), vals)
	}
}

func (pt *pointsTo) funcSetOperand(f *ir.Function, idx int, o ir.Operand) (map[string]bool, bool) {
	if o.Kind == ir.OperandImm {
		// Builder-emitted immediates are data, never code addresses: the
		// only way a program materializes a function address is FuncAddr.
		return nil, true
	}
	return pt.funcSet(f, idx, o.Reg, 0)
}

// funcSet resolves the set of function addresses the value in reg may hold
// before instruction idx. exact=false means the value may additionally be
// anything that escaped (the consumer falls back to the coarse set).
func (pt *pointsTo) funcSet(f *ir.Function, idx int, reg ir.Reg, depth int) (map[string]bool, bool) {
	if depth > 16 {
		return nil, false
	}
	i, def := defOf(f, idx, reg)
	if def == nil {
		return nil, false
	}
	switch def.Kind {
	case ir.FuncAddr:
		return map[string]bool{def.Sym: true}, true
	case ir.Const:
		return nil, true
	case ir.LocalAddr, ir.GlobalAddr:
		// A data address is never a function address.
		return nil, true
	case ir.Mov:
		if def.Src.Kind == ir.OperandImm {
			return nil, true
		}
		return pt.funcSet(f, i, def.Src.Reg, depth+1)
	case ir.Bin:
		// Arithmetic over resolved constants is a constant; anything else
		// could in principle reconstruct an escaped address.
		if pt.p.operandConst(f, i, def.A, depth+1) != nil && pt.p.operandConst(f, i, def.B, depth+1) != nil {
			return nil, true
		}
		return nil, false
	case ir.Load:
		if def.Size < 4 {
			// Too narrow to carry a code address.
			return nil, true
		}
		ae := pt.p.traceAddr(f, i, def.Addr, depth+1)
		ae.off += def.Off
		cell, ok := cellOf(ae)
		if !ok {
			return nil, false
		}
		if n, isParam := ae.isParamSlot(f); isParam {
			// Parameter slots receive runtime values; the propagated
			// constants add precision but never exactness.
			return pt.cells[paramCell(f.Name, n)], false
		}
		return pt.cells[cell], !pt.unknown[cell] && !pt.poisoned
	}
	return nil, false
}

// collectSites materializes the per-callsite policies after the fixpoint.
func (pt *pointsTo) collectSites() {
	names := make([]string, 0, len(pt.p.prog.Funcs))
	for _, f := range pt.p.prog.Funcs {
		names = append(names, f.Name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := pt.p.prog.Func(name)
		for i := range f.Code {
			in := &f.Code[i]
			if in.Kind != ir.CallInd {
				continue
			}
			s := &ptSite{
				fn: f.Name, idx: i, sig: in.TypeSig,
				coarse:  map[string]bool{},
				refined: map[string]bool{},
			}
			for t := range pt.addressTaken {
				if in.TypeSig != "" && pt.sigOf[t] != in.TypeSig {
					continue
				}
				s.coarse[t] = true
			}
			vals, exact := pt.funcSet(f, i, in.Target, 0)
			s.exact = exact && !pt.poisoned
			if s.exact {
				for t := range vals {
					if in.TypeSig != "" && pt.sigOf[t] != in.TypeSig {
						continue
					}
					s.refined[t] = true
				}
			} else {
				// Escape fallback: the coarse address-taken policy.
				for t := range s.coarse {
					s.refined[t] = true
				}
			}
			pt.sites = append(pt.sites, s)
		}
	}
}
