package analysis

import (
	"testing"

	"bastion/internal/apps/guestlibc"
	"bastion/internal/ir"
	"bastion/internal/kernel"
)

// buildLinear constructs main -> setup(); serve() with
// setup = {mmap; mprotect} and serve = {socket}, the smallest program
// whose transition graph has a cross-function edge.
func buildLinear() *ir.Program {
	p := guestlibc.NewProgram()

	setup := ir.NewBuilder("do_setup", 0)
	setup.Call("mmap", ir.Imm(0), ir.Imm(4096), ir.Imm(3), ir.Imm(0x22), ir.Imm(-1), ir.Imm(0))
	setup.Call("mprotect", ir.Imm(0x7000), ir.Imm(4096), ir.Imm(1))
	setup.Ret(ir.Imm(0))
	p.AddFunc(setup.Build())

	serve := ir.NewBuilder("do_serve", 0)
	serve.Call("socket", ir.Imm(2), ir.Imm(1), ir.Imm(0))
	serve.Ret(ir.Imm(0))
	p.AddFunc(serve.Build())

	m := ir.NewBuilder("main", 0)
	m.Call("do_setup")
	m.Call("do_serve")
	m.Ret(ir.Imm(0))
	p.AddFunc(m.Build())
	return p
}

// TestFlowGraphLinear checks the baseline derivation: start set, chain
// edges, nodes, and the absence of orderings the CFG cannot produce.
func TestFlowGraphLinear(t *testing.T) {
	res := runPass(t, buildLinear())
	g := res.Meta.SyscallFlow
	if g.Empty() {
		t.Fatal("derived graph is empty")
	}
	if !g.AllowsStart(kernel.SysMmap) {
		t.Errorf("start set %v should admit mmap", g.Start)
	}
	if g.AllowsStart(kernel.SysSocket) {
		t.Error("socket cannot open the process, yet start admits it")
	}
	wantEdges := [][2]uint32{
		{kernel.SysMmap, kernel.SysMprotect},
		{kernel.SysMprotect, kernel.SysSocket},
	}
	for _, e := range wantEdges {
		if !g.Allows(e[0], e[1]) {
			t.Errorf("missing edge %d->%d", e[0], e[1])
		}
	}
	for _, e := range [][2]uint32{
		{kernel.SysSocket, kernel.SysMmap},     // replaying setup after serve
		{kernel.SysMmap, kernel.SysSocket},     // skipping mprotect
		{kernel.SysMprotect, kernel.SysMmap},   // running setup backwards
		{kernel.SysSocket, kernel.SysSocket},   // serve is not a loop here
		{kernel.SysMprotect, kernel.SysMprotect},
	} {
		if g.Allows(e[0], e[1]) {
			t.Errorf("CFG-impossible edge %d->%d derived", e[0], e[1])
		}
	}
	if res.Stats.FlowNodes != len(g.Nodes) || res.Stats.FlowEdges != g.EdgeCount() || res.Stats.FlowStarts != len(g.Start) {
		t.Errorf("flow stats %d/%d/%d disagree with graph %d/%d/%d",
			res.Stats.FlowNodes, res.Stats.FlowEdges, res.Stats.FlowStarts,
			len(g.Nodes), g.EdgeCount(), len(g.Start))
	}
}

// TestFlowGraphLoopAndBranch checks back edges from loops, both arms of a
// branch, and composition through a syscall-free callee.
func buildLoopBranch() *ir.Program {
	p := guestlibc.NewProgram()

	noop := ir.NewBuilder("bookkeep", 0)
	noop.Ret(ir.Imm(0))
	p.AddFunc(noop.Build())

	m := ir.NewBuilder("main", 0)
	m.Local("i", 8)
	m.Call("mmap", ir.Imm(0), ir.Imm(4096), ir.Imm(3), ir.Imm(0x22), ir.Imm(-1), ir.Imm(0))
	m.Label("loop")
	m.Call("socket", ir.Imm(2), ir.Imm(1), ir.Imm(0))
	m.Call("bookkeep")
	iv := m.Load(m.Lea("i", 0), 0, 8)
	done := m.Bin(ir.OpEq, ir.R(iv), ir.Imm(1))
	m.BranchNZ(ir.R(done), "after")
	m.Store(m.Lea("i", 0), 0, ir.Imm(1), 8)
	m.Jump("loop")
	m.Label("after")
	// Branch: one arm emits mprotect, the other nothing.
	m.BranchNZ(ir.R(iv), "skip")
	m.Call("mprotect", ir.Imm(0x7000), ir.Imm(4096), ir.Imm(1))
	m.Label("skip")
	m.Call("exit_group", ir.Imm(0))
	m.Ret(ir.Imm(0))
	p.AddFunc(m.Build())
	return p
}

func TestFlowGraphLoopAndBranch(t *testing.T) {
	g := runPass(t, buildLoopBranch()).Meta.SyscallFlow
	for _, e := range [][2]uint32{
		{kernel.SysMmap, kernel.SysSocket},      // entering the loop
		{kernel.SysSocket, kernel.SysSocket},    // back edge through bookkeep()
		{kernel.SysSocket, kernel.SysMprotect},  // exiting into the mprotect arm
		{kernel.SysSocket, kernel.SysExitGroup}, // exiting through the skip arm
		{kernel.SysMprotect, kernel.SysExitGroup},
	} {
		if !g.Allows(e[0], e[1]) {
			t.Errorf("missing edge %d->%d", e[0], e[1])
		}
	}
	if g.Allows(kernel.SysMmap, kernel.SysMprotect) {
		t.Error("mmap->mprotect derived, but the loop body always emits socket in between")
	}
	if g.Allows(kernel.SysMprotect, kernel.SysSocket) {
		t.Error("mprotect->socket derived, but mprotect happens after the loop")
	}
	if !g.AllowsStart(kernel.SysMmap) || g.AllowsStart(kernel.SysSocket) {
		t.Errorf("start set wrong: %v", g.Start)
	}
}

// TestFlowGraphIndirectCall checks that an indirect callsite composes the
// union of its points-to targets' summaries.
func TestFlowGraphIndirectCall(t *testing.T) {
	p := guestlibc.NewProgram()
	p.AddGlobal(&ir.Global{Name: "hook", Size: 8})

	ha := ir.NewBuilder("hook_socket", 0)
	ha.Call("socket", ir.Imm(2), ir.Imm(1), ir.Imm(0))
	ha.Ret(ir.Imm(0))
	p.AddFunc(ha.Build())

	hb := ir.NewBuilder("hook_chmod", 0)
	hb.Call("chmod", ir.Imm(0), ir.Imm(0o700))
	hb.Ret(ir.Imm(0))
	p.AddFunc(hb.Build())

	m := ir.NewBuilder("main", 0)
	m.Call("mmap", ir.Imm(0), ir.Imm(4096), ir.Imm(3), ir.Imm(0x22), ir.Imm(-1), ir.Imm(0))
	fa := m.FuncAddr("hook_socket")
	g := m.GlobalLea("hook", 0)
	m.Store(g, 0, ir.R(fa), 8)
	fb := m.FuncAddr("hook_chmod")
	m.Store(m.GlobalLea("hook", 0), 0, ir.R(fb), 8)
	tgt := m.Load(m.GlobalLea("hook", 0), 0, 8)
	m.CallInd(tgt, "i64()")
	m.Call("exit_group", ir.Imm(0))
	m.Ret(ir.Imm(0))
	p.AddFunc(m.Build())

	flow := runPass(t, p).Meta.SyscallFlow
	if !flow.Allows(kernel.SysMmap, kernel.SysSocket) || !flow.Allows(kernel.SysMmap, kernel.SysChmod) {
		t.Errorf("indirect targets not composed: edges %v", flow.Edges)
	}
	if !flow.Allows(kernel.SysSocket, kernel.SysExitGroup) || !flow.Allows(kernel.SysChmod, kernel.SysExitGroup) {
		t.Errorf("post-indirect continuation missing: edges %v", flow.Edges)
	}
	if flow.Allows(kernel.SysSocket, kernel.SysChmod) || flow.Allows(kernel.SysChmod, kernel.SysSocket) {
		t.Error("one indirect dispatch cannot emit both targets in sequence")
	}
}

// TestFlowGraphNoEntry: a program with no entry function derives an empty
// graph, which must constrain nothing (pre-SF compatibility fallback).
func TestFlowGraphNoEntry(t *testing.T) {
	p := guestlibc.NewProgram()
	f := ir.NewBuilder("helper", 0)
	f.Call("socket", ir.Imm(2), ir.Imm(1), ir.Imm(0))
	f.Ret(ir.Imm(0))
	p.AddFunc(f.Build())
	p.Entry = ""

	res, err := Run(p, Options{Sensitive: kernel.SensitiveSyscalls})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	g := res.Meta.SyscallFlow
	if !g.Empty() {
		t.Errorf("entry-less program must derive the empty graph, got nodes %v", g.Nodes)
	}
	if !g.Allows(kernel.SysExecve, kernel.SysSetuid) || !g.AllowsStart(kernel.SysSocket) {
		t.Error("empty graph must constrain nothing")
	}
}

// TestFlowGraphRecursion: a self-recursive emitter must terminate and
// admit the repeat edge.
func TestFlowGraphRecursion(t *testing.T) {
	p := guestlibc.NewProgram()

	r := ir.NewBuilder("retry", 1)
	r.Call("socket", ir.Imm(2), ir.Imm(1), ir.Imm(0))
	n := r.LoadLocal("p0")
	r.BranchNZ(ir.R(n), "done")
	r.Call("retry", ir.Imm(1))
	r.Label("done")
	r.Ret(ir.Imm(0))
	p.AddFunc(r.Build())

	m := ir.NewBuilder("main", 0)
	m.Call("retry", ir.Imm(0))
	m.Call("exit_group", ir.Imm(0))
	m.Ret(ir.Imm(0))
	p.AddFunc(m.Build())

	g := runPass(t, p).Meta.SyscallFlow
	if !g.Allows(kernel.SysSocket, kernel.SysSocket) {
		t.Error("recursive retry edge socket->socket missing")
	}
	if !g.Allows(kernel.SysSocket, kernel.SysExitGroup) {
		t.Error("return edge socket->exit_group missing")
	}
	if !g.AllowsStart(kernel.SysSocket) {
		t.Error("start must admit socket")
	}
}
