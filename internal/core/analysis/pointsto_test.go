package analysis

import (
	"testing"

	"bastion/internal/apps/guestlibc"
	"bastion/internal/apps/nginx"
	"bastion/internal/apps/sqlitedb"
	"bastion/internal/apps/vsftpd"
	"bastion/internal/ir"
	"bastion/internal/kernel"
)

// buildDispatch builds the canonical shrinkage shape: two address-taken
// hooks of identical signature stored into distinct global slots, each
// invoked through its own indirect callsite. The coarse policy admits both
// hooks at both sites; points-to pins each site to the hook actually
// stored in its slot.
//
//	do_exec() { execve(...) }          // sensitive hook
//	do_log()  { write(...) }           // benign hook
//	run_exec() { (*exec_slot)() }
//	run_log()  { (*log_slot)() }
//	main { exec_slot = &do_exec; log_slot = &do_log; run_exec(); run_log() }
func buildDispatch() *ir.Program {
	p := guestlibc.NewProgram()
	p.AddGlobal(&ir.Global{Name: "exec_slot", Size: 8})
	p.AddGlobal(&ir.Global{Name: "log_slot", Size: 8})

	de := ir.NewBuilder("do_exec", 0)
	de.Call("execve", ir.Imm(0x5000), ir.Imm(0), ir.Imm(0))
	de.Ret(ir.Imm(0))
	p.AddFunc(de.Build())

	dl := ir.NewBuilder("do_log", 0)
	dl.Call("write", ir.Imm(1), ir.Imm(0x6000), ir.Imm(16))
	dl.Ret(ir.Imm(0))
	p.AddFunc(dl.Build())

	re := ir.NewBuilder("run_exec", 0)
	fp := re.Load(re.GlobalLea("exec_slot", 0), 0, 8)
	re.CallInd(fp, "i64()")
	re.Ret(ir.Imm(0))
	p.AddFunc(re.Build())

	rl := ir.NewBuilder("run_log", 0)
	fp = rl.Load(rl.GlobalLea("log_slot", 0), 0, 8)
	rl.CallInd(fp, "i64()")
	rl.Ret(ir.Imm(0))
	p.AddFunc(rl.Build())

	m := ir.NewBuilder("main", 0)
	m.Store(m.GlobalLea("exec_slot", 0), 0, ir.R(m.FuncAddr("do_exec")), 8)
	m.Store(m.GlobalLea("log_slot", 0), 0, ir.R(m.FuncAddr("do_log")), 8)
	m.Call("run_exec")
	m.Call("run_log")
	m.Ret(ir.Imm(0))
	p.AddFunc(m.Build())
	return p
}

func siteIn(t *testing.T, res *Result, caller string) uint64 {
	t.Helper()
	for addr, s := range res.Meta.IndirectSites {
		if s.Caller == caller {
			return addr
		}
	}
	t.Fatalf("no indirect site in %s", caller)
	return 0
}

func TestPointsToPinsDispatchSites(t *testing.T) {
	res := runPass(t, buildDispatch())
	meta := res.Meta

	execSite := siteIn(t, res, "run_exec")
	logSite := siteIn(t, res, "run_log")

	es := meta.IndirectSites[execSite]
	if !es.Exact || len(es.Targets) != 1 || es.Targets[0] != "do_exec" {
		t.Fatalf("run_exec site = %+v, want exact {do_exec}", es)
	}
	ls := meta.IndirectSites[logSite]
	if !ls.Exact || len(ls.Targets) != 1 || ls.Targets[0] != "do_log" {
		t.Fatalf("run_log site = %+v, want exact {do_log}", ls)
	}
	if len(es.Coarse) != 2 || len(ls.Coarse) != 2 {
		t.Fatalf("coarse sets = %v / %v, want both hooks at both sites", es.Coarse, ls.Coarse)
	}

	// The refined execve policy admits only the exec dispatch site; the
	// coarse policy admitted both.
	coarse := meta.AllowedIndirectCoarse[kernel.SysExecve]
	refined := meta.AllowedIndirect[kernel.SysExecve]
	if !coarse[execSite] || !coarse[logSite] {
		t.Fatalf("coarse execve policy = %v, want both sites", coarse)
	}
	if !refined[execSite] || refined[logSite] {
		t.Fatalf("refined execve policy = %v, want exec site only", refined)
	}

	if res.Stats.IndirectEdgesRemoved != 2 {
		t.Errorf("IndirectEdgesRemoved = %d, want 2 (one impossible hook per site)", res.Stats.IndirectEdgesRemoved)
	}
	if res.Stats.AllowedPairsRemoved != 1 {
		t.Errorf("AllowedPairsRemoved = %d, want 1 (execve via run_log)", res.Stats.AllowedPairsRemoved)
	}
	if res.Stats.ExactIndirectSites != 2 || res.Stats.EscapedIndirectSites != 0 {
		t.Errorf("site stats = %d exact / %d escaped, want 2/0",
			res.Stats.ExactIndirectSites, res.Stats.EscapedIndirectSites)
	}
}

// TestPointsToEscapeFallsBack seeds a store of a function address through a
// pointer the cell language cannot resolve: every tracked fact is then
// untrusted and the sites must fall back to the coarse address-taken sets.
func TestPointsToEscapeFallsBack(t *testing.T) {
	p := buildDispatch()
	p.AddGlobal(&ir.Global{Name: "escape_ptr", Size: 8})
	leak := ir.NewBuilder("leak", 0)
	dst := leak.Load(leak.GlobalLea("escape_ptr", 0), 0, 8)
	dst2 := leak.Load(dst, 0, 8) // second indirection: outside the cell language
	leak.Store(dst2, 0, ir.R(leak.FuncAddr("do_exec")), 8)
	leak.Ret(ir.Imm(0))
	p.AddFunc(leak.Build())

	res := runPass(t, p)
	meta := res.Meta
	for addr, s := range meta.IndirectSites {
		if s.Exact {
			t.Errorf("site %#x in %s still exact after escape", addr, s.Caller)
		}
		if len(s.Targets) != len(s.Coarse) {
			t.Errorf("site %#x refined %v != coarse %v after escape", addr, s.Targets, s.Coarse)
		}
	}
	// Both dispatch sites are back in the execve policy.
	execSite := siteIn(t, res, "run_exec")
	logSite := siteIn(t, res, "run_log")
	refined := meta.AllowedIndirect[kernel.SysExecve]
	if !refined[execSite] || !refined[logSite] {
		t.Fatalf("refined execve policy after escape = %v, want coarse fallback with both sites", refined)
	}
}

// TestPointsToNarrowStoreDoesNotEscape: stores too narrow to carry a code
// address must not poison the analysis even when their target address is
// unresolvable.
func TestPointsToNarrowStoreDoesNotEscape(t *testing.T) {
	p := buildDispatch()
	p.AddGlobal(&ir.Global{Name: "byte_ptr", Size: 8})
	w := ir.NewBuilder("write_flag", 0)
	dst := w.Load(w.GlobalLea("byte_ptr", 0), 0, 8)
	dst2 := w.Load(dst, 0, 8)
	w.Store(dst2, 0, ir.Imm(1), 1)
	w.Ret(ir.Imm(0))
	p.AddFunc(w.Build())

	res := runPass(t, p)
	if s := res.Meta.IndirectSites[siteIn(t, res, "run_exec")]; !s.Exact {
		t.Fatalf("narrow escaped store poisoned the analysis: %+v", s)
	}
}

// TestPointsToParamPropagation: a function address passed as a call
// argument flows into the callee's parameter cell and onward into the
// cells it stores to — but parameter slots are runtime inputs, so any
// policy derived through one is a sound fallback, never exact.
func TestPointsToParamPropagation(t *testing.T) {
	p := guestlibc.NewProgram()
	p.AddGlobal(&ir.Global{Name: "hook", Size: 8})

	de := ir.NewBuilder("do_exec", 0)
	de.Call("execve", ir.Imm(0x5000), ir.Imm(0), ir.Imm(0))
	de.Ret(ir.Imm(0))
	p.AddFunc(de.Build())

	reg := ir.NewBuilder("register_hook", 1)
	v := reg.LoadLocal("p0")
	reg.Store(reg.GlobalLea("hook", 0), 0, ir.R(v), 8)
	reg.Ret(ir.Imm(0))
	p.AddFunc(reg.Build())

	run := ir.NewBuilder("run_hook", 0)
	fp := run.Load(run.GlobalLea("hook", 0), 0, 8)
	run.CallInd(fp, "i64()")
	run.Ret(ir.Imm(0))
	p.AddFunc(run.Build())

	m := ir.NewBuilder("main", 0)
	m.Call("register_hook", ir.R(m.FuncAddr("do_exec")))
	m.Call("run_hook")
	m.Ret(ir.Imm(0))
	p.AddFunc(m.Build())

	res := runPass(t, p)
	s := res.Meta.IndirectSites[siteIn(t, res, "run_hook")]
	if s.Exact {
		t.Fatalf("parameter-derived policy must not be exact: %+v", s)
	}
	found := false
	for _, tgt := range s.Targets {
		if tgt == "do_exec" {
			found = true
		}
	}
	if !found {
		t.Fatalf("do_exec did not propagate through the call parameter: %v", s.Targets)
	}
	if !res.Meta.AllowedIndirect[kernel.SysExecve][s.Addr] {
		t.Fatal("run_hook site missing from the refined execve policy")
	}
}

// TestRefinementNeverGrowsOnApps is the acceptance property on the shipped
// guests: per syscall, the refined AllowedIndirect set is a subset of the
// coarse one with the same constrained-syscall keys, and per callsite the
// refined target set is a subset of the coarse set.
func TestRefinementNeverGrowsOnApps(t *testing.T) {
	progs := map[string]*ir.Program{
		"nginx":  nginx.Build(),
		"sqlite": sqlitedb.Build(),
		"vsftpd": vsftpd.Build(),
	}
	for name, prog := range progs {
		res := runPass(t, prog)
		meta := res.Meta
		for nr, refined := range meta.AllowedIndirect {
			coarse, ok := meta.AllowedIndirectCoarse[nr]
			if !ok {
				t.Errorf("%s: refined policy for nr %d has no coarse baseline", name, nr)
				continue
			}
			for addr := range refined {
				if !coarse[addr] {
					t.Errorf("%s: nr %d callsite %#x admitted by refined but not coarse", name, nr, addr)
				}
			}
		}
		for nr := range meta.AllowedIndirectCoarse {
			if meta.AllowedIndirect[nr] == nil {
				t.Errorf("%s: nr %d constrained coarsely but unconstrained refined", name, nr)
			}
		}
		for addr, s := range meta.IndirectSites {
			coarse := map[string]bool{}
			for _, c := range s.Coarse {
				coarse[c] = true
			}
			for _, tgt := range s.Targets {
				if !coarse[tgt] {
					t.Errorf("%s: site %#x target %s beyond the coarse set", name, addr, tgt)
				}
			}
		}
		if res.Stats.IndirectEdgesRefined > res.Stats.IndirectEdgesCoarse ||
			res.Stats.AllowedPairsRefined > res.Stats.AllowedPairsCoarse {
			t.Errorf("%s: refinement grew: %+v", name, res.Stats)
		}
	}
}
