package analysis

import (
	"fmt"
	"sort"

	"bastion/internal/ir"
	"bastion/internal/vm"
)

// insertion is one planned splice of instrumentation instructions relative
// to an original instruction index. Intrinsics inside seq carry BindSite
// values that reference *original* indices; the rewriter remaps them after
// computing the final layout.
type insertion struct {
	idx   int
	after bool
	seq   []ir.Instr
	order int // stable ordering among insertions at the same point
}

// planKey records an instrumentation decision, returning false if it was
// already planned (dedupe).
func (p *pass) planKey(key string) bool {
	if p.planned == nil {
		p.planned = map[string]bool{}
	}
	if p.planned[key] {
		return false
	}
	p.planned[key] = true
	return true
}

// addInsertion queues an insertion for a function.
func (p *pass) addInsertion(f *ir.Function, ins insertion) {
	ins.order = p.planSeq
	p.planSeq++
	p.plan[f.Name] = append(p.plan[f.Name], ins)
}

// allocReg allocates a fresh virtual register in f for instrumentation.
func (p *pass) allocReg(f *ir.Function) ir.Reg {
	r := ir.Reg(f.NumRegs)
	f.NumRegs++
	return r
}

// remappedIndex translates an original instruction index to its position in
// the instrumented function.
func (p *pass) remappedIndex(fn string, idx int) int {
	if m, ok := p.remap[fn]; ok {
		if ni, ok := m[idx]; ok {
			return ni
		}
	}
	return idx
}

// instrument applies the plan: splices instrumentation sequences into each
// function, remaps branch targets, labels, and intrinsic BindSite
// references, and verifies the register budget.
func (p *pass) instrument() error {
	p.remap = map[string]map[int]int{}
	for fname, inss := range p.plan {
		f := p.prog.Func(fname)
		if f == nil {
			return fmt.Errorf("analysis: instrumentation for unknown function %q", fname)
		}
		if f.NumRegs > vm.MaxRegsPerFrame {
			return fmt.Errorf("analysis: %s needs %d registers after instrumentation (max %d)",
				fname, f.NumRegs, vm.MaxRegsPerFrame)
		}
		sort.SliceStable(inss, func(i, j int) bool {
			if inss[i].idx != inss[j].idx {
				return inss[i].idx < inss[j].idx
			}
			if inss[i].after != inss[j].after {
				return !inss[i].after // before-insertions precede after-insertions
			}
			return inss[i].order < inss[j].order
		})

		before := map[int][]ir.Instr{}
		after := map[int][]ir.Instr{}
		for _, ins := range inss {
			if ins.after {
				after[ins.idx] = append(after[ins.idx], ins.seq...)
			} else {
				before[ins.idx] = append(before[ins.idx], ins.seq...)
			}
		}

		newCode := make([]ir.Instr, 0, len(f.Code)+8)
		blockStart := make(map[int]int, len(f.Code)+1) // branch/label remap
		exact := make(map[int]int, len(f.Code))        // instruction's own new index
		for i := range f.Code {
			blockStart[i] = len(newCode)
			newCode = append(newCode, before[i]...)
			exact[i] = len(newCode)
			newCode = append(newCode, f.Code[i])
			newCode = append(newCode, after[i]...)
		}
		blockStart[len(f.Code)] = len(newCode)

		// Remap branch targets and bind sites in the new code.
		for i := range newCode {
			in := &newCode[i]
			switch in.Kind {
			case ir.Jump, ir.BranchNZ:
				if in.Label == "" {
					in.ToIndex = blockStart[in.ToIndex]
				}
			case ir.Intrinsic:
				if in.IK == ir.CtxBindMem || in.IK == ir.CtxBindConst {
					in.BindSite = exact[in.BindSite]
				}
			}
		}
		remapLabels(f, blockStart)
		f.Code = newCode
		p.remap[fname] = exact
	}
	return nil
}

// remapLabels rewrites the function's label table through the block map.
func remapLabels(f *ir.Function, blockStart map[int]int) {
	labels := f.Labels()
	for name, idx := range labels {
		labels[name] = blockStart[idx]
	}
}
