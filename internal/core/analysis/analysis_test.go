package analysis

import (
	"testing"

	"bastion/internal/apps/guestlibc"
	"bastion/internal/core/metadata"
	"bastion/internal/ir"
	"bastion/internal/kernel"
	"bastion/internal/vm"
)

// buildFigure2 reproduces the paper's Figure 2 shape:
//
//	foo() { flags = 0x21; bar(1, 2, flags) }
//	bar(b0,b1,b2) { prots = 3; mmap(NULL, gshm->size, prots, b2, -1, 0) }
//
// gshm is a global pointer to a heap object whose field at +8 is the size.
func buildFigure2() *ir.Program {
	p := guestlibc.NewProgram()
	p.AddGlobal(&ir.Global{Name: "gshm", Size: 8})

	bar := ir.NewBuilder("bar", 3)
	bar.Local("prots", 8)
	prots := bar.Lea("prots", 0)
	bar.Store(prots, 0, ir.Imm(3), 8) // PROT_READ|PROT_WRITE
	g := bar.GlobalLea("gshm", 0)
	ptr := bar.Load(g, 0, 8)
	size := bar.Load(ptr, 8, 8) // gshm->size
	protsv := bar.Load(bar.Lea("prots", 0), 0, 8)
	b2 := bar.LoadLocal("p2")
	bar.Call("mmap", ir.Imm(0), ir.R(size), ir.R(protsv), ir.R(b2), ir.Imm(-1), ir.Imm(0))
	bar.Ret(ir.Imm(0))
	p.AddFunc(bar.Build())

	foo := ir.NewBuilder("foo", 0)
	foo.Local("flags", 8)
	fl := foo.Lea("flags", 0)
	foo.Store(fl, 0, ir.Imm(0x21), 8) // MAP_ANONYMOUS|MAP_SHARED
	flv := foo.Load(foo.Lea("flags", 0), 0, 8)
	foo.Call("bar", ir.Imm(1), ir.Imm(2), ir.R(flv))
	foo.Ret(ir.Imm(0))
	p.AddFunc(foo.Build())

	m := ir.NewBuilder("main", 0)
	m.Call("foo")
	// Indirectly call getpid through a function pointer so call-type
	// analysis sees an address-taken wrapper.
	fp := m.FuncAddr("getpid")
	m.CallInd(fp, "i64()")
	m.Ret(ir.Imm(0))
	p.AddFunc(m.Build())
	return p
}

func runPass(t *testing.T, p *ir.Program) *Result {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("pre-pass Validate: %v", err)
	}
	res, err := Run(p, Options{Sensitive: kernel.SensitiveSyscalls})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := res.Prog.Validate(); err != nil {
		t.Fatalf("post-pass Validate: %v", err)
	}
	return res
}

func TestCallTypeClassification(t *testing.T) {
	res := runPass(t, buildFigure2())
	meta := res.Meta

	mmap := meta.CallTypes[kernel.SysMmap]
	if !mmap.Direct || mmap.Indirect {
		t.Fatalf("mmap call type = %+v, want direct only", mmap)
	}
	if mmap.Name != "mmap" || mmap.Wrapper != "mmap" {
		t.Fatalf("mmap names = %+v", mmap)
	}
	getpid := meta.CallTypes[kernel.SysGetpid]
	if !getpid.Indirect {
		t.Fatalf("getpid call type = %+v, want indirect", getpid)
	}
	if !meta.IndirectTargets["getpid"] {
		t.Fatal("getpid missing from IndirectTargets")
	}
	// execve is never referenced: not-callable.
	if _, ok := meta.CallTypes[kernel.SysExecve]; ok {
		t.Fatal("execve should be not-callable (absent)")
	}
}

func TestCFGValidCallers(t *testing.T) {
	res := runPass(t, buildFigure2())
	meta := res.Meta

	cases := []struct{ callee, caller string }{
		{"mmap", "bar"},
		{"bar", "foo"},
		{"foo", "main"},
	}
	for _, c := range cases {
		constrained, allowed := meta.CallerAllowed(c.callee, c.caller)
		if !constrained || !allowed {
			t.Errorf("CallerAllowed(%s, %s) = %v,%v", c.callee, c.caller, constrained, allowed)
		}
	}
	if _, allowed := meta.CallerAllowed("mmap", "main"); allowed {
		t.Error("main must not be a valid direct caller of mmap")
	}
	// strlen is not on a sensitive path: unconstrained.
	if constrained, _ := meta.CallerAllowed("strlen", "anything"); constrained {
		t.Error("strlen should be unconstrained")
	}
}

func TestArgSitesFigure2(t *testing.T) {
	res := runPass(t, buildFigure2())
	meta := res.Meta

	// Locate the mmap callsite's arg record.
	var mmapSite, barSite *metadata.ArgSite
	for addr := range meta.ArgSites {
		s := meta.ArgSites[addr]
		switch s.Target {
		case "mmap":
			mmapSite = &s
		case "bar":
			barSite = &s
		}
	}
	if mmapSite == nil {
		t.Fatal("no ArgSite for mmap callsite")
	}
	if !mmapSite.IsSyscall || mmapSite.SyscallNr != kernel.SysMmap || mmapSite.Caller != "bar" {
		t.Fatalf("mmap site = %+v", mmapSite)
	}
	want := map[int]metadata.ArgKind{
		1: metadata.ArgConst, // NULL
		2: metadata.ArgMem,   // gshm->size
		3: metadata.ArgMem,   // prots
		4: metadata.ArgMem,   // b2 (param)
		5: metadata.ArgConst, // -1
		6: metadata.ArgConst, // 0
	}
	if len(mmapSite.Args) != len(want) {
		t.Fatalf("mmap args = %+v", mmapSite.Args)
	}
	for _, a := range mmapSite.Args {
		if want[a.Pos] != a.Kind {
			t.Errorf("arg %d kind = %v, want %v", a.Pos, a.Kind, want[a.Pos])
		}
	}
	// Constants carry their values.
	for _, a := range mmapSite.Args {
		if a.Pos == 5 && a.Const != -1 {
			t.Errorf("arg 5 const = %d", a.Const)
		}
	}

	// The intermediate bar() callsite binds flags at position 3.
	if barSite == nil {
		t.Fatal("no ArgSite for bar callsite (inter-procedural trace missing)")
	}
	if barSite.IsSyscall || barSite.Caller != "foo" {
		t.Fatalf("bar site = %+v", barSite)
	}
	if len(barSite.Args) != 1 || barSite.Args[0].Pos != 3 || barSite.Args[0].Kind != metadata.ArgMem {
		t.Fatalf("bar site args = %+v", barSite.Args)
	}
}

func TestInstrumentationStats(t *testing.T) {
	res := runPass(t, buildFigure2())
	s := res.Stats
	if s.CtxBindConst != 3 { // NULL, -1, 0
		t.Errorf("CtxBindConst = %d, want 3", s.CtxBindConst)
	}
	if s.CtxBindMem != 4 { // size, prots, b2, flags@bar-callsite
		t.Errorf("CtxBindMem = %d, want 4", s.CtxBindMem)
	}
	// ctx_write_mem: store to prots, store to flags, bar entry spill of p2.
	if s.CtxWriteMem != 3 {
		t.Errorf("CtxWriteMem = %d, want 3", s.CtxWriteMem)
	}
	if s.SensitiveCallsites != 1 {
		t.Errorf("SensitiveCallsites = %d, want 1", s.SensitiveCallsites)
	}
	if s.SensitiveIndirect != 0 {
		t.Errorf("SensitiveIndirect = %d", s.SensitiveIndirect)
	}
	if s.Total() != s.CtxWriteMem+s.CtxBindMem+s.CtxBindConst {
		t.Error("Total() inconsistent")
	}
	if s.DirectCallsites == 0 || s.IndirectCallsites != 1 {
		t.Errorf("callsite counts = %+v", s)
	}
}

func TestCallsitesKeyedByReturnAddress(t *testing.T) {
	res := runPass(t, buildFigure2())
	meta := res.Meta
	bar := res.Prog.Func("bar")
	// Find the mmap call in instrumented bar and check its record.
	for i := range bar.Code {
		in := &bar.Code[i]
		if in.Kind == ir.Call && in.Sym == "mmap" {
			ret := bar.InstrAddr(i + 1)
			cs, ok := meta.Callsites[ret]
			if !ok {
				t.Fatalf("no callsite keyed by retaddr %#x", ret)
			}
			if cs.Target != "mmap" || cs.Caller != "bar" || cs.Kind != metadata.SiteDirect {
				t.Fatalf("callsite = %+v", cs)
			}
			if cs.Addr != bar.InstrAddr(i) {
				t.Fatalf("callsite addr %#x, want %#x", cs.Addr, bar.InstrAddr(i))
			}
			return
		}
	}
	t.Fatal("mmap call not found in instrumented bar")
}

func TestBindSitesPointAtCallsites(t *testing.T) {
	res := runPass(t, buildFigure2())
	bar := res.Prog.Func("bar")
	for i := range bar.Code {
		in := &bar.Code[i]
		if in.Kind != ir.Intrinsic || (in.IK != ir.CtxBindMem && in.IK != ir.CtxBindConst) {
			continue
		}
		site := bar.Code[in.BindSite]
		if site.Kind != ir.Call {
			t.Fatalf("bind at %d references instruction %d kind %v, want Call",
				i, in.BindSite, site.Kind)
		}
	}
}

// recordingOS captures syscall register snapshots.
type recordingOS struct{ calls []vm.Regs }

func (r *recordingOS) Syscall(m *vm.Machine) (int64, error) {
	r.calls = append(r.calls, m.SysRegs)
	return 4096, nil
}

// TestBehaviorPreserved runs the program before and after instrumentation
// and checks the observable syscall sequence is identical.
func TestBehaviorPreserved(t *testing.T) {
	run := func(p *ir.Program, instrumented bool) []vm.Regs {
		if instrumented {
			if _, err := Run(p, Options{Sensitive: kernel.SensitiveSyscalls}); err != nil {
				t.Fatalf("pass: %v", err)
			}
		}
		if err := p.Link(); err != nil {
			t.Fatal(err)
		}
		os := &recordingOS{}
		m, err := vm.New(p, vm.WithOS(os), vm.WithMaxSteps(1<<20))
		if err != nil {
			t.Fatal(err)
		}
		// Materialize the gshm object: pointer at global, struct on "heap".
		heap := uint64(ir.HeapBase)
		if err := m.Mem.Map(heap, 4096, 0b011); err != nil {
			t.Fatal(err)
		}
		if err := m.Mem.WriteUint(heap+8, 16384, 8); err != nil { // size field
			t.Fatal(err)
		}
		g := p.GlobalByName("gshm")
		if err := m.Mem.WriteUint(g.Addr, heap, 8); err != nil {
			t.Fatal(err)
		}
		if _, err := m.CallFunction("main"); err != nil {
			t.Fatalf("run: %v", err)
		}
		return os.calls
	}

	plain := run(buildFigure2(), false)
	inst := run(buildFigure2(), true)
	if len(plain) != len(inst) {
		t.Fatalf("syscall counts differ: %d vs %d", len(plain), len(inst))
	}
	for i := range plain {
		a, b := plain[i], inst[i]
		if a.RAX != b.RAX || a.RDI != b.RDI || a.RSI != b.RSI || a.RDX != b.RDX ||
			a.R10 != b.R10 || a.R8 != b.R8 || a.R9 != b.R9 {
			t.Fatalf("syscall %d differs:\nplain %+v\ninst  %+v", i, a, b)
		}
	}
	// Sanity: the mmap actually carried the expected values.
	last := inst[len(inst)-1]
	if last.RAX == kernel.SysGetpid {
		// The final call is the indirect getpid; mmap precedes it.
		last = inst[len(inst)-2]
	}
	if last.RAX != kernel.SysMmap || last.RSI != 16384 || last.RDX != 3 || last.R10 != 0x21 {
		t.Fatalf("mmap regs = %+v", last)
	}
}

func TestUntracedArgCounted(t *testing.T) {
	p := guestlibc.NewProgram()
	b := ir.NewBuilder("main", 0)
	// An argument computed from a syscall result is not statically
	// traceable: count it, do not bind it.
	pid := b.Call("getpid")
	v := b.Bin(ir.OpAdd, ir.R(pid), ir.Imm(1))
	b.Call("setuid", ir.R(v))
	b.Ret(ir.Imm(0))
	p.AddFunc(b.Build())

	res := runPass(t, p)
	if res.Stats.UntracedArgs == 0 {
		t.Fatal("untraced argument not counted")
	}
	// The setuid site exists with no bound args.
	var found bool
	for _, s := range res.Meta.ArgSites {
		if s.Target == "setuid" {
			found = true
			if len(s.Args) != 0 {
				t.Fatalf("setuid args = %+v", s.Args)
			}
		}
	}
	if !found {
		t.Fatal("setuid arg site missing")
	}
}

func TestMetadataSerializationRoundTrip(t *testing.T) {
	res := runPass(t, buildFigure2())
	data, err := res.Meta.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := metadata.Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if len(back.Callsites) != len(res.Meta.Callsites) ||
		len(back.CallTypes) != len(res.Meta.CallTypes) ||
		len(back.ArgSites) != len(res.Meta.ArgSites) {
		t.Fatal("round trip lost entries")
	}
	if back.FuncAt(res.Prog.Func("bar").Base) != "bar" {
		t.Fatal("FuncAt broken after round trip")
	}
	if res.Meta.Summary() == "" {
		t.Fatal("empty summary")
	}
}

// TestDerefParamWrites checks the memcpy-into-sensitive-buffer pattern:
// stores through a pointer parameter into a sensitive buffer get shadowed.
func TestDerefParamWrites(t *testing.T) {
	p := guestlibc.NewProgram()

	// setter(dst): *dst = 7
	setter := ir.NewBuilder("setter", 1)
	d := setter.LoadLocal("p0")
	setter.Store(d, 0, ir.Imm(7), 8)
	setter.Ret(ir.Imm(0))
	p.AddFunc(setter.Build())

	// main: local uid; setter(&uid); setuid(uid)
	b := ir.NewBuilder("main", 0)
	b.Local("uid", 8)
	addr := b.Lea("uid", 0)
	b.Call("setter", ir.R(addr))
	uv := b.Load(b.Lea("uid", 0), 0, 8)
	b.Call("setuid", ir.R(uv))
	b.Ret(ir.Imm(0))
	p.AddFunc(b.Build())

	res := runPass(t, p)
	// The store inside setter must be instrumented.
	setterF := res.Prog.Func("setter")
	var sawWrite bool
	for i := range setterF.Code {
		if setterF.Code[i].Kind == ir.Intrinsic && setterF.Code[i].IK == ir.CtxWriteMem {
			sawWrite = true
		}
	}
	if !sawWrite {
		t.Fatal("store through pointer parameter not shadowed")
	}
}

// TestMaxUseDefDepthBounds: a parameter chain deeper than the configured
// bound stops being traced instead of recursing forever; the argument is
// counted as untraced-by-depth rather than mis-bound.
func TestMaxUseDefDepthBounds(t *testing.T) {
	p := guestlibc.NewProgram()
	// A 8-deep pass-through chain: c7 -> c6 -> ... -> c0 -> setuid(v).
	prev := ""
	for i := 0; i <= 7; i++ {
		name := "c" + string(rune('0'+i))
		b := ir.NewBuilder(name, 1)
		v := b.LoadLocal("p0")
		if i == 0 {
			b.Call("setuid", ir.R(v))
		} else {
			b.Call(prev, ir.R(v))
		}
		b.Ret(ir.Imm(0))
		p.AddFunc(b.Build())
		prev = name
	}
	mb := ir.NewBuilder("main", 0)
	mb.Local("uid", 8)
	ua := mb.Lea("uid", 0)
	mb.Store(ua, 0, ir.Imm(33), 8)
	uv := mb.Load(mb.Lea("uid", 0), 0, 8)
	mb.Call("c7", ir.R(uv))
	mb.Ret(ir.Imm(0))
	p.AddFunc(mb.Build())

	res, err := Run(p, Options{Sensitive: kernel.SensitiveSyscalls, MaxUseDefDepth: 3})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The chain is traced through at most the first few hops: intermediate
	// arg sites exist for the near callsites but not all eight.
	sites := 0
	for _, s := range res.Meta.ArgSites {
		if !s.IsSyscall {
			sites++
		}
	}
	if sites == 0 {
		t.Fatal("no intermediate sites traced at all")
	}
	if sites >= 8 {
		t.Fatalf("depth bound ignored: %d intermediate sites", sites)
	}
	// And the instrumented program still runs.
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}
