package analysis

import (
	"fmt"

	"bastion/internal/core/metadata"
	"bastion/internal/ir"
)

// analyzeArguments runs the argument-integrity analysis (§6.3): it finds
// every sensitive system call callsite, classifies each argument, plans
// bind instrumentation at the callsite, and recursively traces memory-
// backed and parameter-passed values — planning ctx_write_mem
// instrumentation after each store in the sensitive variables' use-def
// chains and bind instrumentation at intermediate callsites.
func (p *pass) analyzeArguments() {
	for _, f := range p.prog.Funcs {
		for i := range f.Code {
			in := &f.Code[i]
			if in.Kind != ir.Call {
				continue
			}
			nr, sens := p.isSensitiveWrapper(in.Sym)
			if !sens {
				continue
			}
			p.traceCallsite(f, i, nr, true, nil, 0)
		}
	}
}

// traceCallsite analyzes the arguments of the call instruction at index i
// of f. When onlyPos is non-nil, only those 1-based argument positions are
// traced (intermediate callsites propagate specific sensitive parameters);
// for syscall callsites every argument is traced.
func (p *pass) traceCallsite(f *ir.Function, i int, nr uint32, isSyscall bool, onlyPos map[int]bool, depth int) {
	if depth > p.opts.MaxUseDefDepth {
		return
	}
	in := &f.Code[i]
	key := siteKey{fn: f.Name, idx: i}
	draft := p.argSites[key]
	if draft == nil {
		draft = &argSiteDraft{target: in.Sym, syscallNr: nr, isSyscall: isSyscall}
		p.argSites[key] = draft
	}
	for ai, o := range in.Args {
		pos := ai + 1
		if onlyPos != nil && !onlyPos[pos] {
			continue
		}
		if draft.hasPos(pos) {
			continue
		}
		if o.Kind == ir.OperandImm {
			p.bindConst(f, i, pos, o.Imm, draft)
			continue
		}
		src := p.traceValue(f, i, o.Reg, 0)
		switch src.kind {
		case srcConst:
			p.bindConst(f, i, pos, src.c, draft)
		case srcParam:
			p.bindMem(f, i, pos, src.addr, src.size, false, draft)
			p.traceParam(f, src.param, depth)
		case srcMem:
			p.bindMem(f, i, pos, src.addr, src.size, false, draft)
			p.markVarSensitive(src.addr, src.size, depth)
		case srcAddrOf:
			// Pointer to a known object (&buf): bind the address itself and
			// track writes into the object so extended-argument rules can
			// verify the pointee.
			p.bindMem(f, i, pos, src.addr, src.size, true, draft)
			p.markVarSensitive(src.addr, src.size, depth)
		default:
			p.stats.UntracedArgs++
			p.recordUntraced(f.Name, i, pos, draft.target, metadata.UntracedValueOrigin)
		}
	}
}

func (d *argSiteDraft) hasPos(pos int) bool {
	for _, a := range d.args {
		if a.Pos == pos {
			return true
		}
	}
	return false
}

// traceParam handles a sensitive function parameter (the b2←flags pattern
// of Figure 2): shadow the spill slot at function entry, track writes to
// it, and recurse into every caller to bind and trace the passed value.
func (p *pass) traceParam(f *ir.Function, param int, depth int) {
	pk := paramKey{fn: f.Name, param: param}
	if p.sensParams[pk] {
		return
	}
	p.sensParams[pk] = true

	// ctx_write_mem(&param) at function entry, right after the VM spills
	// incoming arguments.
	p.planEntryWrite(f, param)

	// Stores to the spill slot within f keep the shadow fresh.
	slotExpr := addrExpr{ok: true, rootKind: baseLocal, fn: f.Name, slot: param}
	p.markVarSensitive(slotExpr, ir.WordSize, depth)

	if depth+1 > p.opts.MaxUseDefDepth {
		// Truncated inter-procedural trace: the callers' passed values stay
		// unverified. Counted in the stats so the depth budget's cost is
		// visible, but not recorded as metadata.Untraced — the parameter's
		// spill slot is still shadowed above, so there is no per-callsite
		// record for the audit to point at.
		p.stats.UntracedArgs++
		return
	}
	// Inter-procedural step: every caller binds and traces the argument it
	// passes for this parameter.
	pos := param + 1
	for _, g := range p.prog.Funcs {
		for i := range g.Code {
			in := &g.Code[i]
			if in.Kind != ir.Call || in.Sym != f.Name {
				continue
			}
			p.traceCallsite(g, i, 0, false, map[int]bool{pos: true}, depth+1)
		}
	}
}

// markVarSensitive adds the variable to the sensitive set and plans
// ctx_write_mem instrumentation after every store that can write it —
// matched by address base, so loop-indexed writes into a sensitive buffer
// are covered (over-approximation is explicitly acceptable, §6.3.3) — and
// after stores through callee pointer parameters when the variable's
// address escapes into a call (the memcpy-into-sensitive-buffer pattern).
func (p *pass) markVarSensitive(expr addrExpr, size int64, depth int) {
	canon := expr
	canon.off = 0 // sensitivity is tracked per base object; fields share it
	if p.sensVars[canon] {
		return
	}
	p.sensVars[canon] = true
	if depth > p.opts.MaxUseDefDepth {
		return
	}

	// Alias propagation: a variable reached through a pointer parameter
	// (ctx->path in Listing 1) is the same object the callers pass. Trace
	// the pointer argument at every callsite and mark the aliased object
	// sensitive there too, so stores through either name are shadowed.
	if canon.deref && canon.rootKind == baseLocal {
		if f := p.prog.Func(canon.fn); f != nil && canon.slot < f.NumParams && canon.rootOff == 0 {
			for _, g := range p.prog.Funcs {
				for i := range g.Code {
					in := &g.Code[i]
					if in.Kind != ir.Call || in.Sym != canon.fn || canon.slot >= len(in.Args) {
						continue
					}
					o := in.Args[canon.slot]
					if o.Kind != ir.OperandReg {
						continue
					}
					src := p.traceValue(g, i, o.Reg, 0)
					switch src.kind {
					case srcAddrOf:
						// Pointer is &X: the deref target is X itself.
						p.markVarSensitive(src.addr, size, depth+1)
					case srcMem:
						// Pointer loaded from a static location: the deref
						// target is one indirection through that location.
						if !src.addr.deref {
							alias := addrExpr{
								ok: true, deref: true,
								rootKind: src.addr.rootKind, fn: src.addr.fn,
								slot: src.addr.slot, global: src.addr.global,
								rootOff: src.addr.off,
							}
							p.markVarSensitive(alias, size, depth+1)
						}
					case srcParam:
						// Pointer passed through another level: recurse via
						// the caller's own parameter.
						alias := addrExpr{
							ok: true, deref: true, rootKind: baseLocal,
							fn: g.Name, slot: src.param,
						}
						p.markVarSensitive(alias, size, depth+1)
					}
				}
			}
		}
	}

	local := canon.rootKind == baseLocal && !canon.deref
	for _, g := range p.prog.Funcs {
		if local && g.Name != canon.fn {
			continue
		}
		for i := range g.Code {
			in := &g.Code[i]
			switch in.Kind {
			case ir.Store:
				base := p.addrBaseOf(g, i, in.Addr, 0)
				if !sameBase(base, canon) {
					continue
				}
				p.planStoreShadow(g, i, canon)
				// Data-dependent variables join the sensitive set (§6.3.3
				// step 2). A stored address (&obj) makes the pointed-to
				// object sensitive too: it is the pointee an extended
				// argument will be verified against.
				if in.Src.Kind == ir.OperandReg {
					sv := p.traceValue(g, i, in.Src.Reg, 0)
					switch sv.kind {
					case srcMem, srcAddrOf:
						p.markVarSensitive(sv.addr, sv.size, depth+1)
					case srcParam:
						p.traceParam(g, sv.param, depth+1)
					}
				}
			case ir.Call:
				// Address escape: &var passed to a callee; instrument the
				// callee's stores through that pointer parameter.
				callee := p.prog.Func(in.Sym)
				if callee == nil {
					continue
				}
				for ai, o := range in.Args {
					if o.Kind != ir.OperandReg {
						continue
					}
					base := p.addrBaseOf(g, i, o.Reg, 0)
					if sameBase(base, canon) {
						p.planDerefParamWrites(callee, ai)
					}
				}
			}
		}
	}
}

// planDerefParamWrites instruments, inside callee, every store whose
// address derives from pointer parameter param (one indirection level).
func (p *pass) planDerefParamWrites(callee *ir.Function, param int) {
	pk := paramKey{fn: callee.Name, param: param}
	if p.derefWriteFns[pk] {
		return
	}
	p.derefWriteFns[pk] = true
	want := addrExpr{ok: true, deref: true, rootKind: baseLocal, fn: callee.Name, slot: param}
	for i := range callee.Code {
		in := &callee.Code[i]
		if in.Kind != ir.Store {
			continue
		}
		base := p.addrBaseOf(callee, i, in.Addr, 0)
		if sameBase(base, want) {
			p.planStoreShadow(callee, i, want)
		}
	}
}

// addrBaseOf resolves the base object an address register derives from,
// tolerating variable offsets: a Bin over two registers resolves through
// whichever side yields a base. The returned expr has off forced to 0.
func (p *pass) addrBaseOf(f *ir.Function, idx int, reg ir.Reg, depth int) addrExpr {
	if depth > 16 {
		return addrExpr{}
	}
	i, def := defOf(f, idx, reg)
	if def == nil {
		return addrExpr{}
	}
	switch def.Kind {
	case ir.LocalAddr:
		return addrExpr{ok: true, rootKind: baseLocal, fn: f.Name, slot: def.Slot}
	case ir.GlobalAddr:
		return addrExpr{ok: true, rootKind: baseGlobal, global: def.Sym}
	case ir.Mov:
		if def.Src.Kind == ir.OperandReg {
			return p.addrBaseOf(f, i, def.Src.Reg, depth+1)
		}
	case ir.Bin:
		if def.A.Kind == ir.OperandReg {
			if e := p.addrBaseOf(f, i, def.A.Reg, depth+1); e.ok {
				return e
			}
		}
		if def.B.Kind == ir.OperandReg {
			if e := p.addrBaseOf(f, i, def.B.Reg, depth+1); e.ok {
				return e
			}
		}
	case ir.Load:
		if def.Size != ir.WordSize {
			return addrExpr{}
		}
		inner := p.traceAddr(f, i, def.Addr, depth+1)
		if !inner.ok || inner.deref {
			return addrExpr{}
		}
		return addrExpr{
			ok: true, deref: true,
			rootKind: inner.rootKind, fn: inner.fn, slot: inner.slot,
			global: inner.global, rootOff: inner.off + def.Off,
		}
	}
	return addrExpr{}
}

// sameBase reports whether two expressions refer to the same base object
// (ignoring field offsets).
func sameBase(a, b addrExpr) bool {
	if !a.ok || !b.ok || a.deref != b.deref || a.rootKind != b.rootKind {
		return false
	}
	if a.deref && a.rootOff != b.rootOff {
		return false
	}
	if a.rootKind == baseLocal {
		return a.fn == b.fn && a.slot == b.slot
	}
	return a.global == b.global
}

// --- instrumentation planning primitives ---

func (p *pass) bindConst(f *ir.Function, site, pos int, c int64, draft *argSiteDraft) {
	draft.args = append(draft.args, argSpec(pos, true, c, 0))
	key := fmt.Sprintf("bc:%s:%d:%d", f.Name, site, pos)
	if !p.planKey(key) {
		return
	}
	p.stats.CtxBindConst++
	p.addInsertion(f, insertion{idx: site, seq: []ir.Instr{{
		Kind: ir.Intrinsic, IK: ir.CtxBindConst, Pos: pos, Imm: c, BindSite: site,
	}}})
}

func (p *pass) bindMem(f *ir.Function, site, pos int, expr addrExpr, size int64, deref bool, draft *argSiteDraft) {
	if size == 0 {
		size = ir.WordSize
	}
	seq, reg, ok := p.emitAddr(f, expr)
	if !ok {
		p.stats.UntracedArgs++
		p.recordUntraced(f.Name, site, pos, draft.target, metadata.UntracedAddress)
		return
	}
	spec := argSpec(pos, false, 0, size)
	spec.Deref = deref
	draft.args = append(draft.args, spec)
	key := fmt.Sprintf("bm:%s:%d:%d", f.Name, site, pos)
	if !p.planKey(key) {
		return
	}
	p.stats.CtxBindMem++
	seq = append(seq, ir.Instr{
		Kind: ir.Intrinsic, IK: ir.CtxBindMem, Pos: pos, Addr: reg, BindSite: site,
	})
	p.addInsertion(f, insertion{idx: site, seq: seq})
}

// planStoreShadow inserts ctx_write_mem right after the store at index i.
// For small statically addressable objects (scalars) the whole object is
// re-shadowed from its base, so the shadow entry's address matches the
// address later bound at callsites; larger or pointer-reached objects are
// shadowed at the store's exact address and width, producing the
// fine-grained entries extended-argument verification walks.
func (p *pass) planStoreShadow(f *ir.Function, i int, obj addrExpr) {
	key := fmt.Sprintf("ws:%s:%d", f.Name, i)
	if !p.planKey(key) {
		return
	}
	in := &f.Code[i]
	var seq []ir.Instr
	base := obj
	base.off = 0
	if sz := p.objSize(base); sz > 0 && sz <= ir.WordSize && !base.deref {
		if addrSeq, reg, ok := p.emitAddr(f, base); ok {
			p.stats.CtxWriteMem++
			seq = append(addrSeq, ir.Instr{Kind: ir.Intrinsic, IK: ir.CtxWriteMem, Addr: reg, Size: sz})
			p.addInsertion(f, insertion{idx: i, after: true, seq: seq})
			return
		}
	}
	addr := in.Addr
	if in.Off != 0 {
		r := p.allocReg(f)
		seq = append(seq, ir.Instr{
			Kind: ir.Bin, Dst: r, Op: ir.OpAdd, A: ir.R(in.Addr), B: ir.Imm(in.Off),
		})
		addr = r
	}
	p.stats.CtxWriteMem++
	seq = append(seq, ir.Instr{Kind: ir.Intrinsic, IK: ir.CtxWriteMem, Addr: addr, Size: in.Size})
	p.addInsertion(f, insertion{idx: i, after: true, seq: seq})
}

// planEntryWrite shadows a parameter spill slot at function entry.
func (p *pass) planEntryWrite(f *ir.Function, param int) {
	key := fmt.Sprintf("we:%s:%d", f.Name, param)
	if !p.planKey(key) {
		return
	}
	r := p.allocReg(f)
	p.stats.CtxWriteMem++
	p.addInsertion(f, insertion{idx: 0, seq: []ir.Instr{
		{Kind: ir.LocalAddr, Dst: r, Slot: param},
		{Kind: ir.Intrinsic, IK: ir.CtxWriteMem, Addr: r, Size: ir.WordSize},
	}})
}

// emitAddr materializes an address expression into instructions, returning
// the register holding the final address.
func (p *pass) emitAddr(f *ir.Function, expr addrExpr) ([]ir.Instr, ir.Reg, bool) {
	if !expr.ok {
		return nil, 0, false
	}
	if expr.rootKind == baseLocal && expr.fn != f.Name {
		// A foreign local cannot be materialized here.
		return nil, 0, false
	}
	var seq []ir.Instr
	r := p.allocReg(f)
	if expr.rootKind == baseLocal {
		off := expr.off
		if expr.deref {
			off = expr.rootOff
		}
		seq = append(seq, ir.Instr{Kind: ir.LocalAddr, Dst: r, Slot: expr.slot, Off: off})
	} else {
		off := expr.off
		if expr.deref {
			off = expr.rootOff
		}
		seq = append(seq, ir.Instr{Kind: ir.GlobalAddr, Dst: r, Sym: expr.global, Off: off})
	}
	if expr.deref {
		r2 := p.allocReg(f)
		seq = append(seq, ir.Instr{Kind: ir.Load, Dst: r2, Addr: r, Size: ir.WordSize})
		r = r2
		if expr.off != 0 {
			r3 := p.allocReg(f)
			seq = append(seq, ir.Instr{Kind: ir.Bin, Dst: r3, Op: ir.OpAdd, A: ir.R(r2), B: ir.Imm(expr.off)})
			r = r3
		}
	}
	return seq, r, true
}

func argSpec(pos int, isConst bool, c int64, size int64) metadata.ArgSpec {
	if isConst {
		return metadata.ArgSpec{Pos: pos, Kind: metadata.ArgConst, Const: c}
	}
	return metadata.ArgSpec{Pos: pos, Kind: metadata.ArgMem, Size: size}
}
